# Development targets. `make check` is the full gate: vet, build,
# the whole test suite under the race detector, and a short run of
# every fuzz target over its seed corpus.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race fuzz bench report

check: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run each fuzz target briefly; the seed corpus alone is covered by
# plain `go test`, this also explores mutations for FUZZTIME.
fuzz:
	$(GO) test ./internal/workload/ -run FuzzDecode -fuzz FuzzDecode -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench=. -benchmem

# Print the full-scale paper-vs-measured record. EXPERIMENTS.md keeps
# a hand-written preamble (the header comment and the Methodology
# section); splice this output in after it when refreshing.
report:
	$(GO) run ./cmd/lapbench -scale full -exp report
