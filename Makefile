# Development targets. `make check` is the full gate: vet, build,
# the whole test suite under the race detector, and a short run of
# every fuzz target over its seed corpus.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check check-runtime check-cluster check-chaos check-load check-hotpath check-predictors soak vet build test race fuzz bench bench-all report

check: vet build race fuzz check-runtime check-cluster check-chaos check-load check-hotpath check-predictors

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The runtime engine and its commands under the race detector: unit
# tests, the linearity stress test (N goroutines on one file), and the
# end-to-end trace replay through a live server.
check-runtime:
	$(GO) test -race -count=1 ./internal/lapcache/... ./internal/lapclient/... ./cmd/...

# The cooperative peer tier under the race detector: ring properties,
# remote-hit forwarding, owner failover, and the 3-node CHARISMA
# replay that asserts the per-file outstanding-prefetch bound holds
# cluster-wide.
check-cluster:
	$(GO) test -race -count=1 ./internal/cluster/...

# The fault-injection subsystem and the chaos harness under the race
# detector: injector determinism/budget unit tests, the single-engine
# faulty-store stress, and the 3-node CHARISMA chaos replay that must
# hold every invariant with hundreds of injected faults.
check-chaos:
	$(GO) test -race -count=1 ./internal/faultinject/... ./internal/chaos/...

# The open-loop load harness under the race detector: generator
# distribution checks, histogram property tests, the pool-churn
# no-lost-request regressions, and the 30k-request firehose e2e that
# asserts zero dropped responses plus the leak/linearity invariants —
# then a short low-rate lapbench smoke of the real CLI path.
check-load:
	$(GO) test -race -count=1 ./internal/loadgen/... ./internal/stats/...
	$(GO) run ./cmd/lapbench -exp load -load-rates 200,400 -load-dur 1s

# The wire hot path under the race detector: vectored-write and
# frame-batch framing/reuse, the coalescing latch against a pipelined
# burst (on and off), the sharded accept path under concurrent
# connections, and the torn-vectored-write fault — then a short
# lapbench smoke of the real -exp hotpath cells.
check-hotpath:
	$(GO) test -race -count=1 -run TestHotpath ./internal/wire/ ./internal/lapcache/
	$(GO) run ./cmd/lapbench -exp hotpath -hotpath-conns 1,16 -hotpath-dur 500ms

# The cross-predictor invariant suite under the race detector — every
# algorithm in core.NamedAlgorithms holds determinism, the degree-cap
# bound, and zero buffer leaks over the golden micro-workloads — plus
# the predictor unit/distribution tests and a tiny-scale smoke of the
# real -exp predictors matrix (win checks only engage at -scale full).
check-predictors:
	$(GO) test -race -count=1 ./internal/conformance/ ./internal/workload/ ./internal/core/ ./cmd/lapbench/
	$(GO) run ./cmd/lapbench -exp predictors -scale tiny

# Chaos soak: random seeds in a loop (SOAK_RUNS, default 20). Every
# other run puts the AdaptiveFDP degree policy on the seed-chosen
# victim node (strict linear elsewhere), so the audit exercises both
# the exact HW==1 bound and the generalized HW<=cap bound. Each run
# prints its seed up front, so a failure names the exact seed to replay
# with `go run ./cmd/lapbench -exp chaos -seed N [-adaptive-victim]`.
SOAK_RUNS ?= 20
soak:
	@i=0; while [ $$i -lt $(SOAK_RUNS) ]; do \
		seed=$$(od -An -N4 -tu4 /dev/urandom | tr -d ' '); \
		av=$$((i % 2)); \
		echo "== chaos soak run $$i seed=$$seed adaptive-victim=$$av"; \
		$(GO) run ./cmd/lapbench -exp chaos -seed $$seed -adaptive-victim=$$av || { \
			echo "SOAK FAILURE: reproduce with: go run ./cmd/lapbench -exp chaos -seed $$seed -adaptive-victim=$$av"; exit 1; }; \
		i=$$((i+1)); \
	done

# Run each fuzz target briefly; the seed corpus alone is covered by
# plain `go test`, this also explores mutations for FUZZTIME.
fuzz:
	$(GO) test ./internal/workload/ -run FuzzDecode -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -run FuzzWireDecode -fuzz FuzzWireDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster/ -run FuzzRing -fuzz FuzzRing -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stats/ -run FuzzHistogramRecord -fuzz FuzzHistogramRecord -fuzztime $(FUZZTIME)
	$(GO) test ./internal/membership/ -run FuzzMembershipDecode -fuzz FuzzMembershipDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run FuzzDegreePolicy -fuzz FuzzDegreePolicy -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run FuzzMithril -fuzz FuzzMithril -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run FuzzMarkov -fuzz FuzzMarkov -fuzztime $(FUZZTIME)

# The runtime micro-benchmarks: engine demand-read paths and the JSON
# vs binary wire comparison (BENCH_wire.json), the cooperative tier's
# local-hit / remote-hit / local-disk ladder (BENCH_cluster.json), and
# the dynamic-membership tier's owner-death ladder plus the budgeted
# rebalancer (BENCH_membership.json).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkLapcacheGet|BenchmarkWireRoundTrip' -benchmem . | \
		$(GO) run ./cmd/benchfmt -benchmark "BenchmarkLapcacheGet + BenchmarkWireRoundTrip" -o BENCH_wire.json \
		-description "lapcache engine demand-read paths (zero-copy ReadInto vs legacy copying Read) and one 8 KiB cached block fetched per round trip over loopback TCP: legacy JSON lines vs the binary framed protocol, serial and pipelined." \
		-command "make bench" \
		-notes "binary streams the payload from the refcounted cache buffer (no base64, no copy); binaryPipelined is the -replay configuration: pooled connections with an in-flight window."
	$(GO) test -run '^$$' -bench BenchmarkClusterRead -benchmem . | \
		$(GO) run ./cmd/benchfmt -benchmark BenchmarkClusterRead -o BENCH_cluster.json \
		-assert-allocs 'BenchmarkClusterRead/localHit=0,BenchmarkClusterRead/remoteHit=0' \
		-description "One 8 KiB block with data per read over loopback TCP: a block cached on the contacted node (localHit), a local miss forwarded to the ring owner holding it in memory (remoteHit, two wire hops), and the same miss against a backing store with a disk-like 2 ms access and no peer tier (localDisk)." \
		-command "make bench" \
		-notes "The paper's premise measured end to end: the remote memory hit is two orders of magnitude faster than the local disk read it replaces. remoteHit runs on a live 3-node cluster (cluster.StartLocal) with the contacted node's cache shrunk to 4 blocks so every read forwards. localHit and remoteHit ride the vectored zero-copy wire path and are gated at 0 allocs/op (-assert-allocs)."
	{ $(GO) test -run '^$$' -bench 'BenchmarkMembership/(replicaHit|diskDegrade)' -benchtime 200x -benchmem .; \
	  $(GO) test -run '^$$' -bench 'BenchmarkMembership/handoff' -benchtime 1x -benchmem .; } | \
		$(GO) run ./cmd/benchfmt -benchmark BenchmarkMembership -o BENCH_membership.json \
		-description "Owner death on a live 3-node dynamic-membership cluster (SWIM gossip, 300 ms suspicion): one 8 KiB block per read of files whose ring owner was just killed. replicaHit runs R=2 — the moved arc lands on the successor already holding the replica in memory; diskDegrade runs R=1 — the new owner has nothing and pays the 2 ms store access. handoff seeds a survivor's cache with foreign blocks and measures the post-rejoin rebalancing sweep against a 1 MiB/s byte budget." \
		-command "make bench" \
		-notes "replicaHit vs diskDegrade is the replication claim end to end: owner death costs a memory hit, not a disk read. blocks-moved/s is measured from the rejoin to handoff quiescence; at 8 KiB blocks the 1 MiB/s budget is 128 blocks/s, and the measured rate must sit at (never materially above) that ceiling — the bound that keeps rebalancing from starving foreground traffic."
	$(GO) run ./cmd/lapbench -exp adaptive -bench | \
		$(GO) run ./cmd/benchfmt -benchmark BenchmarkAdaptiveAB -o BENCH_adaptive.json \
		-description "Strict linear (Ln_Agr_IS_PPM:1) vs the feedback-controlled AdaptiveFDP window (Ad_Agr_IS_PPM:1) on the same live engine, same 200us store, same pause-free sequential streams. deepseq: roomy cache, the window is the only limiter. coldtail: a 6-block cache smaller than the controller's widest window, where deep speculation self-evicts." \
		-command "make bench" \
		-notes "Each policy must win its home workload: adaptive takes deepseq on the latency distribution (the widened window pipelines the store), linear takes coldtail on hit ratio and wasted fetches (the paper's small-cache argument). hit-% undercounts the adaptive pipeline on deepseq — a read that waits microseconds for a landing prefetch books as a miss; ns/op, p50-ns and p99-ns carry that comparison. degree is the controller window at run end; accuracy-% is lifetime useful fraction of resolved prefetches."
	$(GO) run ./cmd/lapbench -exp hotpath -bench | \
		$(GO) run ./cmd/benchfmt -benchmark BenchmarkHotpath -o BENCH_hotpath.json \
		-description "The wire hot path end to end: an in-process server with the vectored (writev) response path and sharded accept loops, driven closed-loop by 1, 64, and 1024 concurrent connections each keeping a 4-deep pipeline of single-block 8 KiB cache-hit reads in flight. Every cell runs twice: response coalescing on (drain-the-ready-queue latch) and off (one writev per frame). ns/op is mean request latency; p50-ns/p99-ns are the tails; req/s is achieved throughput." \
		-command "make bench" \
		-notes "The coalesce-vs-nocoalesce pair at each concurrency level is the latch's A/B: at conns=1 the latch must not tax latency (it only fires when a complete next request is already buffered), at high fan-in it amortizes syscalls across ready responses."
	$(GO) run ./cmd/lapbench -exp load -load-bench -load-rates 500,1000,2000,4000,8000,16000 -load-dur 1s | \
		$(GO) run ./cmd/benchfmt -benchmark BenchmarkLoad -o BENCH_load.json \
		-description "Open-loop throughput-vs-latency sweep against one in-process lapcached node: Poisson arrivals at each offered rate for 1s of virtual time, Zipf(1.1) popularity over 64 files, 4-block spans, latencies measured from each request's scheduled arrival (coordinated-omission corrected) into an HDR-style histogram." \
		-command "make bench" \
		-notes "req_per_s is achieved completion rate at that offered rate; p50/p99/p999 are end-to-end latency from scheduled arrival. BenchmarkLoadKnee marks the first swept rate past the knee criterion (p99 > 8x baseline or achieved < 0.9x offered). The sweep runs warm: each rate reuses the cache state the previous rates built."
	$(GO) run ./cmd/lapbench -exp predictors -scale full -bench | \
		$(GO) run ./cmd/benchfmt -benchmark BenchmarkPredictors -o BENCH_predictors.json \
		-description "The predictor x workload matrix at full scale and the smallest (1 MB/node) cache: NP, the paper's linear-aggressive classics (OBA, IS_PPM:1, IS_PPM:3) and the post-paper association predictors (Mithril, Markov), each over CHARISMA, a whole-file sequential scan (deepseq), a Zipf web/CDN page workload and an OLTP index-then-row workload. ns/op is mean demand read latency; hit-% the demand hit ratio; timely/late/wasted classify every prefetch; pf-B/hit is bytes prefetched per timely hit." \
		-command "make bench" \
		-notes "The run exits nonzero unless the which-predictor-for-which-workload claims hold: the classics keep CHARISMA (paper ranking unchanged) and deepseq, Markov takes the CDN cell and Mithril the OLTP cell outright — scenarios where every linear-sequential config loses to NP. The association predictors only fire under re-fetch pressure, so the matrix is pinned to the cache size whose footprints overflow it."

# Every benchmark in the repo, including the paper-figure regenerators
# (minutes of simulation work).
bench-all:
	$(GO) test -bench=. -benchmem

# Print the full-scale paper-vs-measured record. EXPERIMENTS.md keeps
# a hand-written preamble (the header comment and the Methodology
# section); splice this output in after it when refreshing.
report:
	$(GO) run ./cmd/lapbench -scale full -exp report
