# Development targets. `make check` is the full gate: vet, build,
# the whole test suite under the race detector, and a short run of
# every fuzz target over its seed corpus.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check check-runtime check-cluster check-chaos soak vet build test race fuzz bench bench-all report

check: vet build race fuzz check-runtime check-cluster check-chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The runtime engine and its commands under the race detector: unit
# tests, the linearity stress test (N goroutines on one file), and the
# end-to-end trace replay through a live server.
check-runtime:
	$(GO) test -race -count=1 ./internal/lapcache/... ./internal/lapclient/... ./cmd/...

# The cooperative peer tier under the race detector: ring properties,
# remote-hit forwarding, owner failover, and the 3-node CHARISMA
# replay that asserts the per-file outstanding-prefetch bound holds
# cluster-wide.
check-cluster:
	$(GO) test -race -count=1 ./internal/cluster/...

# The fault-injection subsystem and the chaos harness under the race
# detector: injector determinism/budget unit tests, the single-engine
# faulty-store stress, and the 3-node CHARISMA chaos replay that must
# hold every invariant with hundreds of injected faults.
check-chaos:
	$(GO) test -race -count=1 ./internal/faultinject/... ./internal/chaos/...

# Chaos soak: random seeds in a loop (SOAK_RUNS, default 20). Each run
# prints its seed up front, so a failure names the exact seed to replay
# with `go run ./cmd/lapbench -exp chaos -seed N`.
SOAK_RUNS ?= 20
soak:
	@i=0; while [ $$i -lt $(SOAK_RUNS) ]; do \
		seed=$$(od -An -N4 -tu4 /dev/urandom | tr -d ' '); \
		echo "== chaos soak run $$i seed=$$seed"; \
		$(GO) run ./cmd/lapbench -exp chaos -seed $$seed || { \
			echo "SOAK FAILURE: reproduce with: go run ./cmd/lapbench -exp chaos -seed $$seed"; exit 1; }; \
		i=$$((i+1)); \
	done

# Run each fuzz target briefly; the seed corpus alone is covered by
# plain `go test`, this also explores mutations for FUZZTIME.
fuzz:
	$(GO) test ./internal/workload/ -run FuzzDecode -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -run FuzzWireDecode -fuzz FuzzWireDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster/ -run FuzzRing -fuzz FuzzRing -fuzztime $(FUZZTIME)

# The runtime micro-benchmarks: engine demand-read paths and the JSON
# vs binary wire comparison (BENCH_wire.json), and the cooperative
# tier's local-hit / remote-hit / local-disk ladder (BENCH_cluster.json).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkLapcacheGet|BenchmarkWireRoundTrip' -benchmem . | \
		$(GO) run ./cmd/benchfmt -benchmark "BenchmarkLapcacheGet + BenchmarkWireRoundTrip" -o BENCH_wire.json \
		-description "lapcache engine demand-read paths (zero-copy ReadInto vs legacy copying Read) and one 8 KiB cached block fetched per round trip over loopback TCP: legacy JSON lines vs the binary framed protocol, serial and pipelined." \
		-command "make bench" \
		-notes "binary streams the payload from the refcounted cache buffer (no base64, no copy); binaryPipelined is the -replay configuration: pooled connections with an in-flight window."
	$(GO) test -run '^$$' -bench BenchmarkClusterRead -benchmem . | \
		$(GO) run ./cmd/benchfmt -benchmark BenchmarkClusterRead -o BENCH_cluster.json \
		-description "One 8 KiB block with data per read over loopback TCP: a block cached on the contacted node (localHit), a local miss forwarded to the ring owner holding it in memory (remoteHit, two wire hops), and the same miss against a backing store with a disk-like 2 ms access and no peer tier (localDisk)." \
		-command "make bench" \
		-notes "The paper's premise measured end to end: the remote memory hit is two orders of magnitude faster than the local disk read it replaces. remoteHit runs on a live 3-node cluster (cluster.StartLocal) with the contacted node's cache shrunk to 4 blocks so every read forwards."

# Every benchmark in the repo, including the paper-figure regenerators
# (minutes of simulation work).
bench-all:
	$(GO) test -bench=. -benchmem

# Print the full-scale paper-vs-measured record. EXPERIMENTS.md keeps
# a hand-written preamble (the header comment and the Methodology
# section); splice this output in after it when refreshing.
report:
	$(GO) run ./cmd/lapbench -scale full -exp report
