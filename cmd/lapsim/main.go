// Command lapsim runs one simulation cell — a single point on one
// curve of one of the paper's figures — and prints every metric the
// run produced.
//
// Usage:
//
//	lapsim [-fs pafs|xfs] [-workload charisma|sprite|cdn|oltp] [-alg NAME] [-cache MB] [-scale full|small|tiny]
//	       [-metrics] [-trace-out FILE]
//
// Algorithm names are the paper's: NP, OBA, Ln_Agr_OBA, IS_PPM:1,
// Ln_Agr_IS_PPM:1, IS_PPM:3, Ln_Agr_IS_PPM:3 (plus Agr_OBA and
// Agr_IS_PPM:j for the unthrottled variants used in ablations, and
// the post-paper Mithril/Markov family — see lapcached -list-algs for
// the full set).
//
// -metrics switches the output from the human-readable dump to one
// JSONL record holding every metric, including the observability
// counters (prefetch timeliness, linearity high-water, resource
// utilization). -trace-out streams every simulator event and resource
// transition to FILE as JSONL; tracing is passive, so the metrics are
// identical with and without it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/workload"
)

// tracerOrNil avoids handing a typed-nil *JSONLTracer to the engine as
// a non-nil sim.Tracer interface.
func tracerOrNil(t *experiment.JSONLTracer) sim.Tracer {
	if t == nil {
		return nil
	}
	return t
}

func main() {
	fsName := flag.String("fs", "pafs", "file system: pafs or xfs")
	wlName := flag.String("workload", "charisma", "workload: charisma, sprite, cdn or oltp")
	algName := flag.String("alg", "Ln_Agr_IS_PPM:1", "algorithm name (paper notation)")
	adaptive := flag.Bool("adaptive", false, "replace the algorithm's degree throttle with the AdaptiveFDP controller")
	degreeCap := flag.Int("degree-cap", 0, "hard window ceiling for -adaptive (0 = default)")
	cacheMB := flag.Int("cache", 4, "per-node cache size in MB")
	scaleName := flag.String("scale", "small", "experiment scale: full, small, tiny")
	traceFile := flag.String("trace", "", "replay this tracegen file instead of generating the workload (uses the scale's machine for the chosen workload)")
	metrics := flag.Bool("metrics", false, "emit the full result as one JSONL record instead of the human-readable dump")
	traceOut := flag.String("trace-out", "", "write the simulator event trace to this file as JSONL")
	flag.Parse()

	var fs experiment.FSKind
	switch strings.ToLower(*fsName) {
	case "pafs":
		fs = experiment.PAFS
	case "xfs":
		fs = experiment.XFS
	default:
		fail("unknown file system %q", *fsName)
	}
	var wl experiment.WorkloadKind
	switch strings.ToLower(*wlName) {
	case "charisma":
		wl = experiment.Charisma
	case "sprite":
		wl = experiment.Sprite
	case "cdn":
		wl = experiment.CDN
	case "oltp":
		wl = experiment.OLTP
	default:
		fail("unknown workload %q", *wlName)
	}
	alg, algErr := core.LookupAlg(*algName)
	if algErr != nil {
		fail("%v", algErr)
	}
	if *adaptive {
		alg = core.AdaptiveVariant(alg, *degreeCap)
	}
	var scale experiment.Scale
	switch *scaleName {
	case "full":
		scale = experiment.FullScale()
	case "small":
		scale = experiment.SmallScale()
	case "tiny":
		scale = experiment.TinyScale()
	default:
		fail("unknown scale %q", *scaleName)
	}

	cell := experiment.Cell{FS: fs, Workload: wl, Alg: alg, CacheMB: *cacheMB}

	var tracer *experiment.JSONLTracer
	var traceW *bufio.Writer
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fail("%v", ferr)
		}
		defer f.Close()
		traceW = bufio.NewWriter(f)
		tracer = experiment.NewJSONLTracer(traceW)
	}

	var (
		r   experiment.Result
		err error
	)
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fail("%v", ferr)
		}
		tr, derr := workload.Decode(f)
		f.Close()
		if derr != nil {
			fail("%v", derr)
		}
		mach := scale.PM
		if wl == experiment.Sprite {
			mach = scale.NOW
		}
		r, err = experiment.RunTraceObserved(tr, mach, cell, scale.WarmFraction, tracerOrNil(tracer))
	} else {
		r, err = experiment.RunCellObserved(scale, cell, tracerOrNil(tracer))
	}
	if err != nil {
		fail("%v", err)
	}
	if tracer != nil {
		if terr := tracer.Err(); terr != nil {
			fail("trace-out: %v", terr)
		}
		if terr := traceW.Flush(); terr != nil {
			fail("trace-out: %v", terr)
		}
		fmt.Fprintf(os.Stderr, "lapsim: wrote %d trace records to %s\n", tracer.Records(), *traceOut)
	}

	if *metrics {
		if err := experiment.WriteResultJSONL(os.Stdout, r); err != nil {
			fail("%v", err)
		}
		return
	}
	fmt.Printf("cell                 %s (scale %s)\n", cell, scale.Name)
	fmt.Printf("avg read time        %.3f ms\n", r.AvgReadMs)
	fmt.Printf("reads / writes       %d / %d\n", r.Reads, r.Writes)
	fmt.Printf("block hit ratio      %.3f\n", r.HitRatio)
	fmt.Printf("disk accesses        %d (reads %d, writes %d)\n", r.DiskAccesses, r.DiskReads, r.DiskWrites)
	fmt.Printf("writes per block     %.2f\n", r.WritesPerBlock)
	fmt.Printf("prefetches issued    %d\n", r.PrefetchIssued)
	fmt.Printf("fallback fraction    %.3f\n", r.FallbackFraction)
	fmt.Printf("misprediction ratio  %.3f\n", r.MispredictionRatio)
	fmt.Printf("prefetch timeliness  timely %d, late %d, wasted %d, unused at end %d\n",
		r.PrefetchTimely, r.PrefetchLate, r.PrefetchWasted, r.PrefetchUnusedAtEnd)
	fmt.Printf("max outstanding/file %d\n", r.MaxFilePrefetchHW)
	fmt.Printf("disk utilization     %.3f (prefetch share %.3f, max queue %d)\n",
		r.DiskUtilization, r.DiskPrefetchShare, r.DiskMaxQueue)
	fmt.Printf("net utilization      %.4f (max port queue %d)\n", r.NetUtilization, r.NetMaxQueue)
	fmt.Printf("events fired         %d\n", r.EventsFired)
	fmt.Printf("simulated time       %.3f s\n", r.SimTime.Seconds())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lapsim: "+format+"\n", args...)
	os.Exit(2)
}
