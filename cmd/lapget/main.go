// Command lapget is the lapcached client: single block reads, counter
// snapshots, and whole-trace replays against a live server.
//
// Usage:
//
//	lapget -addr HOST:PORT -file 3 -offset 0 -size 4    one read
//	lapget -addr HOST:PORT -stats                       server counters
//	lapget -addr HOST:PORT -replay trace.txt            replay a trace
//
// A replay drives one goroutine per traced process over a shared pool
// of pipelined binary connections (tune with -conns and -window, or
// force the legacy one-JSON-connection-per-process protocol with
// -json) and then prints the client-side hit ratio next to the
// server's prefetch-timeliness counters — the live analogue of the
// simulator's experiment report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/blockdev"
	"repro/internal/lapclient"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7020", "server address")
		file       = flag.Int("file", 0, "file ID to read")
		offset     = flag.Int("offset", 0, "first block")
		size       = flag.Int("size", 1, "blocks to read")
		wantData   = flag.Bool("data", false, "print the returned block data as hex")
		stats      = flag.Bool("stats", false, "print the server's counter snapshot as JSON")
		replay     = flag.String("replay", "", "replay this trace file through the server")
		thinkScale = flag.Float64("think-scale", 0, "multiply trace think times by this (0 = no thinking)")
		jsonProto  = flag.Bool("json", false, "force the legacy JSON protocol for -replay")
		conns      = flag.Int("conns", 0, "binary connection pool size for -replay (0 = min(8, procs))")
		window     = flag.Int("window", 0, "per-connection in-flight window for -replay (0 = default)")
	)
	flag.Parse()

	switch {
	case *stats:
		c := dial(*addr)
		defer c.Close()
		snap, err := c.Stats()
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		out, _ := json.MarshalIndent(snap, "", "  ")
		fmt.Println(string(out))

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatalf("open trace: %v", err)
		}
		tr, err := workload.Decode(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse trace %s: %v", *replay, err)
		}
		res, err := lapclient.ReplayTrace(*addr, tr, lapclient.ReplayOptions{
			ThinkScale: *thinkScale,
			Conns:      *conns,
			Window:     *window,
			JSON:       *jsonProto,
		})
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		fmt.Printf("replayed %s over %s: %d procs, %d requests (%d reads, %d writes, %d closes) in %v\n",
			tr.Name, res.Proto, res.Procs, res.Requests, res.Reads, res.Writes, res.Closes, res.Elapsed)
		fmt.Printf("client hit ratio: %.3f (%d/%d reads fully cached)\n",
			res.HitRatio(), res.ReadHits, res.Reads)
		c := dial(*addr)
		defer c.Close()
		snap, err := c.Stats()
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		fmt.Printf("server: %s\n", snap)

	default:
		c := dial(*addr)
		defer c.Close()
		data, hit, err := c.Read(blockdev.FileID(*file), blockdev.BlockNo(*offset),
			int32(*size), *wantData)
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		fmt.Printf("read %d:[%d,+%d] hit=%v\n", *file, *offset, *size, hit)
		if *wantData {
			fmt.Printf("% x\n", data)
		}
	}
}

func dial(addr string) *lapclient.Client {
	c, err := lapclient.Dial(addr)
	if err != nil {
		log.Fatalf("dial %s: %v", addr, err)
	}
	return c
}
