// Command lapcached serves a live linear-aggressive prefetching block
// cache over TCP: the paper's predictors and driver running against
// wall-clock time instead of the simulator's virtual clock.
//
// Usage:
//
//	lapcached -addr :7020 -alg Ln_Agr_IS_PPM:3 [-cache-blocks N]
//	          [-store mem|dir] [-latency 2ms] [-trace FILE] [-strict]
//	          [-shards N] [-no-coalesce]
//	          [-peers a:7020,b:7020,c:7020] [-advertise a:7020]
//	          [-join a:7020,b:7020] [-dynamic] [-replicas 2] [-handoff-bps N]
//
// -shards N runs N accept goroutines, pinning each connection to one
// shard: shard-local connection tables and close ledgers mean the hit
// path takes no cross-shard mutex. Responses ride a vectored (writev)
// path and, when a pipelined client has more requests already
// buffered, coalesce into a single syscall; -no-coalesce forces one
// writev per frame (the A/B switch lapbench -exp hotpath measures).
//
// A -trace file (in tracegen's text format) supplies the file table so
// prefetch chains clip at each file's real end. -debug-addr exposes
// the counter snapshot as expvar JSON over HTTP.
//
// With -peers, the daemon joins a cooperative peer group: the listed
// members (which must include this node's own -advertise address)
// form a consistent-hash ring assigning every file one owner. Misses
// on files owned elsewhere are forwarded to the owner — a remote
// memory hit instead of a local disk read — and only the owner runs a
// file's prefetch chain, so the linear bound holds cluster-wide.
// Every member must be started with the same -peers list (order does
// not matter) and the same -block-size.
//
// With -join (or -dynamic for the first node of a fleet), membership
// is dynamic instead: a SWIM-style gossip detector discovers the
// fleet, a versioned ring moves ownership on every join and death,
// writes replicate to the owner's ring successor before the ack
// (R=2 by default), and background rebalancing pushes moved arcs to
// their new owners under the -handoff-bps byte budget. Nodes join and
// die without any restart of the rest of the fleet.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lapcache"
	"repro/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7020", "listen address")
		algName     = flag.String("alg", "Ln_Agr_IS_PPM:3", "prefetch algorithm (paper notation; see -list-algs)")
		listAlgs    = flag.Bool("list-algs", false, "print the known algorithm names and exit")
		cacheBlocks = flag.Int("cache-blocks", 4096, "cache capacity in blocks")
		blockSize   = flag.Int("block-size", 8192, "block size in bytes")
		shards      = flag.Int("shards", 8, "cache mutex stripes and connection accept shards (conn→shard pinning)")
		noCoalesce  = flag.Bool("no-coalesce", false, "disable response frame coalescing (one writev per frame)")
		workers     = flag.Int("workers", 4, "prefetch worker goroutines")
		queueLen    = flag.Int("queue", 64, "prefetch queue bound (backpressure)")
		storeKind   = flag.String("store", "mem", "backing store: mem or dir")
		dir         = flag.String("dir", "", "directory for -store dir")
		latency     = flag.Duration("latency", 2*time.Millisecond, "injected read latency for -store mem")
		traceFile   = flag.String("trace", "", "trace file supplying the file table")
		strict      = flag.Bool("strict", false, "panic if a file ever exceeds the degree policy's outstanding limit")
		adaptive    = flag.Bool("adaptive", false, "replace the algorithm's degree throttle with the AdaptiveFDP controller")
		degreeCap   = flag.Int("degree-cap", 0, "hard window ceiling for -adaptive (0 = default)")
		idleTimeout = flag.Duration("idle-timeout", 0, "drop connections idle for this long (0 = never)")
		debugAddr   = flag.String("debug-addr", "", "HTTP address for expvar counters (off when empty)")
		peers       = flag.String("peers", "", "comma-separated static cluster membership, self included (empty = single node)")
		join        = flag.String("join", "", "comma-separated gossip seeds to join: dynamic membership with replication and rebalancing (empty string alone = first node of a new dynamic fleet with -dynamic)")
		dynamic     = flag.Bool("dynamic", false, "dynamic membership with no seeds: boot as the first node of a fleet others -join")
		replicas    = flag.Int("replicas", 0, "ring members holding each block: 1 = owner only, 2 = owner + successor (0 = 1 static, 2 dynamic)")
		handoffBps  = flag.Int64("handoff-bps", 0, "rebalancing byte budget per second after a ring move (0 = default, negative = unlimited)")
		advertise   = flag.String("advertise", "", "address peers dial for this node (default -addr)")
	)
	flag.Parse()

	if *listAlgs {
		names := core.AlgNames()
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	alg, err := core.LookupAlg(*algName)
	if err != nil {
		log.Fatalf("%v (try -list-algs)", err)
	}
	if *adaptive {
		alg = core.AdaptiveVariant(alg, *degreeCap)
	}

	cfg := lapcache.Config{
		Alg:          alg,
		BlockSize:    *blockSize,
		CacheBlocks:  *cacheBlocks,
		Shards:       *shards,
		Workers:      *workers,
		QueueLen:     *queueLen,
		StrictLinear: *strict,
	}

	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatalf("open trace: %v", err)
		}
		tr, err := workload.Decode(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse trace %s: %v", *traceFile, err)
		}
		cfg.FileBlocks = tr.FileBlocks
		log.Printf("file table: %d files from %s (%s)", len(tr.FileBlocks), *traceFile, tr.Name)
	}

	var fileStore *lapcache.FileStore
	switch *storeKind {
	case "mem":
		cfg.Store = lapcache.NewMemStore(*blockSize, *latency)
	case "dir":
		if *dir == "" {
			log.Fatal("-store dir needs -dir")
		}
		fs, err := lapcache.NewFileStore(*dir, int64(*blockSize))
		if err != nil {
			log.Fatalf("open file store: %v", err)
		}
		fileStore = fs
		cfg.Store = fs
	default:
		log.Fatalf("unknown store %q", *storeKind)
	}

	var node *cluster.Node
	if *peers != "" || *join != "" || *dynamic {
		self := *advertise
		if self == "" {
			self = *addr
		}
		ccfg := cluster.Config{
			Self:       self,
			Dynamic:    *dynamic,
			Replicas:   *replicas,
			HandoffBps: *handoffBps,
			Logf:       log.Printf,
		}
		switch {
		case *join != "" || *dynamic:
			// Dynamic membership: gossip discovers the fleet, so no
			// static list is needed (or wanted — a stale one would only
			// seed the ring with ghosts).
			if *peers != "" {
				log.Fatal("-peers is static membership; use -join (or -dynamic) without it")
			}
			for _, s := range strings.Split(*join, ",") {
				if s = strings.TrimSpace(s); s != "" {
					ccfg.Join = append(ccfg.Join, s)
				}
			}
			if len(ccfg.Join) == 0 && !*dynamic {
				log.Fatal("-join lists no seeds; pass -dynamic to boot a new fleet")
			}
		default:
			members := strings.Split(*peers, ",")
			found := false
			for i, m := range members {
				members[i] = strings.TrimSpace(m)
				if members[i] == self {
					found = true
				}
			}
			if !found {
				log.Fatalf("-peers %q does not include this node's advertise address %q", *peers, self)
			}
			ccfg.Peers = members
		}
		n, err := cluster.NewNode(ccfg)
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		node = n
		cfg.Remote = node
	}

	engine, err := lapcache.New(cfg)
	if err != nil {
		log.Fatalf("start engine: %v", err)
	}

	if *debugAddr != "" {
		expvar.Publish("lapcache", expvar.Func(func() any { return engine.Snapshot() }))
		go func() {
			log.Printf("expvar counters on http://%s/debug/vars", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := lapcache.NewServer(engine)
	srv.IdleTimeout = *idleTimeout
	srv.Shards = *shards
	srv.NoCoalesce = *noCoalesce
	if node != nil {
		srv.Cluster = node
		node.Start()
		log.Printf("cluster: self=%s members=%v", node.Self(), node.MemberAddrs())
	}
	log.Printf("lapcached: alg=%s cache=%d blocks (%d B each) store=%s listening on %s",
		alg.Name(), *cacheBlocks, *blockSize, *storeKind, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("shutting down")
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
	if node != nil {
		node.Close()
	}
	engine.Shutdown()
	if fileStore != nil {
		fileStore.Close()
	}
	log.Printf("final: %s", engine.Snapshot())
}
