// Command predict scores the prefetch predictors offline against the
// request streams of a workload, with no cache or disks in the loop:
// pure prediction accuracy, the property §2.2 of the paper argues
// IS_PPM has and One-Block-Ahead lacks on non-sequential patterns.
//
// Usage:
//
//	predict [-workload charisma|sprite] [-scale full|small|tiny] [-mode file|nodefile] [-trace FILE]
//
// With -trace, a text trace written by tracegen is scored instead of a
// freshly generated one.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/predeval"
	"repro/internal/workload"
)

func main() {
	wlName := flag.String("workload", "charisma", "workload: charisma or sprite")
	scaleName := flag.String("scale", "small", "experiment scale: full, small, tiny")
	modeName := flag.String("mode", "file", "stream mode: file (PAFS server view) or nodefile (xFS node view)")
	traceFile := flag.String("trace", "", "score this tracegen file instead of generating")
	flag.Parse()

	var mode predeval.StreamMode
	switch *modeName {
	case "file":
		mode = predeval.PerFile
	case "nodefile":
		mode = predeval.PerNodeFile
	default:
		fail("unknown mode %q", *modeName)
	}

	var (
		tr        *workload.Trace
		blockSize int64 = 8192
		err       error
	)
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fail("%v", ferr)
		}
		defer f.Close()
		tr, err = workload.Decode(f)
	} else {
		var scale experiment.Scale
		switch *scaleName {
		case "full":
			scale = experiment.FullScale()
		case "small":
			scale = experiment.SmallScale()
		case "tiny":
			scale = experiment.TinyScale()
		default:
			fail("unknown scale %q", *scaleName)
		}
		switch *wlName {
		case "charisma":
			blockSize = scale.Charisma.BlockSize
			tr, err = workload.GenerateCharisma(scale.Charisma)
		case "sprite":
			blockSize = scale.Sprite.BlockSize
			tr, err = workload.GenerateSprite(scale.Sprite)
		default:
			fail("unknown workload %q", *wlName)
		}
	}
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("prediction accuracy, %s streams of trace %q:\n\n", mode, tr.Name)
	for _, r := range predeval.EvaluateStandard(tr, mode, blockSize) {
		fmt.Println(r)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "predict: "+format+"\n", args...)
	os.Exit(2)
}
