// Command tracegen materializes the synthetic workloads — the paper's
// CHARISMA and Sprite plus the post-paper CDN and OLTP scenarios — as
// text trace files, or prints summary statistics about them, so the
// request streams driving the experiments can be inspected and
// replayed.
//
// Usage:
//
//	tracegen -workload charisma|sprite|cdn|oltp [-scale full|small|tiny] [-seed N] [-o FILE] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/blockdev"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	wlName := flag.String("workload", "charisma", "workload: charisma, sprite, cdn or oltp")
	scaleName := flag.String("scale", "small", "experiment scale: full, small, tiny")
	seed := flag.Uint64("seed", 0, "override the generator seed (0 keeps the scale's)")
	out := flag.String("o", "", "write the trace to this file (default stdout)")
	statsOnly := flag.Bool("stats", false, "print summary statistics instead of the trace")
	analyze := flag.Bool("analyze", false, "print the fidelity analysis (request mix, sequentiality, sharing) instead of the trace")
	flag.Parse()

	var scale experiment.Scale
	switch *scaleName {
	case "full":
		scale = experiment.FullScale()
	case "small":
		scale = experiment.SmallScale()
	case "tiny":
		scale = experiment.TinyScale()
	default:
		fail("unknown scale %q", *scaleName)
	}

	var (
		tr  *workload.Trace
		err error
	)
	switch *wlName {
	case "charisma":
		p := scale.Charisma
		if *seed != 0 {
			p.Seed = *seed
		}
		tr, err = workload.GenerateCharisma(p)
	case "sprite":
		p := scale.Sprite
		if *seed != 0 {
			p.Seed = *seed
		}
		tr, err = workload.GenerateSprite(p)
	case "cdn":
		p := scale.CDN
		if *seed != 0 {
			p.Seed = *seed
		}
		tr, err = workload.GenerateCDN(p)
	case "oltp":
		p := scale.OLTP
		if *seed != 0 {
			p.Seed = *seed
		}
		tr, err = workload.GenerateOLTP(p)
	default:
		fail("unknown workload %q", *wlName)
	}
	if err != nil {
		fail("%v", err)
	}

	if *analyze {
		fmt.Print(workload.Analyze(tr, 8192).Render())
		return
	}
	if *statsOnly {
		printStats(tr)
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := workload.Encode(w, tr); err != nil {
		fail("%v", err)
	}
}

func printStats(tr *workload.Trace) {
	reads, writes, closes := 0, 0, 0
	var bytes int64
	filesUsed := make(map[blockdev.FileID]bool)
	for _, p := range tr.Procs {
		for _, s := range p.Steps {
			switch s.Kind {
			case workload.OpRead:
				reads++
				bytes += s.Size
			case workload.OpWrite:
				writes++
				bytes += s.Size
			case workload.OpClose:
				closes++
			}
			filesUsed[s.File] = true
		}
	}
	sizes := make([]int, 0, len(tr.FileBlocks))
	for _, b := range tr.FileBlocks {
		sizes = append(sizes, int(b))
	}
	sort.Ints(sizes)
	fmt.Printf("trace            %s\n", tr.Name)
	fmt.Printf("processes        %d\n", len(tr.Procs))
	fmt.Printf("files            %d declared, %d used\n", len(tr.FileBlocks), len(filesUsed))
	fmt.Printf("file blocks      median %d, max %d, total %d\n",
		sizes[len(sizes)/2], sizes[len(sizes)-1], tr.DistinctBlocks())
	fmt.Printf("steps            %d (reads %d, writes %d, closes %d)\n",
		tr.TotalSteps(), reads, writes, closes)
	fmt.Printf("request bytes    %d (%.1f MB)\n", bytes, float64(bytes)/1e6)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(2)
}
