package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/lapcache"
)

// runAdaptive is the adaptive-vs-linear A/B: the same live engine, the
// same backing store and the same request stream, run once under the
// paper's strict linear throttle (Ln_Agr_IS_PPM:1) and once under the
// feedback-controlled AdaptiveFDP policy (Ad_Agr_IS_PPM:1). Two
// workloads bracket the trade-off the controller navigates:
//
//   - deepseq: pause-free sequential bursts against a slow store and a
//     roomy cache. One outstanding prefetch caps throughput at one
//     block per store round-trip; the controller detects the timely
//     starvation (high accuracy, high late rate), widens toward its
//     cap, and pipelines the stream. Adaptive should win hit ratio and
//     the latency tail here.
//
//   - coldtail: the same sequential streams squeezed through a cache
//     smaller than the controller's widest window. Deep speculation
//     self-evicts — prefetched blocks are pushed out by later
//     prefetches before the reader arrives — so every widened phase
//     pays wasted fetches and re-misses until the waste feedback
//     clamps the window back to 1. Strict linear never enters that
//     cycle and should win here, which is the paper's argument for the
//     linear throttle on small caches.
//
// benchOut emits go-bench result lines (consumed by cmd/benchfmt into
// BENCH_adaptive.json) instead of the human table.
func runAdaptive(seed uint64, benchOut bool) error {
	workloads := []abWorkload{deepSeqWorkload(seed), coldTailWorkload(seed)}
	algs := []core.AlgSpec{core.SpecLnAgrISPPM1, core.SpecAdAgrISPPM1}

	var rows []abResult
	for _, wl := range workloads {
		for _, alg := range algs {
			res, err := runABConfig(wl, alg)
			if err != nil {
				return fmt.Errorf("adaptive A/B %s/%s: %w", wl.name, alg.Name(), err)
			}
			rows = append(rows, res)
		}
	}

	if benchOut {
		for _, r := range rows {
			fmt.Printf("BenchmarkAdaptiveAB/%s/%s %d %.0f ns/op %d p50-ns %d p99-ns %d degree %.1f accuracy-%% %.1f hit-%%\n",
				r.workload, r.alg, r.reads, r.nsPerRead, r.p50.Nanoseconds(), r.p99.Nanoseconds(),
				r.maxDegree, 100*r.accuracy, 100*r.hitRatio)
		}
		return checkAB(rows)
	}

	fmt.Printf("adaptive A/B: %s vs %s, same engine, same store, same stream\n\n",
		algs[0].Name(), algs[1].Name())
	fmt.Printf("%-9s %-16s %8s %6s %10s %10s %7s %7s %7s %8s %8s\n",
		"workload", "alg", "reads", "hit-%", "p50", "p99", "deg", "widen", "clamp", "wasted", "elapsed")
	for _, r := range rows {
		fmt.Printf("%-9s %-16s %8d %6.1f %10v %10v %7d %7d %7d %8d %8v\n",
			r.workload, r.alg, r.reads, 100*r.hitRatio, r.p50.Round(time.Microsecond),
			r.p99.Round(time.Microsecond), r.maxDegree, r.widens, r.clamps, r.wasted,
			r.elapsed.Round(time.Millisecond))
	}
	fmt.Println()

	// The headline checks, mirrored by TestAdaptiveAB: each policy must
	// win its home workload, and the strict run must stay exactly
	// linear. (Raw hit-% undercounts the widened pipeline — a read that
	// waits even microseconds for a landing prefetch books as a miss —
	// so deepseq's win is judged on the latency distribution.)
	deep := pick(rows, "deepseq")
	cold := pick(rows, "coldtail")
	fmt.Printf("deepseq : adaptive p50 %v vs linear %v, p99 %v vs %v, run %v vs %v\n",
		deep[1].p50.Round(time.Microsecond), deep[0].p50.Round(time.Microsecond),
		deep[1].p99.Round(time.Microsecond), deep[0].p99.Round(time.Microsecond),
		deep[1].elapsed.Round(time.Millisecond), deep[0].elapsed.Round(time.Millisecond))
	fmt.Printf("coldtail: linear hit %.1f%% vs adaptive %.1f%%, wasted %d vs %d\n",
		100*cold[0].hitRatio, 100*cold[1].hitRatio, cold[0].wasted, cold[1].wasted)

	return checkAB(rows)
}

// checkAB enforces the A/B's headline claims: each policy wins its
// home workload. (The per-config cap and strict-linearity checks
// already ran inside runABConfig.)
func checkAB(rows []abResult) error {
	deep := pick(rows, "deepseq")
	cold := pick(rows, "coldtail")
	if !(deep[1].p50 < deep[0].p50 || deep[1].p99 < deep[0].p99 || deep[1].hitRatio > deep[0].hitRatio) {
		return fmt.Errorf("adaptive did not win deepseq (p50 %v vs %v, p99 %v vs %v)",
			deep[1].p50, deep[0].p50, deep[1].p99, deep[0].p99)
	}
	// Coldtail's hit ratio is a per-block photo finish (the prefetch
	// and the next demand read both take one 200µs store round trip),
	// so on a heavily loaded box it can invert. The waste gap cannot:
	// a widened chain in a 6-block cache evicts its own unread
	// prefetches, so adaptive's wasted count dwarfs strict linear's
	// regardless of scheduling.
	if !(cold[0].hitRatio > cold[1].hitRatio || cold[0].p99 < cold[1].p99 || cold[0].wasted < cold[1].wasted) {
		return fmt.Errorf("linear did not win coldtail (hit %.3f vs %.3f, p99 %v vs %v, wasted %d vs %d)",
			cold[0].hitRatio, cold[1].hitRatio, cold[0].p99, cold[1].p99, cold[0].wasted, cold[1].wasted)
	}
	return nil
}

// abWorkload is one side of the A/B: an engine shape plus a
// deterministic client. run issues every read and returns per-read
// wall-clock latencies.
type abWorkload struct {
	name        string
	cacheBlocks int
	storeLat    time.Duration
	workers     int
	queueLen    int
	fileBlocks  map[blockdev.FileID]blockdev.BlockNo
	run         func(e *lapcache.Engine) ([]time.Duration, error)
}

// abResult is one (workload, alg) cell.
type abResult struct {
	workload  string
	alg       string
	reads     int
	nsPerRead float64
	hitRatio  float64
	p50, p99  time.Duration
	elapsed   time.Duration
	maxDegree int
	accuracy  float64
	widens    uint64
	clamps    uint64
	wasted    uint64
	maxHW     int
	linViol   uint64
}

const abBlockSize = 512

// deepSeqWorkload: 8 files of 768 blocks each, read back-to-back one
// block at a time with no think time, against a 200µs store and a
// cache big enough that speculation never self-evicts. The only
// limiter is the outstanding-prefetch window.
func deepSeqWorkload(seed uint64) abWorkload {
	const (
		files     = 8
		blocks    = 768
		fileBase  = 100
		storeLat  = 200 * time.Microsecond
		cacheBlks = 4096
	)
	ft := make(map[blockdev.FileID]blockdev.BlockNo, files)
	for i := 0; i < files; i++ {
		ft[blockdev.FileID(fileBase+i)] = blocks
	}
	return abWorkload{
		name:        "deepseq",
		cacheBlocks: cacheBlks,
		storeLat:    storeLat,
		workers:     16,
		queueLen:    256,
		fileBlocks:  ft,
		run: func(e *lapcache.Engine) ([]time.Duration, error) {
			lats := make([]time.Duration, 0, files*blocks)
			order := filePerm(files, seed)
			for _, i := range order {
				f := blockdev.FileID(fileBase + i)
				for b := blockdev.BlockNo(0); b < blocks; b++ {
					t0 := time.Now()
					if _, _, err := e.Read(f, b, 1); err != nil {
						return nil, err
					}
					lats = append(lats, time.Since(t0))
				}
				e.CloseFile(f)
			}
			return lats, nil
		},
	}
}

// coldTailWorkload: the same pause-free sequential streams, but the
// cache holds only 6 blocks — smaller than the adaptive controller's
// widest window. A widened chain evicts its own not-yet-read
// prefetches (and the stream's recent blocks), so aggression converts
// timely hits into wasted fetches plus re-misses; strict linear's
// single outstanding block always fits.
func coldTailWorkload(seed uint64) abWorkload {
	const (
		files     = 4
		blocks    = 1024
		fileBase  = 200
		storeLat  = 200 * time.Microsecond
		cacheBlks = 6
	)
	ft := make(map[blockdev.FileID]blockdev.BlockNo, files)
	for i := 0; i < files; i++ {
		ft[blockdev.FileID(fileBase+i)] = blocks
	}
	return abWorkload{
		name:        "coldtail",
		cacheBlocks: cacheBlks,
		storeLat:    storeLat,
		workers:     16,
		queueLen:    256,
		fileBlocks:  ft,
		run: func(e *lapcache.Engine) ([]time.Duration, error) {
			lats := make([]time.Duration, 0, files*blocks)
			order := filePerm(files, seed)
			for _, i := range order {
				f := blockdev.FileID(fileBase + i)
				for b := blockdev.BlockNo(0); b < blocks; b++ {
					t0 := time.Now()
					if _, _, err := e.Read(f, b, 1); err != nil {
						return nil, err
					}
					lats = append(lats, time.Since(t0))
				}
				e.CloseFile(f)
			}
			return lats, nil
		},
	}
}

// runABConfig boots one engine for (workload, alg), replays the
// client, and collapses the run into an abResult.
func runABConfig(wl abWorkload, alg core.AlgSpec) (abResult, error) {
	e, err := lapcache.New(lapcache.Config{
		Alg:         alg,
		BlockSize:   abBlockSize,
		CacheBlocks: wl.cacheBlocks,
		Workers:     wl.workers,
		QueueLen:    wl.queueLen,
		FileBlocks:  wl.fileBlocks,
		Store:       lapcache.NewMemStore(abBlockSize, wl.storeLat),
	})
	if err != nil {
		return abResult{}, err
	}
	defer e.Shutdown()

	t0 := time.Now()
	lats, err := wl.run(e)
	if err != nil {
		return abResult{}, err
	}
	elapsed := time.Since(t0)

	s := e.Snapshot()
	res := abResult{
		workload: wl.name,
		alg:      alg.Name(),
		reads:    len(lats),
		elapsed:  elapsed,
		wasted:   s.PrefetchWasted,
		maxHW:    s.MaxFileOutstandingHW,
		linViol:  s.LinearViolations,
	}
	if len(lats) > 0 {
		res.nsPerRead = float64(elapsed.Nanoseconds()) / float64(len(lats))
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.p50 = lats[len(lats)/2]
		res.p99 = lats[len(lats)*99/100]
	}
	if total := s.DemandHits + s.DemandMisses; total > 0 {
		res.hitRatio = float64(s.DemandHits) / float64(total)
	}
	if agg, adaptive := e.DegreeStats(); adaptive {
		res.maxDegree = agg.Degree
		res.accuracy = agg.Accuracy()
		res.widens = agg.Widens
		res.clamps = agg.Clamps
	} else {
		res.maxDegree = alg.DegreeCap()
		if fb := s.PrefetchTimely + s.PrefetchLate + s.PrefetchWasted + s.PrefetchUnused; fb > 0 {
			res.accuracy = float64(s.PrefetchTimely+s.PrefetchLate) / float64(fb)
		}
	}

	// Both sides ride the same ledger the cluster audits: the high-water
	// must respect the policy cap, and the strict side must be exactly
	// linear.
	if cap := alg.DegreeCap(); cap > 0 && res.maxHW > cap {
		return res, fmt.Errorf("per-file high-water %d exceeds degree cap %d", res.maxHW, cap)
	}
	if !alg.Adaptive && res.linViol > 0 {
		return res, fmt.Errorf("%d linear violations under strict policy", res.linViol)
	}
	return res, nil
}

// filePerm is a seed-keyed permutation of [0,n): the A/B varies file
// order across seeds without pulling in math/rand.
func filePerm(n int, seed uint64) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	x := seed*6364136223846793005 + 1442695040888963407
	for i := n - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := int(x % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// pick returns the workload's [linear, adaptive] pair in that order.
func pick(rows []abResult, workload string) [2]abResult {
	var out [2]abResult
	for _, r := range rows {
		if r.workload != workload {
			continue
		}
		if len(r.alg) >= 2 && r.alg[:2] == "Ad" {
			out[1] = r
		} else {
			out[0] = r
		}
	}
	return out
}
