package main

import (
	"fmt"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/workload"
)

// predAlgs is the predictor × driver matrix under test: the paper's
// linear-aggressive classics, the post-paper association predictors,
// and NP as the do-nothing baseline. All prefetchers run under the
// same linear throttle, so the only variable is the predictor.
func predAlgs() []core.AlgSpec {
	return []core.AlgSpec{
		core.SpecNP,
		core.SpecLnAgrOBA,
		core.SpecLnAgrISPPM1,
		core.SpecLnAgrISPPM3,
		core.SpecLnAgrMithril,
		core.SpecLnAgrMarkov,
	}
}

// classicPred reports whether the algorithm is one of the paper's
// linear-aggressive configurations (the incumbents the new predictors
// are judged against).
func classicPred(name string) bool {
	return name == "Ln_Agr_OBA" || name == "Ln_Agr_IS_PPM:1" || name == "Ln_Agr_IS_PPM:3"
}

// predCell is one (workload, algorithm) run of the matrix at the
// scenario cache size.
type predCell struct {
	workload string
	alg      core.AlgSpec
	res      experiment.Result
}

// deepSeqTrace builds the whole-file sequential scan workload: every
// client streams its own large file start to finish, block run after
// block run. The best case for sequential predictors — OBA is right on
// every request — and the control scenario where the new predictors
// must NOT win.
func deepSeqTrace(nodes int, blockSize int64) *workload.Trace {
	// Offered load stays well under aggregate disk capacity and think
	// time is long vs a ~15ms disk read, so an aggressive chain can run
	// ahead of the reader; that gap is precisely the win the paper
	// claims for sequential scans.
	const (
		clients    = 12
		fileBlocks = 900
		runBlocks  = 4
		thinkMs    = 80
	)
	tr := &workload.Trace{
		Name:       "deepseq",
		FileBlocks: make(map[blockdev.FileID]blockdev.BlockNo),
	}
	rng := sim.NewRNG(7)
	for ci := 0; ci < clients; ci++ {
		crng := rng.Split()
		f := blockdev.FileID(ci)
		tr.FileBlocks[f] = fileBlocks
		proc := workload.Process{Node: blockdev.NodeID(ci % nodes)}
		for off := int64(0); off < fileBlocks; off += runBlocks {
			n := int64(runBlocks)
			if off+n > fileBlocks {
				n = fileBlocks - off
			}
			proc.Steps = append(proc.Steps, workload.Step{
				Think:  sim.Duration(crng.Exp(float64(sim.Milliseconds(thinkMs)))),
				Kind:   workload.OpRead,
				File:   f,
				Offset: off * blockSize,
				Size:   n * blockSize,
			})
		}
		tr.Procs = append(tr.Procs, proc)
	}
	return tr
}

// runPredictors runs the predictor × workload matrix — the paper's
// CHARISMA plus deepseq, CDN and OLTP — at the scale's smallest cache
// (the paper's small-cache regime, and the only regime where re-fetch
// pressure exists at all), prints the which-predictor-for-which-
// workload report, and enforces its headline claims. benchOut emits
// go-bench result lines (consumed by cmd/benchfmt into
// BENCH_predictors.json) instead of the table.
func runPredictors(s experiment.Scale, workers int, benchOut bool) error {
	cacheMB := s.CacheSizesMB[0]
	algs := predAlgs()

	type job struct {
		workload string
		kind     experiment.WorkloadKind // used when trace == nil
		trace    *workload.Trace
		alg      core.AlgSpec
	}
	deep := deepSeqTrace(s.NOW.Nodes, s.NOW.BlockSize)
	var jobs []job
	for _, wl := range []struct {
		name  string
		kind  experiment.WorkloadKind
		trace *workload.Trace
	}{
		{"charisma", experiment.Charisma, nil},
		{"deepseq", 0, deep},
		{"cdn", experiment.CDN, nil},
		{"oltp", experiment.OLTP, nil},
	} {
		for _, a := range algs {
			jobs = append(jobs, job{wl.name, wl.kind, wl.trace, a})
		}
	}

	if workers <= 0 {
		workers = 4
	}
	cells := make([]predCell, len(jobs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				j := jobs[i]
				c := experiment.Cell{FS: experiment.PAFS, Workload: j.kind, Alg: j.alg, CacheMB: cacheMB}
				var (
					res experiment.Result
					err error
				)
				if j.trace != nil {
					res, err = experiment.RunTrace(j.trace, s.NOW, c, s.WarmFraction)
				} else {
					res, err = experiment.RunCell(s, c)
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("predictors %s/%s: %w", j.workload, j.alg.Name(), err)
				}
				mu.Unlock()
				cells[i] = predCell{workload: j.workload, alg: j.alg, res: res}
			}
		}()
	}
	for i := range jobs {
		ch <- i
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	blockSize := s.NOW.BlockSize
	pfBytesPerHit := func(r experiment.Result) float64 {
		if r.PrefetchTimely == 0 {
			return 0
		}
		return float64(r.PrefetchIssued*uint64(blockSize)) / float64(r.PrefetchTimely)
	}

	// The win-ratio claims only hold at full scale: at smaller scales
	// the workload footprints fit in cache, so the association
	// predictors have no re-fetch traffic to predict.
	enforce := s.Name == "full"

	if benchOut {
		for _, c := range cells {
			r := c.res
			fmt.Printf("BenchmarkPredictors/%s/%s %d %.0f ns/op %.1f hit-%% %d timely %d late %d wasted %.0f pf-B/hit\n",
				c.workload, c.alg.Name(), r.Reads, r.AvgReadMs*1e6, 100*r.HitRatio,
				r.PrefetchTimely, r.PrefetchLate, r.PrefetchWasted, pfBytesPerHit(r))
		}
		if !enforce {
			return nil
		}
		return checkPredictors(cells)
	}

	fmt.Printf("predictor × workload matrix: PAFS, %dMB per-node cache, scale %s\n", cacheMB, s.Name)
	fmt.Printf("(avg read time is the paper's figure of merit; pf-B/hit is bytes prefetched per timely hit)\n\n")
	last := ""
	for _, c := range cells {
		if c.workload != last {
			if last != "" {
				fmt.Println()
			}
			fmt.Printf("%-10s %-18s %9s %6s %8s %8s %8s %8s %10s\n",
				"workload", "alg", "read-ms", "hit-%", "issued", "timely", "late", "wasted", "pf-B/hit")
			last = c.workload
		}
		r := c.res
		fmt.Printf("%-10s %-18s %9.3f %6.1f %8d %8d %8d %8d %10.0f\n",
			c.workload, c.alg.Name(), r.AvgReadMs, 100*r.HitRatio,
			r.PrefetchIssued, r.PrefetchTimely, r.PrefetchLate, r.PrefetchWasted, pfBytesPerHit(r))
	}
	fmt.Println()

	best := func(wl string) predCell {
		var b predCell
		for _, c := range cells {
			if c.workload != wl {
				continue
			}
			if b.workload == "" || c.res.AvgReadMs < b.res.AvgReadMs {
				b = c
			}
		}
		return b
	}
	for _, wl := range []string{"charisma", "deepseq", "cdn", "oltp"} {
		b := best(wl)
		fmt.Printf("%-10s best: %-18s %.3f ms\n", wl, b.alg.Name(), b.res.AvgReadMs)
	}
	if !enforce {
		fmt.Printf("\n(win checks skipped at scale %s: footprints fit in cache)\n", s.Name)
		return nil
	}
	return checkPredictors(cells)
}

// checkPredictors enforces the matrix's headline claims:
//
//  1. the paper's small-cache CHARISMA ranking is unchanged — the best
//     classic linear-aggressive algorithm still beats both new
//     predictors there, and still beats NP;
//  2. deepseq stays classic territory too;
//  3. each new predictor wins at least one scenario outright (best
//     avg read time in the cell) — a cell the classics lose.
func checkPredictors(cells []predCell) error {
	byWl := make(map[string][]predCell)
	for _, c := range cells {
		byWl[c.workload] = append(byWl[c.workload], c)
	}
	get := func(wl, alg string) predCell {
		for _, c := range byWl[wl] {
			if c.alg.Name() == alg {
				return c
			}
		}
		return predCell{}
	}
	bestClassic := func(wl string) predCell {
		var b predCell
		for _, c := range byWl[wl] {
			if !classicPred(c.alg.Name()) {
				continue
			}
			if b.workload == "" || c.res.AvgReadMs < b.res.AvgReadMs {
				b = c
			}
		}
		return b
	}
	winner := func(wl string) predCell {
		var b predCell
		for _, c := range byWl[wl] {
			if b.workload == "" || c.res.AvgReadMs < b.res.AvgReadMs {
				b = c
			}
		}
		return b
	}

	// 1. CHARISMA: classic linear-aggressive must beat NP (the paper's
	// headline) and both new predictors (the ranking is preserved).
	chClassic := bestClassic("charisma")
	if np := get("charisma", "NP"); chClassic.res.AvgReadMs >= np.res.AvgReadMs {
		return fmt.Errorf("charisma: classic %s (%.3f ms) did not beat NP (%.3f ms)",
			chClassic.alg.Name(), chClassic.res.AvgReadMs, np.res.AvgReadMs)
	}
	for _, name := range []string{"Ln_Agr_Mithril", "Ln_Agr_Markov"} {
		if n := get("charisma", name); chClassic.res.AvgReadMs >= n.res.AvgReadMs {
			return fmt.Errorf("charisma ranking changed: %s (%.3f ms) beat classic %s (%.3f ms)",
				name, n.res.AvgReadMs, chClassic.alg.Name(), chClassic.res.AvgReadMs)
		}
	}

	// 2. deepseq: a classic sequential predictor must win the cell.
	if w := winner("deepseq"); !classicPred(w.alg.Name()) {
		return fmt.Errorf("deepseq won by %s (%.3f ms), want a classic sequential predictor",
			w.alg.Name(), w.res.AvgReadMs)
	}

	// 3. Each new predictor takes at least one scenario outright —
	// meaning every classic linear-aggressive config loses that cell.
	wins := map[string]string{}
	for _, wl := range []string{"cdn", "oltp"} {
		wins[winner(wl).alg.Name()] = wl
	}
	for _, name := range []string{"Ln_Agr_Mithril", "Ln_Agr_Markov"} {
		wl, ok := wins[name]
		if !ok {
			return fmt.Errorf("%s won no scenario (cdn winner %s, oltp winner %s)",
				name, winner("cdn").alg.Name(), winner("oltp").alg.Name())
		}
		if c := bestClassic(wl); c.res.AvgReadMs <= winner(wl).res.AvgReadMs {
			return fmt.Errorf("%s: classic %s did not lose the cell", wl, c.alg.Name())
		}
	}
	return nil
}
