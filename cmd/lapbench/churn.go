package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lapcache"
	"repro/internal/lapclient"
)

// runChurnDemo walks the dynamic-membership story end to end on a
// live in-process cluster: boot three gossiping nodes, write a file
// population with R=2 replication, kill one node and show its files
// still served at replica-memory speed (not the disk latency the
// paper's cooperative cache exists to avoid), then restart it and
// watch the ring reconverge and the bounded-rate handoff repopulate
// the rejoined node. It is the CLI twin of the chaos churn invariants:
// the same machinery, narrated instead of audited.
func runChurnDemo() error {
	const (
		nNodes      = 3
		blockSize   = 512
		nFiles      = 64
		blocksPer   = 8
		diskLatency = 2 * time.Millisecond
	)

	fileBlocks := make(map[blockdev.FileID]blockdev.BlockNo, nFiles)
	for f := 0; f < nFiles; f++ {
		fileBlocks[blockdev.FileID(f)] = blocksPer
	}

	nodes, stop, err := cluster.StartLocalWith(nNodes,
		func(i int, addrs []string) lapcache.Config {
			return lapcache.Config{
				Alg:          core.SpecLnAgrISPPM1,
				BlockSize:    blockSize,
				CacheBlocks:  4096,
				Workers:      8,
				QueueLen:     128,
				FileBlocks:   fileBlocks,
				StrictLinear: true,
				Store:        lapcache.NewMemStore(blockSize, diskLatency),
			}
		},
		cluster.StartLocalOpts{TweakNode: func(i int, cfg *cluster.Config) {
			cfg.Dynamic = true
			for _, a := range cfg.Peers {
				if a != cfg.Self {
					cfg.Join = append(cfg.Join, a)
				}
			}
			cfg.GossipInterval = 20 * time.Millisecond
			cfg.SuspicionTimeout = 300 * time.Millisecond
			cfg.HandoffBps = 1 << 20
			cfg.PeerCallTimeout = time.Second
		}})
	if err != nil {
		return err
	}
	defer stop()

	fmt.Printf("boot:    %d nodes, dynamic membership (gossip every 20ms, suspicion 300ms), R=2, handoff 1 MiB/s\n", nNodes)
	fmt.Printf("         store latency %v — the disk read a replica memory hit replaces\n\n", diskLatency)

	// Phase 1 — populate through node 0. Every write should come back
	// FlagReplicated: owner plus ring successor both installed it.
	pool0, err := lapclient.DialPool(nodes[0].Addr, 2, 0)
	if err != nil {
		return err
	}
	replicated := 0
	for f := 0; f < nFiles; f++ {
		ok, err := pool0.WriteChecked(blockdev.FileID(f), 0, blocksPer, nil)
		if err != nil {
			pool0.Close()
			return fmt.Errorf("populate file %d: %w", f, err)
		}
		if ok {
			replicated++
		}
	}
	pool0.Close()
	fmt.Printf("write:   %d files x %d blocks through %s; %d/%d acked replicated (owner + successor)\n",
		nFiles, blocksPer, nodes[0].Addr, replicated, nFiles)
	if replicated == 0 {
		return fmt.Errorf("churn demo: no write was acked replicated; R=2 never engaged")
	}

	// Pick the victim: the node owning the most files, so the kill
	// moves the largest arc.
	owned := make([]int, nNodes)
	for f := 0; f < nFiles; f++ {
		for i, m := range nodes {
			if m.Node.Owned(blockdev.FileID(f)) {
				owned[i]++
			}
		}
	}
	victim := 0
	for i, n := range owned {
		if n > owned[victim] {
			victim = i
		}
	}
	var victimFiles []blockdev.FileID
	for f := 0; f < nFiles; f++ {
		if nodes[victim].Node.Owned(blockdev.FileID(f)) {
			victimFiles = append(victimFiles, blockdev.FileID(f))
		}
	}
	survivor := (victim + 1) % nNodes
	fmt.Printf("ring:    files per node %v; killing %s (owns %d files)\n\n",
		owned, nodes[victim].Addr, len(victimFiles))

	// Phase 2 — kill, wait for the survivors to convict it and move
	// the ring.
	nodes[victim].Kill()
	start := time.Now()
	if err := waitMembers(nodes, victim, nNodes-1, 10*time.Second); err != nil {
		return err
	}
	fmt.Printf("kill:    survivors convicted %s and moved the ring in %v\n",
		nodes[victim].Addr, time.Since(start).Round(time.Millisecond))

	// Phase 3 — read every file the dead node owned, via a survivor.
	// The moved arcs land on each file's old ring successor: exactly
	// where the R=2 copies already sit, so these are memory hits.
	poolS, err := lapclient.DialPool(nodes[survivor].Addr, 2, 0)
	if err != nil {
		return err
	}
	t0 := time.Now()
	for _, f := range victimFiles {
		if _, _, err := poolS.Read(f, 0, blocksPer, true); err != nil {
			poolS.Close()
			return fmt.Errorf("read file %d after kill: %w", f, err)
		}
	}
	perRead := time.Since(t0) / time.Duration(len(victimFiles))
	poolS.Close()
	fmt.Printf("reads:   %d dead-owner files served in %v/read — replica memory, vs the %v disk read without R=2\n",
		len(victimFiles), perRead.Round(10*time.Microsecond), diskLatency)
	if perRead >= diskLatency {
		return fmt.Errorf("churn demo: %v per read is not faster than the %v disk latency; replicas did not serve",
			perRead, diskLatency)
	}

	// Phase 4 — restart the victim; gossip re-admits it, the ring
	// reconverges everywhere, and the handoff pushes its arcs back
	// under the byte budget.
	start = time.Now()
	if err := nodes[victim].Restart(10 * time.Second); err != nil {
		return fmt.Errorf("restart %s: %w", nodes[victim].Addr, err)
	}
	if err := waitMembers(nodes, -1, nNodes, 10*time.Second); err != nil {
		return err
	}
	fmt.Printf("rejoin:  %s restarted; every ring reconverged to %d members in %v\n",
		nodes[victim].Addr, nNodes, time.Since(start).Round(time.Millisecond))

	// Let the budgeted handoff move something, then report it.
	time.Sleep(500 * time.Millisecond)
	var hb, hblk uint64
	for _, m := range nodes {
		hs := m.Node.HandoffStats()
		hb += hs.BytesMoved
		hblk += hs.BlocksMoved
	}
	fmt.Printf("handoff: %d blocks (%d B) pushed to new owners under the 1 MiB/s budget\n\n", hblk, hb)

	fmt.Printf("verdict: %d/%d replicated acks, kill survived at memory speed, ring reconverged, handoff ran\n",
		replicated, nFiles)
	return nil
}

// waitMembers polls every live node's ring until it sees want members
// (skip excludes the killed node's index; -1 skips none).
func waitMembers(nodes []*cluster.LocalNode, skip, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for i, m := range nodes {
			if i == skip {
				continue
			}
			got := m.Node.MemberAddrs()
			sort.Strings(got)
			if len(got) != want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			views := make(map[string]int)
			for i, m := range nodes {
				if i != skip {
					views[m.Addr] = len(m.Node.MemberAddrs())
				}
			}
			return fmt.Errorf("churn demo: rings never converged to %d members within %v: %v", want, timeout, views)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
