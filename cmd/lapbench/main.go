// Command lapbench regenerates the paper's evaluation: every figure
// (4–11), both tables, and the in-text claims report.
//
// Usage:
//
//	lapbench [-exp all|table1|fig4..fig11|table2|claims|report|ablations|cluster|churn|chaos|load|adaptive|hotpath|predictors] [-scale full|small|tiny] [-workers N] [-v]
//
// Results print as aligned text tables, one per artifact. The full
// scale regenerates everything EXPERIMENTS.md records and takes a few
// minutes; small and tiny are for quick looks.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "artifact to run: all, table1, fig4..fig11, table2, claims, report, ablations, cluster, churn, chaos, load, adaptive, hotpath, predictors")
	scaleName := flag.String("scale", "full", "experiment scale: full, small, tiny")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print per-cell diagnostics for the artifact's matrix")
	format := flag.String("format", "text", "output format for a single figure: text, csv, json")
	seed := flag.Uint64("seed", 1, "fault-plan and workload seed for -exp chaos and -exp load")
	churn := flag.Bool("churn", true, "for -exp chaos: dynamic membership with R=2 replication, gossip faults, and a mid-replay node kill + rejoin")
	adaptive := flag.Bool("adaptive", false, "for -exp cluster: run the AdaptiveFDP degree policy instead of strict linear")
	adaptiveVictim := flag.Bool("adaptive-victim", false, "for -exp chaos: run the AdaptiveFDP degree policy on the seed-chosen victim node (strict elsewhere)")
	benchOut := flag.Bool("bench", false, "for -exp adaptive, -exp hotpath and -exp predictors: emit go-bench result lines for benchfmt instead of the table")
	flag.Parse()

	var scale experiment.Scale
	switch *scaleName {
	case "full":
		scale = experiment.FullScale()
	case "small":
		scale = experiment.SmallScale()
	case "tiny":
		scale = experiment.TinyScale()
	default:
		fmt.Fprintf(os.Stderr, "lapbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	suite := experiment.NewSuite(scale, *workers)
	suite.Progress = os.Stderr

	switch *exp {
	case "all":
		out, err := suite.RenderAll()
		exitOn(err)
		fmt.Print(out)
	case "table1":
		fmt.Print(experiment.Table1())
	case "claims":
		out, err := suite.Claims()
		exitOn(err)
		fmt.Print(out)
	case "report":
		rep, err := report.Build(suite)
		exitOn(err)
		fmt.Print(rep.Render())
	case "cluster":
		exitOn(runClusterDemo(scale, *adaptive))
	case "adaptive":
		// The adaptive-vs-linear A/B runs live engines on its own two
		// synthetic workloads; -scale does not apply.
		exitOn(runAdaptive(*seed, *benchOut))
	case "churn":
		// The kill/join/heal walkthrough runs its own fixed-size fleet.
		exitOn(runChurnDemo())
	case "load":
		// The open-loop harness sizes itself from -load-rates and
		// -load-dur, not -scale.
		exitOn(runLoad(*seed))
	case "predictors":
		// The predictor × workload matrix runs at the scale's smallest
		// cache; win-ratio checks only hold at -scale full, where the
		// workload footprints overflow the caches.
		exitOn(runPredictors(scale, *workers, *benchOut))
	case "hotpath":
		// The wire hot-path cells size themselves from -hotpath-conns
		// and -hotpath-dur, not -scale.
		exitOn(runHotpath(*benchOut))
	case "chaos":
		// Chaos runs at the tiny scale regardless of -scale: the point
		// is fault density, not workload volume.
		exitOn(runChaos(experiment.TinyScale(), *seed, *churn, *adaptiveVictim))
	case "ablations":
		// The unlimited-aggression variant churns explosively beyond
		// the tiny scale; ablations always run there.
		out, err := experiment.RunAblations(experiment.TinyScale())
		exitOn(err)
		fmt.Print(out)
	default:
		fig, err := suite.Figure(*exp)
		exitOn(err)
		switch *format {
		case "text":
			fmt.Print(fig.Render())
		case "csv":
			exitOn(fig.WriteCSV(os.Stdout))
		case "json":
			exitOn(fig.WriteJSON(os.Stdout))
		default:
			fmt.Fprintf(os.Stderr, "lapbench: unknown format %q\n", *format)
			os.Exit(2)
		}
		if *verbose {
			fs, wl, err := experiment.MatrixKeyForFigure(*exp)
			exitOn(err)
			m, err := suite.Matrix(fs, wl)
			exitOn(err)
			fmt.Print(experiment.SummaryByAlg(m))
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "lapbench: %v\n", err)
		os.Exit(1)
	}
}
