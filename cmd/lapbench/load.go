package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lapcache"
	"repro/internal/loadgen"
)

// The -exp load knobs. They only matter when -exp load is selected,
// so they live here rather than crowding main's flag block.
var (
	loadNodes   = flag.Int("load-nodes", 1, "nodes in the in-process target (1 = standalone, N = cooperative mesh)")
	loadRates   = flag.String("load-rates", "500,1000,2000,4000,8000", "comma-separated offered rates (req/s), swept in order")
	loadDur     = flag.Duration("load-dur", 2*time.Second, "virtual duration per swept rate")
	loadArrival = flag.String("load-arrival", "poisson", "arrival process: poisson or fixed")
	loadZipf    = flag.Float64("load-zipf", 1.1, "Zipf popularity exponent over the file population")
	loadFiles   = flag.Int("load-files", 64, "file population size")
	loadBlocks  = flag.Int("load-file-blocks", 256, "per-file length in blocks")
	loadSpan    = flag.Int("load-span", 4, "blocks per request")
	loadWrites  = flag.Float64("load-write-frac", 0, "fraction of requests that are writes")
	loadCache   = flag.Int("load-cache", 8192, "per-node cache size in blocks")
	loadConns   = flag.Int("load-conns", 4, "client connections per node")
	loadWindow  = flag.Int("load-window", 0, "per-connection in-flight window (0 = client default)")
	loadDeadln  = flag.Duration("load-deadline", 0, "per-request latency deadline (0 = none)")
	loadChurn   = flag.Duration("load-churn", 0, "force-rotate one pool connection per interval (0 = off)")
	loadFlash   = flag.String("load-flash", "", "hot-key flash crowd as start,end,share fractions (e.g. 0.3,0.5,0.8)")
	loadHerd    = flag.String("load-herd", "", "cold-key thundering herd as atfrac,burst (e.g. 0.5,256)")
	loadBench   = flag.Bool("load-bench", false, "emit go-bench-style result lines on stdout (tables go to stderr) for benchfmt")
)

// runLoad drives the open-loop harness at a live in-process target and
// prints the throughput-vs-latency knee curve. With -load-bench the
// per-rate results also come out as benchmark lines, which is how
// `make bench` gets BENCH_load.json.
func runLoad(seed uint64) error {
	rates, err := parseRates(*loadRates)
	if err != nil {
		return err
	}
	arrival, err := loadgen.ParseArrival(*loadArrival)
	if err != nil {
		return err
	}
	cfg := loadgen.Config{
		Seed:          seed,
		Rate:          rates[0], // RunSweep overrides per point
		Requests:      1,
		Arrival:       arrival,
		Files:         *loadFiles,
		FileBlocks:    blockdev.BlockNo(*loadBlocks),
		ZipfS:         *loadZipf,
		SpanBlocks:    int32(*loadSpan),
		WriteFraction: *loadWrites,
	}
	if cfg.Flash, err = parseFlash(*loadFlash); err != nil {
		return err
	}
	if cfg.Herd, err = parseHerd(*loadHerd); err != nil {
		return err
	}
	// Probe build: validates the config and materializes the file table
	// the servers need before any real schedule exists.
	probe, err := loadgen.Build(cfg)
	if err != nil {
		return err
	}

	out := os.Stdout
	if *loadBench {
		out = os.Stderr
	}

	mkcfg := func(i int, addrs []string) lapcache.Config {
		return lapcache.Config{
			Alg:          core.SpecLnAgrISPPM1,
			BlockSize:    512,
			CacheBlocks:  *loadCache,
			Workers:      8,
			QueueLen:     128,
			FileBlocks:   probe.FileTable,
			StrictLinear: true,
			Store:        lapcache.NewMemStore(512, 0),
		}
	}
	var addrs []string
	if *loadNodes <= 1 {
		eng, err := lapcache.New(mkcfg(0, nil))
		if err != nil {
			return err
		}
		srv := lapcache.NewServer(eng)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln) //nolint:errcheck // exits on Close
		defer func() {
			srv.Close()
			eng.Shutdown()
		}()
		addrs = []string{ln.Addr().String()}
	} else {
		nodes, stop, err := cluster.StartLocal(*loadNodes, mkcfg)
		if err != nil {
			return err
		}
		defer stop()
		addrs = make([]string, len(nodes))
		for i, m := range nodes {
			addrs[i] = m.Addr
		}
	}

	fmt.Fprintf(out, "load: %d node(s), arrival=%s zipf=%g files=%d span=%d writes=%g seed=%d\n",
		len(addrs), arrival, *loadZipf, *loadFiles, *loadSpan, *loadWrites, seed)
	rc := loadgen.RunConfig{
		Addrs:      addrs,
		Conns:      *loadConns,
		Window:     *loadWindow,
		Deadline:   *loadDeadln,
		ChurnEvery: *loadChurn,
	}
	sw, err := loadgen.RunSweep(cfg, rates, *loadDur, rc)
	if err != nil {
		return err
	}
	fmt.Fprint(out, sw.Table())

	if *loadBench {
		prefix := fmt.Sprintf("BenchmarkLoad/nodes=%d/arrival=%s", len(addrs), arrival)
		for _, p := range sw.Points {
			r := p.Res
			fmt.Printf("%s/rate=%.0f %d %.1f ns/op %.1f req/s %d p50-ns %d p99-ns %d p999-ns\n",
				prefix, p.Rate, r.Issued, r.Hist.Mean(), r.Achieved,
				r.Hist.Quantile(0.50), r.Hist.Quantile(0.99), r.Hist.Quantile(0.999))
		}
		if sw.Knee >= 0 {
			k := sw.Points[sw.Knee]
			fmt.Printf("BenchmarkLoadKnee/nodes=%d/arrival=%s %d %.1f ns/op %.0f req/s %d p99-ns\n",
				len(addrs), arrival, k.Res.Issued, k.Res.Hist.Mean(), k.Rate, k.Res.Hist.Quantile(0.99))
		}
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("lapbench: bad rate %q in -load-rates", part)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

func parseFlash(s string) (*loadgen.FlashCrowd, error) {
	if s == "" {
		return nil, nil
	}
	var f loadgen.FlashCrowd
	if _, err := fmt.Sscanf(s, "%g,%g,%g", &f.StartFrac, &f.EndFrac, &f.Share); err != nil {
		return nil, fmt.Errorf("lapbench: -load-flash wants start,end,share fractions: %v", err)
	}
	return &f, nil
}

func parseHerd(s string) (*loadgen.Herd, error) {
	if s == "" {
		return nil, nil
	}
	var h loadgen.Herd
	if _, err := fmt.Sscanf(s, "%g,%d", &h.AtFrac, &h.Burst); err != nil {
		return nil, fmt.Errorf("lapbench: -load-herd wants atfrac,burst: %v", err)
	}
	return &h, nil
}
