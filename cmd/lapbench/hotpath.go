package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/lapcache"
	"repro/internal/lapclient"
	"repro/internal/stats"
)

var (
	hotDur    = flag.Duration("hotpath-dur", 2*time.Second, "measurement window per hotpath cell")
	hotConns  = flag.String("hotpath-conns", "1,64,1024", "comma-separated concurrent-connection counts")
	hotDepth  = flag.Int("hotpath-depth", 4, "pipelined requests in flight per connection (1 = strict closed loop)")
	hotShards = flag.Int("hotpath-shards", 0, "server accept shards (0 = GOMAXPROCS)")
)

// runHotpath measures the wire hot path end to end: an in-process
// server with the vectored/coalesced data path and sharded accept
// loops, driven by C concurrent connections each keeping a small
// pipeline of single-block cache-hit reads in flight. Every request's
// latency lands in a histogram, and each cell runs twice — coalescing
// on, then off (-no-coalesce equivalent) — so the A/B cost of the
// drain-the-ready-queue latch is visible at every concurrency level.
// The interesting cells are the extremes: conns=1 shows coalescing
// does not tax single-stream latency (the latch only fires when a
// complete next request is already buffered), and conns=1024 shows
// the syscall amortization under fan-in.
//
// With -bench, results print as go-bench lines for benchfmt
// (BENCH_hotpath.json); otherwise an aligned table.
func runHotpath(benchOut bool) error {
	counts, err := parseConnCounts(*hotConns)
	if err != nil {
		return err
	}
	shards := *hotShards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	depth := *hotDepth
	if depth < 1 {
		depth = 1
	}

	fmt.Fprintf(os.Stderr, "hotpath: shards=%d depth=%d dur=%v conns=%v\n",
		shards, depth, *hotDur, counts)
	if !benchOut {
		fmt.Printf("%-10s %6s %10s %12s %12s %12s %12s\n",
			"mode", "conns", "reqs", "mean-us", "p50-us", "p99-us", "req/s")
	}
	for _, nconns := range counts {
		for _, coalesce := range []bool{true, false} {
			cell, err := runHotpathCell(nconns, depth, shards, coalesce, *hotDur)
			if err != nil {
				return err
			}
			mode := "coalesce"
			if !coalesce {
				mode = "nocoalesce"
			}
			if benchOut {
				// One synthetic iteration per cell: ns/op is the mean
				// request latency, with the tails as custom units.
				fmt.Printf("BenchmarkHotpath/%s/conns%d %d %.1f ns/op %d p50-ns %d p99-ns %.1f req/s\n",
					mode, nconns, cell.reqs, cell.mean, cell.p50, cell.p99, cell.rate)
			} else {
				fmt.Printf("%-10s %6d %10d %12.1f %12.1f %12.1f %12.0f\n",
					mode, nconns, cell.reqs, cell.mean/1e3,
					float64(cell.p50)/1e3, float64(cell.p99)/1e3, cell.rate)
			}
		}
	}
	return nil
}

type hotpathCell struct {
	reqs     uint64
	mean     float64 // ns
	p50, p99 int64   // ns
	rate     float64 // req/s
}

// runHotpathCell boots a fresh single-node server for one (conns,
// coalesce) configuration, drives it for dur, and tears it down. A
// fresh server per cell keeps cells independent — no warmed TCP
// windows or accumulated counters bleeding across configurations.
func runHotpathCell(nconns, depth, shards int, coalesce bool, dur time.Duration) (hotpathCell, error) {
	const (
		blockSize = 8192
		hot       = 2048
	)
	e, err := lapcache.New(lapcache.Config{
		Alg:         core.SpecNP,
		BlockSize:   blockSize,
		CacheBlocks: 2 * hot,
		Store:       lapcache.NewMemStore(blockSize, 0),
	})
	if err != nil {
		return hotpathCell{}, err
	}
	defer e.Shutdown()
	e.Preload(1, 0, hot, false)

	srv := lapcache.NewServer(e)
	srv.Shards = shards
	srv.NoCoalesce = !coalesce
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return hotpathCell{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	conns := make([]*lapclient.Conn, nconns)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range conns {
		c, err := lapclient.DialConn(addr, depth)
		if err != nil {
			return hotpathCell{}, fmt.Errorf("hotpath: dial conn %d/%d: %w", i, nconns, err)
		}
		conns[i] = c
	}

	h := stats.NewHistogram()
	stop := make(chan struct{})
	errc := make(chan error, nconns*depth)
	var wg sync.WaitGroup
	start := time.Now()
	for ci, c := range conns {
		for w := 0; w < depth; w++ {
			wg.Add(1)
			go func(c *lapclient.Conn, seq int) {
				defer wg.Done()
				dsts := [][]byte{make([]byte, blockSize)}
				blk := blockdev.BlockNo(seq % hot)
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					hit, err := c.ReadInto(1, blk, 1, dsts)
					if err != nil {
						errc <- err
						return
					}
					if !hit {
						errc <- fmt.Errorf("hotpath: block %d missed a preloaded cache", blk)
						return
					}
					h.Record(time.Since(t0).Nanoseconds())
					blk = (blk + 1) % hot
				}
			}(c, ci*depth+w)
		}
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return hotpathCell{}, err
	default:
	}

	return hotpathCell{
		reqs: h.Count(),
		mean: h.Mean(),
		p50:  h.Quantile(0.50),
		p99:  h.Quantile(0.99),
		rate: float64(h.Count()) / elapsed.Seconds(),
	}, nil
}

func parseConnCounts(s string) ([]int, error) {
	var out []int
	for _, f := range splitCommaInts(s) {
		if f <= 0 {
			return nil, fmt.Errorf("hotpath: bad -hotpath-conns %q", s)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hotpath: -hotpath-conns is empty")
	}
	return out, nil
}

func splitCommaInts(s string) []int {
	var out []int
	n, have := 0, false
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] >= '0' && s[i] <= '9' {
			n = n*10 + int(s[i]-'0')
			have = true
			continue
		}
		if have {
			out = append(out, n)
		}
		n, have = 0, false
	}
	return out
}
