package main

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/experiment"
)

// runChaos executes one seeded chaos run: a live 3-node cluster
// replaying the scale's CHARISMA trace under the default fault plan,
// with the full invariant audit. The same seed reproduces the same
// faulted-site set bit for bit (the digest printed in the report), so
// a failing seed from `make soak` replays here directly.
func runChaos(scale experiment.Scale, seed uint64) error {
	res, err := chaos.Run(chaos.Config{
		Seed:     seed,
		Charisma: scale.Charisma,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Print(res.Report.String())
	return res.Inv.Check()
}
