package main

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/experiment"
)

// runChaos executes one seeded chaos run: a live 3-node cluster
// replaying the scale's CHARISMA trace under the default fault plan,
// with the full invariant audit. With churn (the default, and what
// `make soak` exercises) the cluster runs dynamic gossip membership
// with R=2 replication, and one seed-chosen node is killed mid-replay
// and rejoins after conviction. The same seed reproduces the same
// faulted-site set bit for bit (the digest printed in the report), so
// a failing seed from `make soak` replays here directly. adaptiveVictim
// runs the AdaptiveFDP degree policy on the seed-chosen victim node —
// the audit then bounds its ledger by the adaptive cap while every
// strict node stays bounded by exactly 1 (make soak alternates this).
func runChaos(scale experiment.Scale, seed uint64, churn, adaptiveVictim bool) error {
	res, err := chaos.Run(chaos.Config{
		Seed:           seed,
		Charisma:       scale.Charisma,
		Churn:          churn,
		AdaptiveVictim: adaptiveVictim,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Print(res.Report.String())
	return res.Inv.Check()
}
