package main

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/lapcache"
	"repro/internal/lapclient"
	"repro/internal/workload"
)

// runClusterDemo boots a live 3-node cooperative cache inside this
// process, replays a CHARISMA trace across it (processes sharded over
// the nodes the way real clients mount their nearest cache), and
// prints the peer-tier accounting: remote traffic, degrade events,
// and the cluster-wide linearity join — per file, only the ring owner
// ever drove prefetches, with a high-water within the degree policy's
// cap: exactly 1 under strict linear, ≤ the controller's hard K when
// adaptive.
func runClusterDemo(scale experiment.Scale, adaptive bool) error {
	const nNodes = 3
	tr, err := workload.GenerateCharisma(scale.Charisma)
	if err != nil {
		return err
	}
	alg := core.SpecLnAgrISPPM1
	if adaptive {
		alg = core.SpecAdAgrISPPM1
	}

	const blockSize = 512
	nodes, stop, err := cluster.StartLocal(nNodes, func(i int, addrs []string) lapcache.Config {
		return lapcache.Config{
			Alg:          alg,
			BlockSize:    blockSize,
			CacheBlocks:  4096,
			Workers:      8,
			QueueLen:     128,
			FileBlocks:   tr.FileBlocks,
			StrictLinear: true,
			Store:        lapcache.NewMemStore(blockSize, 0),
		}
	})
	if err != nil {
		return err
	}
	defer stop()

	addrs := make([]string, nNodes)
	for i, m := range nodes {
		addrs[i] = m.Addr
	}
	fmt.Printf("cluster: %d nodes, alg=%s (degree cap %d), %d files, %d trace steps\n",
		nNodes, alg.Name(), alg.DegreeCap(), len(tr.FileBlocks), tr.TotalSteps())

	res, err := lapclient.ReplayTraceMulti(addrs, tr, lapclient.ReplayOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("replay:  %d procs, %d requests in %v (%s), client hit ratio %.3f\n\n",
		res.Procs, res.Requests, res.Elapsed.Round(0), res.Proto, res.HitRatio())

	fmt.Printf("%-22s %10s %10s %10s %10s %10s %6s\n",
		"node", "demandHit", "demandMiss", "remoteRead", "peerServed", "prefIssued", "maxHW")
	var remote, served, fallbacks uint64
	for _, m := range nodes {
		s := m.Engine.Snapshot()
		fmt.Printf("%-22s %10d %10d %10d %10d %10d %6d\n",
			m.Addr, s.DemandHits, s.DemandMisses, s.RemoteReads, s.PeerReadsServed,
			s.PrefetchIssued, s.MaxFileOutstandingHW)
		remote += s.RemoteReads
		served += s.PeerReadsServed
		fallbacks += s.RemoteFallbacks
	}

	// The cluster-wide join: a file may have prefetch history on its
	// ring owner only, and the per-file high-water never passes the
	// policy cap.
	owners := make(map[blockdev.FileID]int)
	maxHW, files := 0, 0
	for i, m := range nodes {
		for f, hw := range m.Engine.Ledger().HighWaters() {
			if hw == 0 {
				continue
			}
			owners[f]++
			files++
			if hw > maxHW {
				maxHW = hw
			}
			_ = i
		}
	}
	multi := 0
	for _, n := range owners {
		if n > 1 {
			multi++
		}
	}
	fmt.Printf("\npeer tier: %d remote reads forwarded, %d served for peers, %d degrade events\n",
		remote, served, fallbacks)
	cap := alg.DegreeCap()
	fmt.Printf("linearity: %d files prefetched, cluster-wide per-file high-water max = %d (cap %d), files driven by >1 node = %d\n",
		files, maxHW, cap, multi)
	if maxHW > cap || multi > 0 {
		return fmt.Errorf("cluster-wide degree bound violated (maxHW=%d, cap=%d, multi-driven=%d)", maxHW, cap, multi)
	}
	return nil
}
