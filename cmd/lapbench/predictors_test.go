package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
)

// cellOf builds a synthetic matrix cell with the given avg read time.
func cellOf(wl string, alg core.AlgSpec, ms float64) predCell {
	return predCell{workload: wl, alg: alg, res: experiment.Result{AvgReadMs: ms}}
}

// goodCells is a synthetic matrix that satisfies every win check: the
// classics take charisma and deepseq, Markov takes cdn, Mithril takes
// oltp.
func goodCells() []predCell {
	return []predCell{
		cellOf("charisma", core.SpecNP, 30),
		cellOf("charisma", core.SpecLnAgrOBA, 20),
		cellOf("charisma", core.SpecLnAgrMithril, 25),
		cellOf("charisma", core.SpecLnAgrMarkov, 24),
		cellOf("deepseq", core.SpecNP, 100),
		cellOf("deepseq", core.SpecLnAgrOBA, 10),
		cellOf("deepseq", core.SpecLnAgrMithril, 100),
		cellOf("deepseq", core.SpecLnAgrMarkov, 100),
		cellOf("cdn", core.SpecNP, 12),
		cellOf("cdn", core.SpecLnAgrOBA, 13),
		cellOf("cdn", core.SpecLnAgrMithril, 11.8),
		cellOf("cdn", core.SpecLnAgrMarkov, 11.5),
		cellOf("oltp", core.SpecNP, 3.6),
		cellOf("oltp", core.SpecLnAgrOBA, 4.4),
		cellOf("oltp", core.SpecLnAgrMithril, 3.4),
		cellOf("oltp", core.SpecLnAgrMarkov, 3.5),
	}
}

func mutate(cells []predCell, wl, alg string, ms float64) []predCell {
	out := append([]predCell(nil), cells...)
	for i := range out {
		if out[i].workload == wl && out[i].alg.Name() == alg {
			out[i].res.AvgReadMs = ms
		}
	}
	return out
}

func TestCheckPredictorsAccepts(t *testing.T) {
	if err := checkPredictors(goodCells()); err != nil {
		t.Fatalf("good matrix rejected: %v", err)
	}
}

func TestCheckPredictorsRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  []predCell
		want string
	}{
		{
			// Classic no longer beats NP on charisma — the paper's
			// headline regression.
			"charisma classic loses to NP",
			mutate(goodCells(), "charisma", "Ln_Agr_OBA", 31),
			"did not beat NP",
		},
		{
			// Markov overtakes the classic on charisma — ranking changed.
			"charisma ranking flips",
			mutate(goodCells(), "charisma", "Ln_Agr_Markov", 19),
			"ranking changed",
		},
		{
			// An association predictor wins the sequential scan.
			"deepseq won by Mithril",
			mutate(goodCells(), "deepseq", "Ln_Agr_Mithril", 5),
			"want a classic",
		},
		{
			// Classic takes cdn too — Markov has no winning scenario.
			"markov wins nothing",
			mutate(goodCells(), "cdn", "Ln_Agr_OBA", 11.0),
			"Ln_Agr_Markov won no scenario",
		},
		{
			// Mithril loses oltp to Markov — Mithril has no scenario.
			"mithril wins nothing",
			mutate(goodCells(), "oltp", "Ln_Agr_Markov", 3.3),
			"Ln_Agr_Mithril won no scenario",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkPredictors(tc.mut)
			if err == nil {
				t.Fatal("bad matrix accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDeepSeqTrace pins the control workload: valid against the NOW
// machine shape, strictly sequential per file, and deterministic.
func TestDeepSeqTrace(t *testing.T) {
	s := experiment.TinyScale()
	tr := deepSeqTrace(s.NOW.Nodes, s.NOW.BlockSize)
	if err := tr.Validate(s.NOW.Nodes, s.NOW.BlockSize); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	for pi, proc := range tr.Procs {
		last := int64(-1)
		for _, st := range proc.Steps {
			if st.Offset <= last {
				t.Fatalf("proc %d: offset %d not strictly increasing", pi, st.Offset)
			}
			last = st.Offset
		}
	}
	tr2 := deepSeqTrace(s.NOW.Nodes, s.NOW.BlockSize)
	if tr.TotalSteps() != tr2.TotalSteps() || len(tr.Procs) != len(tr2.Procs) {
		t.Fatal("deepseq trace not deterministic")
	}
}
