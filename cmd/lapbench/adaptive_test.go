package main

import "testing"

// TestAdaptiveAB runs the full A/B and relies on runAdaptive's own
// win checks: adaptive must take deepseq on the latency distribution,
// strict linear must take coldtail on hit ratio, tail, or waste, and
// both sides must respect their degree caps with zero strict
// violations. The margins are structural (the deepseq p50 gap is the
// store round-trip versus a cache hit; the coldtail waste gap is
// self-eviction in a cache smaller than the widened window), so the
// assertion holds on loaded machines too.
func TestAdaptiveAB(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-engine A/B")
	}
	if err := runAdaptive(1, true); err != nil {
		t.Fatal(err)
	}
}
