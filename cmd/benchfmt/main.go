// Command benchfmt turns `go test -bench` output into the repo's
// BENCH_*.json record format (see BENCH_lapcache.json). It reads the
// benchmark run from stdin, echoes it through to stderr so the run
// stays visible, and writes the JSON record to -o.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkWireRoundTrip -benchmem . | \
//	    go run ./cmd/benchfmt -benchmark BenchmarkWireRoundTrip -o BENCH_wire.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Load-harness units (lapbench -exp load -load-bench): achieved
	// throughput and the latency tail quantiles per offered rate.
	ReqPerS float64 `json:"req_per_s,omitempty"`
	P50Ns   int64   `json:"p50_ns,omitempty"`
	P99Ns   int64   `json:"p99_ns,omitempty"`
	P999Ns  int64   `json:"p999_ns,omitempty"`
	// Membership-tier unit (BenchmarkMembership): rebalancing handoff
	// throughput under its byte budget.
	BlocksMovedPerS float64 `json:"blocks_moved_per_s,omitempty"`
	// Degree-policy units (lapbench -exp adaptive -bench): the
	// controller's prefetch window at run end, its feedback accuracy,
	// and the demand hit ratio, both in percent.
	Degree      int64   `json:"degree,omitempty"`
	AccuracyPct float64 `json:"accuracy_pct,omitempty"`
	HitPct      float64 `json:"hit_pct,omitempty"`
	// Predictor-matrix units (lapbench -exp predictors -bench):
	// prefetch timeliness counts and the byte cost of each timely
	// prefetch hit.
	PrefetchTimely  int64   `json:"prefetch_timely,omitempty"`
	PrefetchLate    int64   `json:"prefetch_late,omitempty"`
	PrefetchWasted  int64   `json:"prefetch_wasted,omitempty"`
	PfBytesPerHit   float64 `json:"pf_bytes_per_hit,omitempty"`
}

type record struct {
	Benchmark   string   `json:"benchmark"`
	Description string   `json:"description,omitempty"`
	Date        string   `json:"date"`
	Command     string   `json:"command,omitempty"`
	Go          string   `json:"go"`
	CPU         string   `json:"cpu,omitempty"`
	Results     []result `json:"results"`
	Notes       string   `json:"notes,omitempty"`
}

func main() {
	var (
		benchmark = flag.String("benchmark", "", "benchmark name for the record header")
		filter    = flag.String("filter", "Benchmark", "keep only result names with this prefix")
		desc      = flag.String("description", "", "one-line description")
		notes     = flag.String("notes", "", "free-form notes")
		command   = flag.String("command", "", "the command that produced the input")
		out       = flag.String("o", "", "output file (stdout when empty)")
		asserts   = flag.String("assert-allocs", "", "fail unless each named result stays at or under its allocs/op budget, e.g. 'BenchmarkClusterRead/localHit=0,BenchmarkClusterRead/remoteHit=0'")
	)
	flag.Parse()

	budgets, err := parseAllocAsserts(*asserts)
	if err != nil {
		log.Fatalf("benchfmt: %v", err)
	}

	rec := record{
		Benchmark:   *benchmark,
		Description: *desc,
		Notes:       *notes,
		Command:     *command,
		Date:        time.Now().Format("2006-01-02"),
		Go:          runtime.Version(),
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.CPU = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		if !strings.HasPrefix(r.Name, *filter) {
			continue
		}
		rec.Results = append(rec.Results, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchfmt: reading input: %v", err)
	}
	if len(rec.Results) == 0 {
		log.Fatal("benchfmt: no benchmark result lines in input")
	}
	if err := checkAllocAsserts(budgets, rec.Results); err != nil {
		log.Fatalf("benchfmt: %v", err)
	}

	buf, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		log.Fatalf("benchfmt: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchfmt: %v", err)
	}
	log.Printf("benchfmt: wrote %d results to %s", len(rec.Results), *out)
}

// parseAllocAsserts decodes an -assert-allocs spec: comma-separated
// name=max pairs, where name is a benchmark result name without the
// -N GOMAXPROCS suffix.
func parseAllocAsserts(spec string) (map[string]int64, error) {
	if spec == "" {
		return nil, nil
	}
	budgets := make(map[string]int64)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, maxs, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("-assert-allocs entry %q is not name=max", pair)
		}
		max, err := strconv.ParseInt(maxs, 10, 64)
		if err != nil || max < 0 {
			return nil, fmt.Errorf("-assert-allocs entry %q has a bad budget", pair)
		}
		budgets[name] = max
	}
	return budgets, nil
}

// checkAllocAsserts is the allocs/op regression gate: every asserted
// name must appear in the parsed results (a silently-renamed benchmark
// must not quietly disarm the gate) and stay within budget.
func checkAllocAsserts(budgets map[string]int64, results []result) error {
	if len(budgets) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(budgets))
	for _, r := range results {
		name := trimProcSuffix(r.Name)
		max, ok := budgets[name]
		if !ok {
			continue
		}
		seen[name] = true
		if r.AllocsPerOp > max {
			return fmt.Errorf("allocs/op regression: %s reports %d allocs/op, budget %d",
				r.Name, r.AllocsPerOp, max)
		}
	}
	for name := range budgets {
		if !seen[name] {
			return fmt.Errorf("-assert-allocs names %s, but no such result was parsed", name)
		}
	}
	return nil
}

// trimProcSuffix strips the trailing -N GOMAXPROCS suffix go test
// appends to benchmark names (BenchmarkX/sub-8 → BenchmarkX/sub).
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseLine decodes one `-bench` result line: a name, an iteration
// count, then value/unit pairs (ns/op, MB/s, B/op, allocs/op). The
// -N GOMAXPROCS suffix goes with the name, matching go tooling.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	var r result
	r.Name = fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		case "req/s":
			r.ReqPerS = v
		case "p50-ns":
			r.P50Ns = int64(v)
		case "p99-ns":
			r.P99Ns = int64(v)
		case "p999-ns":
			r.P999Ns = int64(v)
		case "blocks-moved/s":
			r.BlocksMovedPerS = v
		case "degree":
			r.Degree = int64(v)
		case "accuracy-%":
			r.AccuracyPct = v
		case "hit-%":
			r.HitPct = v
		case "timely":
			r.PrefetchTimely = int64(v)
		case "late":
			r.PrefetchLate = int64(v)
		case "wasted":
			r.PrefetchWasted = int64(v)
		case "pf-B/hit":
			r.PfBytesPerHit = v
		}
	}
	return r, r.NsPerOp > 0
}
