// custom_policy shows the extension surface of the core library: a
// user-written predictor implementing core.Predictor, driven by the
// same linear aggressive Driver the paper's algorithms use, over the
// simulated disk array. It pits a hard-wired fixed-stride predictor
// against OBA and IS_PPM:1 on a strided access stream.
//
//	go run ./examples/custom_policy
package main

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/machine"
	"repro/internal/sim"
)

// strider is a trivial custom predictor: it assumes the application
// always jumps exactly `stride` blocks ahead and reads `size` blocks.
// Unlike IS_PPM it cannot learn, but on a matching stream it predicts
// from the very first request.
type strider struct {
	stride blockdev.BlockNo
	size   int32
}

// striderCursor is the predictor's position: the offset of the last
// (real or speculative) request.
type striderCursor struct{ last blockdev.BlockNo }

func (s *strider) Name() string { return fmt.Sprintf("Stride+%d", s.stride) }

func (s *strider) Observe(r core.Request, _ core.Tick) core.Cursor {
	return striderCursor{last: r.Offset}
}

func (s *strider) Predict(c core.Cursor) (core.Prediction, core.Cursor, bool) {
	cur, ok := c.(striderCursor)
	if !ok {
		return core.Prediction{}, nil, false
	}
	next := cur.last + s.stride
	p := core.Prediction{Request: core.Request{Offset: next, Size: s.size}}
	return p, striderCursor{last: next}, true
}

// env adapts a bare disk array and a block set into the driver's Env.
type env struct {
	disks  *diskmodel.Array
	cached map[blockdev.BlockID]bool
}

func (e *env) Cached(b blockdev.BlockID) bool { return e.cached[b] }

func (e *env) Prefetch(b blockdev.BlockID, _ bool, cancelled func() bool, done func()) bool {
	e.disks.Read(b, sim.PriorityPrefetch, cancelled, func(eng *sim.Engine, at sim.Time) {
		e.cached[b] = true
		done()
	})
	return true
}

// simulateScan runs a strided read stream (stride 4, one block per
// request, 25 ms of think time) against the given predictor and
// reports how many requests found their block already prefetched.
func simulateScan(pred core.Predictor) (hits, total int) {
	const (
		stride     = 4
		fileBlocks = 4000
		requests   = 400
	)
	e := sim.NewEngine(7)
	cfg := machine.PM()
	envr := &env{disks: diskmodel.NewArray(e, cfg), cached: make(map[blockdev.BlockID]bool)}
	drv := core.NewDriver(core.DriverConfig{
		Predictor:      pred,
		Mode:           core.ModeAggressive,
		MaxOutstanding: 1, // the paper's linear throttle
		File:           1,
		FileBlocks:     fileBlocks,
		Env:            envr,
	})
	var step func(i int, off blockdev.BlockNo)
	step = func(i int, off blockdev.BlockNo) {
		if i >= requests {
			return
		}
		blk := blockdev.BlockID{File: 1, Block: off}
		satisfied := envr.cached[blk]
		if satisfied {
			hits++
		}
		total++
		finish := func(*sim.Engine, sim.Time) {
			envr.cached[blk] = true
			e.After(sim.Milliseconds(25), func(*sim.Engine) { step(i+1, off+stride) })
		}
		if satisfied {
			finish(e, e.Now())
		} else {
			envr.disks.Read(blk, sim.PriorityUser, nil, finish)
		}
		drv.OnUserRequest(core.Request{Offset: off, Size: 1}, core.Tick(e.Now()), satisfied)
	}
	step(0, 0)
	e.Run()
	return hits, total
}

func main() {
	fmt.Println("strided scan (stride 4), linear aggressive driver:")
	for _, pred := range []core.Predictor{
		core.NewOBA(),
		core.NewISPPM(1),
		&strider{stride: 4, size: 1},
	} {
		hits, total := simulateScan(pred)
		fmt.Printf("  %-12s prefetch hit ratio %3.0f%%\n", pred.Name(), 100*float64(hits)/float64(total))
	}
	fmt.Println("\nOBA never matches the stride; IS_PPM learns it after a few")
	fmt.Println("requests; the custom predictor knows it from the start.")
}
