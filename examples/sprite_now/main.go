// sprite_now runs the Sprite network-of-workstations workload on both
// file systems at one cache size and compares them algorithm by
// algorithm — the paper's observation being that with Sprite's low
// file sharing, xFS's per-node prefetching behaves almost like PAFS's
// truly linear one (§5.2).
//
//	go run ./examples/sprite_now [-cache 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	cacheMB := flag.Int("cache", 4, "per-node cache size in MB")
	flag.Parse()

	scale := experiment.TinyScale()
	fmt.Printf("Sprite workload, %d MB cache per node (scale %s)\n\n", *cacheMB, scale.Name)
	fmt.Printf("%-18s %14s %14s %14s\n", "algorithm", "PAFS read(ms)", "xFS read(ms)", "mispredict")
	for _, alg := range core.StandardAlgorithms() {
		p, err := experiment.RunCell(scale, experiment.Cell{
			FS: experiment.PAFS, Workload: experiment.Sprite, Alg: alg, CacheMB: *cacheMB,
		})
		if err != nil {
			log.Fatal(err)
		}
		x, err := experiment.RunCell(scale, experiment.Cell{
			FS: experiment.XFS, Workload: experiment.Sprite, Alg: alg, CacheMB: *cacheMB,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %14.3f %14.3f %10.0f%%/%.0f%%\n",
			alg.Name(), p.AvgReadMs, x.AvgReadMs,
			100*p.MispredictionRatio, 100*x.MispredictionRatio)
	}
	fmt.Println("\nwith little inter-client sharing, the xFS column tracks the PAFS one")
}
