// charisma_pm reproduces the paper's Figure 4 sweep programmatically:
// every prefetching algorithm over every cache size, for the CHARISMA
// parallel-machine workload on PAFS, and points out the three
// performance groups the paper describes.
//
//	go run ./examples/charisma_pm [-scale tiny|small|full]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	scaleName := flag.String("scale", "tiny", "experiment scale: tiny, small, full")
	flag.Parse()

	var scale experiment.Scale
	switch *scaleName {
	case "tiny":
		scale = experiment.TinyScale()
	case "small":
		scale = experiment.SmallScale()
	case "full":
		scale = experiment.FullScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	suite := experiment.NewSuite(scale, 0)
	suite.Progress = os.Stderr
	fig, err := suite.Figure("fig4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig.Render())

	// The paper's reading of this figure (§5.2): OBA alone barely
	// helps; the IS_PPM predictors form a middle group; the linear
	// aggressive algorithms are far ahead. Verify the grouping at the
	// largest cache.
	large := scale.CacheSizesMB[len(scale.CacheSizesMB)-1]
	np, _ := fig.Value(core.SpecNP.Name(), large)
	oba, _ := fig.Value(core.SpecOBA.Name(), large)
	agr, _ := fig.Value(core.SpecLnAgrISPPM1.Name(), large)
	fmt.Printf("\nat %d MB per node: NP %.2f ms, OBA %.2f ms, Ln_Agr_IS_PPM:1 %.2f ms\n",
		large, np, oba, agr)
	fmt.Printf("linear aggressive prefetching speeds reads up %.1fx over no prefetching\n", np/agr)
}
