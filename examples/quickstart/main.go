// Quickstart: simulate the same workload twice — once without
// prefetching and once with the paper's linear aggressive IS_PPM:1 —
// and print the headline comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	scale := experiment.TinyScale()
	const cacheMB = 4

	baseline, err := experiment.RunCell(scale, experiment.Cell{
		FS:       experiment.PAFS,
		Workload: experiment.Charisma,
		Alg:      core.SpecNP,
		CacheMB:  cacheMB,
	})
	if err != nil {
		log.Fatal(err)
	}
	prefetched, err := experiment.RunCell(scale, experiment.Cell{
		FS:       experiment.PAFS,
		Workload: experiment.Charisma,
		Alg:      core.SpecLnAgrISPPM1,
		CacheMB:  cacheMB,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CHARISMA workload on PAFS, %d MB cache per node\n\n", cacheMB)
	fmt.Printf("%-22s %12s %12s\n", "", "NP", "Ln_Agr_IS_PPM:1")
	fmt.Printf("%-22s %9.3f ms %9.3f ms\n", "avg read time", baseline.AvgReadMs, prefetched.AvgReadMs)
	fmt.Printf("%-22s %12.3f %12.3f\n", "block hit ratio", baseline.HitRatio, prefetched.HitRatio)
	fmt.Printf("%-22s %12d %12d\n", "disk accesses", baseline.DiskAccesses, prefetched.DiskAccesses)
	fmt.Printf("%-22s %12d %12d\n", "prefetches issued", baseline.PrefetchIssued, prefetched.PrefetchIssued)
	fmt.Printf("\nspeed-up on reads: %.2fx\n", baseline.AvgReadMs/prefetched.AvgReadMs)
}
