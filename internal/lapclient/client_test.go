package lapclient

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/lapcache"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startServer brings up an engine + server on a loopback port and
// returns its address.
func startServer(t *testing.T, cfg lapcache.Config) string {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = lapcache.NewMemStore(cfg.BlockSize, 0)
	}
	e, err := lapcache.New(cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	srv := lapcache.NewServer(e)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		e.Shutdown()
	})
	return ln.Addr().String()
}

func TestClientBasicOps(t *testing.T) {
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: 256, CacheBlocks: 64,
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	info, err := c.Ping()
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if info.Alg != "NP" || info.BlockSize != 256 {
		t.Errorf("ping = %q/%d, want NP/256", info.Alg, info.BlockSize)
	}
	if info.ProtoMax < wire.ProtoBinary {
		t.Errorf("ping proto_max = %d, want >= %d", info.ProtoMax, wire.ProtoBinary)
	}

	payload := bytes.Repeat([]byte{0x7E}, 256)
	if err := c.Write(2, 3, 1, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, hit, err := c.Read(2, 3, 1, true)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !hit {
		t.Error("read of written block missed")
	}
	if !bytes.Equal(data, payload) {
		t.Error("read back wrong data")
	}
	if err := c.CloseFile(2); err != nil {
		t.Fatalf("close: %v", err)
	}
	snap, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if snap.Writes != 1 || snap.DemandHits != 1 {
		t.Errorf("server counters: %s", snap)
	}
}

// TestReplayCharismaEndToEnd is the acceptance run: a synthetic
// CHARISMA trace replayed through a live lapcached with linear
// aggressive prefetching on. It must finish, report timeliness
// counters, and keep every file's outstanding-prefetch high-water at
// exactly 1.
func TestReplayCharismaEndToEnd(t *testing.T) {
	p := experiment.TinyScale().Charisma
	tr, err := workload.GenerateCharisma(p)
	if err != nil {
		t.Fatalf("generate trace: %v", err)
	}

	const blockSize = 512
	addr := startServer(t, lapcache.Config{
		Alg:          core.SpecLnAgrISPPM1,
		BlockSize:    blockSize,
		CacheBlocks:  4096,
		Workers:      8,
		QueueLen:     128,
		FileBlocks:   tr.FileBlocks,
		StrictLinear: true,
	})

	res, err := ReplayTrace(addr, tr, ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Proto != "binary" {
		t.Errorf("replay negotiated %q, want binary against a new server", res.Proto)
	}
	if res.Requests != tr.TotalSteps() {
		t.Errorf("replayed %d requests, trace has %d", res.Requests, tr.TotalSteps())
	}
	if res.Reads == 0 {
		t.Fatal("trace replay issued no reads")
	}
	if r := res.HitRatio(); r < 0 || r > 1 {
		t.Errorf("hit ratio %f out of range", r)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	snap, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if snap.DemandHits+snap.DemandMisses == 0 {
		t.Fatal("server saw no demand reads")
	}
	if snap.PrefetchIssued == 0 {
		t.Error("prefetching never engaged during the replay")
	}
	if snap.PrefetchTimely+snap.PrefetchLate+snap.PrefetchWasted+snap.PrefetchUnused == 0 {
		t.Errorf("no timeliness classification recorded: %s", snap)
	}
	if snap.MaxFileOutstandingHW != 1 {
		t.Errorf("max per-file outstanding high-water = %d, want exactly 1 in linear mode",
			snap.MaxFileOutstandingHW)
	}
	if snap.LinearViolations != 0 {
		t.Errorf("%d linear violations", snap.LinearViolations)
	}
	t.Logf("replay: %d reqs in %v, client hit ratio %.3f; server: %s",
		res.Requests, res.Elapsed, res.HitRatio(), snap)
}

// startLegacyServer emulates a pre-binary lapcached: JSON lines only,
// no proto_max in the ping response, and "upgrade" is an unknown op.
// It exercises the new-client/old-server cell of the negotiation
// matrix without keeping the old server code around.
func startLegacyServer(t *testing.T, cfg lapcache.Config) string {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = lapcache.NewMemStore(cfg.BlockSize, 0)
	}
	e, err := lapcache.New(cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		ln.Close()
		e.Shutdown()
	})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				enc := json.NewEncoder(conn)
				for {
					line, err := wire.ReadLine(br, wire.MaxFrame)
					if err != nil {
						return
					}
					var req lapcache.WireRequest
					if err := json.Unmarshal(line, &req); err != nil {
						return
					}
					resp := lapcache.WireResponse{OK: true}
					switch req.Op {
					case "ping":
						resp.Alg = e.AlgName()
						resp.BlockSize = e.BlockSize()
						// No ProtoMax: old servers predate negotiation.
					case "read":
						data, hit, err := e.Read(blockdev.FileID(req.File), blockdev.BlockNo(req.Offset), req.Size)
						if err != nil {
							resp = lapcache.WireResponse{Err: err.Error()}
						} else {
							resp.Hit = hit
							if req.WantData {
								resp.Data = data
							}
						}
					case "write":
						if err := e.Write(blockdev.FileID(req.File), blockdev.BlockNo(req.Offset), req.Size, req.Data); err != nil {
							resp = lapcache.WireResponse{Err: err.Error()}
						}
					case "close":
						e.CloseFile(blockdev.FileID(req.File))
					case "stats":
						snap := e.Snapshot()
						resp.Stats = &snap
					default:
						resp = lapcache.WireResponse{Err: "unknown op: " + req.Op}
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestProtocolNegotiationMatrix pins every pairing of old/new client
// and old/new server:
//
//   - old JSON client ↔ new server: JSON keeps working (TestClientBasicOps
//     plus the explicit check here).
//   - new client ↔ new server: the ping advertises binary and DialConn
//     upgrades.
//   - new client ↔ old server: DialConn reports ErrNoBinary and
//     ReplayTrace silently falls back to JSON.
func TestProtocolNegotiationMatrix(t *testing.T) {
	cfg := lapcache.Config{Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 32}

	t.Run("old-client-new-server", func(t *testing.T) {
		addr := startServer(t, cfg)
		c, err := Dial(addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer c.Close()
		// A legacy client just never sends "upgrade"; the connection
		// stays JSON and every op works.
		if err := c.Write(1, 0, 2, nil); err != nil {
			t.Fatalf("json write: %v", err)
		}
		data, hit, err := c.Read(1, 0, 2, true)
		if err != nil {
			t.Fatalf("json read: %v", err)
		}
		if !hit || len(data) != 256 {
			t.Errorf("json read: hit=%v len=%d, want hit 256 bytes", hit, len(data))
		}
	})

	t.Run("new-client-new-server", func(t *testing.T) {
		addr := startServer(t, cfg)
		bc, err := DialConn(addr, 0)
		if err != nil {
			t.Fatalf("binary dial: %v", err)
		}
		defer bc.Close()
		info, err := bc.Ping()
		if err != nil {
			t.Fatalf("binary ping: %v", err)
		}
		if info.Alg != "NP" || info.BlockSize != 128 || info.ProtoMax < wire.ProtoBinary {
			t.Errorf("binary ping = %+v", info)
		}
	})

	t.Run("new-client-old-server", func(t *testing.T) {
		addr := startLegacyServer(t, cfg)
		if _, err := DialConn(addr, 0); err != ErrNoBinary {
			t.Fatalf("DialConn against legacy server: err = %v, want ErrNoBinary", err)
		}
		// The replayer negotiates down instead of failing.
		tr, err := workload.GenerateCharisma(experiment.TinyScale().Charisma)
		if err != nil {
			t.Fatalf("generate trace: %v", err)
		}
		res, err := ReplayTrace(addr, tr, ReplayOptions{})
		if err != nil {
			t.Fatalf("replay vs legacy server: %v", err)
		}
		if res.Proto != "json" {
			t.Errorf("replay negotiated %q against legacy server, want json", res.Proto)
		}
		if res.Requests != tr.TotalSteps() {
			t.Errorf("replayed %d requests, trace has %d", res.Requests, tr.TotalSteps())
		}
	})

	// Version skew within the binary protocol: a peer from a future
	// build may send ops or flags this server has never heard of. The
	// server must answer each with a clean error frame and keep the
	// connection alive — never wedge it — so a mixed-version cluster
	// degrades per-request instead of per-connection.
	t.Run("future-op-vs-new-server", func(t *testing.T) {
		addr := startServer(t, cfg)
		c, err := DialConn(addr, 0)
		if err != nil {
			t.Fatalf("binary dial: %v", err)
		}
		defer c.Close()

		_, err = c.do(wire.Header{Op: wire.Op(200)}, nil)
		var se *ServerError
		if !errors.As(err, &se) {
			t.Fatalf("future op: err = %v, want *ServerError", err)
		}
		if se.Op != wire.Op(200) {
			t.Errorf("error frame echoes op %d, want 200", se.Op)
		}

		_, err = c.do(wire.Header{Op: wire.OpPing, Flags: wire.Flags(0x80)}, nil)
		if !errors.As(err, &se) {
			t.Fatalf("future flags: err = %v, want *ServerError", err)
		}

		// The connection survives both rejections.
		if _, err := c.Ping(); err != nil {
			t.Fatalf("ping after rejected frames: %v", err)
		}
	})

	// Cluster ops against a single-node (non-clustered) server: the
	// ownership query is refused cleanly, and a peer-flagged read is
	// served locally — both without disturbing the connection.
	t.Run("cluster-ops-vs-unclustered-server", func(t *testing.T) {
		addr := startServer(t, cfg)
		c, err := DialConn(addr, 0)
		if err != nil {
			t.Fatalf("binary dial: %v", err)
		}
		defer c.Close()

		_, _, err = c.Owner(3)
		var se *ServerError
		if !errors.As(err, &se) {
			t.Fatalf("owner query: err = %v, want *ServerError", err)
		}

		if err := c.WritePeer(3, 0, 1, nil); err != nil {
			t.Fatalf("peer write: %v", err)
		}
		dst := make([]byte, cfg.BlockSize)
		hit, err := c.ReadPeer(3, 0, 1, [][]byte{dst})
		if err != nil {
			t.Fatalf("peer read: %v", err)
		}
		if !hit {
			t.Error("peer read of just-written block missed")
		}
		want := make([]byte, cfg.BlockSize)
		lapcache.FillPattern(blockdev.BlockID{File: 3, Block: 0}, want)
		if !bytes.Equal(dst, want) {
			t.Error("peer read payload wrong")
		}
		if err := c.ClosePeer(3); err != nil {
			t.Fatalf("peer close: %v", err)
		}
	})
}

// TestPoolSkipsDeadConns kills connections out from under a pool and
// asserts the round-robin routes around them: a pool degrades from N
// connections to however many survive, and only errors with
// ErrNoLiveConn once every peer connection is gone.
func TestPoolSkipsDeadConns(t *testing.T) {
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 32,
	})
	p, err := DialPool(addr, 3, 0)
	if err != nil {
		t.Fatalf("dial pool: %v", err)
	}
	defer p.Close()
	if err := p.Write(1, 0, 1, nil); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Tear down two of the three connections, as a dying peer would.
	killConn := func(c *Conn) {
		t.Helper()
		c.Close()
		waitFor(t, "connection to report dead", c.Dead)
	}
	killConn(p.conn(0))
	killConn(p.conn(2))
	if live := p.Live(); live != 1 {
		t.Fatalf("Live() = %d after killing 2 of 3, want 1", live)
	}

	// Every pick must land on the one survivor, round-robin included.
	for i := 0; i < 10; i++ {
		if _, _, err := p.Read(1, 0, 1, false); err != nil {
			t.Fatalf("read %d with 1 live conn: %v", i, err)
		}
	}

	killConn(p.conn(1))
	if _, _, err := p.Read(1, 0, 1, false); !errors.Is(err, ErrNoLiveConn) {
		t.Fatalf("read with 0 live conns: err = %v, want ErrNoLiveConn", err)
	}
	if _, err := p.Stats(); !errors.Is(err, ErrNoLiveConn) {
		t.Fatalf("stats with 0 live conns: err = %v, want ErrNoLiveConn", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBinaryConnDataIntegrity pushes real payloads through the framed
// protocol: what a Conn writes must come back byte-identical, and
// unwritten blocks must arrive as the server-side fill pattern.
func TestBinaryConnDataIntegrity(t *testing.T) {
	const blockSize = 512
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: blockSize, CacheBlocks: 64,
	})
	c, err := DialConn(addr, 0)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	payload := make([]byte, 3*blockSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := c.Write(9, 2, 3, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, hit, err := c.Read(9, 2, 3, true)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !hit {
		t.Error("read of just-written blocks missed")
	}
	if !bytes.Equal(data, payload) {
		t.Error("binary read returned different bytes than written")
	}

	data, _, err = c.Read(9, 100, 1, true)
	if err != nil {
		t.Fatalf("read unwritten: %v", err)
	}
	want := make([]byte, blockSize)
	lapcache.FillPattern(blockdev.BlockID{File: 9, Block: 100}, want)
	if !bytes.Equal(data, want) {
		t.Error("unwritten block did not arrive as the fill pattern")
	}

	// Metadata-only read: no payload, but the hit flag still flows.
	data, hit, err = c.Read(9, 2, 3, false)
	if err != nil {
		t.Fatalf("read nodata: %v", err)
	}
	if len(data) != 0 {
		t.Errorf("nodata read returned %d bytes", len(data))
	}
	if !hit {
		t.Error("nodata read of cached blocks missed")
	}
}

// TestPipelinedConnConcurrency hammers one Conn from many goroutines:
// sequence matching must route every response to its caller.
func TestPipelinedConnConcurrency(t *testing.T) {
	const blockSize = 256
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: blockSize, CacheBlocks: 256,
	})
	c, err := DialConn(addr, 8)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := blockdev.FileID(g + 1)
			for i := 0; i < 20; i++ {
				off := blockdev.BlockNo(i % 8)
				data, _, err := c.Read(f, off, 1, true)
				if err != nil {
					errs <- err
					return
				}
				want := make([]byte, blockSize)
				lapcache.FillPattern(blockdev.BlockID{File: f, Block: off}, want)
				if !bytes.Equal(data, want) {
					errs <- fmt.Errorf("goroutine %d got bytes for a different block", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReplayTraceDataIntegrity replays a tiny hand-made trace with
// verification that block contents survive the write → cache → read
// path through the wire.
func TestReplayTraceDataIntegrity(t *testing.T) {
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 16,
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// Unwritten blocks come back as the server-side fill pattern.
	data, _, err := c.Read(6, 4, 1, true)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := make([]byte, 128)
	lapcache.FillPattern(blockdev.BlockID{File: 6, Block: 4}, want)
	if !bytes.Equal(data, want) {
		t.Error("unwritten block did not arrive as the fill pattern")
	}
}
