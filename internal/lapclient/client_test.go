package lapclient

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/lapcache"
	"repro/internal/workload"
)

// startServer brings up an engine + server on a loopback port and
// returns its address.
func startServer(t *testing.T, cfg lapcache.Config) string {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = lapcache.NewMemStore(cfg.BlockSize, 0)
	}
	e, err := lapcache.New(cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	srv := lapcache.NewServer(e)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		e.Shutdown()
	})
	return ln.Addr().String()
}

func TestClientBasicOps(t *testing.T) {
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: 256, CacheBlocks: 64,
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	alg, bs, err := c.Ping()
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if alg != "NP" || bs != 256 {
		t.Errorf("ping = %q/%d, want NP/256", alg, bs)
	}

	payload := bytes.Repeat([]byte{0x7E}, 256)
	if err := c.Write(2, 3, 1, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, hit, err := c.Read(2, 3, 1, true)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !hit {
		t.Error("read of written block missed")
	}
	if !bytes.Equal(data, payload) {
		t.Error("read back wrong data")
	}
	if err := c.CloseFile(2); err != nil {
		t.Fatalf("close: %v", err)
	}
	snap, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if snap.Writes != 1 || snap.DemandHits != 1 {
		t.Errorf("server counters: %s", snap)
	}
}

// TestReplayCharismaEndToEnd is the acceptance run: a synthetic
// CHARISMA trace replayed through a live lapcached with linear
// aggressive prefetching on. It must finish, report timeliness
// counters, and keep every file's outstanding-prefetch high-water at
// exactly 1.
func TestReplayCharismaEndToEnd(t *testing.T) {
	p := experiment.TinyScale().Charisma
	tr, err := workload.GenerateCharisma(p)
	if err != nil {
		t.Fatalf("generate trace: %v", err)
	}

	const blockSize = 512
	addr := startServer(t, lapcache.Config{
		Alg:          core.SpecLnAgrISPPM1,
		BlockSize:    blockSize,
		CacheBlocks:  4096,
		Workers:      8,
		QueueLen:     128,
		FileBlocks:   tr.FileBlocks,
		StrictLinear: true,
	})

	res, err := ReplayTrace(addr, tr, 0)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Requests != tr.TotalSteps() {
		t.Errorf("replayed %d requests, trace has %d", res.Requests, tr.TotalSteps())
	}
	if res.Reads == 0 {
		t.Fatal("trace replay issued no reads")
	}
	if r := res.HitRatio(); r < 0 || r > 1 {
		t.Errorf("hit ratio %f out of range", r)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	snap, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if snap.DemandHits+snap.DemandMisses == 0 {
		t.Fatal("server saw no demand reads")
	}
	if snap.PrefetchIssued == 0 {
		t.Error("prefetching never engaged during the replay")
	}
	if snap.PrefetchTimely+snap.PrefetchLate+snap.PrefetchWasted+snap.PrefetchUnused == 0 {
		t.Errorf("no timeliness classification recorded: %s", snap)
	}
	if snap.MaxFileOutstandingHW != 1 {
		t.Errorf("max per-file outstanding high-water = %d, want exactly 1 in linear mode",
			snap.MaxFileOutstandingHW)
	}
	if snap.LinearViolations != 0 {
		t.Errorf("%d linear violations", snap.LinearViolations)
	}
	t.Logf("replay: %d reqs in %v, client hit ratio %.3f; server: %s",
		res.Requests, res.Elapsed, res.HitRatio(), snap)
}

// TestReplayTraceDataIntegrity replays a tiny hand-made trace with
// verification that block contents survive the write → cache → read
// path through the wire.
func TestReplayTraceDataIntegrity(t *testing.T) {
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 16,
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// Unwritten blocks come back as the server-side fill pattern.
	data, _, err := c.Read(6, 4, 1, true)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := make([]byte, 128)
	lapcache.FillPattern(blockdev.BlockID{File: 6, Block: 4}, want)
	if !bytes.Equal(data, want) {
		t.Error("unwritten block did not arrive as the fill pattern")
	}
}
