package lapclient

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/lapcache"
)

// ErrNoLiveConn reports that every connection in a pool is dead.
var ErrNoLiveConn = errors.New("lapclient: no live connection in pool")

// ErrPoolClosed reports an operation on a closed pool.
var ErrPoolClosed = errors.New("lapclient: pool closed")

// Pool is a fixed set of pipelined binary connections fronting one
// server. Calls are spread round-robin across the connections; each
// connection multiplexes its callers through the in-flight window.
//
// The pool survives connection churn. A connection whose reader has
// died is skipped on pick, and a request that fails with a transport
// error — the connection died under it mid-flight — is re-issued on a
// surviving connection, up to one attempt per pool slot, so churn
// costs latency rather than losing the request. (Re-issue is safe
// because every op is idempotent: reads don't mutate, writes install
// the same bytes, closes park a chain that re-parks harmlessly.)
// Server refusals (*ServerError) are never retried: the server
// answered. Redial replaces dead connections with fresh dials, and
// ChurnOne force-rotates a live one — the load harness's
// connection-churn scenario. Only once every slot is dead and redial
// is not used does the pool error with ErrNoLiveConn.
//
// Safe for concurrent use — the replayer shares one Pool across every
// process goroutine, and the cluster layer keeps one per peer.
type Pool struct {
	addr   string
	window int
	wrap   ConnWrap

	conns []atomic.Pointer[Conn]
	next  atomic.Uint32
	churn atomic.Uint32

	mu          sync.Mutex // serializes Redial/ChurnOne slot replacement and Close
	closed      bool
	callTimeout time.Duration // inherited by redialed/churned connections
}

// SetCallTimeout bounds synchronous calls on every member connection,
// current and future — redialed and churned replacements inherit it.
// See Conn.SetCallTimeout for semantics.
func (p *Pool) SetCallTimeout(d time.Duration) {
	p.mu.Lock()
	p.callTimeout = d
	p.mu.Unlock()
	for i := range p.conns {
		if c := p.conns[i].Load(); c != nil {
			c.SetCallTimeout(d)
		}
	}
}

// DialPool opens nconns binary connections (0 = 4) with the given
// per-connection window (0 = DefaultWindow). It fails with ErrNoBinary
// against a JSON-only server.
func DialPool(addr string, nconns, window int) (*Pool, error) {
	return DialPoolWith(addr, nconns, window, nil)
}

// DialPoolWith is DialPool with a connection interposer applied to
// every member connection (nil = none).
func DialPoolWith(addr string, nconns, window int, wrap ConnWrap) (*Pool, error) {
	if nconns <= 0 {
		nconns = 4
	}
	p := &Pool{addr: addr, window: window, wrap: wrap, conns: make([]atomic.Pointer[Conn], nconns)}
	for i := 0; i < nconns; i++ {
		c, err := DialConnWith(addr, window, wrap)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("lapclient: pool conn %d: %w", i, err)
		}
		p.conns[i].Store(c)
	}
	return p, nil
}

// conn returns slot i's current connection (may be nil after a failed
// redial); tests reach individual members through it.
func (p *Pool) conn(i int) *Conn { return p.conns[i].Load() }

// Size returns the number of connection slots.
func (p *Pool) Size() int { return len(p.conns) }

// Info returns the server self-description from negotiation (from the
// first live connection).
func (p *Pool) Info() PingInfo {
	for i := range p.conns {
		if c := p.conns[i].Load(); c != nil {
			return c.Info()
		}
	}
	return PingInfo{}
}

// Close tears down every connection.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	var first error
	for i := range p.conns {
		c := p.conns[i].Load()
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Live returns how many connections can still carry requests.
func (p *Pool) Live() int {
	n := 0
	for i := range p.conns {
		if c := p.conns[i].Load(); c != nil && !c.Dead() {
			n++
		}
	}
	return n
}

// Redial replaces every dead (or empty) slot with a fresh connection,
// returning how many were replaced. Slots whose dial fails stay dead;
// the first dial error is reported alongside the count so a caller can
// keep churning against a flapping server.
func (p *Pool) Redial() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrPoolClosed
	}
	replaced := 0
	var firstErr error
	for i := range p.conns {
		old := p.conns[i].Load()
		if old != nil && !old.Dead() {
			continue
		}
		nc, err := DialConnWith(p.addr, p.window, p.wrap)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		nc.SetCallTimeout(p.callTimeout)
		p.conns[i].Store(nc)
		if old != nil {
			old.Close()
		}
		replaced++
	}
	return replaced, firstErr
}

// ChurnOne force-rotates one slot: it dials a replacement first, swaps
// it in, then closes the old connection — in-flight requests on the
// victim fail over to surviving slots through the pool's retry. The
// load harness's connection-churn scenario calls this on a timer.
func (p *Pool) ChurnOne() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	i := int(p.churn.Add(1)-1) % len(p.conns)
	nc, err := DialConnWith(p.addr, p.window, p.wrap)
	if err != nil {
		return err
	}
	nc.SetCallTimeout(p.callTimeout)
	old := p.conns[i].Swap(nc)
	if old != nil {
		old.Close()
	}
	return nil
}

// pick selects the next live connection round-robin, skipping
// connections whose peer has torn them down.
func (p *Pool) pick() (*Conn, error) {
	n := uint32(len(p.conns))
	start := p.next.Add(1)
	for i := uint32(0); i < n; i++ {
		if c := p.conns[(start+i)%n].Load(); c != nil && !c.Dead() {
			return c, nil
		}
	}
	return nil, ErrNoLiveConn
}

// retriable reports an error worth re-issuing on another connection: a
// transport failure, where the server never answered. Refusals and
// deadline verdicts are final.
func retriable(err error) bool {
	var se *ServerError
	return !errors.As(err, &se) && !errors.Is(err, ErrDeadline)
}

// withConn runs fn against picked connections, re-issuing on transport
// errors until the per-request budget (one attempt per slot, plus the
// first) is spent.
func (p *Pool) withConn(fn func(*Conn) error) error {
	var last error
	for attempt := 0; attempt <= len(p.conns); attempt++ {
		c, err := p.pick()
		if err != nil {
			if last != nil {
				return last
			}
			return err
		}
		if err := fn(c); err == nil || !retriable(err) {
			return err
		} else {
			last = err
		}
	}
	return last
}

// Ping re-queries the server over the binary protocol.
func (p *Pool) Ping() (info PingInfo, err error) {
	err = p.withConn(func(c *Conn) (e error) { info, e = c.Ping(); return })
	return
}

// Read requests nblocks blocks of f starting at block off.
func (p *Pool) Read(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool) (data []byte, hit bool, err error) {
	err = p.withConn(func(c *Conn) (e error) { data, hit, e = c.Read(f, off, nblocks, wantData); return })
	return
}

// ReadPeer forwards a peer read, landing block payloads in dsts. This
// is the cluster fetch hot path, so the retry loop is written inline
// rather than through withConn — the closure would capture its
// arguments onto the heap on every call, and the remoteHit alloc
// budget is zero.
func (p *Pool) ReadPeer(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, dsts [][]byte) (hit bool, err error) {
	var last error
	for attempt := 0; attempt <= len(p.conns); attempt++ {
		c, perr := p.pick()
		if perr != nil {
			if last != nil {
				return false, last
			}
			return false, perr
		}
		hit, err = c.ReadPeer(f, off, nblocks, dsts)
		if err == nil || !retriable(err) {
			return hit, err
		}
		last = err
	}
	return false, last
}

// Write sends nblocks blocks starting at off.
func (p *Pool) Write(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	return p.withConn(func(c *Conn) error { return c.Write(f, off, nblocks, data) })
}

// WriteChecked is Write, reporting the server's replicated ack (see
// Conn.WriteChecked).
func (p *Pool) WriteChecked(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (replicated bool, err error) {
	err = p.withConn(func(c *Conn) (e error) { replicated, e = c.WriteChecked(f, off, nblocks, data); return })
	return
}

// WritePeer forwards a peer write.
func (p *Pool) WritePeer(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	return p.withConn(func(c *Conn) error { return c.WritePeer(f, off, nblocks, data) })
}

// WritePeerChecked forwards a peer write, reporting the owner's
// replicated ack.
func (p *Pool) WritePeerChecked(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (replicated bool, err error) {
	err = p.withConn(func(c *Conn) (e error) { replicated, e = c.WritePeerChecked(f, off, nblocks, data); return })
	return
}

// WriteReplica pushes a replica install (see Conn.WriteReplica).
func (p *Pool) WriteReplica(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	return p.withConn(func(c *Conn) error { return c.WriteReplica(f, off, nblocks, data) })
}

// CloseFile tells the server this client is done with f for now.
func (p *Pool) CloseFile(f blockdev.FileID) error {
	return p.withConn(func(c *Conn) error { return c.CloseFile(f) })
}

// ClosePeer forwards a peer close.
func (p *Pool) ClosePeer(f blockdev.FileID) error {
	return p.withConn(func(c *Conn) error { return c.ClosePeer(f) })
}

// Owner asks a clustered server which node owns f on the ring.
func (p *Pool) Owner(f blockdev.FileID) (addr string, self bool, err error) {
	err = p.withConn(func(c *Conn) (e error) { addr, self, e = c.Owner(f); return })
	return
}

// Stats fetches the server's counter snapshot.
func (p *Pool) Stats() (snap lapcache.Snapshot, err error) {
	err = p.withConn(func(c *Conn) (e error) { snap, e = c.Stats(); return })
	return
}

// ReadAsync issues an open-loop read through the pool: it returns once
// the request is on (or queued for) the wire, and cb fires exactly
// once with the outcome. Transport failures re-issue on another
// connection (fresh deadline per attempt, one attempt per slot);
// ErrDeadline and server refusals are final. cb runs on a connection
// reader goroutine — keep it quick.
func (p *Pool) ReadAsync(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool, deadline time.Duration, cb func(hit bool, err error)) {
	p.readAsyncAttempt(f, off, nblocks, wantData, deadline, p.asyncBudget(), cb)
}

func (p *Pool) readAsyncAttempt(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool, deadline time.Duration, budget int, cb func(hit bool, err error)) {
	c, err := p.pick()
	if err != nil {
		cb(false, err)
		return
	}
	c.ReadAsync(f, off, nblocks, wantData, deadline, func(_ []byte, hit bool, err error) {
		if next, ok := p.nextBudget(err, budget); ok {
			p.readAsyncAttempt(f, off, nblocks, wantData, deadline, next, cb)
			return
		}
		cb(hit, err)
	})
}

// asyncBudget is the mid-flight retry allowance for async requests.
// It is deliberately generous — under sustained churn a long-lived
// request can be caught on a dying connection several times over, and
// each catch is the churner's fault, not the request's. Termination
// does not depend on it: once every slot is dead, pick fails the
// request immediately.
func (p *Pool) asyncBudget() int { return 4*len(p.conns) + 4 }

// nextBudget decides whether an async failure is re-issued and with
// what remaining budget. A request that never reached the wire
// (notSentError — it died queued for a window slot, or its frame write
// failed) retries for free: it consumed nothing, and each retry
// re-picks round-robin so a burst queued behind a dying connection
// drains onto survivors however many churn. Mid-flight transport
// failures spend the budget. Refusals and deadline verdicts are final.
func (p *Pool) nextBudget(err error, budget int) (int, bool) {
	if err == nil || !retriable(err) {
		return 0, false
	}
	var ns *notSentError
	if errors.As(err, &ns) {
		return budget, true
	}
	if budget > 0 {
		return budget - 1, true
	}
	return 0, false
}

// WriteAsync issues an open-loop write through the pool, with the same
// completion and retry contract as ReadAsync.
func (p *Pool) WriteAsync(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte, deadline time.Duration, cb func(err error)) {
	p.writeAsyncAttempt(f, off, nblocks, data, deadline, p.asyncBudget(), cb)
}

func (p *Pool) writeAsyncAttempt(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte, deadline time.Duration, budget int, cb func(err error)) {
	c, err := p.pick()
	if err != nil {
		cb(err)
		return
	}
	c.WriteAsync(f, off, nblocks, data, deadline, func(err error) {
		if next, ok := p.nextBudget(err, budget); ok {
			p.writeAsyncAttempt(f, off, nblocks, data, deadline, next, cb)
			return
		}
		cb(err)
	})
}
