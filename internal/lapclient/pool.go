package lapclient

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/blockdev"
	"repro/internal/lapcache"
)

// ErrNoLiveConn reports that every connection in a pool is dead.
var ErrNoLiveConn = errors.New("lapclient: no live connection in pool")

// Pool is a fixed set of pipelined binary connections fronting one
// server. Calls are spread round-robin across the connections; each
// connection multiplexes its callers through the in-flight window.
// A connection whose reader has died is skipped — the pool degrades
// from N connections to however many survive, and only errors with
// ErrNoLiveConn once none do. Safe for concurrent use — the replayer
// shares one Pool across every process goroutine, and the cluster
// layer keeps one per peer.
type Pool struct {
	conns []*Conn
	next  atomic.Uint32
}

// DialPool opens nconns binary connections (0 = 4) with the given
// per-connection window (0 = DefaultWindow). It fails with ErrNoBinary
// against a JSON-only server.
func DialPool(addr string, nconns, window int) (*Pool, error) {
	return DialPoolWith(addr, nconns, window, nil)
}

// DialPoolWith is DialPool with a connection interposer applied to
// every member connection (nil = none).
func DialPoolWith(addr string, nconns, window int, wrap ConnWrap) (*Pool, error) {
	if nconns <= 0 {
		nconns = 4
	}
	p := &Pool{conns: make([]*Conn, 0, nconns)}
	for i := 0; i < nconns; i++ {
		c, err := DialConnWith(addr, window, wrap)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("lapclient: pool conn %d: %w", i, err)
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

// Info returns the server self-description from negotiation.
func (p *Pool) Info() PingInfo { return p.conns[0].Info() }

// Close tears down every connection.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Live returns how many connections can still carry requests.
func (p *Pool) Live() int {
	n := 0
	for _, c := range p.conns {
		if !c.Dead() {
			n++
		}
	}
	return n
}

// pick selects the next live connection round-robin, skipping
// connections whose peer has torn them down.
func (p *Pool) pick() (*Conn, error) {
	n := len(p.conns)
	start := int(p.next.Add(1))
	for i := 0; i < n; i++ {
		if c := p.conns[(start+i)%n]; !c.Dead() {
			return c, nil
		}
	}
	return nil, ErrNoLiveConn
}

// Ping re-queries the server over the binary protocol.
func (p *Pool) Ping() (PingInfo, error) {
	c, err := p.pick()
	if err != nil {
		return PingInfo{}, err
	}
	return c.Ping()
}

// Read requests nblocks blocks of f starting at block off.
func (p *Pool) Read(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool) ([]byte, bool, error) {
	c, err := p.pick()
	if err != nil {
		return nil, false, err
	}
	return c.Read(f, off, nblocks, wantData)
}

// ReadPeer forwards a peer read, landing block payloads in dsts.
func (p *Pool) ReadPeer(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, dsts [][]byte) (bool, error) {
	c, err := p.pick()
	if err != nil {
		return false, err
	}
	return c.ReadPeer(f, off, nblocks, dsts)
}

// Write sends nblocks blocks starting at off.
func (p *Pool) Write(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	c, err := p.pick()
	if err != nil {
		return err
	}
	return c.Write(f, off, nblocks, data)
}

// WritePeer forwards a peer write.
func (p *Pool) WritePeer(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	c, err := p.pick()
	if err != nil {
		return err
	}
	return c.WritePeer(f, off, nblocks, data)
}

// CloseFile tells the server this client is done with f for now.
func (p *Pool) CloseFile(f blockdev.FileID) error {
	c, err := p.pick()
	if err != nil {
		return err
	}
	return c.CloseFile(f)
}

// ClosePeer forwards a peer close.
func (p *Pool) ClosePeer(f blockdev.FileID) error {
	c, err := p.pick()
	if err != nil {
		return err
	}
	return c.ClosePeer(f)
}

// Owner asks a clustered server which node owns f on the ring.
func (p *Pool) Owner(f blockdev.FileID) (string, bool, error) {
	c, err := p.pick()
	if err != nil {
		return "", false, err
	}
	return c.Owner(f)
}

// Stats fetches the server's counter snapshot.
func (p *Pool) Stats() (lapcache.Snapshot, error) {
	c, err := p.pick()
	if err != nil {
		return lapcache.Snapshot{}, err
	}
	return c.Stats()
}
