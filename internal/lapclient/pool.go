package lapclient

import (
	"fmt"
	"sync/atomic"

	"repro/internal/blockdev"
	"repro/internal/lapcache"
)

// Pool is a fixed set of pipelined binary connections fronting one
// server. Calls are spread round-robin across the connections; each
// connection multiplexes its callers through the in-flight window.
// Safe for concurrent use — the replayer shares one Pool across every
// process goroutine.
type Pool struct {
	conns []*Conn
	next  atomic.Uint32
}

// DialPool opens nconns binary connections (0 = 4) with the given
// per-connection window (0 = DefaultWindow). It fails with ErrNoBinary
// against a JSON-only server.
func DialPool(addr string, nconns, window int) (*Pool, error) {
	if nconns <= 0 {
		nconns = 4
	}
	p := &Pool{conns: make([]*Conn, 0, nconns)}
	for i := 0; i < nconns; i++ {
		c, err := DialConn(addr, window)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("lapclient: pool conn %d: %w", i, err)
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

// Info returns the server self-description from negotiation.
func (p *Pool) Info() PingInfo { return p.conns[0].Info() }

// Close tears down every connection.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pick selects the next connection round-robin.
func (p *Pool) pick() *Conn {
	return p.conns[int(p.next.Add(1))%len(p.conns)]
}

// Read requests nblocks blocks of f starting at block off.
func (p *Pool) Read(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool) ([]byte, bool, error) {
	return p.pick().Read(f, off, nblocks, wantData)
}

// Write sends nblocks blocks starting at off.
func (p *Pool) Write(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	return p.pick().Write(f, off, nblocks, data)
}

// CloseFile tells the server this client is done with f for now.
func (p *Pool) CloseFile(f blockdev.FileID) error {
	return p.pick().CloseFile(f)
}

// Stats fetches the server's counter snapshot.
func (p *Pool) Stats() (lapcache.Snapshot, error) {
	return p.pick().Stats()
}
