// Package lapclient is the client side of the lapcache wire protocol:
// a thin connection wrapper plus a trace replayer that drives a live
// lapcached server with the simulator's workloads — each traced
// process becomes a goroutine with its own connection running the
// closed loop (think, request, wait) the paper models.
package lapclient

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/lapcache"
	"repro/internal/workload"
)

// Client is one connection to a lapcached server. It is not safe for
// concurrent use; the replayer opens one per process.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	bw   *bufio.Writer
	enc  *json.Encoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		sc:   bufio.NewScanner(conn),
		bw:   bufio.NewWriter(conn),
	}
	c.sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	c.enc = json.NewEncoder(c.bw)
	return c, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// do runs one request/response round trip.
func (c *Client) do(req *lapcache.WireRequest) (*lapcache.WireResponse, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("lapclient: connection closed mid-request")
	}
	var resp lapcache.WireResponse
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("lapclient: server error: %s", resp.Err)
	}
	return &resp, nil
}

// Ping returns the server's algorithm name and block size.
func (c *Client) Ping() (alg string, blockSize int, err error) {
	resp, err := c.do(&lapcache.WireRequest{Op: "ping"})
	if err != nil {
		return "", 0, err
	}
	return resp.Alg, resp.BlockSize, nil
}

// Read requests nblocks blocks of f starting at block off. hit
// reports that the server had every block cached; data is nil unless
// wantData.
func (c *Client) Read(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool) (data []byte, hit bool, err error) {
	resp, err := c.do(&lapcache.WireRequest{
		Op: "read", File: int32(f), Offset: int32(off), Size: nblocks, WantData: wantData,
	})
	if err != nil {
		return nil, false, err
	}
	return resp.Data, resp.Hit, nil
}

// Write sends nblocks blocks starting at off; nil data writes the
// deterministic fill pattern server-side.
func (c *Client) Write(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	_, err := c.do(&lapcache.WireRequest{
		Op: "write", File: int32(f), Offset: int32(off), Size: nblocks, Data: data,
	})
	return err
}

// CloseFile tells the server this client is done with f for now.
func (c *Client) CloseFile(f blockdev.FileID) error {
	_, err := c.do(&lapcache.WireRequest{Op: "close", File: int32(f)})
	return err
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (lapcache.Snapshot, error) {
	resp, err := c.do(&lapcache.WireRequest{Op: "stats"})
	if err != nil {
		return lapcache.Snapshot{}, err
	}
	if resp.Stats == nil {
		return lapcache.Snapshot{}, fmt.Errorf("lapclient: stats response without stats")
	}
	return *resp.Stats, nil
}

// ReplayResult summarizes a trace replay from the client's side.
type ReplayResult struct {
	Procs    int
	Requests int
	Reads    int
	ReadHits int
	Writes   int
	Closes   int
	Elapsed  time.Duration
}

// HitRatio returns the fraction of reads fully served from cache.
func (r ReplayResult) HitRatio() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.ReadHits) / float64(r.Reads)
}

// ReplayTrace drives a server with a workload trace: one goroutine and
// one connection per traced process, each running its closed loop in
// order. Think times are multiplied by thinkScale (0 disables thinking
// entirely — the usual choice, since the trace's virtual think times
// are far longer than a live server's service times).
func ReplayTrace(addr string, tr *workload.Trace, thinkScale float64) (ReplayResult, error) {
	probe, err := Dial(addr)
	if err != nil {
		return ReplayResult{}, err
	}
	_, blockSize, err := probe.Ping()
	probe.Close()
	if err != nil {
		return ReplayResult{}, err
	}
	if blockSize <= 0 {
		return ReplayResult{}, fmt.Errorf("lapclient: server reports block size %d", blockSize)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		res      ReplayResult
		firstErr error
	)
	res.Procs = len(tr.Procs)
	start := time.Now()
	for pi := range tr.Procs {
		wg.Add(1)
		go func(p *workload.Process) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer c.Close()
			var local ReplayResult
			for _, s := range p.Steps {
				if thinkScale > 0 && s.Think > 0 {
					time.Sleep(time.Duration(float64(s.Think) * thinkScale))
				}
				local.Requests++
				switch s.Kind {
				case workload.OpRead:
					span := blockdev.ByteRangeToSpan(s.File, s.Offset, s.Size, int64(blockSize))
					_, hit, err := c.Read(span.File, span.Start, span.Count, false)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					local.Reads++
					if hit {
						local.ReadHits++
					}
				case workload.OpWrite:
					span := blockdev.ByteRangeToSpan(s.File, s.Offset, s.Size, int64(blockSize))
					if err := c.Write(span.File, span.Start, span.Count, nil); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					local.Writes++
				case workload.OpClose:
					if err := c.CloseFile(s.File); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					local.Closes++
				}
			}
			mu.Lock()
			res.Requests += local.Requests
			res.Reads += local.Reads
			res.ReadHits += local.ReadHits
			res.Writes += local.Writes
			res.Closes += local.Closes
			mu.Unlock()
		}(&tr.Procs[pi])
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}
