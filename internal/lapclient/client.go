// Package lapclient is the client side of the lapcache wire protocol:
// a thin JSON connection wrapper (the legacy protocol, kept for old
// servers and debugging), a pipelined binary connection with a pooled
// front end, and a trace replayer that drives a live lapcached server
// with the simulator's workloads — each traced process runs the
// closed loop (think, request, wait) the paper models.
package lapclient

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"

	"repro/internal/blockdev"
	"repro/internal/lapcache"
	"repro/internal/wire"
)

// PingInfo is what a server reports about itself.
type PingInfo struct {
	Alg       string
	BlockSize int
	// ProtoMax is the newest wire protocol the server speaks; 0 or
	// wire.ProtoJSON means a legacy JSON-only server.
	ProtoMax int
}

// Client is one JSON-protocol connection to a lapcached server. It is
// not safe for concurrent use; for a concurrent, pipelined connection
// upgrade to Conn (see DialConn / DialPool).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	enc  *json.Encoder
}

// ConnWrap intercepts a freshly dialed connection before any protocol
// traffic; fault-injection harnesses use it to interpose transport
// faults. nil means no interposition.
type ConnWrap func(net.Conn) net.Conn

// Dial connects to a server in the JSON protocol.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, nil)
}

// DialWith is Dial with a connection interposer (nil = none).
func DialWith(addr string, wrap ConnWrap) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	return newClient(conn), nil
}

func newClient(conn net.Conn) *Client {
	c := &Client{
		conn: conn,
		// Lines are bounded by wire.MaxFrame, not the 64 KiB
		// bufio.Scanner default that used to kill multi-block
		// WantData reads.
		br: bufio.NewReaderSize(conn, 64<<10),
		bw: bufio.NewWriter(conn),
	}
	c.enc = json.NewEncoder(c.bw)
	return c
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// do runs one request/response round trip.
func (c *Client) do(req *lapcache.WireRequest) (*lapcache.WireResponse, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	line, err := wire.ReadLine(c.br, wire.MaxFrame)
	if err != nil {
		return nil, fmt.Errorf("lapclient: reading response: %w", err)
	}
	var resp lapcache.WireResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, &ServerError{Msg: resp.Err}
	}
	return &resp, nil
}

// Ping returns the server's self-description.
func (c *Client) Ping() (PingInfo, error) {
	resp, err := c.do(&lapcache.WireRequest{Op: "ping"})
	if err != nil {
		return PingInfo{}, err
	}
	return PingInfo{Alg: resp.Alg, BlockSize: resp.BlockSize, ProtoMax: resp.ProtoMax}, nil
}

// Read requests nblocks blocks of f starting at block off. hit
// reports that the server had every block cached; data is nil unless
// wantData.
func (c *Client) Read(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool) (data []byte, hit bool, err error) {
	resp, err := c.do(&lapcache.WireRequest{
		Op: "read", File: int32(f), Offset: int32(off), Size: nblocks, WantData: wantData,
	})
	if err != nil {
		return nil, false, err
	}
	return resp.Data, resp.Hit, nil
}

// Write sends nblocks blocks starting at off; nil data writes the
// deterministic fill pattern server-side.
func (c *Client) Write(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	_, err := c.do(&lapcache.WireRequest{
		Op: "write", File: int32(f), Offset: int32(off), Size: nblocks, Data: data,
	})
	return err
}

// CloseFile tells the server this client is done with f for now.
func (c *Client) CloseFile(f blockdev.FileID) error {
	_, err := c.do(&lapcache.WireRequest{Op: "close", File: int32(f)})
	return err
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (lapcache.Snapshot, error) {
	resp, err := c.do(&lapcache.WireRequest{Op: "stats"})
	if err != nil {
		return lapcache.Snapshot{}, err
	}
	if resp.Stats == nil {
		return lapcache.Snapshot{}, fmt.Errorf("lapclient: stats response without stats")
	}
	return *resp.Stats, nil
}
