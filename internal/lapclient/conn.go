package lapclient

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/blockdev"
	"repro/internal/lapcache"
	"repro/internal/wire"
)

// ErrNoBinary reports a server that only speaks the JSON protocol.
var ErrNoBinary = errors.New("lapclient: server does not speak the binary protocol")

// DefaultWindow is the per-connection in-flight request cap when the
// caller passes 0.
const DefaultWindow = 32

// Conn is one binary-protocol connection. Unlike Client it is safe
// for concurrent use and pipelined: up to window requests ride the
// wire at once, and a reader goroutine matches responses to waiters
// by the frame sequence number — so one slow round trip no longer
// head-of-line blocks every other caller on the connection.
type Conn struct {
	conn net.Conn
	info PingInfo

	wmu sync.Mutex // serializes frame writes + flushes
	bw  *bufio.Writer

	seq    atomic.Uint32
	window chan struct{} // in-flight slots

	pmu     sync.Mutex
	pending map[uint32]chan binResp
	readErr error
	dead    chan struct{} // closed when the reader goroutine exits
}

// binResp is one matched response frame.
type binResp struct {
	h       wire.Header
	payload []byte // owned by the receiver
}

// DialConn connects, negotiates through the JSON ping, and upgrades
// the connection to the binary protocol. window bounds in-flight
// requests (0 = DefaultWindow). Servers without binary support yield
// ErrNoBinary; callers that must work against old servers fall back
// to Dial.
func DialConn(addr string, window int) (*Conn, error) {
	jc, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	info, err := jc.Ping()
	if err != nil {
		jc.Close()
		return nil, err
	}
	if info.ProtoMax < wire.ProtoBinary {
		jc.Close()
		return nil, ErrNoBinary
	}
	if _, err := jc.do(&lapcache.WireRequest{Op: "upgrade", Proto: wire.ProtoBinary}); err != nil {
		jc.Close()
		return nil, fmt.Errorf("lapclient: upgrade refused: %w", err)
	}
	if window <= 0 {
		window = DefaultWindow
	}
	c := &Conn{
		conn:    jc.conn,
		info:    info,
		bw:      jc.bw,
		window:  make(chan struct{}, window),
		pending: make(map[uint32]chan binResp),
		dead:    make(chan struct{}),
	}
	// The JSON client's buffered reader carries over: the server sends
	// nothing between the upgrade OK and our first binary frame, so no
	// bytes are stranded behind the protocol switch.
	go c.readLoop(jc.br)
	return c, nil
}

// Info returns the server self-description captured at negotiation.
func (c *Conn) Info() PingInfo { return c.info }

// Close tears the connection down; in-flight calls fail.
func (c *Conn) Close() error { return c.conn.Close() }

// readLoop delivers response frames to their waiting callers.
func (c *Conn) readLoop(br *bufio.Reader) {
	var scratch [wire.HeaderSize]byte
	for {
		h, err := wire.ReadHeader(br, scratch[:])
		if err != nil {
			c.fail(fmt.Errorf("lapclient: connection lost: %w", err))
			return
		}
		// Each response's payload is freshly allocated: it is handed
		// to a concurrent caller, so the loop cannot reuse it.
		payload, err := wire.ReadPayload(br, h, nil)
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		ch := c.pending[h.Seq]
		delete(c.pending, h.Seq)
		c.pmu.Unlock()
		if ch == nil {
			c.fail(fmt.Errorf("lapclient: response for unknown seq %d", h.Seq))
			return
		}
		ch <- binResp{h: h, payload: payload}
	}
}

// fail poisons the connection: current and future callers get err.
func (c *Conn) fail(err error) {
	c.pmu.Lock()
	if c.readErr == nil {
		c.readErr = err
		close(c.dead)
	}
	pending := c.pending
	c.pending = make(map[uint32]chan binResp)
	c.pmu.Unlock()
	c.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// do runs one pipelined request/response exchange.
func (c *Conn) do(h wire.Header, payload []byte) (binResp, error) {
	select {
	case c.window <- struct{}{}:
	case <-c.dead:
		return binResp{}, c.err()
	}
	defer func() { <-c.window }()

	h.Seq = c.seq.Add(1)
	ch := make(chan binResp, 1)
	c.pmu.Lock()
	if c.readErr != nil {
		c.pmu.Unlock()
		return binResp{}, c.err()
	}
	c.pending[h.Seq] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	err := wire.WriteFrame(c.bw, h, payload)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, h.Seq)
		c.pmu.Unlock()
		return binResp{}, err
	}

	resp, ok := <-ch
	if !ok {
		return binResp{}, c.err()
	}
	if resp.h.Flags&wire.FlagOK == 0 {
		return binResp{}, fmt.Errorf("lapclient: server error: %s", resp.payload)
	}
	return resp, nil
}

func (c *Conn) err() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return errors.New("lapclient: connection closed")
}

// Ping re-queries the server over the binary protocol.
func (c *Conn) Ping() (PingInfo, error) {
	resp, err := c.do(wire.Header{Op: wire.OpPing}, nil)
	if err != nil {
		return PingInfo{}, err
	}
	var doc struct {
		Alg       string `json:"alg"`
		BlockSize int    `json:"block_size"`
		ProtoMax  int    `json:"proto_max"`
	}
	if err := json.Unmarshal(resp.payload, &doc); err != nil {
		return PingInfo{}, err
	}
	return PingInfo{Alg: doc.Alg, BlockSize: doc.BlockSize, ProtoMax: doc.ProtoMax}, nil
}

// Read requests nblocks blocks of f starting at block off; data is
// nil unless wantData.
func (c *Conn) Read(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool) (data []byte, hit bool, err error) {
	h := wire.Header{Op: wire.OpRead, File: int32(f), Offset: int32(off), Size: nblocks}
	if wantData {
		h.Flags = wire.FlagWantData
	}
	resp, err := c.do(h, nil)
	if err != nil {
		return nil, false, err
	}
	return resp.payload, resp.h.Flags&wire.FlagHit != 0, nil
}

// Write sends nblocks blocks starting at off; nil data writes the
// deterministic fill pattern server-side.
func (c *Conn) Write(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	_, err := c.do(wire.Header{Op: wire.OpWrite, File: int32(f), Offset: int32(off), Size: nblocks}, data)
	return err
}

// CloseFile tells the server this client is done with f for now.
func (c *Conn) CloseFile(f blockdev.FileID) error {
	_, err := c.do(wire.Header{Op: wire.OpClose, File: int32(f)}, nil)
	return err
}

// Stats fetches the server's counter snapshot.
func (c *Conn) Stats() (lapcache.Snapshot, error) {
	resp, err := c.do(wire.Header{Op: wire.OpStats}, nil)
	if err != nil {
		return lapcache.Snapshot{}, err
	}
	var snap lapcache.Snapshot
	if err := json.Unmarshal(resp.payload, &snap); err != nil {
		return lapcache.Snapshot{}, err
	}
	return snap, nil
}
