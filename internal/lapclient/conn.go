package lapclient

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/lapcache"
	"repro/internal/wire"
)

// ErrNoBinary reports a server that only speaks the JSON protocol.
var ErrNoBinary = errors.New("lapclient: server does not speak the binary protocol")

// ErrDeadline reports an async request whose per-request deadline
// expired before the response frame arrived. The request is still on
// the wire — its in-flight window slot is held until the response (or
// the connection's death) retires it — so a deadline is a latency
// verdict, not a cancellation.
var ErrDeadline = errors.New("lapclient: request deadline exceeded")

// notSentError marks an async failure that happened before the
// request reached the wire: the connection died while the call was
// queued for a window slot, or the frame write itself failed. The
// server never saw a complete frame, so a pool may re-issue the
// request on another connection without spending its mid-flight retry
// budget — the request consumed no wire resources.
type notSentError struct{ err error }

func (e *notSentError) Error() string { return e.err.Error() }
func (e *notSentError) Unwrap() error { return e.err }

// ServerError is an error frame (or JSON error response) from the
// server: the request was delivered and the server refused it. Every
// other failure mode — dial, write, torn connection — surfaces as a
// plain error. The cluster layer leans on the distinction: a refusal
// propagates to the caller, a transport error marks the peer down and
// degrades service to the local store.
type ServerError struct {
	Op  wire.Op // zero on the JSON protocol
	Msg string
}

func (e *ServerError) Error() string { return fmt.Sprintf("lapclient: server error: %s", e.Msg) }

// DefaultWindow is the per-connection in-flight request cap when the
// caller passes 0.
const DefaultWindow = 32

// Conn is one binary-protocol connection. Unlike Client it is safe
// for concurrent use and pipelined: up to window requests ride the
// wire at once, and a reader goroutine matches responses to waiters
// by the frame sequence number — so one slow round trip no longer
// head-of-line blocks every other caller on the connection.
type Conn struct {
	conn net.Conn
	info PingInfo

	wmu  sync.Mutex            // serializes frame writes
	whdr [wire.HeaderSize]byte // header scratch for vectored writes
	wvec net.Buffers           // reusable gather slice (under wmu)

	seq    atomic.Uint32
	window chan struct{} // in-flight slots

	callTimeout atomic.Int64 // max sync-call wait in ns; 0 = unbounded

	pmu     sync.Mutex
	pending map[uint32]*pendingCall
	readErr error
	dead    chan struct{} // closed when the reader goroutine exits
}

// pendingCall is one in-flight request awaiting its response frame.
// When dsts is non-nil and the response is a successful read whose
// payload length matches, the reader lands the payload directly into
// the caller's buffers — the zero-copy half of peer forwarding: block
// bytes go socket → blockbuf with no intermediate allocation.
//
// Synchronous callers wait on ch. Asynchronous callers (the open-loop
// load path) set cb instead: the reader goroutine invokes it on
// completion, and an optional deadline timer may invoke it early with
// ErrDeadline — done arbitrates so exactly one of them fires the
// callback. The in-flight window slot of a cb call is released only
// when the call leaves the pending map (response delivered or the
// connection failed), never by the deadline: a timed-out request is
// still occupying the wire.
type pendingCall struct {
	ch   chan binResp
	err  error // set by deliver before the ch send (sync calls)
	dsts [][]byte

	cb    func(binResp, error)
	timer *time.Timer
	done  atomic.Bool

	// tmr is the reusable synchronous call-timeout timer; it travels
	// with the call record through the pool, so a timed call costs no
	// timer allocation in steady state.
	tmr *time.Timer
}

// callPool recycles synchronous call records — the pendingCall, its
// buffered response channel and its timeout timer — across calls and
// connections: the last per-request allocations on the hot read path.
// Async calls (cb set) are never pooled: a deadline AfterFunc that
// fires after delivery must find the call it armed, not a recycled
// one.
var callPool = sync.Pool{New: func() any { return &pendingCall{ch: make(chan binResp, 1)} }}

// getCall takes a recycled call record for a synchronous exchange.
func getCall(dsts [][]byte) *pendingCall {
	call := callPool.Get().(*pendingCall)
	call.err = nil
	call.dsts = dsts
	return call
}

// putCall recycles a synchronous call record. The caller must have
// consumed the channel's delivery (or know none happened): a stale
// buffered response would corrupt the next exchange.
func putCall(call *pendingCall) {
	call.dsts = nil
	callPool.Put(call)
}

// binResp is one matched response frame.
type binResp struct {
	h       wire.Header
	payload []byte // owned by the receiver; nil when filled
	filled  bool   // payload landed in the caller's dsts
}

// DialConn connects, negotiates through the JSON ping, and upgrades
// the connection to the binary protocol. window bounds in-flight
// requests (0 = DefaultWindow). Servers without binary support yield
// ErrNoBinary; callers that must work against old servers fall back
// to Dial.
func DialConn(addr string, window int) (*Conn, error) {
	return DialConnWith(addr, window, nil)
}

// DialConnWith is DialConn with a connection interposer (nil = none),
// applied before negotiation so faults cover the JSON handshake too.
func DialConnWith(addr string, window int, wrap ConnWrap) (*Conn, error) {
	jc, err := DialWith(addr, wrap)
	if err != nil {
		return nil, err
	}
	info, err := jc.Ping()
	if err != nil {
		jc.Close()
		return nil, err
	}
	if info.ProtoMax < wire.ProtoBinary {
		jc.Close()
		return nil, ErrNoBinary
	}
	if _, err := jc.do(&lapcache.WireRequest{Op: "upgrade", Proto: wire.ProtoBinary}); err != nil {
		jc.Close()
		return nil, fmt.Errorf("lapclient: upgrade refused: %w", err)
	}
	if window <= 0 {
		window = DefaultWindow
	}
	c := &Conn{
		conn:    jc.conn,
		info:    info,
		window:  make(chan struct{}, window),
		pending: make(map[uint32]*pendingCall),
		dead:    make(chan struct{}),
	}
	// The JSON client's buffered reader carries over: the server sends
	// nothing between the upgrade OK and our first binary frame, so no
	// bytes are stranded behind the protocol switch.
	go c.readLoop(jc.br)
	return c, nil
}

// Info returns the server self-description captured at negotiation.
func (c *Conn) Info() PingInfo { return c.info }

// SetCallTimeout bounds every synchronous call on the connection: a
// response frame that hasn't arrived within d means the connection is
// treated as dead — it is severed, and every in-flight call fails
// with a transport error. Zero (the default) waits forever.
//
// The cluster tier sets this on its peer pools. A server handler that
// issues a nested peer RPC (forwarding a client write to the owner,
// pushing the owner's R=2 copy to its successor) must never block
// unboundedly: per-connection request handling is sequential, so a
// cycle of handlers waiting on each other's pipelined connections can
// deadlock the whole cluster when rings transiently disagree. The
// timeout converts such a cycle into a transport error the cluster
// already tolerates — the peer degrades and the health loop redials.
func (c *Conn) SetCallTimeout(d time.Duration) { c.callTimeout.Store(int64(d)) }

// Close tears the connection down; in-flight calls fail.
func (c *Conn) Close() error { return c.conn.Close() }

// readLoop delivers response frames to their waiting callers. The
// sequence number is matched before the payload is read, so a caller
// that registered destination buffers gets the bytes streamed straight
// off the socket into them.
func (c *Conn) readLoop(br *bufio.Reader) {
	var scratch [wire.HeaderSize]byte
	for {
		h, err := wire.ReadHeader(br, scratch[:])
		if err != nil {
			c.fail(fmt.Errorf("lapclient: connection lost: %w", err))
			return
		}
		c.pmu.Lock()
		call := c.pending[h.Seq]
		delete(c.pending, h.Seq)
		c.pmu.Unlock()
		if call == nil {
			c.fail(fmt.Errorf("lapclient: response for unknown seq %d", h.Seq))
			return
		}
		resp := binResp{h: h}
		if call.dsts != nil && h.Flags&wire.FlagOK != 0 && int(h.PayloadLen) == payloadLen(call.dsts) {
			for _, d := range call.dsts {
				if _, err = io.ReadFull(br, d); err != nil {
					break
				}
			}
			resp.filled = err == nil
		} else {
			// Error frames (and length mismatches) take the allocating
			// path: an error message must never land in a block buffer.
			// The payload is freshly allocated — it is handed to a
			// concurrent caller, so the loop cannot reuse it.
			resp.payload, err = wire.ReadPayload(br, h, nil)
		}
		if err != nil {
			// The current call has already left the pending map, so fail's
			// sweep cannot reach it — deliver its error explicitly.
			lost := fmt.Errorf("lapclient: connection lost: %w", err)
			c.fail(lost)
			c.deliver(call, binResp{}, lost)
			return
		}
		c.deliver(call, resp, nil)
	}
}

// deliver completes one call that has been removed from the pending
// map: the sync path records the error and hands the response to the
// waiter (always a send — the channel is never closed, so the call
// record can be recycled), the async path stops the deadline timer,
// fires the callback if the deadline hasn't already, and releases the
// window slot the issue path acquired.
func (c *Conn) deliver(call *pendingCall, resp binResp, err error) {
	if call.cb == nil {
		call.err = err
		call.ch <- resp
		return
	}
	if call.timer != nil {
		call.timer.Stop()
	}
	if call.done.CompareAndSwap(false, true) {
		if err == nil && resp.h.Flags&wire.FlagOK == 0 {
			err = &ServerError{Op: resp.h.Op, Msg: string(resp.payload)}
		}
		call.cb(resp, err)
	}
	<-c.window
}

// payloadLen sums the destination buffer lengths.
func payloadLen(dsts [][]byte) int {
	n := 0
	for _, d := range dsts {
		n += len(d)
	}
	return n
}

// fail poisons the connection: current and future callers get err.
func (c *Conn) fail(err error) {
	c.pmu.Lock()
	if c.readErr == nil {
		c.readErr = err
		close(c.dead)
	}
	pending := c.pending
	c.pending = make(map[uint32]*pendingCall)
	c.pmu.Unlock()
	c.conn.Close()
	for _, call := range pending {
		c.deliver(call, binResp{}, err)
	}
}

// Dead reports that the connection's reader has exited — it can never
// carry another request. Pools skip dead connections when picking.
func (c *Conn) Dead() bool {
	select {
	case <-c.dead:
		return true
	default:
		return false
	}
}

// writeFrame puts one frame on the wire with a single vectored write
// — header and payload gathered into one writev straight from the
// caller's buffer, no bufio staging copy, no flush step.
func (c *Conn) writeFrame(h wire.Header, payload []byte) error {
	c.wmu.Lock()
	err := wire.WriteFrameVectored(c.conn, c.whdr[:], h, payload, &c.wvec)
	c.wmu.Unlock()
	return err
}

// do runs one pipelined request/response exchange.
func (c *Conn) do(h wire.Header, payload []byte) (binResp, error) {
	return c.doCall(h, payload, nil)
}

// doCall is do with optional destination buffers for a read's payload
// (see pendingCall).
func (c *Conn) doCall(h wire.Header, payload []byte, dsts [][]byte) (binResp, error) {
	select {
	case c.window <- struct{}{}:
	case <-c.dead:
		return binResp{}, c.err()
	}
	defer func() { <-c.window }()

	h.Seq = c.seq.Add(1)
	call := getCall(dsts)
	c.pmu.Lock()
	if c.readErr != nil {
		c.pmu.Unlock()
		putCall(call)
		return binResp{}, c.err()
	}
	c.pending[h.Seq] = call
	c.pmu.Unlock()

	if err := c.writeFrame(h, payload); err != nil {
		// Undo the registration — but a concurrent fail may have
		// swapped the pending map and delivered already; only the side
		// that removes the call retires (and recycles) it.
		c.pmu.Lock()
		_, mine := c.pending[h.Seq]
		delete(c.pending, h.Seq)
		c.pmu.Unlock()
		if !mine {
			// fail's delivery is done or in flight on the buffered
			// channel; consume it so the recycled record starts clean.
			<-call.ch
		}
		putCall(call)
		return binResp{}, err
	}

	var resp binResp
	if d := time.Duration(c.callTimeout.Load()); d > 0 {
		t := call.tmr
		if t == nil {
			t = time.NewTimer(d)
			call.tmr = t
		} else {
			t.Reset(d)
		}
		select {
		case resp = <-call.ch:
			// A timer that fired between the delivery and Stop leaves
			// its tick buffered (pre-1.23 timer semantics — go.mod pins
			// an older language version); drain it so the recycled
			// record's next Reset starts clean. Only this goroutine
			// ever receives from t.C.
			if !t.Stop() {
				<-t.C
			}
		case <-t.C:
			// The response is overdue past any plausible round trip.
			// Sever the connection: fail delivers to every pending call
			// (including this one), so the receive below cannot block.
			// Rescuing just this call would desynchronize the pipeline —
			// a late response frame would match no waiter.
			c.fail(fmt.Errorf("lapclient: call timed out after %v: %w", d, ErrDeadline))
			resp = <-call.ch
		}
	} else {
		resp = <-call.ch
	}
	err := call.err
	putCall(call)
	if err != nil {
		return binResp{}, err
	}
	if resp.h.Flags&wire.FlagOK == 0 {
		return binResp{}, &ServerError{Op: resp.h.Op, Msg: string(resp.payload)}
	}
	return resp, nil
}

func (c *Conn) err() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return errors.New("lapclient: connection closed")
}

// issueAsync puts one request on the wire without blocking the caller
// on the response: cb fires later from the reader goroutine (or the
// deadline timer). The caller's goroutine never waits on a round trip
// — when the in-flight window is full, the send itself is queued on a
// spawned goroutine, so an open-loop generator's dispatch clock is
// never backpressured into a closed loop. cb must be quick (it runs on
// the connection's reader goroutine) and is invoked exactly once.
func (c *Conn) issueAsync(h wire.Header, payload []byte, deadline time.Duration, cb func(binResp, error)) {
	call := &pendingCall{cb: cb}
	select {
	case c.window <- struct{}{}:
		c.startAsync(h, payload, deadline, call)
	case <-c.dead:
		c.abortAsync(call, c.err())
	default:
		go func() {
			select {
			case c.window <- struct{}{}:
				c.startAsync(h, payload, deadline, call)
			case <-c.dead:
				c.abortAsync(call, c.err())
			}
		}()
	}
}

// abortAsync fails a call that never made it onto the wire; the error
// is marked notSentError so pools can re-issue it for free.
func (c *Conn) abortAsync(call *pendingCall, err error) {
	if call.done.CompareAndSwap(false, true) {
		call.cb(binResp{}, &notSentError{err: err})
	}
}

// startAsync registers and writes an async call; its window slot is
// already held and is released by deliver (or here, when the frame
// never makes it onto the wire).
func (c *Conn) startAsync(h wire.Header, payload []byte, deadline time.Duration, call *pendingCall) {
	h.Seq = c.seq.Add(1)
	c.pmu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.pmu.Unlock()
		<-c.window
		c.abortAsync(call, err)
		return
	}
	c.pending[h.Seq] = call
	c.pmu.Unlock()

	if deadline > 0 {
		call.timer = time.AfterFunc(deadline, func() {
			if call.done.CompareAndSwap(false, true) {
				call.cb(binResp{}, ErrDeadline)
			}
		})
	}

	if err := c.writeFrame(h, payload); err != nil {
		// Undo the registration — but a concurrent fail may have swapped
		// the pending map and delivered (and released the slot) already;
		// only the side that removes the call retires it.
		c.pmu.Lock()
		_, mine := c.pending[h.Seq]
		delete(c.pending, h.Seq)
		c.pmu.Unlock()
		if mine {
			if call.timer != nil {
				call.timer.Stop()
			}
			<-c.window
			c.abortAsync(call, err)
		}
	}
}

// ReadAsync issues a read open-loop: it returns once the request is on
// (or queued for) the wire, and cb fires with the outcome — hit on
// success, ErrDeadline if the response misses the deadline (0 = none),
// a *ServerError on refusal, or a transport error. data is only
// captured when wantData is set.
func (c *Conn) ReadAsync(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool, deadline time.Duration, cb func(data []byte, hit bool, err error)) {
	h := wire.Header{Op: wire.OpRead, File: int32(f), Offset: int32(off), Size: nblocks}
	if wantData {
		h.Flags = wire.FlagWantData
	}
	c.issueAsync(h, nil, deadline, func(resp binResp, err error) {
		if err != nil {
			cb(nil, false, err)
			return
		}
		cb(resp.payload, resp.h.Flags&wire.FlagHit != 0, nil)
	})
}

// WriteAsync issues a write open-loop; nil data writes the
// deterministic fill pattern server-side.
func (c *Conn) WriteAsync(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte, deadline time.Duration, cb func(err error)) {
	h := wire.Header{Op: wire.OpWrite, File: int32(f), Offset: int32(off), Size: nblocks}
	c.issueAsync(h, data, deadline, func(resp binResp, err error) { cb(err) })
}

// Ping re-queries the server over the binary protocol.
func (c *Conn) Ping() (PingInfo, error) {
	resp, err := c.do(wire.Header{Op: wire.OpPing}, nil)
	if err != nil {
		return PingInfo{}, err
	}
	var doc struct {
		Alg       string `json:"alg"`
		BlockSize int    `json:"block_size"`
		ProtoMax  int    `json:"proto_max"`
	}
	if err := json.Unmarshal(resp.payload, &doc); err != nil {
		return PingInfo{}, err
	}
	return PingInfo{Alg: doc.Alg, BlockSize: doc.BlockSize, ProtoMax: doc.ProtoMax}, nil
}

// Read requests nblocks blocks of f starting at block off; data is
// nil unless wantData.
func (c *Conn) Read(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool) (data []byte, hit bool, err error) {
	h := wire.Header{Op: wire.OpRead, File: int32(f), Offset: int32(off), Size: nblocks}
	if wantData {
		h.Flags = wire.FlagWantData
	}
	resp, err := c.do(h, nil)
	if err != nil {
		return nil, false, err
	}
	return resp.payload, resp.h.Flags&wire.FlagHit != 0, nil
}

// Write sends nblocks blocks starting at off; nil data writes the
// deterministic fill pattern server-side.
func (c *Conn) Write(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	_, err := c.WriteChecked(f, off, nblocks, data)
	return err
}

// WriteChecked is Write, additionally reporting whether the server
// acked the write as replicated (FlagReplicated): the blocks are
// durably installed on the owner AND its R=2 successor, so they
// survive either single node's death. A server without replication
// (or with no live successor) acks replicated=false.
func (c *Conn) WriteChecked(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (replicated bool, err error) {
	resp, err := c.do(wire.Header{Op: wire.OpWrite, File: int32(f), Offset: int32(off), Size: nblocks}, data)
	if err != nil {
		return false, err
	}
	return resp.h.Flags&wire.FlagReplicated != 0, nil
}

// CloseFile tells the server this client is done with f for now.
func (c *Conn) CloseFile(f blockdev.FileID) error {
	_, err := c.do(wire.Header{Op: wire.OpClose, File: int32(f)}, nil)
	return err
}

// ReadInto reads nblocks blocks of f starting at off, landing the
// payload directly in dsts (one pre-sized slice per block). With the
// vectored write path and the recycled call record, a warm read costs
// zero allocations end to end — the hot-path contract BenchmarkCluster-
// Read's localHit and remoteHit assert.
func (c *Conn) ReadInto(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, dsts [][]byte) (hit bool, err error) {
	return c.readDsts(wire.Header{
		Op: wire.OpRead, Flags: wire.FlagWantData,
		File: int32(f), Offset: int32(off), Size: nblocks,
	}, dsts)
}

// ReadPeer is the cluster forward path: a peer-flagged read whose
// block payload lands directly in dsts (one pre-sized slice per
// block), served strictly locally by the owner. hit reports the owner
// had every block in memory.
func (c *Conn) ReadPeer(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, dsts [][]byte) (hit bool, err error) {
	return c.readDsts(wire.Header{
		Op: wire.OpRead, Flags: wire.FlagWantData | wire.FlagPeer,
		File: int32(f), Offset: int32(off), Size: nblocks,
	}, dsts)
}

// readDsts runs a destination-buffer read exchange.
func (c *Conn) readDsts(h wire.Header, dsts [][]byte) (hit bool, err error) {
	resp, err := c.doCall(h, nil, dsts)
	if err != nil {
		return false, err
	}
	if !resp.filled {
		// The reader fell back to an allocated payload (length
		// mismatch); salvage the copy if it fits, else report it.
		if len(resp.payload) != payloadLen(dsts) {
			return false, fmt.Errorf("lapclient: peer read returned %d bytes, want %d",
				len(resp.payload), payloadLen(dsts))
		}
		o := 0
		for _, d := range dsts {
			o += copy(d, resp.payload[o:])
		}
	}
	return resp.h.Flags&wire.FlagHit != 0, nil
}

// WritePeer is a peer-flagged write: served strictly locally by the
// receiver, never re-forwarded.
func (c *Conn) WritePeer(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	_, err := c.WritePeerChecked(f, off, nblocks, data)
	return err
}

// WritePeerChecked is WritePeer, reporting whether the receiving
// owner replicated the write to its successor (FlagReplicated). The
// forwarding node propagates the bit to its own client.
func (c *Conn) WritePeerChecked(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (replicated bool, err error) {
	resp, err := c.do(wire.Header{
		Op: wire.OpWrite, Flags: wire.FlagPeer,
		File: int32(f), Offset: int32(off), Size: nblocks,
	}, data)
	if err != nil {
		return false, err
	}
	return resp.h.Flags&wire.FlagReplicated != 0, nil
}

// WriteReplica installs nblocks blocks on the receiver as the file's
// replica copy (FlagPeer|FlagReplica): store + cache install only —
// no driver feed, no onward replication. The engine's synchronous
// R=2 write path and the rebalancing handoff both push through it.
func (c *Conn) WriteReplica(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	_, err := c.do(wire.Header{
		Op: wire.OpWrite, Flags: wire.FlagPeer | wire.FlagReplica,
		File: int32(f), Offset: int32(off), Size: nblocks,
	}, data)
	return err
}

// ClosePeer is a peer-flagged close: parks the receiver's local chain.
func (c *Conn) ClosePeer(f blockdev.FileID) error {
	_, err := c.do(wire.Header{Op: wire.OpClose, Flags: wire.FlagPeer, File: int32(f)}, nil)
	return err
}

// Owner asks a clustered server which node owns f on the ring.
func (c *Conn) Owner(f blockdev.FileID) (addr string, self bool, err error) {
	resp, err := c.do(wire.Header{Op: wire.OpOwner, File: int32(f)}, nil)
	if err != nil {
		return "", false, err
	}
	var doc struct {
		Owner string `json:"owner"`
		Self  bool   `json:"self"`
	}
	if err := json.Unmarshal(resp.payload, &doc); err != nil {
		return "", false, err
	}
	return doc.Owner, doc.Self, nil
}

// Stats fetches the server's counter snapshot.
func (c *Conn) Stats() (lapcache.Snapshot, error) {
	resp, err := c.do(wire.Header{Op: wire.OpStats}, nil)
	if err != nil {
		return lapcache.Snapshot{}, err
	}
	var snap lapcache.Snapshot
	if err := json.Unmarshal(resp.payload, &snap); err != nil {
		return lapcache.Snapshot{}, err
	}
	return snap, nil
}
