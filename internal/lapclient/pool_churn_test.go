package lapclient

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/lapcache"
)

// TestPoolChurnNoLostRequests is the connection-churn regression: a
// churner repeatedly tears a pool connection down mid-load (the way a
// flaky network or an idle-timeout would) and redials it, while many
// goroutines drive reads through the pool. Every request must either
// succeed or fail over to a surviving connection — none may error out
// of the pool while live connections exist, and none may be silently
// lost. The old pool only ever skipped already-dead connections; a
// request in flight on the dying one surfaced the transport error to
// the caller, which aborted replays under churn.
func TestPoolChurnNoLostRequests(t *testing.T) {
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 256,
	})
	p, err := DialPool(addr, 3, 8)
	if err != nil {
		t.Fatalf("dial pool: %v", err)
	}
	defer p.Close()

	const workers = 8
	const perWorker = 200
	stop := make(chan struct{})

	// The churner: kill the next slot's conn outright (no graceful
	// handover), then redial the dead slot — crash-churn, the harsher
	// variant of ChurnOne's dial-first rotation.
	var churns atomic.Int32
	var churnWg sync.WaitGroup
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if c := p.conn(i % p.Size()); c != nil {
				c.Close()
			}
			if _, err := p.Redial(); err != nil && !errors.Is(err, ErrPoolClosed) {
				t.Errorf("redial: %v", err)
				return
			}
			churns.Add(1)
		}
	}()

	var done, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				f := blockdev.FileID(w + 1)
				if _, _, err := p.Read(f, blockdev.BlockNo(i%64), 1, false); err != nil {
					failed.Add(1)
					t.Errorf("worker %d read %d: %v", w, i, err)
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churnWg.Wait()

	if got := done.Load(); got != workers*perWorker {
		t.Fatalf("completed %d of %d requests (%d failed) across %d churns",
			got, workers*perWorker, failed.Load(), churns.Load())
	}
	if churns.Load() == 0 {
		t.Fatal("churner never ran — the test exercised nothing")
	}
	if live := p.Live(); live == 0 {
		t.Fatal("pool fully dead after churn despite redials")
	}
}

// TestPoolChurnOneRotation pins ChurnOne's dial-first contract: the
// pool never dips below full strength, and in-flight requests on the
// rotated-out connection fail over.
func TestPoolChurnOneRotation(t *testing.T) {
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 256,
	})
	p, err := DialPool(addr, 2, 4)
	if err != nil {
		t.Fatalf("dial pool: %v", err)
	}
	defer p.Close()

	for i := 0; i < 10; i++ {
		if err := p.ChurnOne(); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
		if live := p.Live(); live != 2 {
			t.Fatalf("churn %d: live = %d, want 2 (dial-first rotation)", i, live)
		}
		if _, _, err := p.Read(1, blockdev.BlockNo(i), 1, false); err != nil {
			t.Fatalf("read after churn %d: %v", i, err)
		}
	}
}

// TestPoolReadAsyncChurn drives the open-loop async path under the
// same crash-churn: every callback must fire exactly once, with no
// errors — the accounting the load harness's zero-drop invariant
// stands on.
func TestPoolReadAsyncChurn(t *testing.T) {
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 256,
	})
	p, err := DialPool(addr, 3, 8)
	if err != nil {
		t.Fatalf("dial pool: %v", err)
	}
	defer p.Close()

	stop := make(chan struct{})
	var churnWg sync.WaitGroup
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if c := p.conn(i % p.Size()); c != nil {
				c.Close()
			}
			if _, err := p.Redial(); err != nil && !errors.Is(err, ErrPoolClosed) {
				t.Errorf("redial: %v", err)
				return
			}
		}
	}()

	const requests = 1500
	var fired, errored atomic.Int64
	var wg sync.WaitGroup
	wg.Add(requests)
	for i := 0; i < requests; i++ {
		p.ReadAsync(blockdev.FileID(1+i%4), blockdev.BlockNo(i%64), 1, false, 2*time.Second,
			func(hit bool, err error) {
				if err != nil {
					errored.Add(1)
				}
				fired.Add(1)
				wg.Done()
			})
		if i%50 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	close(stop)
	churnWg.Wait()

	if fired.Load() != requests {
		t.Fatalf("callbacks fired %d times for %d requests", fired.Load(), requests)
	}
	if n := errored.Load(); n != 0 {
		t.Fatalf("%d of %d async requests errored under churn", n, requests)
	}
}

// TestConnReadAsyncDeadline pins the deadline verdict: against a store
// slow enough that the response cannot make it back in time, the
// callback fires ErrDeadline — once — and the connection stays usable
// for later requests once the slow response drains.
func TestConnReadAsyncDeadline(t *testing.T) {
	addr := startServer(t, lapcache.Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 32,
		Store: lapcache.NewMemStore(128, 50*time.Millisecond),
	})
	c, err := DialConn(addr, 4)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	got := make(chan error, 1)
	c.ReadAsync(1, 0, 1, false, 5*time.Millisecond, func(_ []byte, _ bool, err error) { got <- err })
	select {
	case err := <-got:
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadline callback never fired")
	}

	// The slot drains when the slow response lands; the conn must keep
	// working (and the cached block is now fast).
	deadlineWait := time.After(2 * time.Second)
	for {
		done := make(chan error, 1)
		c.ReadAsync(1, 0, 1, false, time.Second, func(_ []byte, _ bool, err error) { done <- err })
		select {
		case err := <-done:
			if err == nil {
				return // healthy again
			}
			t.Fatalf("follow-up read: %v", err)
		case <-deadlineWait:
			t.Fatal("connection never recovered after a deadline")
		}
	}
}
