package lapclient

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/wire"
	"repro/internal/workload"
)

// session is what one replayed process needs from the wire: both the
// legacy per-process JSON Client and the shared binary Pool satisfy
// it.
type session interface {
	Read(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, wantData bool) ([]byte, bool, error)
	Write(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error
	CloseFile(f blockdev.FileID) error
}

// ReplayOptions tunes a trace replay.
type ReplayOptions struct {
	// ThinkScale multiplies trace think times (0 disables thinking
	// entirely — the usual choice, since the trace's virtual think
	// times are far longer than a live server's service times).
	ThinkScale float64
	// Conns is the binary connection pool size (0 = min(8, procs)).
	Conns int
	// Window is the per-connection in-flight cap (0 = DefaultWindow).
	Window int
	// JSON forces the legacy protocol: one JSON connection per traced
	// process, one request in flight per connection (lapget -json).
	JSON bool
}

// ReplayResult summarizes a trace replay from the client's side.
type ReplayResult struct {
	Proto    string // "binary" or "json"
	Procs    int
	Requests int
	Reads    int
	ReadHits int
	Writes   int
	Closes   int
	Elapsed  time.Duration
}

// HitRatio returns the fraction of reads fully served from cache.
func (r ReplayResult) HitRatio() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.ReadHits) / float64(r.Reads)
}

// endpoint is one server's session factory for a replay.
type endpoint struct {
	proto      string
	blockSize  int
	newSession func() (session, func(), error)
	cleanup    func()
}

// dialEndpoint probes addr and builds its per-process session factory:
// a shared binary pool when the server speaks it, per-process JSON
// connections otherwise (or when forced).
func dialEndpoint(addr string, nprocs int, opts ReplayOptions) (*endpoint, error) {
	probe, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	info, err := probe.Ping()
	probe.Close()
	if err != nil {
		return nil, err
	}
	if info.BlockSize <= 0 {
		return nil, fmt.Errorf("lapclient: server reports block size %d", info.BlockSize)
	}
	ep := &endpoint{blockSize: info.BlockSize}
	if !opts.JSON && info.ProtoMax >= wire.ProtoBinary {
		nconns := opts.Conns
		if nconns <= 0 {
			nconns = nprocs
			if nconns > 8 {
				nconns = 8
			}
		}
		pool, err := DialPool(addr, nconns, opts.Window)
		if err != nil {
			return nil, err
		}
		ep.proto = "binary"
		ep.newSession = func() (session, func(), error) { return pool, func() {}, nil }
		ep.cleanup = func() { pool.Close() }
	} else {
		// Old server (or forced): negotiate down, exactly like an old
		// client.
		ep.proto = "json"
		ep.newSession = func() (session, func(), error) {
			c, err := Dial(addr)
			if err != nil {
				return nil, nil, err
			}
			return c, func() { c.Close() }, nil
		}
		ep.cleanup = func() {}
	}
	return ep, nil
}

// ReplayTrace drives a server with a workload trace: one goroutine
// per traced process, each running its closed loop in order. By
// default the processes share a pool of pipelined binary connections,
// so the replay runs at closed-loop concurrency without one slow
// round trip head-of-line blocking every other process; against a
// JSON-only server (or with opts.JSON) it falls back to the legacy
// one-connection-per-process JSON protocol.
func ReplayTrace(addr string, tr *workload.Trace, opts ReplayOptions) (ReplayResult, error) {
	return ReplayTraceMulti([]string{addr}, tr, opts)
}

// ReplayTraceMulti replays a trace against a cluster: traced processes
// are sharded round-robin across the given node addresses, the way a
// real workload's clients would each mount whichever cache node is
// nearest. Every node must report the same block size. With one
// address it is exactly ReplayTrace.
func ReplayTraceMulti(addrs []string, tr *workload.Trace, opts ReplayOptions) (ReplayResult, error) {
	if len(addrs) == 0 {
		return ReplayResult{}, fmt.Errorf("lapclient: replay needs at least one address")
	}
	eps := make([]*endpoint, len(addrs))
	defer func() {
		for _, ep := range eps {
			if ep != nil {
				ep.cleanup()
			}
		}
	}()
	for i, addr := range addrs {
		ep, err := dialEndpoint(addr, len(tr.Procs), opts)
		if err != nil {
			return ReplayResult{}, fmt.Errorf("lapclient: node %s: %w", addr, err)
		}
		eps[i] = ep
		if ep.blockSize != eps[0].blockSize {
			return ReplayResult{}, fmt.Errorf("lapclient: node %s block size %d != %d",
				addr, ep.blockSize, eps[0].blockSize)
		}
	}
	info := PingInfo{BlockSize: eps[0].blockSize}

	var res ReplayResult
	res.Procs = len(tr.Procs)
	res.Proto = eps[0].proto

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	start := time.Now()
	for pi := range tr.Procs {
		wg.Add(1)
		go func(pi int, p *workload.Process) {
			defer wg.Done()
			sess, done, err := eps[pi%len(eps)].newSession()
			if err != nil {
				fail(err)
				return
			}
			defer done()
			var local ReplayResult
			for _, s := range p.Steps {
				if opts.ThinkScale > 0 && s.Think > 0 {
					time.Sleep(time.Duration(float64(s.Think) * opts.ThinkScale))
				}
				local.Requests++
				switch s.Kind {
				case workload.OpRead:
					span := blockdev.ByteRangeToSpan(s.File, s.Offset, s.Size, int64(info.BlockSize))
					_, hit, err := sess.Read(span.File, span.Start, span.Count, false)
					if err != nil {
						fail(err)
						return
					}
					local.Reads++
					if hit {
						local.ReadHits++
					}
				case workload.OpWrite:
					span := blockdev.ByteRangeToSpan(s.File, s.Offset, s.Size, int64(info.BlockSize))
					if err := sess.Write(span.File, span.Start, span.Count, nil); err != nil {
						fail(err)
						return
					}
					local.Writes++
				case workload.OpClose:
					if err := sess.CloseFile(s.File); err != nil {
						fail(err)
						return
					}
					local.Closes++
				}
			}
			mu.Lock()
			res.Requests += local.Requests
			res.Reads += local.Reads
			res.ReadHits += local.ReadHits
			res.Writes += local.Writes
			res.Closes += local.Closes
			mu.Unlock()
		}(pi, &tr.Procs[pi])
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}
