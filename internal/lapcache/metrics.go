package lapcache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/blockdev"
)

// Metrics is the engine's counter set: the runtime image of the PR-1
// observability layer, kept as atomics so request goroutines and
// prefetch workers update it without a shared lock. Snapshot() freezes
// it into a plain struct for expvar/JSON export.
type Metrics struct {
	demandHits   atomic.Uint64
	demandMisses atomic.Uint64
	writes       atomic.Uint64

	prefetchIssued    atomic.Uint64
	prefetchFallback  atomic.Uint64
	prefetchCompleted atomic.Uint64
	prefetchCancelled atomic.Uint64
	prefetchDropped   atomic.Uint64
	prefetchDupSkip   atomic.Uint64

	prefetchTimely atomic.Uint64
	prefetchLate   atomic.Uint64
	prefetchWasted atomic.Uint64

	storeReads  atomic.Uint64
	storeWrites atomic.Uint64

	// Cooperative peer tier (zero on a single-node engine).
	remoteReads     atomic.Uint64
	remoteHits      atomic.Uint64
	remoteMisses    atomic.Uint64
	remoteFallbacks atomic.Uint64
	forwardedWrites atomic.Uint64
	peerReads       atomic.Uint64
	peerWrites      atomic.Uint64

	// R=2 replication (zero without a replicating tier).
	replicatedWrites atomic.Uint64
	replicaInstalls  atomic.Uint64
	readRepairs      atomic.Uint64
}

// Snapshot is a frozen, JSON-exportable view of the engine's counters
// plus the linearity ledger.
type Snapshot struct {
	// Demand path.
	DemandHits   uint64 `json:"demand_hits"`
	DemandMisses uint64 `json:"demand_misses"`
	Writes       uint64 `json:"writes"`

	// Prefetch lifecycle.
	PrefetchIssued    uint64 `json:"prefetch_issued"`
	PrefetchFallback  uint64 `json:"prefetch_fallback"`
	PrefetchCompleted uint64 `json:"prefetch_completed"`
	PrefetchCancelled uint64 `json:"prefetch_cancelled"`
	// PrefetchDropped counts operations refused because the bounded
	// prefetch queue was full — the engine's backpressure valve.
	PrefetchDropped uint64 `json:"prefetch_dropped"`
	// PrefetchDupSkipped counts operations skipped at dispatch because
	// the block was already cached or already being fetched
	// (singleflight dedup against demand misses).
	PrefetchDupSkipped uint64 `json:"prefetch_dup_skipped"`

	// Timeliness classification (PR-1 semantics).
	PrefetchTimely uint64 `json:"prefetch_timely"`
	PrefetchLate   uint64 `json:"prefetch_late"`
	PrefetchWasted uint64 `json:"prefetch_wasted"`
	// PrefetchUnused counts speculative blocks still sitting untouched
	// in the cache at snapshot time.
	PrefetchUnused uint64 `json:"prefetch_unused"`

	// Backing store traffic.
	StoreReads  uint64 `json:"store_reads"`
	StoreWrites uint64 `json:"store_writes"`

	// Cooperative peer tier. RemoteReads counts blocks fetched from a
	// file's owner node; RemoteHits/RemoteMisses classify those
	// forward RPCs by whether the owner served entirely from memory.
	// RemoteFallbacks counts spans degraded to the local store because
	// no live owner was reachable. PeerReadsServed/PeerWritesServed
	// are the owner side: forwarded requests served for peers.
	RemoteReads      uint64 `json:"remote_reads,omitempty"`
	RemoteHits       uint64 `json:"remote_hits,omitempty"`
	RemoteMisses     uint64 `json:"remote_misses,omitempty"`
	RemoteFallbacks  uint64 `json:"remote_fallbacks,omitempty"`
	ForwardedWrites  uint64 `json:"forwarded_writes,omitempty"`
	PeerReadsServed  uint64 `json:"peer_reads_served,omitempty"`
	PeerWritesServed uint64 `json:"peer_writes_served,omitempty"`

	// R=2 replication. ReplicatedWrites counts local writes whose
	// replica push was acknowledged by the successor (the writes acked
	// FlagReplicated); ReplicaInstalls counts blocks this node
	// installed as another file's replica copy (synchronous pushes
	// plus handoff transfers); ReadRepairs counts blocks written
	// through to the local store after a replica served them with the
	// owner down — redundancy restored by the read itself.
	ReplicatedWrites uint64 `json:"replicated_writes,omitempty"`
	ReplicaInstalls  uint64 `json:"replica_installs,omitempty"`
	ReadRepairs      uint64 `json:"read_repairs,omitempty"`

	// Buffer pool traffic: fills served by allocating a new block
	// buffer vs. recycling a released one. A steady-state ratio near
	// all-recycles is the zero-copy data path working as intended.
	BufAllocs   uint64 `json:"buf_allocs"`
	BufRecycles uint64 `json:"buf_recycles"`
	// BufLive is the number of buffers currently out of the pool (Gets
	// minus final Releases). After Shutdown+DrainCache it must be 0 —
	// the chaos harness's leak invariant.
	BufLive int64 `json:"buf_live"`

	// Linearity: the largest number of prefetches ever simultaneously
	// in flight for any one file — exactly 1 on a linear run.
	MaxFileOutstandingHW int `json:"max_file_outstanding_hw"`
	// LinearViolations counts ledger updates that exceeded the
	// configured per-file limit; always 0 unless the engine is
	// misconfigured (it is also asserted server-side when strict).
	LinearViolations uint64 `json:"linear_violations"`

	// Degree policy (zero / omitted on static engines). DegreeCap is
	// the policy's hard ceiling; MaxDegree the deepest window any
	// file's adaptive controller reached; DegreeWidens/DegreeClamps
	// count its widen steps and hard resets to linear.
	DegreeCap    int    `json:"degree_cap,omitempty"`
	MaxDegree    int    `json:"max_degree,omitempty"`
	DegreeWidens uint64 `json:"degree_widens,omitempty"`
	DegreeClamps uint64 `json:"degree_clamps,omitempty"`

	CachedBlocks int `json:"cached_blocks"`
}

// HitRatio returns the demand hit ratio.
func (s Snapshot) HitRatio() float64 {
	total := s.DemandHits + s.DemandMisses
	if total == 0 {
		return 0
	}
	return float64(s.DemandHits) / float64(total)
}

// String renders the snapshot as a compact one-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"hits=%d misses=%d (ratio %.3f) prefetch issued=%d timely=%d late=%d wasted=%d dropped=%d maxHW=%d",
		s.DemandHits, s.DemandMisses, s.HitRatio(),
		s.PrefetchIssued, s.PrefetchTimely, s.PrefetchLate, s.PrefetchWasted,
		s.PrefetchDropped, s.MaxFileOutstandingHW)
}

// Ledger is the concurrent counterpart of fscommon.PrefetchLedger: it
// aggregates every driver's outstanding-prefetch deltas per file and
// records high-water marks, making the paper's linear invariant
// checkable on a live server. When strict, an update that pushes a
// file past limit panics — the server-side assertion of linearity.
type Ledger struct {
	mu          sync.Mutex
	limit       int // 0 = unlimited
	strict      bool
	outstanding map[blockdev.FileID]int
	highWater   map[blockdev.FileID]int
	maxHW       int
	violations  uint64
}

// NewLedger returns a ledger enforcing limit (0 for none). strict
// turns violations into panics rather than counters.
func NewLedger(limit int, strict bool) *Ledger {
	return &Ledger{
		limit:       limit,
		strict:      strict,
		outstanding: make(map[blockdev.FileID]int),
		highWater:   make(map[blockdev.FileID]int),
	}
}

// OutstandingChanged implements core.OutstandingObserver.
func (l *Ledger) OutstandingChanged(f blockdev.FileID, delta int) {
	l.mu.Lock()
	n := l.outstanding[f] + delta
	if n < 0 {
		l.mu.Unlock()
		panic(fmt.Sprintf("lapcache: file %d outstanding prefetches went negative (%d)", f, n))
	}
	l.outstanding[f] = n
	if n > l.highWater[f] {
		l.highWater[f] = n
	}
	if n > l.maxHW {
		l.maxHW = n
	}
	if l.limit > 0 && n > l.limit {
		l.violations++
		if l.strict {
			l.mu.Unlock()
			panic(fmt.Sprintf("lapcache: file %d has %d outstanding prefetches, linear limit is %d",
				f, n, l.limit))
		}
	}
	l.mu.Unlock()
}

// MaxHighWater returns the largest per-file high-water mark seen.
func (l *Ledger) MaxHighWater() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxHW
}

// FileHighWater returns file f's high-water mark.
func (l *Ledger) FileHighWater(f blockdev.FileID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.highWater[f]
}

// HighWaters returns a copy of every file's high-water mark. Cluster
// tests join these maps across nodes to assert the paper's invariant
// globally: in linear mode each file's marks, summed over the whole
// cluster, never exceed 1 — only the ring owner ever prefetches it.
func (l *Ledger) HighWaters() map[blockdev.FileID]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[blockdev.FileID]int, len(l.highWater))
	for f, n := range l.highWater {
		out[f] = n
	}
	return out
}

// Violations returns how many updates exceeded the limit.
func (l *Ledger) Violations() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.violations
}
