package lapcache

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/blockbuf"
	"repro/internal/blockdev"
	"repro/internal/core"
)

// TestLinearHighWaterUnderStress hammers one file from many goroutines
// under a linear-aggressive algorithm and asserts the per-file
// outstanding-prefetch high-water mark never exceeds 1 — the paper's
// linearity invariant, now as a concurrent safety property. Run with
// -race (make check-runtime does): the per-file mutex serializing the
// driver is exactly what the detector exercises here.
func TestLinearHighWaterUnderStress(t *testing.T) {
	const (
		goroutines = 16
		readsEach  = 150
		fileBlocks = 2048
	)
	e := newTestEngine(t, Config{
		Alg:          core.SpecLnAgrISPPM1,
		BlockSize:    64,
		CacheBlocks:  512,
		Shards:       8,
		Workers:      8,
		QueueLen:     64,
		FileBlocks:   map[blockdev.FileID]blockdev.BlockNo{7: fileBlocks},
		StrictLinear: true, // a breach panics the engine mid-test
	})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine scans its own stride so the interleaved
			// stream constantly mispredicts, restarts chains, and
			// races completions against new issues.
			base := blockdev.BlockNo(g * 37 % fileBlocks)
			for i := 0; i < readsEach; i++ {
				off := (base + blockdev.BlockNo(i*3)) % (fileBlocks - 4)
				size := int32(1 + (g+i)%3)
				if _, _, err := e.Read(7, off, size); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if g%4 == 0 && i%50 == 49 {
					e.CloseFile(7)
				}
			}
		}(g)
	}
	wg.Wait()

	// Let in-flight prefetches drain before the final accounting.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := e.Snapshot()
		if s.PrefetchCompleted+s.PrefetchCancelled+s.PrefetchDupSkipped >= s.PrefetchIssued {
			break
		}
		time.Sleep(time.Millisecond)
	}

	snap := e.Snapshot()
	if snap.PrefetchIssued == 0 {
		t.Fatal("stress run issued no prefetches; the test exercised nothing")
	}
	if hw := e.Ledger().FileHighWater(7); hw != 1 {
		t.Errorf("file 7 outstanding high-water = %d, want exactly 1", hw)
	}
	if snap.MaxFileOutstandingHW != 1 {
		t.Errorf("max high-water = %d, want 1: %s", snap.MaxFileOutstandingHW, snap)
	}
	if snap.LinearViolations != 0 {
		t.Errorf("%d linear violations", snap.LinearViolations)
	}
}

// TestRefcountedBuffersUnderStress runs the linearity stress through
// the zero-copy ReadInto path with buffer poisoning on: every handed
// out buffer must still carry its block's fill pattern while held
// (a recycle-while-held would overwrite it with the poison byte), a
// double release panics in blockbuf itself, and the linearity
// invariant must survive the refcounted path exactly as it does the
// copying one. Run with -race (make check-runtime does).
func TestRefcountedBuffersUnderStress(t *testing.T) {
	const (
		goroutines = 16
		readsEach  = 120
		fileBlocks = 1024
		blockSize  = 64
	)
	e := newTestEngine(t, Config{
		Alg:          core.SpecLnAgrISPPM1,
		BlockSize:    blockSize,
		CacheBlocks:  256, // small: constant eviction churn recycles buffers hard
		Shards:       8,
		Workers:      8,
		QueueLen:     64,
		FileBlocks:   map[blockdev.FileID]blockdev.BlockNo{7: fileBlocks},
		StrictLinear: true,
		PoisonBufs:   true,
	})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want := make([]byte, blockSize)
			var bufs []*blockbuf.Buf
			base := blockdev.BlockNo(g * 37 % fileBlocks)
			for i := 0; i < readsEach; i++ {
				off := (base + blockdev.BlockNo(i*3)) % (fileBlocks - 4)
				size := int32(1 + (g+i)%3)
				var err error
				var hold []*blockbuf.Buf
				hold, _, err = e.ReadInto(bufs[:0], 7, off, size)
				bufs = hold
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				// Hold the references across more engine traffic, then
				// verify nothing recycled them out from under us.
				if i%7 == 0 {
					if _, _, err := e.Read(7, (off+13)%(fileBlocks-4), 1); err != nil {
						t.Errorf("interleaved read: %v", err)
						return
					}
				}
				for bi, b := range hold {
					FillPattern(blockdev.BlockID{File: 7, Block: off + blockdev.BlockNo(bi)}, want)
					if !bytes.Equal(b.Bytes(), want) {
						t.Errorf("held buffer for block %d mutated while referenced", off+blockdev.BlockNo(bi))
					}
					b.Release() // exactly once; a second would panic in blockbuf
				}
			}
		}(g)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := e.Snapshot()
		if s.PrefetchCompleted+s.PrefetchCancelled+s.PrefetchDupSkipped >= s.PrefetchIssued {
			break
		}
		time.Sleep(time.Millisecond)
	}

	snap := e.Snapshot()
	if snap.PrefetchIssued == 0 {
		t.Fatal("stress run issued no prefetches; the test exercised nothing")
	}
	if snap.MaxFileOutstandingHW != 1 {
		t.Errorf("max high-water = %d, want exactly 1: %s", snap.MaxFileOutstandingHW, snap)
	}
	if snap.LinearViolations != 0 {
		t.Errorf("%d linear violations", snap.LinearViolations)
	}
	if snap.BufRecycles == 0 {
		t.Error("no buffers recycled; the pool path exercised nothing")
	}
}

// TestManyFilesConcurrent drives distinct files from distinct
// goroutines — the no-sharing case where per-file linearity must also
// hold per goroutine — and checks the counters stay coherent.
func TestManyFilesConcurrent(t *testing.T) {
	const files = 8
	table := make(map[blockdev.FileID]blockdev.BlockNo, files)
	for f := 0; f < files; f++ {
		table[blockdev.FileID(f)] = 256
	}
	e := newTestEngine(t, Config{
		Alg:          core.SpecLnAgrOBA,
		BlockSize:    64,
		CacheBlocks:  1024,
		Workers:      4,
		FileBlocks:   table,
		StrictLinear: true,
	})
	var wg sync.WaitGroup
	for f := 0; f < files; f++ {
		wg.Add(1)
		go func(f blockdev.FileID) {
			defer wg.Done()
			for b := blockdev.BlockNo(0); b < 128; b++ {
				if _, _, err := e.Read(f, b, 1); err != nil {
					t.Errorf("file %d: %v", f, err)
					return
				}
			}
		}(blockdev.FileID(f))
	}
	wg.Wait()
	snap := e.Snapshot()
	if snap.MaxFileOutstandingHW > 1 {
		t.Errorf("max high-water = %d, want <= 1", snap.MaxFileOutstandingHW)
	}
	wantReads := uint64(files * 128)
	if snap.DemandHits+snap.DemandMisses != wantReads {
		t.Errorf("hits+misses = %d, want %d", snap.DemandHits+snap.DemandMisses, wantReads)
	}
}
