package lapcache

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/blockbuf"
	"repro/internal/blockdev"
)

func bid(f, b int) blockdev.BlockID {
	return blockdev.BlockID{File: blockdev.FileID(f), Block: blockdev.BlockNo(b)}
}

// testPool is the buffer pool for direct cache tests; mkbuf stamps a
// one-byte tag so tests can tell buffers apart.
func testPool() *blockbuf.Pool { return blockbuf.NewPool(4) }

func mkbuf(p *blockbuf.Pool, tag byte) *blockbuf.Buf {
	b := p.Get()
	b.Bytes()[0] = tag
	return b
}

func TestCachePutGetEvict(t *testing.T) {
	p := testPool()
	c := newBlockCache(4, 1) // one shard: eviction order is exact
	for i := 0; i < 4; i++ {
		c.Put(bid(1, i), mkbuf(p, byte(i)), false)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if buf, _, ok := c.Get(bid(1, 0)); ok { // block 0 becomes MRU; block 1 is now LRU
		buf.Release()
	}
	c.Put(bid(1, 9), mkbuf(p, 9), false)
	if c.Contains(bid(1, 1)) {
		t.Error("LRU block survived eviction")
	}
	if !c.Contains(bid(1, 0)) {
		t.Error("touched block was evicted")
	}
	buf, _, ok := c.Get(bid(1, 9))
	if !ok || buf.Bytes()[0] != 9 {
		t.Error("inserted block unreadable")
	}
	buf.Release()
}

// TestCacheGetOutlivesEviction pins the zero-copy contract: a buffer
// handed out by Get stays valid (and unrecycled) even after the cache
// evicts the block, until the holder releases it.
func TestCacheGetOutlivesEviction(t *testing.T) {
	p := testPool()
	p.SetPoison(true)
	c := newBlockCache(1, 1)
	c.Put(bid(1, 0), mkbuf(p, 0xAA), false)
	held, _, ok := c.Get(bid(1, 0))
	if !ok {
		t.Fatal("miss on inserted block")
	}
	c.Put(bid(1, 1), mkbuf(p, 0xBB), false) // evicts block 0
	if held.Bytes()[0] != 0xAA {
		t.Errorf("held buffer mutated after eviction: %#x", held.Bytes()[0])
	}
	if held.Refs() != 1 {
		t.Errorf("held refs = %d, want 1", held.Refs())
	}
	held.Release()
}

func TestCachePrefetchedFlagLifecycle(t *testing.T) {
	p := testPool()
	c := newBlockCache(8, 1)
	rel := func(buf *blockbuf.Buf, wasPf, ok bool) bool {
		if ok {
			buf.Release()
		}
		return wasPf
	}
	c.Put(bid(1, 0), mkbuf(p, 0), true)
	if c.UnusedPrefetched() != 1 {
		t.Fatalf("UnusedPrefetched = %d", c.UnusedPrefetched())
	}
	// Contains must not consume the flag.
	c.Contains(bid(1, 0))
	if !rel(c.Get(bid(1, 0))) {
		t.Error("first Get did not report the prefetched flag")
	}
	if rel(c.Get(bid(1, 0))) {
		t.Error("flag survived the first touch")
	}
	// A demand overwrite clears the flag; a speculative one keeps it.
	c.Put(bid(1, 1), mkbuf(p, 1), true)
	c.Put(bid(1, 1), mkbuf(p, 1), true)
	if c.UnusedPrefetched() != 1 {
		t.Error("speculative overwrite cleared the flag")
	}
	c.Put(bid(1, 1), mkbuf(p, 1), false)
	if c.UnusedPrefetched() != 0 {
		t.Error("demand overwrite kept the flag")
	}
}

func TestCacheWastedEvictionCount(t *testing.T) {
	p := testPool()
	c := newBlockCache(2, 1)
	c.Put(bid(1, 0), mkbuf(p, 0), true)
	c.Put(bid(1, 1), mkbuf(p, 1), false)
	wasted := c.Put(bid(1, 2), mkbuf(p, 2), false) // evicts untouched speculative block 0
	if wasted != 1 {
		t.Errorf("wasted = %d, want 1", wasted)
	}
	wasted = c.Put(bid(1, 3), mkbuf(p, 3), false) // evicts demand block 1
	if wasted != 0 {
		t.Errorf("wasted = %d, want 0", wasted)
	}
}

func TestCacheShardingCapacity(t *testing.T) {
	for _, tc := range []struct{ capacity, shards, wantShards int }{
		{100, 8, 8},
		{100, 7, 8},   // rounded up
		{3, 8, 2},     // never more shards than capacity allows
		{1, 16, 1},
		{64, 1, 1},
	} {
		c := newBlockCache(tc.capacity, tc.shards)
		if len(c.shards) != tc.wantShards {
			t.Errorf("cap=%d shards=%d: got %d shards, want %d",
				tc.capacity, tc.shards, len(c.shards), tc.wantShards)
		}
		total := 0
		for i := range c.shards {
			total += c.shards[i].cap
		}
		if total != tc.capacity {
			t.Errorf("cap=%d shards=%d: shard capacities sum to %d",
				tc.capacity, tc.shards, total)
		}
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	const capacity = 32
	p := testPool()
	p.SetPoison(true) // evicted buffers must recycle cleanly
	c := newBlockCache(capacity, 4)
	for i := 0; i < 500; i++ {
		c.Put(bid(i%7, i), p.Get(), i%3 == 0)
	}
	if c.Len() > capacity {
		t.Errorf("Len = %d exceeds capacity %d", c.Len(), capacity)
	}
	// Churn recycled the evicted buffers instead of allocating 500.
	// Under -race sync.Pool drops Puts at random, so only the plain
	// run holds the tight allocation bound.
	limit := uint64(capacity + 8)
	if raceEnabled {
		limit = 400
	}
	if allocs, recycles := p.Stats(); allocs > limit || recycles == 0 {
		t.Errorf("pool stats: %d allocs / %d recycles over 500 churning puts", allocs, recycles)
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore(16, 0)
	buf := make([]byte, 16)
	if err := s.ReadBlock(bid(1, 2), buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	want := make([]byte, 16)
	FillPattern(bid(1, 2), want)
	if !bytes.Equal(buf, want) {
		t.Error("unwritten block did not read as fill pattern")
	}
	payload := bytes.Repeat([]byte{0x5A}, 16)
	if err := s.WriteBlock(bid(1, 2), payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := s.ReadBlock(bid(1, 2), buf); err != nil {
		t.Fatalf("reread: %v", err)
	}
	if !bytes.Equal(buf, payload) {
		t.Error("written block did not read back")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, 32)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	defer s.Close()

	payload := bytes.Repeat([]byte{0xC3}, 32)
	if err := s.WriteBlock(bid(4, 5), payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 32)
	if err := s.ReadBlock(bid(4, 5), buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, payload) {
		t.Error("written block did not read back")
	}
	// Reads past EOF and of untouched files are zero-filled.
	if err := s.ReadBlock(bid(4, 100), buf); err != nil {
		t.Fatalf("past-EOF read: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, 32)) {
		t.Error("past-EOF read not zero-filled")
	}
	if err := s.ReadBlock(bid(9, 0), buf); err != nil {
		t.Fatalf("fresh-file read: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, 32)) {
		t.Error("fresh-file read not zero-filled")
	}
}

func TestFillPatternDistinguishesBlocks(t *testing.T) {
	a, b := make([]byte, 64), make([]byte, 64)
	seen := make(map[string]string)
	for f := 0; f < 4; f++ {
		for blk := 0; blk < 4; blk++ {
			FillPattern(bid(f, blk), a)
			key := string(a)
			id := fmt.Sprintf("%d:%d", f, blk)
			if prev, dup := seen[key]; dup {
				t.Errorf("blocks %s and %s share a fill pattern", prev, id)
			}
			seen[key] = id
		}
	}
	FillPattern(bid(1, 2), a)
	FillPattern(bid(1, 2), b)
	if !bytes.Equal(a, b) {
		t.Error("fill pattern not deterministic")
	}
}
