package lapcache

import (
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
)

// TestAdaptiveEngineWidensUnderStarvation runs a pause-free sequential
// reader against a slow store under the AdaptiveFDP policy: the
// controller must widen past linear (the ledger's per-file high-water
// exceeds 1) while never passing the hard cap, and the ledger — whose
// limit is the policy cap — must count zero violations.
func TestAdaptiveEngineWidensUnderStarvation(t *testing.T) {
	const (
		f      = blockdev.FileID(7)
		blocks = 512
	)
	e := newTestEngine(t, Config{
		Alg:         core.SpecAdAgrISPPM1,
		CacheBlocks: 2048,
		Workers:     16,
		QueueLen:    256,
		Store:       NewMemStore(512, 200*time.Microsecond),
		FileBlocks:  map[blockdev.FileID]blockdev.BlockNo{f: blocks},
	})
	for b := blockdev.BlockNo(0); b < blocks; b++ {
		if _, _, err := e.Read(f, b, 1); err != nil {
			t.Fatalf("Read(%d): %v", b, err)
		}
	}

	s := e.Snapshot()
	if s.MaxFileOutstandingHW <= 1 {
		t.Errorf("high-water = %d, want > 1: starved sequential stream should widen", s.MaxFileOutstandingHW)
	}
	if cap := e.DegreeCap(); s.MaxFileOutstandingHW > cap {
		t.Errorf("high-water %d exceeds policy cap %d", s.MaxFileOutstandingHW, cap)
	}
	if s.LinearViolations != 0 {
		t.Errorf("ledger counted %d violations of the cap-%d limit", s.LinearViolations, e.DegreeCap())
	}
	agg, adaptive := e.DegreeStats()
	if !adaptive {
		t.Fatal("DegreeStats reports a non-adaptive engine")
	}
	if agg.Widens == 0 {
		t.Errorf("controller never widened (stats %+v)", agg)
	}
	if agg.Degree < 1 || agg.Degree > agg.Cap {
		t.Errorf("aggregate degree %d outside [1, %d]", agg.Degree, agg.Cap)
	}
	if s.DegreeCap != core.DefaultAdaptiveCap || s.MaxDegree != agg.Degree {
		t.Errorf("snapshot degree fields (cap %d, max %d) disagree with stats (%d, %d)",
			s.DegreeCap, s.MaxDegree, core.DefaultAdaptiveCap, agg.Degree)
	}
}

// TestAdaptiveEngineStrictStaysLinear pins the same workload to the
// strict spec: the refactor must leave the paper baseline bit-exact —
// high-water exactly 1, no violations, and no adaptive stats surface.
func TestAdaptiveEngineStrictStaysLinear(t *testing.T) {
	const (
		f      = blockdev.FileID(8)
		blocks = 256
	)
	e := newTestEngine(t, Config{
		Alg:          core.SpecLnAgrISPPM1,
		CacheBlocks:  2048,
		Workers:      16,
		QueueLen:     256,
		Store:        NewMemStore(512, 50*time.Microsecond),
		FileBlocks:   map[blockdev.FileID]blockdev.BlockNo{f: blocks},
		StrictLinear: true, // any breach panics, not just counts
	})
	for b := blockdev.BlockNo(0); b < blocks; b++ {
		if _, _, err := e.Read(f, b, 1); err != nil {
			t.Fatalf("Read(%d): %v", b, err)
		}
	}
	s := e.Snapshot()
	if s.MaxFileOutstandingHW != 1 {
		t.Errorf("high-water = %d, want exactly 1 under strict linear", s.MaxFileOutstandingHW)
	}
	if s.LinearViolations != 0 {
		t.Errorf("linear violations = %d, want 0", s.LinearViolations)
	}
	if _, adaptive := e.DegreeStats(); adaptive {
		t.Error("strict engine reports adaptive degree stats")
	}
	if s.DegreeCap != 0 || s.MaxDegree != 0 || s.DegreeWidens != 0 {
		t.Errorf("strict snapshot leaked degree fields: %+v", s)
	}
}
