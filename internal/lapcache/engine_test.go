package lapcache

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
)

// gateStore wraps a BackingStore and blocks reads of blocks at or
// beyond gateFrom until released, signalling each blocked entry. It
// lets tests freeze prefetch traffic at a known point.
type gateStore struct {
	inner    BackingStore
	gateFrom blockdev.BlockNo
	started  chan blockdev.BlockID

	mu       sync.Mutex
	released bool
	release  chan struct{}
}

func newGateStore(inner BackingStore, gateFrom blockdev.BlockNo) *gateStore {
	return &gateStore{
		inner:    inner,
		gateFrom: gateFrom,
		started:  make(chan blockdev.BlockID, 64),
		release:  make(chan struct{}),
	}
}

func (g *gateStore) Release() {
	g.mu.Lock()
	if !g.released {
		g.released = true
		close(g.release)
	}
	g.mu.Unlock()
}

func (g *gateStore) ReadBlock(b blockdev.BlockID, buf []byte) error {
	if b.Block >= g.gateFrom {
		select {
		case g.started <- b:
		default:
		}
		<-g.release
	}
	return g.inner.ReadBlock(b, buf)
}

func (g *gateStore) WriteBlock(b blockdev.BlockID, data []byte) error {
	return g.inner.WriteBlock(b, data)
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 512
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore(cfg.BlockSize, 0)
	}
	if cfg.CacheBlocks == 0 {
		cfg.CacheBlocks = 128
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(e.Shutdown)
	return e
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDemandMissThenHit(t *testing.T) {
	e := newTestEngine(t, Config{Alg: core.SpecNP})
	data, hit, err := e.Read(3, 7, 1)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if hit {
		t.Error("first read reported a hit")
	}
	want := make([]byte, e.BlockSize())
	FillPattern(blockdev.BlockID{File: 3, Block: 7}, want)
	if !bytes.Equal(data, want) {
		t.Error("read data does not match the fill pattern")
	}
	if _, hit, _ = e.Read(3, 7, 1); !hit {
		t.Error("second read missed")
	}
	snap := e.Snapshot()
	if snap.DemandHits != 1 || snap.DemandMisses != 1 || snap.StoreReads != 1 {
		t.Errorf("counters: %+v", snap)
	}
}

func TestWriteReadBack(t *testing.T) {
	e := newTestEngine(t, Config{Alg: core.SpecNP})
	payload := bytes.Repeat([]byte{0xAB}, 2*e.BlockSize())
	if err := e.Write(1, 4, 2, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, hit, err := e.Read(1, 4, 2)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !hit {
		t.Error("read of just-written blocks missed")
	}
	if !bytes.Equal(data, payload) {
		t.Error("read back wrong data")
	}
	// Bad payload size must be rejected.
	if err := e.Write(1, 0, 1, []byte{1, 2, 3}); err == nil {
		t.Error("short payload accepted")
	}
}

// TestPrefetchTimely runs a strictly sequential scan with pauses long
// enough for the linear OBA chain to stay ahead: after warmup every
// read is a hit on a prefetched block.
func TestPrefetchTimely(t *testing.T) {
	e := newTestEngine(t, Config{
		Alg:        core.SpecLnAgrOBA,
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{1: 64},
	})
	for b := blockdev.BlockNo(0); b < 32; b++ {
		if _, _, err := e.Read(1, b, 1); err != nil {
			t.Fatalf("read %d: %v", b, err)
		}
		// Let the (zero-latency) prefetch land before the next read.
		waitFor(t, "prefetch quiescence", func() bool {
			s := e.Snapshot()
			return s.PrefetchCompleted+s.PrefetchCancelled+s.PrefetchDupSkipped >= s.PrefetchIssued
		})
	}
	snap := e.Snapshot()
	if snap.PrefetchTimely == 0 {
		t.Errorf("no timely prefetches in a sequential scan: %s", snap)
	}
	if snap.DemandHits == 0 {
		t.Errorf("no demand hits: %s", snap)
	}
	if snap.MaxFileOutstandingHW > 1 {
		t.Errorf("linear mode exceeded 1 outstanding: %s", snap)
	}
	if snap.LinearViolations != 0 {
		t.Errorf("%d linear violations", snap.LinearViolations)
	}
}

// TestPrefetchLate freezes the prefetch of block 1 inside the store,
// then issues the demand read for it: the demand must join the
// in-flight fetch and be counted late, not timely.
func TestPrefetchLate(t *testing.T) {
	gs := newGateStore(NewMemStore(512, 0), 1)
	e := newTestEngine(t, Config{
		Alg:        core.SpecLnAgrOBA,
		BlockSize:  512,
		Store:      gs,
		Workers:    1,
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{1: 16},
	})
	if _, _, err := e.Read(1, 0, 1); err != nil {
		t.Fatalf("read: %v", err)
	}
	<-gs.started // the prefetch of block 1 is now stuck in the store

	done := make(chan error, 1)
	go func() {
		_, _, err := e.Read(1, 1, 1)
		done <- err
	}()
	waitFor(t, "late classification", func() bool { return e.Snapshot().PrefetchLate == 1 })
	gs.Release()
	if err := <-done; err != nil {
		t.Fatalf("late read: %v", err)
	}
	snap := e.Snapshot()
	if snap.PrefetchLate != 1 {
		t.Errorf("late = %d, want 1: %s", snap.PrefetchLate, snap)
	}
	if snap.PrefetchTimely != 0 {
		t.Errorf("late block also counted timely: %s", snap)
	}
	// The waiting demand joined the in-flight prefetch: block 1 went
	// through the store exactly once (singleflight), even though both
	// a prefetch and a demand wanted it.
	waitFor(t, "prefetch quiescence", func() bool {
		s := e.Snapshot()
		return s.PrefetchCompleted+s.PrefetchCancelled+s.PrefetchDupSkipped >= s.PrefetchIssued
	})
	block1Reads := 1 // the signal consumed by <-gs.started above
	for {
		select {
		case b := <-gs.started:
			if b.Block == 1 {
				block1Reads++
			}
			continue
		default:
		}
		break
	}
	if block1Reads != 1 {
		t.Errorf("block 1 read from store %d times, want 1 (singleflight)", block1Reads)
	}
}

// TestBackpressureDrops saturates a 1-slot queue with a frozen worker:
// the unthrottled aggressive driver must get refusals, counted as
// drops, instead of blocking or growing the queue without bound.
func TestBackpressureDrops(t *testing.T) {
	agr, err := core.LookupAlg("Agr_OBA")
	if err != nil {
		t.Fatal(err)
	}
	gs := newGateStore(NewMemStore(512, 0), 1)
	e := newTestEngine(t, Config{
		Alg:        agr,
		BlockSize:  512,
		Store:      gs,
		Workers:    1,
		QueueLen:   1,
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{1: 256},
	})
	defer gs.Release() // let Shutdown's worker drain finish
	if _, _, err := e.Read(1, 0, 1); err != nil {
		t.Fatalf("read: %v", err)
	}
	waitFor(t, "a dropped prefetch", func() bool { return e.Snapshot().PrefetchDropped >= 1 })
}

// TestSingleflightDemand sends two concurrent demand reads of one
// uncached block through a frozen store: exactly one store read must
// happen.
func TestSingleflightDemand(t *testing.T) {
	gs := newGateStore(NewMemStore(512, 0), 0) // gate everything
	e := newTestEngine(t, Config{Alg: core.SpecNP, BlockSize: 512, Store: gs})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := e.Read(5, 9, 1); err != nil {
				t.Errorf("read: %v", err)
			}
		}()
	}
	<-gs.started // one reader is inside the store
	// Give the second goroutine a moment to join the in-flight op.
	time.Sleep(10 * time.Millisecond)
	gs.Release()
	wg.Wait()
	if snap := e.Snapshot(); snap.StoreReads != 1 {
		t.Errorf("store reads = %d, want 1 (singleflight): %s", snap.StoreReads, snap)
	}
}

func TestCloseFileStopsChain(t *testing.T) {
	e := newTestEngine(t, Config{
		Alg:        core.SpecLnAgrOBA,
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{1: 64},
	})
	if _, _, err := e.Read(1, 0, 1); err != nil {
		t.Fatalf("read: %v", err)
	}
	e.CloseFile(1)
	waitFor(t, "quiescence after close", func() bool {
		s := e.Snapshot()
		return s.PrefetchCompleted+s.PrefetchCancelled+s.PrefetchDupSkipped >= s.PrefetchIssued
	})
	issued := e.Snapshot().PrefetchIssued
	time.Sleep(20 * time.Millisecond)
	if now := e.Snapshot().PrefetchIssued; now != issued {
		t.Errorf("prefetches kept flowing after close: %d -> %d", issued, now)
	}
}

func TestLedgerStrictPanics(t *testing.T) {
	l := NewLedger(1, true)
	l.OutstandingChanged(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("second outstanding prefetch did not panic in strict mode")
		}
	}()
	l.OutstandingChanged(1, 1)
}

func TestLedgerCountsViolations(t *testing.T) {
	l := NewLedger(1, false)
	l.OutstandingChanged(2, 1)
	l.OutstandingChanged(2, 1)
	l.OutstandingChanged(2, -2)
	if l.Violations() != 1 {
		t.Errorf("violations = %d, want 1", l.Violations())
	}
	if l.MaxHighWater() != 2 || l.FileHighWater(2) != 2 {
		t.Errorf("high water = %d/%d, want 2/2", l.MaxHighWater(), l.FileHighWater(2))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Alg: core.SpecNP, BlockSize: 512, CacheBlocks: 8}); err == nil {
		t.Error("missing store accepted")
	}
	if _, err := New(Config{Alg: core.SpecNP, Store: NewMemStore(512, 0), CacheBlocks: 8}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(Config{Alg: core.SpecNP, Store: NewMemStore(512, 0), BlockSize: 512}); err == nil {
		t.Error("zero capacity accepted")
	}
	bad := core.AlgSpec{Kind: core.AlgISPPM, Order: 0}
	if _, err := New(Config{Alg: bad, Store: NewMemStore(512, 0), BlockSize: 512, CacheBlocks: 8}); err == nil {
		t.Error("invalid algorithm accepted")
	}
}
