package lapcache

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/wire"
)

// upgradeBinary dials addr and runs the JSON→binary negotiation,
// returning the raw connection and its buffered reader positioned at
// the first binary byte. The lapclient package has richer clients;
// these tests speak the wire raw to pin server behaviour without the
// import cycle.
func upgradeBinary(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	var resp WireResponse
	if err := enc.Encode(&WireRequest{Op: "upgrade", Proto: wire.ProtoBinary}); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	line, err := wire.ReadLine(br, wire.MaxFrame)
	if err != nil {
		t.Fatalf("upgrade response: %v", err)
	}
	if err := json.Unmarshal(line, &resp); err != nil || !resp.OK {
		t.Fatalf("upgrade refused: %v %q", err, resp.Err)
	}
	return conn, br
}

// readBlockFrame reads one read-response frame and fails unless it is
// OK with exactly nblocks of correctly patterned payload for (f, off).
func readBlockFrame(t *testing.T, br *bufio.Reader, blockSize int, seq uint32, f blockdev.FileID, off blockdev.BlockNo, nblocks int) {
	t.Helper()
	var scratch [wire.HeaderSize]byte
	h, err := wire.ReadHeader(br, scratch[:])
	if err != nil {
		t.Fatalf("seq %d: read header: %v", seq, err)
	}
	if h.Seq != seq || h.Flags&wire.FlagOK == 0 {
		t.Fatalf("seq %d: response header = %+v", seq, h)
	}
	payload, err := wire.ReadPayload(br, h, nil)
	if err != nil {
		t.Fatalf("seq %d: read payload: %v", seq, err)
	}
	if len(payload) != nblocks*blockSize {
		t.Fatalf("seq %d: payload %d bytes, want %d", seq, len(payload), nblocks*blockSize)
	}
	want := make([]byte, blockSize)
	for i := 0; i < nblocks; i++ {
		FillPattern(blockdev.BlockID{File: f, Block: off + blockdev.BlockNo(i)}, want)
		if !bytes.Equal(payload[i*blockSize:(i+1)*blockSize], want) {
			t.Fatalf("seq %d: block %d corrupted", seq, i)
		}
	}
}

// TestHotpathCoalescedPipeline sends a burst of pipelined reads in a
// single TCP segment — the shape that makes the server's
// drain-the-ready-queue latch hold responses and flush them as one
// vectored write — and checks every response comes back in order,
// framed, and bit-exact. The same burst runs against a NoCoalesce
// server, pinning that the latch changes syscall count, never bytes.
func TestHotpathCoalescedPipeline(t *testing.T) {
	const (
		blockSize = 512
		burst     = 32
	)
	for _, tc := range []struct {
		name       string
		noCoalesce bool
	}{{"coalesce", false}, {"nocoalesce", true}} {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startTestServer(t, Config{
				Alg: core.SpecNP, BlockSize: blockSize, CacheBlocks: 4 * burst,
			}, func(s *Server) { s.NoCoalesce = tc.noCoalesce })
			conn, br := upgradeBinary(t, addr)

			// Build the whole burst and write it in one call, so the
			// server's reader sees "complete next request buffered"
			// after every dispatch until the queue drains.
			var reqs bytes.Buffer
			for i := 0; i < burst; i++ {
				if err := wire.WriteFrame(&reqs, wire.Header{
					Op: wire.OpRead, Flags: wire.FlagWantData,
					Seq: uint32(i + 1), File: 9, Offset: int32(i), Size: 1,
				}, nil); err != nil {
					t.Fatalf("build burst: %v", err)
				}
			}
			if _, err := conn.Write(reqs.Bytes()); err != nil {
				t.Fatalf("send burst: %v", err)
			}
			for i := 0; i < burst; i++ {
				readBlockFrame(t, br, blockSize, uint32(i+1), 9, blockdev.BlockNo(i), 1)
			}
			if br.Buffered() != 0 {
				t.Fatalf("%d stray bytes after the burst", br.Buffered())
			}
		})
	}
}

// TestHotpathShardStress pins the sharded accept path: with Shards >
// 1, concurrent connections land on different shards, every one is
// served correctly, and the close-reason ledger — now sharded too —
// still aggregates exactly one clean EOF per connection. Run under
// -race (make check-hotpath), this is the cross-shard data-race
// probe.
func TestHotpathShardStress(t *testing.T) {
	const (
		blockSize = 512
		nconns    = 16
		reads     = 64
	)
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: blockSize, CacheBlocks: 256,
	}, func(s *Server) { s.Shards = 4 })

	var wg sync.WaitGroup
	errs := make(chan error, nconns)
	for c := 0; c < nconns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			enc := json.NewEncoder(conn)
			var resp WireResponse
			if err := enc.Encode(&WireRequest{Op: "upgrade", Proto: wire.ProtoBinary}); err != nil {
				errs <- err
				return
			}
			line, err := wire.ReadLine(br, wire.MaxFrame)
			if err != nil {
				errs <- err
				return
			}
			if err := json.Unmarshal(line, &resp); err != nil || !resp.OK {
				errs <- fmt.Errorf("conn %d: upgrade refused: %v %q", c, err, resp.Err)
				return
			}
			var scratch [wire.HeaderSize]byte
			want := make([]byte, blockSize)
			f := blockdev.FileID(c + 1)
			for i := 0; i < reads; i++ {
				if err := wire.WriteFrame(conn, wire.Header{
					Op: wire.OpRead, Flags: wire.FlagWantData,
					Seq: uint32(i + 1), File: int32(f), Offset: int32(i % 8), Size: 1,
				}, nil); err != nil {
					errs <- err
					return
				}
				h, err := wire.ReadHeader(br, scratch[:])
				if err != nil {
					errs <- err
					return
				}
				if h.Seq != uint32(i+1) || h.Flags&wire.FlagOK == 0 {
					errs <- fmt.Errorf("conn %d seq %d: header %+v", c, i+1, h)
					return
				}
				payload, err := wire.ReadPayload(br, h, nil)
				if err != nil {
					errs <- err
					return
				}
				FillPattern(blockdev.BlockID{File: f, Block: blockdev.BlockNo(i % 8)}, want)
				if !bytes.Equal(payload, want) {
					errs <- fmt.Errorf("conn %d seq %d: payload corrupted", c, i+1)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitClose(t, srv, CloseEOF, nconns)
	assertNoClose(t, srv, CloseMidFrame, CloseProtocol, CloseTransport, CloseWrite)
}

// tornWriteGate passes writes through untouched until the first
// binary frame header crosses it, then hands everything to the
// fault-injected conn — so the JSON negotiation survives and the
// injected partial write is guaranteed to land on the vectored
// response path.
type tornWriteGate struct {
	net.Conn
	faulty net.Conn
	armed  atomic.Bool
}

func (g *tornWriteGate) Write(p []byte) (int, error) {
	if !g.armed.Load() {
		if len(p) >= wire.HeaderSize && p[2] == wire.Version && p[3] == 0 {
			g.armed.Store(true)
		} else {
			return g.Conn.Write(p)
		}
	}
	return g.faulty.Write(p)
}

// TestHotpathTornVectoredWrite points a faultinject partial-write
// rule at the writev site. The injected tear truncates the response
// mid-header and severs the connection; the framing contract is that
// the client observes a mid-frame close — a short read, never a
// header that parses — and the server books the connection under
// write_error. This is the same conn.send/KindPartial rule the chaos
// plan injects (internal/chaos/plan.go), so the full invariant audit
// exercises the vectored path continuously; this test pins the
// mechanism in isolation.
func TestHotpathTornVectoredWrite(t *testing.T) {
	const blockSize = 512
	inj, err := faultinject.New(faultinject.Plan{
		Seed: 1,
		Rules: []faultinject.Rule{{
			Site: faultinject.SiteConnSend, Kind: faultinject.KindPartial, P: 1,
		}},
	})
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: blockSize, CacheBlocks: 16,
	}, func(s *Server) {
		s.ConnWrap = func(c net.Conn) net.Conn {
			return &tornWriteGate{Conn: c, faulty: inj.WrapConn(c, "accept@torn")}
		}
	})
	conn, br := upgradeBinary(t, addr)

	if err := wire.WriteFrame(conn, wire.Header{
		Op: wire.OpRead, Flags: wire.FlagWantData, Seq: 1, File: 2, Size: 1,
	}, nil); err != nil {
		t.Fatalf("write request: %v", err)
	}
	// The response header is torn partway through: the client must see
	// a short read (mid-frame close), never a parseable header.
	var hdr [wire.HeaderSize]byte
	n, err := io.ReadFull(br, hdr[:])
	if err == nil {
		if h, perr := wire.ParseHeader(hdr[:]); perr == nil {
			t.Fatalf("torn write delivered a parseable header: %+v", h)
		}
		t.Fatalf("torn write delivered %d header bytes that fail structural parse — stream corrupt, not framed", n)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("mid-frame close surfaced as %v (%d bytes), want EOF/unexpected EOF", err, n)
	}
	if n >= wire.HeaderSize {
		t.Fatalf("read a whole header (%d bytes) despite the tear", n)
	}
	waitClose(t, srv, CloseWrite, 1)
	assertNoClose(t, srv, CloseMidFrame, CloseProtocol)
}
