package lapcache

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/blockbuf"
	"repro/internal/blockdev"
	"repro/internal/wire"
)

// Every connection starts in the JSON protocol: newline-delimited
// JSON, one request and one response per line, pipelined in order per
// connection. Offsets and sizes are in blocks; clients convert byte
// ranges with blockdev.ByteRangeToSpan, honouring the paper's
// two-bytes-two-blocks rule. A "ping" reports the server's algorithm,
// block size and maximum protocol version; a client that sees
// proto_max >= wire.ProtoBinary may send {"op":"upgrade"} and switch
// the connection to the binary framed protocol (see internal/wire),
// whose read path streams raw block payloads straight from the
// cache's refcounted buffers — no base64, no copy. Plain JSON stays
// fully supported for old clients and debugging (lapget -json).

// WireRequest is one client request (JSON protocol).
type WireRequest struct {
	Op     string `json:"op"` // ping | read | write | close | stats | upgrade
	File   int32  `json:"file,omitempty"`
	Offset int32  `json:"offset,omitempty"` // first block
	Size   int32  `json:"size,omitempty"`   // blocks
	// WantData asks a read to return the block payload (base64 in
	// JSON); replay clients leave it off to keep the wire thin.
	WantData bool `json:"want_data,omitempty"`
	// Data carries a write's payload; nil writes the deterministic
	// fill pattern.
	Data []byte `json:"data,omitempty"`
	// Proto names the protocol version an "upgrade" requests
	// (defaults to wire.ProtoBinary).
	Proto int `json:"proto,omitempty"`
}

// WireResponse is one server response (JSON protocol).
type WireResponse struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Hit is set on reads: every requested block was cached on
	// arrival.
	Hit  bool   `json:"hit,omitempty"`
	Data []byte `json:"data,omitempty"`
	// Replicated is set on writes: the blocks were also installed on
	// the file's R=2 successor before the ack (durably double-homed).
	Replicated bool      `json:"replicated,omitempty"`
	Stats      *Snapshot `json:"stats,omitempty"`
	Alg        string    `json:"alg,omitempty"`
	BlockSize  int       `json:"block_size,omitempty"`
	// ProtoMax (on ping) is the newest protocol version this server
	// speaks; a client upgrades past JSON only after seeing it.
	ProtoMax int `json:"proto_max,omitempty"`
	// Owner and OwnerSelf answer an "owner" request on a clustered
	// server: the advertise address of the file's ring owner and
	// whether that owner is the answering node.
	Owner     string `json:"owner,omitempty"`
	OwnerSelf bool   `json:"owner_self,omitempty"`
}

// pingPayload is the JSON document carried by binary ping and stats
// responses (rare ops, so their encoding is irrelevant).
type pingPayload struct {
	Alg       string `json:"alg"`
	BlockSize int    `json:"block_size"`
	ProtoMax  int    `json:"proto_max"`
	// Self and Members describe cluster membership on a clustered
	// server; absent on a single node.
	Self    string   `json:"self,omitempty"`
	Members []string `json:"members,omitempty"`
}

// ownerPayload is the JSON document answering an ownership query.
type ownerPayload struct {
	Owner string `json:"owner"`
	Self  bool   `json:"self"`
}

// CloseReason classifies why one connection's serve loop ended. The
// distinctions matter under faults: a client cut off in the middle of
// a frame used to be indistinguishable from one that idled out, which
// made injected disconnects invisible in drain accounting.
type CloseReason string

const (
	// CloseEOF: the client disconnected cleanly at a frame boundary.
	CloseEOF CloseReason = "eof"
	// CloseIdle: no request arrived within IdleTimeout (the deadline
	// fired at a frame boundary).
	CloseIdle CloseReason = "idle_timeout"
	// CloseMidFrame: the connection died or stalled out INSIDE a frame
	// — a truncated header, a payload that never finished, an injected
	// mid-stream disconnect. Never conflated with CloseIdle: the
	// client was mid-request, not quiet.
	CloseMidFrame CloseReason = "mid_frame"
	// CloseShutdown: the server's drain path retired the connection.
	CloseShutdown CloseReason = "shutdown"
	// CloseProtocol: the client sent bytes that do not parse as a
	// frame (bad version, nonzero reserved byte, oversized payload).
	CloseProtocol CloseReason = "protocol"
	// CloseWrite: a response write or flush failed (slow or gone
	// client).
	CloseWrite CloseReason = "write_error"
	// CloseTransport: a non-EOF transport error at a frame boundary
	// (connection reset between requests).
	CloseTransport CloseReason = "transport"
)

// Server fronts an Engine over TCP.
type Server struct {
	e *Engine

	// Cluster, when non-nil, exposes ring membership through the
	// "owner" op and lets peers address this node as part of a
	// cooperative cache. nil on a single-node server, which answers
	// ownership queries with an error.
	Cluster ClusterInfo

	// IdleTimeout, when positive, closes a connection that sends no
	// request for the duration (lapcached -idle-timeout). Zero keeps
	// connections open forever, the historical behaviour.
	IdleTimeout time.Duration
	// DrainGrace bounds how long Close waits for an in-flight
	// response to flush to a slow client before the write is abandoned
	// (default 2s).
	DrainGrace time.Duration
	// ConnWrap, when non-nil, interposes on every accepted connection
	// before any protocol traffic; the chaos harness uses it to inject
	// transport faults on the server side of the wire.
	ConnWrap func(net.Conn) net.Conn

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	closing chan struct{}
	wg      sync.WaitGroup

	reasonMu sync.Mutex
	reasons  map[CloseReason]uint64
}

// NewServer returns a server around e.
func NewServer(e *Engine) *Server {
	return &Server{
		e:       e,
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
		reasons: make(map[CloseReason]uint64),
	}
}

// CloseCounts returns how many connections ended for each reason —
// the drain path's audit trail (tests and the chaos harness assert
// injected mid-frame disconnects land under CloseMidFrame, not
// CloseIdle).
func (s *Server) CloseCounts() map[CloseReason]uint64 {
	s.reasonMu.Lock()
	defer s.reasonMu.Unlock()
	out := make(map[CloseReason]uint64, len(s.reasons))
	for r, n := range s.reasons {
		out[r] = n
	}
	return out
}

// noteClose records one connection's close reason.
func (s *Server) noteClose(r CloseReason) {
	s.reasonMu.Lock()
	s.reasons[r]++
	s.reasonMu.Unlock()
}

// acceptFailureBudget bounds consecutive accept-loop errors before
// Serve gives up; transient failures (fd exhaustion, injected
// listener faults) are retried with backoff instead of killing the
// server.
const acceptFailureBudget = 10

// Serve accepts connections on ln until Close. Transient accept
// errors are retried with capped backoff (up to acceptFailureBudget
// consecutive failures); it returns nil after a Close-initiated
// shutdown and the accept error once the retry budget is spent.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("lapcache: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	failures := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			failures++
			if failures >= acceptFailureBudget {
				return err
			}
			// Back off before retrying; a torn-down listener fails every
			// retry instantly, so the budget still bounds the loop.
			backoff := 5 * time.Millisecond << uint(failures)
			if backoff > 250*time.Millisecond {
				backoff = 250 * time.Millisecond
			}
			select {
			case <-s.closing:
				return nil
			case <-time.After(backoff):
			}
			continue
		}
		failures = 0
		if s.ConnWrap != nil {
			conn = s.ConnWrap(conn)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting and shuts down draining: every in-flight
// request finishes dispatching and its response is flushed (bounded
// by DrainGrace for clients too slow to take the bytes) before the
// connection closes; idle connections are interrupted immediately.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.closing)
	if s.ln != nil {
		s.ln.Close()
	}
	grace := s.DrainGrace
	if grace <= 0 {
		grace = 2 * time.Second
	}
	now := time.Now()
	for c := range s.conns {
		// Unblock handlers parked in a read between requests; a
		// handler mid-dispatch is not reading and finishes its
		// response first (the drain), bounded by the write deadline.
		c.SetReadDeadline(now)
		c.SetWriteDeadline(now.Add(grace))
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) isClosing() bool {
	select {
	case <-s.closing:
		return true
	default:
		return false
	}
}

// armRead sets the deadline for the next blocking read on conn:
// the idle timeout if configured, cleared otherwise — and an
// immediate deadline if the server is closing (re-checked after
// setting, so a racing Close cannot be overwritten into oblivion).
func (s *Server) armRead(conn net.Conn) {
	if s.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
	} else {
		conn.SetReadDeadline(time.Time{})
	}
	if s.isClosing() {
		conn.SetReadDeadline(time.Now())
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	h := &connHandler{
		s:    s,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	s.noteClose(h.serveJSON())
}

// readReason classifies a failed read. midFrame reports the failure
// happened inside a frame (a partial header, an unfinished payload, a
// half-sent JSON line): that is always a mid-frame close, never an
// idle timeout, whatever error the deadline machinery dressed it in.
func (s *Server) readReason(err error, midFrame bool) CloseReason {
	if midFrame {
		return CloseMidFrame
	}
	if s.isClosing() {
		return CloseShutdown
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return CloseIdle
	}
	if errors.Is(err, io.EOF) {
		return CloseEOF
	}
	return CloseTransport
}

// connHandler runs one connection's request loop, starting in JSON
// and optionally upgrading to binary frames.
type connHandler struct {
	s    *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// serveJSON is the line-delimited JSON loop. Lines are bounded by
// wire.MaxFrame (the documented frame cap — the old bufio.Scanner
// 64 KiB default truncated multi-block WantData reads).
func (h *connHandler) serveJSON() CloseReason {
	s := h.s
	enc := json.NewEncoder(h.bw)
	for {
		s.armRead(h.conn)
		line, err := wire.ReadLine(h.br, wire.MaxFrame)
		if err != nil {
			// A half-sent line (unexpected EOF) is a mid-frame death,
			// not an idle client.
			return s.readReason(err, errors.Is(err, io.ErrUnexpectedEOF))
		}
		if len(line) == 0 {
			continue
		}
		var req WireRequest
		var resp WireResponse
		upgrade := false
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Err = fmt.Sprintf("bad request: %v", err)
		} else if req.Op == "upgrade" {
			if req.Proto == 0 || req.Proto == wire.ProtoBinary {
				resp.OK = true
				upgrade = true
			} else {
				resp.Err = fmt.Sprintf("unsupported protocol %d", req.Proto)
			}
		} else {
			resp = s.dispatch(&req)
		}
		if err := enc.Encode(&resp); err != nil {
			return CloseWrite
		}
		if err := h.bw.Flush(); err != nil {
			return CloseWrite
		}
		if upgrade {
			return h.serveBinary()
		}
		if s.isClosing() {
			return CloseShutdown
		}
	}
}

// serveBinary is the framed loop after an upgrade. Read responses
// stream block payloads directly from the cache's refcounted buffers
// into the connection's write buffer — the zero-copy half of the
// tentpole: no base64, no intermediate concatenation.
func (h *connHandler) serveBinary() CloseReason {
	s := h.s
	var (
		scratch [wire.HeaderSize]byte
		payload []byte          // reused for write payloads
		bufs    []*blockbuf.Buf // reused for read responses
	)
	fail := func(hd wire.Header, msg string) bool {
		return wire.WriteFrame(h.bw, wire.Header{Op: hd.Op, Seq: hd.Seq}, []byte(msg)) == nil
	}
	for {
		s.armRead(h.conn)
		// Read the header bytes directly (not wire.ReadHeader) so a
		// death after SOME header bytes — a truncated frame — is
		// distinguishable from a death at the frame boundary.
		n, err := io.ReadFull(h.br, scratch[:])
		if err != nil {
			return s.readReason(err, n > 0)
		}
		hd, err := wire.ParseHeader(scratch[:])
		if err != nil {
			return CloseProtocol
		}
		if payload, err = wire.ReadPayload(h.br, hd, payload); err != nil {
			// The header arrived but its payload did not: mid-frame by
			// definition, whatever the underlying error.
			return CloseMidFrame
		}
		ok := true
		// Version-skew guard: a structurally sound frame whose op or
		// flags this build does not define gets an error frame, not a
		// dropped connection — the payload has already been consumed, so
		// the stream stays framed and the client can fall back.
		if !hd.Op.Known() || !hd.Flags.Known() {
			if !fail(hd, fmt.Sprintf("unsupported op %s flags %#x", hd.Op, uint8(hd.Flags))) {
				return CloseWrite
			}
			if err := h.bw.Flush(); err != nil {
				return CloseWrite
			}
			continue
		}
		peer := hd.Flags&wire.FlagPeer != 0
		switch hd.Op {
		case wire.OpPing:
			pp := pingPayload{
				Alg: s.e.AlgName(), BlockSize: s.e.BlockSize(), ProtoMax: wire.ProtoBinary,
			}
			if s.Cluster != nil {
				pp.Self = s.Cluster.Self()
				pp.Members = s.Cluster.MemberAddrs()
			}
			doc, _ := json.Marshal(pp)
			ok = wire.WriteFrame(h.bw, wire.Header{Op: hd.Op, Flags: wire.FlagOK, Seq: hd.Seq}, doc) == nil

		case wire.OpOwner:
			if s.Cluster == nil {
				ok = fail(hd, "server is not clustered")
				break
			}
			addr, self := s.Cluster.OwnerOf(blockdev.FileID(hd.File))
			doc, _ := json.Marshal(ownerPayload{Owner: addr, Self: self})
			ok = wire.WriteFrame(h.bw, wire.Header{Op: hd.Op, Flags: wire.FlagOK, Seq: hd.Seq}, doc) == nil

		case wire.OpRead:
			want := hd.Flags&wire.FlagWantData != 0
			total := int64(hd.Size) * int64(s.e.BlockSize())
			if want && (total <= 0 || total > wire.MaxDataBytes) {
				ok = fail(hd, fmt.Sprintf("read of %d blocks exceeds the %d-byte payload cap", hd.Size, wire.MaxDataBytes))
				break
			}
			bufs = bufs[:0]
			var hit bool
			if peer {
				// Peer-forwarded read: serve strictly locally, never
				// re-forward (the loop-free contract of FlagPeer).
				bufs, hit, err = s.e.PeerReadInto(bufs, blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size)
			} else {
				bufs, hit, err = s.e.ReadInto(bufs, blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size)
			}
			if err != nil {
				ok = fail(hd, err.Error())
				break
			}
			flags := wire.FlagOK
			if hit {
				flags |= wire.FlagHit
			}
			out := wire.Header{Op: hd.Op, Flags: flags, Seq: hd.Seq}
			if want {
				out.PayloadLen = uint32(total)
			}
			wire.PutHeader(scratch[:], out)
			_, werr := h.bw.Write(scratch[:])
			if want && werr == nil {
				for _, b := range bufs {
					if _, werr = h.bw.Write(b.Bytes()); werr != nil {
						break
					}
				}
			}
			for _, b := range bufs {
				b.Release()
			}
			ok = werr == nil

		case wire.OpWrite:
			var data []byte
			if hd.PayloadLen > 0 {
				data = payload
			}
			var werr error
			var replicated bool
			switch {
			case hd.Flags&wire.FlagReplica != 0 && !peer:
				werr = fmt.Errorf("FlagReplica requires FlagPeer")
			case hd.Flags&wire.FlagReplica != 0:
				// Replica install: store + cache only, no driver feed, no
				// onward replication (the loop-free contract of R=2 — a
				// replica push must never fan out further).
				werr = s.e.ReplicaWrite(blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size, data)
			case peer:
				replicated, werr = s.e.PeerWriteDurable(blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size, data)
			default:
				replicated, werr = s.e.WriteDurable(blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size, data)
			}
			if werr != nil {
				ok = fail(hd, werr.Error())
				break
			}
			flags := wire.FlagOK
			if replicated {
				flags |= wire.FlagReplicated
			}
			ok = wire.WriteFrame(h.bw, wire.Header{Op: hd.Op, Flags: flags, Seq: hd.Seq}, nil) == nil

		case wire.OpClose:
			if peer {
				s.e.PeerCloseFile(blockdev.FileID(hd.File))
			} else {
				s.e.CloseFile(blockdev.FileID(hd.File))
			}
			ok = wire.WriteFrame(h.bw, wire.Header{Op: hd.Op, Flags: wire.FlagOK, Seq: hd.Seq}, nil) == nil

		case wire.OpStats:
			snap := s.e.Snapshot()
			doc, _ := json.Marshal(&snap)
			ok = wire.WriteFrame(h.bw, wire.Header{Op: hd.Op, Flags: wire.FlagOK, Seq: hd.Seq}, doc) == nil

		default:
			// Unreachable while Known() covers every case above; kept so
			// a future op added to wire but not here fails cleanly.
			ok = fail(hd, fmt.Sprintf("unsupported op %s", hd.Op))
		}
		if !ok {
			return CloseWrite
		}
		if err := h.bw.Flush(); err != nil {
			return CloseWrite
		}
		if s.isClosing() {
			return CloseShutdown
		}
	}
}

func (s *Server) dispatch(req *WireRequest) WireResponse {
	switch req.Op {
	case "ping":
		return WireResponse{OK: true, Alg: s.e.AlgName(), BlockSize: s.e.BlockSize(),
			ProtoMax: wire.ProtoBinary}
	case "read":
		if req.WantData {
			if total := int64(req.Size) * int64(s.e.BlockSize()); total > wire.MaxDataBytes {
				return WireResponse{Err: fmt.Sprintf(
					"read of %d blocks exceeds the %d-byte payload cap", req.Size, wire.MaxDataBytes)}
			}
		}
		data, hit, err := s.e.Read(blockdev.FileID(req.File),
			blockdev.BlockNo(req.Offset), req.Size)
		if err != nil {
			return WireResponse{Err: err.Error()}
		}
		resp := WireResponse{OK: true, Hit: hit}
		if req.WantData {
			resp.Data = data
		}
		return resp
	case "write":
		replicated, err := s.e.WriteDurable(blockdev.FileID(req.File),
			blockdev.BlockNo(req.Offset), req.Size, req.Data)
		if err != nil {
			return WireResponse{Err: err.Error()}
		}
		return WireResponse{OK: true, Replicated: replicated}
	case "close":
		s.e.CloseFile(blockdev.FileID(req.File))
		return WireResponse{OK: true}
	case "stats":
		snap := s.e.Snapshot()
		return WireResponse{OK: true, Stats: &snap}
	case "owner":
		if s.Cluster == nil {
			return WireResponse{Err: "server is not clustered"}
		}
		addr, self := s.Cluster.OwnerOf(blockdev.FileID(req.File))
		return WireResponse{OK: true, Owner: addr, OwnerSelf: self}
	default:
		return WireResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
