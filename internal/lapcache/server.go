package lapcache

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/blockdev"
)

// The wire protocol is newline-delimited JSON, one request and one
// response per line, pipelined in order per connection. Offsets and
// sizes are in blocks; clients convert byte ranges with
// blockdev.ByteRangeToSpan, honouring the paper's two-bytes-two-blocks
// rule. A "ping" reports the server's algorithm and block size so a
// client can configure itself from the live server.

// WireRequest is one client request.
type WireRequest struct {
	Op     string `json:"op"` // ping | read | write | close | stats
	File   int32  `json:"file,omitempty"`
	Offset int32  `json:"offset,omitempty"` // first block
	Size   int32  `json:"size,omitempty"`   // blocks
	// WantData asks a read to return the block payload (base64 in
	// JSON); replay clients leave it off to keep the wire thin.
	WantData bool `json:"want_data,omitempty"`
	// Data carries a write's payload; nil writes the deterministic
	// fill pattern.
	Data []byte `json:"data,omitempty"`
}

// WireResponse is one server response.
type WireResponse struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Hit is set on reads: every requested block was cached on
	// arrival.
	Hit       bool      `json:"hit,omitempty"`
	Data      []byte    `json:"data,omitempty"`
	Stats     *Snapshot `json:"stats,omitempty"`
	Alg       string    `json:"alg,omitempty"`
	BlockSize int       `json:"block_size,omitempty"`
}

// Server fronts an Engine over TCP.
type Server struct {
	e *Engine

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server around e.
func NewServer(e *Engine) *Server {
	return &Server{e: e, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close. It returns nil after a
// Close-initiated shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("lapcache: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, closes every connection and waits for the
// handlers to drain. The engine itself is left running (the owner
// shuts it down).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	bw := bufio.NewWriter(conn)
	enc := json.NewEncoder(bw)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req WireRequest
		var resp WireResponse
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Err = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = s.dispatch(&req)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *WireRequest) WireResponse {
	switch req.Op {
	case "ping":
		return WireResponse{OK: true, Alg: s.e.AlgName(), BlockSize: s.e.BlockSize()}
	case "read":
		data, hit, err := s.e.Read(blockdev.FileID(req.File),
			blockdev.BlockNo(req.Offset), req.Size)
		if err != nil {
			return WireResponse{Err: err.Error()}
		}
		resp := WireResponse{OK: true, Hit: hit}
		if req.WantData {
			resp.Data = data
		}
		return resp
	case "write":
		err := s.e.Write(blockdev.FileID(req.File),
			blockdev.BlockNo(req.Offset), req.Size, req.Data)
		if err != nil {
			return WireResponse{Err: err.Error()}
		}
		return WireResponse{OK: true}
	case "close":
		s.e.CloseFile(blockdev.FileID(req.File))
		return WireResponse{OK: true}
	case "stats":
		snap := s.e.Snapshot()
		return WireResponse{OK: true, Stats: &snap}
	default:
		return WireResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
