package lapcache

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/blockbuf"
	"repro/internal/blockdev"
	"repro/internal/wire"
)

// Every connection starts in the JSON protocol: newline-delimited
// JSON, one request and one response per line, pipelined in order per
// connection. Offsets and sizes are in blocks; clients convert byte
// ranges with blockdev.ByteRangeToSpan, honouring the paper's
// two-bytes-two-blocks rule. A "ping" reports the server's algorithm,
// block size and maximum protocol version; a client that sees
// proto_max >= wire.ProtoBinary may send {"op":"upgrade"} and switch
// the connection to the binary framed protocol (see internal/wire),
// whose read path streams raw block payloads straight from the
// cache's refcounted buffers — no base64, no copy. Plain JSON stays
// fully supported for old clients and debugging (lapget -json).

// WireRequest is one client request (JSON protocol).
type WireRequest struct {
	Op     string `json:"op"` // ping | read | write | close | stats | upgrade
	File   int32  `json:"file,omitempty"`
	Offset int32  `json:"offset,omitempty"` // first block
	Size   int32  `json:"size,omitempty"`   // blocks
	// WantData asks a read to return the block payload (base64 in
	// JSON); replay clients leave it off to keep the wire thin.
	WantData bool `json:"want_data,omitempty"`
	// Data carries a write's payload; nil writes the deterministic
	// fill pattern.
	Data []byte `json:"data,omitempty"`
	// Proto names the protocol version an "upgrade" requests
	// (defaults to wire.ProtoBinary).
	Proto int `json:"proto,omitempty"`
}

// WireResponse is one server response (JSON protocol).
type WireResponse struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Hit is set on reads: every requested block was cached on
	// arrival.
	Hit  bool   `json:"hit,omitempty"`
	Data []byte `json:"data,omitempty"`
	// Replicated is set on writes: the blocks were also installed on
	// the file's R=2 successor before the ack (durably double-homed).
	Replicated bool      `json:"replicated,omitempty"`
	Stats      *Snapshot `json:"stats,omitempty"`
	Alg        string    `json:"alg,omitempty"`
	BlockSize  int       `json:"block_size,omitempty"`
	// ProtoMax (on ping) is the newest protocol version this server
	// speaks; a client upgrades past JSON only after seeing it.
	ProtoMax int `json:"proto_max,omitempty"`
	// Owner and OwnerSelf answer an "owner" request on a clustered
	// server: the advertise address of the file's ring owner and
	// whether that owner is the answering node.
	Owner     string `json:"owner,omitempty"`
	OwnerSelf bool   `json:"owner_self,omitempty"`
}

// pingPayload is the JSON document carried by binary ping and stats
// responses (rare ops, so their encoding is irrelevant).
type pingPayload struct {
	Alg       string `json:"alg"`
	BlockSize int    `json:"block_size"`
	ProtoMax  int    `json:"proto_max"`
	// Self and Members describe cluster membership on a clustered
	// server; absent on a single node.
	Self    string   `json:"self,omitempty"`
	Members []string `json:"members,omitempty"`
}

// ownerPayload is the JSON document answering an ownership query.
type ownerPayload struct {
	Owner string `json:"owner"`
	Self  bool   `json:"self"`
}

// CloseReason classifies why one connection's serve loop ended. The
// distinctions matter under faults: a client cut off in the middle of
// a frame used to be indistinguishable from one that idled out, which
// made injected disconnects invisible in drain accounting.
type CloseReason string

const (
	// CloseEOF: the client disconnected cleanly at a frame boundary.
	CloseEOF CloseReason = "eof"
	// CloseIdle: no request arrived within IdleTimeout (the deadline
	// fired at a frame boundary).
	CloseIdle CloseReason = "idle_timeout"
	// CloseMidFrame: the connection died or stalled out INSIDE a frame
	// — a truncated header, a payload that never finished, an injected
	// mid-stream disconnect. Never conflated with CloseIdle: the
	// client was mid-request, not quiet.
	CloseMidFrame CloseReason = "mid_frame"
	// CloseShutdown: the server's drain path retired the connection.
	CloseShutdown CloseReason = "shutdown"
	// CloseProtocol: the client sent bytes that do not parse as a
	// frame (bad version, nonzero reserved byte, oversized payload).
	CloseProtocol CloseReason = "protocol"
	// CloseWrite: a response write or flush failed (slow or gone
	// client).
	CloseWrite CloseReason = "write_error"
	// CloseTransport: a non-EOF transport error at a frame boundary
	// (connection reset between requests).
	CloseTransport CloseReason = "transport"
)

// Server fronts an Engine over TCP.
type Server struct {
	e *Engine

	// Cluster, when non-nil, exposes ring membership through the
	// "owner" op and lets peers address this node as part of a
	// cooperative cache. nil on a single-node server, which answers
	// ownership queries with an error.
	Cluster ClusterInfo

	// Shards, when > 1, splits the accept path and the connection
	// registry into that many independent shards (lapcached -shards):
	// each shard runs its own accept goroutine on the shared listener
	// and pins every connection it accepts to its own mutex, conn set
	// and close-reason ledger, so the hit path of one connection never
	// contends on registry state touched by connections pinned
	// elsewhere. Set before Serve; 0 or 1 keeps the historical single
	// accept loop.
	Shards int
	// NoCoalesce disables opportunistic response coalescing on the
	// binary path: every response flushes with its own vectored write.
	// The hotpath experiment's A/B toggle; leave false in production.
	NoCoalesce bool

	// IdleTimeout, when positive, closes a connection that sends no
	// request for the duration (lapcached -idle-timeout). Zero keeps
	// connections open forever, the historical behaviour.
	IdleTimeout time.Duration
	// DrainGrace bounds how long Close waits for an in-flight
	// response to flush to a slow client before the write is abandoned
	// (default 2s).
	DrainGrace time.Duration
	// ConnWrap, when non-nil, interposes on every accepted connection
	// before any protocol traffic; the chaos harness uses it to inject
	// transport faults on the server side of the wire.
	ConnWrap func(net.Conn) net.Conn

	mu      sync.Mutex
	ln      net.Listener
	shards  []*connShard
	closed  bool
	closing chan struct{}
	wg      sync.WaitGroup
}

// connShard is one slice of the connection registry: the conn set and
// close-reason ledger for the connections pinned to it. With Shards=1
// there is exactly one; with more, each accept goroutine owns one, so
// connection registration, teardown and close accounting never cross
// shards.
type connShard struct {
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	reasons map[CloseReason]uint64
}

func newConnShard() *connShard {
	return &connShard{
		conns:   make(map[net.Conn]struct{}),
		reasons: make(map[CloseReason]uint64),
	}
}

// NewServer returns a server around e.
func NewServer(e *Engine) *Server {
	return &Server{
		e:       e,
		closing: make(chan struct{}),
	}
}

// CloseCounts returns how many connections ended for each reason —
// the drain path's audit trail (tests and the chaos harness assert
// injected mid-frame disconnects land under CloseMidFrame, not
// CloseIdle). Counts aggregate across shards.
func (s *Server) CloseCounts() map[CloseReason]uint64 {
	s.mu.Lock()
	shards := s.shards
	s.mu.Unlock()
	out := make(map[CloseReason]uint64)
	for _, sh := range shards {
		sh.mu.Lock()
		for r, n := range sh.reasons {
			out[r] += n
		}
		sh.mu.Unlock()
	}
	return out
}

// noteClose records one connection's close reason in its shard.
func (s *Server) noteClose(sh *connShard, r CloseReason) {
	sh.mu.Lock()
	sh.reasons[r]++
	sh.mu.Unlock()
}

// acceptFailureBudget bounds consecutive accept-loop errors before
// Serve gives up; transient failures (fd exhaustion, injected
// listener faults) are retried with backoff instead of killing the
// server.
const acceptFailureBudget = 10

// Serve accepts connections on ln until Close. Transient accept
// errors are retried with capped backoff (up to acceptFailureBudget
// consecutive failures per accept loop); it returns nil after a
// Close-initiated shutdown and the first accept error once a loop's
// retry budget is spent. With Shards > 1, that many accept goroutines
// share the listener and pin each accepted connection to their own
// shard.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("lapcache: server already closed")
	}
	s.ln = ln
	if s.shards == nil {
		ns := s.Shards
		if ns < 1 {
			ns = 1
		}
		s.shards = make([]*connShard, ns)
		for i := range s.shards {
			s.shards[i] = newConnShard()
		}
	}
	shards := s.shards
	s.mu.Unlock()
	if len(shards) == 1 {
		return s.acceptLoop(ln, shards[0])
	}
	errc := make(chan error, len(shards))
	for _, sh := range shards {
		go func(sh *connShard) { errc <- s.acceptLoop(ln, sh) }(sh)
	}
	var first error
	for range shards {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// acceptLoop is one shard's accept goroutine on the shared listener.
func (s *Server) acceptLoop(ln net.Listener, sh *connShard) error {
	failures := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			failures++
			if failures >= acceptFailureBudget {
				return err
			}
			// Back off before retrying; a torn-down listener fails every
			// retry instantly, so the budget still bounds the loop.
			backoff := 5 * time.Millisecond << uint(failures)
			if backoff > 250*time.Millisecond {
				backoff = 250 * time.Millisecond
			}
			select {
			case <-s.closing:
				return nil
			case <-time.After(backoff):
			}
			continue
		}
		failures = 0
		if s.ConnWrap != nil {
			conn = s.ConnWrap(conn)
		}
		// Register under the shard mutex so the check-and-register is
		// atomic with Close's deadline sweep of this shard: either the
		// closing flag is visible here, or the registration completes
		// before Close acquires sh.mu and the sweep covers the conn.
		sh.mu.Lock()
		if s.isClosing() {
			sh.mu.Unlock()
			conn.Close()
			return nil
		}
		sh.conns[conn] = struct{}{}
		s.wg.Add(1)
		sh.mu.Unlock()
		go s.handle(conn, sh)
	}
}

// Close stops accepting and shuts down draining: every in-flight
// request finishes dispatching and its response is flushed (bounded
// by DrainGrace for clients too slow to take the bytes) before the
// connection closes; idle connections are interrupted immediately.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.closing)
	if s.ln != nil {
		s.ln.Close()
	}
	grace := s.DrainGrace
	if grace <= 0 {
		grace = 2 * time.Second
	}
	shards := s.shards
	s.mu.Unlock()
	now := time.Now()
	for _, sh := range shards {
		sh.mu.Lock()
		for c := range sh.conns {
			// Unblock handlers parked in a read between requests; a
			// handler mid-dispatch is not reading and finishes its
			// response first (the drain), bounded by the write deadline.
			c.SetReadDeadline(now)
			c.SetWriteDeadline(now.Add(grace))
		}
		sh.mu.Unlock()
	}
	s.wg.Wait()
}

func (s *Server) isClosing() bool {
	select {
	case <-s.closing:
		return true
	default:
		return false
	}
}

// armRead sets the deadline for the next blocking read on conn:
// the idle timeout if configured, cleared otherwise — and an
// immediate deadline if the server is closing (re-checked after
// setting, so a racing Close cannot be overwritten into oblivion).
func (s *Server) armRead(conn net.Conn) {
	if s.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
	} else {
		conn.SetReadDeadline(time.Time{})
	}
	if s.isClosing() {
		conn.SetReadDeadline(time.Now())
	}
}

func (s *Server) handle(conn net.Conn, sh *connShard) {
	defer func() {
		conn.Close()
		sh.mu.Lock()
		delete(sh.conns, conn)
		sh.mu.Unlock()
		s.wg.Done()
	}()
	h := &connHandler{
		s:    s,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	s.noteClose(sh, h.serveJSON())
}

// readReason classifies a failed read. midFrame reports the failure
// happened inside a frame (a partial header, an unfinished payload, a
// half-sent JSON line): that is always a mid-frame close, never an
// idle timeout, whatever error the deadline machinery dressed it in.
func (s *Server) readReason(err error, midFrame bool) CloseReason {
	if midFrame {
		return CloseMidFrame
	}
	if s.isClosing() {
		return CloseShutdown
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return CloseIdle
	}
	if errors.Is(err, io.EOF) {
		return CloseEOF
	}
	return CloseTransport
}

// connHandler runs one connection's request loop, starting in JSON
// and optionally upgrading to binary frames. bw serves only the JSON
// protocol; after the binary upgrade, responses go through batch —
// vectored writes straight to conn, no bufio staging copy.
type connHandler struct {
	s    *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// batch gathers binary response frames for one writev; release
	// holds the refcounted cache buffers whose bytes the batch
	// references, released only after the syscall returns (or the
	// batch is dropped on a dying connection).
	batch   wire.FrameBatch
	release []*blockbuf.Buf
}

// queueError stages an error frame for hd's request.
func (h *connHandler) queueError(hd wire.Header, msg string) {
	// AppendFrame only fails past MaxPayload; error messages are
	// always far below it.
	h.batch.AppendFrame(wire.Header{Op: hd.Op, Seq: hd.Seq}, []byte(msg)) //nolint:errcheck
}

// flushBatch writes the queued responses with one vectored write and
// releases the cache buffers they referenced — after the syscall, per
// the net.Buffers ownership rule (DESIGN.md §13).
func (h *connHandler) flushBatch() error {
	err := h.batch.Flush(h.conn)
	for i, b := range h.release {
		b.Release()
		h.release[i] = nil
	}
	h.release = h.release[:0]
	return err
}

// dropBatch abandons queued responses on a dying connection, still
// releasing their buffers.
func (h *connHandler) dropBatch() {
	h.batch.Reset()
	for i, b := range h.release {
		b.Release()
		h.release[i] = nil
	}
	h.release = h.release[:0]
}

// nextRequestBuffered reports whether a COMPLETE next request —
// header and payload — is already sitting in the read buffer. This is
// the coalescing latch: responses keep accumulating only while the
// next dispatch is guaranteed not to block on the socket, so a batch
// can never deadlock against a client that waits for responses before
// sending more. Purely data-driven (drain-the-ready-queue); never a
// timer, so an unpipelined request's response is never held back.
func (h *connHandler) nextRequestBuffered() bool {
	if h.br.Buffered() < wire.HeaderSize {
		return false
	}
	p, err := h.br.Peek(wire.HeaderSize)
	if err != nil {
		return false
	}
	hd, err := wire.ParseHeader(p)
	if err != nil {
		// The next frame is garbage; flush what we have first — the
		// loop will then kill the connection with CloseProtocol.
		return false
	}
	return h.br.Buffered() >= wire.HeaderSize+int(hd.PayloadLen)
}

// serveJSON is the line-delimited JSON loop. Lines are bounded by
// wire.MaxFrame (the documented frame cap — the old bufio.Scanner
// 64 KiB default truncated multi-block WantData reads).
func (h *connHandler) serveJSON() CloseReason {
	s := h.s
	enc := json.NewEncoder(h.bw)
	for {
		s.armRead(h.conn)
		line, err := wire.ReadLine(h.br, wire.MaxFrame)
		if err != nil {
			// A half-sent line (unexpected EOF) is a mid-frame death,
			// not an idle client.
			return s.readReason(err, errors.Is(err, io.ErrUnexpectedEOF))
		}
		if len(line) == 0 {
			continue
		}
		var req WireRequest
		var resp WireResponse
		upgrade := false
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Err = fmt.Sprintf("bad request: %v", err)
		} else if req.Op == "upgrade" {
			if req.Proto == 0 || req.Proto == wire.ProtoBinary {
				resp.OK = true
				upgrade = true
			} else {
				resp.Err = fmt.Sprintf("unsupported protocol %d", req.Proto)
			}
		} else {
			resp = s.dispatch(&req)
		}
		if err := enc.Encode(&resp); err != nil {
			return CloseWrite
		}
		if err := h.bw.Flush(); err != nil {
			return CloseWrite
		}
		if upgrade {
			return h.serveBinary()
		}
		if s.isClosing() {
			return CloseShutdown
		}
	}
}

// maxCoalesce bounds how many responses accumulate in the batch
// before a flush is forced even with more requests buffered; it caps
// the memory pinned by gathered cache buffers and keeps one writev's
// iovec list small.
const maxCoalesce = 64

// serveBinary is the framed loop after an upgrade. Read responses
// stream block payloads directly from the cache's refcounted buffers
// onto the socket with vectored writes — no base64, no staging copy —
// and responses to pipelined requests coalesce into a single writev:
// the batch flushes exactly when no complete next request is already
// buffered (see nextRequestBuffered), so a lone request's latency
// never waits on a latch.
func (h *connHandler) serveBinary() CloseReason {
	s := h.s
	var (
		scratch [wire.HeaderSize]byte
		payload []byte          // reused for write payloads
		bufs    []*blockbuf.Buf // reused for read responses
	)
	for {
		s.armRead(h.conn)
		// Read the header bytes directly (not wire.ReadHeader) so a
		// death after SOME header bytes — a truncated frame — is
		// distinguishable from a death at the frame boundary.
		n, err := io.ReadFull(h.br, scratch[:])
		if err != nil {
			h.dropBatch()
			return s.readReason(err, n > 0)
		}
		hd, err := wire.ParseHeader(scratch[:])
		if err != nil {
			h.dropBatch()
			return CloseProtocol
		}
		if payload, err = wire.ReadPayload(h.br, hd, payload); err != nil {
			// The header arrived but its payload did not: mid-frame by
			// definition, whatever the underlying error.
			h.dropBatch()
			return CloseMidFrame
		}
		// Version-skew guard: a structurally sound frame whose op or
		// flags this build does not define gets an error frame, not a
		// dropped connection — the payload has already been consumed, so
		// the stream stays framed and the client can fall back.
		if !hd.Op.Known() || !hd.Flags.Known() {
			h.queueError(hd, fmt.Sprintf("unsupported op %s flags %#x", hd.Op, uint8(hd.Flags)))
		} else {
			h.dispatchBinary(hd, payload, &bufs)
		}
		if s.NoCoalesce || h.batch.Len() >= maxCoalesce || !h.nextRequestBuffered() {
			if err := h.flushBatch(); err != nil {
				return CloseWrite
			}
		}
		if s.isClosing() {
			if err := h.flushBatch(); err != nil {
				return CloseWrite
			}
			return CloseShutdown
		}
	}
}

// dispatchBinary handles one known binary request, staging its
// response into the batch. bufs is the caller's reusable gather slice
// for read responses; buffers queued for the wire move to h.release
// and are released after the flush syscall.
func (h *connHandler) dispatchBinary(hd wire.Header, payload []byte, bufs *[]*blockbuf.Buf) {
	s := h.s
	peer := hd.Flags&wire.FlagPeer != 0
	switch hd.Op {
	case wire.OpPing:
		pp := pingPayload{
			Alg: s.e.AlgName(), BlockSize: s.e.BlockSize(), ProtoMax: wire.ProtoBinary,
		}
		if s.Cluster != nil {
			pp.Self = s.Cluster.Self()
			pp.Members = s.Cluster.MemberAddrs()
		}
		doc, err := json.Marshal(pp)
		if err != nil {
			h.queueError(hd, "encode ping: "+err.Error())
			return
		}
		h.batch.AppendFrame(wire.Header{Op: hd.Op, Flags: wire.FlagOK, Seq: hd.Seq}, doc) //nolint:errcheck

	case wire.OpOwner:
		if s.Cluster == nil {
			h.queueError(hd, "server is not clustered")
			return
		}
		addr, self := s.Cluster.OwnerOf(blockdev.FileID(hd.File))
		doc, err := json.Marshal(ownerPayload{Owner: addr, Self: self})
		if err != nil {
			h.queueError(hd, "encode owner: "+err.Error())
			return
		}
		h.batch.AppendFrame(wire.Header{Op: hd.Op, Flags: wire.FlagOK, Seq: hd.Seq}, doc) //nolint:errcheck

	case wire.OpRead:
		want := hd.Flags&wire.FlagWantData != 0
		total := int64(hd.Size) * int64(s.e.BlockSize())
		if want && (total <= 0 || total > wire.MaxDataBytes) {
			h.queueError(hd, fmt.Sprintf("read of %d blocks exceeds the %d-byte payload cap", hd.Size, wire.MaxDataBytes))
			return
		}
		var hit bool
		var err error
		b := (*bufs)[:0]
		if peer {
			// Peer-forwarded read: serve strictly locally, never
			// re-forward (the loop-free contract of FlagPeer).
			b, hit, err = s.e.PeerReadInto(b, blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size)
		} else {
			b, hit, err = s.e.ReadInto(b, blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size)
		}
		*bufs = b[:0]
		if err != nil {
			h.queueError(hd, err.Error())
			return
		}
		flags := wire.FlagOK
		if hit {
			flags |= wire.FlagHit
		}
		out := wire.Header{Op: hd.Op, Flags: flags, Seq: hd.Seq}
		if want {
			out.PayloadLen = uint32(total)
		}
		h.batch.AppendHeader(out)
		if want {
			// Ownership of each retained buffer moves to h.release; the
			// bytes stay pinned until the flush syscall returns.
			for _, buf := range b {
				h.batch.AppendPayload(buf.Bytes())
				h.release = append(h.release, buf)
			}
		} else {
			for _, buf := range b {
				buf.Release()
			}
		}

	case wire.OpWrite:
		var data []byte
		if hd.PayloadLen > 0 {
			data = payload
		}
		var werr error
		var replicated bool
		switch {
		case hd.Flags&wire.FlagReplica != 0 && !peer:
			werr = fmt.Errorf("FlagReplica requires FlagPeer")
		case hd.Flags&wire.FlagReplica != 0:
			// Replica install: store + cache only, no driver feed, no
			// onward replication (the loop-free contract of R=2 — a
			// replica push must never fan out further).
			werr = s.e.ReplicaWrite(blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size, data)
		case peer:
			replicated, werr = s.e.PeerWriteDurable(blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size, data)
		default:
			replicated, werr = s.e.WriteDurable(blockdev.FileID(hd.File), blockdev.BlockNo(hd.Offset), hd.Size, data)
		}
		if werr != nil {
			h.queueError(hd, werr.Error())
			return
		}
		flags := wire.FlagOK
		if replicated {
			flags |= wire.FlagReplicated
		}
		h.batch.AppendFrame(wire.Header{Op: hd.Op, Flags: flags, Seq: hd.Seq}, nil) //nolint:errcheck

	case wire.OpClose:
		if peer {
			s.e.PeerCloseFile(blockdev.FileID(hd.File))
		} else {
			s.e.CloseFile(blockdev.FileID(hd.File))
		}
		h.batch.AppendFrame(wire.Header{Op: hd.Op, Flags: wire.FlagOK, Seq: hd.Seq}, nil) //nolint:errcheck

	case wire.OpStats:
		snap := s.e.Snapshot()
		doc, err := json.Marshal(&snap)
		if err != nil {
			h.queueError(hd, "encode stats: "+err.Error())
			return
		}
		h.batch.AppendFrame(wire.Header{Op: hd.Op, Flags: wire.FlagOK, Seq: hd.Seq}, doc) //nolint:errcheck

	default:
		// Unreachable while Known() covers every case above; kept so
		// a future op added to wire but not here fails cleanly.
		h.queueError(hd, fmt.Sprintf("unsupported op %s", hd.Op))
	}
}

func (s *Server) dispatch(req *WireRequest) WireResponse {
	switch req.Op {
	case "ping":
		return WireResponse{OK: true, Alg: s.e.AlgName(), BlockSize: s.e.BlockSize(),
			ProtoMax: wire.ProtoBinary}
	case "read":
		if req.WantData {
			if total := int64(req.Size) * int64(s.e.BlockSize()); total > wire.MaxDataBytes {
				return WireResponse{Err: fmt.Sprintf(
					"read of %d blocks exceeds the %d-byte payload cap", req.Size, wire.MaxDataBytes)}
			}
		}
		data, hit, err := s.e.Read(blockdev.FileID(req.File),
			blockdev.BlockNo(req.Offset), req.Size)
		if err != nil {
			return WireResponse{Err: err.Error()}
		}
		resp := WireResponse{OK: true, Hit: hit}
		if req.WantData {
			resp.Data = data
		}
		return resp
	case "write":
		replicated, err := s.e.WriteDurable(blockdev.FileID(req.File),
			blockdev.BlockNo(req.Offset), req.Size, req.Data)
		if err != nil {
			return WireResponse{Err: err.Error()}
		}
		return WireResponse{OK: true, Replicated: replicated}
	case "close":
		s.e.CloseFile(blockdev.FileID(req.File))
		return WireResponse{OK: true}
	case "stats":
		snap := s.e.Snapshot()
		return WireResponse{OK: true, Stats: &snap}
	case "owner":
		if s.Cluster == nil {
			return WireResponse{Err: "server is not clustered"}
		}
		addr, self := s.Cluster.OwnerOf(blockdev.FileID(req.File))
		return WireResponse{OK: true, Owner: addr, OwnerSelf: self}
	default:
		return WireResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
