// Package lapcache is the live counterpart of the simulator: a
// goroutine-concurrent prefetching block cache built on the paper's
// predictors. The predictor state machines and the linear-aggressive
// driver come verbatim from internal/core — one model, two clocks: the
// simulator feeds virtual nanoseconds, this engine feeds a per-file
// logical sequence number.
//
// The simulator's resources map onto runtime machinery as follows:
// the cooperative cache directory becomes a sharded, mutex-striped
// block cache; the disk array becomes a BackingStore; the low-priority
// prefetch disk queue becomes a bounded channel drained by a worker
// pool, whose fullness is the backpressure signal that parks a
// driver's chain; and the per-file prefetch server of PAFS becomes a
// per-file mutex under which the (single-threaded by contract) driver
// runs.
package lapcache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/blockbuf"
	"repro/internal/blockdev"
	"repro/internal/core"
)

// Config assembles an engine.
type Config struct {
	// Alg is the prefetching configuration in the paper's notation
	// (e.g. core.SpecLnAgrISPPM3); core.AlgNone disables prefetching.
	Alg core.AlgSpec
	// BlockSize is the cache and store block size in bytes.
	BlockSize int
	// CacheBlocks is the cache capacity in blocks.
	CacheBlocks int
	// Shards stripes the cache over this many mutexes (default 8,
	// rounded to a power of two).
	Shards int
	// Store is the slow medium behind the cache.
	Store BackingStore
	// Workers is the prefetch worker pool size (default 4).
	Workers int
	// QueueLen bounds the prefetch queue (default 64); a full queue
	// refuses further prefetches, which parks the refusing file's
	// chain until its next satisfied request.
	QueueLen int
	// FileBlocks maps known files to their length in blocks, clipping
	// prefetch chains at end of file (a trace's file table goes here).
	FileBlocks map[blockdev.FileID]blockdev.BlockNo
	// DefaultFileBlocks sizes files missing from FileBlocks
	// (default 1<<20 blocks).
	DefaultFileBlocks blockdev.BlockNo
	// StrictLinear makes any breach of the per-file outstanding limit
	// panic instead of only counting — the server-side assertion that
	// linear mode really keeps at most one prefetch per file in
	// flight.
	StrictLinear bool
	// PoisonBufs turns on the buffer pool's test mode: released
	// buffers are poisoned and verified on recycle, so a holder that
	// writes through a stale reference panics instead of corrupting a
	// later block. Costs a full-block write per recycle; tests only.
	PoisonBufs bool
	// Remote, when non-nil, puts the engine in cooperative-cluster
	// mode: reads and writes of files this node does not own are
	// forwarded to the ring owner, and drivers are only created for
	// owned files (the PAFS one-server-per-file rule, applied
	// cluster-wide). nil is a single-node engine that owns everything.
	Remote RemoteFetcher
}

// fetchOp is one in-flight fetch, demand or speculative; on the
// remote-forward path a single op can cover a whole span, registered
// in the inflight map under every block it will produce. It is the
// singleflight rendezvous: whoever registers it performs the fetch,
// everyone else waits on wg; err is written before wg.Done.
//
// Ops are recycled through Engine.fops (a demand miss used to cost an
// op plus a done-channel allocation). refs counts the registrant plus
// every waiter; the last releaseFetchOp returns the op to the pool.
// Reuse is safe because the registrant deletes the map entries before
// calling Done — no waiter can join after that — and every waiter's
// Wait has returned (and err been read) before refs can reach zero.
type fetchOp struct {
	prefetch bool
	err      error
	refs     atomic.Int32
	wg       sync.WaitGroup
}

// prefetchOp is one queued speculative fetch. The callbacks belong to
// the issuing driver and must only run under its file's mutex.
type prefetchOp struct {
	b         blockdev.BlockID
	fl        *fileState
	cancelled func() bool
	done      func()
}

// fileState serializes one file's driver. The core.Driver is
// single-goroutine by contract; mu is what makes that contract hold on
// a concurrent server — the runtime image of PAFS's one-server-per-
// file design, which is exactly what makes its prefetching truly
// linear (§4).
type fileState struct {
	mu     sync.Mutex
	driver *core.Driver // nil when Alg is NP or the file is not owned
	tick   core.Tick    // per-file logical clock fed to the predictor

	// degree is the file's outstanding-prefetch policy. Immutable after
	// fileState creation (the policy itself is internally synchronized),
	// so feedback paths may read it without holding mu. It outlives the
	// driver across ownership churn: a resumed file keeps its learned
	// window just as it keeps its learned predictor state.
	degree core.DegreePolicy

	// epoch is the ownership epoch this file's driver decision was
	// made under; when the remote tier's Epoch moves past it, the next
	// access (or an OwnershipChanged sweep) re-probes Owned and
	// creates, suspends, or resumes the driver accordingly.
	epoch uint64
	// suspended marks a driver whose file this node no longer owns:
	// the chain is parked and the driver is never fed, but its learned
	// predictor state is kept — if ownership returns (the common churn
	// case: a restarted node reclaiming its arcs), prefetching resumes
	// without relearning the access pattern.
	suspended bool
}

// Engine is a concurrent prefetching block cache.
//
// Lock hierarchy: fileState.mu > filesMu > flightMu > cacheShard.mu.
// A goroutine may acquire rightward while holding leftward, never the
// reverse; store reads and channel sends happen under no lock or
// fileState.mu only. (filesMu sits below fileState.mu because lazy
// driver creation — under fl.mu — reads the file table; the fileState
// lookup path takes filesMu alone and releases it before touching any
// fl.mu.)
type Engine struct {
	cfg    Config
	cache  *blockCache
	store  BackingStore
	pool   *blockbuf.Pool
	remote RemoteFetcher // nil on a single-node engine

	m      Metrics
	ledger *Ledger
	fops   sync.Pool // recycled *fetchOp
	spans  sync.Pool // recycled *spanGather for readSpanRemote
	// adaptive short-circuits the per-event policy feedback on the
	// read paths: static policies ignore it, so non-adaptive engines
	// skip the fileState lookup entirely and stay byte-for-byte on the
	// historical hot path.
	adaptive bool

	filesMu    sync.RWMutex
	files      map[blockdev.FileID]*fileState
	fileBlocks map[blockdev.FileID]blockdev.BlockNo

	flightMu sync.Mutex
	inflight map[blockdev.BlockID]*fetchOp

	pfq  chan prefetchOp
	quit chan struct{}
	wg   sync.WaitGroup
	stop sync.Once
}

// New validates the configuration, starts the worker pool and returns
// a running engine. Call Shutdown when done.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Alg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("lapcache: config needs a backing store")
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("lapcache: invalid block size %d", cfg.BlockSize)
	}
	if cfg.CacheBlocks <= 0 {
		return nil, fmt.Errorf("lapcache: invalid cache capacity %d", cfg.CacheBlocks)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	if cfg.DefaultFileBlocks <= 0 {
		cfg.DefaultFileBlocks = 1 << 20
	}
	e := &Engine{
		cfg:        cfg,
		cache:      newBlockCache(cfg.CacheBlocks, cfg.Shards),
		store:      cfg.Store,
		pool:       blockbuf.NewPool(cfg.BlockSize),
		remote:     cfg.Remote,
		ledger:     NewLedger(cfg.Alg.DegreeCap(), cfg.StrictLinear),
		adaptive:   cfg.Alg.Adaptive,
		files:      make(map[blockdev.FileID]*fileState),
		fileBlocks: make(map[blockdev.FileID]blockdev.BlockNo, len(cfg.FileBlocks)),
		inflight:   make(map[blockdev.BlockID]*fetchOp),
		pfq:        make(chan prefetchOp, cfg.QueueLen),
		quit:       make(chan struct{}),
	}
	if cfg.PoisonBufs {
		e.pool.SetPoison(true)
	}
	for f, b := range cfg.FileBlocks {
		e.fileBlocks[f] = b
	}
	if e.adaptive {
		e.cache.onWasted = func(f blockdev.FileID) { e.fileState(f).degree.OnWasted() }
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// BlockSize returns the configured block size in bytes.
func (e *Engine) BlockSize() int { return e.cfg.BlockSize }

// AlgName returns the paper-notation name of the running algorithm.
func (e *Engine) AlgName() string { return e.cfg.Alg.Name() }

// RegisterFiles merges a file table (file → length in blocks) into the
// engine, typically a replayed trace's. Sizes only affect files whose
// driver has not been created yet.
func (e *Engine) RegisterFiles(table map[blockdev.FileID]blockdev.BlockNo) {
	e.filesMu.Lock()
	for f, b := range table {
		e.fileBlocks[f] = b
	}
	e.filesMu.Unlock()
}

// fileState returns (creating on first touch) the state for f.
func (e *Engine) fileState(f blockdev.FileID) *fileState {
	e.filesMu.RLock()
	fl := e.files[f]
	e.filesMu.RUnlock()
	if fl != nil {
		return fl
	}
	e.filesMu.Lock()
	defer e.filesMu.Unlock()
	if fl := e.files[f]; fl != nil {
		return fl
	}
	fl = &fileState{degree: e.cfg.Alg.NewDegreePolicy()}
	e.files[f] = fl
	return fl
}

// newDriver builds f's chain driver. Callers hold fl.mu.
func (e *Engine) newDriver(f blockdev.FileID, fl *fileState) *core.Driver {
	e.filesMu.RLock()
	blocks := e.fileBlocks[f]
	e.filesMu.RUnlock()
	if blocks <= 0 {
		blocks = e.cfg.DefaultFileBlocks
	}
	return core.NewDriver(core.DriverConfig{
		Predictor:  e.cfg.Alg.NewPredictor(),
		Mode:       e.cfg.Alg.Mode,
		Degree:     fl.degree,
		File:       f,
		FileBlocks: blocks,
		Env:        &runtimeEnv{e: e, fl: fl},
		Observer:   e.ledger,
	})
}

// driverLocked returns f's driver if this node should be running it
// right now, re-probing ownership lazily whenever the remote tier's
// epoch has moved. In a cluster only the ring owner runs a file's
// driver: the whole point of per-file ownership is that exactly one
// chain walker exists per file, so "≤ 1 outstanding prefetch" holds
// across every node, not merely within each (PAFS vs. xFS, §4). On a
// dynamic ring ownership moves, so the decision cannot be made once
// at fileState creation: it is re-made per epoch, under fl.mu, which
// is what keeps the invariant provable while ownership is in motion —
// a driver is only ever created, suspended, or resumed by a goroutine
// holding the same mutex the chain runs under.
//
// Callers hold fl.mu.
func (e *Engine) driverLocked(f blockdev.FileID, fl *fileState) *core.Driver {
	if !e.cfg.Alg.Prefetches() {
		return nil
	}
	if e.remote == nil {
		if fl.driver == nil {
			fl.driver = e.newDriver(f, fl)
		}
		return fl.driver
	}
	if ep := e.remote.Epoch(); ep != fl.epoch {
		fl.epoch = ep
		if e.remote.Owned(f) {
			if fl.driver == nil {
				fl.driver = e.newDriver(f, fl)
			}
			fl.suspended = false
		} else if fl.driver != nil && !fl.suspended {
			// Ownership left this node: park the chain NOW. The new
			// owner may start the file's one true chain at any moment,
			// and a parked chain issues nothing further even when its
			// in-flight operation's completion callback fires.
			fl.driver.StopChain()
			fl.suspended = true
		}
	}
	if fl.suspended {
		return nil
	}
	return fl.driver
}

// OwnershipChanged tells the engine the remote tier's ownership
// assignment moved (ring change, peer recovery). It sweeps every
// known file and re-probes its driver decision eagerly. The sweep
// matters for files this node LOST: their chains must stop even if no
// request ever touches them again here — an active chain pumps itself
// through completion callbacks, not through new requests, so lazy
// re-probing alone would let two nodes walk one file's chain until
// the old owner's next access. Files this node gained are also picked
// up lazily on first access; the sweep just starts them sooner.
func (e *Engine) OwnershipChanged() {
	if e.remote == nil {
		return
	}
	e.filesMu.RLock()
	files := make([]blockdev.FileID, 0, len(e.files))
	states := make([]*fileState, 0, len(e.files))
	for f, fl := range e.files {
		files = append(files, f)
		states = append(states, fl)
	}
	e.filesMu.RUnlock()
	for i, fl := range states {
		fl.mu.Lock()
		e.driverLocked(files[i], fl)
		fl.mu.Unlock()
	}
}

// Read serves a demand read of nblocks blocks starting at off,
// returning the concatenated data as a freshly allocated slice. It is
// the copying convenience wrapper around ReadInto; hot paths (the
// binary wire protocol, the benchmarks) use ReadInto directly and
// avoid the copy.
func (e *Engine) Read(f blockdev.FileID, off blockdev.BlockNo, nblocks int32) (data []byte, hit bool, err error) {
	bufs, hit, err := e.ReadInto(nil, f, off, nblocks)
	if err != nil {
		return nil, false, err
	}
	data = make([]byte, int(nblocks)*e.cfg.BlockSize)
	for i, buf := range bufs {
		copy(data[i*e.cfg.BlockSize:], buf.Bytes())
		buf.Release()
	}
	return data, hit, nil
}

// ReadInto serves a demand read of nblocks blocks starting at off,
// appending one retained buffer per block to bufs (usually a reused
// slice; pass bufs[:0]) and returning the extended slice. The caller
// owns one reference to every appended buffer and must Release each;
// the buffers stay valid even if the cache evicts or overwrites the
// blocks meanwhile. hit reports that every block was served from
// memory on arrival — this node's cache or, for a forwarded span, the
// ring owner's — the satisfaction criterion fed to the driver (§3.1).
//
// On error the appended buffers are released and bufs is returned at
// its original length.
func (e *Engine) ReadInto(bufs []*blockbuf.Buf, f blockdev.FileID, off blockdev.BlockNo, nblocks int32) ([]*blockbuf.Buf, bool, error) {
	return e.readSpan(bufs, f, off, nblocks, false)
}

// PeerReadInto is ReadInto for a request forwarded by a cluster peer:
// it serves strictly locally (cache, then backing store) and never
// re-forwards, whatever the ring says — the wire-level FlagPeer
// contract that keeps forwarding loop-free. The span still feeds this
// node's driver: the owner sees every peer's accesses to its files as
// (offset, size) requests, which is exactly what lets it model the
// cluster-wide access stream and run the one true prefetch chain.
func (e *Engine) PeerReadInto(bufs []*blockbuf.Buf, f blockdev.FileID, off blockdev.BlockNo, nblocks int32) ([]*blockbuf.Buf, bool, error) {
	e.m.peerReads.Add(1)
	return e.readSpan(bufs, f, off, nblocks, true)
}

// readSpan is the shared demand-read body: route to the owner when the
// file is remote (unless localOnly pins service here), then feed the
// request to the file's driver.
func (e *Engine) readSpan(bufs []*blockbuf.Buf, f blockdev.FileID, off blockdev.BlockNo, nblocks int32, localOnly bool) ([]*blockbuf.Buf, bool, error) {
	if nblocks <= 0 || off < 0 {
		return bufs, false, fmt.Errorf("lapcache: invalid read %d:[%d,+%d]", f, off, nblocks)
	}
	var (
		hit bool
		err error
	)
	if e.remote != nil && !localOnly && !e.remote.Owned(f) {
		bufs, hit, err = e.readSpanRemote(bufs, f, off, nblocks)
	} else {
		bufs, hit, err = e.readSpanLocal(bufs, f, off, nblocks)
	}
	if err != nil {
		return bufs, false, err
	}
	e.feedDriver(f, core.Request{Offset: off, Size: nblocks}, hit)
	return bufs, hit, nil
}

// readSpanLocal serves a span from the local cache and backing store.
func (e *Engine) readSpanLocal(bufs []*blockbuf.Buf, f blockdev.FileID, off blockdev.BlockNo, nblocks int32) ([]*blockbuf.Buf, bool, error) {
	base := len(bufs)
	hit := true
	for i := int32(0); i < nblocks; i++ {
		b := blockdev.BlockID{File: f, Block: off + blockdev.BlockNo(i)}
		buf, blockHit, err := e.readBlockBuf(b)
		if err != nil {
			for _, held := range bufs[base:] {
				held.Release()
			}
			return bufs[:base], false, err
		}
		bufs = append(bufs, buf)
		if blockHit {
			e.m.demandHits.Add(1)
		} else {
			e.m.demandMisses.Add(1)
			hit = false
		}
	}
	return bufs, hit, nil
}

// readSpanRemote serves a span of a file this node does not own:
// locally cached blocks are served from the client cache, and each
// maximal run of missing blocks becomes one span RPC to the ring
// owner, whose memory stands in for the disk — the cooperative-cache
// fast path the paper is built on. Concurrent misses on the same
// blocks join the in-flight fetch through the same singleflight map
// the local path uses, so one node never issues duplicate peer RPCs
// for a block. If no live owner is reachable the run degrades to the
// local backing store: a dead owner costs latency, not availability.
func (e *Engine) readSpanRemote(bufs []*blockbuf.Buf, f blockdev.FileID, off blockdev.BlockNo, nblocks int32) ([]*blockbuf.Buf, bool, error) {
	base := len(bufs)
	spanHit := true
	waited := false // true while re-checking a block we waited on
	fail := func(err error) ([]*blockbuf.Buf, bool, error) {
		for _, held := range bufs[base:] {
			held.Release()
		}
		return bufs[:base], false, err
	}
	for i := int32(0); i < nblocks; {
		b := blockdev.BlockID{File: f, Block: off + blockdev.BlockNo(i)}
		if buf, wasPrefetched, ok := e.cache.Get(b); ok {
			if wasPrefetched && !waited {
				e.m.prefetchTimely.Add(1)
				if e.adaptive {
					e.fileState(f).degree.OnTimely()
				}
			}
			bufs = append(bufs, buf)
			if waited {
				e.m.demandMisses.Add(1)
				spanHit = false
			} else {
				e.m.demandHits.Add(1)
			}
			i++
			waited = false
			continue
		}

		e.flightMu.Lock()
		if fo := e.inflight[b]; fo != nil {
			fo.join()
			e.flightMu.Unlock()
			if fo.prefetch && !waited {
				e.m.prefetchLate.Add(1)
				if e.adaptive {
					e.fileState(f).degree.OnLate()
				}
			}
			waited = true
			fo.wg.Wait()
			err := fo.err
			e.releaseFetchOp(fo)
			if err != nil {
				return fail(err)
			}
			continue // re-check the cache for this block
		}
		if e.cache.Contains(b) {
			e.flightMu.Unlock()
			continue
		}
		// Claim the maximal run of missing, unclaimed blocks under one
		// fetchOp registered per block, then fetch the whole run in one
		// RPC. Runs keep the owner seeing spans, not per-block chatter:
		// its predictor models (offset, size) request pairs.
		n := int32(1)
		for i+n < nblocks {
			nb := blockdev.BlockID{File: f, Block: b.Block + blockdev.BlockNo(n)}
			if e.inflight[nb] != nil || e.cache.Contains(nb) {
				break
			}
			n++
		}
		fo := e.newFetchOp(false)
		for k := int32(0); k < n; k++ {
			e.inflight[blockdev.BlockID{File: f, Block: b.Block + blockdev.BlockNo(k)}] = fo
		}
		e.flightMu.Unlock()

		sg := e.newSpanGather(int(n))
		run, dsts := sg.run[:n], sg.dsts[:n]
		for k := range run {
			run[k] = e.pool.Get()
			dsts[k] = run[k].Bytes()
		}
		remHit, ok, err := e.remote.FetchSpan(f, b.Block, n, dsts)
		// A run the owner served wholly from its memory is a
		// cooperative-cache hit: the client avoided every disk, which
		// is the cluster-wide satisfaction the paper measures. Only an
		// owner miss (its disk turned) or a degraded local-store read
		// clears the span's hit.
		servedFromMemory := false
		if ok && err == nil {
			e.m.remoteReads.Add(uint64(n))
			if remHit {
				e.m.remoteHits.Add(uint64(n))
				servedFromMemory = true
			} else {
				e.m.remoteMisses.Add(uint64(n))
			}
		} else if !ok {
			// No live owner: serve the run from the local store.
			e.m.remoteFallbacks.Add(1)
			err = nil
			for k := int32(0); k < n && err == nil; k++ {
				bk := blockdev.BlockID{File: f, Block: b.Block + blockdev.BlockNo(k)}
				if err = e.store.ReadBlock(bk, dsts[k]); err == nil {
					e.m.storeReads.Add(1)
				}
			}
		}
		if err == nil {
			for k := int32(0); k < n; k++ {
				bk := blockdev.BlockID{File: f, Block: b.Block + blockdev.BlockNo(k)}
				// One reference transfers to the cache, one stays here.
				e.m.prefetchWasted.Add(uint64(e.cache.Put(bk, run[k].Retain(), false)))
			}
		}
		fo.err = err
		e.flightMu.Lock()
		for k := int32(0); k < n; k++ {
			delete(e.inflight, blockdev.BlockID{File: f, Block: b.Block + blockdev.BlockNo(k)})
		}
		e.flightMu.Unlock()
		fo.wg.Done()
		e.releaseFetchOp(fo)
		if err != nil {
			for _, r := range run {
				r.Release()
			}
			e.releaseSpanGather(sg, int(n))
			return fail(err)
		}
		bufs = append(bufs, run...)
		e.releaseSpanGather(sg, int(n))
		e.m.demandMisses.Add(uint64(n)) // miss for the LOCAL cache either way
		if !servedFromMemory {
			spanHit = false
		}
		i += n
		waited = false
	}
	return bufs, spanHit, nil
}

// spanGather is readSpanRemote's reusable per-RPC gather state: one
// retained buffer pointer and one destination byte slice per block of
// the run. Pooled so the cooperative fast path allocates nothing.
type spanGather struct {
	run  []*blockbuf.Buf
	dsts [][]byte
}

// newSpanGather takes a recycled (or fresh) gather sized for at least
// n blocks.
func (e *Engine) newSpanGather(n int) *spanGather {
	sg, _ := e.spans.Get().(*spanGather)
	if sg == nil {
		sg = &spanGather{}
	}
	if cap(sg.run) < n {
		sg.run = make([]*blockbuf.Buf, n)
		sg.dsts = make([][]byte, n)
	}
	sg.run = sg.run[:cap(sg.run)]
	sg.dsts = sg.dsts[:cap(sg.dsts)]
	return sg
}

// releaseSpanGather clears the first n entries (dropping the buffer
// references for GC) and recycles the gather.
func (e *Engine) releaseSpanGather(sg *spanGather, n int) {
	for k := 0; k < n; k++ {
		sg.run[k] = nil
		sg.dsts[k] = nil
	}
	e.spans.Put(sg)
}

// newFetchOp takes a recycled (or fresh) fetchOp armed for one fetch:
// one reference for the registrant, wg primed for waiters.
func (e *Engine) newFetchOp(prefetch bool) *fetchOp {
	fo, _ := e.fops.Get().(*fetchOp)
	if fo == nil {
		fo = &fetchOp{}
	}
	fo.prefetch = prefetch
	fo.err = nil
	fo.refs.Store(1)
	fo.wg.Add(1)
	return fo
}

// releaseFetchOp drops one reference; the last holder recycles the op.
func (e *Engine) releaseFetchOp(fo *fetchOp) {
	if fo.refs.Add(-1) == 0 {
		e.fops.Put(fo)
	}
}

// join registers the caller as a waiter on fo. Must be called with
// flightMu held (so the registrant cannot complete-and-recycle the op
// between the map lookup and the reference bump).
func (fo *fetchOp) join() { fo.refs.Add(1) }

// readBlockBuf fetches one block, consulting the cache, joining any
// in-flight fetch, or reading the store into a pooled buffer. The
// returned buffer carries one reference owned by the caller. hit
// reports a pure cache hit (no waiting).
func (e *Engine) readBlockBuf(b blockdev.BlockID) (buf *blockbuf.Buf, hit bool, err error) {
	waited := false
	for {
		if buf, wasPrefetched, ok := e.cache.Get(b); ok {
			// A first touch of a speculative block that was already
			// resident is a timely prefetch; if we waited for its fetch
			// to land, it was late and already counted.
			if wasPrefetched && !waited {
				e.m.prefetchTimely.Add(1)
				if e.adaptive {
					e.fileState(b.File).degree.OnTimely()
				}
			}
			return buf, !waited, nil
		}

		e.flightMu.Lock()
		if fo := e.inflight[b]; fo != nil {
			fo.join()
			e.flightMu.Unlock()
			if fo.prefetch && !waited {
				// The predictor chose this block, but its fetch is
				// still in flight when the demand arrives: late.
				e.m.prefetchLate.Add(1)
				if e.adaptive {
					e.fileState(b.File).degree.OnLate()
				}
			}
			waited = true
			fo.wg.Wait()
			err := fo.err
			e.releaseFetchOp(fo)
			if err != nil {
				return nil, false, err
			}
			continue // the block should be cached now; re-check
		}
		if e.cache.Contains(b) {
			// Landed between our Get miss and taking flightMu.
			e.flightMu.Unlock()
			continue
		}
		fo := e.newFetchOp(false)
		e.inflight[b] = fo
		e.flightMu.Unlock()

		buf := e.pool.Get()
		err := e.store.ReadBlock(b, buf.Bytes())
		e.m.storeReads.Add(1)
		if err == nil {
			// One reference transfers to the cache, one stays with the
			// caller.
			e.m.prefetchWasted.Add(uint64(e.cache.Put(b, buf.Retain(), false)))
		}
		fo.err = err
		e.flightMu.Lock()
		delete(e.inflight, b)
		e.flightMu.Unlock()
		fo.wg.Done()
		e.releaseFetchOp(fo)
		if err != nil {
			buf.Release()
			return nil, false, err
		}
		return buf, false, nil
	}
}

// Write persists nblocks blocks starting at off and installs them in
// the cache as demand fills. A nil data writes each block's
// deterministic fill pattern (the replay client's payload). On a
// cluster node the write of a non-owned file goes to the ring owner —
// its store is the file's store — with write-through copies kept in
// the local cache; only if no owner is reachable does the write land
// in the local store.
func (e *Engine) Write(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	_, err := e.WriteDurable(f, off, nblocks, data)
	return err
}

// WriteDurable is Write, additionally reporting whether the blocks
// were replicated: durably installed on two distinct nodes' stores
// (owner plus its R=2 successor), so the write survives either one's
// death. The binary server acks exactly this bit as FlagReplicated,
// and the chaos harness's no-lost-acked-write invariant audits every
// write acked with it. Single-node engines and replica-less tiers
// always report false.
func (e *Engine) WriteDurable(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (replicated bool, err error) {
	if err := e.checkWrite(f, off, nblocks, data); err != nil {
		return false, err
	}
	if e.remote != nil && !e.remote.Owned(f) {
		ok, replicated, err := e.remote.ForwardWrite(f, off, nblocks, data)
		if ok {
			if err != nil {
				return false, err // the owner itself refused: propagate
			}
			e.m.forwardedWrites.Add(1)
			e.m.writes.Add(1)
			e.installWriteThrough(f, off, nblocks, data)
			return replicated, nil
		}
		e.m.remoteFallbacks.Add(1)
	}
	return e.writeLocal(f, off, nblocks, data)
}

// PeerWrite is Write for a request forwarded by a cluster peer:
// strictly local, never re-forwarded, and fed to this node's driver
// (the owner models peers' writes as part of the access stream).
func (e *Engine) PeerWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	_, err := e.PeerWriteDurable(f, off, nblocks, data)
	return err
}

// PeerWriteDurable is PeerWrite with WriteDurable's replicated
// report; the forwarding node relays the bit to its own client.
func (e *Engine) PeerWriteDurable(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (replicated bool, err error) {
	if err := e.checkWrite(f, off, nblocks, data); err != nil {
		return false, err
	}
	e.m.peerWrites.Add(1)
	return e.writeLocal(f, off, nblocks, data)
}

// ReplicaWrite installs nblocks blocks as the file's replica copy:
// store write-through plus cache install, nothing else — no driver
// feed (only the owner models the file's access stream), no onward
// replication, no forwarding. It serves the wire's
// FlagPeer|FlagReplica writes: the owner's synchronous R=2 push and
// the rebalancing handoff both land here.
func (e *Engine) ReplicaWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	if err := e.checkWrite(f, off, nblocks, data); err != nil {
		return err
	}
	if err := e.installSpan(f, off, nblocks, data); err != nil {
		return err
	}
	e.m.replicaInstalls.Add(uint64(nblocks))
	return nil
}

// RepairInstall persists blocks that a replica served (the owner
// being unreachable) into the local store — read-repair: with the
// owner down, the fetched data was one node death away from the disk
// path, and the reader already paid for the bytes, so writing them
// through restores two-copy redundancy for free. The cache install
// happens on the normal remote-read path; this adds only the store
// copy. srcs is one pre-filled slice per block.
func (e *Engine) RepairInstall(f blockdev.FileID, off blockdev.BlockNo, srcs [][]byte) {
	for i, src := range srcs {
		b := blockdev.BlockID{File: f, Block: off + blockdev.BlockNo(i)}
		if err := e.store.WriteBlock(b, src); err != nil {
			return
		}
		e.m.storeWrites.Add(1)
	}
	e.m.readRepairs.Add(uint64(len(srcs)))
}

func (e *Engine) checkWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	if nblocks <= 0 || off < 0 {
		return fmt.Errorf("lapcache: invalid write %d:[%d,+%d]", f, off, nblocks)
	}
	if data != nil && len(data) != int(nblocks)*e.cfg.BlockSize {
		return fmt.Errorf("lapcache: write payload is %d bytes, want %d",
			len(data), int(nblocks)*e.cfg.BlockSize)
	}
	return nil
}

// installWriteThrough caches local copies of blocks whose authoritative
// write landed on the owner, so this node's next reads of them are
// local hits rather than forwards.
func (e *Engine) installWriteThrough(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) {
	for i := int32(0); i < nblocks; i++ {
		b := blockdev.BlockID{File: f, Block: off + blockdev.BlockNo(i)}
		buf := e.pool.Get()
		if data != nil {
			copy(buf.Bytes(), data[int(i)*e.cfg.BlockSize:int(i+1)*e.cfg.BlockSize])
		} else {
			FillPattern(b, buf.Bytes())
		}
		e.m.prefetchWasted.Add(uint64(e.cache.Put(b, buf, false)))
	}
}

// writeLocal is the local write body: store write-through plus cache
// install, a best-effort replica push when the tier replicates, then
// the driver sees the request. replicated reports the push succeeded
// — the blocks now live on two distinct nodes' stores.
func (e *Engine) writeLocal(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (replicated bool, err error) {
	if err := e.installSpan(f, off, nblocks, data); err != nil {
		return false, err
	}
	e.m.writes.Add(1)
	// Synchronous R=2: the successor's copy is what turns this node's
	// death into a remote memory hit instead of a disk read. The push
	// rides inside the write's latency (durability before the ack),
	// and a failed push degrades the ack to replicated=false rather
	// than failing the write — replication is a promise about
	// redundancy, never an availability tax.
	if e.remote != nil && e.remote.ReplicateWrite(f, off, nblocks, data) {
		replicated = true
		e.m.replicatedWrites.Add(1)
	}
	// The write is part of the file's access stream: the predictors
	// model (offset-interval, size) pairs of all requests. A write
	// never waits on prefetched data, so it counts as satisfied.
	e.feedDriver(f, core.Request{Offset: off, Size: nblocks}, true)
	return replicated, nil
}

// installSpan is the shared write body: one store write-through and
// cache install per block (nil data = fill pattern).
func (e *Engine) installSpan(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) error {
	for i := int32(0); i < nblocks; i++ {
		b := blockdev.BlockID{File: f, Block: off + blockdev.BlockNo(i)}
		buf := e.pool.Get()
		if data != nil {
			copy(buf.Bytes(), data[int(i)*e.cfg.BlockSize:int(i+1)*e.cfg.BlockSize])
		} else {
			FillPattern(b, buf.Bytes())
		}
		if err := e.store.WriteBlock(b, buf.Bytes()); err != nil {
			buf.Release()
			return err
		}
		e.m.storeWrites.Add(1)
		// The cache takes the reference.
		e.m.prefetchWasted.Add(uint64(e.cache.Put(b, buf, false)))
	}
	return nil
}

// CloseFile stops f's prefetch chain until its next request, as the
// simulator does on trace close steps. The learned model is kept. On
// a cluster node the close of a non-owned file is relayed to the ring
// owner — the only node with a chain to park — best-effort: a dead
// owner has nothing running for the file anyway.
func (e *Engine) CloseFile(f blockdev.FileID) {
	if e.remote != nil && !e.remote.Owned(f) {
		e.remote.ForwardClose(f) //nolint:errcheck // best-effort
		return
	}
	e.closeLocal(f)
}

// PeerCloseFile is CloseFile for a peer-forwarded close: strictly
// local, never re-forwarded.
func (e *Engine) PeerCloseFile(f blockdev.FileID) { e.closeLocal(f) }

func (e *Engine) closeLocal(f blockdev.FileID) {
	fl := e.fileState(f)
	fl.mu.Lock()
	if d := e.driverLocked(f, fl); d != nil {
		d.StopChain()
	}
	fl.mu.Unlock()
}

// feedDriver runs one user request through f's driver under the
// per-file mutex.
func (e *Engine) feedDriver(f blockdev.FileID, r core.Request, satisfied bool) {
	if !e.cfg.Alg.Prefetches() {
		// No-prefetch algorithms never have a driver to feed
		// (driverLocked returns nil unconditionally); skip the
		// fileState lookup and per-file lock on the hot path.
		return
	}
	fl := e.fileState(f)
	fl.mu.Lock()
	if d := e.driverLocked(f, fl); d != nil {
		fl.tick++
		d.OnUserRequest(r, fl.tick, satisfied)
	}
	fl.mu.Unlock()
}

// Preload stages nblocks blocks of f directly into the cache, bearing
// their deterministic fill pattern, without touching the store or the
// predictor. prefetched arms the speculative flag, letting benchmarks
// and warm-start tooling set up hit and prefetched-hit states exactly.
func (e *Engine) Preload(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, prefetched bool) {
	for i := int32(0); i < nblocks; i++ {
		b := blockdev.BlockID{File: f, Block: off + blockdev.BlockNo(i)}
		buf := e.pool.Get()
		FillPattern(b, buf.Bytes())
		e.cache.Preinstall(b, buf, prefetched)
	}
}

// Snapshot freezes the engine's counters.
func (e *Engine) Snapshot() Snapshot {
	bufAllocs, bufRecycles := e.pool.Stats()
	s := Snapshot{
		BufAllocs:            bufAllocs,
		BufRecycles:          bufRecycles,
		BufLive:              e.pool.Live(),
		DemandHits:           e.m.demandHits.Load(),
		DemandMisses:         e.m.demandMisses.Load(),
		Writes:               e.m.writes.Load(),
		PrefetchIssued:       e.m.prefetchIssued.Load(),
		PrefetchFallback:     e.m.prefetchFallback.Load(),
		PrefetchCompleted:    e.m.prefetchCompleted.Load(),
		PrefetchCancelled:    e.m.prefetchCancelled.Load(),
		PrefetchDropped:      e.m.prefetchDropped.Load(),
		PrefetchDupSkipped:   e.m.prefetchDupSkip.Load(),
		PrefetchTimely:       e.m.prefetchTimely.Load(),
		PrefetchLate:         e.m.prefetchLate.Load(),
		PrefetchWasted:       e.m.prefetchWasted.Load(),
		PrefetchUnused:       e.cache.UnusedPrefetched(),
		StoreReads:           e.m.storeReads.Load(),
		StoreWrites:          e.m.storeWrites.Load(),
		RemoteReads:          e.m.remoteReads.Load(),
		RemoteHits:           e.m.remoteHits.Load(),
		RemoteMisses:         e.m.remoteMisses.Load(),
		RemoteFallbacks:      e.m.remoteFallbacks.Load(),
		ForwardedWrites:      e.m.forwardedWrites.Load(),
		PeerReadsServed:      e.m.peerReads.Load(),
		PeerWritesServed:     e.m.peerWrites.Load(),
		ReplicatedWrites:     e.m.replicatedWrites.Load(),
		ReplicaInstalls:      e.m.replicaInstalls.Load(),
		ReadRepairs:          e.m.readRepairs.Load(),
		MaxFileOutstandingHW: e.ledger.MaxHighWater(),
		LinearViolations:     e.ledger.Violations(),
		CachedBlocks:         e.cache.Len(),
	}
	if agg, ok := e.DegreeStats(); ok {
		s.DegreeCap = agg.Cap
		s.MaxDegree = agg.Degree
		s.DegreeWidens = agg.Widens
		s.DegreeClamps = agg.Clamps
	}
	return s
}

// Ledger exposes the linearity ledger (tests assert on high-water
// marks through it).
func (e *Engine) Ledger() *Ledger { return e.ledger }

// DegreeCap returns the largest per-file outstanding-prefetch count
// the engine's policy can ever allow (0 = unlimited). Under the
// paper's linear configurations it is exactly 1; auditors check
// ledger high-water marks against it.
func (e *Engine) DegreeCap() int { return e.cfg.Alg.DegreeCap() }

// DegreeStats aggregates the adaptive controllers across every file
// the engine has touched. adaptive reports whether the engine runs
// the feedback policy at all; a static engine returns zeros.
func (e *Engine) DegreeStats() (agg core.AdaptiveStats, adaptive bool) {
	if !e.adaptive {
		return core.AdaptiveStats{}, false
	}
	agg.Degree = 1 // every controller starts linear
	e.filesMu.RLock()
	defer e.filesMu.RUnlock()
	for _, fl := range e.files {
		a, ok := fl.degree.(*core.AdaptiveFDP)
		if !ok {
			continue
		}
		s := a.Stats()
		if s.Degree > agg.Degree {
			agg.Degree = s.Degree
		}
		if s.Cap > agg.Cap {
			agg.Cap = s.Cap
		}
		agg.Evals += s.Evals
		agg.Widens += s.Widens
		agg.Narrows += s.Narrows
		agg.Clamps += s.Clamps
		agg.Backpressure += s.Backpressure
		agg.Timely += s.Timely
		agg.Late += s.Late
		agg.Wasted += s.Wasted
		agg.Unused += s.Unused
	}
	return agg, true
}

// Shutdown stops the worker pool. Queued prefetch operations are
// abandoned; in-progress ones finish first. Idempotent.
func (e *Engine) Shutdown() {
	e.stop.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// CachedBlockIDs snapshots the identity of every cached block. The
// rebalancing handoff iterates it after a ring move to find blocks
// whose arcs now belong to another node; the snapshot is taken shard
// by shard under the cache locks, the walk happens outside them.
func (e *Engine) CachedBlockIDs() []blockdev.BlockID {
	return e.cache.BlockIDs()
}

// ReadBlockLocal copies block b into dst from the local cache or — if
// it was evicted since the caller snapshotted CachedBlockIDs — the
// local backing store. Strictly local, no driver feed: the handoff
// path moves bytes, it is not part of any file's access stream.
func (e *Engine) ReadBlockLocal(b blockdev.BlockID, dst []byte) error {
	if buf, _, ok := e.cache.Get(b); ok {
		copy(dst, buf.Bytes())
		buf.Release()
		return nil
	}
	return e.store.ReadBlock(b, dst)
}

// DrainCache releases every cached block back to the buffer pool and
// returns how many were dropped. Call it only after Shutdown (and
// after every server fronting the engine has closed): with the cache
// emptied and no requests in flight, Pool.Live()==0 — any other value
// is a leaked or double-held buffer. The chaos harness asserts exactly
// that after each run.
func (e *Engine) DrainCache() int { return e.cache.Clear() }

// BufLive reports the buffer pool's live count (see blockbuf.Pool.Live).
func (e *Engine) BufLive() int64 { return e.pool.Live() }

// SetPoisonBufs switches the engine's buffer pool into poison mode:
// released buffers are overwritten and verified on recycle, catching
// writes through stale references (see blockbuf.Pool.SetPoison).
func (e *Engine) SetPoisonBufs(on bool) { e.pool.SetPoison(on) }

// worker drains the prefetch queue.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case op := <-e.pfq:
			e.runPrefetch(op)
		}
	}
}

// runPrefetch dispatches one speculative fetch: cancellation check,
// singleflight dedup against demand misses and other prefetches, store
// read, cache install, completion callback.
func (e *Engine) runPrefetch(op prefetchOp) {
	op.fl.mu.Lock()
	cancelled := op.cancelled()
	op.fl.mu.Unlock()
	if cancelled {
		// The chain this operation belonged to was restarted or
		// stopped before dispatch; its driver already reset the
		// outstanding count, so done must not fire.
		e.m.prefetchCancelled.Add(1)
		return
	}

	e.flightMu.Lock()
	if e.cache.Contains(op.b) || e.inflight[op.b] != nil {
		// Someone else — a demand miss or an earlier prefetch — is
		// already producing this block (singleflight).
		e.flightMu.Unlock()
		e.m.prefetchDupSkip.Add(1)
		e.complete(op)
		return
	}
	fo := e.newFetchOp(true)
	e.inflight[op.b] = fo
	e.flightMu.Unlock()

	buf := e.pool.Get()
	err := e.store.ReadBlock(op.b, buf.Bytes())
	e.m.storeReads.Add(1)
	if err == nil {
		// The cache takes the worker's only reference.
		e.m.prefetchWasted.Add(uint64(e.cache.Put(op.b, buf, true)))
	} else {
		buf.Release()
	}
	fo.err = err
	e.flightMu.Lock()
	delete(e.inflight, op.b)
	e.flightMu.Unlock()
	fo.wg.Done()
	e.releaseFetchOp(fo)
	e.m.prefetchCompleted.Add(1)
	e.complete(op)
}

// complete fires a prefetch operation's driver callback under its
// file's mutex; the driver decrements outstanding and pumps the chain.
func (e *Engine) complete(op prefetchOp) {
	op.fl.mu.Lock()
	op.done()
	op.fl.mu.Unlock()
}

// runtimeEnv adapts the engine to core.Env for one file's driver.
// Every method is called with the file's mutex held (the driver only
// runs under it).
type runtimeEnv struct {
	e  *Engine
	fl *fileState
}

// Cached reports whether the block is resident or already being
// fetched — either way the driver must not issue it again.
func (env *runtimeEnv) Cached(b blockdev.BlockID) bool {
	if env.e.cache.Contains(b) {
		return true
	}
	env.e.flightMu.Lock()
	_, busy := env.e.inflight[b]
	env.e.flightMu.Unlock()
	return busy
}

// Prefetch enqueues a speculative fetch, refusing when the bounded
// queue is full (backpressure) or the engine is shutting down.
func (env *runtimeEnv) Prefetch(b blockdev.BlockID, fallback bool, cancelled func() bool, done func()) bool {
	select {
	case <-env.e.quit:
		return false
	default:
	}
	op := prefetchOp{b: b, fl: env.fl, cancelled: cancelled, done: done}
	select {
	case env.e.pfq <- op:
		env.e.m.prefetchIssued.Add(1)
		if fallback {
			env.e.m.prefetchFallback.Add(1)
		}
		return true
	default:
		env.e.m.prefetchDropped.Add(1)
		return false
	}
}
