package lapcache

import (
	"fmt"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/lrulist"
)

// centry is one cached block. It lives on exactly one shard's LRU
// list; the intrusive links come from the same package the simulator's
// cooperative cache uses.
type centry struct {
	id   blockdev.BlockID
	data []byte
	// prefetched marks a block brought in speculatively and not yet
	// touched by any user request — the runtime image of
	// cachesim.Copy.Prefetched, and the flag behind the timely/wasted
	// classification.
	prefetched bool
	links      lrulist.Links[centry]
}

// cacheShard is one mutex-striped slice of the block cache.
type cacheShard struct {
	mu     sync.Mutex
	blocks map[blockdev.BlockID]*centry
	lru    lrulist.List[centry]
	cap    int
}

// blockCache is the engine's sharded block cache: the runtime
// counterpart of cachesim.Cache, with the global directory replaced by
// hash sharding (one copy per block machine-wide — the engine is one
// process) and the simulator's virtual-time recency replaced by list
// order under per-shard mutexes.
type blockCache struct {
	shards []cacheShard
	mask   uint32
}

// newBlockCache builds a cache of capacity blocks striped over nShards
// shards (rounded up to a power of two so shard selection is a mask).
func newBlockCache(capacity, nShards int) *blockCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("lapcache: invalid cache capacity %d", capacity))
	}
	if nShards <= 0 {
		nShards = 1
	}
	pow := 1
	for pow < nShards {
		pow <<= 1
	}
	if pow > capacity {
		// Never let rounding strand a shard with zero capacity.
		pow = 1
		for pow*2 <= capacity && pow*2 <= nShards {
			pow <<= 1
		}
	}
	c := &blockCache{shards: make([]cacheShard, pow), mask: uint32(pow - 1)}
	per := capacity / pow
	extra := capacity % pow
	for i := range c.shards {
		sh := &c.shards[i]
		sh.blocks = make(map[blockdev.BlockID]*centry)
		sh.lru = lrulist.New[centry](func(e *centry) *lrulist.Links[centry] { return &e.links })
		sh.cap = per
		if i < extra {
			sh.cap++
		}
	}
	return c
}

// shardFor hashes a block to its shard. File and block number both
// feed the hash so one hot file stripes across every shard.
func (c *blockCache) shardFor(b blockdev.BlockID) *cacheShard {
	h := uint32(b.File)*2654435761 ^ uint32(b.Block)*0x9e3779b9
	h ^= h >> 16
	return &c.shards[h&c.mask]
}

// Get returns the cached data for b, touching recency. wasPrefetched
// reports that this access is the first user touch of a speculative
// block — a timely prefetch; the flag is cleared, as in the
// simulator's cache.
func (c *blockCache) Get(b blockdev.BlockID) (data []byte, wasPrefetched, ok bool) {
	sh := c.shardFor(b)
	sh.mu.Lock()
	e, found := sh.blocks[b]
	if !found {
		sh.mu.Unlock()
		return nil, false, false
	}
	sh.lru.Touch(e)
	wasPrefetched = e.prefetched
	e.prefetched = false
	data = e.data
	sh.mu.Unlock()
	return data, wasPrefetched, true
}

// Contains reports whether b is cached, without touching recency (the
// prefetch driver's visibility check must not promote blocks).
func (c *blockCache) Contains(b blockdev.BlockID) bool {
	sh := c.shardFor(b)
	sh.mu.Lock()
	_, ok := sh.blocks[b]
	sh.mu.Unlock()
	return ok
}

// Put inserts (or overwrites) b, evicting from the shard's LRU end as
// needed. It returns how many evicted blocks were speculative and
// never touched — wasted prefetches. Inserting over an existing entry
// refreshes recency and, like the simulator's insert-merge, clears the
// prefetched flag only when the new copy is a demand fill.
func (c *blockCache) Put(b blockdev.BlockID, data []byte, prefetched bool) (wastedEvictions int) {
	sh := c.shardFor(b)
	sh.mu.Lock()
	if e, ok := sh.blocks[b]; ok {
		e.data = data
		if !prefetched {
			e.prefetched = false
		}
		sh.lru.Touch(e)
		sh.mu.Unlock()
		return 0
	}
	for sh.lru.Len() >= sh.cap {
		victim := sh.lru.Front()
		if victim == nil {
			break
		}
		sh.lru.Remove(victim)
		delete(sh.blocks, victim.id)
		if victim.prefetched {
			wastedEvictions++
		}
	}
	e := &centry{id: b, data: data, prefetched: prefetched}
	sh.blocks[b] = e
	sh.lru.PushBack(e)
	sh.mu.Unlock()
	return wastedEvictions
}

// Preinstall inserts b with an explicit prefetched flag, overriding
// the merge rule that an overwrite never re-arms the flag; the
// engine's Preload uses it to stage cache states for benchmarks.
func (c *blockCache) Preinstall(b blockdev.BlockID, data []byte, prefetched bool) {
	sh := c.shardFor(b)
	sh.mu.Lock()
	if e, ok := sh.blocks[b]; ok {
		e.data = data
		e.prefetched = prefetched
		sh.lru.Touch(e)
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	c.Put(b, data, prefetched)
}

// Len returns the number of cached blocks.
func (c *blockCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// UnusedPrefetched counts cached blocks still flagged speculative;
// end-of-run accounting adds them to the wasted count, mirroring
// cachesim.UnusedPrefetchedCopies.
func (c *blockCache) UnusedPrefetched() uint64 {
	var n uint64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.blocks {
			if e.prefetched {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
