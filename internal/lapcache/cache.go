package lapcache

import (
	"fmt"
	"sync"

	"repro/internal/blockbuf"
	"repro/internal/blockdev"
	"repro/internal/lrulist"
)

// centry is one cached block. It lives on exactly one shard's LRU
// list; the intrusive links come from the same package the simulator's
// cooperative cache uses. The cache holds exactly one reference to
// buf for as long as the entry exists.
type centry struct {
	id  blockdev.BlockID
	buf *blockbuf.Buf
	// prefetched marks a block brought in speculatively and not yet
	// touched by any user request — the runtime image of
	// cachesim.Copy.Prefetched, and the flag behind the timely/wasted
	// classification.
	prefetched bool
	links      lrulist.Links[centry]
}

// cacheShard is one mutex-striped slice of the block cache.
type cacheShard struct {
	mu     sync.Mutex
	blocks map[blockdev.BlockID]*centry
	lru    lrulist.List[centry]
	cap    int
}

// blockCache is the engine's sharded block cache: the runtime
// counterpart of cachesim.Cache, with the global directory replaced by
// hash sharding (one copy per block machine-wide — the engine is one
// process) and the simulator's virtual-time recency replaced by list
// order under per-shard mutexes.
//
// Buffer ownership: Put and Preinstall take ownership of one
// reference to the buffer they are handed (eviction and overwrite
// release it); Get hands the caller a freshly retained reference the
// caller must Release.
type blockCache struct {
	shards []cacheShard
	mask   uint32
	// entries recycles centry shells between eviction and insertion, so
	// a steady-state miss (evict one, insert one) allocates nothing.
	entries sync.Pool
	// onWasted, if set, is told the owning file of every wasted
	// eviction (a speculative block dropped untouched) — the per-file
	// waste signal the adaptive degree controller feeds on. Put's
	// return value can't carry this: victims routinely belong to other
	// files than the inserted block. Called outside all shard locks.
	onWasted func(f blockdev.FileID)
}

// newBlockCache builds a cache of capacity blocks striped over nShards
// shards (rounded up to a power of two so shard selection is a mask).
func newBlockCache(capacity, nShards int) *blockCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("lapcache: invalid cache capacity %d", capacity))
	}
	if nShards <= 0 {
		nShards = 1
	}
	pow := 1
	for pow < nShards {
		pow <<= 1
	}
	if pow > capacity {
		// Never let rounding strand a shard with zero capacity.
		pow = 1
		for pow*2 <= capacity && pow*2 <= nShards {
			pow <<= 1
		}
	}
	c := &blockCache{shards: make([]cacheShard, pow), mask: uint32(pow - 1)}
	per := capacity / pow
	extra := capacity % pow
	for i := range c.shards {
		sh := &c.shards[i]
		sh.blocks = make(map[blockdev.BlockID]*centry)
		sh.lru = lrulist.New[centry](func(e *centry) *lrulist.Links[centry] { return &e.links })
		sh.cap = per
		if i < extra {
			sh.cap++
		}
	}
	return c
}

// shardFor hashes a block to its shard. File and block number both
// feed the hash so one hot file stripes across every shard.
func (c *blockCache) shardFor(b blockdev.BlockID) *cacheShard {
	h := uint32(b.File)*2654435761 ^ uint32(b.Block)*0x9e3779b9
	h ^= h >> 16
	return &c.shards[h&c.mask]
}

// Get returns a retained reference to the cached buffer for b,
// touching recency; the caller must Release it. wasPrefetched reports
// that this access is the first user touch of a speculative block — a
// timely prefetch; the flag is cleared, as in the simulator's cache.
func (c *blockCache) Get(b blockdev.BlockID) (buf *blockbuf.Buf, wasPrefetched, ok bool) {
	sh := c.shardFor(b)
	sh.mu.Lock()
	e, found := sh.blocks[b]
	if !found {
		sh.mu.Unlock()
		return nil, false, false
	}
	sh.lru.Touch(e)
	wasPrefetched = e.prefetched
	e.prefetched = false
	// Retain under the shard lock: the entry's own reference keeps the
	// count >= 1 here, so the new reference is race-free against a
	// concurrent eviction's Release.
	buf = e.buf.Retain()
	sh.mu.Unlock()
	return buf, wasPrefetched, true
}

// Contains reports whether b is cached, without touching recency (the
// prefetch driver's visibility check must not promote blocks).
func (c *blockCache) Contains(b blockdev.BlockID) bool {
	sh := c.shardFor(b)
	sh.mu.Lock()
	_, ok := sh.blocks[b]
	sh.mu.Unlock()
	return ok
}

// Put inserts (or overwrites) b, taking ownership of one reference to
// buf and evicting from the shard's LRU end as needed (each victim's
// reference is released). It returns how many evicted blocks were
// speculative and never touched — wasted prefetches. Inserting over an
// existing entry releases the displaced buffer, refreshes recency and,
// like the simulator's insert-merge, clears the prefetched flag only
// when the new copy is a demand fill.
func (c *blockCache) Put(b blockdev.BlockID, buf *blockbuf.Buf, prefetched bool) (wastedEvictions int) {
	sh := c.shardFor(b)
	sh.mu.Lock()
	if e, ok := sh.blocks[b]; ok {
		old := e.buf
		e.buf = buf
		if !prefetched {
			e.prefetched = false
		}
		sh.lru.Touch(e)
		sh.mu.Unlock()
		old.Release()
		return 0
	}
	// One insert evicts at most one block in steady state; the stack
	// array keeps the common case allocation-free (append spills to the
	// heap only in the never-expected many-victim case).
	var freedArr [4]*blockbuf.Buf
	freed := freedArr[:0]
	var wastedArr [4]blockdev.FileID
	wasted := wastedArr[:0]
	for sh.lru.Len() >= sh.cap {
		victim := sh.lru.Front()
		if victim == nil {
			break
		}
		sh.lru.Remove(victim) // clears the intrusive links
		delete(sh.blocks, victim.id)
		if victim.prefetched {
			wastedEvictions++
			if c.onWasted != nil {
				wasted = append(wasted, victim.id.File)
			}
		}
		freed = append(freed, victim.buf)
		victim.buf = nil
		c.entries.Put(victim)
	}
	e, _ := c.entries.Get().(*centry)
	if e == nil {
		e = &centry{}
	}
	e.id, e.buf, e.prefetched = b, buf, prefetched
	sh.blocks[b] = e
	sh.lru.PushBack(e)
	sh.mu.Unlock()
	// Release outside the shard lock: a final Release pushes into the
	// buffer pool, which there is no reason to do under the stripe.
	for _, f := range freed {
		f.Release()
	}
	for _, f := range wasted {
		c.onWasted(f)
	}
	return wastedEvictions
}

// Preinstall inserts b with an explicit prefetched flag, overriding
// the merge rule that an overwrite never re-arms the flag; the
// engine's Preload uses it to stage cache states for benchmarks. Like
// Put it takes ownership of one reference to buf.
func (c *blockCache) Preinstall(b blockdev.BlockID, buf *blockbuf.Buf, prefetched bool) {
	sh := c.shardFor(b)
	sh.mu.Lock()
	if e, ok := sh.blocks[b]; ok {
		old := e.buf
		e.buf = buf
		e.prefetched = prefetched
		sh.lru.Touch(e)
		sh.mu.Unlock()
		old.Release()
		return
	}
	sh.mu.Unlock()
	c.Put(b, buf, prefetched)
}

// Len returns the number of cached blocks.
func (c *blockCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Clear drops every cached block, releasing the cache's reference to
// each buffer, and returns how many entries were dropped. It is the
// teardown half of leak accounting: after Shutdown+Clear the buffer
// pool's Live count should equal exactly the references still held by
// in-flight callers (zero once they finish).
func (c *blockCache) Clear() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var freed []*blockbuf.Buf
		for e := sh.lru.Front(); e != nil; e = sh.lru.Front() {
			sh.lru.Remove(e)
			delete(sh.blocks, e.id)
			freed = append(freed, e.buf)
			e.buf = nil
			c.entries.Put(e)
			n++
		}
		sh.mu.Unlock()
		for _, f := range freed {
			f.Release()
		}
	}
	return n
}

// BlockIDs snapshots every cached block's identity, shard by shard.
// The snapshot is taken under each shard's lock in turn, so it is a
// consistent picture per shard but not across shards — fine for the
// handoff scan, which tolerates blocks appearing or evicting while it
// walks.
func (c *blockCache) BlockIDs() []blockdev.BlockID {
	out := make([]blockdev.BlockID, 0, c.Len())
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for id := range sh.blocks {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	return out
}

// UnusedPrefetched counts cached blocks still flagged speculative;
// end-of-run accounting adds them to the wasted count, mirroring
// cachesim.UnusedPrefetchedCopies.
func (c *blockCache) UnusedPrefetched() uint64 {
	var n uint64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.blocks {
			if e.prefetched {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
