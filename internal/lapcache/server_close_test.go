package lapcache

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// waitClose polls the server's close ledger until reason reaches want
// or the deadline passes.
func waitClose(t *testing.T, s *Server, reason CloseReason, want uint64) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if got := s.CloseCounts()[reason]; got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("close reason %q never reached %d; ledger: %v", reason, want, s.CloseCounts())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertNoClose fails if the server recorded any of the given reasons.
func assertNoClose(t *testing.T, s *Server, reasons ...CloseReason) {
	t.Helper()
	counts := s.CloseCounts()
	for _, r := range reasons {
		if counts[r] != 0 {
			t.Errorf("close reason %q recorded %d times; ledger: %v", r, counts[r], counts)
		}
	}
}

// TestCloseReasonEOF: a client that finishes its business and hangs up
// cleanly is an EOF — never an idle-timeout, never a mid-frame tear.
func TestCloseReasonEOF(t *testing.T) {
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 16,
	}, func(s *Server) { s.IdleTimeout = time.Second })

	c := dialJSON(t, addr)
	if resp := c.do(t, &WireRequest{Op: "ping"}); !resp.OK {
		t.Fatalf("ping: %s", resp.Err)
	}
	c.conn.Close()

	waitClose(t, srv, CloseEOF, 1)
	assertNoClose(t, srv, CloseIdle, CloseMidFrame, CloseProtocol, CloseTransport)
}

// TestCloseReasonMidFrameJSON: a connection that dies with half a
// request line on the wire is a mid-frame tear — the drain path must
// name it distinctly, not file it under idle or clean EOF.
func TestCloseReasonMidFrameJSON(t *testing.T) {
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 16,
	}, func(s *Server) { s.IdleTimeout = time.Second })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"op":"pi`)); err != nil { // no newline: half a frame
		t.Fatal(err)
	}
	conn.Close()

	waitClose(t, srv, CloseMidFrame, 1)
	assertNoClose(t, srv, CloseIdle, CloseEOF)
}

// TestCloseReasonMidFrameBinary: same contract after the binary
// upgrade — a partial frame header followed by disconnect is
// mid-frame, and a torn payload after a complete header is too.
func TestCloseReasonMidFrameBinary(t *testing.T) {
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 16,
	}, nil)

	upgrade := func() (net.Conn, *bufio.Reader) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		enc := json.NewEncoder(conn)
		if err := enc.Encode(&WireRequest{Op: "upgrade", Proto: wire.ProtoBinary}); err != nil {
			t.Fatal(err)
		}
		line, err := wire.ReadLine(br, wire.MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		var resp WireResponse
		if err := json.Unmarshal(line, &resp); err != nil || !resp.OK {
			t.Fatalf("upgrade refused: %v %q", err, resp.Err)
		}
		return conn, br
	}

	// Half a header, then the connection dies.
	conn, _ := upgrade()
	var hdr [wire.HeaderSize]byte
	wire.PutHeader(hdr[:], wire.Header{Op: wire.OpPing})
	if _, err := conn.Write(hdr[:wire.HeaderSize/2]); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitClose(t, srv, CloseMidFrame, 1)

	// A complete header promising a payload that never arrives.
	conn2, _ := upgrade()
	wire.PutHeader(hdr[:], wire.Header{Op: wire.OpWrite, Size: 1, PayloadLen: 128})
	if _, err := conn2.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn2.Close()
	waitClose(t, srv, CloseMidFrame, 2)

	assertNoClose(t, srv, CloseIdle, CloseTransport)
}

// TestCloseReasonIdleVsEOF: the idle reaper files its kills under
// idle-timeout, and ONLY the quiet connection lands there.
func TestCloseReasonIdleVsEOF(t *testing.T) {
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 16,
	}, func(s *Server) { s.IdleTimeout = 80 * time.Millisecond })

	quiet, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer quiet.Close()

	waitClose(t, srv, CloseIdle, 1)
	assertNoClose(t, srv, CloseMidFrame, CloseEOF, CloseTransport)
}

// TestCloseReasonShutdown: connections alive when the server drains
// are recorded as shutdown, not blamed on the client.
func TestCloseReasonShutdown(t *testing.T) {
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 16,
	}, nil)

	c := dialJSON(t, addr)
	if resp := c.do(t, &WireRequest{Op: "ping"}); !resp.OK {
		t.Fatalf("ping: %s", resp.Err)
	}
	srv.Close()
	waitClose(t, srv, CloseShutdown, 1)
	assertNoClose(t, srv, CloseMidFrame, CloseEOF, CloseIdle, CloseTransport)
}

// TestCloseReasonProtocol: a structurally invalid binary header tears
// the connection as a protocol error, distinct from transport noise.
func TestCloseReasonProtocol(t *testing.T) {
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 16,
	}, nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	if err := enc.Encode(&WireRequest{Op: "upgrade", Proto: wire.ProtoBinary}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadLine(br, wire.MaxFrame); err != nil {
		t.Fatal(err)
	}
	var hdr [wire.HeaderSize]byte
	wire.PutHeader(hdr[:], wire.Header{Op: wire.OpPing})
	hdr[2] ^= 0x80 // wrong version: ParseHeader must reject
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	waitClose(t, srv, CloseProtocol, 1)
	assertNoClose(t, srv, CloseMidFrame, CloseTransport)
}
