//go:build !race

package lapcache

const raceEnabled = false
