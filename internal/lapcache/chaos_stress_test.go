package lapcache

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// TestEngineChaosStoreFaults hammers one engine from many goroutines
// while its backing store injects errors, short reads and latency
// spikes — the single-node slice of the chaos harness, runnable under
// -race. Invariants: the engine never panics (poison mode is on, so a
// double-release or use-after-release would); per-file outstanding
// prefetch high-water stays at 1; every surfaced error carries the
// injection marker; and after the cache drains, not one pooled buffer
// is still out — faults on the fill path must not leak references.
func TestEngineChaosStoreFaults(t *testing.T) {
	const (
		goroutines = 12
		readsEach  = 150
		fileBlocks = 512
		blockSize  = 64
	)
	plan := faultinject.Plan{Seed: 99, Rules: []faultinject.Rule{
		{Site: faultinject.SiteStoreRead, Kind: faultinject.KindError, P: 0.05, Count: 3},
		{Site: faultinject.SiteStoreRead, Kind: faultinject.KindPartial, P: 0.04, Count: 2},
		{Site: faultinject.SiteStoreRead, Kind: faultinject.KindDelay, P: 0.10, Count: 4, Delay: 100 * time.Microsecond},
		{Site: faultinject.SiteStoreWrite, Kind: faultinject.KindError, P: 0.05, Count: 2},
	}}
	inj, err := faultinject.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	files := map[blockdev.FileID]blockdev.BlockNo{3: fileBlocks, 4: fileBlocks, 5: fileBlocks}
	e := newTestEngine(t, Config{
		Alg:         core.SpecLnAgrISPPM1,
		BlockSize:   blockSize,
		CacheBlocks: 128, // tight: eviction churn under faults
		Shards:      8,
		Workers:     8,
		QueueLen:    64,
		FileBlocks:  files,
		// Not strict: injected failures must surface as errors and
		// invariant counters, never as panics that kill the run.
		StrictLinear: false,
		PoisonBufs:   true,
		Store:        inj.WrapStore(NewMemStore(blockSize, 0), "store@solo"),
	})

	var injectedErrs, cleanReads atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := blockdev.FileID(3 + g%3)
			for i := 0; i < readsEach; i++ {
				off := blockdev.BlockNo((g*41 + i*3) % (fileBlocks - 4))
				if i%9 == 0 {
					if err := e.Write(f, off, 1, nil); err != nil {
						if !strings.Contains(err.Error(), "faultinject") {
							t.Errorf("write error without injection marker: %v", err)
						}
						injectedErrs.Add(1)
					}
					continue
				}
				_, _, err := e.Read(f, off, int32(1+i%3))
				if err != nil {
					if !strings.Contains(err.Error(), "faultinject") {
						t.Errorf("read error without injection marker: %v", err)
					}
					injectedErrs.Add(1)
					continue
				}
				cleanReads.Add(1)
			}
		}(g)
	}
	wg.Wait()

	// Let in-flight prefetches settle before auditing the pool.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := e.Snapshot()
		if s.PrefetchCompleted+s.PrefetchCancelled+s.PrefetchDupSkipped >= s.PrefetchIssued {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if inj.Total() == 0 {
		t.Fatal("the plan injected nothing; the test exercised no fault paths")
	}
	if cleanReads.Load() == 0 {
		t.Fatal("every read failed; budgets should have healed the store")
	}
	snap := e.Snapshot()
	if snap.MaxFileOutstandingHW > 1 {
		t.Errorf("prefetch high-water %d under faults, want <=1", snap.MaxFileOutstandingHW)
	}
	drained := e.DrainCache()
	if drained == 0 {
		t.Error("cache drained zero entries; the run cached nothing")
	}
	if live := e.BufLive(); live != 0 {
		t.Errorf("%d buffers still live after drain: the fault paths leak references", live)
	}
	t.Logf("chaos stress: %d injected faults, %d clean reads, %d injected errors surfaced, %d entries drained",
		inj.Total(), cleanReads.Load(), injectedErrs.Load(), drained)
}
