package lapcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/blockdev"
)

// BackingStore is the slow medium behind the cache — the runtime
// counterpart of the simulator's disk array. Implementations must be
// safe for concurrent use: the engine issues demand reads from request
// goroutines and prefetch reads from its worker pool at the same time.
type BackingStore interface {
	// ReadBlock fills buf (exactly one block) with the contents of b.
	ReadBlock(b blockdev.BlockID, buf []byte) error
	// WriteBlock persists one block of data for b.
	WriteBlock(b blockdev.BlockID, data []byte) error
}

// MemStore is an in-memory BackingStore with optional injected
// latency, for tests and benchmarks. Blocks never written read back as
// a deterministic pattern derived from their identity, so any trace
// can be replayed without preloading data.
type MemStore struct {
	blockSize int
	latency   time.Duration

	mu     sync.RWMutex
	blocks map[blockdev.BlockID][]byte
}

// NewMemStore returns a MemStore serving blocks of blockSize bytes,
// sleeping latency on every read (0 for none) to stand in for disk
// service time.
func NewMemStore(blockSize int, latency time.Duration) *MemStore {
	if blockSize <= 0 {
		panic(fmt.Sprintf("lapcache: invalid block size %d", blockSize))
	}
	return &MemStore{
		blockSize: blockSize,
		latency:   latency,
		blocks:    make(map[blockdev.BlockID][]byte),
	}
}

// FillPattern writes the deterministic content of block b into buf:
// a repeating stamp of the file ID and block number, so end-to-end
// tests can verify data integrity without storing anything.
func FillPattern(b blockdev.BlockID, buf []byte) {
	stamp := [8]byte{
		byte(b.File), byte(b.File >> 8), byte(b.File >> 16), byte(b.File >> 24),
		byte(b.Block), byte(b.Block >> 8), byte(b.Block >> 16), byte(b.Block >> 24),
	}
	for i := range buf {
		buf[i] = stamp[i%len(stamp)]
	}
}

// ReadBlock implements BackingStore.
func (s *MemStore) ReadBlock(b blockdev.BlockID, buf []byte) error {
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	s.mu.RLock()
	data, ok := s.blocks[b]
	s.mu.RUnlock()
	if ok {
		copy(buf, data)
		return nil
	}
	FillPattern(b, buf)
	return nil
}

// Has reports whether b was ever explicitly written (as opposed to
// reading back as its synthesized fill pattern). The chaos harness's
// no-lost-acked-write invariant probes it: ReadBlock cannot tell a
// persisted block from a synthesized one, which is exactly the
// blindness that would let a lost write escape the data oracle.
func (s *MemStore) Has(b blockdev.BlockID) bool {
	s.mu.RLock()
	_, ok := s.blocks[b]
	s.mu.RUnlock()
	return ok
}

// WriteBlock implements BackingStore.
func (s *MemStore) WriteBlock(b blockdev.BlockID, data []byte) error {
	cp := make([]byte, s.blockSize)
	copy(cp, data)
	s.mu.Lock()
	s.blocks[b] = cp
	s.mu.Unlock()
	return nil
}

// FileStore is a BackingStore over real files: one file per FileID
// under a directory, blocks at their natural offsets. Reads past a
// file's current length return zeroes (sparse semantics), so a fresh
// directory serves any trace.
type FileStore struct {
	dir       string
	blockSize int64

	mu    sync.Mutex
	files map[blockdev.FileID]*os.File
}

// NewFileStore returns a FileStore rooted at dir, creating it if
// needed.
func NewFileStore(dir string, blockSize int64) (*FileStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("lapcache: invalid block size %d", blockSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{
		dir:       dir,
		blockSize: blockSize,
		files:     make(map[blockdev.FileID]*os.File),
	}, nil
}

// handle returns (opening on first use) the OS file backing f.
func (s *FileStore) handle(f blockdev.FileID) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fh, ok := s.files[f]; ok {
		return fh, nil
	}
	fh, err := os.OpenFile(filepath.Join(s.dir, fmt.Sprintf("f%08d.dat", f)),
		os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s.files[f] = fh
	return fh, nil
}

// ReadBlock implements BackingStore.
func (s *FileStore) ReadBlock(b blockdev.BlockID, buf []byte) error {
	fh, err := s.handle(b.File)
	if err != nil {
		return err
	}
	n, err := fh.ReadAt(buf, int64(b.Block)*s.blockSize)
	if err != nil && n < len(buf) {
		// Short or past-EOF read: the tail is zeroes.
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
	}
	return nil
}

// WriteBlock implements BackingStore.
func (s *FileStore) WriteBlock(b blockdev.BlockID, data []byte) error {
	fh, err := s.handle(b.File)
	if err != nil {
		return err
	}
	_, err = fh.WriteAt(data, int64(b.Block)*s.blockSize)
	return err
}

// Close releases every open file handle.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, fh := range s.files {
		if err := fh.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.files, id)
	}
	return first
}
