package lapcache

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/wire"
)

// startTestServer brings up an engine + server on a loopback port.
// The lapclient package has its own end-to-end tests; these talk the
// protocols raw to pin server behaviour without the import cycle.
func startTestServer(t *testing.T, cfg Config, tune func(*Server)) (*Server, string) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = NewMemStore(cfg.BlockSize, 0)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	srv := NewServer(e)
	if tune != nil {
		tune(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		e.Shutdown()
	})
	return srv, ln.Addr().String()
}

// jsonConn speaks the raw JSON protocol for tests.
type jsonConn struct {
	conn net.Conn
	br   *bufio.Reader
	enc  *json.Encoder
}

func dialJSON(t *testing.T, addr string) *jsonConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &jsonConn{conn: conn, br: bufio.NewReader(conn), enc: json.NewEncoder(conn)}
}

func (c *jsonConn) do(t *testing.T, req *WireRequest) *WireResponse {
	t.Helper()
	if err := c.enc.Encode(req); err != nil {
		t.Fatalf("send %s: %v", req.Op, err)
	}
	line, err := wire.ReadLine(c.br, wire.MaxFrame)
	if err != nil {
		t.Fatalf("read %s response: %v", req.Op, err)
	}
	var resp WireResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("decode %s response: %v", req.Op, err)
	}
	return &resp
}

// TestServerJSONLargeWantData is the regression test for the
// bufio.Scanner 64 KiB default token cap: a 32-block read of 8 KiB
// blocks base64-encodes to a ~350 KiB response line, which the old
// scanner-based loops on both ends silently truncated. Lines are now
// bounded only by the documented wire.MaxFrame.
func TestServerJSONLargeWantData(t *testing.T) {
	const blockSize = 8192
	const nblocks = 32
	_, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: blockSize, CacheBlocks: 64,
	}, nil)
	c := dialJSON(t, addr)

	resp := c.do(t, &WireRequest{Op: "read", File: 3, Size: nblocks, WantData: true})
	if !resp.OK {
		t.Fatalf("read failed: %s", resp.Err)
	}
	if len(resp.Data) != nblocks*blockSize {
		t.Fatalf("got %d bytes, want %d", len(resp.Data), nblocks*blockSize)
	}
	want := make([]byte, blockSize)
	for i := 0; i < nblocks; i++ {
		FillPattern(blockdev.BlockID{File: 3, Block: blockdev.BlockNo(i)}, want)
		if !bytes.Equal(resp.Data[i*blockSize:(i+1)*blockSize], want) {
			t.Fatalf("block %d arrived corrupted", i)
		}
	}
}

// TestServerIdleTimeout: with -idle-timeout armed, a connection that
// goes quiet is dropped; one that keeps talking is not.
func TestServerIdleTimeout(t *testing.T) {
	_, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: 128, CacheBlocks: 16,
	}, func(s *Server) { s.IdleTimeout = 100 * time.Millisecond })

	// An active connection outlives many idle windows.
	busy := dialJSON(t, addr)
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if resp := busy.do(t, &WireRequest{Op: "ping"}); !resp.OK {
			t.Fatalf("ping on busy conn failed: %s", resp.Err)
		}
		time.Sleep(30 * time.Millisecond)
	}

	// A silent connection is closed by the server.
	idle := dialJSON(t, addr)
	if resp := idle.do(t, &WireRequest{Op: "ping"}); !resp.OK {
		t.Fatalf("ping: %s", resp.Err)
	}
	idle.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := idle.br.ReadByte(); err == nil {
		t.Fatal("idle connection still open after the timeout")
	}
}

// TestServerCloseDrainsInFlight: Close must not cut a connection out
// from under a request that is already dispatching — the response
// still reaches the client. The gateStore (engine_test.go) holds the
// demand read in the store while Close races it.
func TestServerCloseDrainsInFlight(t *testing.T) {
	const blockSize = 256
	gate := newGateStore(NewMemStore(blockSize, 0), 0)
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: blockSize, CacheBlocks: 16, Store: gate,
	}, nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(&WireRequest{
		Op: "read", File: 1, Size: 1, WantData: true,
	}); err != nil {
		t.Fatalf("send: %v", err)
	}
	<-gate.started // the read is now in dispatch, parked in the store

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	// Give Close time to set the connection deadlines, then let the
	// store finish. The response must still arrive intact.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-closed:
		t.Fatal("Close returned while a request was still in flight")
	default:
	}
	gate.Release()

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := wire.ReadLine(bufio.NewReader(conn), wire.MaxFrame)
	if err != nil {
		t.Fatalf("in-flight response lost at shutdown: %v", err)
	}
	var resp WireResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp.OK || len(resp.Data) != blockSize {
		t.Fatalf("drained response wrong: ok=%v len=%d err=%q", resp.OK, len(resp.Data), resp.Err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight request drained")
	}
}

// TestServerCloseNotWedgedBySlowClient: a client that stops reading
// while a large response is mid-flush cannot hold Close hostage past
// DrainGrace.
func TestServerCloseNotWedgedBySlowClient(t *testing.T) {
	const blockSize = 8192
	srv, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: blockSize, CacheBlocks: 512,
	}, func(s *Server) { s.DrainGrace = 200 * time.Millisecond })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// A ~4 MiB base64 response: far past any socket buffer, so the
	// handler wedges in Flush when we never read a byte.
	if err := json.NewEncoder(conn).Encode(&WireRequest{
		Op: "read", File: 1, Size: 384, WantData: true,
	}); err != nil {
		t.Fatalf("send: %v", err)
	}
	time.Sleep(200 * time.Millisecond) // let the handler hit the stalled flush

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged behind a client that stopped reading")
	}
}

// TestServerBinaryUpgradeRoundTrip drives the upgrade handshake and
// framed ops raw, independent of the lapclient implementation.
func TestServerBinaryUpgradeRoundTrip(t *testing.T) {
	const blockSize = 512
	_, addr := startTestServer(t, Config{
		Alg: core.SpecNP, BlockSize: blockSize, CacheBlocks: 64,
	}, nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)

	if err := enc.Encode(&WireRequest{Op: "ping"}); err != nil {
		t.Fatalf("ping: %v", err)
	}
	line, err := wire.ReadLine(br, wire.MaxFrame)
	if err != nil {
		t.Fatalf("ping response: %v", err)
	}
	var resp WireResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("decode ping: %v", err)
	}
	if resp.ProtoMax < wire.ProtoBinary {
		t.Fatalf("ping proto_max = %d, want >= %d", resp.ProtoMax, wire.ProtoBinary)
	}

	if err := enc.Encode(&WireRequest{Op: "upgrade", Proto: wire.ProtoBinary}); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	line, err = wire.ReadLine(br, wire.MaxFrame)
	if err != nil {
		t.Fatalf("upgrade response: %v", err)
	}
	if err := json.Unmarshal(line, &resp); err != nil || !resp.OK {
		t.Fatalf("upgrade refused: %v %q", err, resp.Err)
	}

	// The connection is binary from here on.
	if err := wire.WriteFrame(conn, wire.Header{
		Op: wire.OpRead, Flags: wire.FlagWantData, Seq: 7, File: 2, Offset: 5, Size: 2,
	}, nil); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	var scratch [wire.HeaderSize]byte
	h, err := wire.ReadHeader(br, scratch[:])
	if err != nil {
		t.Fatalf("read header: %v", err)
	}
	if h.Seq != 7 || h.Flags&wire.FlagOK == 0 {
		t.Fatalf("response header = %+v", h)
	}
	payload, err := wire.ReadPayload(br, h, nil)
	if err != nil {
		t.Fatalf("read payload: %v", err)
	}
	if len(payload) != 2*blockSize {
		t.Fatalf("payload %d bytes, want %d", len(payload), 2*blockSize)
	}
	want := make([]byte, blockSize)
	FillPattern(blockdev.BlockID{File: 2, Block: 5}, want)
	if !bytes.Equal(payload[:blockSize], want) {
		t.Error("first block corrupted crossing the binary wire")
	}
	FillPattern(blockdev.BlockID{File: 2, Block: 6}, want)
	if !bytes.Equal(payload[blockSize:], want) {
		t.Error("second block corrupted crossing the binary wire")
	}
}
