package lapcache

import "repro/internal/blockdev"

// The cooperative peer tier (internal/cluster) plugs into the engine
// and the server through the two small interfaces below, rather than
// by importing the cluster package: lapclient imports lapcache for the
// wire types, cluster imports lapclient for the peer connections, so
// lapcache must stay at the bottom of that stack.
//
// The division of labour mirrors the paper's PAFS architecture. A
// consistent-hash ring assigns every file one owner, the runtime image
// of the per-file prefetch server; only the owner runs the file's
// linear-aggressive chain, so the "at most one outstanding prefetch
// per file" invariant holds across the whole cluster — the property
// §4 credits for PAFS beating serverless xFS, whose per-node
// predictors between them over-prefetch the same file. Non-owner
// nodes keep a local cache (the client cache) and forward misses to
// the owner, whose memory is an order of magnitude closer than disk.

// RemoteFetcher is the engine's hook into the peer tier. A nil
// RemoteFetcher (the default) is a single-node engine: every file is
// owned locally and nothing is forwarded. Implementations must be safe
// for concurrent use; every method is called without engine locks
// held.
type RemoteFetcher interface {
	// Owned reports whether this node owns f — runs its prefetch
	// chain and serves its backing-store reads. Pure ring arithmetic:
	// it must be cheap, deterministic, and identical on every node.
	Owned(f blockdev.FileID) bool

	// FetchSpan reads nblocks blocks of f starting at off from the
	// file's owner, landing one block per dsts slice (each pre-sized
	// to the block size). hit reports the owner served every block
	// from its memory — a remote memory hit, the cooperative-cache
	// fast path. ok=false means no live owner: the caller degrades to
	// its local store (latency, not availability). err is only
	// non-nil when ok is true: the owner itself refused the request.
	FetchSpan(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, dsts [][]byte) (hit, ok bool, err error)

	// ForwardWrite sends a write of f to its owner so the data lands
	// in the owner's store and cache. Semantics of ok and err match
	// FetchSpan: ok=false degrades the write to the local store.
	ForwardWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (ok bool, err error)

	// ForwardClose tells f's owner this node's clients are done with
	// the file for now, parking the owner-side prefetch chain.
	// Best-effort: a down owner has no chain to park.
	ForwardClose(f blockdev.FileID) (ok bool, err error)
}

// ClusterInfo is the server's read-only view of cluster membership,
// behind the "owner" wire ops and the ping self-description. nil on a
// single-node server.
type ClusterInfo interface {
	// Self returns this node's advertise address.
	Self() string
	// OwnerOf returns the advertise address of f's ring owner and
	// whether that owner is this node.
	OwnerOf(f blockdev.FileID) (addr string, self bool)
	// MemberAddrs returns every ring member's advertise address,
	// sorted.
	MemberAddrs() []string
}
