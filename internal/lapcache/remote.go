package lapcache

import "repro/internal/blockdev"

// The cooperative peer tier (internal/cluster) plugs into the engine
// and the server through the two small interfaces below, rather than
// by importing the cluster package: lapclient imports lapcache for the
// wire types, cluster imports lapclient for the peer connections, so
// lapcache must stay at the bottom of that stack.
//
// The division of labour mirrors the paper's PAFS architecture. A
// consistent-hash ring assigns every file one owner, the runtime image
// of the per-file prefetch server; only the owner runs the file's
// linear-aggressive chain, so the "at most one outstanding prefetch
// per file" invariant holds across the whole cluster — the property
// §4 credits for PAFS beating serverless xFS, whose per-node
// predictors between them over-prefetch the same file. Non-owner
// nodes keep a local cache (the client cache) and forward misses to
// the owner, whose memory is an order of magnitude closer than disk.

// RemoteFetcher is the engine's hook into the peer tier. A nil
// RemoteFetcher (the default) is a single-node engine: every file is
// owned locally and nothing is forwarded. Implementations must be safe
// for concurrent use; every method is called without engine locks
// held.
type RemoteFetcher interface {
	// Owned reports whether this node owns f — runs its prefetch
	// chain and serves its backing-store reads. Pure ring arithmetic:
	// it must be cheap, deterministic, and identical on every node.
	Owned(f blockdev.FileID) bool

	// Epoch numbers the current ownership assignment: it increments
	// whenever the answer to Owned may have changed — a membership
	// move on a dynamic ring, or a peer recovering from a fault (the
	// forward path it re-opens). The engine compares it per file to
	// decide when a cached ownership decision (driver placement, the
	// degrade-to-local verdict) must be re-probed. A static,
	// fault-free tier may return a constant.
	Epoch() uint64

	// FetchSpan reads nblocks blocks of f starting at off from the
	// file's owner — or, when the owner is unreachable and the tier
	// replicates, from the file's R=2 successor holding the replica in
	// memory — landing one block per dsts slice (each pre-sized to the
	// block size). hit reports the serving node answered every block
	// from its memory: a remote memory hit, the cooperative-cache fast
	// path. ok=false means neither owner nor replica is reachable: the
	// caller degrades to its local store (latency, not availability).
	// err is only non-nil when ok is true: the serving node itself
	// refused the request.
	FetchSpan(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, dsts [][]byte) (hit, ok bool, err error)

	// ForwardWrite sends a write of f to its owner so the data lands
	// in the owner's store and cache. replicated reports the owner's
	// durable-ack: it also installed the blocks on its R=2 successor.
	// Semantics of ok and err match FetchSpan: ok=false degrades the
	// write to the local store.
	ForwardWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (ok, replicated bool, err error)

	// ReplicateWrite pushes nblocks blocks of f (nil data = the
	// deterministic fill pattern) to the file's R=2 successor as a
	// replica install, returning whether the copy was acknowledged.
	// Best-effort and synchronous: the engine calls it after its own
	// store write, and the pair of returns decides the FlagReplicated
	// ack. A tier without replication returns false immediately.
	ReplicateWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) bool

	// ForwardClose tells f's owner this node's clients are done with
	// the file for now, parking the owner-side prefetch chain.
	// Best-effort: a down owner has no chain to park.
	ForwardClose(f blockdev.FileID) (ok bool, err error)
}

// ClusterInfo is the server's read-only view of cluster membership,
// behind the "owner" wire ops and the ping self-description. nil on a
// single-node server.
type ClusterInfo interface {
	// Self returns this node's advertise address.
	Self() string
	// OwnerOf returns the advertise address of f's ring owner and
	// whether that owner is this node.
	OwnerOf(f blockdev.FileID) (addr string, self bool)
	// MemberAddrs returns every ring member's advertise address,
	// sorted.
	MemberAddrs() []string
}
