package lapcache

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/core"
)

// fakeRemote is an in-process RemoteFetcher: files with even IDs are
// owned locally, odd IDs belong to a fictitious peer whose spans are
// served by FillPattern. A gate can hold FetchSpan open so tests can
// pile concurrent misses onto one in-flight forward.
type fakeRemote struct {
	fetchCalls atomic.Int32
	writeCalls atomic.Int32
	closeCalls atomic.Int32
	down       atomic.Bool // every forward reports no live owner

	mu      sync.Mutex
	gate    chan struct{} // non-nil: FetchSpan blocks until closed
	entered chan struct{} // signalled once per FetchSpan entry
}

func (r *fakeRemote) Owned(f blockdev.FileID) bool { return f%2 == 0 }

func (r *fakeRemote) Epoch() uint64 { return 1 }

func (r *fakeRemote) FetchSpan(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, dsts [][]byte) (hit, ok bool, err error) {
	r.fetchCalls.Add(1)
	r.mu.Lock()
	gate, entered := r.gate, r.entered
	r.mu.Unlock()
	if entered != nil {
		entered <- struct{}{}
	}
	if gate != nil {
		<-gate
	}
	if r.down.Load() {
		return false, false, nil
	}
	for i := int32(0); i < nblocks; i++ {
		FillPattern(blockdev.BlockID{File: f, Block: off + blockdev.BlockNo(i)}, dsts[i])
	}
	return true, true, nil
}

func (r *fakeRemote) ForwardWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (ok, replicated bool, err error) {
	r.writeCalls.Add(1)
	return !r.down.Load(), false, nil
}

func (r *fakeRemote) ReplicateWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) bool {
	return false
}

func (r *fakeRemote) ForwardClose(f blockdev.FileID) (bool, error) {
	r.closeCalls.Add(1)
	return !r.down.Load(), nil
}

// TestRemoteSingleflight piles concurrent demand misses for one block
// of a non-owned file onto the engine and asserts the forward path
// collapses them into a single peer RPC, with every reader getting the
// block's bytes.
func TestRemoteSingleflight(t *testing.T) {
	rem := &fakeRemote{
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 64),
	}
	e := newTestEngine(t, Config{Alg: core.SpecNP, Remote: rem, PoisonBufs: true})

	const readers = 16
	b := blockdev.BlockID{File: 7, Block: 3} // odd file: not owned
	want := make([]byte, e.BlockSize())
	FillPattern(b, want)

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bufs, _, err := e.ReadInto(nil, b.File, b.Block, 1)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(bufs[0].Bytes(), want) {
				t.Error("remote block bytes mangled")
			}
			bufs[0].Release()
		}()
	}

	<-rem.entered // one fetch is in flight; the rest must join it
	waitFor(t, "readers to pile onto the in-flight fetch", func() bool {
		e.flightMu.Lock()
		fo := e.inflight[b]
		e.flightMu.Unlock()
		return fo != nil && fo.refs.Load() >= 2
	})
	close(rem.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("ReadInto: %v", err)
	}

	if got := rem.fetchCalls.Load(); got != 1 {
		t.Errorf("FetchSpan called %d times for one block, want 1 (singleflight)", got)
	}
	s := e.Snapshot()
	if s.RemoteReads != 1 || s.RemoteHits != 1 {
		t.Errorf("remote counters: reads=%d hits=%d, want 1/1", s.RemoteReads, s.RemoteHits)
	}
	if s.StoreReads != 0 {
		t.Errorf("forwarded miss touched the local store %d times", s.StoreReads)
	}
	// The block is now cached locally: the next read must not forward.
	bufs, hit, err := e.ReadInto(nil, b.File, b.Block, 1)
	if err != nil || !hit {
		t.Fatalf("re-read: hit=%v err=%v", hit, err)
	}
	bufs[0].Release()
	if got := rem.fetchCalls.Load(); got != 1 {
		t.Errorf("cached re-read forwarded again (%d calls)", got)
	}
}

// TestRemoteSpanRun asserts a multi-block miss of a non-owned file
// travels as one span RPC, not per-block chatter — the owner's
// predictor models (offset, size) pairs and must see the real request.
func TestRemoteSpanRun(t *testing.T) {
	rem := &fakeRemote{}
	e := newTestEngine(t, Config{Alg: core.SpecNP, Remote: rem})

	bufs, _, err := e.ReadInto(nil, 9, 10, 8)
	if err != nil {
		t.Fatalf("ReadInto: %v", err)
	}
	for i, buf := range bufs {
		want := make([]byte, e.BlockSize())
		FillPattern(blockdev.BlockID{File: 9, Block: 10 + blockdev.BlockNo(i)}, want)
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("block %d bytes wrong", i)
		}
		buf.Release()
	}
	if got := rem.fetchCalls.Load(); got != 1 {
		t.Errorf("8-block span took %d RPCs, want 1", got)
	}
	if s := e.Snapshot(); s.RemoteReads != 8 {
		t.Errorf("RemoteReads = %d, want 8", s.RemoteReads)
	}
}

// TestRemoteDegradeToLocalStore kills the fake owner and asserts reads
// and writes of its files fall back to the local backing store —
// latency, not availability.
func TestRemoteDegradeToLocalStore(t *testing.T) {
	rem := &fakeRemote{}
	rem.down.Store(true)
	store := NewMemStore(512, 0)
	e := newTestEngine(t, Config{Alg: core.SpecNP, Remote: rem, Store: store})

	if err := e.Write(5, 0, 2, nil); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	bufs, _, err := e.ReadInto(nil, 5, 2, 2) // past the written blocks: store read
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	for _, buf := range bufs {
		buf.Release()
	}
	s := e.Snapshot()
	if s.RemoteFallbacks == 0 {
		t.Error("no remote fallbacks counted with the owner down")
	}
	if s.StoreReads == 0 || s.StoreWrites == 0 {
		t.Errorf("local store not used: reads=%d writes=%d", s.StoreReads, s.StoreWrites)
	}
	if s.RemoteReads != 0 || s.ForwardedWrites != 0 {
		t.Errorf("remote traffic counted against a dead owner: reads=%d writes=%d",
			s.RemoteReads, s.ForwardedWrites)
	}
}

// TestRemoteForwardWriteAndClose checks the owner-bound write path
// (forward + local write-through copies) and the best-effort close
// relay.
func TestRemoteForwardWriteAndClose(t *testing.T) {
	rem := &fakeRemote{}
	e := newTestEngine(t, Config{Alg: core.SpecNP, Remote: rem})

	if err := e.Write(3, 4, 2, nil); err != nil {
		t.Fatalf("forwarded write: %v", err)
	}
	if got := rem.writeCalls.Load(); got != 1 {
		t.Errorf("ForwardWrite called %d times, want 1", got)
	}
	s := e.Snapshot()
	if s.ForwardedWrites != 1 || s.StoreWrites != 0 {
		t.Errorf("forwarded write: forwarded=%d local=%d, want 1/0", s.ForwardedWrites, s.StoreWrites)
	}
	// Write-through copies make the blocks local hits.
	bufs, hit, err := e.ReadInto(nil, 3, 4, 2)
	if err != nil || !hit {
		t.Fatalf("read-after-forwarded-write: hit=%v err=%v", hit, err)
	}
	for _, buf := range bufs {
		buf.Release()
	}
	if got := rem.fetchCalls.Load(); got != 0 {
		t.Errorf("read after write-through forwarded anyway (%d fetches)", got)
	}

	e.CloseFile(3)
	if got := rem.closeCalls.Load(); got != 1 {
		t.Errorf("ForwardClose called %d times, want 1", got)
	}
	e.CloseFile(2) // owned: no relay
	if got := rem.closeCalls.Load(); got != 1 {
		t.Errorf("owned close relayed (%d calls)", got)
	}
}

// TestRemoteDriverGating asserts a clustered engine only creates chain
// drivers for files it owns: the per-file prefetch server exists on
// exactly one node, which is what makes linearity hold cluster-wide.
func TestRemoteDriverGating(t *testing.T) {
	rem := &fakeRemote{}
	e := newTestEngine(t, Config{Alg: core.SpecLnAgrISPPM3, Remote: rem, StrictLinear: true})

	// Driver creation is lazy: probe through the same path the demand
	// and close paths use.
	probe := func(f blockdev.FileID) *core.Driver {
		fl := e.fileState(f)
		fl.mu.Lock()
		defer fl.mu.Unlock()
		return e.driverLocked(f, fl)
	}
	if probe(4) == nil {
		t.Error("owned file got no driver")
	}
	if probe(5) != nil {
		t.Error("non-owned file got a driver: two nodes could prefetch it")
	}
}
