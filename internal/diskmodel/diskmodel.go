// Package diskmodel implements the paper's disk model (§5.1): every
// operation pays a latency that depends on the kind of operation (read
// or write seek) plus a transfer time proportional to the block size
// and the disk bandwidth. Each disk serves one operation at a time;
// user operations have strict non-preemptive priority over prefetch
// operations (§4: "Prefetching a block will never be done if other
// operations are waiting to be done on the same disk").
package diskmodel

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/machine"
	"repro/internal/sim"
)

// OpKind distinguishes the two seek latencies.
type OpKind int

// Disk operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

// String names the operation kind.
func (k OpKind) String() string {
	if k == OpRead {
		return "read"
	}
	return "write"
}

// Disk is one simulated disk.
type Disk struct {
	id  blockdev.DiskID
	cfg machine.Config
	res *sim.Resource

	reads         uint64
	writes        uint64
	prefetchReads uint64
}

// Array is the machine's set of disks plus the striping function that
// assigns blocks to disks.
type Array struct {
	cfg     machine.Config
	striper *blockdev.Striper
	disks   []*Disk
}

// NewArray builds cfg.Disks disks attached to the engine.
func NewArray(e *sim.Engine, cfg machine.Config) *Array {
	a := &Array{
		cfg:     cfg,
		striper: blockdev.NewStriper(cfg.Disks),
		disks:   make([]*Disk, cfg.Disks),
	}
	for i := range a.disks {
		a.disks[i] = &Disk{
			id:  blockdev.DiskID(i),
			cfg: cfg,
			res: sim.NewResource(e, fmt.Sprintf("disk%d", i)),
		}
	}
	return a
}

// ServiceTime returns the full service time of one block operation of
// the given kind: seek plus transfer.
func (a *Array) ServiceTime(kind OpKind) sim.Duration {
	seek := a.cfg.DiskReadSeek
	if kind == OpWrite {
		seek = a.cfg.DiskWriteSeek
	}
	return seek + sim.TransferTime(a.cfg.BlockSize, a.cfg.DiskBandwidth)
}

// DiskFor returns the disk that stores block b.
func (a *Array) DiskFor(b blockdev.BlockID) *Disk {
	return a.disks[a.striper.DiskFor(b)]
}

// Disks returns the number of disks in the array.
func (a *Array) Disks() int { return len(a.disks) }

// Disk returns disk i.
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

// Read queues a read of block b at the given priority; done fires at
// completion. cancelled, if non-nil, lets the caller abandon the
// operation while it is still queued (used by aggressive prefetchers
// after a misprediction).
func (a *Array) Read(b blockdev.BlockID, prio sim.Priority, cancelled func() bool, done func(e *sim.Engine, at sim.Time)) {
	d := a.DiskFor(b)
	d.res.Submit(&sim.Request{
		Service:   a.ServiceTime(OpRead),
		Priority:  prio,
		Cancelled: cancelled,
		Done: func(e *sim.Engine, at sim.Time) {
			d.reads++
			if prio == sim.PriorityPrefetch {
				d.prefetchReads++
			}
			if done != nil {
				done(e, at)
			}
		},
	})
}

// Write queues a write of block b; writes always run at user priority
// (they are either user-visible or fault-tolerance flushes, both of
// which the paper treats as more important than prefetch).
func (a *Array) Write(b blockdev.BlockID, done func(e *sim.Engine, at sim.Time)) {
	d := a.DiskFor(b)
	d.res.Submit(&sim.Request{
		Service:  a.ServiceTime(OpWrite),
		Priority: sim.PriorityUser,
		Done: func(e *sim.Engine, at sim.Time) {
			d.writes++
			if done != nil {
				done(e, at)
			}
		},
	})
}

// Reads returns the number of completed block reads across all disks
// (demand plus prefetch).
func (a *Array) Reads() uint64 {
	var n uint64
	for _, d := range a.disks {
		n += d.reads
	}
	return n
}

// Writes returns the number of completed block writes across all disks.
func (a *Array) Writes() uint64 {
	var n uint64
	for _, d := range a.disks {
		n += d.writes
	}
	return n
}

// PrefetchReads returns the number of completed prefetch-priority
// reads across all disks.
func (a *Array) PrefetchReads() uint64 {
	var n uint64
	for _, d := range a.disks {
		n += d.prefetchReads
	}
	return n
}

// Accesses returns total disk operations (reads + writes); this is the
// metric plotted in Figures 8–11.
func (a *Array) Accesses() uint64 { return a.Reads() + a.Writes() }

// QueueLen returns the number of queued (waiting) operations on the
// disk holding b; prefetch throttles use it for inspection in tests.
func (a *Array) QueueLen(b blockdev.BlockID) int {
	return a.DiskFor(b).res.QueueLen()
}

// Utilization returns the mean utilization across disks.
func (a *Array) Utilization() float64 {
	if len(a.disks) == 0 {
		return 0
	}
	var u float64
	for _, d := range a.disks {
		u += d.res.Utilization()
	}
	return u / float64(len(a.disks))
}

// PrefetchBusyFraction returns the share of total disk busy time spent
// serving prefetch-priority operations — how much of the arms' work
// was speculative.
func (a *Array) PrefetchBusyFraction() float64 {
	var busy, pf sim.Duration
	for _, d := range a.disks {
		busy += d.res.BusyTime()
		pf += d.res.BusyTimeClass(sim.PriorityPrefetch)
	}
	if busy == 0 {
		return 0
	}
	return float64(pf) / float64(busy)
}

// MaxQueueLenAll returns the deepest waiting queue observed on any
// disk over the run — the congestion high-water mark behind the
// paper's "never queue prefetches behind demand traffic" argument.
func (a *Array) MaxQueueLenAll() int {
	max := 0
	for _, d := range a.disks {
		if q := d.res.MaxQueueLen(); q > max {
			max = q
		}
	}
	return max
}

// ID returns the disk's identifier.
func (d *Disk) ID() blockdev.DiskID { return d.id }

// Reads returns the disk's completed read count.
func (d *Disk) Reads() uint64 { return d.reads }

// Writes returns the disk's completed write count.
func (d *Disk) Writes() uint64 { return d.writes }
