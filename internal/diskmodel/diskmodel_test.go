package diskmodel

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestServiceTimeFormula(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewArray(e, machine.PM())
	// Read: 10.5 ms + 8192B/10MB/s = 10.5 ms + 819.2 us.
	wantRead := sim.Milliseconds(10.5) + sim.TransferTime(8192, 10)
	if got := a.ServiceTime(OpRead); got != wantRead {
		t.Errorf("read service = %v, want %v", got, wantRead)
	}
	wantWrite := sim.Milliseconds(12.5) + sim.TransferTime(8192, 10)
	if got := a.ServiceTime(OpWrite); got != wantWrite {
		t.Errorf("write service = %v, want %v", got, wantWrite)
	}
}

func TestReadCompletesAfterServiceTime(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewArray(e, machine.PM())
	var at sim.Time
	a.Read(blockdev.BlockID{File: 1, Block: 0}, sim.PriorityUser, nil,
		func(_ *sim.Engine, tm sim.Time) { at = tm })
	e.Run()
	if at != sim.Time(0).Add(a.ServiceTime(OpRead)) {
		t.Errorf("read done at %v, want %v", at, a.ServiceTime(OpRead))
	}
	if a.Reads() != 1 || a.Writes() != 0 {
		t.Error("op counters wrong")
	}
}

func TestSameDiskSerializesDifferentDisksParallel(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewArray(e, machine.PM())
	b0 := blockdev.BlockID{File: 1, Block: 0}
	b1 := blockdev.BlockID{File: 1, Block: 1} // striped to a different disk
	if a.DiskFor(b0) == a.DiskFor(b1) {
		t.Fatal("test assumes adjacent blocks stripe to different disks")
	}
	var t0, t1, t0b sim.Time
	a.Read(b0, sim.PriorityUser, nil, func(_ *sim.Engine, tm sim.Time) { t0 = tm })
	a.Read(b1, sim.PriorityUser, nil, func(_ *sim.Engine, tm sim.Time) { t1 = tm })
	a.Read(b0, sim.PriorityUser, nil, func(_ *sim.Engine, tm sim.Time) { t0b = tm })
	e.Run()
	if t0 != t1 {
		t.Errorf("different disks should serve in parallel: %v vs %v", t0, t1)
	}
	if t0b != t0.Add(a.ServiceTime(OpRead)) {
		t.Errorf("same disk should serialize: second done %v, want %v", t0b, t0.Add(a.ServiceTime(OpRead)))
	}
}

func TestPrefetchYieldsToUser(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewArray(e, machine.PM())
	b := blockdev.BlockID{File: 2, Block: 0}
	var order []string
	// Fill the disk, then queue prefetch before user.
	a.Read(b, sim.PriorityUser, nil, nil)
	a.Read(b, sim.PriorityPrefetch, nil, func(*sim.Engine, sim.Time) { order = append(order, "prefetch") })
	a.Read(b, sim.PriorityUser, nil, func(*sim.Engine, sim.Time) { order = append(order, "user") })
	e.Run()
	if len(order) != 2 || order[0] != "user" {
		t.Errorf("order = %v, want user before prefetch", order)
	}
	if a.PrefetchReads() != 1 {
		t.Errorf("PrefetchReads = %d, want 1", a.PrefetchReads())
	}
}

func TestCancelledPrefetchNotCounted(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewArray(e, machine.PM())
	b := blockdev.BlockID{File: 3, Block: 5}
	stale := true
	a.Read(b, sim.PriorityUser, nil, nil) // occupy
	a.Read(b, sim.PriorityPrefetch, func() bool { return stale }, func(*sim.Engine, sim.Time) {
		t.Error("cancelled prefetch completed")
	})
	e.Run()
	if a.Reads() != 1 {
		t.Errorf("Reads = %d, want 1 (cancelled op must not count)", a.Reads())
	}
}

func TestWriteCounts(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewArray(e, machine.NOW())
	for i := 0; i < 5; i++ {
		a.Write(blockdev.BlockID{File: 1, Block: blockdev.BlockNo(i)}, nil)
	}
	e.Run()
	if a.Writes() != 5 {
		t.Errorf("Writes = %d, want 5", a.Writes())
	}
	if a.Accesses() != 5 {
		t.Errorf("Accesses = %d, want 5", a.Accesses())
	}
}

func TestArrayShape(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewArray(e, machine.PM())
	if a.Disks() != 16 {
		t.Fatalf("Disks = %d, want 16", a.Disks())
	}
	for i := 0; i < a.Disks(); i++ {
		if a.Disk(i).ID() != blockdev.DiskID(i) {
			t.Errorf("disk %d has ID %d", i, a.Disk(i).ID())
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("OpKind.String wrong")
	}
}

func TestPerDiskCounters(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewArray(e, machine.PM())
	b := blockdev.BlockID{File: 9, Block: 3}
	a.Read(b, sim.PriorityUser, nil, nil)
	a.Write(b, nil)
	e.Run()
	d := a.DiskFor(b)
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Errorf("per-disk counters = %d/%d, want 1/1", d.Reads(), d.Writes())
	}
}

func TestUtilizationPositiveAfterWork(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewArray(e, machine.PM())
	a.Read(blockdev.BlockID{File: 1, Block: 0}, sim.PriorityUser, nil, nil)
	e.Run()
	if u := a.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}
