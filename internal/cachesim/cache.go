// Package cachesim implements the cooperative-cache substrate both
// file systems run on: per-node buffer pools holding file blocks, a
// global directory locating every cached copy, LRU bookkeeping, dirty
// blocks with periodic fault-tolerance write-back, and two replacement
// managers — a globally managed LRU (PAFS-style, §4) and per-node LRU
// with N-chance singlet forwarding (xFS-style, after Dahlin et al.).
package cachesim

import (
	"fmt"
	"sort"

	"repro/internal/blockdev"
	"repro/internal/lrulist"
	"repro/internal/sim"
)

// Copy is one cached copy of a block on one node. Copies are linked
// into their node's LRU list and, for global-LRU management, into a
// machine-wide LRU list.
type Copy struct {
	Block blockdev.BlockID
	Node  blockdev.NodeID
	// Dirty marks data newer than the disk image.
	Dirty bool
	// Prefetched marks a copy brought in speculatively and not yet
	// referenced by any user request.
	Prefetched bool
	// Recirculated counts N-chance forwarding hops (xFS policy).
	Recirculated int

	lastUse   sim.Time
	nodeLinks lrulist.Links[Copy] // per-node LRU links
	globLinks lrulist.Links[Copy] // global LRU links
}

// The recency machinery itself lives in internal/lrulist (shared with
// the lapcache runtime); the two Links fields let one copy sit on its
// node's list and the machine-wide list at once.

// newNodeLRU threads a list through the per-node link pair.
func newNodeLRU() lrulist.List[Copy] {
	return lrulist.New[Copy](func(c *Copy) *lrulist.Links[Copy] { return &c.nodeLinks })
}

// newGlobalLRU threads a list through the global link pair.
func newGlobalLRU() lrulist.List[Copy] {
	return lrulist.New[Copy](func(c *Copy) *lrulist.Links[Copy] { return &c.globLinks })
}

// Victim is an evicted copy the caller must handle: if Dirty, the
// block's contents must be written to disk before the buffer is
// reused.
type Victim struct {
	Block blockdev.BlockID
	Dirty bool
	// WasUnusedPrefetch marks a speculative block evicted before any
	// user request touched it — a wasted prefetch.
	WasUnusedPrefetch bool
}

// Stats aggregates cache-level counters.
type Stats struct {
	Inserts          uint64
	Evictions        uint64
	Forwards         uint64 // N-chance singlet forwards
	WastedPrefetches uint64 // prefetched copies evicted unused
	UsedPrefetches   uint64 // prefetched copies later hit by a user request
}

// Cache is the cooperative cache: per-node pools plus the global
// directory.
type Cache struct {
	engine    *sim.Engine
	perNode   int // capacity per node, in blocks
	nodes     []nodeState
	dir       map[blockdev.BlockID][]*Copy
	globLRU   lrulist.List[Copy] // only maintained under global-LRU management
	policy    Policy
	rng       *sim.RNG
	stats     Stats
	dirty     map[blockdev.BlockID]bool // blocks with a dirty copy
	scanStart int                       // rotating start for free-buffer scans

	// OnPrefetchUsed, if set, fires when a user request first touches a
	// prefetched copy — the moment a prefetch is known to have been
	// timely. Observation only: the hook must not mutate the cache.
	OnPrefetchUsed func(b blockdev.BlockID)
}

type nodeState struct {
	lru lrulist.List[Copy]
}

// Policy chooses how room is made when a node's pool is full.
type Policy interface {
	// Name identifies the policy in output.
	Name() string
	// MakeRoom frees one buffer so that a new block can be placed
	// "for" node pref. It returns the node that now has a free buffer
	// and appends any evicted blocks to out. The returned slice is the
	// updated out.
	MakeRoom(c *Cache, pref blockdev.NodeID, out []Victim) (blockdev.NodeID, []Victim)
}

// New constructs a cache of nNodes pools with perNode blocks each,
// managed by the given policy. The RNG is split from the engine's
// stream (N-chance forwarding picks random target nodes).
func New(e *sim.Engine, nNodes, perNode int, policy Policy) *Cache {
	if nNodes <= 0 || perNode <= 0 {
		panic(fmt.Sprintf("cachesim: invalid geometry %d nodes x %d blocks", nNodes, perNode))
	}
	c := &Cache{
		engine:  e,
		perNode: perNode,
		nodes:   make([]nodeState, nNodes),
		dir:     make(map[blockdev.BlockID][]*Copy),
		globLRU: newGlobalLRU(),
		policy:  policy,
		rng:     e.RNG().Split(),
		dirty:   make(map[blockdev.BlockID]bool),
	}
	for i := range c.nodes {
		c.nodes[i].lru = newNodeLRU()
	}
	return c
}

// Nodes returns the number of per-node pools.
func (c *Cache) Nodes() int { return len(c.nodes) }

// PerNodeCapacity returns each pool's capacity in blocks.
func (c *Cache) PerNodeCapacity() int { return c.perNode }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats { return c.stats }

// Policy returns the replacement manager in use.
func (c *Cache) Policy() Policy { return c.policy }

// Len returns the total number of cached copies.
func (c *Cache) Len() int {
	n := 0
	for i := range c.nodes {
		n += c.nodes[i].lru.Len()
	}
	return n
}

// NodeLen returns the number of copies cached on node n.
func (c *Cache) NodeLen(n blockdev.NodeID) int { return c.nodes[n].lru.Len() }

// Holders returns the nodes currently holding copies of b, in
// insertion order; nil if the block is uncached.
func (c *Cache) Holders(b blockdev.BlockID) []blockdev.NodeID {
	copies := c.dir[b]
	if len(copies) == 0 {
		return nil
	}
	out := make([]blockdev.NodeID, len(copies))
	for i, cp := range copies {
		out[i] = cp.Node
	}
	return out
}

// Contains reports whether any copy of b is cached.
func (c *Cache) Contains(b blockdev.BlockID) bool { return len(c.dir[b]) > 0 }

// ContainsOn reports whether node n holds a copy of b.
func (c *Cache) ContainsOn(n blockdev.NodeID, b blockdev.BlockID) bool {
	return c.findCopy(n, b) != nil
}

func (c *Cache) findCopy(n blockdev.NodeID, b blockdev.BlockID) *Copy {
	for _, cp := range c.dir[b] {
		if cp.Node == n {
			return cp
		}
	}
	return nil
}

// InsertOptions qualifies a new copy.
type InsertOptions struct {
	Dirty      bool
	Prefetched bool
}

// Insert places a copy of b for node pref, evicting as needed per the
// policy, and returns the node the copy landed on plus any victims the
// caller must flush. Inserting a block already present on the chosen
// node is a touch plus flag merge, not a duplicate.
func (c *Cache) Insert(pref blockdev.NodeID, b blockdev.BlockID, opts InsertOptions) (blockdev.NodeID, []Victim) {
	c.checkNode(pref)
	var victims []Victim
	if existing := c.findCopy(pref, b); existing != nil {
		// Merging an insert into an existing copy: refresh recency and
		// upgrade dirtiness; an existing copy is by definition not a
		// fresh prefetch.
		c.touchCopy(existing)
		if opts.Dirty {
			existing.Dirty = true
			c.dirty[b] = true
		}
		return pref, victims
	}
	// N-chance forwarding can cascade and refill a node that MakeRoom
	// just drained, so loop until the target really has a free buffer.
	// Termination: every MakeRoom call either drops a copy or uses up
	// one recirculation hop, both finite.
	target := pref
	for c.findCopy(target, b) == nil && c.nodes[target].lru.Len() >= c.perNode {
		target, victims = c.policy.MakeRoom(c, target, victims)
	}
	if existing := c.findCopy(target, b); existing != nil {
		c.touchCopy(existing)
		if opts.Dirty {
			existing.Dirty = true
			c.dirty[b] = true
		}
		return target, victims
	}
	cp := &Copy{
		Block:      b,
		Node:       target,
		Dirty:      opts.Dirty,
		Prefetched: opts.Prefetched,
		lastUse:    c.engine.Now(),
	}
	c.dir[b] = append(c.dir[b], cp)
	c.nodes[target].lru.PushBack(cp)
	c.globLRU.PushBack(cp)
	if opts.Dirty {
		c.dirty[b] = true
	}
	c.stats.Inserts++
	return target, victims
}

func (c *Cache) touchCopy(cp *Copy) {
	cp.lastUse = c.engine.Now()
	c.nodes[cp.Node].lru.Touch(cp)
	c.globLRU.Touch(cp)
	if cp.Prefetched {
		cp.Prefetched = false
		c.stats.UsedPrefetches++
		if c.OnPrefetchUsed != nil {
			c.OnPrefetchUsed(cp.Block)
		}
	}
}

// Touch records a user access to b's copy on node n (or, if n holds no
// copy, to any copy), updating recency and prefetch accounting. It
// reports whether a copy was found.
func (c *Cache) Touch(n blockdev.NodeID, b blockdev.BlockID) bool {
	cp := c.findCopy(n, b)
	if cp == nil {
		copies := c.dir[b]
		if len(copies) == 0 {
			return false
		}
		cp = copies[0]
	}
	c.touchCopy(cp)
	return true
}

// MarkDirty flags b's copies as newer than disk. It reports whether
// the block was cached.
func (c *Cache) MarkDirty(b blockdev.BlockID) bool {
	copies := c.dir[b]
	if len(copies) == 0 {
		return false
	}
	for _, cp := range copies {
		cp.Dirty = true
	}
	c.dirty[b] = true
	return true
}

// removeCopy unlinks the copy from all structures and the directory.
func (c *Cache) removeCopy(cp *Copy) {
	c.nodes[cp.Node].lru.Remove(cp)
	c.globLRU.Remove(cp)
	copies := c.dir[cp.Block]
	for i, x := range copies {
		if x == cp {
			copies[i] = copies[len(copies)-1]
			copies = copies[:len(copies)-1]
			break
		}
	}
	if len(copies) == 0 {
		delete(c.dir, cp.Block)
		delete(c.dirty, cp.Block)
	} else {
		c.dir[cp.Block] = copies
	}
}

// evict removes cp, producing a victim record.
func (c *Cache) evict(cp *Copy, out []Victim) []Victim {
	c.stats.Evictions++
	if cp.Prefetched {
		c.stats.WastedPrefetches++
	}
	dirtyLast := cp.Dirty && len(c.dir[cp.Block]) == 1
	c.removeCopy(cp)
	return append(out, Victim{
		Block:             cp.Block,
		Dirty:             dirtyLast,
		WasUnusedPrefetch: cp.Prefetched,
	})
}

// Drop removes every copy of b without victim processing (used when a
// write invalidates stale prefetched data). It reports whether any
// copy existed.
func (c *Cache) Drop(b blockdev.BlockID) bool {
	copies := c.dir[b]
	if len(copies) == 0 {
		return false
	}
	for len(c.dir[b]) > 0 {
		c.removeCopy(c.dir[b][0])
	}
	return true
}

// UnusedPrefetchedCopies counts copies still flagged Prefetched (never
// touched by a user request); experiments add them to the evicted
// wasted count to compute the paper's misprediction ratio.
func (c *Cache) UnusedPrefetchedCopies() uint64 {
	var n uint64
	for _, copies := range c.dir {
		for _, cp := range copies {
			if cp.Prefetched {
				n++
			}
		}
	}
	return n
}

// DirtyBlocks returns the blocks with at least one dirty copy, in
// deterministic (directory-ordered by file then block) order.
func (c *Cache) DirtyBlocks() []blockdev.BlockID {
	out := make([]blockdev.BlockID, 0, len(c.dirty))
	for b := range c.dirty {
		out = append(out, b)
	}
	sortBlocks(out)
	return out
}

// ClearDirty marks b clean after a successful disk write.
func (c *Cache) ClearDirty(b blockdev.BlockID) {
	for _, cp := range c.dir[b] {
		cp.Dirty = false
	}
	delete(c.dirty, b)
}

func (c *Cache) checkNode(n blockdev.NodeID) {
	if int(n) < 0 || int(n) >= len(c.nodes) {
		panic(fmt.Sprintf("cachesim: node %d outside [0,%d)", n, len(c.nodes)))
	}
}

func sortBlocks(bs []blockdev.BlockID) {
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].File != bs[j].File {
			return bs[i].File < bs[j].File
		}
		return bs[i].Block < bs[j].Block
	})
}
