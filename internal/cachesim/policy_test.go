package cachesim

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

func TestGlobalLRUSpreadsPlacementAcrossFreeNodes(t *testing.T) {
	_, c := newTestCache(4, 2, GlobalLRU{})
	// Fill node 0; further inserts "for" node 0 must rotate over the
	// other nodes' free buffers rather than piling onto one.
	c.Insert(0, blk(1, 0), InsertOptions{})
	c.Insert(0, blk(1, 1), InsertOptions{})
	seen := make(map[blockdev.NodeID]bool)
	for i := 2; i < 8; i++ {
		node, _ := c.Insert(0, blk(1, i), InsertOptions{})
		seen[node] = true
	}
	if len(seen) < 3 {
		t.Errorf("placements concentrated on %d nodes, want spread", len(seen))
	}
}

func TestGlobalLRUVictimAgeOrder(t *testing.T) {
	e, c := newTestCache(2, 2, GlobalLRU{})
	// Insert four blocks at increasing times.
	for i := 0; i < 4; i++ {
		e.At(sim.Time(i+1), func(*sim.Engine) {})
		e.Run()
		c.Insert(blockdev.NodeID(i%2), blk(1, i), InsertOptions{})
	}
	// Victims must come out oldest first as we keep inserting.
	var evicted []blockdev.BlockID
	for i := 4; i < 7; i++ {
		e.At(sim.Time(i+1), func(*sim.Engine) {})
		e.Run()
		_, vs := c.Insert(0, blk(1, i), InsertOptions{})
		for _, v := range vs {
			evicted = append(evicted, v.Block)
		}
	}
	want := []blockdev.BlockID{blk(1, 0), blk(1, 1), blk(1, 2)}
	if len(evicted) != len(want) {
		t.Fatalf("evicted %v", evicted)
	}
	for i := range want {
		if evicted[i] != want[i] {
			t.Errorf("eviction %d = %v, want %v (LRU order)", i, evicted[i], want[i])
		}
	}
}

func TestTouchProtectsFromEviction(t *testing.T) {
	e, c := newTestCache(1, 3, GlobalLRU{})
	for i := 0; i < 3; i++ {
		e.At(sim.Time(i+1), func(*sim.Engine) {})
		e.Run()
		c.Insert(0, blk(1, i), InsertOptions{})
	}
	// Touch the oldest; the second-oldest must be the victim.
	e.At(10, func(*sim.Engine) {})
	e.Run()
	c.Touch(0, blk(1, 0))
	_, vs := c.Insert(0, blk(1, 9), InsertOptions{})
	if len(vs) != 1 || vs[0].Block != blk(1, 1) {
		t.Errorf("victims = %v, want [1:1]", vs)
	}
}

func TestNChanceForwardCascadeRespectsCapacity(t *testing.T) {
	// Machine of 3 nodes, 1 buffer each, all holding singlets: the
	// forwarding cascade must terminate and never over-fill anyone.
	_, c := newTestCache(3, 1, NChance{Recirculations: 2})
	c.Insert(0, blk(1, 0), InsertOptions{})
	c.Insert(1, blk(1, 1), InsertOptions{})
	c.Insert(2, blk(1, 2), InsertOptions{})
	for i := 3; i < 20; i++ {
		c.Insert(blockdev.NodeID(i%3), blk(1, i), InsertOptions{})
		for n := 0; n < 3; n++ {
			if got := c.NodeLen(blockdev.NodeID(n)); got > 1 {
				t.Fatalf("node %d holds %d blocks with capacity 1", n, got)
			}
		}
	}
}

func TestUnusedPrefetchedCopies(t *testing.T) {
	_, c := newTestCache(2, 4, GlobalLRU{})
	c.Insert(0, blk(1, 0), InsertOptions{Prefetched: true})
	c.Insert(0, blk(1, 1), InsertOptions{Prefetched: true})
	c.Insert(0, blk(1, 2), InsertOptions{})
	if got := c.UnusedPrefetchedCopies(); got != 2 {
		t.Errorf("unused prefetched = %d, want 2", got)
	}
	c.Touch(0, blk(1, 0))
	if got := c.UnusedPrefetchedCopies(); got != 1 {
		t.Errorf("after touch = %d, want 1", got)
	}
}

func TestRandomOtherNodeNeverSelf(t *testing.T) {
	_, c := newTestCache(4, 1, NChance{Recirculations: 8})
	for i := 0; i < 200; i++ {
		if n := c.randomOtherNode(2); n == 2 || int(n) < 0 || int(n) >= 4 {
			t.Fatalf("randomOtherNode(2) = %d", n)
		}
	}
}

func TestInsertMergePreservesRecirculationState(t *testing.T) {
	// Re-inserting an existing block on the same node is a touch; the
	// copy must stay unique.
	_, c := newTestCache(2, 2, NChance{Recirculations: 2})
	c.Insert(0, blk(3, 0), InsertOptions{Prefetched: true})
	c.Insert(0, blk(3, 0), InsertOptions{})
	if c.Len() != 1 {
		t.Fatalf("Len = %d after merge", c.Len())
	}
	// The merge counts as a use of the prefetched copy.
	if c.Stats().UsedPrefetches != 1 {
		t.Errorf("UsedPrefetches = %d, want 1", c.Stats().UsedPrefetches)
	}
}

func TestDropRemovesAllCopies(t *testing.T) {
	_, c := newTestCache(3, 2, NChance{Recirculations: 2})
	c.Insert(0, blk(1, 0), InsertOptions{})
	c.Insert(1, blk(1, 0), InsertOptions{})
	c.Insert(2, blk(1, 0), InsertOptions{})
	if len(c.Holders(blk(1, 0))) != 3 {
		t.Fatal("setup: want 3 copies")
	}
	c.Drop(blk(1, 0))
	if c.Contains(blk(1, 0)) || c.Len() != 0 {
		t.Error("Drop left copies behind")
	}
}
