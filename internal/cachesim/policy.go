package cachesim

import "repro/internal/blockdev"

// GlobalLRU is the PAFS-style replacement manager: the cooperative
// cache behaves as one machine-wide pool, and the victim is the
// globally least-recently-used copy on any node. The freed buffer is
// wherever the victim lived, so a block inserted "for" one node may be
// placed on another — exactly the globally managed behaviour PAFS's
// centralized servers implement (§4).
type GlobalLRU struct{}

// Name identifies the policy.
func (GlobalLRU) Name() string { return "global-lru" }

// MakeRoom evicts the globally oldest copy and hands its node back as
// the placement target.
func (GlobalLRU) MakeRoom(c *Cache, pref blockdev.NodeID, out []Victim) (blockdev.NodeID, []Victim) {
	// If any node still has room, place there instead of evicting:
	// a globally managed cache never evicts while free buffers exist.
	// Prefer the requesting node (already known full), then scan.
	if n, ok := c.anyFreeNode(); ok {
		return n, out
	}
	victim := c.globLRU.Front()
	if victim == nil {
		// Impossible with positive capacity; guard anyway.
		return pref, out
	}
	node := victim.Node
	out = c.evict(victim, out)
	return node, out
}

// anyFreeNode scans for a pool with a free buffer, round-robin from a
// rotating start so placement spreads across the machine.
func (c *Cache) anyFreeNode() (blockdev.NodeID, bool) {
	n := len(c.nodes)
	start := c.scanStart
	for i := 0; i < n; i++ {
		id := (start + i) % n
		if c.nodes[id].lru.Len() < c.perNode {
			c.scanStart = (id + 1) % n
			return blockdev.NodeID(id), true
		}
	}
	return 0, false
}

// NChance is the xFS-style replacement manager (Dahlin et al.): each
// node evicts from its own LRU list; if the victim is a singlet (the
// only cached copy of its block) it is forwarded to a random other
// node instead of being dropped, up to Recirculations hops. Duplicate
// copies and exhausted singlets are dropped.
type NChance struct {
	// Recirculations is the N in N-chance; Dahlin et al. found N=2
	// captures most of the benefit.
	Recirculations int
}

// Name identifies the policy.
func (p NChance) Name() string { return "n-chance" }

// MakeRoom frees a buffer on node pref itself (xFS decisions are
// local), forwarding singlet victims per the N-chance protocol.
func (p NChance) MakeRoom(c *Cache, pref blockdev.NodeID, out []Victim) (blockdev.NodeID, []Victim) {
	victim := c.nodes[pref].lru.Front()
	if victim == nil {
		return pref, out
	}
	singlet := len(c.dir[victim.Block]) == 1
	if singlet && victim.Recirculated < p.Recirculations && c.Nodes() > 1 {
		// Forward to a random other node; this may cascade an eviction
		// there, which is the protocol's intent (the oldest block on
		// the target makes room for the singlet).
		target := c.randomOtherNode(pref)
		hops := victim.Recirculated + 1
		dirty := victim.Dirty
		prefetched := victim.Prefetched
		blk := victim.Block
		c.removeCopy(victim)
		for c.nodes[target].lru.Len() >= c.perNode {
			_, out = p.MakeRoom(c, target, out)
		}
		fwd := &Copy{
			Block:        blk,
			Node:         target,
			Dirty:        dirty,
			Prefetched:   prefetched,
			Recirculated: hops,
			lastUse:      c.engine.Now(),
		}
		c.dir[blk] = append(c.dir[blk], fwd)
		c.nodes[target].lru.PushBack(fwd)
		c.globLRU.PushBack(fwd)
		if dirty {
			c.dirty[blk] = true
		}
		c.stats.Forwards++
		return pref, out
	}
	out = c.evict(victim, out)
	return pref, out
}

// randomOtherNode picks a uniformly random node different from n.
func (c *Cache) randomOtherNode(n blockdev.NodeID) blockdev.NodeID {
	t := blockdev.NodeID(c.rng.Intn(len(c.nodes) - 1))
	if t >= n {
		t++
	}
	return t
}
