package cachesim

import (
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

func blk(f, b int) blockdev.BlockID {
	return blockdev.BlockID{File: blockdev.FileID(f), Block: blockdev.BlockNo(b)}
}

func newTestCache(nodes, perNode int, p Policy) (*sim.Engine, *Cache) {
	e := sim.NewEngine(1)
	return e, New(e, nodes, perNode, p)
}

func TestInsertAndLookup(t *testing.T) {
	_, c := newTestCache(4, 8, GlobalLRU{})
	node, victims := c.Insert(2, blk(1, 0), InsertOptions{})
	if node != 2 {
		t.Errorf("placed on node %d, want 2", node)
	}
	if len(victims) != 0 {
		t.Errorf("unexpected victims: %v", victims)
	}
	if !c.Contains(blk(1, 0)) || !c.ContainsOn(2, blk(1, 0)) {
		t.Error("block not found after insert")
	}
	if c.ContainsOn(0, blk(1, 0)) {
		t.Error("block reported on wrong node")
	}
	if h := c.Holders(blk(1, 0)); len(h) != 1 || h[0] != 2 {
		t.Errorf("Holders = %v", h)
	}
	if c.Holders(blk(9, 9)) != nil {
		t.Error("Holders of absent block should be nil")
	}
}

func TestInsertDuplicateMergesNotDuplicates(t *testing.T) {
	_, c := newTestCache(2, 4, GlobalLRU{})
	c.Insert(0, blk(1, 0), InsertOptions{})
	c.Insert(0, blk(1, 0), InsertOptions{Dirty: true})
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (merge, not duplicate)", c.Len())
	}
	if got := c.DirtyBlocks(); len(got) != 1 {
		t.Errorf("dirty blocks = %v", got)
	}
}

func TestGlobalLRUEvictsOldestAnywhere(t *testing.T) {
	e, c := newTestCache(2, 2, GlobalLRU{})
	// Fill both nodes; advance clock between inserts for distinct ages.
	fill := []struct {
		node blockdev.NodeID
		b    blockdev.BlockID
	}{{0, blk(1, 0)}, {0, blk(1, 1)}, {1, blk(1, 2)}, {1, blk(1, 3)}}
	for i, f := range fill {
		e.At(sim.Time(i+1), func(*sim.Engine) {})
		e.Run()
		c.Insert(f.node, f.b, InsertOptions{})
	}
	// Touch the oldest (1:0) so 1:1 becomes globally oldest.
	c.Touch(0, blk(1, 0))
	// Inserting for node 1 (full) must evict 1:1 on node 0 and place there.
	node, victims := c.Insert(1, blk(2, 0), InsertOptions{})
	if len(victims) != 1 || victims[0].Block != blk(1, 1) {
		t.Fatalf("victims = %v, want [1:1]", victims)
	}
	if node != 0 {
		t.Errorf("placement node = %d, want 0 (victim's node)", node)
	}
	if c.Contains(blk(1, 1)) {
		t.Error("victim still cached")
	}
}

func TestGlobalLRUUsesFreeBuffersBeforeEvicting(t *testing.T) {
	_, c := newTestCache(2, 2, GlobalLRU{})
	c.Insert(0, blk(1, 0), InsertOptions{})
	c.Insert(0, blk(1, 1), InsertOptions{})
	// Node 0 full, node 1 empty: insert for node 0 must go to node 1.
	node, victims := c.Insert(0, blk(1, 2), InsertOptions{})
	if node != 1 || len(victims) != 0 {
		t.Errorf("placement = node %d victims %v, want node 1 and none", node, victims)
	}
}

func TestDirtyVictimFlagged(t *testing.T) {
	_, c := newTestCache(1, 1, GlobalLRU{})
	c.Insert(0, blk(1, 0), InsertOptions{Dirty: true})
	_, victims := c.Insert(0, blk(1, 1), InsertOptions{})
	if len(victims) != 1 || !victims[0].Dirty {
		t.Errorf("victims = %v, want one dirty victim", victims)
	}
}

func TestWastedPrefetchAccounting(t *testing.T) {
	_, c := newTestCache(1, 1, GlobalLRU{})
	c.Insert(0, blk(1, 0), InsertOptions{Prefetched: true})
	_, victims := c.Insert(0, blk(1, 1), InsertOptions{})
	if len(victims) != 1 || !victims[0].WasUnusedPrefetch {
		t.Errorf("victims = %v, want unused-prefetch victim", victims)
	}
	if c.Stats().WastedPrefetches != 1 {
		t.Errorf("WastedPrefetches = %d", c.Stats().WastedPrefetches)
	}
}

func TestUsedPrefetchAccounting(t *testing.T) {
	_, c := newTestCache(1, 4, GlobalLRU{})
	c.Insert(0, blk(1, 0), InsertOptions{Prefetched: true})
	if !c.Touch(0, blk(1, 0)) {
		t.Fatal("touch missed")
	}
	st := c.Stats()
	if st.UsedPrefetches != 1 || st.WastedPrefetches != 0 {
		t.Errorf("used/wasted = %d/%d, want 1/0", st.UsedPrefetches, st.WastedPrefetches)
	}
	// Second touch must not double count.
	c.Touch(0, blk(1, 0))
	if c.Stats().UsedPrefetches != 1 {
		t.Error("prefetch hit double-counted")
	}
}

func TestTouchMissingBlock(t *testing.T) {
	_, c := newTestCache(1, 4, GlobalLRU{})
	if c.Touch(0, blk(5, 5)) {
		t.Error("Touch reported hit on absent block")
	}
}

func TestMarkDirtyAndWritebackCycle(t *testing.T) {
	_, c := newTestCache(2, 4, GlobalLRU{})
	c.Insert(0, blk(1, 0), InsertOptions{})
	c.Insert(1, blk(1, 1), InsertOptions{})
	if !c.MarkDirty(blk(1, 0)) {
		t.Fatal("MarkDirty missed cached block")
	}
	if c.MarkDirty(blk(7, 7)) {
		t.Error("MarkDirty hit absent block")
	}
	dirty := c.DirtyBlocks()
	if len(dirty) != 1 || dirty[0] != blk(1, 0) {
		t.Fatalf("DirtyBlocks = %v", dirty)
	}
	c.ClearDirty(blk(1, 0))
	if len(c.DirtyBlocks()) != 0 {
		t.Error("block still dirty after ClearDirty")
	}
}

func TestDirtyBlocksSorted(t *testing.T) {
	_, c := newTestCache(1, 8, GlobalLRU{})
	for _, b := range []blockdev.BlockID{blk(2, 1), blk(1, 5), blk(1, 2), blk(2, 0)} {
		c.Insert(0, b, InsertOptions{Dirty: true})
	}
	got := c.DirtyBlocks()
	want := []blockdev.BlockID{blk(1, 2), blk(1, 5), blk(2, 0), blk(2, 1)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DirtyBlocks = %v, want %v", got, want)
		}
	}
}

func TestDrop(t *testing.T) {
	_, c := newTestCache(2, 4, GlobalLRU{})
	c.Insert(0, blk(1, 0), InsertOptions{Dirty: true})
	if !c.Drop(blk(1, 0)) {
		t.Fatal("Drop missed cached block")
	}
	if c.Contains(blk(1, 0)) || len(c.DirtyBlocks()) != 0 || c.Len() != 0 {
		t.Error("Drop left residue")
	}
	if c.Drop(blk(1, 0)) {
		t.Error("Drop of absent block reported true")
	}
}

func TestNChanceForwardsSinglet(t *testing.T) {
	_, c := newTestCache(4, 1, NChance{Recirculations: 2})
	c.Insert(0, blk(1, 0), InsertOptions{})
	// Node 0 is full; inserting another block must forward the singlet
	// 1:0 to some other node rather than dropping it.
	node, victims := c.Insert(0, blk(1, 1), InsertOptions{})
	if node != 0 {
		t.Errorf("xFS placement must be local, got node %d", node)
	}
	if len(victims) != 0 {
		t.Errorf("singlet was dropped: %v", victims)
	}
	if !c.Contains(blk(1, 0)) {
		t.Fatal("forwarded singlet vanished")
	}
	if h := c.Holders(blk(1, 0)); h[0] == 0 {
		t.Error("singlet still on evicting node")
	}
	if c.Stats().Forwards != 1 {
		t.Errorf("Forwards = %d, want 1", c.Stats().Forwards)
	}
}

func TestNChanceDropsDuplicates(t *testing.T) {
	_, c := newTestCache(3, 1, NChance{Recirculations: 2})
	c.Insert(0, blk(1, 0), InsertOptions{})
	c.Insert(1, blk(1, 0), InsertOptions{}) // duplicate copy on node 1
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 copies", c.Len())
	}
	// Evicting the duplicate on node 1 must drop, not forward.
	_, victims := c.Insert(1, blk(2, 0), InsertOptions{})
	if len(victims) != 1 || victims[0].Block != blk(1, 0) {
		t.Fatalf("victims = %v, want dropped duplicate 1:0", victims)
	}
	if c.Stats().Forwards != 0 {
		t.Error("duplicate was forwarded")
	}
	if !c.Contains(blk(1, 0)) {
		t.Error("other copy of duplicate vanished")
	}
}

func TestNChanceRecirculationLimit(t *testing.T) {
	_, c := newTestCache(2, 1, NChance{Recirculations: 1})
	c.Insert(0, blk(1, 0), InsertOptions{})
	// First eviction forwards (hop 1) to node 1.
	c.Insert(0, blk(1, 1), InsertOptions{})
	if !c.Contains(blk(1, 0)) {
		t.Fatal("first forward failed")
	}
	// 1:0 now has 1 hop. Evicting it again must drop it.
	_, victims := c.Insert(1, blk(1, 2), InsertOptions{})
	found := false
	for _, v := range victims {
		if v.Block == blk(1, 0) {
			found = true
		}
	}
	if !found {
		t.Errorf("recirculation-exhausted singlet not dropped; victims = %v", victims)
	}
}

func TestNChanceDirtySingletKeepsDirtyThroughForward(t *testing.T) {
	_, c := newTestCache(3, 1, NChance{Recirculations: 2})
	c.Insert(0, blk(1, 0), InsertOptions{Dirty: true})
	c.Insert(0, blk(1, 1), InsertOptions{})
	if len(c.DirtyBlocks()) != 1 {
		t.Error("dirty flag lost across forward")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	for _, p := range []Policy{GlobalLRU{}, NChance{Recirculations: 2}} {
		_, c := newTestCache(3, 4, p)
		for i := 0; i < 100; i++ {
			c.Insert(blockdev.NodeID(i%3), blk(1, i), InsertOptions{})
			for n := 0; n < 3; n++ {
				if c.NodeLen(blockdev.NodeID(n)) > 4 {
					t.Fatalf("%s: node %d over capacity after insert %d", p.Name(), n, i)
				}
			}
		}
		if c.Len() > 12 {
			t.Fatalf("%s: total %d over capacity", p.Name(), c.Len())
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	e := sim.NewEngine(1)
	for _, g := range []struct{ n, c int }{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", g.n, g.c)
				}
			}()
			New(e, g.n, g.c, GlobalLRU{})
		}()
	}
}

func TestInsertPanicsOnBadNode(t *testing.T) {
	_, c := newTestCache(2, 2, GlobalLRU{})
	defer func() {
		if recover() == nil {
			t.Error("bad node did not panic")
		}
	}()
	c.Insert(5, blk(1, 0), InsertOptions{})
}

func TestPolicyNames(t *testing.T) {
	if (GlobalLRU{}).Name() != "global-lru" || (NChance{}).Name() != "n-chance" {
		t.Error("policy names wrong")
	}
}

// Property: the directory and the LRU lists agree — every directory
// copy is on its node's list (lengths match), and capacity holds —
// under arbitrary insert/touch/drop sequences.
func TestDirectoryConsistencyProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		e := sim.NewEngine(9)
		c := New(e, 4, 3, NChance{Recirculations: 2})
		for _, op := range ops {
			node := blockdev.NodeID(op % 4)
			b := blk(int(op>>2%3), int(op>>4%32))
			switch op % 3 {
			case 0:
				c.Insert(node, b, InsertOptions{Dirty: op%5 == 0, Prefetched: op%7 == 0})
			case 1:
				c.Touch(node, b)
			case 2:
				c.Drop(b)
			}
		}
		total := 0
		for n := 0; n < 4; n++ {
			l := c.NodeLen(blockdev.NodeID(n))
			if l > 3 {
				return false
			}
			total += l
		}
		return total == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounters(t *testing.T) {
	_, c := newTestCache(1, 1, GlobalLRU{})
	c.Insert(0, blk(1, 0), InsertOptions{})
	c.Insert(0, blk(1, 1), InsertOptions{})
	st := c.Stats()
	if st.Inserts != 2 || st.Evictions != 1 {
		t.Errorf("inserts/evictions = %d/%d, want 2/1", st.Inserts, st.Evictions)
	}
	if c.Policy().Name() != "global-lru" {
		t.Error("Policy accessor wrong")
	}
	if c.Nodes() != 1 || c.PerNodeCapacity() != 1 {
		t.Error("geometry accessors wrong")
	}
}
