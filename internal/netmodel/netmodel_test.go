package netmodel

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestLocalCostFormula(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, machine.PM())
	// PM: 2us + 1us + 8192B/500MB/s = 3us + 16.384us = 19.384us.
	got := n.LocalCost(8192)
	want := sim.Microseconds(2) + sim.Microseconds(1) + sim.TransferTime(8192, 500)
	if got != want {
		t.Errorf("LocalCost(8192) = %v, want %v", got, want)
	}
}

func TestRemoteCostFormula(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, machine.NOW())
	// NOW: 100us + 50us + 8192B/19.4MB/s.
	got := n.RemoteCost(8192)
	want := sim.Microseconds(100) + sim.Microseconds(50) + sim.TransferTime(8192, 19.4)
	if got != want {
		t.Errorf("RemoteCost(8192) = %v, want %v", got, want)
	}
}

func TestRemoteSlowerThanLocal(t *testing.T) {
	e := sim.NewEngine(1)
	for _, cfg := range []machine.Config{machine.PM(), machine.NOW()} {
		n := New(e, cfg)
		if n.RemoteCost(8192) <= n.LocalCost(8192) {
			t.Errorf("%s: remote transfer not slower than local", cfg.Name)
		}
	}
}

func TestSendLocalArrivesAtLocalCost(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, machine.PM())
	var at sim.Time
	n.Send(3, 3, 8192, func(_ *sim.Engine, t sim.Time) { at = t })
	e.Run()
	if at != sim.Time(0).Add(n.LocalCost(8192)) {
		t.Errorf("local send arrived at %v, want %v", at, n.LocalCost(8192))
	}
	if n.MessagesLocal() != 1 || n.MessagesRemote() != 0 {
		t.Error("message counters wrong")
	}
}

func TestSendRemoteSerializesOnSenderPort(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, machine.PM())
	var first, second sim.Time
	n.Send(0, 1, 8192, func(_ *sim.Engine, t sim.Time) { first = t })
	n.Send(0, 2, 8192, func(_ *sim.Engine, t sim.Time) { second = t })
	e.Run()
	cost := n.RemoteCost(8192)
	if first != sim.Time(0).Add(cost) {
		t.Errorf("first remote arrived at %v, want %v", first, cost)
	}
	if second != sim.Time(0).Add(2*cost) {
		t.Errorf("second remote arrived at %v, want %v (port serialization)", second, 2*cost)
	}
}

func TestSendDifferentSendersRunInParallel(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, machine.PM())
	var a, b sim.Time
	n.Send(0, 2, 8192, func(_ *sim.Engine, t sim.Time) { a = t })
	n.Send(1, 2, 8192, func(_ *sim.Engine, t sim.Time) { b = t })
	e.Run()
	if a != b {
		t.Errorf("independent senders serialized: %v vs %v", a, b)
	}
}

func TestSendPanicsOnBadNode(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, machine.NOW())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node did not panic")
		}
	}()
	n.Send(0, 100, 1, func(*sim.Engine, sim.Time) {})
}

func TestBytesMovedAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, machine.PM())
	n.Send(0, 0, 100, func(*sim.Engine, sim.Time) {})
	n.Send(0, 1, 200, func(*sim.Engine, sim.Time) {})
	e.Run()
	if n.BytesMoved() != 300 {
		t.Errorf("BytesMoved = %d, want 300", n.BytesMoved())
	}
}
