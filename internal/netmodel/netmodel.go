// Package netmodel implements the paper's communication model
// (§5.1): every message costs a constant startup (different for
// intra-node and cross-network communication) plus a data-transfer
// time proportional to the message size and the interconnect
// bandwidth. Cross-network transfers contend for the sending node's
// network port, which is a serial resource; intra-node copies contend
// only for the memory bus, modelled as uncontended (memory bandwidth
// is far above any per-node demand in these workloads).
package netmodel

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Network models the machine interconnect.
type Network struct {
	cfg    machine.Config
	engine *sim.Engine
	ports  []*sim.Resource

	msgsLocal  uint64
	msgsRemote uint64
	bytesMoved uint64
}

// New builds the interconnect for the given machine configuration.
func New(e *sim.Engine, cfg machine.Config) *Network {
	n := &Network{cfg: cfg, engine: e, ports: make([]*sim.Resource, cfg.Nodes)}
	for i := range n.ports {
		n.ports[i] = sim.NewResource(e, fmt.Sprintf("port%d", i))
	}
	return n
}

// LocalCost returns the time to move size bytes within one node: port
// startup + copy startup + size over the memory bandwidth.
func (n *Network) LocalCost(size int64) sim.Duration {
	return n.cfg.LocalPortStartup + n.cfg.LocalCopyStartup +
		sim.TransferTime(size, n.cfg.MemoryBandwidth)
}

// RemoteCost returns the uncontended time to move size bytes between
// two nodes: remote startups + size over the network bandwidth.
func (n *Network) RemoteCost(size int64) sim.Duration {
	return n.cfg.RemotePortStartup + n.cfg.RemoteCopyStartup +
		sim.TransferTime(size, n.cfg.NetworkBandwidth)
}

// Send delivers a message of size bytes from node from to node to and
// invokes done at arrival time. Intra-node messages bypass the network
// port; cross-network messages serialize on the sender's port for the
// transfer duration, so a node pumping many blocks queues behind
// itself.
func (n *Network) Send(from, to blockdev.NodeID, size int64, done func(e *sim.Engine, at sim.Time)) {
	if int(from) < 0 || int(from) >= len(n.ports) || int(to) < 0 || int(to) >= len(n.ports) {
		panic(fmt.Sprintf("netmodel: send %d -> %d outside machine of %d nodes", from, to, len(n.ports)))
	}
	n.bytesMoved += uint64(size)
	if from == to {
		n.msgsLocal++
		n.engine.After(n.LocalCost(size), func(e *sim.Engine) { done(e, e.Now()) })
		return
	}
	n.msgsRemote++
	n.ports[from].Submit(&sim.Request{
		Service:  n.RemoteCost(size),
		Priority: sim.PriorityUser,
		Done:     done,
	})
}

// Utilization returns the mean busy fraction across the nodes' network
// ports.
func (n *Network) Utilization() float64 {
	if len(n.ports) == 0 {
		return 0
	}
	var u float64
	for _, p := range n.ports {
		u += p.Utilization()
	}
	return u / float64(len(n.ports))
}

// MaxPortQueueLen returns the deepest send queue observed on any port.
func (n *Network) MaxPortQueueLen() int {
	max := 0
	for _, p := range n.ports {
		if q := p.MaxQueueLen(); q > max {
			max = q
		}
	}
	return max
}

// MessagesLocal returns the count of intra-node messages delivered.
func (n *Network) MessagesLocal() uint64 { return n.msgsLocal }

// MessagesRemote returns the count of cross-network messages delivered.
func (n *Network) MessagesRemote() uint64 { return n.msgsRemote }

// BytesMoved returns the total payload bytes moved, local and remote.
func (n *Network) BytesMoved() uint64 { return n.bytesMoved }

// ControlMessageSize is the size charged for request/response control
// messages (RPC headers) as opposed to block payloads.
const ControlMessageSize int64 = 128
