package workload

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

// OLTPParams configures a synthetic transaction-processing workload:
// many concurrent clients issuing point transactions against a few
// table files, each file an index region followed by a data region. A
// point transaction reads the key's index block, then the key's data
// block (and sometimes rewrites it); a minority of transactions run
// short range scans over consecutive data blocks.
//
// The structural properties that stress the paper's algorithms:
//
//   - point reads land on Zipf-hot keys scattered over the data
//     region — there is no sequential run for OBA to extend, so a
//     linear-aggressive driver mostly prefetches garbage;
//   - the index block -> data block transition of a hot key recurs
//     for the workload's whole life with unrelated transactions
//     interleaved between the two halves — exactly the bounded
//     association a miner or a probability matrix captures, and
//     exactly what perturbs an exact-history MRU chain;
//   - the scan minority gives sequential prefetchers a real (but
//     small) share of work, keeping the comparison honest.
type OLTPParams struct {
	Seed  uint64
	Nodes int // machine size (NOW-style database cluster)

	// Tables is the number of table files; each has IndexBlocks of
	// index followed by DataBlocks of rows.
	Tables      int
	IndexBlocks int
	DataBlocks  int
	// HotKeys is the number of distinct keys per table the key Zipf
	// distributes over; ZipfSkew shapes it.
	HotKeys  int
	ZipfSkew float64
	// Clients is the number of concurrent transaction loops;
	// TxPerClient is how many transactions each runs.
	Clients     int
	TxPerClient int
	// ScanProb is the probability a transaction is a short range scan
	// instead of a point access; scan lengths are uniform in
	// [2, MaxScanBlocks].
	ScanProb      float64
	MaxScanBlocks int
	// WriteProb is the probability a point transaction rewrites the
	// data block after reading it.
	WriteProb float64
	// MeanThink is the mean think time between a transaction's
	// requests; think between transactions is 10x this.
	MeanThink sim.Duration
	// BlockSize converts blocks to bytes.
	BlockSize int64
}

// DefaultOLTPParams returns the configuration used by the predictors
// experiment.
func DefaultOLTPParams() OLTPParams {
	return OLTPParams{
		Seed:          1,
		Nodes:         50,
		Tables:        4,
		IndexBlocks:   64,
		DataBlocks:    2048,
		HotKeys:       512,
		ZipfSkew:      1.1,
		Clients:       40,
		TxPerClient:   260,
		ScanProb:      0.12,
		MaxScanBlocks: 8,
		WriteProb:     0.25,
		MeanThink:     sim.Milliseconds(6),
		BlockSize:     8 * 1024,
	}
}

// Validate reports a configuration error, if any.
func (p OLTPParams) Validate() error {
	switch {
	case p.Nodes <= 0:
		return fmt.Errorf("oltp: nodes %d", p.Nodes)
	case p.Tables <= 0 || p.IndexBlocks <= 0 || p.DataBlocks <= 1:
		return fmt.Errorf("oltp: degenerate table shape")
	case p.HotKeys <= 0:
		return fmt.Errorf("oltp: hot keys %d", p.HotKeys)
	case p.ZipfSkew <= 0:
		return fmt.Errorf("oltp: zipf skew %v", p.ZipfSkew)
	case p.Clients <= 0 || p.TxPerClient <= 0:
		return fmt.Errorf("oltp: no clients or no transactions")
	case p.ScanProb < 0 || p.ScanProb > 1 || p.WriteProb < 0 || p.WriteProb > 1:
		return fmt.Errorf("oltp: probability outside [0,1]")
	case p.ScanProb > 0 && (p.MaxScanBlocks < 2 || p.MaxScanBlocks > p.DataBlocks):
		return fmt.Errorf("oltp: max scan %d outside [2, data blocks]", p.MaxScanBlocks)
	case p.MeanThink < 0:
		return fmt.Errorf("oltp: negative think")
	case p.BlockSize <= 0:
		return fmt.Errorf("oltp: block size %d", p.BlockSize)
	}
	return nil
}

// GenerateOLTP builds the workload. The result is deterministic in the
// parameters.
func GenerateOLTP(p OLTPParams) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	tr := &Trace{
		Name:       "oltp",
		FileBlocks: make(map[blockdev.FileID]blockdev.BlockNo),
	}
	for t := 0; t < p.Tables; t++ {
		tr.FileBlocks[blockdev.FileID(t)] = blockdev.BlockNo(p.IndexBlocks + p.DataBlocks)
	}

	// Fixed key layout, shared by all clients: key k of any table
	// lives in data block dataHome[k] and is found via index block
	// indexHome[k]. The layout is scattered (hash-like), not sorted,
	// so key popularity does not translate into spatial locality.
	layoutRNG := rng.Split()
	indexHome := make([]blockdev.BlockNo, p.HotKeys)
	dataHome := make([]blockdev.BlockNo, p.HotKeys)
	for k := range indexHome {
		indexHome[k] = blockdev.BlockNo(layoutRNG.Intn(p.IndexBlocks))
		dataHome[k] = blockdev.BlockNo(p.IndexBlocks + layoutRNG.Intn(p.DataBlocks))
	}

	keys := sim.NewZipfTable(p.HotKeys, p.ZipfSkew)
	for ci := 0; ci < p.Clients; ci++ {
		crng := rng.Split()
		proc := Process{Node: blockdev.NodeID(ci % p.Nodes)}
		emit := func(kind OpKind, file blockdev.FileID, off, size blockdev.BlockNo, scale float64) {
			proc.Steps = append(proc.Steps, Step{
				Think:  sim.Duration(crng.Exp(float64(p.MeanThink) * scale)),
				Kind:   kind,
				File:   file,
				Offset: int64(off) * p.BlockSize,
				Size:   int64(size) * p.BlockSize,
			})
		}
		for tx := 0; tx < p.TxPerClient; tx++ {
			file := blockdev.FileID(crng.Intn(p.Tables))
			if crng.Float64() < p.ScanProb {
				// Range scan: a short sequential run somewhere in the
				// data region.
				length := blockdev.BlockNo(2 + crng.Intn(p.MaxScanBlocks-1))
				start := blockdev.BlockNo(p.IndexBlocks + crng.Intn(p.DataBlocks-int(length)+1))
				emit(OpRead, file, start, length, 10)
				continue
			}
			k := keys.Sample(crng)
			emit(OpRead, file, indexHome[k], 1, 10) // index lookup
			emit(OpRead, file, dataHome[k], 1, 1)   // row fetch
			if crng.Float64() < p.WriteProb {
				emit(OpWrite, file, dataHome[k], 1, 1) // row update
			}
		}
		tr.Procs = append(tr.Procs, proc)
	}
	return tr, nil
}
