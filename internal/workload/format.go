package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

// The trace text format, one record per line:
//
//	trace <name>
//	file <id> <blocks>
//	proc <node>
//	step <think-ns> <r|w> <file> <offset> <size>
//
// "step" lines belong to the most recent "proc". The format exists so
// cmd/tracegen can materialize workloads for inspection and so
// experiments can be replayed from files.

// Encode writes the trace in text form.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace %s\n", t.Name)
	ids := make([]blockdev.FileID, 0, len(t.FileBlocks))
	for id := range t.FileBlocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(bw, "file %d %d\n", id, t.FileBlocks[id])
	}
	for i := range t.Procs {
		p := &t.Procs[i]
		fmt.Fprintf(bw, "proc %d\n", p.Node)
		for _, s := range p.Steps {
			k := "r"
			switch s.Kind {
			case OpWrite:
				k = "w"
			case OpClose:
				k = "c"
			}
			fmt.Fprintf(bw, "step %d %s %d %d %d\n", int64(s.Think), k, s.File, s.Offset, s.Size)
		}
	}
	return bw.Flush()
}

// Decode parses a trace in the text form produced by Encode.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	t := &Trace{FileBlocks: make(map[blockdev.FileID]blockdev.BlockNo)}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "trace":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed trace header", line)
			}
			t.Name = fields[1]
		case "file":
			var id, blocks int64
			if n, err := fmt.Sscanf(text, "file %d %d", &id, &blocks); n != 2 || err != nil {
				return nil, fmt.Errorf("line %d: malformed file record", line)
			}
			if id < 0 || id > math.MaxInt32 {
				return nil, fmt.Errorf("line %d: file id %d out of range", line, id)
			}
			if blocks <= 0 || blocks > math.MaxInt32 {
				return nil, fmt.Errorf("line %d: file %d has %d blocks", line, id, blocks)
			}
			if _, dup := t.FileBlocks[blockdev.FileID(id)]; dup {
				return nil, fmt.Errorf("line %d: duplicate file %d", line, id)
			}
			t.FileBlocks[blockdev.FileID(id)] = blockdev.BlockNo(blocks)
		case "proc":
			var node int64
			if n, err := fmt.Sscanf(text, "proc %d", &node); n != 1 || err != nil {
				return nil, fmt.Errorf("line %d: malformed proc record", line)
			}
			if node < 0 || node > math.MaxInt32 {
				return nil, fmt.Errorf("line %d: node %d out of range", line, node)
			}
			t.Procs = append(t.Procs, Process{Node: blockdev.NodeID(node)})
		case "step":
			if len(t.Procs) == 0 {
				return nil, fmt.Errorf("line %d: step before any proc", line)
			}
			var think, file, off, size int64
			var kind string
			if n, err := fmt.Sscanf(text, "step %d %s %d %d %d", &think, &kind, &file, &off, &size); n != 5 || err != nil {
				return nil, fmt.Errorf("line %d: malformed step record", line)
			}
			k := OpRead
			switch kind {
			case "r":
			case "w":
				k = OpWrite
			case "c":
				k = OpClose
			default:
				return nil, fmt.Errorf("line %d: unknown op kind %q", line, kind)
			}
			if think < 0 {
				return nil, fmt.Errorf("line %d: negative think time %d", line, think)
			}
			if file < 0 || file > math.MaxInt32 {
				return nil, fmt.Errorf("line %d: file id %d out of range", line, file)
			}
			if k != OpClose && (off < 0 || size <= 0) {
				return nil, fmt.Errorf("line %d: step has range (%d,%d)", line, off, size)
			}
			p := &t.Procs[len(t.Procs)-1]
			p.Steps = append(p.Steps, Step{
				Think:  sim.Duration(think),
				Kind:   k,
				File:   blockdev.FileID(file),
				Offset: off,
				Size:   size,
			})
		default:
			return nil, fmt.Errorf("line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Name == "" {
		return nil, fmt.Errorf("trace has no header")
	}
	return t, nil
}
