package workload

import (
	"math"
	"reflect"
	"testing"
)

// TestOLTPSameSeedReproducible: generation must be a pure function of
// the parameters.
func TestOLTPSameSeedReproducible(t *testing.T) {
	a, err := GenerateOLTP(DefaultOLTPParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateOLTP(DefaultOLTPParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different OLTP traces")
	}
	p := DefaultOLTPParams()
	p.Seed = 2
	c, err := GenerateOLTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical OLTP traces")
	}
}

// TestOLTPValidates: the generated trace must pass the trace
// consistency checks for its own machine size.
func TestOLTPValidates(t *testing.T) {
	p := DefaultOLTPParams()
	tr, err := GenerateOLTP(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(p.Nodes, p.BlockSize); err != nil {
		t.Fatal(err)
	}
}

// TestOLTPMixAndSpans checks the step mix against the configured
// probabilities and the span-length envelope: point requests are one
// block, scans are uniform in [2, MaxScanBlocks], writes only happen
// to data blocks just read, and the write share of point transactions
// tracks WriteProb.
func TestOLTPMixAndSpans(t *testing.T) {
	p := DefaultOLTPParams()
	p.Clients = 50
	p.TxPerClient = 1000
	tr, err := GenerateOLTP(p)
	if err != nil {
		t.Fatal(err)
	}

	var points, scans, writes int
	scanLens := make(map[int64]int)
	indexTop := int64(p.IndexBlocks) * p.BlockSize
	for _, proc := range tr.Procs {
		for _, st := range proc.Steps {
			blocks := st.Size / p.BlockSize
			switch {
			case st.Kind == OpWrite:
				writes++
				if blocks != 1 || st.Offset < indexTop {
					t.Fatalf("write of %d blocks at offset %d — updates must be single data blocks", blocks, st.Offset)
				}
			case blocks == 1:
				points++
			default:
				scans++
				scanLens[blocks]++
				if blocks < 2 || blocks > int64(p.MaxScanBlocks) {
					t.Fatalf("scan of %d blocks outside [2, %d]", blocks, p.MaxScanBlocks)
				}
				if st.Offset < indexTop {
					t.Fatalf("scan starts in the index region (offset %d)", st.Offset)
				}
			}
		}
	}

	// Transaction mix: each scan is one step, each point transaction
	// two reads (+ optional write).
	tx := scans + points/2
	if gotScan := float64(scans) / float64(tx); math.Abs(gotScan-p.ScanProb) > 0.02 {
		t.Errorf("scan share = %.3f, want ~%v", gotScan, p.ScanProb)
	}
	if gotWrite := float64(writes) / float64(points/2); math.Abs(gotWrite-p.WriteProb) > 0.03 {
		t.Errorf("write share of point transactions = %.3f, want ~%v", gotWrite, p.WriteProb)
	}
	// Scan lengths roughly uniform: every admissible length occurs.
	for l := int64(2); l <= int64(p.MaxScanBlocks); l++ {
		if scanLens[l] == 0 {
			t.Errorf("scan length %d never generated", l)
		}
	}
}

// TestOLTPIndexThenData: point transactions must read an index block
// immediately followed by a data block of the same table — the
// recurring transition the association predictors are built to catch.
func TestOLTPIndexThenData(t *testing.T) {
	p := DefaultOLTPParams()
	p.ScanProb = 0 // pure point workload
	tr, err := GenerateOLTP(p)
	if err != nil {
		t.Fatal(err)
	}
	indexTop := int64(p.IndexBlocks) * p.BlockSize
	pairs := make(map[[2]int64]bool) // (index offset, data offset) pairs seen
	for _, proc := range tr.Procs {
		steps := proc.Steps
		for i := 0; i < len(steps); {
			if steps[i].Offset >= indexTop {
				t.Fatalf("transaction starts with a data access at offset %d", steps[i].Offset)
			}
			if i+1 >= len(steps) || steps[i+1].Offset < indexTop || steps[i+1].File != steps[i].File {
				t.Fatal("index read not followed by a same-table data read")
			}
			pairs[[2]int64{steps[i].Offset, steps[i+1].Offset}] = true
			i += 2
			if i < len(steps) && steps[i].Kind == OpWrite {
				i++
			}
		}
	}
	// The key layout is fixed, so the distinct (index, data) pairs are
	// bounded by the key count — popularity concentrates transactions
	// onto recurring transitions instead of spraying fresh ones.
	if len(pairs) > p.HotKeys {
		t.Fatalf("%d distinct index->data transitions for %d keys", len(pairs), p.HotKeys)
	}
}

// TestOLTPValidateRejects: parameter validation must catch degenerate
// shapes.
func TestOLTPValidateRejects(t *testing.T) {
	bad := []func(*OLTPParams){
		func(p *OLTPParams) { p.Tables = 0 },
		func(p *OLTPParams) { p.IndexBlocks = 0 },
		func(p *OLTPParams) { p.HotKeys = 0 },
		func(p *OLTPParams) { p.ZipfSkew = 0 },
		func(p *OLTPParams) { p.ScanProb = 1.5 },
		func(p *OLTPParams) { p.WriteProb = -0.1 },
		func(p *OLTPParams) { p.MaxScanBlocks = 1 },
		func(p *OLTPParams) { p.BlockSize = 0 },
	}
	for i, mutate := range bad {
		p := DefaultOLTPParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}
