package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/blockdev"
)

func TestCharismaGeneratesValidTrace(t *testing.T) {
	p := DefaultCharismaParams()
	tr, err := GenerateCharisma(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(p.Nodes, p.BlockSize); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Procs); got != p.Apps*p.ProcsPerApp {
		t.Errorf("procs = %d, want %d", got, p.Apps*p.ProcsPerApp)
	}
	// Data files plus one scratch file per application.
	if len(tr.FileBlocks) != p.Apps*(p.FilesPerApp+1) {
		t.Errorf("files = %d, want %d", len(tr.FileBlocks), p.Apps*(p.FilesPerApp+1))
	}
	if tr.TotalSteps() == 0 || tr.ReadSteps() == 0 {
		t.Error("empty trace")
	}
}

func TestCharismaDeterministic(t *testing.T) {
	p := DefaultCharismaParams()
	a, _ := GenerateCharisma(p)
	b, _ := GenerateCharisma(p)
	if a.TotalSteps() != b.TotalSteps() {
		t.Fatalf("step counts differ: %d vs %d", a.TotalSteps(), b.TotalSteps())
	}
	for i := range a.Procs {
		for j := range a.Procs[i].Steps {
			if a.Procs[i].Steps[j] != b.Procs[i].Steps[j] {
				t.Fatalf("step %d/%d differs across runs", i, j)
			}
		}
	}
	p2 := p
	p2.Seed = 2
	c, _ := GenerateCharisma(p2)
	if c.TotalSteps() == a.TotalSteps() {
		// Same step count is possible but full equality is not.
		same := true
	outer:
		for i := range a.Procs {
			for j := range a.Procs[i].Steps {
				if a.Procs[i].Steps[j] != c.Procs[i].Steps[j] {
					same = false
					break outer
				}
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestCharismaFilesAreLargeAndHeadsPartial(t *testing.T) {
	p := DefaultCharismaParams()
	tr, _ := GenerateCharisma(p)
	// Mean data-file size should be in the vicinity of MeanFileBlocks
	// (scratch files are fixed-size and excluded).
	var total int64
	var n int
	for _, b := range tr.FileBlocks {
		if int(b) == p.ScratchBlocks {
			continue
		}
		total += int64(b)
		n++
	}
	mean := float64(total) / float64(n)
	if mean < float64(p.MeanFileBlocks)/3 || mean > float64(p.MeanFileBlocks)*3 {
		t.Errorf("mean file blocks %.0f, configured %d", mean, p.MeanFileBlocks)
	}
	// No read step may touch the cold tail beyond the accessed
	// fraction (writes include the whole-scratch hot updates).
	for _, proc := range tr.Procs {
		for _, s := range proc.Steps {
			if s.Kind != OpRead {
				continue
			}
			endBlock := (s.Offset + s.Size - 1) / p.BlockSize
			fb := int64(tr.FileBlocks[s.File])
			head := int64(float64(fb) * p.AccessedFraction)
			if head < 4 {
				head = 4
			}
			if endBlock >= head {
				t.Fatalf("read touches tail: block %d of head %d (file %d, %d blocks)",
					endBlock, head, s.File, fb)
			}
		}
	}
}

func TestCharismaHasWritesAndLargeRequests(t *testing.T) {
	tr, _ := GenerateCharisma(DefaultCharismaParams())
	writes, large := 0, 0
	for _, proc := range tr.Procs {
		for _, s := range proc.Steps {
			if s.Kind == OpWrite {
				writes++
			}
			if s.Size >= 8*8192 {
				large++
			}
		}
	}
	if writes == 0 {
		t.Error("no write steps")
	}
	if large == 0 {
		t.Error("no large requests (CHARISMA byte mix needs them)")
	}
}

func TestCharismaSharing(t *testing.T) {
	// Processes of one app must share files: some file must be read
	// by more than one process.
	tr, _ := GenerateCharisma(DefaultCharismaParams())
	users := make(map[blockdev.FileID]map[blockdev.NodeID]bool)
	for _, proc := range tr.Procs {
		for _, s := range proc.Steps {
			if users[s.File] == nil {
				users[s.File] = make(map[blockdev.NodeID]bool)
			}
			users[s.File][proc.Node] = true
		}
	}
	shared := 0
	for _, u := range users {
		if len(u) > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no file is shared across nodes")
	}
}

func TestCharismaValidation(t *testing.T) {
	bad := []func(*CharismaParams){
		func(p *CharismaParams) { p.Nodes = 0 },
		func(p *CharismaParams) { p.Apps = 0 },
		func(p *CharismaParams) { p.ProcsPerApp = 0 },
		func(p *CharismaParams) { p.BurstLen = 0 },
		func(p *CharismaParams) { p.ScratchBlocks = 0 }, // hot writes still on
		func(p *CharismaParams) { p.FilesPerApp = 0 },
		func(p *CharismaParams) { p.MeanFileBlocks = 1 },
		func(p *CharismaParams) { p.AccessedFraction = 0 },
		func(p *CharismaParams) { p.AccessedFraction = 1.5 },
		func(p *CharismaParams) { p.Phases = 0 },
		func(p *CharismaParams) { p.MeanThink = -1 },
		func(p *CharismaParams) { p.BlockSize = 0 },
	}
	for i, mut := range bad {
		p := DefaultCharismaParams()
		mut(&p)
		if _, err := GenerateCharisma(p); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSpriteGeneratesValidTrace(t *testing.T) {
	p := DefaultSpriteParams()
	tr, err := GenerateSprite(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(p.Nodes, p.BlockSize); err != nil {
		t.Fatal(err)
	}
	if len(tr.Procs) != p.Nodes {
		t.Errorf("procs = %d, want one per node (%d)", len(tr.Procs), p.Nodes)
	}
}

func TestSpriteFilesAreSmall(t *testing.T) {
	p := DefaultSpriteParams()
	tr, _ := GenerateSprite(p)
	var total int64
	small := 0
	for _, b := range tr.FileBlocks {
		total += int64(b)
		if b <= 8 {
			small++
		}
	}
	mean := float64(total) / float64(len(tr.FileBlocks))
	if mean > 20 {
		t.Errorf("mean Sprite file = %.1f blocks; should be small", mean)
	}
	if float64(small)/float64(len(tr.FileBlocks)) < 0.5 {
		t.Error("fewer than half the files are small")
	}
}

func TestSpriteSequentialSessions(t *testing.T) {
	p := DefaultSpriteParams()
	p.SessionsPerClient = 20
	p.Nodes = 4
	p.DBProb = 0 // db sessions are strided by design; tested separately
	tr, _ := GenerateSprite(p)
	// Within one process, runs of steps on the same file must be
	// sequential passes starting at offset 0 covering the whole file
	// or (for partial read sessions) its first half.
	whole, partial := 0, 0
	for _, proc := range tr.Procs {
		i := 0
		for i < len(proc.Steps) {
			if proc.Steps[i].Kind == OpClose {
				i++
				continue
			}
			f := proc.Steps[i].File
			want := int64(0)
			for i < len(proc.Steps) && proc.Steps[i].Kind != OpClose &&
				proc.Steps[i].File == f && proc.Steps[i].Offset == want {
				want += proc.Steps[i].Size
				i++
			}
			fb := int64(tr.FileBlocks[f])
			half := (fb + 1) / 2 * p.BlockSize
			switch want {
			case fb * p.BlockSize:
				whole++
			case half:
				partial++
			default:
				t.Fatalf("session on file %d covered %d bytes; file is %d bytes",
					f, want, fb*p.BlockSize)
			}
		}
	}
	if whole == 0 {
		t.Error("no whole-file sessions")
	}
	if partial == 0 {
		t.Error("no partial sessions despite PartialReadProb > 0")
	}
}

func TestSpriteLittleSharing(t *testing.T) {
	p := DefaultSpriteParams()
	tr, _ := GenerateSprite(p)
	users := make(map[blockdev.FileID]map[blockdev.NodeID]bool)
	for _, proc := range tr.Procs {
		for _, s := range proc.Steps {
			if users[s.File] == nil {
				users[s.File] = make(map[blockdev.NodeID]bool)
			}
			users[s.File][proc.Node] = true
		}
	}
	shared, totalUsed := 0, 0
	for _, u := range users {
		totalUsed++
		if len(u) > 1 {
			shared++
		}
	}
	frac := float64(shared) / float64(totalUsed)
	if frac > 0.2 {
		t.Errorf("%.0f%% of used files are shared; Sprite should share little", frac*100)
	}
	if shared == 0 {
		t.Error("no sharing at all; the shared pool is not being used")
	}
}

func TestSpriteTemporalLocality(t *testing.T) {
	p := DefaultSpriteParams()
	tr, _ := GenerateSprite(p)
	// Zipf reuse: each client must revisit files across sessions.
	proc := tr.Procs[0]
	seen := make(map[blockdev.FileID]int)
	for _, s := range proc.Steps {
		if s.Offset == 0 {
			seen[s.File]++
		}
	}
	revisited := 0
	for _, n := range seen {
		if n > 1 {
			revisited++
		}
	}
	if revisited == 0 {
		t.Error("client never re-opened a file; no temporal locality")
	}
}

func TestSpriteDBSessionsAreStrided(t *testing.T) {
	p := DefaultSpriteParams()
	p.Nodes = 2
	p.SessionsPerClient = 200
	p.DBProb = 0.5
	tr, _ := GenerateSprite(p)
	found := false
	for _, proc := range tr.Procs {
		for i := 1; i < len(proc.Steps); i++ {
			a, b := proc.Steps[i-1], proc.Steps[i]
			if a.Kind != OpRead || b.Kind != OpRead || a.File != b.File {
				continue
			}
			gap := (b.Offset - a.Offset) / p.BlockSize
			if gap == int64(p.DBStride) {
				found = true
			}
		}
	}
	if !found {
		t.Error("no strided db session found")
	}
}

func TestSpriteValidation(t *testing.T) {
	bad := []func(*SpriteParams){
		func(p *SpriteParams) { p.Nodes = 0 },
		func(p *SpriteParams) { p.FilesPerClient = 0 },
		func(p *SpriteParams) { p.SessionsPerClient = 0 },
		func(p *SpriteParams) { p.SharedFiles = -1 },
		func(p *SpriteParams) { p.SharedProb = 1.5 },
		func(p *SpriteParams) { p.SharedProb = 0.5; p.SharedFiles = 0 },
		func(p *SpriteParams) { p.MeanFileBlocks = 0 },
		func(p *SpriteParams) { p.WriteProb = -0.1 },
		func(p *SpriteParams) { p.ZipfSkew = 0 },
		func(p *SpriteParams) { p.MeanThink = -1 },
		func(p *SpriteParams) { p.BlockSize = 0 },
	}
	for i, mut := range bad {
		p := DefaultSpriteParams()
		mut(&p)
		if _, err := GenerateSprite(p); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	p := DefaultSpriteParams()
	p.Nodes = 2
	p.SessionsPerClient = 3
	base, _ := GenerateSprite(p)
	if err := base.Validate(p.Nodes, p.BlockSize); err != nil {
		t.Fatal(err)
	}
	corrupt := func(f func(*Trace)) error {
		tr, _ := GenerateSprite(p)
		f(tr)
		return tr.Validate(p.Nodes, p.BlockSize)
	}
	cases := []func(*Trace){
		func(tr *Trace) { tr.Procs[0].Node = 99 },
		func(tr *Trace) { tr.Procs[0].Steps[0].File = 9999 },
		func(tr *Trace) { tr.Procs[0].Steps[0].Size = 0 },
		func(tr *Trace) { tr.Procs[0].Steps[0].Offset = -1 },
		func(tr *Trace) { tr.Procs[0].Steps[0].Offset = 1 << 40 },
		func(tr *Trace) { tr.Procs[0].Steps[0].Think = -1 },
		func(tr *Trace) { tr.Procs = nil },
	}
	for i, f := range cases {
		if corrupt(f) == nil {
			t.Errorf("corruption %d not detected", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := DefaultSpriteParams()
	p.Nodes = 3
	p.SessionsPerClient = 5
	p.FilesPerClient = 10
	orig, _ := GenerateSprite(p)
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Errorf("name %q, want %q", got.Name, orig.Name)
	}
	if len(got.FileBlocks) != len(orig.FileBlocks) {
		t.Fatalf("file count %d, want %d", len(got.FileBlocks), len(orig.FileBlocks))
	}
	for id, b := range orig.FileBlocks {
		if got.FileBlocks[id] != b {
			t.Errorf("file %d blocks %d, want %d", id, got.FileBlocks[id], b)
		}
	}
	if len(got.Procs) != len(orig.Procs) {
		t.Fatalf("proc count differs")
	}
	for i := range orig.Procs {
		if got.Procs[i].Node != orig.Procs[i].Node {
			t.Errorf("proc %d node differs", i)
		}
		if len(got.Procs[i].Steps) != len(orig.Procs[i].Steps) {
			t.Fatalf("proc %d step count differs", i)
		}
		for j := range orig.Procs[i].Steps {
			if got.Procs[i].Steps[j] != orig.Procs[i].Steps[j] {
				t.Fatalf("proc %d step %d differs: %+v vs %+v",
					i, j, got.Procs[i].Steps[j], orig.Procs[i].Steps[j])
			}
		}
	}
}

func TestDecodeRejectsMalformedInput(t *testing.T) {
	cases := []string{
		"",                                  // no header
		"file 0 10\n",                       // no header
		"trace x\nstep 1 r 0 0 1\n",         // step before proc
		"trace x\nfile zero ten\n",          // bad file record
		"trace x\nproc abc\n",               // bad proc record
		"trace x\nproc 0\nstep 1 q 0 0 1\n", // unknown kind
		"trace x\nproc 0\nstep nope\n",      // bad step
		"trace x y\n",                       // extra header field
		"bogus\n",                           // unknown record
	}
	for i, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\ntrace t\n\nfile 0 4\nproc 1\n# mid\nstep 5 w 0 0 8192\n"
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "t" || len(tr.Procs) != 1 || len(tr.Procs[0].Steps) != 1 {
		t.Errorf("decoded %+v", tr)
	}
	s := tr.Procs[0].Steps[0]
	if s.Kind != OpWrite || s.Think != 5 || s.Size != 8192 {
		t.Errorf("step = %+v", s)
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("kind strings wrong")
	}
}

func TestDistinctBlocks(t *testing.T) {
	tr := &Trace{FileBlocks: map[blockdev.FileID]blockdev.BlockNo{0: 10, 1: 5}}
	if tr.DistinctBlocks() != 15 {
		t.Errorf("DistinctBlocks = %d", tr.DistinctBlocks())
	}
}
