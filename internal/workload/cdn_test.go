package workload

import (
	"math"
	"reflect"
	"testing"
)

// TestCDNSameSeedReproducible: generation must be a pure function of
// the parameters (the PCG-stream property the loadgen tests pin).
func TestCDNSameSeedReproducible(t *testing.T) {
	a, err := GenerateCDN(DefaultCDNParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCDN(DefaultCDNParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different CDN traces")
	}
	p := DefaultCDNParams()
	p.Seed = 2
	c, err := GenerateCDN(p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical CDN traces")
	}
}

// TestCDNValidates: the generated trace must pass the trace
// consistency checks for its own machine size.
func TestCDNValidates(t *testing.T) {
	p := DefaultCDNParams()
	tr, err := GenerateCDN(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(p.Nodes, p.BlockSize); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.TotalSteps(), p.Clients*p.PagesPerClient*(1+p.AssetsPerPage); got != want {
		t.Fatalf("TotalSteps = %d, want %d", got, want)
	}
}

// TestCDNZipfPopularity chi-squared-tests root-object popularity
// against the configured Zipf mass. Single-block objects on a single
// volume with no asset groups make every step a root pick and the
// block number the object's Zipf index.
func TestCDNZipfPopularity(t *testing.T) {
	const objects = 50
	const s = 1.1
	p := DefaultCDNParams()
	p.Volumes = 1
	p.ObjectsPerVolume = objects
	p.MaxObjectBlocks = 1
	p.AssetsPerPage = 0
	p.ZipfSkew = s
	p.Clients = 50
	p.PagesPerClient = 2000
	tr, err := GenerateCDN(p)
	if err != nil {
		t.Fatal(err)
	}

	counts := make([]int, objects)
	n := 0
	for _, proc := range tr.Procs {
		for _, st := range proc.Steps {
			counts[st.Offset/p.BlockSize]++
			n++
		}
	}

	var hsum float64
	for i := 1; i <= objects; i++ {
		hsum += 1 / math.Pow(float64(i), s)
	}
	var chi2 float64
	for i := 1; i <= objects; i++ {
		exp := float64(n) / math.Pow(float64(i), s) / hsum
		d := float64(counts[i-1]) - exp
		chi2 += d * d / exp
	}
	// Chi-squared critical value for df=49 at alpha=0.001 is ~85.4.
	if chi2 > 85.4 {
		t.Fatalf("chi-squared = %.1f against Zipf(s=%v), want < 85.4", chi2, s)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if want := math.Pow(2, s); math.Abs(ratio-want) > 0.25*want {
		t.Fatalf("p(rank1)/p(rank2) = %.2f, want ~%.2f", ratio, want)
	}
}

// TestCDNPageGroupsAreStable: the same root must pull the same asset
// set every time — the stability Mithril/Markov mine. Collected over
// the whole trace, each root's observed successor multiset must be one
// fixed group of AssetsPerPage objects.
func TestCDNPageGroupsAreStable(t *testing.T) {
	p := DefaultCDNParams()
	p.Volumes = 1
	p.MaxObjectBlocks = 1
	tr, err := GenerateCDN(p)
	if err != nil {
		t.Fatal(err)
	}
	span := 1 + p.AssetsPerPage
	groups := make(map[int64]map[int64]bool)
	for _, proc := range tr.Procs {
		for i := 0; i+span <= len(proc.Steps); i += span {
			root := proc.Steps[i].Offset / p.BlockSize
			g := groups[root]
			if g == nil {
				g = make(map[int64]bool)
				groups[root] = g
			}
			for _, st := range proc.Steps[i+1 : i+span] {
				g[st.Offset/p.BlockSize] = true
			}
		}
	}
	for root, g := range groups {
		if len(g) > p.AssetsPerPage {
			t.Fatalf("root %d pulled %d distinct assets, group size is %d — page groups not stable",
				root, len(g), p.AssetsPerPage)
		}
	}
}

// TestCDNValidateRejects: parameter validation must catch degenerate
// shapes.
func TestCDNValidateRejects(t *testing.T) {
	bad := []func(*CDNParams){
		func(p *CDNParams) { p.Volumes = 0 },
		func(p *CDNParams) { p.ObjectsPerVolume = 1 },
		func(p *CDNParams) { p.MaxObjectBlocks = 0 },
		func(p *CDNParams) { p.ZipfSkew = 0 },
		func(p *CDNParams) { p.AssetsPerPage = -1 },
		func(p *CDNParams) { p.Clients = 0 },
		func(p *CDNParams) { p.BlockSize = 0 },
	}
	for i, mutate := range bad {
		p := DefaultCDNParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}
