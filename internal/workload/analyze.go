package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/blockdev"
)

// Analysis summarizes a trace's characteristics — the properties the
// published CHARISMA and Sprite characterizations report and the
// synthetic generators are calibrated against. cmd/tracegen prints it;
// tests assert the generators hit their targets.
type Analysis struct {
	Name string

	Processes int
	Files     int
	UsedFiles int

	Reads  int
	Writes int
	Closes int

	// Request-size distribution in blocks.
	SizeBlocksP50 int
	SizeBlocksP90 int
	SizeBlocksMax int
	// LargeRequestByteShare is the fraction of bytes moved by requests
	// of at least 8 blocks (CHARISMA: small requests dominate counts,
	// large requests dominate bytes).
	LargeRequestByteShare float64

	// SequentialFraction is the share of successive same-file requests
	// by one process that continue exactly where the previous ended.
	SequentialFraction float64

	// FileBlocksP50 and FileBlocksMax characterize file sizes.
	FileBlocksP50 int
	FileBlocksMax int

	// SharedFileFraction is the share of used files touched by more
	// than one node.
	SharedFileFraction float64

	// FootprintBlocks is the total declared data volume.
	FootprintBlocks int64
}

// Analyze computes the summary for a trace under the given block size.
func Analyze(tr *Trace, blockSize int64) Analysis {
	a := Analysis{
		Name:            tr.Name,
		Processes:       len(tr.Procs),
		Files:           len(tr.FileBlocks),
		FootprintBlocks: tr.DistinctBlocks(),
	}
	var sizes []int
	var totalBytes, largeBytes int64
	users := make(map[blockdev.FileID]map[blockdev.NodeID]bool)
	seq, seqTotal := 0, 0
	for pi := range tr.Procs {
		p := &tr.Procs[pi]
		lastEnd := make(map[blockdev.FileID]int64)
		for _, s := range p.Steps {
			switch s.Kind {
			case OpClose:
				a.Closes++
				continue
			case OpRead:
				a.Reads++
			case OpWrite:
				a.Writes++
			}
			span := blockdev.ByteRangeToSpan(s.File, s.Offset, s.Size, blockSize)
			sizes = append(sizes, int(span.Count))
			totalBytes += s.Size
			if span.Count >= 8 {
				largeBytes += s.Size
			}
			if users[s.File] == nil {
				users[s.File] = make(map[blockdev.NodeID]bool)
			}
			users[s.File][p.Node] = true
			if end, ok := lastEnd[s.File]; ok {
				seqTotal++
				if s.Offset == end {
					seq++
				}
			}
			lastEnd[s.File] = s.Offset + s.Size
		}
	}
	if len(sizes) > 0 {
		sort.Ints(sizes)
		a.SizeBlocksP50 = sizes[len(sizes)/2]
		a.SizeBlocksP90 = sizes[len(sizes)*9/10]
		a.SizeBlocksMax = sizes[len(sizes)-1]
	}
	if totalBytes > 0 {
		a.LargeRequestByteShare = float64(largeBytes) / float64(totalBytes)
	}
	if seqTotal > 0 {
		a.SequentialFraction = float64(seq) / float64(seqTotal)
	}
	fileSizes := make([]int, 0, len(tr.FileBlocks))
	for _, b := range tr.FileBlocks {
		fileSizes = append(fileSizes, int(b))
	}
	sort.Ints(fileSizes)
	if len(fileSizes) > 0 {
		a.FileBlocksP50 = fileSizes[len(fileSizes)/2]
		a.FileBlocksMax = fileSizes[len(fileSizes)-1]
	}
	a.UsedFiles = len(users)
	shared := 0
	for _, u := range users {
		if len(u) > 1 {
			shared++
		}
	}
	if a.UsedFiles > 0 {
		a.SharedFileFraction = float64(shared) / float64(a.UsedFiles)
	}
	return a
}

// Render formats the analysis as an aligned text block.
func (a Analysis) Render() string {
	var b strings.Builder
	row := func(label, val string) { fmt.Fprintf(&b, "%-26s %s\n", label, val) }
	row("trace", a.Name)
	row("processes", fmt.Sprint(a.Processes))
	row("files (declared/used)", fmt.Sprintf("%d / %d", a.Files, a.UsedFiles))
	row("footprint", fmt.Sprintf("%d blocks (%.1f MB at 8KB)", a.FootprintBlocks, float64(a.FootprintBlocks)*8192/1e6))
	row("steps (r/w/close)", fmt.Sprintf("%d / %d / %d", a.Reads, a.Writes, a.Closes))
	row("request blocks p50/p90/max", fmt.Sprintf("%d / %d / %d", a.SizeBlocksP50, a.SizeBlocksP90, a.SizeBlocksMax))
	row("large-request byte share", fmt.Sprintf("%.0f%%", 100*a.LargeRequestByteShare))
	row("sequential successor rate", fmt.Sprintf("%.0f%%", 100*a.SequentialFraction))
	row("file blocks p50/max", fmt.Sprintf("%d / %d", a.FileBlocksP50, a.FileBlocksMax))
	row("files shared across nodes", fmt.Sprintf("%.0f%%", 100*a.SharedFileFraction))
	return b.String()
}
