package workload

import (
	"fmt"
	"math"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

// SpriteParams configures the synthetic Sprite-like workload: the
// office/engineering activity of a network of workstations as
// characterized by Baker et al. The published properties reproduced:
//
//   - many small files (most under a few tens of kilobytes), so a
//     large share of blocks are first blocks no history can predict;
//   - whole-file sequential access in small requests;
//   - strong temporal locality: a small hot set of files is re-read
//     again and again (modelled with a per-client Zipf);
//   - very little inter-client sharing (each client's working set is
//     private except for a small shared pool), which is why the
//     paper's §5.2 sees xFS behave like PAFS under Sprite.
type SpriteParams struct {
	Seed  uint64
	Nodes int // machine size (NOW: 50)

	// FilesPerClient is each client's private working-set size.
	FilesPerClient int
	// SharedFiles is the pool visible to every client.
	SharedFiles int
	// SharedProb is the probability one session targets the shared
	// pool instead of the private set.
	SharedProb float64
	// MeanFileBlocks sets the log-normal file-size scale; Sprite
	// files are small.
	MeanFileBlocks int
	// SessionsPerClient is how many open-read/write-close sessions
	// each client performs.
	SessionsPerClient int
	// WriteProb is the probability a session rewrites the file
	// instead of reading it.
	WriteProb float64
	// PartialReadProb is the probability a read session stops halfway
	// through the file instead of reading it whole. Baker et al.
	// found most-but-not-all accesses are whole-file; the partial
	// sessions are what blind sequential readahead (OBA) wastes work
	// on (§5.2's 32% vs 15% misprediction comparison).
	PartialReadProb float64
	// DBProb is the probability a session targets the client's
	// database-style file: a larger file visited with a fixed stride,
	// the regular-but-non-sequential access OBA mispredicts on every
	// request and IS_PPM learns after one visit.
	DBProb float64
	// DBFileBlocks sizes each client's database file.
	DBFileBlocks int
	// DBStride is the database visit stride in blocks (>= 2 so the
	// next sequential block is never the next accessed one).
	DBStride int
	// ZipfSkew shapes per-client file popularity.
	ZipfSkew float64
	// MeanThink is the mean compute time between the requests of a
	// session; think between sessions is 10x this.
	MeanThink sim.Duration
	// BlockSize converts blocks to bytes.
	BlockSize int64
}

// DefaultSpriteParams returns the configuration used by the paper
// reproduction experiments (scaled in time like the CHARISMA one).
func DefaultSpriteParams() SpriteParams {
	return SpriteParams{
		Seed:              1,
		Nodes:             50,
		FilesPerClient:    220,
		SharedFiles:       60,
		SharedProb:        0.12,
		MeanFileBlocks:    5,
		SessionsPerClient: 420,
		WriteProb:         0.25,
		PartialReadProb:   0.25,
		DBProb:            0.18,
		DBFileBlocks:      48,
		DBStride:          3,
		ZipfSkew:          0.9,
		MeanThink:         sim.Milliseconds(15),
		BlockSize:         8 * 1024,
	}
}

// Validate reports a configuration error, if any.
func (p SpriteParams) Validate() error {
	switch {
	case p.Nodes <= 0 || p.FilesPerClient <= 0 || p.SessionsPerClient <= 0:
		return fmt.Errorf("sprite: non-positive shape parameter")
	case p.SharedFiles < 0 || p.SharedProb < 0 || p.SharedProb > 1:
		return fmt.Errorf("sprite: bad sharing parameters")
	case p.SharedProb > 0 && p.SharedFiles == 0:
		return fmt.Errorf("sprite: shared accesses configured with no shared files")
	case p.MeanFileBlocks <= 0:
		return fmt.Errorf("sprite: mean file blocks %d", p.MeanFileBlocks)
	case p.WriteProb < 0 || p.WriteProb > 1:
		return fmt.Errorf("sprite: write probability %v", p.WriteProb)
	case p.PartialReadProb < 0 || p.PartialReadProb > 1:
		return fmt.Errorf("sprite: partial-read probability %v", p.PartialReadProb)
	case p.DBProb < 0 || p.DBProb > 1:
		return fmt.Errorf("sprite: db probability %v", p.DBProb)
	case p.DBProb > 0 && (p.DBFileBlocks < 2 || p.DBStride < 2):
		return fmt.Errorf("sprite: db sessions need DBFileBlocks >= 2 and DBStride >= 2")
	case p.ZipfSkew <= 0:
		return fmt.Errorf("sprite: zipf skew %v", p.ZipfSkew)
	case p.MeanThink < 0:
		return fmt.Errorf("sprite: negative think")
	case p.BlockSize <= 0:
		return fmt.Errorf("sprite: block size %d", p.BlockSize)
	}
	return nil
}

// GenerateSprite builds the workload. The result is deterministic in
// the parameters.
func GenerateSprite(p SpriteParams) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	tr := &Trace{
		Name:       "sprite",
		FileBlocks: make(map[blockdev.FileID]blockdev.BlockNo),
	}
	newFile := func(r *sim.RNG) blockdev.FileID {
		id := blockdev.FileID(len(tr.FileBlocks))
		blocks := blockdev.BlockNo(r.LogNormal(math.Log(float64(p.MeanFileBlocks)), 0.8))
		if blocks < 1 {
			blocks = 1
		}
		tr.FileBlocks[id] = blocks
		return id
	}
	// Shared pool first, so its IDs are stable across parameters.
	shared := make([]blockdev.FileID, p.SharedFiles)
	for i := range shared {
		shared[i] = newFile(rng)
	}
	sharedZipf := zipfOrNil(p.SharedFiles, p.ZipfSkew)
	privateZipf := sim.NewZipfTable(p.FilesPerClient, p.ZipfSkew)

	for node := 0; node < p.Nodes; node++ {
		cRNG := rng.Split()
		private := make([]blockdev.FileID, p.FilesPerClient)
		for i := range private {
			private[i] = newFile(cRNG)
		}
		var dbFile blockdev.FileID = -1
		if p.DBProb > 0 {
			dbFile = blockdev.FileID(len(tr.FileBlocks))
			tr.FileBlocks[dbFile] = blockdev.BlockNo(p.DBFileBlocks)
		}
		proc := Process{Node: blockdev.NodeID(node)}
		for s := 0; s < p.SessionsPerClient; s++ {
			if dbFile >= 0 && cRNG.Bool(p.DBProb) {
				appendDBSession(&proc, tr, cRNG, p, dbFile)
				continue
			}
			var f blockdev.FileID
			if sharedZipf != nil && cRNG.Bool(p.SharedProb) {
				f = shared[sharedZipf.Sample(cRNG)]
			} else {
				f = private[privateZipf.Sample(cRNG)]
			}
			kind := OpRead
			if cRNG.Bool(p.WriteProb) {
				kind = OpWrite
			}
			blocks := tr.FileBlocks[f]
			if kind == OpRead && blocks > 1 && cRNG.Bool(p.PartialReadProb) {
				blocks = (blocks + 1) / 2 // stop halfway through
			}
			// Sequential pass in one-block requests; the first request
			// of a session carries the longer inter-session think.
			for b := blockdev.BlockNo(0); b < blocks; b++ {
				think := sim.Duration(cRNG.Exp(float64(p.MeanThink)))
				if b == 0 {
					think += sim.Duration(cRNG.Exp(float64(p.MeanThink) * 10))
				}
				proc.Steps = append(proc.Steps, Step{
					Think:  think,
					Kind:   kind,
					File:   f,
					Offset: int64(b) * p.BlockSize,
					Size:   p.BlockSize,
				})
			}
			proc.Steps = append(proc.Steps, Step{
				Think: sim.Duration(cRNG.Exp(float64(p.MeanThink))),
				Kind:  OpClose,
				File:  f,
			})
		}
		tr.Procs = append(tr.Procs, proc)
	}
	return tr, nil
}

// appendDBSession emits one strided visit of the client's database
// file — every DBStride-th block from block 0 — then a close. The
// stride repeats across sessions, so IS_PPM predicts it after one
// visit while One-Block-Ahead mispredicts every request.
func appendDBSession(proc *Process, tr *Trace, rng *sim.RNG, p SpriteParams, f blockdev.FileID) {
	blocks := tr.FileBlocks[f]
	// Sessions always visit the same congruence class (offset 0 mod
	// stride): the skipped blocks are *never* read, so One-Block-Ahead's
	// next-sequential guesses are pure waste while IS_PPM's learned
	// stride is exact — the asymmetry behind the paper's 32% vs 15%
	// misprediction comparison (§5.2).
	const start = blockdev.BlockNo(0)
	for b := start; b < blocks; b += blockdev.BlockNo(p.DBStride) {
		think := sim.Duration(rng.Exp(float64(p.MeanThink)))
		if b == start {
			think += sim.Duration(rng.Exp(float64(p.MeanThink) * 10))
		}
		proc.Steps = append(proc.Steps, Step{
			Think:  think,
			Kind:   OpRead,
			File:   f,
			Offset: int64(b) * p.BlockSize,
			Size:   p.BlockSize,
		})
	}
	proc.Steps = append(proc.Steps, Step{
		Think: sim.Duration(rng.Exp(float64(p.MeanThink))),
		Kind:  OpClose,
		File:  f,
	})
}

func zipfOrNil(n int, skew float64) *sim.ZipfTable {
	if n == 0 {
		return nil
	}
	return sim.NewZipfTable(n, skew)
}
