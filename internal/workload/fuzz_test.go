package workload

import (
	"bytes"
	"reflect"
	"testing"
)

// tinyCharisma and tinySprite generate small but structurally complete
// traces for seeding the parser fuzzer and exercising the round-trip.
func tinyCharisma(t testing.TB) *Trace {
	t.Helper()
	p := DefaultCharismaParams()
	p.Nodes = 4
	p.Apps = 2
	p.ProcsPerApp = 2
	p.FilesPerApp = 1
	p.MeanFileBlocks = 24
	p.Phases = 2
	p.WritePhaseEvery = 2
	p.WriteRunLength = 1
	p.ScratchBlocks = 8
	p.HotWritesPerPhase = 2
	tr, err := GenerateCharisma(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func tinySprite(t testing.TB) *Trace {
	t.Helper()
	p := DefaultSpriteParams()
	p.Nodes = 4
	p.FilesPerClient = 4
	p.SharedFiles = 2
	p.SessionsPerClient = 4
	tr, err := GenerateSprite(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func encodeToBytes(t testing.TB, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode feeds the trace parser arbitrary input. Two properties
// must hold: Decode never panics, and anything it accepts survives an
// Encode/Decode round-trip unchanged.
func FuzzDecode(f *testing.F) {
	f.Add(encodeToBytes(f, tinyCharisma(f)))
	f.Add(encodeToBytes(f, tinySprite(f)))
	for _, seed := range []string{
		"",
		"trace t\n",
		"trace t\nfile 1 10\nproc 0\nstep 0 r 1 0 512\n",
		"trace t\nfile 1 10\nproc 0\nstep 100 w 1 512 512\nstep 0 c 1 0 0\n",
		"trace t\n# comment\n\nfile 2 3\nproc 1\nstep 5 r 2 0 1\n",
		"step 0 r 1 0 512\n",                 // step before proc
		"trace t\nfile 1 0\n",                // zero-length file
		"trace t\nfile -1 10\n",              // negative id
		"trace t\nfile 1 10\nfile 1 10\n",    // duplicate file
		"trace t\nproc -3\n",                 // negative node
		"trace t\nfile 1 8589934592\n",       // blocks overflow int32
		"trace t\nproc 0\nstep -1 r 1 0 1\n", // negative think
		"trace t\nproc 0\nstep 0 x 1 0 1\n",  // unknown op
		"trace t\nproc 0\nstep 0 r 1 -1 0\n", // bad range
		"bogus record\n",
		"trace\n",
		"trace t\nfile 1\n",
		"trace t extra words\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := encodeToBytes(t, tr)
		tr2, err := Decode(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("accepted trace failed to round-trip: %v\nencoded:\n%s", err, out)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round-trip changed the trace:\nfirst:  %+v\nsecond: %+v", tr, tr2)
		}
	})
}

// TestDecodeRejections pins the parser's validation errors.
func TestDecodeRejections(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"empty", ""},
		{"no header", "file 1 10\n"},
		{"step before proc", "trace t\nstep 0 r 1 0 512\n"},
		{"zero blocks", "trace t\nfile 1 0\n"},
		{"negative blocks", "trace t\nfile 1 -5\n"},
		{"negative file id", "trace t\nfile -1 10\n"},
		{"duplicate file", "trace t\nfile 1 10\nfile 1 12\n"},
		{"file id overflow", "trace t\nfile 4294967296 10\n"},
		{"blocks overflow", "trace t\nfile 1 8589934592\n"},
		{"negative node", "trace t\nproc -1\n"},
		{"node overflow", "trace t\nproc 4294967296\n"},
		{"negative think", "trace t\nfile 1 10\nproc 0\nstep -1 r 1 0 1\n"},
		{"unknown op", "trace t\nfile 1 10\nproc 0\nstep 0 q 1 0 1\n"},
		{"zero size", "trace t\nfile 1 10\nproc 0\nstep 0 r 1 0 0\n"},
		{"negative offset", "trace t\nfile 1 10\nproc 0\nstep 0 w 1 -1 1\n"},
		{"step file overflow", "trace t\nproc 0\nstep 0 r 4294967296 0 1\n"},
		{"unknown record", "trace t\nwat 1\n"},
		{"bad header", "trace\n"},
	} {
		if _, err := Decode(bytes.NewReader([]byte(tc.in))); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
}

// TestDecodeAcceptsClose pins that close steps skip the range check
// (their offset and size carry no meaning).
func TestDecodeAcceptsClose(t *testing.T) {
	tr, err := Decode(bytes.NewReader([]byte("trace t\nfile 1 10\nproc 0\nstep 0 c 1 0 0\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Procs[0].Steps[0].Kind; got != OpClose {
		t.Fatalf("kind = %v, want close", got)
	}
}

// TestGeneratedTracesRoundTrip checks the real generators against the
// codec end to end, including think times and close steps.
func TestGeneratedTracesRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{tinyCharisma(t), tinySprite(t)} {
		out := encodeToBytes(t, tr)
		tr2, err := Decode(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("%s: round-trip changed the trace", tr.Name)
		}
		if tr2.TotalSteps() == 0 || tr2.DistinctBlocks() == 0 {
			t.Fatalf("%s: degenerate trace", tr.Name)
		}
		// Generated traces must themselves validate (8KB is the
		// generators' default block size).
		if err := tr2.Validate(4, 8*1024); err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
	}
}
