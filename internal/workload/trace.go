// Package workload models the two trace workloads of the paper's
// evaluation — CHARISMA (parallel scientific I/O on a parallel
// machine) and Sprite (office/engineering activity on a network of
// workstations) — as synthetic, seeded generators that reproduce the
// published characteristics of the original traces, which were never
// released at block granularity (see DESIGN.md, substitutions).
//
// A trace is a set of per-process closed loops: each process thinks
// for a while, issues one file request, waits for it to complete, and
// moves on. The closed loop matters: when prefetching speeds up reads,
// the application finishes sooner, dirty blocks live in the cache for
// less time, and the periodic write-back daemon writes them fewer
// times — the effect behind the paper's Table 2.
package workload

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

// OpKind is the kind of one traced request.
type OpKind int

// Request kinds.
const (
	OpRead OpKind = iota
	OpWrite
	// OpClose tells the file system this process is done with the
	// file for now; prefetch chains for it stop until the next
	// request. Offset and Size are ignored.
	OpClose
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "close"
	}
}

// Step is one closed-loop step of a process: think, then issue.
type Step struct {
	// Think is the CPU time consumed before issuing the request.
	Think sim.Duration
	// Kind is read or write.
	Kind OpKind
	// File is the target file.
	File blockdev.FileID
	// Offset and Size are in bytes; the file system converts them to
	// block spans, honouring the paper's two-bytes-two-blocks rule.
	Offset int64
	Size   int64
}

// Process is one traced process pinned to a node.
type Process struct {
	Node  blockdev.NodeID
	Steps []Step
}

// Trace is a complete workload.
type Trace struct {
	Name string
	// FileBlocks maps every file to its length in blocks; the file
	// systems need it to clip prefetching at end of file.
	FileBlocks map[blockdev.FileID]blockdev.BlockNo
	Procs      []Process
}

// TotalSteps returns the number of requests across all processes.
func (t *Trace) TotalSteps() int {
	n := 0
	for i := range t.Procs {
		n += len(t.Procs[i].Steps)
	}
	return n
}

// ReadSteps returns the number of read requests.
func (t *Trace) ReadSteps() int {
	n := 0
	for i := range t.Procs {
		for _, s := range t.Procs[i].Steps {
			if s.Kind == OpRead {
				n++
			}
		}
	}
	return n
}

// DistinctBlocks returns the total data footprint in blocks.
func (t *Trace) DistinctBlocks() int64 {
	var n int64
	for _, b := range t.FileBlocks {
		n += int64(b)
	}
	return n
}

// Validate checks internal consistency: every step's file exists, the
// byte range lies inside the file, nodes are within the machine, and
// sizes are positive.
func (t *Trace) Validate(nodes int, blockSize int64) error {
	if len(t.Procs) == 0 {
		return fmt.Errorf("workload %s: no processes", t.Name)
	}
	for pi := range t.Procs {
		p := &t.Procs[pi]
		if int(p.Node) < 0 || int(p.Node) >= nodes {
			return fmt.Errorf("workload %s: process %d on node %d outside machine of %d",
				t.Name, pi, p.Node, nodes)
		}
		for si, s := range p.Steps {
			fb, ok := t.FileBlocks[s.File]
			if !ok {
				return fmt.Errorf("workload %s: process %d step %d uses unknown file %d",
					t.Name, pi, si, s.File)
			}
			if s.Think < 0 {
				return fmt.Errorf("workload %s: process %d step %d negative think", t.Name, pi, si)
			}
			if s.Kind == OpClose {
				continue // offset and size unused
			}
			if s.Size <= 0 || s.Offset < 0 {
				return fmt.Errorf("workload %s: process %d step %d has range (%d,%d)",
					t.Name, pi, si, s.Offset, s.Size)
			}
			if s.Offset+s.Size > int64(fb)*blockSize {
				return fmt.Errorf("workload %s: process %d step %d reads past EOF of file %d",
					t.Name, pi, si, s.File)
			}
		}
	}
	return nil
}
