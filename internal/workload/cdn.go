package workload

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

// CDNParams configures a synthetic web/CDN edge-cache workload in the
// shape the block-prefetching literature after the paper evaluates
// against (MITHRIL's CDN traces, PPE's production CDN): many small
// objects with a Zipf popularity law, packed into large cache volume
// files, requested as *pages* — a root object followed by its fixed
// group of embedded assets — by many concurrent clients.
//
// The structural properties that open the scenario space beyond
// CHARISMA/Sprite:
//
//   - objects are small (a block or two), so sequential readahead
//     beyond an object's end is almost always wasted;
//   - a page's assets are scattered across the volume, so the *useful*
//     next blocks are not the neighbouring ones — One-Block-Ahead is
//     wrong by construction, and so is any linear policy's fallback;
//   - page composition is stable (the same root keeps pulling the same
//     assets) but the gaps between a root and its assets vary with
//     client timing, and many clients interleave on the same volume —
//     the sporadic-association / transition-matrix regime, hostile to
//     exact-history MRU chains.
type CDNParams struct {
	Seed  uint64
	Nodes int // machine size (NOW-style edge cluster)

	// Volumes is the number of cache volume files; ObjectsPerVolume
	// small objects are packed back to back into each.
	Volumes          int
	ObjectsPerVolume int
	// MaxObjectBlocks bounds object size; sizes are drawn uniformly
	// from [1, MaxObjectBlocks], skewed small.
	MaxObjectBlocks int
	// ZipfSkew shapes page popularity inside a volume.
	ZipfSkew float64
	// AssetsPerPage is the size of the fixed embedded-asset group each
	// root object pulls in (0 disables page structure entirely and
	// leaves pure Zipf point requests).
	AssetsPerPage int
	// Clients is the number of concurrent request loops;
	// PagesPerClient is how many page fetches each performs.
	Clients        int
	PagesPerClient int
	// MeanThink is the mean think time between the requests of one
	// page fetch; think between pages is 10x this.
	MeanThink sim.Duration
	// BlockSize converts blocks to bytes.
	BlockSize int64
}

// DefaultCDNParams returns the configuration used by the predictors
// experiment.
func DefaultCDNParams() CDNParams {
	return CDNParams{
		Seed:             1,
		Nodes:            50,
		Volumes:          6,
		ObjectsPerVolume: 512,
		MaxObjectBlocks:  3,
		ZipfSkew:         0.9,
		AssetsPerPage:    4,
		Clients:          40,
		PagesPerClient:   220,
		MeanThink:        sim.Milliseconds(6),
		BlockSize:        8 * 1024,
	}
}

// Validate reports a configuration error, if any.
func (p CDNParams) Validate() error {
	switch {
	case p.Nodes <= 0:
		return fmt.Errorf("cdn: nodes %d", p.Nodes)
	case p.Volumes <= 0 || p.ObjectsPerVolume <= 1:
		return fmt.Errorf("cdn: need at least one volume of two objects")
	case p.MaxObjectBlocks <= 0:
		return fmt.Errorf("cdn: max object blocks %d", p.MaxObjectBlocks)
	case p.ZipfSkew <= 0:
		return fmt.Errorf("cdn: zipf skew %v", p.ZipfSkew)
	case p.AssetsPerPage < 0 || p.AssetsPerPage >= p.ObjectsPerVolume:
		return fmt.Errorf("cdn: assets per page %d outside [0, objects)", p.AssetsPerPage)
	case p.Clients <= 0 || p.PagesPerClient <= 0:
		return fmt.Errorf("cdn: no clients or no pages")
	case p.MeanThink < 0:
		return fmt.Errorf("cdn: negative think")
	case p.BlockSize <= 0:
		return fmt.Errorf("cdn: block size %d", p.BlockSize)
	}
	return nil
}

// cdnVolume is one volume file's layout: where each object starts and
// how long it is, plus the fixed asset group of each object when used
// as a page root.
type cdnVolume struct {
	file   blockdev.FileID
	starts []blockdev.BlockNo
	sizes  []blockdev.BlockNo
	assets [][]int
}

// GenerateCDN builds the workload. The result is deterministic in the
// parameters.
func GenerateCDN(p CDNParams) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	tr := &Trace{
		Name:       "cdn",
		FileBlocks: make(map[blockdev.FileID]blockdev.BlockNo),
	}

	// Lay out the volumes: objects packed back to back, sizes skewed
	// small (most web objects fit one block).
	layoutRNG := rng.Split()
	vols := make([]*cdnVolume, p.Volumes)
	for vi := range vols {
		v := &cdnVolume{
			file:   blockdev.FileID(vi),
			starts: make([]blockdev.BlockNo, p.ObjectsPerVolume),
			sizes:  make([]blockdev.BlockNo, p.ObjectsPerVolume),
			assets: make([][]int, p.ObjectsPerVolume),
		}
		var next blockdev.BlockNo
		for oi := 0; oi < p.ObjectsPerVolume; oi++ {
			size := blockdev.BlockNo(1)
			if p.MaxObjectBlocks > 1 && layoutRNG.Float64() < 0.3 {
				size = blockdev.BlockNo(2 + layoutRNG.Intn(p.MaxObjectBlocks-1))
			}
			v.starts[oi] = next
			v.sizes[oi] = size
			next += size
		}
		tr.FileBlocks[v.file] = next
		// Fix each root's embedded-asset group: a stable set of other
		// objects of the same volume, scattered anywhere in it. The
		// stability is the signal; the scatter is what breaks linear
		// prediction.
		for oi := 0; oi < p.ObjectsPerVolume; oi++ {
			group := make([]int, 0, p.AssetsPerPage)
			for len(group) < p.AssetsPerPage {
				a := layoutRNG.Intn(p.ObjectsPerVolume)
				if a == oi {
					continue
				}
				group = append(group, a)
			}
			v.assets[oi] = group
		}
		vols[vi] = v
	}

	pop := sim.NewZipfTable(p.ObjectsPerVolume, p.ZipfSkew)
	for ci := 0; ci < p.Clients; ci++ {
		crng := rng.Split()
		proc := Process{Node: blockdev.NodeID(ci % p.Nodes)}
		think := func(scale float64) sim.Duration {
			return sim.Duration(crng.Exp(float64(p.MeanThink) * scale))
		}
		readObj := func(v *cdnVolume, oi int, t sim.Duration) {
			proc.Steps = append(proc.Steps, Step{
				Think:  t,
				Kind:   OpRead,
				File:   v.file,
				Offset: int64(v.starts[oi]) * p.BlockSize,
				Size:   int64(v.sizes[oi]) * p.BlockSize,
			})
		}
		for pg := 0; pg < p.PagesPerClient; pg++ {
			v := vols[crng.Intn(p.Volumes)]
			root := pop.Sample(crng)
			readObj(v, root, think(10))
			for _, a := range v.assets[root] {
				readObj(v, a, think(1))
			}
		}
		tr.Procs = append(tr.Procs, proc)
	}
	return tr, nil
}
