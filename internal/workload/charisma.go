package workload

import (
	"fmt"
	"math"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

// CharismaParams configures the synthetic CHARISMA-like workload: the
// parallel scientific I/O mix characterized by Nieuwejaar et al. from
// the Intel iPSC/860 at NASA Ames. The published properties this
// generator reproduces:
//
//   - a machine running several parallel applications concurrently,
//     each spreading its processes over the nodes;
//   - large files, heavily shared by the processes of one job;
//   - regular access: interleaved strides and sequential segments,
//     with both small and very large records (most requests are
//     small, most bytes move in large requests);
//   - bursty I/O: BSP-style compute pauses separate request bursts
//     (prefetchers build their lead during the pauses);
//   - jobs touch mostly the head of each file, re-visit their files
//     in phases, rewrite the data in periodic write passes, and keep
//     a small hot scratch region they update throughout their life
//     (the blocks the paper's §5.3 sees written to disk many times).
type CharismaParams struct {
	Seed  uint64
	Nodes int // machine size (PM: 128)

	Apps        int // concurrent parallel applications
	ProcsPerApp int // processes per application
	FilesPerApp int // data files per application (shared within it)

	// MeanFileBlocks sets the log-normal file-size scale; CHARISMA
	// files are large (megabytes to tens of megabytes).
	MeanFileBlocks int
	// AccessedFraction is the head of each file the job actually
	// touches; the rest is the cold tail the paper's §5.2 discusses.
	AccessedFraction float64
	// Phases is how many times each application re-walks its files.
	Phases int
	// WritePhaseEvery makes every n-th phase group a rewrite of the
	// files' heads instead of a read pass (0 disables data-write
	// passes), and WriteRunLength makes each such rewrite a run of
	// consecutive write passes. Runs of writes re-dirty every data
	// block at gaps of about one phase duration; whether consecutive
	// dirtyings coalesce into one periodic flush then depends on how
	// fast the application is running — the paper's Table 2 effect.
	WritePhaseEvery int
	// WriteRunLength is the number of consecutive write passes per
	// write group (0 or 1 means single write passes).
	WriteRunLength int

	// MeanThink is the mean compute time between requests inside a
	// burst.
	MeanThink sim.Duration
	// BurstLen is the number of requests a process issues per burst.
	BurstLen int
	// BurstPause is the mean compute pause between bursts.
	BurstPause sim.Duration

	// ScratchBlocks sizes each application's hot scratch file, and
	// HotWritesPerPhase is how many single-block scratch updates each
	// process issues per phase. Scratch blocks stay dirty across the
	// application's whole life, driving the Table 2 write-back counts.
	ScratchBlocks     int
	HotWritesPerPhase int

	// BlockSize converts block-level patterns to byte requests.
	BlockSize int64
}

// DefaultCharismaParams returns the configuration used by the paper
// reproduction experiments, scaled to simulate in seconds instead of
// the original trace's 33 measured hours (DESIGN.md discusses the
// scaling).
func DefaultCharismaParams() CharismaParams {
	return CharismaParams{
		Seed:              1,
		Nodes:             128,
		Apps:              16,
		ProcsPerApp:       8,
		FilesPerApp:       3,
		MeanFileBlocks:    900,
		AccessedFraction:  0.7,
		Phases:            8,
		WritePhaseEvery:   4,
		MeanThink:         sim.Milliseconds(3),
		BurstLen:          12,
		BurstPause:        sim.Milliseconds(1500),
		ScratchBlocks:     256,
		HotWritesPerPhase: 24,
		BlockSize:         8 * 1024,
	}
}

// Validate reports a configuration error, if any.
func (p CharismaParams) Validate() error {
	switch {
	case p.Nodes <= 0 || p.Apps <= 0 || p.ProcsPerApp <= 0 || p.FilesPerApp <= 0:
		return fmt.Errorf("charisma: non-positive shape parameter")
	case p.MeanFileBlocks < 8:
		return fmt.Errorf("charisma: mean file blocks %d too small", p.MeanFileBlocks)
	case p.AccessedFraction <= 0 || p.AccessedFraction > 1:
		return fmt.Errorf("charisma: accessed fraction %v outside (0,1]", p.AccessedFraction)
	case p.Phases <= 0:
		return fmt.Errorf("charisma: phases %d", p.Phases)
	case p.WritePhaseEvery > 0 && p.WriteRunLength >= p.WritePhaseEvery:
		return fmt.Errorf("charisma: write run %d leaves no read phases (every %d)",
			p.WriteRunLength, p.WritePhaseEvery)
	case p.MeanThink < 0 || p.BurstPause < 0:
		return fmt.Errorf("charisma: negative think or pause")
	case p.BurstLen <= 0:
		return fmt.Errorf("charisma: burst length %d", p.BurstLen)
	case p.ScratchBlocks < 0 || p.HotWritesPerPhase < 0:
		return fmt.Errorf("charisma: negative scratch parameters")
	case p.HotWritesPerPhase > 0 && p.ScratchBlocks == 0:
		return fmt.Errorf("charisma: hot writes configured with no scratch file")
	case p.BlockSize <= 0:
		return fmt.Errorf("charisma: block size %d", p.BlockSize)
	}
	return nil
}

// recordSizeBlocks draws one record size from the CHARISMA-like
// mixture: most requests are small, but a heavy tail of large records
// carries a disproportionate share of the bytes (Nieuwejaar et al.).
func recordSizeBlocks(r *sim.RNG) int {
	switch v := r.Float64(); {
	case v < 0.45:
		return 1 // single block
	case v < 0.70:
		return 2 + r.Intn(3) // 2-4 blocks
	default:
		return 8 + r.Intn(9) // 8-16 blocks
	}
}

// appGen carries the per-application generation state.
type appGen struct {
	p       CharismaParams
	rng     *sim.RNG
	procs   []Process
	scratch blockdev.FileID
	// burstCount tracks per-process requests since the last pause.
	burstCount []int
	// pauses is the shared schedule of inter-burst compute pauses:
	// BSP-style applications hit their barriers together, so all
	// processes of one app draw the same pause for the same burst
	// index. These synchronized quiet intervals are when a linear
	// prefetch chain builds its lead.
	pauses   []sim.Duration
	pauseIdx []int
	// hotCountdown schedules the interleaved scratch updates.
	hotCountdown []int
	hotEvery     int
}

// think produces the next inter-request compute time for process pi,
// inserting the app-synchronized inter-burst pause every BurstLen
// requests. Intra-burst compute is near-constant (±10%): the processes
// of a data-parallel job do the same work per record, which keeps them
// in lockstep and the merged per-file stream regular.
func (g *appGen) think(pi int) sim.Duration {
	g.burstCount[pi]++
	jitter := 0.9 + 0.2*g.rng.Float64()
	d := sim.Duration(float64(g.p.MeanThink) * jitter)
	if g.burstCount[pi] >= g.p.BurstLen {
		g.burstCount[pi] = 0
		d += g.pause(pi)
	}
	return d
}

// pause returns the next scheduled pause for process pi, extending the
// shared schedule as needed.
func (g *appGen) pause(pi int) sim.Duration {
	idx := g.pauseIdx[pi]
	g.pauseIdx[pi]++
	for len(g.pauses) <= idx {
		g.pauses = append(g.pauses, sim.Duration(g.rng.Exp(float64(g.p.BurstPause))))
	}
	return g.pauses[idx]
}

// maybeHotWrite interleaves a single-block update of the app's scratch
// file every hotEvery data requests of process pi. Scratch blocks are
// re-dirtied continuously for the application's whole life, so the
// write-back daemon flushes them period after period — and a faster
// application re-dirties them at shorter gaps, coalescing more updates
// into one flush (the paper's Table 2 effect).
func (g *appGen) maybeHotWrite(pi int) {
	if g.hotEvery == 0 || g.scratch < 0 {
		return
	}
	g.hotCountdown[pi]++
	if g.hotCountdown[pi] < g.hotEvery {
		return
	}
	g.hotCountdown[pi] = 0
	blk := blockdev.BlockNo(g.rng.Intn(g.p.ScratchBlocks))
	g.procs[pi].Steps = append(g.procs[pi].Steps, Step{
		Think:  sim.Duration(g.rng.Exp(float64(g.p.MeanThink))),
		Kind:   OpWrite,
		File:   g.scratch,
		Offset: int64(blk) * g.p.BlockSize,
		Size:   g.p.BlockSize,
	})
}

// GenerateCharisma builds the workload. The result is deterministic in
// the parameters.
func GenerateCharisma(p CharismaParams) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	tr := &Trace{
		Name:       "charisma",
		FileBlocks: make(map[blockdev.FileID]blockdev.BlockNo),
	}
	nextFile := blockdev.FileID(0)
	for app := 0; app < p.Apps; app++ {
		appRNG := rng.Split()
		baseNode := appRNG.Intn(p.Nodes)
		files := make([]blockdev.FileID, p.FilesPerApp)
		heads := make([]blockdev.BlockNo, p.FilesPerApp)
		for i := range files {
			files[i] = nextFile
			nextFile++
			blocks := blockdev.BlockNo(appRNG.LogNormal(math.Log(float64(p.MeanFileBlocks)), 0.5))
			if blocks < 16 {
				blocks = 16
			}
			tr.FileBlocks[files[i]] = blocks
			heads[i] = blockdev.BlockNo(float64(blocks) * p.AccessedFraction)
			if heads[i] < 4 {
				heads[i] = 4
			}
		}
		var scratch blockdev.FileID = -1
		if p.ScratchBlocks > 0 {
			scratch = nextFile
			nextFile++
			tr.FileBlocks[scratch] = blockdev.BlockNo(p.ScratchBlocks)
		}
		// Per-file record size and layout are fixed per application,
		// as scientific codes use a fixed decomposition of their data.
		recs := make([]int, p.FilesPerApp)
		pats := make([]patternKind, p.FilesPerApp)
		for i := range recs {
			recs[i] = recordSizeBlocks(appRNG)
			switch v := appRNG.Float64(); {
			case v < 0.40:
				pats[i] = patInterleaved
			case v < 0.65:
				pats[i] = patSegmented
			default:
				pats[i] = patColumns
			}
		}
		g := &appGen{
			p:            p,
			rng:          appRNG,
			procs:        make([]Process, p.ProcsPerApp),
			scratch:      scratch,
			burstCount:   make([]int, p.ProcsPerApp),
			pauseIdx:     make([]int, p.ProcsPerApp),
			hotCountdown: make([]int, p.ProcsPerApp),
		}
		if p.HotWritesPerPhase > 0 {
			// Interleave HotWritesPerPhase scratch updates through
			// each process's per-phase request stream.
			perPhaseReqs := estimatePhaseRequests(p, heads, recs)
			g.hotEvery = perPhaseReqs / p.HotWritesPerPhase
			if g.hotEvery < 1 {
				g.hotEvery = 1
			}
		}
		for pi := range g.procs {
			g.procs[pi].Node = blockdev.NodeID((baseNode + pi) % p.Nodes)
		}
		for phase := 0; phase < p.Phases; phase++ {
			kind := OpRead
			run := p.WriteRunLength
			if run < 1 {
				run = 1
			}
			if p.WritePhaseEvery > 0 && phase%p.WritePhaseEvery >= p.WritePhaseEvery-run {
				kind = OpWrite
			}
			for fi, f := range files {
				g.appendFilePhase(f, heads[fi], recs[fi], pats[fi], phase, kind)
			}
		}
		tr.Procs = append(tr.Procs, g.procs...)
	}
	return tr, nil
}

// patternKind is a parallel application's data decomposition over a
// file, fixed per (application, file).
type patternKind int

const (
	// patInterleaved: process i reads records i, i+P, i+2P, … — the
	// merged stream the file server sees is nearly sequential.
	patInterleaved patternKind = iota
	// patSegmented: the head is split into contiguous per-process
	// segments, each walked sequentially.
	patSegmented
	// patColumns: a 2D column-major decomposition: each phase visits
	// every second record slot (even slots on even phases, odd on
	// odd), so the merged stream is a *regular stride with gaps* —
	// the pattern IS_PPM learns exactly and One-Block-Ahead gets
	// wrong on every request, though the skipped blocks are used by
	// the following phase (the paper's "not necessarily in a
	// sequential way" head access, §5.2).
	patColumns
)

// appendFilePhase emits one collective pass of all processes over the
// accessed head of file f using the file's decomposition pattern.
func (g *appGen) appendFilePhase(f blockdev.FileID, head blockdev.BlockNo, rec int, pat patternKind, phase int, kind OpKind) {
	p := g.p
	nProcs := len(g.procs)
	recB := blockdev.BlockNo(rec)
	emit := func(pi int, off, size blockdev.BlockNo) {
		g.procs[pi].Steps = append(g.procs[pi].Steps, Step{
			Think:  g.think(pi),
			Kind:   kind,
			File:   f,
			Offset: int64(off) * p.BlockSize,
			Size:   int64(size) * p.BlockSize,
		})
		g.maybeHotWrite(pi)
	}
	closeFile := func(pi int) {
		g.procs[pi].Steps = append(g.procs[pi].Steps, Step{
			Think: sim.Duration(g.rng.Exp(float64(p.MeanThink))),
			Kind:  OpClose,
			File:  f,
		})
	}
	switch pat {
	case patInterleaved:
		stride := recB * blockdev.BlockNo(nProcs)
		for pi := range g.procs {
			emitted := false
			for off := blockdev.BlockNo(pi) * recB; off < head; off += stride {
				size := recB
				if off+size > head {
					size = head - off
				}
				emit(pi, off, size)
				emitted = true
			}
			if emitted {
				closeFile(pi)
			}
		}
	case patSegmented:
		seg := head / blockdev.BlockNo(nProcs)
		if seg < recB {
			seg = recB
		}
		for pi := range g.procs {
			start := blockdev.BlockNo(pi) * seg
			end := start + seg
			if pi == nProcs-1 {
				end = head
			}
			if start >= head {
				break
			}
			if end > head {
				end = head
			}
			emitted := false
			for off := start; off < end; off += recB {
				size := recB
				if off+size > end {
					size = end - off
				}
				emit(pi, off, size)
				emitted = true
			}
			if emitted {
				closeFile(pi)
			}
		}
	case patColumns:
		// Row width 2·P·rec; this phase's parity selects which record
		// slots (even or odd) are visited, so the merged stream has
		// the constant interval 2·rec with size rec.
		rowW := 2 * blockdev.BlockNo(nProcs) * recB
		rows := head / rowW
		if rows < 1 {
			// File too small for the 2D layout; fall back to an
			// interleaved pass so the phase still touches the head.
			g.appendFilePhase(f, head, rec, patInterleaved, phase, kind)
			return
		}
		parity := blockdev.BlockNo(phase % 2)
		for pi := range g.procs {
			slot := (2*blockdev.BlockNo(pi) + parity) * recB
			for r := blockdev.BlockNo(0); r < rows; r++ {
				emit(pi, r*rowW+slot, recB)
			}
			closeFile(pi)
		}
	}
}

// estimatePhaseRequests approximates one process's data requests per
// phase, to spread the interleaved scratch updates evenly.
func estimatePhaseRequests(p CharismaParams, heads []blockdev.BlockNo, recs []int) int {
	total := 0
	for i := range heads {
		per := int(heads[i]) / (recs[i] * p.ProcsPerApp)
		if per < 1 {
			per = 1
		}
		total += per
	}
	return total
}
