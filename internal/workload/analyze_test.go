package workload

import (
	"strings"
	"testing"

	"repro/internal/blockdev"
)

func TestAnalyzeCharismaFidelity(t *testing.T) {
	// The analyzer must confirm the published CHARISMA characteristics
	// the generator targets.
	p := DefaultCharismaParams()
	tr, err := GenerateCharisma(p)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr, p.BlockSize)
	if a.SizeBlocksP50 > 2 {
		t.Errorf("median request %d blocks; CHARISMA requests are mostly small", a.SizeBlocksP50)
	}
	if a.LargeRequestByteShare < 0.15 {
		t.Errorf("large requests move %.0f%% of bytes; CHARISMA bytes concentrate in large requests", 100*a.LargeRequestByteShare)
	}
	if a.SharedFileFraction < 0.3 {
		t.Errorf("only %.0f%% of files shared; CHARISMA jobs share their files", 100*a.SharedFileFraction)
	}
	if a.FileBlocksP50 < 100 {
		t.Errorf("median file %d blocks; CHARISMA files are large", a.FileBlocksP50)
	}
	if a.Closes == 0 {
		t.Error("no closes in the trace")
	}
}

func TestAnalyzeSpriteFidelity(t *testing.T) {
	p := DefaultSpriteParams()
	tr, err := GenerateSprite(p)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr, p.BlockSize)
	if a.FileBlocksP50 > 10 {
		t.Errorf("median file %d blocks; Sprite files are small", a.FileBlocksP50)
	}
	if a.SequentialFraction < 0.5 {
		t.Errorf("sequential successor rate %.0f%%; Sprite access is mostly sequential", 100*a.SequentialFraction)
	}
	if a.SharedFileFraction > 0.25 {
		t.Errorf("%.0f%% of files shared; Sprite shares little", 100*a.SharedFileFraction)
	}
	if a.SizeBlocksMax != 1 {
		t.Errorf("Sprite request of %d blocks; sessions use single-block requests", a.SizeBlocksMax)
	}
}

func TestAnalyzeSmallHandMadeTrace(t *testing.T) {
	const bs = 8192
	tr := &Trace{
		Name: "hand",
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{
			0: 8, 1: 4,
		},
		Procs: []Process{
			{Node: 0, Steps: []Step{
				{Kind: OpRead, File: 0, Offset: 0, Size: 2 * bs},
				{Kind: OpRead, File: 0, Offset: 2 * bs, Size: 2 * bs}, // sequential successor
				{Kind: OpRead, File: 0, Offset: 6 * bs, Size: bs},     // jump
				{Kind: OpWrite, File: 1, Offset: 0, Size: bs},
				{Kind: OpClose, File: 1},
			}},
			{Node: 1, Steps: []Step{
				{Kind: OpRead, File: 0, Offset: 0, Size: bs},
			}},
		},
	}
	a := Analyze(tr, bs)
	if a.Reads != 4 || a.Writes != 1 || a.Closes != 1 {
		t.Errorf("counts r/w/c = %d/%d/%d", a.Reads, a.Writes, a.Closes)
	}
	if a.UsedFiles != 2 || a.Files != 2 {
		t.Errorf("files = %d/%d", a.Files, a.UsedFiles)
	}
	// File 0 used by nodes 0 and 1: half the used files are shared.
	if a.SharedFileFraction != 0.5 {
		t.Errorf("shared fraction %.2f, want 0.5", a.SharedFileFraction)
	}
	// One of two same-file successors was sequential.
	if a.SequentialFraction != 0.5 {
		t.Errorf("sequential fraction %.2f, want 0.5", a.SequentialFraction)
	}
	if a.FootprintBlocks != 12 {
		t.Errorf("footprint %d, want 12", a.FootprintBlocks)
	}
	out := a.Render()
	for _, want := range []string{"hand", "processes", "footprint", "sequential successor"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
