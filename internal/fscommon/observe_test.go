package fscommon

import (
	"testing"

	"repro/internal/blockdev"
)

func TestPrefetchLedgerHighWater(t *testing.T) {
	l := NewPrefetchLedger()
	f1, f2 := blockdev.FileID(1), blockdev.FileID(2)

	// Two drivers overlap on f1 (the xFS shared-file case), one driver
	// stays linear on f2.
	l.OutstandingChanged(f1, 1)
	l.OutstandingChanged(f1, 1)
	l.OutstandingChanged(f1, -1)
	l.OutstandingChanged(f2, 1)
	l.OutstandingChanged(f2, -1)
	l.OutstandingChanged(f2, 1)
	l.OutstandingChanged(f2, -1)

	if got := l.FileHighWater(f1); got != 2 {
		t.Errorf("f1 high-water = %d, want 2", got)
	}
	if got := l.FileHighWater(f2); got != 1 {
		t.Errorf("f2 high-water = %d, want 1", got)
	}
	if got := l.MaxHighWater(); got != 2 {
		t.Errorf("max high-water = %d, want 2", got)
	}
	hw := l.HighWaters()
	if hw[f1] != 2 || hw[f2] != 1 {
		t.Errorf("HighWaters = %v", hw)
	}
	// The copy must be detached from the ledger.
	hw[f1] = 99
	if l.FileHighWater(f1) != 2 {
		t.Error("HighWaters returned the internal map")
	}
	// High-water marks survive the outstanding count dropping to zero.
	l.OutstandingChanged(f1, -1)
	if l.MaxHighWater() != 2 || l.FileHighWater(f1) != 2 {
		t.Error("high-water forgot its peak")
	}
}

func TestPrefetchLedgerPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative outstanding count")
		}
	}()
	NewPrefetchLedger().OutstandingChanged(1, -1)
}

func TestPrefetchInflightWindow(t *testing.T) {
	b := &Base{pfInflight: make(map[blockdev.BlockID]int)}
	blk := blockdev.BlockID{File: 1, Block: 7}
	if b.PrefetchInFlight(blk) {
		t.Error("in flight before begin")
	}
	b.PrefetchBegin(blk)
	if !b.PrefetchInFlight(blk) {
		t.Error("not in flight after begin")
	}
	b.PrefetchEnd(blk)
	if b.PrefetchInFlight(blk) {
		t.Error("still in flight after end")
	}
	if len(b.pfInflight) != 0 {
		t.Error("completed entry not removed")
	}
}

func TestWrapPrefetchCancelClosesWindow(t *testing.T) {
	b := &Base{pfInflight: make(map[blockdev.BlockID]int)}
	blk := blockdev.BlockID{File: 3, Block: 1}

	if b.WrapPrefetchCancel(blk, nil) != nil {
		t.Error("nil hook should stay nil")
	}

	// A live (non-cancelled) operation keeps its window open; the
	// completion callback is what closes it.
	b.PrefetchBegin(blk)
	live := b.WrapPrefetchCancel(blk, func() bool { return false })
	if live() {
		t.Error("live operation reported cancelled")
	}
	if !b.PrefetchInFlight(blk) {
		t.Error("live operation lost its window")
	}
	b.PrefetchEnd(blk)

	// A cancelled operation never completes, so the wrapper must close
	// the window when the disk polls the hook.
	b.PrefetchBegin(blk)
	dropped := b.WrapPrefetchCancel(blk, func() bool { return true })
	if !dropped() {
		t.Error("cancelled operation reported live")
	}
	if b.PrefetchInFlight(blk) {
		t.Error("cancelled operation left its window open")
	}
}
