// Package fscommon holds the plumbing both simulated file systems
// (PAFS and xFS) share: the machine's network and disks, the
// cooperative cache, demand-fetch coalescing, dirty-victim flushing,
// and the periodic fault-tolerance write-back daemon whose behaviour
// drives the paper's Table 2.
package fscommon

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FileSystem is what the trace runner and the experiment layer drive.
type FileSystem interface {
	// Name identifies the file system ("PAFS" or "xFS").
	Name() string
	// Read serves a user read of span for a process on client; done
	// fires when every block has reached the client.
	Read(client blockdev.NodeID, span blockdev.Span, done func(at sim.Time))
	// Write serves a user write of span from client; done fires when
	// the data is absorbed by the cache.
	Write(client blockdev.NodeID, span blockdev.Span, done func(at sim.Time))
	// Close tells the file system the client is done with the file
	// for now; its prefetch chain stops until the next request.
	Close(client blockdev.NodeID, file blockdev.FileID, done func(at sim.Time))
	// Collector exposes the metrics sink.
	Collector() *stats.Collector
	// Cache exposes the cooperative cache (for end-of-run accounting).
	Cache() *cachesim.Cache
	// Start launches background machinery (the write-back daemon).
	Start()
	// StopBackground ends the background machinery so the simulation
	// can drain after the trace completes.
	StopBackground()
}

// Base wires the substrates together; PAFS and xFS embed it.
type Base struct {
	Engine *sim.Engine
	Cfg    machine.Config
	Net    *netmodel.Network
	Disks  *diskmodel.Array
	Cch    *cachesim.Cache
	Coll   *stats.Collector
	// Files maps every file to its size in blocks (from the trace).
	Files map[blockdev.FileID]blockdev.BlockNo

	// Ledger aggregates per-file outstanding-prefetch counts across
	// every driver (see PrefetchLedger); both file systems register it
	// as their drivers' observer.
	Ledger *PrefetchLedger

	// Degrees hands out the per-file outstanding-prefetch policy and
	// routes the timely/late/wasted lifecycle events both file systems
	// already classify to the owning file's controller. Static under
	// the paper's specs; the feedback loop only moves for Adaptive
	// ones.
	Degrees *core.DegreeSet

	// inflight coalesces concurrent demand fetches of one block.
	inflight map[blockdev.BlockID][]func(e *sim.Engine, at sim.Time)
	// inflightFor remembers which node the eventual insert targets.
	inflightFor map[blockdev.BlockID]blockdev.NodeID
	// pfInflight counts prefetch disk operations in flight per block
	// (xFS nodes can prefetch the same block concurrently), for the
	// late-prefetch classification.
	pfInflight map[blockdev.BlockID]int
	// wbStop ends the write-back daemon so the event queue can drain
	// once the trace completes.
	wbStop bool
}

// NewBase builds the shared substrate stack for the given machine,
// cache geometry and replacement policy. alg supplies the per-file
// degree policies (see Degrees).
func NewBase(e *sim.Engine, cfg machine.Config, cacheBlocksPerNode int,
	policy cachesim.Policy, tr *workload.Trace, alg core.AlgSpec) *Base {

	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("fscommon: %v", err))
	}
	files := make(map[blockdev.FileID]blockdev.BlockNo, len(tr.FileBlocks))
	for id, b := range tr.FileBlocks {
		files[id] = b
	}
	b := &Base{
		Engine:      e,
		Cfg:         cfg,
		Net:         netmodel.New(e, cfg),
		Disks:       diskmodel.NewArray(e, cfg),
		Cch:         cachesim.New(e, cfg.Nodes, cacheBlocksPerNode, policy),
		Coll:        stats.New(),
		Ledger:      NewPrefetchLedger(),
		Degrees:     core.NewDegreeSet(alg),
		Files:       files,
		inflight:    make(map[blockdev.BlockID][]func(e *sim.Engine, at sim.Time)),
		inflightFor: make(map[blockdev.BlockID]blockdev.NodeID),
		pfInflight:  make(map[blockdev.BlockID]int),
	}
	// A prefetched copy touched by a user request was a timely
	// prefetch. Capture the collector and degree set (shared pointers)
	// rather than b: the file systems embed a copy of Base.
	coll, degrees := b.Coll, b.Degrees
	b.Cch.OnPrefetchUsed = func(id blockdev.BlockID) {
		coll.PrefetchTimely()
		degrees.OnTimely(id.File)
	}
	return b
}

// Collector returns the metrics sink.
func (b *Base) Collector() *stats.Collector { return b.Coll }

// Cache returns the cooperative cache.
func (b *Base) Cache() *cachesim.Cache { return b.Cch }

// FileBlocks returns file f's size in blocks, panicking on unknown
// files (the trace validates against this map, so it is a bug).
func (b *Base) FileBlocks(f blockdev.FileID) blockdev.BlockNo {
	n, ok := b.Files[f]
	if !ok {
		panic(fmt.Sprintf("fscommon: unknown file %d", f))
	}
	return n
}

// DiskHostNode returns the node a disk is attached to: disks are
// spread evenly over the machine, as in both simulated systems.
func (b *Base) DiskHostNode(d blockdev.DiskID) blockdev.NodeID {
	return blockdev.NodeID(int(d) * b.Cfg.Nodes / b.Cfg.Disks)
}

// HostOf returns the node attached to the disk holding blk.
func (b *Base) HostOf(blk blockdev.BlockID) blockdev.NodeID {
	return b.DiskHostNode(b.Disks.DiskFor(blk).ID())
}

// DemandFetch reads blk from disk at user priority, inserts it into
// the cache for node, flushes any dirty victims, and invokes done.
// Concurrent fetches of the same block coalesce onto one disk read.
func (b *Base) DemandFetch(blk blockdev.BlockID, node blockdev.NodeID, done func(e *sim.Engine, at sim.Time)) {
	if waiters, ok := b.inflight[blk]; ok {
		b.inflight[blk] = append(waiters, done)
		return
	}
	b.inflight[blk] = []func(e *sim.Engine, at sim.Time){done}
	b.inflightFor[blk] = node
	if b.PrefetchInFlight(blk) {
		// The predictor was right but the prefetch lost the race: demand
		// traffic now duplicates the read at user priority.
		b.Coll.PrefetchLate()
		b.Degrees.OnLate(blk.File)
	}
	b.Disks.Read(blk, sim.PriorityUser, nil, func(e *sim.Engine, at sim.Time) {
		b.Coll.DiskRead(false)
		target := b.inflightFor[blk]
		_, victims := b.Cch.Insert(target, blk, cachesim.InsertOptions{})
		b.FlushVictims(victims)
		waiters := b.inflight[blk]
		delete(b.inflight, blk)
		delete(b.inflightFor, blk)
		for _, w := range waiters {
			w(e, at)
		}
	})
}

// DemandFetchInFlight reports whether a demand read of blk is pending.
func (b *Base) DemandFetchInFlight(blk blockdev.BlockID) bool {
	_, ok := b.inflight[blk]
	return ok
}

// FlushVictims writes evicted dirty blocks back to disk and accounts
// speculative copies evicted unused as wasted prefetches.
func (b *Base) FlushVictims(victims []cachesim.Victim) {
	for _, v := range victims {
		if v.WasUnusedPrefetch {
			b.Coll.PrefetchWasted()
			b.Degrees.OnWasted(v.Block.File)
		}
		if !v.Dirty {
			continue
		}
		blk := v.Block
		b.Disks.Write(blk, func(*sim.Engine, sim.Time) {
			b.Coll.DiskWrite(blk)
		})
	}
}

// StartWriteback launches the periodic fault-tolerance daemon: every
// period, every dirty block is written to disk and marked clean. The
// paper's Table 2 effect — faster applications mean fewer periodic
// writes per block — falls out of this loop.
func (b *Base) StartWriteback() {
	var tick func(e *sim.Engine)
	tick = func(e *sim.Engine) {
		if b.wbStop {
			return
		}
		// Smear the flushes uniformly across the coming period instead
		// of dumping them all at once: a synchronized burst of
		// thousands of writes would periodically flood the disk queues
		// and swamp every other effect being measured.
		dirty := b.Cch.DirtyBlocks()
		n := len(dirty)
		for i, blk := range dirty {
			blk := blk
			delay := sim.Duration(int64(b.Cfg.WritebackPeriod) * int64(i) / int64(n))
			e.After(delay, func(e *sim.Engine) {
				if b.wbStop {
					return
				}
				b.Disks.Write(blk, func(*sim.Engine, sim.Time) {
					b.Coll.DiskWrite(blk)
				})
			})
			b.Cch.ClearDirty(blk)
		}
		e.After(b.Cfg.WritebackPeriod, tick)
	}
	b.Engine.After(b.Cfg.WritebackPeriod, tick)
}

// StopBackground ends the run's background activity: the write-back
// daemon stops at its next tick, prefetch environments stop issuing
// (see Stopped), and the metrics window closes, so the post-trace
// drain leaves every reported number alone.
func (b *Base) StopBackground() {
	b.wbStop = true
	b.Coll.StopMeasurement()
}

// Stopped reports whether the run is draining; prefetch environments
// consult it to stop their chains.
func (b *Base) Stopped() bool { return b.wbStop }

// FinalFlush writes every block still dirty at the end of a run (used
// by experiments so Table 2 counts the trailing state exactly once).
func (b *Base) FinalFlush() {
	for _, blk := range b.Cch.DirtyBlocks() {
		blk := blk
		b.Disks.Write(blk, func(*sim.Engine, sim.Time) {
			b.Coll.DiskWrite(blk)
		})
		b.Cch.ClearDirty(blk)
	}
}

// SpanOf converts a trace step to its block span under the machine's
// block size.
func (b *Base) SpanOf(s workload.Step) blockdev.Span {
	return blockdev.ByteRangeToSpan(s.File, s.Offset, s.Size, b.Cfg.BlockSize)
}

// PrefetchPriority maps an algorithm configuration to the disk
// priority class its prefetch operations use. It lives here rather
// than on core.AlgSpec so the predictor core stays free of simulator
// types; the runtime engine has no priority classes at all.
func PrefetchPriority(s core.AlgSpec) sim.Priority {
	if s.UserPriorityPrefetch {
		return sim.PriorityUser
	}
	return sim.PriorityPrefetch
}
