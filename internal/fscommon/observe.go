package fscommon

import (
	"fmt"

	"repro/internal/blockdev"
)

// PrefetchLedger aggregates driver outstanding-prefetch deltas per
// file, machine-wide. It is the instrument behind the paper's linear
// invariant: PAFS runs one driver per file, so every file's high-water
// mark stays at the driver's limit (1 for Ln_Agr_*), while xFS runs a
// driver per (node, file) and shared files push the aggregate above 1
// — the "not really linear" behaviour of §4 made measurable.
type PrefetchLedger struct {
	outstanding map[blockdev.FileID]int
	highWater   map[blockdev.FileID]int
	maxHW       int
}

// NewPrefetchLedger returns an empty ledger.
func NewPrefetchLedger() *PrefetchLedger {
	return &PrefetchLedger{
		outstanding: make(map[blockdev.FileID]int),
		highWater:   make(map[blockdev.FileID]int),
	}
}

// OutstandingChanged implements core.OutstandingObserver.
func (l *PrefetchLedger) OutstandingChanged(f blockdev.FileID, delta int) {
	n := l.outstanding[f] + delta
	if n < 0 {
		panic(fmt.Sprintf("fscommon: file %d outstanding prefetches went negative (%d)", f, n))
	}
	l.outstanding[f] = n
	if n > l.highWater[f] {
		l.highWater[f] = n
	}
	if n > l.maxHW {
		l.maxHW = n
	}
}

// FileHighWater returns the most prefetches ever simultaneously in
// flight for file f across the whole machine.
func (l *PrefetchLedger) FileHighWater(f blockdev.FileID) int { return l.highWater[f] }

// MaxHighWater returns the largest per-file high-water mark over every
// file — 1 on a truly linear run, >1 when independent per-node chains
// overlapped on a shared file.
func (l *PrefetchLedger) MaxHighWater() int { return l.maxHW }

// HighWaters returns a copy of the per-file high-water marks.
func (l *PrefetchLedger) HighWaters() map[blockdev.FileID]int {
	out := make(map[blockdev.FileID]int, len(l.highWater))
	for f, hw := range l.highWater {
		out[f] = hw
	}
	return out
}

// BaseRef returns the embedded Base, letting code that holds only the
// FileSystem interface reach the shared observability state (ledger,
// disks, network) without widening the interface.
func (b *Base) BaseRef() *Base { return b }

// PrefetchBegin records that a prefetch disk operation for blk is now
// physically in flight (queued or in service).
func (b *Base) PrefetchBegin(blk blockdev.BlockID) {
	b.pfInflight[blk]++
}

// PrefetchEnd records that a prefetch operation for blk left the disk
// subsystem, by completing or by being dropped from the queue.
func (b *Base) PrefetchEnd(blk blockdev.BlockID) {
	n := b.pfInflight[blk] - 1
	if n < 0 {
		panic(fmt.Sprintf("fscommon: prefetch inflight count for %v went negative", blk))
	}
	if n == 0 {
		delete(b.pfInflight, blk)
	} else {
		b.pfInflight[blk] = n
	}
}

// PrefetchInFlight reports whether a prefetch of blk is pending.
func (b *Base) PrefetchInFlight(blk blockdev.BlockID) bool {
	return b.pfInflight[blk] > 0
}

// WrapPrefetchCancel decorates a prefetch cancellation hook so that a
// dropped operation also closes its in-flight window; without this a
// cancelled prefetch would look in flight forever. The disk polls the
// hook exactly once per queued operation, at dispatch.
func (b *Base) WrapPrefetchCancel(blk blockdev.BlockID, cancelled func() bool) func() bool {
	if cancelled == nil {
		return nil
	}
	return func() bool {
		if cancelled() {
			b.PrefetchEnd(blk)
			return true
		}
		return false
	}
}
