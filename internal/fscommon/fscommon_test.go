package fscommon_test

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/fscommon"
	"repro/internal/machine"
	"repro/internal/pafs"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xfs"
)

func smallMachine() machine.Config {
	cfg := machine.PM()
	cfg.Nodes = 4
	cfg.Disks = 2
	cfg.WritebackPeriod = sim.Seconds(1)
	return cfg
}

// seqTrace builds a trace of two processes sequentially scanning their
// own file.
func seqTrace(blocksPerFile int, steps int) *workload.Trace {
	tr := &workload.Trace{
		Name: "seq",
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{
			0: blockdev.BlockNo(blocksPerFile),
			1: blockdev.BlockNo(blocksPerFile),
		},
	}
	for p := 0; p < 2; p++ {
		proc := workload.Process{Node: blockdev.NodeID(p)}
		for i := 0; i < steps; i++ {
			proc.Steps = append(proc.Steps, workload.Step{
				Think:  sim.Milliseconds(1),
				Kind:   workload.OpRead,
				File:   blockdev.FileID(p),
				Offset: int64(i%blocksPerFile) * 8192,
				Size:   8192,
			})
		}
		tr.Procs = append(tr.Procs, proc)
	}
	return tr
}

func TestRunnerCompletesTrace(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(32, 50)
	fs := pafs.New(e, pafs.Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 64,
		Algorithm:          core.SpecNP,
	}, tr)
	r := fscommon.NewRunner(fs, tr, fscommon.RunnerConfig{})
	r.Run(e)
	if !r.Done() {
		t.Fatal("runner did not complete the trace")
	}
	if r.CompletedSteps() != tr.TotalSteps() {
		t.Errorf("completed %d steps, want %d", r.CompletedSteps(), tr.TotalSteps())
	}
	if got := fs.Collector().Reads(); got != uint64(tr.TotalSteps()) {
		t.Errorf("collector saw %d reads, want %d", got, tr.TotalSteps())
	}
}

func TestRunnerWarmupGatesMeasurement(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(32, 50)
	fs := pafs.New(e, pafs.Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 64,
		Algorithm:          core.SpecNP,
	}, tr)
	r := fscommon.NewRunner(fs, tr, fscommon.RunnerConfig{WarmFraction: 0.5})
	r.Run(e)
	if !r.Done() {
		t.Fatal("runner did not complete")
	}
	total := uint64(tr.TotalSteps())
	got := fs.Collector().Reads()
	if got >= total || got == 0 {
		t.Errorf("measured %d of %d reads; warm-up gating broken", got, total)
	}
}

func TestRunnerClosedLoopOrdering(t *testing.T) {
	// With a closed loop, a process's steps complete strictly in
	// order; hits later in the trace require the earlier fetch.
	e := sim.NewEngine(1)
	tr := seqTrace(8, 24) // wraps the 8-block file 3 times
	fs := pafs.New(e, pafs.Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 64,
		Algorithm:          core.SpecNP,
	}, tr)
	r := fscommon.NewRunner(fs, tr, fscommon.RunnerConfig{})
	r.Run(e)
	// 8 distinct blocks per file: only the first pass misses.
	if got := fs.Collector().DiskDemandReads(); got != 16 {
		t.Errorf("demand reads = %d, want 16 (8 per file)", got)
	}
}

func TestRunnerMaxSimTimeBounds(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(32, 5000)
	fs := xfs.New(e, xfs.Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 64,
		Algorithm:          core.SpecNP,
	}, tr)
	r := fscommon.NewRunner(fs, tr, fscommon.RunnerConfig{MaxSimTime: sim.Time(sim.Milliseconds(50))})
	end := r.Run(e)
	if r.Done() {
		t.Error("runner claimed completion despite the time bound")
	}
	if end > sim.Time(sim.Seconds(1)) {
		t.Errorf("simulation ran to %v despite 50ms bound", end)
	}
}

func TestRunnerRejectsBadWarmFraction(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(4, 4)
	fs := pafs.New(e, pafs.Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 8,
		Algorithm:          core.SpecNP,
	}, tr)
	for _, f := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("warm fraction %v accepted", f)
				}
			}()
			fscommon.NewRunner(fs, tr, fscommon.RunnerConfig{WarmFraction: f})
		}()
	}
}

func TestBaseHostOfInRange(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(4, 1)
	fs := pafs.New(e, pafs.Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 8,
		Algorithm:          core.SpecNP,
	}, tr)
	for b := 0; b < 16; b++ {
		n := fs.HostOf(blockdev.BlockID{File: 0, Block: blockdev.BlockNo(b)})
		if int(n) < 0 || int(n) >= fs.Cfg.Nodes {
			t.Errorf("HostOf block %d = node %d out of range", b, n)
		}
	}
}

func TestBaseFileBlocksPanicsOnUnknownFile(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(4, 1)
	fs := pafs.New(e, pafs.Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 8,
		Algorithm:          core.SpecNP,
	}, tr)
	defer func() {
		if recover() == nil {
			t.Error("unknown file did not panic")
		}
	}()
	fs.FileBlocks(999)
}

func TestFinalFlushDrainsDirtyState(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(8, 1)
	fs := pafs.New(e, pafs.Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 16,
		Algorithm:          core.SpecNP,
	}, tr)
	fs.Collector().StartMeasurement()
	fs.Write(0, blockdev.Span{File: 0, Start: 0, Count: 3}, func(sim.Time) {})
	e.Run()
	fs.FinalFlush()
	e.Run()
	if got := fs.Collector().DiskWrites(); got != 3 {
		t.Errorf("disk writes = %d, want 3 after final flush", got)
	}
	if len(fs.Cache().DirtyBlocks()) != 0 {
		t.Error("dirty state survived FinalFlush")
	}
}
