package fscommon

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RunnerConfig controls trace replay.
type RunnerConfig struct {
	// WarmFraction is the share of total requests completed before the
	// measurement window opens (the paper warms the cache with the
	// first hours of each trace). 0 measures everything.
	WarmFraction float64
	// MaxSimTime aborts a runaway simulation; zero means no limit.
	MaxSimTime sim.Time
}

// Runner replays a trace against a file system: every process is a
// closed loop (think, issue, wait) so I/O speedups shorten the run.
type Runner struct {
	fs    FileSystem
	trace *workload.Trace
	cfg   RunnerConfig

	totalSteps     int
	completedSteps int
	warmThreshold  int
	finishedProcs  int
	aborted        bool
}

// NewRunner prepares a replay. It panics on an invalid warm fraction.
func NewRunner(fs FileSystem, tr *workload.Trace, cfg RunnerConfig) *Runner {
	if cfg.WarmFraction < 0 || cfg.WarmFraction >= 1 {
		panic(fmt.Sprintf("fscommon: warm fraction %v outside [0,1)", cfg.WarmFraction))
	}
	total := tr.TotalSteps()
	r := &Runner{
		fs:            fs,
		trace:         tr,
		cfg:           cfg,
		totalSteps:    total,
		warmThreshold: int(cfg.WarmFraction * float64(total)),
	}
	return r
}

// Run replays the whole trace to completion on the engine and returns
// the final simulated time. The file system's collector starts
// measuring once the warm threshold is crossed (immediately if 0).
func (r *Runner) Run(e *sim.Engine) sim.Time {
	r.fs.Start()
	if r.warmThreshold == 0 {
		r.fs.Collector().StartMeasurement()
	}
	for i := range r.trace.Procs {
		p := &r.trace.Procs[i]
		r.scheduleStep(e, p, 0)
	}
	stop := func() bool { return r.Done() }
	if r.cfg.MaxSimTime > 0 {
		end := r.cfg.MaxSimTime
		stop = func() bool { return r.Done() || e.Now() > end }
	}
	e.RunUntil(stop)
	// The trace is finished (or the bound hit): stop issuing new
	// steps, end the write-back daemon, and drain whatever is still in
	// flight — trailing demand fetches, prefetch chains walking to end
	// of file, queued flushes.
	r.aborted = true
	r.fs.StopBackground()
	return e.Run()
}

// Done reports whether every process completed its steps.
func (r *Runner) Done() bool { return r.finishedProcs == len(r.trace.Procs) }

// CompletedSteps returns how many requests have finished.
func (r *Runner) CompletedSteps() int { return r.completedSteps }

func (r *Runner) scheduleStep(e *sim.Engine, p *workload.Process, idx int) {
	if r.aborted {
		return
	}
	if idx >= len(p.Steps) {
		r.finishedProcs++
		return
	}
	step := p.Steps[idx]
	e.After(step.Think, func(e *sim.Engine) {
		issue := e.Now()
		complete := func(at sim.Time) {
			latency := at.Sub(issue)
			coll := r.fs.Collector()
			switch step.Kind {
			case workload.OpRead:
				coll.ReadDone(latency)
			case workload.OpWrite:
				coll.WriteDone(latency)
			}
			r.completedSteps++
			if r.completedSteps == r.warmThreshold {
				coll.StartMeasurement()
			}
			r.scheduleStep(e, p, idx+1)
		}
		switch step.Kind {
		case workload.OpRead:
			r.fs.Read(p.Node, blockSpan(r.fs, step), complete)
		case workload.OpWrite:
			r.fs.Write(p.Node, blockSpan(r.fs, step), complete)
		case workload.OpClose:
			r.fs.Close(p.Node, step.File, complete)
		}
	})
}

// spanner lets Runner convert steps without knowing the concrete FS;
// both file systems satisfy it through their embedded Base.
type spanner interface {
	SpanOf(workload.Step) blockdev.Span
}

// blockSpan converts a step via the FS's Base.
func blockSpan(fs FileSystem, step workload.Step) blockdev.Span {
	s, ok := fs.(spanner)
	if !ok {
		panic("fscommon: file system does not expose SpanOf")
	}
	return s.SpanOf(step)
}
