package fscommon_test

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/pafs"
	"repro/internal/sim"
	"repro/internal/xfs"
)

func TestWritebackSmearedAcrossPeriod(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := smallMachine()
	cfg.WritebackPeriod = sim.Seconds(10)
	tr := seqTrace(64, 1)
	fs := pafs.New(e, pafs.Config{
		Machine: cfg, CacheBlocksPerNode: 256, Algorithm: core.SpecNP,
	}, tr)
	fs.Collector().StartMeasurement()
	fs.Start()
	// Dirty 16 blocks at t=0.
	fs.Write(0, blockdev.Span{File: 0, Start: 0, Count: 16}, func(sim.Time) {})
	// At the first tick (t=10s) the flushes must be spread across
	// [10s, 20s), not all issued at the tick.
	e.RunUntil(func() bool { return e.Now() > sim.Time(sim.Seconds(10.5)) })
	early := fs.Collector().DiskWrites()
	if early == 16 {
		t.Error("all flushes issued in a burst at the tick")
	}
	e.RunUntil(func() bool { return e.Now() > sim.Time(sim.Seconds(21)) })
	if got := fs.Collector().DiskWrites(); got != 16 {
		t.Errorf("flushes after a full period = %d, want 16", got)
	}
}

func TestStopBackgroundStopsDaemonAndMeasurement(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := smallMachine()
	tr := seqTrace(16, 1)
	fs := pafs.New(e, pafs.Config{
		Machine: cfg, CacheBlocksPerNode: 64, Algorithm: core.SpecNP,
	}, tr)
	fs.Collector().StartMeasurement()
	fs.Start()
	if fs.Stopped() {
		t.Error("Stopped before StopBackground")
	}
	fs.Write(0, blockdev.Span{File: 0, Start: 0, Count: 2}, func(sim.Time) {})
	fs.StopBackground()
	if !fs.Stopped() {
		t.Error("Stopped false after StopBackground")
	}
	if fs.Collector().Measuring() {
		t.Error("collector still measuring after StopBackground")
	}
	// Draining must terminate even though dirty blocks remain.
	if !e.RunLimit(100000) {
		t.Error("event queue did not drain after StopBackground")
	}
	if fs.Collector().DiskWrites() != 0 {
		t.Error("stopped daemon still flushed")
	}
}

func TestStoppedFSIgnoresPrefetch(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(64, 1)
	fs := pafs.New(e, pafs.Config{
		Machine: smallMachine(), CacheBlocksPerNode: 256, Algorithm: core.SpecLnAgrOBA,
	}, tr)
	fs.Collector().StartMeasurement()
	fs.StopBackground()
	fs.Read(0, blockdev.Span{File: 0, Start: 0, Count: 1}, func(sim.Time) {})
	e.Run()
	// The demand read happens; the chain must not start.
	if got := fs.Collector().PrefetchIssuedCount(); got != 0 {
		t.Errorf("stopped FS issued %d prefetches", got)
	}
}

func TestStoppedXFSIgnoresPrefetch(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(64, 1)
	fs := xfs.New(e, xfs.Config{
		Machine: smallMachine(), CacheBlocksPerNode: 256, Algorithm: core.SpecLnAgrOBA,
	}, tr)
	fs.Collector().StartMeasurement()
	fs.StopBackground()
	fs.Read(0, blockdev.Span{File: 0, Start: 0, Count: 1}, func(sim.Time) {})
	e.Run()
	if got := fs.Collector().PrefetchIssuedCount(); got != 0 {
		t.Errorf("stopped xFS issued %d prefetches", got)
	}
}

func TestCloseStopsChainPAFS(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(512, 1)
	fs := pafs.New(e, pafs.Config{
		Machine: smallMachine(), CacheBlocksPerNode: 1024, Algorithm: core.SpecLnAgrOBA,
	}, tr)
	fs.Collector().StartMeasurement()
	fs.Read(0, blockdev.Span{File: 0, Start: 0, Count: 1}, func(sim.Time) {})
	// Let a few prefetches through, then close: the chain must stop
	// well before the end of the 512-block file.
	e.RunUntil(func() bool { return fs.Collector().DiskPrefetchReads() >= 3 })
	closed := false
	fs.Close(0, 0, func(sim.Time) { closed = true })
	e.Run()
	if !closed {
		t.Fatal("close never completed")
	}
	if got := fs.Collector().DiskPrefetchReads(); got > 20 {
		t.Errorf("%d prefetch reads after close; chain did not stop", got)
	}
	// A new request resumes prefetching.
	before := fs.Collector().DiskPrefetchReads()
	fs.Read(0, blockdev.Span{File: 0, Start: 100, Count: 1}, func(sim.Time) {})
	e.RunUntil(func() bool { return fs.Collector().DiskPrefetchReads() > before+2 })
	if fs.Collector().DiskPrefetchReads() <= before {
		t.Error("chain did not resume after reopen")
	}
	fs.StopBackground()
	e.Run()
}

func TestCloseStopsOnlyThatNodeXFS(t *testing.T) {
	e := sim.NewEngine(1)
	tr := seqTrace(512, 1)
	fs := xfs.New(e, xfs.Config{
		Machine: smallMachine(), CacheBlocksPerNode: 1024, Algorithm: core.SpecLnAgrOBA,
	}, tr)
	fs.Collector().StartMeasurement()
	fs.Read(0, blockdev.Span{File: 0, Start: 0, Count: 1}, func(sim.Time) {})
	fs.Read(1, blockdev.Span{File: 0, Start: 0, Count: 1}, func(sim.Time) {})
	e.RunUntil(func() bool { return fs.Collector().DiskPrefetchReads() >= 6 })
	// Node 0 closes; node 1's chain keeps walking.
	fs.Close(0, 0, func(sim.Time) {})
	before := fs.Collector().PrefetchIssuedCount()
	e.RunUntil(func() bool { return fs.Collector().PrefetchIssuedCount() > before+5 })
	if fs.Collector().PrefetchIssuedCount() <= before {
		t.Error("closing one node's file stopped every chain")
	}
	fs.StopBackground()
	e.Run()
}
