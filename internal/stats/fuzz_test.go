package stats

import (
	"encoding/binary"
	"testing"
)

// FuzzHistogramRecord feeds arbitrary byte strings as value streams
// and checks the histogram's structural invariants hold for every
// input: exact count, bucket mass conservation, quantile monotonicity
// and the round-trip error bound. Wired into `make fuzz`.
func FuzzHistogramRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<40))
	seed := []byte{}
	for _, v := range []uint64{0, 1, 63, 64, 65, 1 << 20, 1<<63 - 1, 1 << 63} {
		seed = binary.LittleEndian.AppendUint64(seed, v)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		h := NewHistogram()
		var n uint64
		var min, max int64
		for len(data) >= 8 {
			v := int64(binary.LittleEndian.Uint64(data))
			data = data[8:]
			h.Record(v)
			if v < 0 {
				v = 0
			}
			if n == 0 || v < min {
				min = v
			}
			if v > max {
				max = v
			}
			n++
		}
		if h.Count() != n {
			t.Fatalf("count = %d, want %d", h.Count(), n)
		}
		if n == 0 {
			if h.Quantile(0.5) != 0 {
				t.Fatalf("empty quantile = %d", h.Quantile(0.5))
			}
			return
		}
		if h.Min() != min || h.Max() != max {
			t.Fatalf("min/max = %d/%d, want %d/%d", h.Min(), h.Max(), min, max)
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("Quantile(%v) = %d < %d", q, v, prev)
			}
			if v < min || v > max {
				t.Fatalf("Quantile(%v) = %d outside [%d, %d]", q, v, min, max)
			}
			prev = v
		}
	})
}
