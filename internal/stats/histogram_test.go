package stats

import (
	"math"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestHistogramRoundTrip pins the quantization contract: a recorded
// value comes back from Quantile(1) no smaller than it went in and
// within ErrorBound relative error.
func TestHistogramRoundTrip(t *testing.T) {
	rng := sim.NewRNG(7)
	values := []int64{0, 1, 2, 63, 64, 65, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for i := 0; i < 2000; i++ {
		values = append(values, int64(rng.Uint64()>>uint(1+rng.Intn(62))))
	}
	for _, v := range values {
		h := NewHistogram()
		h.Record(v)
		got := h.Quantile(1)
		if got != v {
			// Quantile(1) clamps to Max, which is exact — any drift is a
			// bug in the min/max bookkeeping, not quantization.
			t.Fatalf("Quantile(1) after Record(%d) = %d", v, got)
		}
		// The bucketed representative itself must stay within bound.
		rep := bucketUpper(bucketIndex(v))
		if rep < v {
			t.Fatalf("bucket upper %d below recorded %d", rep, v)
		}
		if v > 0 && float64(rep-v) > float64(v)*ErrorBound {
			t.Fatalf("bucket error %d on %d exceeds bound %.4f", rep-v, v, ErrorBound)
		}
	}
}

// TestHistogramBucketEdges walks every bucket boundary: index and
// upper must be mutually consistent across the whole int64 range.
func TestHistogramBucketEdges(t *testing.T) {
	for idx := 0; idx < numBuckets; idx++ {
		up := bucketUpper(idx)
		if got := bucketIndex(up); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", idx, up, got)
		}
		if up < math.MaxInt64 {
			if got := bucketIndex(up + 1); got != idx+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", up+1, got, idx+1)
			}
		}
	}
}

func randomHist(seed uint64, n int) *Histogram {
	rng := sim.NewRNG(seed)
	h := NewHistogram()
	for i := 0; i < n; i++ {
		h.Record(int64(rng.Uint64() >> uint(rng.Intn(63))))
	}
	return h
}

// TestHistogramMergeAssociative merges three histograms both ways and
// demands identical counts and quantiles — the property that lets the
// load runner keep one histogram per issuing shard and fold them.
func TestHistogramMergeAssociative(t *testing.T) {
	quantiles := []float64{0, 0.5, 0.9, 0.99, 0.999, 1}
	build := func() (a, b, c *Histogram) {
		return randomHist(1, 5000), randomHist(2, 3000), randomHist(3, 7000)
	}

	// (a+b)+c
	a, b, c := build()
	a.Merge(b)
	a.Merge(c)
	// a'+(b'+c')
	a2, b2, c2 := build()
	b2.Merge(c2)
	a2.Merge(b2)

	if a.Count() != a2.Count() {
		t.Fatalf("counts differ: %d vs %d", a.Count(), a2.Count())
	}
	if a.Min() != a2.Min() || a.Max() != a2.Max() {
		t.Fatalf("min/max differ: (%d,%d) vs (%d,%d)", a.Min(), a.Max(), a2.Min(), a2.Max())
	}
	if a.Mean() != a2.Mean() {
		t.Fatalf("means differ: %v vs %v", a.Mean(), a2.Mean())
	}
	for _, q := range quantiles {
		if x, y := a.Quantile(q), a2.Quantile(q); x != y {
			t.Fatalf("Quantile(%v) differs: %d vs %d", q, x, y)
		}
	}
}

// TestHistogramQuantileMonotone: quantiles never decrease as q grows,
// and land inside [Min, Max].
func TestHistogramQuantileMonotone(t *testing.T) {
	h := randomHist(11, 20000)
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %d < previous %d", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("Quantile(%v) = %d outside [%d, %d]", q, v, h.Min(), h.Max())
		}
		prev = v
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatalf("endpoints: Quantile(0)=%d Min=%d, Quantile(1)=%d Max=%d",
			h.Quantile(0), h.Min(), h.Quantile(1), h.Max())
	}
}

// TestHistogramEmptyAndNegative pins the degenerate cases the record
// path promises: empty reads are zero, negatives clamp rather than
// vanish.
func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative record: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many
// goroutines; under -race this is the record path's thread-safety
// proof, and the final count/sum must be exact regardless.
func TestHistogramConcurrentRecord(t *testing.T) {
	const workers, per = 8, 10000
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(w) + 100)
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1 << 30)))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i]
	}
	if cum != workers*per {
		t.Fatalf("bucket mass = %d, want %d", cum, workers*per)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 997)
	}
}
