// Package stats collects the metrics the paper reports: average read
// time (Figures 4–7), disk accesses (Figures 8–11), per-block disk
// write counts (Table 2), and the prefetch-quality ratios quoted in
// the text (misprediction ratio, OBA-fallback fraction).
//
// A collector is gated: nothing is recorded until StartMeasurement is
// called, mirroring the paper's use of the first hours of each trace
// to warm the cache before measuring.
package stats

import (
	"repro/internal/blockdev"
	"repro/internal/sim"
)

// Collector accumulates one simulation run's metrics.
type Collector struct {
	measuring bool

	reads         uint64
	readLatency   sim.Duration
	writes        uint64
	writeLatency  sim.Duration
	readBlocks    uint64
	readBlocksHit uint64

	diskReads         uint64
	diskDemandReads   uint64
	diskPrefetchReads uint64
	diskWrites        uint64
	blockWriteCounts  map[blockdev.BlockID]uint64

	prefetchIssued   uint64
	prefetchFallback uint64

	// Prefetch timeliness: a prefetched block is *timely* when a user
	// request finds it cached, *late* when demand traffic arrives while
	// the prefetch is still in flight (forcing a duplicate demand
	// fetch), and *wasted* when it is evicted without ever being used.
	prefetchTimely uint64
	prefetchLate   uint64
	prefetchWasted uint64
}

// New returns an idle collector.
func New() *Collector {
	return &Collector{blockWriteCounts: make(map[blockdev.BlockID]uint64)}
}

// StartMeasurement opens the measurement window; counters are zero
// before it.
func (c *Collector) StartMeasurement() { c.measuring = true }

// StopMeasurement closes the window: trailing activity (drained
// prefetch chains, final flushes) is not recorded, mirroring the
// paper's fixed measurement interval inside a longer trace.
func (c *Collector) StopMeasurement() { c.measuring = false }

// Measuring reports whether the window is open.
func (c *Collector) Measuring() bool { return c.measuring }

// ReadDone records a completed user read request and its latency.
func (c *Collector) ReadDone(latency sim.Duration) {
	if !c.measuring {
		return
	}
	c.reads++
	c.readLatency += latency
}

// WriteDone records a completed user write request and its latency.
func (c *Collector) WriteDone(latency sim.Duration) {
	if !c.measuring {
		return
	}
	c.writes++
	c.writeLatency += latency
}

// ReadBlocks records how many blocks a read request covered and how
// many of them were already cached on arrival (hit accounting).
func (c *Collector) ReadBlocks(total, hit int) {
	if !c.measuring {
		return
	}
	c.readBlocks += uint64(total)
	c.readBlocksHit += uint64(hit)
}

// DiskRead records one disk block read; prefetch marks speculative
// reads.
func (c *Collector) DiskRead(prefetch bool) {
	if !c.measuring {
		return
	}
	c.diskReads++
	if prefetch {
		c.diskPrefetchReads++
	} else {
		c.diskDemandReads++
	}
}

// DiskWrite records one disk block write of block b.
func (c *Collector) DiskWrite(b blockdev.BlockID) {
	if !c.measuring {
		return
	}
	c.diskWrites++
	c.blockWriteCounts[b]++
}

// PrefetchIssued records one launched prefetch operation; fallback
// marks OBA-fallback predictions inside IS_PPM.
func (c *Collector) PrefetchIssued(fallback bool) {
	if !c.measuring {
		return
	}
	c.prefetchIssued++
	if fallback {
		c.prefetchFallback++
	}
}

// PrefetchTimely records a prefetched block hit by a user request
// after arriving in the cache: the prefetch paid off in full.
func (c *Collector) PrefetchTimely() {
	if !c.measuring {
		return
	}
	c.prefetchTimely++
}

// PrefetchLate records a demand fetch launched while a prefetch of the
// same block was still in flight: the prediction was right but the
// prefetch lost the race, so the work is duplicated.
func (c *Collector) PrefetchLate() {
	if !c.measuring {
		return
	}
	c.prefetchLate++
}

// PrefetchWasted records a prefetched block evicted before any user
// request touched it.
func (c *Collector) PrefetchWasted() {
	if !c.measuring {
		return
	}
	c.prefetchWasted++
}

// Reads returns the completed user read count.
func (c *Collector) Reads() uint64 { return c.reads }

// Writes returns the completed user write count.
func (c *Collector) Writes() uint64 { return c.writes }

// AvgReadTime returns the mean user read latency — the y-axis of
// Figures 4–7.
func (c *Collector) AvgReadTime() sim.Duration {
	if c.reads == 0 {
		return 0
	}
	return c.readLatency / sim.Duration(c.reads)
}

// AvgWriteTime returns the mean user write latency.
func (c *Collector) AvgWriteTime() sim.Duration {
	if c.writes == 0 {
		return 0
	}
	return c.writeLatency / sim.Duration(c.writes)
}

// DiskReads returns total disk block reads in the window.
func (c *Collector) DiskReads() uint64 { return c.diskReads }

// DiskDemandReads returns demand (non-prefetch) disk reads.
func (c *Collector) DiskDemandReads() uint64 { return c.diskDemandReads }

// DiskPrefetchReads returns prefetch disk reads.
func (c *Collector) DiskPrefetchReads() uint64 { return c.diskPrefetchReads }

// DiskWrites returns total disk block writes in the window.
func (c *Collector) DiskWrites() uint64 { return c.diskWrites }

// DiskAccesses returns reads plus writes — the y-axis of Figures 8–11.
func (c *Collector) DiskAccesses() uint64 { return c.diskReads + c.diskWrites }

// WritesPerBlock returns the mean number of times a distinct block was
// written to disk — the paper's Table 2 metric.
func (c *Collector) WritesPerBlock() float64 {
	if len(c.blockWriteCounts) == 0 {
		return 0
	}
	return float64(c.diskWrites) / float64(len(c.blockWriteCounts))
}

// DistinctBlocksWritten returns the number of distinct blocks written.
func (c *Collector) DistinctBlocksWritten() int { return len(c.blockWriteCounts) }

// PrefetchIssuedCount returns the number of prefetch operations
// launched in the window.
func (c *Collector) PrefetchIssuedCount() uint64 { return c.prefetchIssued }

// FallbackFraction returns the share of prefetches predicted by the
// OBA fallback (§2.2: <1% on CHARISMA, ~25% on Sprite).
func (c *Collector) FallbackFraction() float64 {
	if c.prefetchIssued == 0 {
		return 0
	}
	return float64(c.prefetchFallback) / float64(c.prefetchIssued)
}

// PrefetchTimelyCount returns prefetched blocks used after arrival.
func (c *Collector) PrefetchTimelyCount() uint64 { return c.prefetchTimely }

// PrefetchLateCount returns demand fetches that overlapped an
// in-flight prefetch of the same block.
func (c *Collector) PrefetchLateCount() uint64 { return c.prefetchLate }

// PrefetchWastedCount returns prefetched blocks evicted unused.
func (c *Collector) PrefetchWastedCount() uint64 { return c.prefetchWasted }

// BlockHitRatio returns the fraction of requested blocks found cached
// on arrival.
func (c *Collector) BlockHitRatio() float64 {
	if c.readBlocks == 0 {
		return 0
	}
	return float64(c.readBlocksHit) / float64(c.readBlocks)
}
