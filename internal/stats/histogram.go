package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram geometry: a log-linear (HDR-style) bucket layout over
// non-negative int64 values. Values below subCount land in exact
// one-per-value buckets; above that, every power of two is split into
// subHalf equal-width buckets, so the relative quantization error is
// bounded by ErrorBound everywhere. The layout is a compile-time
// constant, which is what makes histograms mergeable: every Histogram
// shares the same buckets, so Merge is a plain counter add.
const (
	subBits  = 6
	subCount = 1 << subBits // linear region: values [0, 64) are exact
	subHalf  = subCount / 2 // buckets per octave above the linear region

	// numBuckets covers the full non-negative int64 range: the linear
	// region plus subHalf buckets for each of the remaining octaves.
	numBuckets = subCount + (63-subBits)*subHalf
)

// ErrorBound is the worst-case relative quantization error of a
// recorded value: a bucket in octave k spans 2^k values starting at
// 2^(k+subBits-1), so width/value <= 2^(1-subBits).
const ErrorBound = 1.0 / (1 << (subBits - 1))

// Histogram is an HDR-style log-bucketed latency histogram. The
// record path is allocation-free and safe for concurrent use (one
// atomic add per Record, plus bounded CAS loops maintaining min/max);
// readers may run concurrently with writers and see a consistent
// snapshot only once recording has quiesced — exactly the load
// harness's shape: many issuing goroutines record, one reporter reads
// after the run drains.
//
// Values are int64 (nanoseconds, by convention); negative values are
// clamped to zero rather than dropped, so Count always equals the
// number of Record calls.
type Histogram struct {
	counts [numBuckets]uint64 // accessed atomically
	count  atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Int64 // math.MaxInt64 until the first Record
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative value to its bucket. Pure bit
// arithmetic — no bounds in need of allocation or branching beyond
// the linear-region test.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	k := uint(bits.Len64(u)) - subBits
	return subCount + int(k-1)*subHalf + int(u>>k) - subHalf
}

// bucketUpper returns the largest value that maps to bucket idx — the
// representative reported by Quantile (quantiles err on the
// conservative side, never under-reporting a latency).
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	r := idx - subCount
	k := uint(r/subHalf) + 1
	sub := uint64(r%subHalf) + subHalf
	return int64((sub+1)<<k - 1)
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	atomic.AddUint64(&h.counts[bucketIndex(v)], 1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean of recorded values (exact, not
// bucketed), or 0 on an empty histogram.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest recorded value (exact), or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded value (exact), or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile returns the value at quantile q in [0, 1]: the smallest
// bucket representative below which at least q of the recorded mass
// lies. The result is clamped to [Min, Max], so Quantile(0) == Min
// and Quantile(1) == Max exactly; interior quantiles carry the bucket
// quantization error (<= ErrorBound, relative). Empty histograms
// return 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target > total {
		target = total
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += atomic.LoadUint64(&h.counts[i])
		if cum >= target {
			v := bucketUpper(i)
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			if mn := h.min.Load(); v < mn {
				v = mn
			}
			return v
		}
	}
	return h.Max()
}

// Merge folds o's observations into h. Safe against concurrent
// Record on either side in the same senses Record is; both histograms
// share the fixed bucket geometry, so merging is associative and
// commutative over counts.
func (h *Histogram) Merge(o *Histogram) {
	for i := 0; i < numBuckets; i++ {
		if n := atomic.LoadUint64(&o.counts[i]); n > 0 {
			atomic.AddUint64(&h.counts[i], n)
		}
	}
	n := o.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(o.sum.Load())
	for {
		v, cur := o.min.Load(), h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		v, cur := o.max.Load(), h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}
