package stats

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

func TestCollectorGatesOnMeasurement(t *testing.T) {
	c := New()
	c.ReadDone(sim.Milliseconds(5))
	c.WriteDone(sim.Milliseconds(5))
	c.DiskRead(false)
	c.DiskWrite(blockdev.BlockID{File: 1})
	c.PrefetchIssued(false)
	c.ReadBlocks(4, 2)
	if c.Reads() != 0 || c.Writes() != 0 || c.DiskAccesses() != 0 ||
		c.PrefetchIssuedCount() != 0 || c.BlockHitRatio() != 0 {
		t.Error("collector recorded before StartMeasurement")
	}
	if c.Measuring() {
		t.Error("Measuring true before start")
	}
	c.StartMeasurement()
	if !c.Measuring() {
		t.Error("Measuring false after start")
	}
	c.ReadDone(sim.Milliseconds(5))
	if c.Reads() != 1 {
		t.Error("collector ignored post-start event")
	}
}

func TestAvgReadTime(t *testing.T) {
	c := New()
	c.StartMeasurement()
	c.ReadDone(sim.Milliseconds(2))
	c.ReadDone(sim.Milliseconds(4))
	if got := c.AvgReadTime(); got != sim.Milliseconds(3) {
		t.Errorf("AvgReadTime = %v, want 3ms", got)
	}
	if New().AvgReadTime() != 0 {
		t.Error("empty collector should report 0")
	}
}

func TestAvgWriteTime(t *testing.T) {
	c := New()
	c.StartMeasurement()
	c.WriteDone(sim.Milliseconds(10))
	if c.AvgWriteTime() != sim.Milliseconds(10) || c.Writes() != 1 {
		t.Error("write accounting wrong")
	}
	if New().AvgWriteTime() != 0 {
		t.Error("empty collector should report 0")
	}
}

func TestDiskCounters(t *testing.T) {
	c := New()
	c.StartMeasurement()
	c.DiskRead(false)
	c.DiskRead(true)
	c.DiskRead(true)
	c.DiskWrite(blockdev.BlockID{File: 1, Block: 0})
	if c.DiskReads() != 3 || c.DiskDemandReads() != 1 || c.DiskPrefetchReads() != 2 {
		t.Error("read split wrong")
	}
	if c.DiskWrites() != 1 || c.DiskAccesses() != 4 {
		t.Error("totals wrong")
	}
}

func TestWritesPerBlock(t *testing.T) {
	c := New()
	c.StartMeasurement()
	a := blockdev.BlockID{File: 1, Block: 0}
	b := blockdev.BlockID{File: 1, Block: 1}
	for i := 0; i < 3; i++ {
		c.DiskWrite(a)
	}
	c.DiskWrite(b)
	// 4 writes over 2 distinct blocks = 2.0.
	if got := c.WritesPerBlock(); got != 2.0 {
		t.Errorf("WritesPerBlock = %v, want 2.0", got)
	}
	if c.DistinctBlocksWritten() != 2 {
		t.Errorf("DistinctBlocksWritten = %d", c.DistinctBlocksWritten())
	}
	if New().WritesPerBlock() != 0 {
		t.Error("empty collector should report 0")
	}
}

func TestFallbackFraction(t *testing.T) {
	c := New()
	c.StartMeasurement()
	for i := 0; i < 3; i++ {
		c.PrefetchIssued(false)
	}
	c.PrefetchIssued(true)
	if got := c.FallbackFraction(); got != 0.25 {
		t.Errorf("FallbackFraction = %v, want 0.25", got)
	}
	if New().FallbackFraction() != 0 {
		t.Error("empty collector should report 0")
	}
}

func TestBlockHitRatio(t *testing.T) {
	c := New()
	c.StartMeasurement()
	c.ReadBlocks(8, 6)
	c.ReadBlocks(2, 0)
	if got := c.BlockHitRatio(); got != 0.6 {
		t.Errorf("BlockHitRatio = %v, want 0.6", got)
	}
}
