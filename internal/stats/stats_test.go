package stats

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

// fireEverything drives every recorder the collector has, old and new.
// A gating bug in any of them shows up as a snapshot difference.
func fireEverything(c *Collector) {
	c.ReadDone(sim.Milliseconds(5))
	c.WriteDone(sim.Milliseconds(5))
	c.ReadBlocks(4, 2)
	c.DiskRead(false)
	c.DiskRead(true)
	c.DiskWrite(blockdev.BlockID{File: 1})
	c.PrefetchIssued(false)
	c.PrefetchIssued(true)
	c.PrefetchTimely()
	c.PrefetchLate()
	c.PrefetchWasted()
}

// snapshot reads every exported counter and ratio.
func snapshot(c *Collector) map[string]float64 {
	return map[string]float64{
		"reads":          float64(c.Reads()),
		"writes":         float64(c.Writes()),
		"avgRead":        float64(c.AvgReadTime()),
		"avgWrite":       float64(c.AvgWriteTime()),
		"hitRatio":       c.BlockHitRatio(),
		"diskReads":      float64(c.DiskReads()),
		"diskDemand":     float64(c.DiskDemandReads()),
		"diskPrefetch":   float64(c.DiskPrefetchReads()),
		"diskWrites":     float64(c.DiskWrites()),
		"diskAccesses":   float64(c.DiskAccesses()),
		"writesPerBlock": c.WritesPerBlock(),
		"distinctBlocks": float64(c.DistinctBlocksWritten()),
		"pfIssued":       float64(c.PrefetchIssuedCount()),
		"fallback":       c.FallbackFraction(),
		"pfTimely":       float64(c.PrefetchTimelyCount()),
		"pfLate":         float64(c.PrefetchLateCount()),
		"pfWasted":       float64(c.PrefetchWastedCount()),
	}
}

func assertAllZero(t *testing.T, c *Collector, when string) {
	t.Helper()
	for name, v := range snapshot(c) {
		if v != 0 {
			t.Errorf("%s: %s = %v, want 0", when, name, v)
		}
	}
}

func TestCollectorGatesOnMeasurement(t *testing.T) {
	c := New()
	if c.Measuring() {
		t.Error("Measuring true before start")
	}
	fireEverything(c)
	assertAllZero(t, c, "before StartMeasurement")

	c.StartMeasurement()
	if !c.Measuring() {
		t.Error("Measuring false after start")
	}
	fireEverything(c)
	inWindow := snapshot(c)
	if inWindow["reads"] != 1 || inWindow["pfTimely"] != 1 ||
		inWindow["pfLate"] != 1 || inWindow["pfWasted"] != 1 {
		t.Errorf("collector ignored in-window events: %v", inWindow)
	}
	for name, v := range inWindow {
		if v == 0 {
			t.Errorf("in-window %s = 0, want nonzero", name)
		}
	}

	c.StopMeasurement()
	if c.Measuring() {
		t.Error("Measuring true after stop")
	}
	fireEverything(c)
	after := snapshot(c)
	for name, v := range after {
		if v != inWindow[name] {
			t.Errorf("after StopMeasurement %s changed %v -> %v", name, inWindow[name], v)
		}
	}
}

// TestCollectorZeroWindow pins the degenerate window: start and stop
// with nothing in between leaks nothing from either side.
func TestCollectorZeroWindow(t *testing.T) {
	c := New()
	fireEverything(c)
	c.StartMeasurement()
	c.StopMeasurement()
	fireEverything(c)
	assertAllZero(t, c, "empty window")
}

func TestAvgReadTime(t *testing.T) {
	c := New()
	c.StartMeasurement()
	c.ReadDone(sim.Milliseconds(2))
	c.ReadDone(sim.Milliseconds(4))
	if got := c.AvgReadTime(); got != sim.Milliseconds(3) {
		t.Errorf("AvgReadTime = %v, want 3ms", got)
	}
	if New().AvgReadTime() != 0 {
		t.Error("empty collector should report 0")
	}
}

func TestAvgWriteTime(t *testing.T) {
	c := New()
	c.StartMeasurement()
	c.WriteDone(sim.Milliseconds(10))
	if c.AvgWriteTime() != sim.Milliseconds(10) || c.Writes() != 1 {
		t.Error("write accounting wrong")
	}
	if New().AvgWriteTime() != 0 {
		t.Error("empty collector should report 0")
	}
}

func TestDiskCounters(t *testing.T) {
	c := New()
	c.StartMeasurement()
	c.DiskRead(false)
	c.DiskRead(true)
	c.DiskRead(true)
	c.DiskWrite(blockdev.BlockID{File: 1, Block: 0})
	if c.DiskReads() != 3 || c.DiskDemandReads() != 1 || c.DiskPrefetchReads() != 2 {
		t.Error("read split wrong")
	}
	if c.DiskWrites() != 1 || c.DiskAccesses() != 4 {
		t.Error("totals wrong")
	}
}

func TestWritesPerBlock(t *testing.T) {
	c := New()
	c.StartMeasurement()
	a := blockdev.BlockID{File: 1, Block: 0}
	b := blockdev.BlockID{File: 1, Block: 1}
	for i := 0; i < 3; i++ {
		c.DiskWrite(a)
	}
	c.DiskWrite(b)
	// 4 writes over 2 distinct blocks = 2.0.
	if got := c.WritesPerBlock(); got != 2.0 {
		t.Errorf("WritesPerBlock = %v, want 2.0", got)
	}
	if c.DistinctBlocksWritten() != 2 {
		t.Errorf("DistinctBlocksWritten = %d", c.DistinctBlocksWritten())
	}
	if New().WritesPerBlock() != 0 {
		t.Error("empty collector should report 0")
	}
}

func TestFallbackFraction(t *testing.T) {
	c := New()
	c.StartMeasurement()
	for i := 0; i < 3; i++ {
		c.PrefetchIssued(false)
	}
	c.PrefetchIssued(true)
	if got := c.FallbackFraction(); got != 0.25 {
		t.Errorf("FallbackFraction = %v, want 0.25", got)
	}
	if New().FallbackFraction() != 0 {
		t.Error("empty collector should report 0")
	}
}

func TestBlockHitRatio(t *testing.T) {
	c := New()
	c.StartMeasurement()
	c.ReadBlocks(8, 6)
	c.ReadBlocks(2, 0)
	if got := c.BlockHitRatio(); got != 0.6 {
		t.Errorf("BlockHitRatio = %v, want 0.6", got)
	}
}
