// Package faultinject is a seeded, deterministic fault plan for the
// lapcache runtime: a description of which operations at which sites
// should fail, stall, truncate or corrupt, evaluated the same way on
// every run with the same seed. It is the substrate of the chaos
// harness (internal/chaos): the harness replays a trace on a live
// cluster while this package decides, site by site, where reality
// misbehaves — and records every decision so a failing run can be
// replayed bit for bit from its seed.
//
// # Determinism
//
// Fault selection is a pure function of (plan seed, rule index, site
// key): a rule with probability P selects the fraction P of its site
// keyspace by hashing, not by sampling a shared PRNG stream. Goroutine
// interleaving therefore cannot change WHICH sites fault — a store
// rule that fails block 7:12 of one run fails block 7:12 of every run
// with that seed. What can vary across runs is which selected sites
// the workload happens to exercise and how many times (both are
// timing-dependent): the observed site set is always a subset of the
// selected set. WouldFault exposes the pure selection function so a
// harness can enumerate the selected set up front and assert exactly
// that subset relation; Report carries the observed sites and their
// budget-bounded hit counts.
//
// # Sites
//
// Injection hooks thread through the three failure-sensitive layers:
//
//   - store.read / store.write — a BackingStore wrapper (WrapStore);
//     keys are block IDs, so faults model per-block disk defects.
//   - conn.send / conn.recv — a net.Conn wrapper (WrapConn); keys are
//     stable link labels ("peer:n0->n1", "accept@n2"), so faults model
//     per-link transport defects: stalled writes, truncated frames,
//     corrupted headers, mid-stream disconnects.
//   - peer.dial — a dial gate (DialFault); keys are link labels, so
//     faults model asymmetric partitions and redial storms.
//
// Corruption is restricted to frame headers (the version/reserved
// bytes every receiver validates) because block payloads carry no
// checksum: a payload bit-flip would be silent data corruption, which
// is exactly what the chaos harness must prove never reaches a caller.
// Detectable corruption tears the connection; undetectable corruption
// is out of the fault model until the wire grows payload checksums.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/blockdev"
)

// Kind is a fault flavour. The zero value is invalid.
type Kind string

const (
	// KindError fails the operation with ErrInjected.
	KindError Kind = "error"
	// KindDelay stalls the operation for Rule.Delay before letting it
	// proceed (a latency spike, a slow owner, a stalled write).
	KindDelay Kind = "delay"
	// KindPartial does part of the operation and then fails it: a
	// store read fills a prefix of the buffer before erroring, a
	// connection write sends a prefix of the frame and then severs the
	// connection (frame truncation).
	KindPartial Kind = "partial"
	// KindCorrupt flips a validated header byte in a frame-shaped
	// write, guaranteeing the receiver detects the damage and tears
	// the connection. Valid only at conn.send.
	KindCorrupt Kind = "corrupt"
	// KindHang stalls the operation for Rule.Delay (default
	// DefaultHang — long enough to look wedged, bounded so runs
	// terminate) and then fails it.
	KindHang Kind = "hang"
)

// Site names (Rule.Site).
const (
	SiteStoreRead  = "store.read"
	SiteStoreWrite = "store.write"
	SiteConnSend   = "conn.send"
	SiteConnRecv   = "conn.recv"
	SitePeerDial   = "peer.dial"
	// SiteGossip is the membership layer's datagram send; keys are
	// directed link labels ("gossip:n0->n1"), so faults model lossy or
	// partitioned gossip paths. Dropping every datagram in one
	// direction is an asymmetric gossip partition — the scenario
	// indirect probes exist to survive.
	SiteGossip = "gossip.send"
)

// DefaultHang bounds a KindHang stall when Rule.Delay is zero. Hangs
// are bounded on purpose: the harness's job is to prove the system
// escapes them through deadlines and degrade paths, and an unbounded
// sleep would turn an injection bug into a hung test run.
const DefaultHang = 500 * time.Millisecond

// ErrInjected marks every failure this package manufactures. The
// chaos harness classifies an error as an expected injection iff its
// message carries this marker (errors cross the wire as strings, so
// the marker — not errors.Is — is the contract).
var ErrInjected = errors.New("faultinject: injected fault")

// Rule is one injection rule: at Site, for the fraction P of the
// site's keyspace (selected deterministically from the plan seed),
// inject Kind on each matching operation, at most Count times per key.
type Rule struct {
	Site string `json:"site"`
	Kind Kind   `json:"kind"`
	// P is the fraction of the site's keyspace the rule selects,
	// in [0, 1]. Selection is per key (per block, per link), not per
	// call: a selected key faults on every call until its budget is
	// spent, an unselected key never faults.
	P float64 `json:"p"`
	// Count caps how many operations each selected key faults
	// (0 = unlimited). A count-bounded rule models a transient fault:
	// the site recovers once the budget is spent.
	Count int64 `json:"count,omitempty"`
	// Delay is the stall for KindDelay and KindHang.
	Delay time.Duration `json:"delay_ns,omitempty"`
	// Links, when non-empty, restricts the rule to keys whose label
	// contains any of these substrings (conn/dial sites; also matches
	// the node label of store sites). An asymmetric partition is a
	// dial/conn rule whose Links name one direction only.
	Links []string `json:"links,omitempty"`
	// Files, when non-empty, restricts store-site rules to these
	// files.
	Files []int32 `json:"files,omitempty"`
}

// Plan is a complete, serializable fault schedule: a seed and a rule
// list. Two injectors built from equal plans make identical
// selections.
type Plan struct {
	Seed  uint64 `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Validate checks every rule names a known site, a kind that is legal
// there, and a probability in range.
func (p Plan) Validate() error {
	for i, r := range p.Rules {
		switch r.Site {
		case SiteStoreRead, SiteStoreWrite:
			if r.Kind == KindCorrupt {
				return fmt.Errorf("faultinject: rule %d: %s cannot corrupt (block payloads carry no checksum; silent corruption is outside the fault model)", i, r.Site)
			}
		case SiteConnSend:
		case SiteConnRecv, SitePeerDial:
			if r.Kind == KindCorrupt || r.Kind == KindPartial {
				return fmt.Errorf("faultinject: rule %d: kind %q is not injectable at %s", i, r.Kind, r.Site)
			}
		case SiteGossip:
			// A datagram is either delivered, delayed, or lost; there is
			// no partial datagram, corruption is the codec's fuzz target
			// rather than a runtime fault, and a hang would stall the
			// prober rather than model the network.
			if r.Kind != KindError && r.Kind != KindDelay {
				return fmt.Errorf("faultinject: rule %d: kind %q is not injectable at %s (datagrams drop or delay)", i, r.Kind, r.Site)
			}
		default:
			return fmt.Errorf("faultinject: rule %d: unknown site %q", i, r.Site)
		}
		switch r.Kind {
		case KindError, KindDelay, KindPartial, KindCorrupt, KindHang:
		default:
			return fmt.Errorf("faultinject: rule %d: unknown kind %q", i, r.Kind)
		}
		if r.P < 0 || r.P > 1 {
			return fmt.Errorf("faultinject: rule %d: probability %v outside [0,1]", i, r.P)
		}
		if r.Count < 0 {
			return fmt.Errorf("faultinject: rule %d: negative count %d", i, r.Count)
		}
	}
	return nil
}

// Fault is one positive injection decision.
type Fault struct {
	Rule  int
	Kind  Kind
	Delay time.Duration
}

// stall returns the fault's effective stall duration.
func (f Fault) stall() time.Duration {
	if f.Delay > 0 {
		return f.Delay
	}
	if f.Kind == KindHang {
		return DefaultHang
	}
	return 0
}

// siteKey identifies one (rule, key) pair for budgets and reporting.
type siteKey struct {
	rule int
	key  uint64
}

// siteStat is the recorded activity of one faulted site.
type siteStat struct {
	label string
	hits  int64
}

// Injector evaluates a plan. All methods are safe for concurrent use
// and nil-safe: a nil *Injector injects nothing, so call sites need no
// guards.
type Injector struct {
	plan Plan

	mu    sync.Mutex
	sites map[siteKey]*siteStat
	total int64
}

// New validates the plan and returns an injector for it.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan, sites: make(map[siteKey]*siteStat)}, nil
}

// mix64 is the splitmix64 finalizer (bijective avalanche).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// labelKey hashes a stable site label into the keyspace.
func labelKey(label string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(label)) //nolint:errcheck // fnv never fails
	return h.Sum64()
}

// LabelKey hashes a stable link label into the keyspace — the key
// conn.send/conn.recv/peer.dial sites use, exposed for WouldFault
// enumeration.
func LabelKey(label string) uint64 { return labelKey(label) }

// blockKey places a block in the keyspace.
func blockKey(b blockdev.BlockID) uint64 {
	return uint64(uint32(b.File))<<32 | uint64(uint32(b.Block))
}

// StoreKey places block b of node's store in the keyspace — the key
// store.read/store.write sites use, exposed for WouldFault
// enumeration. The node is part of the key so each node's disk makes
// its own selection (see Store).
func StoreKey(node string, b blockdev.BlockID) uint64 {
	return mix64(blockKey(b) ^ labelKey(node))
}

// selected reports whether rule ri of the plan picks key — a pure
// function of (seed, rule, site, key), independent of call order.
func (in *Injector) selected(ri int, site string, key uint64) bool {
	r := &in.plan.Rules[ri]
	if r.P <= 0 {
		return false
	}
	if r.P >= 1 {
		return true
	}
	h := mix64(in.plan.Seed ^ mix64(uint64(ri)+1) ^ mix64(labelKey(site)) ^ mix64(key))
	// Compare against P scaled to the full 64-bit range.
	return float64(h)/float64(^uint64(0)) < r.P
}

// matches reports whether rule ri fires at (site, key, label, file):
// site equality, the Files/Links filters, and the seeded selection —
// everything about the decision except the runtime budget. It is a
// pure function of the plan.
func (in *Injector) matches(ri int, site string, key uint64, label string, file int32) bool {
	r := &in.plan.Rules[ri]
	if r.Site != site {
		return false
	}
	if len(r.Files) > 0 && file >= 0 {
		found := false
		for _, f := range r.Files {
			if f == file {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(r.Links) > 0 {
		found := false
		for _, l := range r.Links {
			if strings.Contains(label, l) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return in.selected(ri, site, key)
}

// MatchingRules reports the plan's deterministic selection decision
// for one concrete site: every rule index that would fire there, in
// plan order, ignoring budgets and recording nothing. It is eval's
// pure core, exposed so a harness can enumerate a plan's faulted-site
// set without running anything — the reproducible half of a chaos run.
// eval fires the FIRST of these with budget remaining, so the rule
// observed at a site is always one of them but, once an earlier
// rule's budget is spent, not necessarily the first (observed sites
// are a timing-dependent subset of this set; see Report.Digest).
func (in *Injector) MatchingRules(site string, key uint64, label string, file int32) []int {
	if in == nil {
		return nil
	}
	var rs []int
	for ri := range in.plan.Rules {
		if in.matches(ri, site, key, label, file) {
			rs = append(rs, ri)
		}
	}
	return rs
}

// WouldFault reports whether any rule selects this site, and the
// first that does. Shorthand for MatchingRules — eval's first choice
// while budgets last.
func (in *Injector) WouldFault(site string, key uint64, label string, file int32) (int, bool) {
	rs := in.MatchingRules(site, key, label, file)
	if len(rs) == 0 {
		return 0, false
	}
	return rs[0], true
}

// eval runs key (with its human-readable label, and the file for store
// sites, else -1) through every rule at site; the first matching rule
// with remaining budget wins.
func (in *Injector) eval(site string, key uint64, label string, file int32) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	for ri := range in.plan.Rules {
		r := &in.plan.Rules[ri]
		if !in.matches(ri, site, key, label, file) {
			continue
		}
		sk := siteKey{rule: ri, key: key}
		in.mu.Lock()
		st := in.sites[sk]
		if st == nil {
			st = &siteStat{label: label}
			in.sites[sk] = st
		}
		if r.Count > 0 && st.hits >= r.Count {
			in.mu.Unlock()
			continue // budget spent: the site has healed
		}
		st.hits++
		in.total++
		in.mu.Unlock()
		return Fault{Rule: ri, Kind: r.Kind, Delay: r.Delay}, true
	}
	return Fault{}, false
}

// Total returns how many faults have been injected so far.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// SiteHit is one faulted site in a Report.
type SiteHit struct {
	Rule  int    `json:"rule"`
	Site  string `json:"site"`
	Label string `json:"label"`
	Hits  int64  `json:"hits"`
}

// Report is a frozen view of everything an injector did.
type Report struct {
	Seed  uint64    `json:"seed"`
	Total int64     `json:"total"`
	Sites []SiteHit `json:"sites"`
}

// Report snapshots the injector's activity, sites sorted by (rule,
// site, label) so equal runs render equal reports.
func (in *Injector) Report() Report {
	if in == nil {
		return Report{}
	}
	in.mu.Lock()
	rep := Report{Seed: in.plan.Seed, Total: in.total, Sites: make([]SiteHit, 0, len(in.sites))}
	for sk, st := range in.sites {
		rep.Sites = append(rep.Sites, SiteHit{
			Rule: sk.rule, Site: in.plan.Rules[sk.rule].Site, Label: st.label, Hits: st.hits,
		})
	}
	in.mu.Unlock()
	sort.Slice(rep.Sites, func(i, j int) bool {
		a, b := rep.Sites[i], rep.Sites[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Label < b.Label
	})
	return rep
}

// Digest hashes the report's observed fault-site SET — rule, site and
// label, not hit counts. Selection is deterministic by construction,
// but which selected sites a concurrent workload exercises is not, so
// two same-seed runs may observe different subsets of the same
// selected set; the reproducible value is the selection digest a
// harness computes over the full universe with WouldFault (see
// chaos.PlanDigest), which every observed site must belong to.
func (r Report) Digest() uint64 {
	h := fnv.New64a()
	for _, s := range r.Sites {
		fmt.Fprintf(h, "%d|%s|%s\n", s.Rule, s.Site, s.Label)
	}
	return mix64(r.Seed ^ h.Sum64())
}

// String renders the report for logs and EXPERIMENTS.md.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault report: seed=%d total=%d sites=%d digest=%016x\n",
		r.Seed, r.Total, len(r.Sites), r.Digest())
	for _, s := range r.Sites {
		fmt.Fprintf(&b, "  rule %d %-11s %-28s hits=%d\n", s.Rule, s.Site, s.Label, s.Hits)
	}
	return b.String()
}

// DialFault gates one peer dial on the given directed link label
// (e.g. "peer:n0->n1"): a selected link's dials fail — an asymmetric
// partition when only one direction is selected — until the rule's
// budget heals it. A KindDelay/KindHang rule stalls the dial instead.
func (in *Injector) DialFault(link string) error {
	f, ok := in.eval(SitePeerDial, labelKey(link), link, -1)
	if !ok {
		return nil
	}
	if d := f.stall(); d > 0 {
		time.Sleep(d)
		if f.Kind == KindDelay {
			return nil
		}
	}
	return fmt.Errorf("%w: dial %s", ErrInjected, link)
}

// GossipFault gates one membership datagram on the given directed
// link label (e.g. "gossip:n0->n1"): a selected link's sends are
// dropped (KindError) or stalled (KindDelay) until the rule's budget
// heals it. It plugs into membership.Config.Intercept.
func (in *Injector) GossipFault(link string) error {
	f, ok := in.eval(SiteGossip, labelKey(link), link, -1)
	if !ok {
		return nil
	}
	if f.Kind == KindDelay {
		if d := f.stall(); d > 0 {
			time.Sleep(d)
		}
		return nil
	}
	return fmt.Errorf("%w: gossip %s", ErrInjected, link)
}
