package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
)

// mustNew builds an injector or fails the test.
func mustNew(t *testing.T, p Plan) *Injector {
	t.Helper()
	in, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Site: "store.fsync", Kind: KindError, P: 1}}},
		{Rules: []Rule{{Site: SiteStoreRead, Kind: "explode", P: 1}}},
		{Rules: []Rule{{Site: SiteStoreRead, Kind: KindCorrupt, P: 1}}},
		{Rules: []Rule{{Site: SiteConnRecv, Kind: KindCorrupt, P: 1}}},
		{Rules: []Rule{{Site: SiteConnRecv, Kind: KindPartial, P: 1}}},
		{Rules: []Rule{{Site: SitePeerDial, Kind: KindPartial, P: 1}}},
		{Rules: []Rule{{Site: SiteConnSend, Kind: KindError, P: 1.5}}},
		{Rules: []Rule{{Site: SiteConnSend, Kind: KindError, P: -0.1}}},
		{Rules: []Rule{{Site: SiteConnSend, Kind: KindError, P: 1, Count: -2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: Validate accepted an invalid plan", i)
		}
	}
	good := Plan{Seed: 3, Rules: []Rule{
		{Site: SiteStoreRead, Kind: KindPartial, P: 0.5, Count: 1},
		{Site: SiteConnSend, Kind: KindCorrupt, P: 0.5},
		{Site: SitePeerDial, Kind: KindHang, P: 0.1, Delay: time.Millisecond},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected a valid plan: %v", err)
	}
}

// TestSelectionIsDeterministic: two injectors from equal plans make
// identical decisions for every key, and the selected fraction tracks
// P — the core reproducibility contract.
func TestSelectionIsDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{{Site: SiteStoreRead, Kind: KindError, P: 0.25}}}
	a, b := mustNew(t, plan), mustNew(t, plan)
	const n = 20000
	hits := 0
	for k := uint64(0); k < n; k++ {
		ra := a.MatchingRules(SiteStoreRead, k, "lbl", 0)
		rb := b.MatchingRules(SiteStoreRead, k, "lbl", 0)
		if len(ra) != len(rb) {
			t.Fatalf("key %d: injectors disagree (%v vs %v)", k, ra, rb)
		}
		if len(ra) > 0 {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("P=0.25 selected %.4f of the keyspace; hashing is biased", got)
	}
}

// TestSelectionVariesWithSeedRuleSite: changing any hash input moves
// the selected set — no accidental aliasing between rules or sites.
func TestSelectionVariesWithSeedRuleSite(t *testing.T) {
	base := Plan{Seed: 1, Rules: []Rule{
		{Site: SiteStoreRead, Kind: KindError, P: 0.5},
		{Site: SiteStoreWrite, Kind: KindError, P: 0.5},
	}}
	other := base
	other.Seed = 2
	a, b := mustNew(t, base), mustNew(t, other)
	const n = 4096
	diffSeed, diffSite := 0, 0
	for k := uint64(0); k < n; k++ {
		ar := len(a.MatchingRules(SiteStoreRead, k, "l", 0)) > 0
		br := len(b.MatchingRules(SiteStoreRead, k, "l", 0)) > 0
		aw := len(a.MatchingRules(SiteStoreWrite, k, "l", 0)) > 0
		if ar != br {
			diffSeed++
		}
		if ar != aw {
			diffSite++
		}
	}
	if diffSeed == 0 {
		t.Error("seed change did not move the selected set")
	}
	if diffSite == 0 {
		t.Error("read and write rules select identical keys; site not in the hash")
	}
}

// TestBudgetFallThrough: once a rule's Count is spent the site heals
// into the NEXT matching rule — and MatchingRules names both, so the
// observed rule is always within the enumerated selection.
func TestBudgetFallThrough(t *testing.T) {
	plan := Plan{Seed: 7, Rules: []Rule{
		{Site: SiteStoreRead, Kind: KindDelay, P: 1, Count: 2, Delay: time.Microsecond},
		{Site: SiteStoreRead, Kind: KindError, P: 1, Count: 1},
	}}
	in := mustNew(t, plan)
	want := []struct {
		rule int
		ok   bool
	}{{0, true}, {0, true}, {1, true}, {0, false}, {0, false}}
	for i, w := range want {
		f, ok := in.eval(SiteStoreRead, 9, "l", 0)
		if ok != w.ok || (ok && f.Rule != w.rule) {
			t.Fatalf("call %d: got rule=%d ok=%v, want rule=%d ok=%v", i, f.Rule, ok, w.rule, w.ok)
		}
	}
	rs := in.MatchingRules(SiteStoreRead, 9, "l", 0)
	if len(rs) != 2 || rs[0] != 0 || rs[1] != 1 {
		t.Errorf("MatchingRules = %v, want [0 1] (both rules select at P=1)", rs)
	}
	rep := in.Report()
	if rep.Total != 3 {
		t.Errorf("Total = %d, want 3 (2 + 1 budget)", rep.Total)
	}
	// Every observed (rule, key) must be in the MatchingRules set.
	for _, s := range rep.Sites {
		found := false
		for _, ri := range rs {
			if s.Rule == ri {
				found = true
			}
		}
		if !found {
			t.Errorf("observed rule %d outside MatchingRules %v", s.Rule, rs)
		}
	}
}

// TestBudgetIsPerKey: Count budgets are per selected key, not global.
func TestBudgetIsPerKey(t *testing.T) {
	in := mustNew(t, Plan{Rules: []Rule{{Site: SitePeerDial, Kind: KindError, P: 1, Count: 1}}})
	for _, key := range []uint64{1, 2, 3} {
		if _, ok := in.eval(SitePeerDial, key, "l", -1); !ok {
			t.Fatalf("key %d: first call should fault", key)
		}
		if _, ok := in.eval(SitePeerDial, key, "l", -1); ok {
			t.Fatalf("key %d: budget 1 spent, second call should pass", key)
		}
	}
	if got := in.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
}

func TestFileAndLinkSelectors(t *testing.T) {
	in := mustNew(t, Plan{Rules: []Rule{
		{Site: SiteStoreRead, Kind: KindError, P: 1, Files: []int32{3}},
		{Site: SitePeerDial, Kind: KindError, P: 1, Links: []string{"->n2"}},
	}})
	if _, ok := in.eval(SiteStoreRead, 1, "l", 3); !ok {
		t.Error("file 3 should match the Files selector")
	}
	if _, ok := in.eval(SiteStoreRead, 1, "l", 4); ok {
		t.Error("file 4 must not match Files:[3]")
	}
	if err := in.DialFault("peer:n0->n2"); err == nil {
		t.Error("link peer:n0->n2 should match Links:[->n2]")
	}
	if err := in.DialFault("peer:n2->n0"); err != nil {
		t.Errorf("link peer:n2->n0 must not match Links:[->n2]: %v", err)
	}
}

// TestNilInjectorInjectsNothing: every entry point is nil-safe.
func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if _, ok := in.eval(SiteStoreRead, 1, "l", 0); ok {
		t.Error("nil injector faulted")
	}
	if err := in.DialFault("peer:n0->n1"); err != nil {
		t.Errorf("nil DialFault: %v", err)
	}
	if rs := in.MatchingRules(SiteStoreRead, 1, "l", 0); rs != nil {
		t.Errorf("nil MatchingRules = %v", rs)
	}
	if in.Total() != 0 || in.Report().Total != 0 {
		t.Error("nil injector reported activity")
	}
}

// TestStoreWrapper: read/write faults carry the ErrInjected marker and
// the partial-read contract (prefix real, tail zeroed, error mandatory).
func TestStoreWrapper(t *testing.T) {
	mem := newMemStore(64)
	b := blockdev.BlockID{File: 1, Block: 2}
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i + 1)
	}
	if err := mem.WriteBlock(b, seed); err != nil {
		t.Fatal(err)
	}

	in := mustNew(t, Plan{Rules: []Rule{{Site: SiteStoreRead, Kind: KindPartial, P: 1, Count: 1}}})
	st := in.WrapStore(mem, "store@n0")
	buf := make([]byte, 64)
	err := st.ReadBlock(b, buf)
	if err == nil || !strings.Contains(err.Error(), "faultinject") {
		t.Fatalf("partial read error = %v, want ErrInjected marker", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Error("partial read error does not wrap ErrInjected")
	}
	for i := 0; i < 32; i++ {
		if buf[i] != seed[i] {
			t.Fatalf("byte %d: prefix should be real data", i)
		}
	}
	for i := 32; i < 64; i++ {
		if buf[i] != 0 {
			t.Fatalf("byte %d: tail should be zeroed", i)
		}
	}
	// Budget spent: the site heals and the full block comes back.
	if err := st.ReadBlock(b, buf); err != nil {
		t.Fatalf("healed read: %v", err)
	}
	for i := range buf {
		if buf[i] != seed[i] {
			t.Fatalf("byte %d: healed read returned wrong data", i)
		}
	}
}

// TestStoreKeyIsPerNode: the same block on different nodes gets
// different keys, so each disk makes an independent selection.
func TestStoreKeyIsPerNode(t *testing.T) {
	b := blockdev.BlockID{File: 5, Block: 9}
	if StoreKey("store@n0", b) == StoreKey("store@n1", b) {
		t.Error("StoreKey ignores the node")
	}
	if StoreKey("store@n0", b) != StoreKey("store@n0", b) {
		t.Error("StoreKey is not stable")
	}
}

// TestReportDeterminism: same plan, same call sequence → same report
// and digest; the digest ignores hit counts but not sites.
func TestReportDeterminism(t *testing.T) {
	run := func() Report {
		in := mustNew(t, Plan{Seed: 11, Rules: []Rule{
			{Site: SiteStoreRead, Kind: KindError, P: 0.5},
		}})
		for k := uint64(0); k < 64; k++ {
			in.eval(SiteStoreRead, k, "lbl", 0)
		}
		return in.Report()
	}
	a, b := run(), run()
	if a.Digest() != b.Digest() {
		t.Errorf("same runs, different digests: %016x vs %016x", a.Digest(), b.Digest())
	}
	if len(a.Sites) == 0 {
		t.Fatal("P=0.5 over 64 keys observed nothing")
	}
	// Hit counts do not move the digest; dropping a site does.
	c := a
	c.Sites = append([]SiteHit(nil), a.Sites...)
	c.Sites[0].Hits += 5
	if c.Digest() != a.Digest() {
		t.Error("digest depends on hit counts")
	}
	c.Sites = c.Sites[1:]
	if c.Digest() == a.Digest() {
		t.Error("digest ignored a dropped site")
	}
}

// TestConcurrentEvalIsRaceFreeAndBudgeted: hammer one budgeted site
// from many goroutines; total injections must equal the budget.
func TestConcurrentEvalIsRaceFreeAndBudgeted(t *testing.T) {
	in := mustNew(t, Plan{Rules: []Rule{{Site: SiteConnSend, Kind: KindError, P: 1, Count: 100}}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.eval(SiteConnSend, 7, "link", -1)
			}
		}()
	}
	wg.Wait()
	if got := in.Total(); got != 100 {
		t.Errorf("Total = %d, want exactly the budget 100", got)
	}
}

// memStore is a minimal in-memory BlockStore for wrapper tests.
type memStore struct {
	mu   sync.Mutex
	size int
	m    map[blockdev.BlockID][]byte
}

func newMemStore(size int) *memStore {
	return &memStore{size: size, m: make(map[blockdev.BlockID][]byte)}
}

func (s *memStore) ReadBlock(b blockdev.BlockID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	copy(buf, s.m[b])
	return nil
}

func (s *memStore) WriteBlock(b blockdev.BlockID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[b] = append([]byte(nil), data...)
	return nil
}
