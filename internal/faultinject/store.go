package faultinject

import (
	"fmt"
	"time"

	"repro/internal/blockdev"
)

// BlockStore is the backing-store shape this package wraps. It is
// structurally identical to lapcache.BackingStore, declared here so
// the dependency points outward (lapcache need not know faults exist).
type BlockStore interface {
	ReadBlock(b blockdev.BlockID, buf []byte) error
	WriteBlock(b blockdev.BlockID, data []byte) error
}

// Store is a BlockStore with injection at store.read / store.write.
// Keys are (node, block ID) — a selected block is a bad sector on that
// node's disk that fails (or stalls) every access until the rule's
// budget heals it. The node is part of the key, not just the label:
// in a cluster the same block is read by its owner normally and by
// non-owners in degrade mode, and each node's disk must make its own
// deterministic selection (a shared key would hand the first node to
// arrive the budget, making the faulted-site set timing-dependent).
type Store struct {
	inner BlockStore
	in    *Injector
	node  string
}

// WrapStore wraps s with this injector's store rules, labeling faults
// with node (the owning node's stable name, e.g. "store@n1").
func (in *Injector) WrapStore(s BlockStore, node string) *Store {
	return &Store{inner: s, in: in, node: node}
}

// key places block b on this node's disk in the keyspace.
func (s *Store) key(b blockdev.BlockID) uint64 {
	return StoreKey(s.node, b)
}

// ReadBlock implements BlockStore.
func (s *Store) ReadBlock(b blockdev.BlockID, buf []byte) error {
	f, ok := s.in.eval(SiteStoreRead, s.key(b),
		fmt.Sprintf("%s f%d:%d", s.node, b.File, b.Block), int32(b.File))
	if !ok {
		return s.inner.ReadBlock(b, buf)
	}
	if d := f.stall(); d > 0 {
		time.Sleep(d)
		if f.Kind == KindDelay {
			return s.inner.ReadBlock(b, buf) // latency spike, then success
		}
	}
	if f.Kind == KindPartial {
		// The medium returned a prefix; the tail never arrived. The
		// prefix is real data (so a buggy caller that ignores the error
		// would be caught by the oracle), the error is mandatory.
		if err := s.inner.ReadBlock(b, buf); err != nil {
			return err
		}
		for i := len(buf) / 2; i < len(buf); i++ {
			buf[i] = 0
		}
		return fmt.Errorf("%w: short read %s f%d:%d (%d of %d bytes)",
			ErrInjected, s.node, b.File, b.Block, len(buf)/2, len(buf))
	}
	return fmt.Errorf("%w: read %s f%d:%d", ErrInjected, s.node, b.File, b.Block)
}

// WriteBlock implements BlockStore.
func (s *Store) WriteBlock(b blockdev.BlockID, data []byte) error {
	f, ok := s.in.eval(SiteStoreWrite, s.key(b),
		fmt.Sprintf("%s f%d:%d", s.node, b.File, b.Block), int32(b.File))
	if !ok {
		return s.inner.WriteBlock(b, data)
	}
	if d := f.stall(); d > 0 {
		time.Sleep(d)
		if f.Kind == KindDelay {
			return s.inner.WriteBlock(b, data)
		}
	}
	return fmt.Errorf("%w: write %s f%d:%d", ErrInjected, s.node, b.File, b.Block)
}
