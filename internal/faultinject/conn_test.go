package faultinject

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/wire"
)

// frame builds a header-shaped wire frame with a payload.
func frame(payload []byte) []byte {
	buf := make([]byte, wire.HeaderSize+len(payload))
	wire.PutHeader(buf, wire.Header{Op: wire.OpPing, PayloadLen: uint32(len(payload))})
	copy(buf[wire.HeaderSize:], payload)
	return buf
}

// pipeWith returns a faulted client side and the raw server side.
func pipeWith(t *testing.T, plan Plan) (net.Conn, net.Conn) {
	t.Helper()
	in, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return in.WrapConn(a, "peer:n0->n1"), b
}

// TestConnCorruptFlipsValidatedHeaderByte: a corrupt rule flips the
// version byte of a frame-shaped write — the receiver's ParseHeader is
// guaranteed to reject it (detectable, never silent).
func TestConnCorruptFlipsValidatedHeaderByte(t *testing.T) {
	c, srv := pipeWith(t, Plan{Rules: []Rule{
		{Site: SiteConnSend, Kind: KindCorrupt, P: 1, Count: 1},
	}})
	f := frame([]byte("hello"))
	got := make([]byte, len(f))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(srv, got)
		done <- err
	}()
	n, err := c.Write(f)
	if err != nil || n != len(f) {
		t.Fatalf("corrupt write: n=%d err=%v; corruption must look like success to the sender", n, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ParseHeader(got); err == nil {
		t.Error("receiver parsed a corrupted header; the flip missed a validated byte")
	}
	if string(got[wire.HeaderSize:]) != "hello" {
		t.Error("payload should arrive intact; only the header is corrupted")
	}
}

// TestConnCorruptLeavesPayloadChunksIntact: non-frame-shaped writes
// (mid-payload chunks) are delivered untouched even when the rule
// fires — corrupting them would be silent damage.
func TestConnCorruptLeavesPayloadChunksIntact(t *testing.T) {
	c, srv := pipeWith(t, Plan{Rules: []Rule{
		{Site: SiteConnSend, Kind: KindCorrupt, P: 1},
	}})
	chunk := []byte("raw payload bytes, no header")
	got := make([]byte, len(chunk))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(srv, got)
		done <- err
	}()
	if _, err := c.Write(chunk); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(got) != string(chunk) {
		t.Error("mid-payload chunk was altered")
	}
}

// TestConnPartialTearsMidHeader: a partial rule on a frame-shaped
// write delivers a strict prefix of the header and severs the
// connection — unambiguous truncation at the receiver.
func TestConnPartialTearsMidHeader(t *testing.T) {
	c, srv := pipeWith(t, Plan{Rules: []Rule{
		{Site: SiteConnSend, Kind: KindPartial, P: 1, Count: 1},
	}})
	f := frame([]byte("payload"))
	read := make(chan int, 1)
	go func() {
		buf := make([]byte, len(f))
		n, _ := io.ReadAtLeast(srv, buf, 1)
		// Drain to EOF so we see the total delivered byte count.
		for {
			m, err := srv.Read(buf[n:])
			n += m
			if err != nil {
				break
			}
		}
		read <- n
	}()
	n, err := c.Write(f)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write err = %v, want ErrInjected", err)
	}
	if n <= 0 || n >= wire.HeaderSize {
		t.Errorf("partial write delivered %d bytes, want a strict mid-header prefix", n)
	}
	if got := <-read; got != n {
		t.Errorf("receiver saw %d bytes, sender reported %d", got, n)
	}
}

// TestConnRecvDisconnect: a recv error rule severs the connection with
// the injection marker; subsequent use fails too (the conn is dead).
func TestConnRecvDisconnect(t *testing.T) {
	c, srv := pipeWith(t, Plan{Rules: []Rule{
		{Site: SiteConnRecv, Kind: KindError, P: 1, Count: 1},
	}})
	go srv.Write([]byte("x")) //nolint:errcheck // may fail after injected close
	buf := make([]byte, 1)
	_, err := c.Read(buf)
	if err == nil || !strings.Contains(err.Error(), "faultinject") {
		t.Fatalf("recv err = %v, want injection marker", err)
	}
}

// TestConnUnselectedLinkPassesThrough: a rule with a Links selector
// for another link never touches this one.
func TestConnUnselectedLinkPassesThrough(t *testing.T) {
	in, err := New(Plan{Rules: []Rule{
		{Site: SiteConnSend, Kind: KindError, P: 1, Links: []string{"peer:n2->"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := in.WrapConn(a, "peer:n0->n1")
	msg := []byte("clean link")
	got := make([]byte, len(msg))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(b, got)
		done <- err
	}()
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Error("unselected link altered data")
	}
}
