package faultinject

import (
	"fmt"
	"net"
	"time"

	"repro/internal/wire"
)

// Conn wraps a net.Conn with injection at conn.send / conn.recv. The
// key is the connection's stable link label, so a selected link is a
// bad cable: every connection carrying that label misbehaves the same
// way, run after run, until the rule's budget heals it.
type Conn struct {
	net.Conn
	in   *Injector
	link string
	key  uint64
}

// WrapConn wraps c with this injector's conn rules under the given
// stable link label (e.g. "peer:n0->n1", "accept@n2"). A nil injector
// returns c unwrapped.
func (in *Injector) WrapConn(c net.Conn, link string) net.Conn {
	if in == nil {
		return c
	}
	return &Conn{Conn: c, in: in, link: link, key: labelKey(link)}
}

// headerShaped reports whether p starts with what is unmistakably a
// binary frame header: the version and reserved bytes every receiver
// validates. Corruption and truncation key off this so an injected
// flip always lands where the protocol is guaranteed to detect it —
// block payloads carry no checksum, so corrupting them would be the
// silent data damage the chaos harness exists to rule out.
func headerShaped(p []byte) bool {
	return len(p) >= wire.HeaderSize && p[2] == wire.Version && p[3] == 0
}

// Write implements net.Conn with send-side faults: stalls (KindDelay/
// KindHang), mid-stream disconnects (KindError), frame truncation
// (KindPartial: a prefix is written, then the connection severs), and
// header corruption (KindCorrupt: the version byte of a frame-shaped
// write flips, guaranteeing the receiver rejects the frame).
func (c *Conn) Write(p []byte) (int, error) {
	f, ok := c.in.eval(SiteConnSend, c.key, c.link, -1)
	if !ok {
		return c.Conn.Write(p)
	}
	if d := f.stall(); d > 0 {
		time.Sleep(d)
		if f.Kind == KindDelay {
			return c.Conn.Write(p) // stalled write, then delivery
		}
	}
	switch f.Kind {
	case KindPartial:
		n := len(p) / 2
		if headerShaped(p) && n > wire.HeaderSize/2 {
			n = wire.HeaderSize / 2 // tear mid-header: unambiguous truncation
		}
		if n > 0 {
			if wn, err := c.Conn.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		c.Conn.Close()
		return n, fmt.Errorf("%w: truncated write on %s (%d of %d bytes)",
			ErrInjected, c.link, n, len(p))
	case KindCorrupt:
		if headerShaped(p) {
			cp := make([]byte, len(p))
			copy(cp, p)
			cp[2] ^= 0x80 // flip the version byte: ParseHeader must reject it
			n, err := c.Conn.Write(cp)
			if err != nil {
				return n, err
			}
			return len(p), nil
		}
		// Not a frame start (mid-payload chunk, JSON line): corrupting
		// here could pass undetected, so deliver intact instead.
		return c.Conn.Write(p)
	default: // KindError, or a KindHang whose stall elapsed
		c.Conn.Close()
		return 0, fmt.Errorf("%w: disconnect on %s", ErrInjected, c.link)
	}
}

// Read implements net.Conn with recv-side faults: stalls and
// mid-stream disconnects.
func (c *Conn) Read(p []byte) (int, error) {
	f, ok := c.in.eval(SiteConnRecv, c.key, c.link, -1)
	if !ok {
		return c.Conn.Read(p)
	}
	if d := f.stall(); d > 0 {
		time.Sleep(d)
		if f.Kind == KindDelay {
			return c.Conn.Read(p)
		}
	}
	c.Conn.Close()
	return 0, fmt.Errorf("%w: disconnect on %s", ErrInjected, c.link)
}
