// Package pafs simulates the PAFS file system of Cortes et al.: a
// parallel/distributed file system whose cooperative cache is globally
// managed and where each file is handled by a single server. The
// centralized per-file server sees the merged request stream of every
// process using the file, keeps the file's prefetching state, and can
// therefore enforce true *linear* aggressive prefetching: one
// outstanding prefetch per file across the whole machine (§4).
package pafs

import (
	"repro/internal/blockdev"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/fscommon"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config assembles a PAFS instance.
type Config struct {
	Machine machine.Config
	// CacheBlocksPerNode is the per-node pool size (the x-axis of the
	// paper's figures, converted from megabytes).
	CacheBlocksPerNode int
	// Algorithm selects the prefetching configuration.
	Algorithm core.AlgSpec
}

// FS is one simulated PAFS instance.
type FS struct {
	fscommon.Base
	alg     core.AlgSpec
	drivers map[blockdev.FileID]*core.Driver
}

// New builds a PAFS over the given machine for the given trace.
func New(e *sim.Engine, cfg Config, tr *workload.Trace) *FS {
	fs := &FS{
		Base: *fscommon.NewBase(e, cfg.Machine, cfg.CacheBlocksPerNode,
			cachesim.GlobalLRU{}, tr, cfg.Algorithm),
		alg:     cfg.Algorithm,
		drivers: make(map[blockdev.FileID]*core.Driver),
	}
	return fs
}

// Name identifies the file system.
func (fs *FS) Name() string { return "PAFS" }

// Start launches the write-back daemon.
func (fs *FS) Start() { fs.StartWriteback() }

// ServerFor returns the node running file f's server: files are hashed
// over the machine.
func (fs *FS) ServerFor(f blockdev.FileID) blockdev.NodeID {
	return blockdev.NodeID(uint32(f) * 2654435761 % uint32(fs.Cfg.Nodes))
}

// pafsEnv adapts the FS for a per-file prefetch driver. PAFS drivers
// see the whole cooperative cache: a block cached anywhere need not be
// prefetched again.
type pafsEnv struct {
	fs     *FS
	server blockdev.NodeID
}

func (e pafsEnv) Cached(b blockdev.BlockID) bool {
	return e.fs.Cch.Contains(b) || e.fs.DemandFetchInFlight(b)
}

func (e pafsEnv) Prefetch(b blockdev.BlockID, fallback bool, cancelled func() bool, done func()) bool {
	fs := e.fs
	if fs.Stopped() {
		// Draining after the trace: never calling done stalls the
		// chain, which is exactly what lets the run end.
		return true
	}
	fs.Coll.PrefetchIssued(fallback)
	fs.PrefetchBegin(b)
	fs.Disks.Read(b, fscommon.PrefetchPriority(fs.alg), fs.WrapPrefetchCancel(b, cancelled), func(eng *sim.Engine, at sim.Time) {
		fs.PrefetchEnd(b)
		fs.Coll.DiskRead(true)
		_, victims := fs.Cch.Insert(e.server, b, cachesim.InsertOptions{Prefetched: true})
		fs.FlushVictims(victims)
		done()
	})
	return true
}

// driverFor lazily creates the per-file driver; nil when NP.
func (fs *FS) driverFor(f blockdev.FileID) *core.Driver {
	if !fs.alg.Prefetches() {
		return nil
	}
	if d, ok := fs.drivers[f]; ok {
		return d
	}
	d := core.NewDriver(core.DriverConfig{
		Predictor:  fs.alg.NewPredictor(),
		Mode:       fs.alg.Mode,
		Degree:     fs.Degrees.For(f),
		File:       f,
		FileBlocks: fs.FileBlocks(f),
		Env:        pafsEnv{fs: fs, server: fs.ServerFor(f)},
		Observer:   fs.Ledger,
	})
	fs.drivers[f] = d
	return d
}

// Drivers exposes per-file driver statistics (for experiments).
func (fs *FS) Drivers() map[blockdev.FileID]*core.Driver { return fs.drivers }

// Read serves a user read: the client contacts the file's server, the
// server gathers every block — from the cooperative cache or from disk
// — and ships them to the client; then the server's prefetcher reacts
// to the observed request.
func (fs *FS) Read(client blockdev.NodeID, span blockdev.Span, done func(at sim.Time)) {
	server := fs.ServerFor(span.File)
	fs.Net.Send(client, server, netmodel.ControlMessageSize, func(e *sim.Engine, _ sim.Time) {
		fs.serveRead(e, client, server, span, done)
	})
}

func (fs *FS) serveRead(e *sim.Engine, client, server blockdev.NodeID, span blockdev.Span, done func(at sim.Time)) {
	blocks := span.Blocks()
	hits := 0
	for _, b := range blocks {
		if fs.Cch.Contains(b) {
			hits++
		}
	}
	satisfied := hits == len(blocks)
	fs.Coll.ReadBlocks(len(blocks), hits)

	remaining := len(blocks)
	var last sim.Time
	finishOne := func(_ *sim.Engine, at sim.Time) {
		if at > last {
			last = at
		}
		remaining--
		if remaining == 0 {
			done(last)
		}
	}
	for _, b := range blocks {
		blk := b
		if fs.Cch.Contains(blk) {
			holders := fs.Cch.Holders(blk)
			fs.Cch.Touch(holders[0], blk)
			fs.Net.Send(holders[0], client, fs.Cfg.BlockSize, finishOne)
			continue
		}
		fs.DemandFetch(blk, client, func(eng *sim.Engine, _ sim.Time) {
			// The fetched block may have been placed on any node by
			// the global policy; ship it from there to the client.
			src := client
			if hs := fs.Cch.Holders(blk); len(hs) > 0 {
				src = hs[0]
			}
			fs.Net.Send(src, client, fs.Cfg.BlockSize, finishOne)
		})
	}
	if d := fs.driverFor(span.File); d != nil {
		d.OnUserRequest(core.Request{Offset: span.Start, Size: span.Count}, core.Tick(e.Now()), satisfied)
	}
}

// Close notifies the file's server that the client is done with the
// file; the server stops the file's prefetch chain (a centralized
// decision PAFS can make exactly, §4). The next request on the file
// resumes prefetching with the learned pattern intact.
func (fs *FS) Close(client blockdev.NodeID, file blockdev.FileID, done func(at sim.Time)) {
	server := fs.ServerFor(file)
	fs.Net.Send(client, server, netmodel.ControlMessageSize, func(e *sim.Engine, at sim.Time) {
		if d, ok := fs.drivers[file]; ok {
			d.StopChain()
		}
		done(at)
	})
}

// Write absorbs a user write into the cooperative cache: blocks are
// overwritten (or created) dirty and flushed later by the write-back
// daemon or on eviction. Writes also feed the file's predictor: the
// paper's pattern model covers reads and writes alike (§2.1, §2.2).
func (fs *FS) Write(client blockdev.NodeID, span blockdev.Span, done func(at sim.Time)) {
	server := fs.ServerFor(span.File)
	fs.Net.Send(client, server, netmodel.ControlMessageSize, func(e *sim.Engine, _ sim.Time) {
		fs.serveWrite(e, client, server, span, done)
	})
}

func (fs *FS) serveWrite(e *sim.Engine, client, server blockdev.NodeID, span blockdev.Span, done func(at sim.Time)) {
	blocks := span.Blocks()
	hits := 0
	for _, b := range blocks {
		if fs.Cch.Contains(b) {
			hits++
		}
	}
	satisfied := hits == len(blocks)

	remaining := len(blocks)
	var last sim.Time
	finishOne := func(_ *sim.Engine, at sim.Time) {
		if at > last {
			last = at
		}
		remaining--
		if remaining == 0 {
			done(last)
		}
	}
	for _, b := range blocks {
		blk := b
		var target blockdev.NodeID
		if hs := fs.Cch.Holders(blk); len(hs) > 0 {
			target = hs[0]
			fs.Cch.Touch(target, blk)
			fs.Cch.MarkDirty(blk)
		} else {
			// Full-block overwrite: no read-modify-write needed.
			placed, victims := fs.Cch.Insert(client, blk, cachesim.InsertOptions{Dirty: true})
			fs.FlushVictims(victims)
			target = placed
		}
		fs.Net.Send(client, target, fs.Cfg.BlockSize, finishOne)
	}
	if d := fs.driverFor(span.File); d != nil {
		d.OnUserRequest(core.Request{Offset: span.Start, Size: span.Count}, core.Tick(e.Now()), satisfied)
	}
}
