package pafs

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// smallMachine is a PM-flavoured machine shrunk for unit tests.
func smallMachine() machine.Config {
	cfg := machine.PM()
	cfg.Nodes = 4
	cfg.Disks = 2
	return cfg
}

// oneFileTrace declares a single file of n blocks with no steps (the
// tests drive the FS directly).
func oneFileTrace(n int) *workload.Trace {
	return &workload.Trace{
		Name:       "test",
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{0: blockdev.BlockNo(n)},
		Procs:      []workload.Process{{Node: 0}},
	}
}

func newFS(alg core.AlgSpec, cacheBlocks int, fileBlocks int) (*sim.Engine, *FS) {
	e := sim.NewEngine(1)
	fs := New(e, Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: cacheBlocks,
		Algorithm:          alg,
	}, oneFileTrace(fileBlocks))
	fs.Collector().StartMeasurement()
	return e, fs
}

func span(f, start, count int) blockdev.Span {
	return blockdev.Span{File: blockdev.FileID(f), Start: blockdev.BlockNo(start), Count: int32(count)}
}

func TestReadMissGoesToDisk(t *testing.T) {
	e, fs := newFS(core.SpecNP, 64, 100)
	var at sim.Time
	fs.Read(0, span(0, 0, 1), func(tm sim.Time) { at = tm })
	e.Run()
	if fs.Collector().DiskDemandReads() != 1 {
		t.Fatalf("demand reads = %d, want 1", fs.Collector().DiskDemandReads())
	}
	// A miss must cost at least the disk service time.
	if at < sim.Time(0).Add(sim.Milliseconds(10.5)) {
		t.Errorf("miss completed at %v, faster than a disk seek", at)
	}
	if !fs.Cache().Contains(blockdev.BlockID{File: 0, Block: 0}) {
		t.Error("fetched block not cached")
	}
}

func TestReadHitAvoidsDisk(t *testing.T) {
	e, fs := newFS(core.SpecNP, 64, 100)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	reads := fs.Collector().DiskDemandReads()
	var hitAt, start sim.Time
	start = e.Now()
	fs.Read(1, span(0, 0, 1), func(tm sim.Time) { hitAt = tm })
	e.Run()
	if fs.Collector().DiskDemandReads() != reads {
		t.Error("hit went to disk")
	}
	lat := hitAt.Sub(start)
	if lat >= sim.Milliseconds(10) {
		t.Errorf("hit latency %v, should be well under a disk access", lat)
	}
	if lat <= 0 {
		t.Error("hit has no cost at all")
	}
}

func TestConcurrentMissesCoalesce(t *testing.T) {
	e, fs := newFS(core.SpecNP, 64, 100)
	done := 0
	fs.Read(0, span(0, 5, 1), func(sim.Time) { done++ })
	fs.Read(1, span(0, 5, 1), func(sim.Time) { done++ })
	e.Run()
	if done != 2 {
		t.Fatalf("completed %d reads, want 2", done)
	}
	if got := fs.Collector().DiskDemandReads(); got != 1 {
		t.Errorf("demand reads = %d, want 1 (coalesced)", got)
	}
}

func TestWriteDirtiesCacheWithoutDiskRead(t *testing.T) {
	e, fs := newFS(core.SpecNP, 64, 100)
	fs.Write(0, span(0, 0, 4), func(sim.Time) {})
	e.Run()
	if fs.Collector().DiskReads() != 0 {
		t.Error("full-block write triggered a disk read")
	}
	if len(fs.Cache().DirtyBlocks()) != 4 {
		t.Errorf("dirty blocks = %d, want 4", len(fs.Cache().DirtyBlocks()))
	}
}

func TestWritebackDaemonFlushesDirtyBlocks(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := smallMachine()
	cfg.WritebackPeriod = sim.Seconds(1)
	fs := New(e, Config{Machine: cfg, CacheBlocksPerNode: 64, Algorithm: core.SpecNP}, oneFileTrace(100))
	fs.Collector().StartMeasurement()
	fs.Start()
	fs.Write(0, span(0, 0, 2), func(sim.Time) {})
	// Run past one write-back period; the daemon reschedules forever,
	// so bound the event count instead of draining.
	e.RunUntil(func() bool { return e.Now() > sim.Time(sim.Seconds(1.5)) })
	if got := fs.Collector().DiskWrites(); got != 2 {
		t.Errorf("disk writes = %d, want 2 (periodic flush)", got)
	}
	if len(fs.Cache().DirtyBlocks()) != 0 {
		t.Error("blocks still dirty after flush")
	}
}

func TestRewriteAcrossPeriodsWritesTwice(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := smallMachine()
	cfg.WritebackPeriod = sim.Seconds(1)
	fs := New(e, Config{Machine: cfg, CacheBlocksPerNode: 64, Algorithm: core.SpecNP}, oneFileTrace(100))
	fs.Collector().StartMeasurement()
	fs.Start()
	fs.Write(0, span(0, 0, 1), func(sim.Time) {})
	e.At(sim.Time(sim.Seconds(1.2)), func(*sim.Engine) {
		fs.Write(0, span(0, 0, 1), func(sim.Time) {})
	})
	e.RunUntil(func() bool { return e.Now() > sim.Time(sim.Seconds(2.5)) })
	if got := fs.Collector().WritesPerBlock(); got != 2 {
		t.Errorf("writes per block = %v, want 2 (the Table 2 mechanism)", got)
	}
}

func TestLnAgrOBAPrefetchesSequentially(t *testing.T) {
	e, fs := newFS(core.SpecLnAgrOBA, 64, 20)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	// The chain must have walked to the end of the 20-block file.
	if got := fs.Collector().DiskPrefetchReads(); got != 19 {
		t.Errorf("prefetch reads = %d, want 19", got)
	}
	for b := 0; b < 20; b++ {
		if !fs.Cache().Contains(blockdev.BlockID{File: 0, Block: blockdev.BlockNo(b)}) {
			t.Errorf("block %d not cached after aggressive walk", b)
		}
	}
}

func TestLinearInvariantOneOutstandingPerFile(t *testing.T) {
	// With a single file and Ln_Agr, at no instant may two prefetch
	// operations be queued or in service across all disks.
	e, fs := newFS(core.SpecLnAgrOBA, 64, 50)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	violated := false
	var watch func(*sim.Engine)
	watch = func(e *sim.Engine) {
		inFlight := 0
		for _, drv := range fs.Drivers() {
			if drv.Outstanding() > 1 {
				violated = true
			}
			inFlight += drv.Outstanding()
		}
		if inFlight > 1 {
			violated = true
		}
		if e.Pending() > 0 {
			e.After(sim.Milliseconds(1), watch)
		}
	}
	e.After(0, watch)
	e.RunUntil(func() bool { return e.Now() > sim.Time(sim.Seconds(5)) })
	if violated {
		t.Error("linear invariant violated: >1 outstanding prefetch for one file")
	}
}

func TestPrefetchImprovesSequentialReadLatency(t *testing.T) {
	run := func(alg core.AlgSpec) sim.Duration {
		e, fs := newFS(alg, 256, 400)
		var issue sim.Time
		var total sim.Duration
		var reads int
		var next func(b int)
		next = func(b int) {
			if b >= 300 {
				return
			}
			issue = e.Now()
			fs.Read(0, span(0, b, 1), func(at sim.Time) {
				total += at.Sub(issue)
				reads++
				// Think a little, then read the next block.
				e.After(sim.Milliseconds(2), func(*sim.Engine) { next(b + 1) })
			})
		}
		next(0)
		e.Run()
		return total / sim.Duration(reads)
	}
	np := run(core.SpecNP)
	agr := run(core.SpecLnAgrOBA)
	if agr >= np {
		t.Errorf("Ln_Agr_OBA avg read %v not better than NP %v on sequential scan", agr, np)
	}
	if np < sim.Milliseconds(5) {
		t.Errorf("NP sequential scan %v suspiciously fast (every block should miss)", np)
	}
}

func TestMispredictRestartsFromNewPosition(t *testing.T) {
	e, fs := newFS(core.SpecLnAgrOBA, 32, 1000)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	// Let the chain prefetch a handful of blocks.
	e.RunUntil(func() bool { return fs.Collector().DiskPrefetchReads() >= 5 })
	// Jump far away: a misprediction.
	fs.Read(0, span(0, 500, 1), func(sim.Time) {})
	e.RunUntil(func() bool { return fs.Collector().DiskPrefetchReads() >= 12 })
	if !fs.Cache().Contains(blockdev.BlockID{File: 0, Block: 501}) {
		t.Error("chain did not restart at the new position")
	}
}

func TestServerForIsStable(t *testing.T) {
	_, fs := newFS(core.SpecNP, 16, 10)
	a := fs.ServerFor(3)
	if fs.ServerFor(3) != a {
		t.Error("server assignment unstable")
	}
	if int(a) < 0 || int(a) >= fs.Cfg.Nodes {
		t.Errorf("server %d out of range", a)
	}
}

func TestNameAndStart(t *testing.T) {
	e, fs := newFS(core.SpecNP, 16, 10)
	if fs.Name() != "PAFS" {
		t.Error("name wrong")
	}
	fs.Start()
	// The daemon reschedules forever; just step a few events.
	e.RunLimit(4)
}

func TestNPHasNoDrivers(t *testing.T) {
	e, fs := newFS(core.SpecNP, 16, 10)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	if len(fs.Drivers()) != 0 {
		t.Error("NP created prefetch drivers")
	}
	if fs.Collector().PrefetchIssuedCount() != 0 {
		t.Error("NP issued prefetches")
	}
}

func TestFallbackFractionAccounted(t *testing.T) {
	// IS_PPM on a single cold request: all prefetches are fallback.
	e, fs := newFS(core.SpecLnAgrISPPM1, 64, 10)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	if fs.Collector().PrefetchIssuedCount() == 0 {
		t.Fatal("no prefetches issued")
	}
	if got := fs.Collector().FallbackFraction(); got != 1.0 {
		t.Errorf("fallback fraction = %v, want 1.0 (cold file)", got)
	}
}
