package pafs

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/diskmodel"
	"repro/internal/sim"
)

func TestMultiBlockMissFetchesInParallel(t *testing.T) {
	// A 4-block miss stripes over the machine's disks (two in this
	// test rig), so the request completes in about two disk service
	// times, not four serialized ones.
	e, fs := newFS(core.SpecNP, 64, 100)
	start := e.Now()
	var end sim.Time
	fs.Read(0, span(0, 0, 4), func(at sim.Time) { end = at })
	e.Run()
	service := fs.Disks.ServiceTime(diskmodel.OpRead)
	lat := end.Sub(start)
	if lat >= 3*service {
		t.Errorf("4-block miss took %v; striping over 2 disks should need ~2 services (%v)", lat, service)
	}
	if lat < 2*service {
		t.Errorf("4-block miss took %v, impossibly fast for 2 disks", lat)
	}
	if fs.Collector().DiskDemandReads() != 4 {
		t.Errorf("demand reads = %d, want 4", fs.Collector().DiskDemandReads())
	}
}

func TestPartialHitFetchesOnlyMisses(t *testing.T) {
	e, fs := newFS(core.SpecNP, 64, 100)
	fs.Read(0, span(0, 0, 2), func(sim.Time) {})
	e.Run()
	before := fs.Collector().DiskDemandReads()
	// Blocks 0,1 cached; 2,3 not: the 4-block request fetches two.
	fs.Read(1, span(0, 0, 4), func(sim.Time) {})
	e.Run()
	if got := fs.Collector().DiskDemandReads() - before; got != 2 {
		t.Errorf("partial hit fetched %d blocks, want 2", got)
	}
}

func TestRemoteHitMovesDataOverNetwork(t *testing.T) {
	e, fs := newFS(core.SpecNP, 64, 100)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	remoteBefore := fs.Net.MessagesRemote()
	// Another node reads the same block: at least one remote transfer
	// (holder -> client) must cross the network.
	fs.Read(3, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	if fs.Net.MessagesRemote() <= remoteBefore {
		t.Error("remote hit produced no network traffic")
	}
}

func TestWriteThenReadHitsCache(t *testing.T) {
	e, fs := newFS(core.SpecNP, 64, 100)
	fs.Write(0, span(0, 10, 2), func(sim.Time) {})
	e.Run()
	reads := fs.Collector().DiskReads()
	var end sim.Time
	start := e.Now()
	fs.Read(0, span(0, 10, 2), func(at sim.Time) { end = at })
	e.Run()
	if fs.Collector().DiskReads() != reads {
		t.Error("read of freshly written blocks went to disk")
	}
	if end.Sub(start) > sim.Milliseconds(5) {
		t.Errorf("cached read took %v", end.Sub(start))
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// A cache small enough to evict the dirty blocks must write them
	// out exactly once each.
	e, fs := newFS(core.SpecNP, 4, 100) // 4 nodes x 4 = 16 blocks total
	fs.Write(0, span(0, 0, 8), func(sim.Time) {})
	e.Run()
	// Reading 16 fresh blocks evicts the 8 dirty ones.
	fs.Read(0, span(0, 20, 16), func(sim.Time) {})
	e.Run()
	if got := fs.Collector().DiskWrites(); got != 8 {
		t.Errorf("eviction writes = %d, want 8", got)
	}
}

func TestPrefetchedBlockServedToOtherClient(t *testing.T) {
	// The cooperative cache is shared: blocks prefetched because of
	// client 0's stream satisfy client 1's requests too (the paper's
	// small-cache synchronization anecdote relies on this).
	e, fs := newFS(core.SpecLnAgrOBA, 64, 40)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run() // chain walks the whole file
	demand := fs.Collector().DiskDemandReads()
	fs.Read(1, span(0, 20, 4), func(sim.Time) {})
	e.Run()
	if fs.Collector().DiskDemandReads() != demand {
		t.Error("client 1 missed on blocks client 0's chain prefetched")
	}
}

func TestBlockPPMRunsEndToEnd(t *testing.T) {
	// The related-work baseline must work inside the full system.
	alg := core.AlgSpec{Kind: core.AlgBlockPPM, Order: 1, Mode: core.ModeAggressive, MaxOutstanding: 1}
	// A cache too small for the file, so second-pass blocks are not
	// simply all resident (a resident working set leaves the chain
	// with nothing to fetch).
	e, fs := newFS(alg, 2, 20)
	// Two sequential passes: the second is predictable for block-PPM.
	var pass func(b, pass int)
	pass = func(b, p int) {
		if p >= 2 {
			return
		}
		next := b + 1
		nextPass := p
		if next >= 20 {
			next, nextPass = 0, p+1
		}
		fs.Read(0, span(0, b, 1), func(sim.Time) {
			e.After(sim.Milliseconds(20), func(*sim.Engine) { pass(next, nextPass) })
		})
	}
	pass(0, 0)
	// The learned graph wraps 19 -> 0, so with an evicting cache the
	// chain churns forever (the runner's close/stop machinery bounds
	// it in real runs); bound this direct drive by event count.
	e.RunLimit(500000)
	if fs.Collector().PrefetchIssuedCount() == 0 {
		t.Error("block-PPM never prefetched despite a repeated sequence")
	}
}

func TestHoldersAfterGlobalPlacement(t *testing.T) {
	// With node 0 full, a fetch for node 0 lands elsewhere but must
	// still be findable through the directory.
	e, fs := newFS(core.SpecNP, 2, 100) // tiny pools
	for i := 0; i < 12; i++ {
		fs.Read(0, span(0, i, 1), func(sim.Time) {})
		e.Run()
	}
	found := 0
	for i := 0; i < 12; i++ {
		if fs.Cache().Contains(blockdev.BlockID{File: 0, Block: blockdev.BlockNo(i)}) {
			found++
		}
	}
	if found != 8 { // total capacity 4 nodes x 2
		t.Errorf("cache holds %d blocks, want 8 (full capacity)", found)
	}
}
