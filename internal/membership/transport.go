package membership

import (
	"errors"
	"net"
	"time"
)

// Transport moves gossip datagrams. The production implementation is
// UDP on the node's advertise port (TCP carries blocks, UDP carries
// gossip — separate port spaces, same number, so one address names
// both); tests substitute an in-memory hub to script partitions
// deterministically.
type Transport interface {
	// WriteTo sends one datagram, best-effort: gossip tolerates loss
	// by design, so implementations may drop rather than block.
	WriteTo(p []byte, addr string) error
	// ReadFrom blocks for the next datagram, returning the payload
	// length and sender transport address. It returns an error only
	// when the transport is closed or broken.
	ReadFrom(p []byte) (n int, from string, err error)
	Close() error
	LocalAddr() string
}

// ErrTransportClosed reports a read on a closed transport.
var ErrTransportClosed = errors.New("membership: transport closed")

// udpTransport is the production transport: one UDP socket bound to
// the advertise address's port.
type udpTransport struct {
	pc *net.UDPConn
}

// ListenUDP binds a UDP gossip socket on addr (host:port; port 0
// picks one).
func ListenUDP(addr string) (Transport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	pc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	return &udpTransport{pc: pc}, nil
}

func (t *udpTransport) WriteTo(p []byte, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	// Gossip is loss-tolerant; a send must never wedge the probe loop.
	t.pc.SetWriteDeadline(time.Now().Add(time.Second))
	_, err = t.pc.WriteToUDP(p, ua)
	return err
}

func (t *udpTransport) ReadFrom(p []byte) (int, string, error) {
	n, from, err := t.pc.ReadFromUDP(p)
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return 0, "", ErrTransportClosed
		}
		return 0, "", err
	}
	return n, from.String(), nil
}

func (t *udpTransport) Close() error     { return t.pc.Close() }
func (t *udpTransport) LocalAddr() string { return t.pc.LocalAddr().String() }
