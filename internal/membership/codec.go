package membership

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Gossip message codec. One message per UDP datagram:
//
//	byte  0      codec version (1)
//	byte  1      message type (ping / ack / ping-req)
//	bytes 2..5   sequence number, little-endian
//	u16 len + bytes   sender advertise address
//	u16 len + bytes   indirect-probe target ("" except for ping-req)
//	u16          piggybacked member count
//	per member:  u16 len + addr, 1 byte state, u64 LE incarnation
//
// Every message carries the sender's full member table: in the small
// clusters this tier targets (single-digit nodes), full-state
// piggyback IS the anti-entropy sync — there is no separate push/pull
// round, and a single received datagram fully converges the receiver.
//
// Decode is fed by FuzzMembershipDecode: it must never panic and
// never allocate more than the datagram's own length implies.

// CodecVersion identifies the gossip wire layout.
const CodecVersion = 1

// MsgType discriminates gossip datagrams.
type MsgType uint8

const (
	// MsgPing is a direct liveness probe; the target answers MsgAck.
	MsgPing MsgType = 1
	// MsgAck answers a ping (or an indirect ping on the origin's
	// behalf), echoing the probe's sequence number.
	MsgAck MsgType = 2
	// MsgPingReq asks a third party to probe Target and relay the ack —
	// SWIM's indirect probe, which keeps one lossy link from convicting
	// a healthy node.
	MsgPingReq MsgType = 3
)

// Known reports whether t is a defined message type.
func (t MsgType) Known() bool { return t >= MsgPing && t <= MsgPingReq }

func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "ping"
	case MsgAck:
		return "ack"
	case MsgPingReq:
		return "ping-req"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// State is a member's liveness verdict.
type State uint8

const (
	// Alive members own ring arcs and serve traffic.
	Alive State = 0
	// Suspect members failed a probe round but keep their ring arcs:
	// suspicion is a grace period, not a verdict, so one dropped packet
	// cannot flap ownership.
	Suspect State = 1
	// Dead members are removed from the ring and kept as tombstones so
	// a stale Alive rumor cannot resurrect them without a fresh
	// incarnation.
	Dead State = 2
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Member is one row of the gossiped table.
type Member struct {
	Addr        string
	State       State
	Incarnation uint64
}

// Message is one decoded gossip datagram.
type Message struct {
	Type    MsgType
	Seq     uint32
	From    string
	Target  string // ping-req only
	Members []Member
}

// Decode limits. A datagram is one UDP packet; anything claiming more
// is corrupt, and the decoder refuses it before allocating.
const (
	maxAddrLen = 256
	maxMembers = 1024
	// MaxMessageSize bounds an encoded message; Encode refuses larger.
	MaxMessageSize = 64 << 10
)

var (
	errShort       = errors.New("membership: short message")
	errVersion     = errors.New("membership: unknown codec version")
	errType        = errors.New("membership: unknown message type")
	errAddrLen     = errors.New("membership: address length out of range")
	errMemberCount = errors.New("membership: member count out of range")
	errState       = errors.New("membership: unknown member state")
	errTrailing    = errors.New("membership: trailing bytes")
	errTooLarge    = errors.New("membership: message exceeds size limit")
)

// Encode serialises m. It refuses messages that would exceed
// MaxMessageSize or whose fields exceed the decode limits, so every
// Encode output round-trips through Decode.
func Encode(m *Message) ([]byte, error) {
	if !m.Type.Known() {
		return nil, errType
	}
	if len(m.From) == 0 || len(m.From) > maxAddrLen {
		return nil, errAddrLen
	}
	if len(m.Target) > maxAddrLen {
		return nil, errAddrLen
	}
	if len(m.Members) > maxMembers {
		return nil, errMemberCount
	}
	n := 6 + 2 + len(m.From) + 2 + len(m.Target) + 2
	for _, mm := range m.Members {
		if len(mm.Addr) == 0 || len(mm.Addr) > maxAddrLen {
			return nil, errAddrLen
		}
		if mm.State > Dead {
			return nil, errState
		}
		n += 2 + len(mm.Addr) + 1 + 8
	}
	if n > MaxMessageSize {
		return nil, errTooLarge
	}
	buf := make([]byte, 0, n)
	buf = append(buf, CodecVersion, byte(m.Type))
	buf = binary.LittleEndian.AppendUint32(buf, m.Seq)
	buf = appendString(buf, m.From)
	buf = appendString(buf, m.Target)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Members)))
	for _, mm := range m.Members {
		buf = appendString(buf, mm.Addr)
		buf = append(buf, byte(mm.State))
		buf = binary.LittleEndian.AppendUint64(buf, mm.Incarnation)
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// Decode parses one datagram. It validates structure strictly — a
// truncated, oversized, or version-skewed message errors rather than
// yielding a partial table — and copies what it needs, so the caller
// may reuse p.
func Decode(p []byte) (*Message, error) {
	if len(p) > MaxMessageSize {
		return nil, errTooLarge
	}
	if len(p) < 8 {
		return nil, errShort
	}
	if p[0] != CodecVersion {
		return nil, errVersion
	}
	m := &Message{Type: MsgType(p[1])}
	if !m.Type.Known() {
		return nil, errType
	}
	m.Seq = binary.LittleEndian.Uint32(p[2:6])
	rest := p[6:]
	var err error
	if m.From, rest, err = cutString(rest); err != nil {
		return nil, err
	}
	if len(m.From) == 0 {
		return nil, errAddrLen
	}
	if m.Target, rest, err = cutString(rest); err != nil {
		return nil, err
	}
	if len(rest) < 2 {
		return nil, errShort
	}
	count := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if count > maxMembers {
		return nil, errMemberCount
	}
	// Each member needs at least 11 bytes; refuse counts the datagram
	// cannot possibly hold before allocating the slice.
	if count*11 > len(rest) {
		return nil, errShort
	}
	m.Members = make([]Member, 0, count)
	for i := 0; i < count; i++ {
		var mm Member
		if mm.Addr, rest, err = cutString(rest); err != nil {
			return nil, err
		}
		if len(mm.Addr) == 0 {
			return nil, errAddrLen
		}
		if len(rest) < 9 {
			return nil, errShort
		}
		mm.State = State(rest[0])
		if mm.State > Dead {
			return nil, errState
		}
		mm.Incarnation = binary.LittleEndian.Uint64(rest[1:9])
		rest = rest[9:]
		m.Members = append(m.Members, mm)
	}
	if len(rest) != 0 {
		return nil, errTrailing
	}
	return m, nil
}

func cutString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, errShort
	}
	n := int(binary.LittleEndian.Uint16(p))
	if n > maxAddrLen {
		return "", nil, errAddrLen
	}
	p = p[2:]
	if len(p) < n {
		return "", nil, errShort
	}
	return string(p[:n]), p[n:], nil
}
