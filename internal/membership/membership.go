// Package membership is a SWIM-style gossip failure detector: direct
// UDP pings with indirect ping-req relays, suspicion grace periods,
// incarnation-numbered refutation, and full-state piggyback
// anti-entropy. It answers exactly one question for the cooperative
// cache tier — "who is in the fleet right now?" — and feeds every
// change to an OnUpdate callback, from which the cluster layer
// rebuilds its versioned consistent-hash ring.
//
// Design points, in the order they matter to the paper's claims:
//
//   - Suspicion before conviction. A failed probe marks a member
//     Suspect, not Dead, and a Suspect keeps its ring arcs. One lost
//     datagram therefore cannot move block ownership; only a member
//     that stays silent through the suspicion timeout (and through
//     indirect probes from other vantage points) is removed.
//
//   - Incarnation refutation. Every member numbers its own liveness.
//     A falsely suspected member that hears the rumor about itself
//     bumps its incarnation and re-announces Alive, which dominates
//     the stale Suspect at merge. A restarted member resurrects the
//     same way: it refutes its own tombstone with a higher
//     incarnation, so rejoin needs no operator action.
//
//   - Full-state piggyback. Every ping, ack, and ping-req carries the
//     sender's entire member table. At fleet sizes this tier targets
//     (the paper's clusters are single-digit nodes) that is cheaper
//     than bookkeeping a broadcast queue, and it makes every received
//     datagram a complete anti-entropy exchange.
package membership

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Config configures one member.
type Config struct {
	// Self is this member's advertise address (host:port) — its
	// identity in every table and the address peers gossip back.
	Self string
	// Seeds are addresses to contact at start (and whenever the table
	// is otherwise empty) to join an existing fleet. Joining an empty
	// seed list bootstraps a fleet of one.
	Seeds []string
	// ProbeInterval is the failure-detector period (0 = 100ms).
	ProbeInterval time.Duration
	// ProbeTimeout is how long one probe waits for its ack
	// (0 = ProbeInterval/2).
	ProbeTimeout time.Duration
	// IndirectProbes is how many peers relay an indirect probe after a
	// direct one times out (0 = 2).
	IndirectProbes int
	// SuspicionTimeout is how long a Suspect may stay silent before it
	// is declared Dead (0 = 8×ProbeInterval).
	SuspicionTimeout time.Duration
	// Transport carries datagrams (nil = UDP bound to Self's port).
	Transport Transport
	// OnUpdate fires after every table change with the new view. It is
	// called from gossip goroutines, never under the internal lock;
	// implementations may call back into View/Alive freely.
	OnUpdate func(View)
	// Intercept, when set, is consulted before every datagram send
	// with the destination address; a non-nil return drops the send.
	// The fault-injection harness uses it to script partitions.
	Intercept func(to string) error
	// Logf receives debug logging (nil = silent).
	Logf func(format string, args ...any)
}

// View is an immutable snapshot of the fleet: every non-dead member,
// sorted by address, plus a version that increments on every change.
type View struct {
	Version uint64
	Members []Member
}

// Addrs returns the view's member addresses (sorted).
func (v View) Addrs() []string {
	addrs := make([]string, len(v.Members))
	for i, m := range v.Members {
		addrs[i] = m.Addr
	}
	return addrs
}

type memberRow struct {
	Member
	suspectedAt time.Time
}

type relayEntry struct {
	origin string // who asked us to probe
	seq    uint32 // the sequence number they are waiting on
	at     time.Time
}

// Membership is one member's view of the fleet and the goroutines
// that keep it current.
type Membership struct {
	cfg Config
	tr  Transport

	mu      sync.Mutex
	rows    map[string]*memberRow
	version uint64
	seq     uint32
	acks    map[uint32]chan struct{}
	relays  map[uint32]relayEntry
	rrIdx   int
	seedIdx int
	started bool
	closed  bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// New validates cfg and prepares a member; Start launches it.
func New(cfg Config) (*Membership, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("membership: Config.Self required")
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 100 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval / 2
	}
	if cfg.IndirectProbes == 0 {
		cfg.IndirectProbes = 2
	}
	if cfg.SuspicionTimeout == 0 {
		cfg.SuspicionTimeout = 8 * cfg.ProbeInterval
	}
	m := &Membership{
		cfg:    cfg,
		rows:   make(map[string]*memberRow),
		acks:   make(map[uint32]chan struct{}),
		relays: make(map[uint32]relayEntry),
		quit:   make(chan struct{}),
	}
	m.rows[cfg.Self] = &memberRow{Member: Member{Addr: cfg.Self, State: Alive, Incarnation: 1}}
	m.version = 1
	return m, nil
}

// Start binds the transport and launches the receive and probe loops.
func (m *Membership) Start() error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		panic("membership: Start called twice")
	}
	m.started = true
	m.mu.Unlock()

	if m.cfg.Transport == nil {
		tr, err := ListenUDP(m.cfg.Self)
		if err != nil {
			return fmt.Errorf("membership: bind gossip socket: %w", err)
		}
		m.cfg.Transport = tr
	}
	m.tr = m.cfg.Transport

	m.wg.Add(2)
	go m.recvLoop()
	go m.probeLoop()

	// Announce ourselves to the seeds right away; the probe loop keeps
	// retrying while the table is empty.
	for _, s := range m.cfg.Seeds {
		if s != m.cfg.Self {
			m.sendTo(MsgPing, m.nextSeq(), s, "")
		}
	}
	return nil
}

// Close stops gossip. The member does not announce departure — peers
// detect the silence exactly as they would a crash, which is the only
// exit path a cache node actually exercises.
func (m *Membership) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.quit)
	if m.tr != nil {
		m.tr.Close()
	}
	m.wg.Wait()
	return nil
}

// View returns the current fleet snapshot.
func (m *Membership) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

// Alive returns the addresses of every non-dead member, sorted.
func (m *Membership) Alive() []string { return m.View().Addrs() }

// Incarnation returns this member's own incarnation number.
func (m *Membership) Incarnation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rows[m.cfg.Self].Incarnation
}

func (m *Membership) viewLocked() View {
	v := View{Version: m.version}
	for _, r := range m.rows {
		if r.State != Dead {
			v.Members = append(v.Members, r.Member)
		}
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].Addr < v.Members[j].Addr })
	return v
}

func (m *Membership) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf("membership %s: "+format, append([]any{m.cfg.Self}, args...)...)
	}
}

// withTable runs fn under the lock and fires OnUpdate afterwards if
// fn changed the table version. OnUpdate always runs outside the
// lock so it may re-enter View/Alive.
func (m *Membership) withTable(fn func()) {
	m.mu.Lock()
	before := m.version
	fn()
	changed := m.version != before
	var v View
	if changed {
		v = m.viewLocked()
	}
	cb := m.cfg.OnUpdate
	m.mu.Unlock()
	if changed && cb != nil {
		cb(v)
	}
}

func (m *Membership) nextSeq() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	return m.seq
}

// snapshotMembers copies the full table (tombstones included) for
// piggybacking.
func (m *Membership) snapshotMembers() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.rows))
	for _, r := range m.rows {
		out = append(out, r.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// sendTo encodes and sends one message carrying the full table.
func (m *Membership) sendTo(t MsgType, seq uint32, to, target string) {
	msg := &Message{Type: t, Seq: seq, From: m.cfg.Self, Target: target, Members: m.snapshotMembers()}
	buf, err := Encode(msg)
	if err != nil {
		m.logf("encode %s: %v", t, err)
		return
	}
	if ic := m.cfg.Intercept; ic != nil {
		if err := ic(to); err != nil {
			return // injected drop
		}
	}
	if err := m.tr.WriteTo(buf, to); err != nil {
		m.logf("send %s to %s: %v", t, to, err)
	}
}

// ---- receive path ----

func (m *Membership) recvLoop() {
	defer m.wg.Done()
	buf := make([]byte, MaxMessageSize)
	for {
		n, _, err := m.tr.ReadFrom(buf)
		if err != nil {
			select {
			case <-m.quit:
				return
			default:
			}
			if err == ErrTransportClosed {
				return
			}
			m.logf("recv: %v", err)
			continue
		}
		msg, err := Decode(buf[:n])
		if err != nil {
			m.logf("decode: %v", err)
			continue
		}
		m.handle(msg)
	}
}

func (m *Membership) handle(msg *Message) {
	// Merge first: every datagram is an anti-entropy exchange, and a
	// ping that carries a rumor about US must be refuted in the very
	// ack we are about to send.
	m.merge(msg)

	switch msg.Type {
	case MsgPing:
		m.sendTo(MsgAck, msg.Seq, msg.From, "")
	case MsgPingReq:
		if msg.Target == "" || msg.Target == m.cfg.Self {
			// Probing us by relay: answer directly.
			m.sendTo(MsgAck, msg.Seq, msg.From, "")
			return
		}
		relaySeq := m.nextSeq()
		m.mu.Lock()
		m.relays[relaySeq] = relayEntry{origin: msg.From, seq: msg.Seq, at: time.Now()}
		m.mu.Unlock()
		m.sendTo(MsgPing, relaySeq, msg.Target, "")
	case MsgAck:
		m.mu.Lock()
		if ch, ok := m.acks[msg.Seq]; ok {
			delete(m.acks, msg.Seq)
			m.mu.Unlock()
			close(ch)
			return
		}
		r, ok := m.relays[msg.Seq]
		if ok {
			delete(m.relays, msg.Seq)
		}
		m.mu.Unlock()
		if ok {
			// Indirect probe succeeded: relay the ack to the origin.
			m.sendTo(MsgAck, r.seq, r.origin, "")
		}
	}
}

// merge folds a received table into ours. Precedence per member:
// higher incarnation wins outright; at equal incarnation the stronger
// claim wins (Dead > Suspect > Alive), which is what makes a
// tombstone sticky until the member itself refutes it.
func (m *Membership) merge(msg *Message) {
	m.withTable(func() {
		now := time.Now()
		for _, rm := range msg.Members {
			if rm.Addr == m.cfg.Self {
				m.mergeSelfLocked(rm)
				continue
			}
			cur, ok := m.rows[rm.Addr]
			if !ok {
				row := &memberRow{Member: rm}
				if rm.State == Suspect {
					row.suspectedAt = now
				}
				m.rows[rm.Addr] = row
				m.version++
				m.logf("learned %s %s inc=%d", rm.Addr, rm.State, rm.Incarnation)
				continue
			}
			if rm.Incarnation > cur.Incarnation ||
				(rm.Incarnation == cur.Incarnation && rm.State > cur.State) {
				if rm.State == Suspect && cur.State != Suspect {
					cur.suspectedAt = now
				}
				cur.Member = rm
				m.version++
				m.logf("merged %s %s inc=%d", rm.Addr, rm.State, rm.Incarnation)
			}
		}
		// The sender spoke: direct evidence it is alive. Clear a local
		// suspicion without waiting for the gossip round-trip. (The
		// incarnation is unchanged, so a concurrent Suspect rumor can
		// still win the merge until the member's own refutation lands;
		// this is a latency optimisation, not the correctness path.)
		if cur, ok := m.rows[msg.From]; ok && cur.State == Suspect {
			cur.State = Alive
			m.version++
		}
	})
}

// mergeSelfLocked handles rumors about this member itself: any claim
// that we are not Alive is refuted by bumping our incarnation past
// the rumor's, which makes our next announcement dominate everywhere.
func (m *Membership) mergeSelfLocked(rm Member) {
	self := m.rows[m.cfg.Self]
	if rm.State != Alive && rm.Incarnation >= self.Incarnation {
		self.Incarnation = rm.Incarnation + 1
		self.State = Alive
		m.version++
		m.logf("refuting %s rumor: incarnation now %d", rm.State, self.Incarnation)
	} else if rm.State == Alive && rm.Incarnation > self.Incarnation {
		self.Incarnation = rm.Incarnation
		m.version++
	}
}

// ---- probe path ----

func (m *Membership) probeLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-t.C:
		}
		m.expireSuspects()
		m.pruneRelays()

		direct, suspect := m.pickTargets()
		if direct == "" {
			// Nobody to probe: keep knocking on the seeds so a fleet
			// that exists before we do eventually hears us.
			if s := m.pickSeed(); s != "" {
				m.sendTo(MsgPing, m.nextSeq(), s, "")
			}
			continue
		}
		m.wg.Add(1)
		go m.probe(direct)
		if suspect != "" && suspect != direct {
			// Probe the longest-suspected member every round too: the
			// ping piggybacks the Suspect rumor, so a live member sees
			// it and refutes well inside the suspicion timeout.
			m.wg.Add(1)
			go m.probe(suspect)
		}
	}
}

// pickTargets returns the round-robin probe target and the
// longest-suspected member (either may be "").
func (m *Membership) pickTargets() (direct, suspect string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var candidates []string
	var oldest time.Time
	for addr, r := range m.rows {
		if addr == m.cfg.Self || r.State == Dead {
			continue
		}
		candidates = append(candidates, addr)
		if r.State == Suspect && (suspect == "" || r.suspectedAt.Before(oldest)) {
			suspect, oldest = addr, r.suspectedAt
		}
	}
	if len(candidates) == 0 {
		return "", ""
	}
	sort.Strings(candidates)
	m.rrIdx = (m.rrIdx + 1) % len(candidates)
	return candidates[m.rrIdx], suspect
}

func (m *Membership) pickSeed() string {
	var seeds []string
	for _, s := range m.cfg.Seeds {
		if s != m.cfg.Self {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) == 0 {
		return ""
	}
	m.mu.Lock()
	m.seedIdx = (m.seedIdx + 1) % len(seeds)
	i := m.seedIdx
	m.mu.Unlock()
	return seeds[i]
}

// probe runs one SWIM round against addr: direct ping, then indirect
// ping-reqs through other members, then suspicion.
func (m *Membership) probe(addr string) {
	defer m.wg.Done()
	seq := m.nextSeq()
	ch := make(chan struct{})
	m.mu.Lock()
	m.acks[seq] = ch
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.acks, seq)
		m.mu.Unlock()
	}()

	m.sendTo(MsgPing, seq, addr, "")
	if m.waitAck(ch) {
		m.confirmAlive(addr)
		return
	}

	// Indirect round: ask up to IndirectProbes other members to probe
	// addr on our behalf; their acks relay back carrying our seq.
	relays := m.relayCandidates(addr)
	for _, r := range relays {
		m.sendTo(MsgPingReq, seq, r, addr)
	}
	if len(relays) > 0 && m.waitAck(ch) {
		m.confirmAlive(addr)
		return
	}
	m.suspectMember(addr)
}

func (m *Membership) waitAck(ch chan struct{}) bool {
	t := time.NewTimer(m.cfg.ProbeTimeout)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	case <-m.quit:
		return true // shutting down: no verdicts
	}
}

func (m *Membership) relayCandidates(exclude string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for addr, r := range m.rows {
		if addr == m.cfg.Self || addr == exclude || r.State != Alive {
			continue
		}
		out = append(out, addr)
	}
	sort.Strings(out)
	if len(out) > m.cfg.IndirectProbes {
		out = out[:m.cfg.IndirectProbes]
	}
	return out
}

func (m *Membership) confirmAlive(addr string) {
	m.withTable(func() {
		if r, ok := m.rows[addr]; ok && r.State == Suspect {
			r.State = Alive
			m.version++
		}
	})
}

func (m *Membership) suspectMember(addr string) {
	m.withTable(func() {
		r, ok := m.rows[addr]
		if !ok || r.State != Alive {
			return
		}
		r.State = Suspect
		r.suspectedAt = time.Now()
		m.version++
		m.logf("suspect %s inc=%d", addr, r.Incarnation)
	})
}

// expireSuspects convicts members that stayed silent through the
// whole suspicion window.
func (m *Membership) expireSuspects() {
	m.withTable(func() {
		now := time.Now()
		for addr, r := range m.rows {
			if r.State == Suspect && now.Sub(r.suspectedAt) > m.cfg.SuspicionTimeout {
				r.State = Dead
				m.version++
				m.logf("declared %s dead inc=%d", addr, r.Incarnation)
			}
		}
	})
}

func (m *Membership) pruneRelays() {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	for seq, r := range m.relays {
		if now.Sub(r.at) > 2*time.Second {
			delete(m.relays, seq)
		}
	}
}
