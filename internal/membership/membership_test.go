package membership

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// memHub is an in-memory datagram fabric: deterministic delivery,
// scriptable partitions, no real sockets. Each transport owns a
// buffered inbox; sends are non-blocking (a full inbox drops, which
// is exactly UDP's contract).
type memHub struct {
	mu      sync.Mutex
	inboxes map[string]chan memPacket
	cut     map[[2]string]bool // directed drop rules
}

type memPacket struct {
	from string
	data []byte
}

func newMemHub() *memHub {
	return &memHub{inboxes: make(map[string]chan memPacket), cut: make(map[[2]string]bool)}
}

// Cut drops every datagram from a to b (one direction).
func (h *memHub) Cut(a, b string) {
	h.mu.Lock()
	h.cut[[2]string{a, b}] = true
	h.mu.Unlock()
}

// Heal removes every drop rule.
func (h *memHub) Heal() {
	h.mu.Lock()
	h.cut = make(map[[2]string]bool)
	h.mu.Unlock()
}

func (h *memHub) transport(addr string) *memTransport {
	h.mu.Lock()
	defer h.mu.Unlock()
	inbox := make(chan memPacket, 256)
	h.inboxes[addr] = inbox
	return &memTransport{hub: h, addr: addr, inbox: inbox, closed: make(chan struct{})}
}

type memTransport struct {
	hub    *memHub
	addr   string
	inbox  chan memPacket
	closed chan struct{}
	once   sync.Once
}

func (t *memTransport) WriteTo(p []byte, addr string) error {
	t.hub.mu.Lock()
	dropped := t.hub.cut[[2]string{t.addr, addr}]
	inbox := t.hub.inboxes[addr]
	t.hub.mu.Unlock()
	if dropped || inbox == nil {
		return nil // lost datagram: gossip's problem to tolerate
	}
	data := make([]byte, len(p))
	copy(data, p)
	select {
	case inbox <- memPacket{from: t.addr, data: data}:
	default:
	}
	return nil
}

func (t *memTransport) ReadFrom(p []byte) (int, string, error) {
	select {
	case pkt := <-t.inbox:
		n := copy(p, pkt.data)
		return n, pkt.from, nil
	case <-t.closed:
		return 0, "", ErrTransportClosed
	}
}

func (t *memTransport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		t.hub.mu.Lock()
		if t.hub.inboxes[t.addr] == t.inbox {
			delete(t.hub.inboxes, t.addr)
		}
		t.hub.mu.Unlock()
	})
	return nil
}

func (t *memTransport) LocalAddr() string { return t.addr }

func testConfig(hub *memHub, addr string, seeds []string) Config {
	return Config{
		Self:          addr,
		Seeds:         seeds,
		ProbeInterval: 10 * time.Millisecond,
		Transport:     hub.transport(addr),
	}
}

func startMember(t *testing.T, hub *memHub, addr string, seeds []string) *Membership {
	t.Helper()
	m, err := New(testConfig(hub, addr, seeds))
	if err != nil {
		t.Fatalf("New(%s): %v", addr, err)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("Start(%s): %v", addr, err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func sees(m *Membership, want ...string) bool {
	got := m.Alive()
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestJoinConverge: three members seeded off the first converge to
// one three-row table on every node.
func TestJoinConverge(t *testing.T) {
	hub := newMemHub()
	a := startMember(t, hub, "a", nil)
	b := startMember(t, hub, "b", []string{"a"})
	c := startMember(t, hub, "c", []string{"a"})
	for _, m := range []*Membership{a, b, c} {
		m := m
		waitFor(t, "converged view on "+m.cfg.Self, 3*time.Second, func() bool {
			return sees(m, "a", "b", "c")
		})
	}
}

// TestFailureDetection: a member that goes silent is suspected, then
// convicted, and drops out of every survivor's view.
func TestFailureDetection(t *testing.T) {
	hub := newMemHub()
	a := startMember(t, hub, "a", nil)
	b := startMember(t, hub, "b", []string{"a"})
	c := startMember(t, hub, "c", []string{"a"})
	waitFor(t, "initial convergence", 3*time.Second, func() bool {
		return sees(a, "a", "b", "c") && sees(b, "a", "b", "c") && sees(c, "a", "b", "c")
	})
	b.Close()
	waitFor(t, "b convicted", 5*time.Second, func() bool {
		return sees(a, "a", "c") && sees(c, "a", "c")
	})
}

// TestIndirectProbeSavesPartitionedLink: a cut that only separates a
// and b (c talks to both) must not convict anyone — indirect probes
// through c answer for the unreachable member, and refutation clears
// any transient suspicion.
func TestIndirectProbeSavesPartitionedLink(t *testing.T) {
	hub := newMemHub()
	a := startMember(t, hub, "a", nil)
	b := startMember(t, hub, "b", []string{"a"})
	c := startMember(t, hub, "c", []string{"a"})
	waitFor(t, "initial convergence", 3*time.Second, func() bool {
		return sees(a, "a", "b", "c") && sees(b, "a", "b", "c") && sees(c, "a", "b", "c")
	})
	hub.Cut("a", "b")
	hub.Cut("b", "a")
	// Hold the one-link partition across many suspicion windows.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, m := range []*Membership{a, b, c} {
			if len(m.Alive()) != 3 {
				t.Fatalf("%s view shrank to %v during a single-link cut", m.cfg.Self, m.Alive())
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRejoinResurrection: a convicted member that restarts refutes
// its own tombstone with a higher incarnation and rejoins.
func TestRejoinResurrection(t *testing.T) {
	hub := newMemHub()
	a := startMember(t, hub, "a", nil)
	b := startMember(t, hub, "b", []string{"a"})
	waitFor(t, "initial convergence", 3*time.Second, func() bool {
		return sees(a, "a", "b") && sees(b, "a", "b")
	})
	b.Close()
	waitFor(t, "b convicted", 5*time.Second, func() bool { return sees(a, "a") })

	b2 := startMember(t, hub, "b", []string{"a"})
	waitFor(t, "b resurrected", 5*time.Second, func() bool {
		return sees(a, "a", "b") && sees(b2, "a", "b")
	})
	if inc := b2.Incarnation(); inc < 2 {
		t.Errorf("restarted member incarnation = %d, want ≥ 2 (must out-number its tombstone)", inc)
	}
}

// TestOnUpdateFires: every membership change surfaces through the
// callback with a monotonically increasing version.
func TestOnUpdateFires(t *testing.T) {
	hub := newMemHub()
	var mu sync.Mutex
	var versions []uint64
	cfg := testConfig(hub, "a", nil)
	cfg.OnUpdate = func(v View) {
		mu.Lock()
		versions = append(versions, v.Version)
		mu.Unlock()
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	startMember(t, hub, "b", []string{"a"})
	waitFor(t, "join callback", 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(versions) > 0
	})
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(versions); i++ {
		if versions[i] <= versions[i-1] {
			t.Errorf("OnUpdate versions not increasing: %v", versions)
		}
	}
}

// TestInterceptDropsSends: the fault hook sees every destination and
// a non-nil return suppresses the datagram.
func TestInterceptDropsSends(t *testing.T) {
	hub := newMemHub()
	var mu sync.Mutex
	dropped := 0
	cfg := testConfig(hub, "a", []string{"b"})
	cfg.Intercept = func(to string) error {
		mu.Lock()
		dropped++
		mu.Unlock()
		return errors.New("cut")
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b := startMember(t, hub, "b", nil)
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	d := dropped
	mu.Unlock()
	if d == 0 {
		t.Error("intercept never consulted")
	}
	if len(b.Alive()) != 1 {
		t.Errorf("b learned of a despite every send dropped: %v", b.Alive())
	}
}

// TestUDPTransport exercises the production socket path end to end:
// two members on real loopback UDP ports converge.
func TestUDPTransport(t *testing.T) {
	trA, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trB, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mkcfg := func(tr Transport, seeds []string) Config {
		return Config{Self: tr.LocalAddr(), Seeds: seeds, ProbeInterval: 10 * time.Millisecond, Transport: tr}
	}
	a, err := New(mkcfg(trA, nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(mkcfg(trB, []string{trA.LocalAddr()}))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	waitFor(t, "UDP convergence", 5*time.Second, func() bool {
		return len(a.Alive()) == 2 && len(b.Alive()) == 2
	})
}

// TestCodecRoundTrip pins the wire layout through every message type
// and state.
func TestCodecRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: MsgPing, Seq: 1, From: "a"},
		{Type: MsgAck, Seq: 0xffffffff, From: "host:65535"},
		{Type: MsgPingReq, Seq: 7, From: "a", Target: "c", Members: []Member{
			{Addr: "a", State: Alive, Incarnation: 1},
			{Addr: "b", State: Suspect, Incarnation: 3},
			{Addr: "c", State: Dead, Incarnation: 1<<63 + 9},
		}},
	}
	for _, want := range msgs {
		buf, err := Encode(want)
		if err != nil {
			t.Fatalf("Encode(%v): %v", want, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", want, err)
		}
		if want.Members == nil {
			want.Members = []Member{}
		}
		if got.Members == nil {
			got.Members = []Member{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

// TestDecodeRejects pins the decoder's refusals: truncation, bad
// version, bad type, bogus lengths, trailing garbage.
func TestDecodeRejects(t *testing.T) {
	good, err := Encode(&Message{Type: MsgPing, Seq: 1, From: "a", Members: []Member{{Addr: "b", State: Alive, Incarnation: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short":         good[:5],
		"bad version":   append([]byte{99}, good[1:]...),
		"bad type":      {1, 9, 0, 0, 0, 0, 1, 0, 'a', 0, 0, 0, 0},
		"trailing":      append(append([]byte{}, good...), 0),
		"truncated row": good[:len(good)-3],
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("Decode(%s) accepted garbage", name)
		}
	}
}

// FuzzMembershipDecode: the codec must never panic on arbitrary
// datagrams, and anything it accepts must re-encode byte-identically.
func FuzzMembershipDecode(f *testing.F) {
	seedMsgs := []*Message{
		{Type: MsgPing, Seq: 42, From: "127.0.0.1:9000"},
		{Type: MsgAck, Seq: 7, From: "a", Members: []Member{{Addr: "b", State: Suspect, Incarnation: 2}}},
		{Type: MsgPingReq, Seq: 9, From: "a", Target: "b", Members: []Member{
			{Addr: "a", State: Alive, Incarnation: 1},
			{Addr: "b", State: Dead, Incarnation: 5},
		}},
	}
	for _, m := range seedMsgs {
		buf, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte(fmt.Sprintf("%c%c garbage", 1, 2)))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		buf, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v (%+v)", err, m)
		}
		if !reflect.DeepEqual(buf, data) {
			t.Fatalf("re-encode differs:\n in: %x\nout: %x", data, buf)
		}
	})
}
