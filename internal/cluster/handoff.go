package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// handoff is the bounded-rate rebalancer: after every ring move it
// scans the local engine's cached blocks and pushes the ones whose
// file this node no longer owns (and does not hold as the R=2
// successor) to the new owner, as replica installs — store + cache on
// the receiver, no driver feed, so re-homing data never perturbs the
// owner's prefetch chain. A token bucket meters the pushes to the
// configured bytes/second so rebalancing after a join or a death
// never starves the foreground traffic sharing the same links.
type handoff struct {
	n   *Node
	bps int64 // <0 = unlimited

	wakeCh   chan struct{}
	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Token bucket: tokens is the spendable byte allowance, refilled
	// against real time up to burst. All under mu.
	mu       sync.Mutex
	tokens   float64
	lastFill time.Time

	blocksMoved atomic.Uint64
	bytesMoved  atomic.Uint64
	passes      atomic.Uint64
}

// HandoffStats is a frozen view of the rebalancer's counters.
type HandoffStats struct {
	// BlocksMoved and BytesMoved count blocks pushed to their new
	// owner across all passes; Passes counts scan sweeps.
	BlocksMoved uint64 `json:"blocks_moved"`
	BytesMoved  uint64 `json:"bytes_moved"`
	Passes      uint64 `json:"passes"`
}

func newHandoff(n *Node, bps int64) *handoff {
	h := &handoff{
		n:      n,
		bps:    bps,
		wakeCh: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	if bps > 0 {
		// Start with one burst's worth so the first block after a quiet
		// period never waits; burst is capped at 1/8s of budget.
		h.tokens = float64(bps) / 8
	}
	return h
}

func (h *handoff) start() {
	h.wg.Add(1)
	go h.loop()
}

func (h *handoff) stop() {
	h.stopOnce.Do(func() { close(h.quit) })
	h.wg.Wait()
}

// wake nudges the loop after a ring move; a pending nudge coalesces.
func (h *handoff) wake() {
	select {
	case h.wakeCh <- struct{}{}:
	default:
	}
}

func (h *handoff) loop() {
	defer h.wg.Done()
	for {
		select {
		case <-h.quit:
			return
		case <-h.wakeCh:
			h.runOnce()
		}
	}
}

func (h *handoff) stats() HandoffStats {
	return HandoffStats{
		BlocksMoved: h.blocksMoved.Load(),
		BytesMoved:  h.bytesMoved.Load(),
		Passes:      h.passes.Load(),
	}
}

// spend blocks until the bucket can cover nbytes, metering the pass
// to the configured rate. It returns false if the node is shutting
// down. Unlimited budgets spend nothing.
func (h *handoff) spend(nbytes int) bool {
	if h.bps <= 0 {
		return true
	}
	burst := float64(h.bps) / 8
	if need := float64(nbytes); need > burst {
		burst = need
	}
	for {
		h.mu.Lock()
		now := time.Now()
		if h.lastFill.IsZero() {
			h.lastFill = now
		}
		h.tokens += now.Sub(h.lastFill).Seconds() * float64(h.bps)
		if h.tokens > burst {
			h.tokens = burst
		}
		h.lastFill = now
		if h.tokens >= float64(nbytes) {
			h.tokens -= float64(nbytes)
			h.mu.Unlock()
			return true
		}
		shortfall := float64(nbytes) - h.tokens
		h.mu.Unlock()
		wait := time.Duration(shortfall / float64(h.bps) * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case <-h.quit:
			return false
		case <-time.After(wait):
		}
	}
}

// runOnce sweeps the local cache once and pushes every block this
// node should no longer hold to its current owner. Blocks whose push
// fails (owner down, mid-move) stay local — the next ring move or
// pass retries; data is never dropped on a failed transfer.
func (h *handoff) runOnce() int {
	n := h.n
	l := n.localEngine()
	if l == nil {
		return 0
	}
	h.passes.Add(1)
	bs := l.BlockSize()
	buf := make([]byte, bs)
	moved := 0
	for _, id := range l.CachedBlockIDs() {
		select {
		case <-h.quit:
			return moved
		default:
		}
		owners := n.ring().Owners(id.File, n.replicas)
		keep := false
		for _, o := range owners {
			if o == n.self {
				keep = true
				break
			}
		}
		if keep {
			continue
		}
		p, ok := n.peerFor(owners[0])
		if !ok {
			continue
		}
		pool, up := p.livePool()
		if !up {
			continue
		}
		if !h.spend(bs) {
			return moved
		}
		if err := l.ReadBlockLocal(id, buf); err != nil {
			continue
		}
		if err := pool.WriteReplica(id.File, id.Block, 1, buf); err != nil {
			n.forwardErr(p, err) //nolint:errcheck // retried next pass
			continue
		}
		moved++
		h.blocksMoved.Add(1)
		h.bytesMoved.Add(uint64(bs))
	}
	if moved > 0 {
		n.logf("cluster: handoff moved %d blocks (%d bytes)", moved, moved*bs)
	}
	return moved
}

// Budget returns the configured handoff rate in bytes/second
// (<=0 = unlimited); the chaos invariant compares measured traffic
// against it.
func (h *handoff) Budget() int64 { return h.bps }

// HandoffBudget exposes the node's handoff byte/s budget (0 in
// static mode).
func (n *Node) HandoffBudget() int64 {
	if n.handoff == nil {
		return 0
	}
	return n.handoff.bps
}
