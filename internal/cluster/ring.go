// Package cluster is the cooperative peer tier: it lets N lapcached
// instances form a peer group in which a consistent-hash ring assigns
// every file exactly one owner node — the runtime image of PAFS's
// per-file prefetch servers. Non-owner nodes forward misses to the
// owner over the binary wire protocol, turning what would be a disk
// read into a remote memory hit (the paper's premise: a remote
// node's memory is an order of magnitude closer than disk), and only
// the owner runs a file's linear-aggressive chain, so "at most one
// outstanding prefetch per file" holds across the whole cluster —
// the property §4 credits for PAFS beating serverless xFS, whose
// per-node predictors between them over-prefetch the same file.
//
// Membership comes in two modes. Static (the default, and the paper's
// own setup): the member list is fixed for the run and liveness never
// changes ownership — a dead owner degrades its files to each node's
// local store (latency, not availability), because two nodes adopting
// one file's chain is precisely the xFS failure mode the design
// exists to avoid. Dynamic (opt-in via Config.Join/Dynamic): a
// SWIM-style gossip layer (internal/membership) detects joins and
// failures and drives a *versioned* ring — ownership moves only when
// the failure detector convicts a member (suspicion timeout), never
// on a single missed probe, and every ring version bumps an epoch the
// engine uses to re-home each file's prefetch chain exactly once. An
// R=2 replica on the ring successor turns an owner's death from a
// disk degrade into a remote memory hit, and a bounded-rate handoff
// loop re-homes cached blocks after each move without flooding the
// links the workload is still using.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/blockdev"
)

// Ring is a consistent-hash ring over member addresses with virtual
// nodes. It is pure arithmetic on the sorted member list, so every
// node that was given the same membership computes identical
// ownership — no coordination protocol, no gossip, no disagreement.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a hash position claimed by a member.
type ringPoint struct {
	hash   uint64
	member int // index into members
}

// DefaultVNodes is the virtual-node count per member when the caller
// passes 0 — enough to spread files within a few percent of even
// across 3–16 members.
const DefaultVNodes = 64

// NewRing builds a ring over members (deduplicated, order-insensitive)
// with vnodes virtual nodes each (0 = DefaultVNodes).
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member address")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, v), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break by member index so the
		// ring stays identical regardless of input order.
		return a.member < b.member
	})
	return r, nil
}

// pointHash places virtual node v of member m on the ring.
func pointHash(m string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(m))   //nolint:errcheck // fnv never fails
	h.Write([]byte{'#'}) //nolint:errcheck
	var buf [4]byte
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
	buf[2] = byte(v >> 16)
	buf[3] = byte(v >> 24)
	h.Write(buf[:]) //nolint:errcheck
	return mix64(h.Sum64())
}

// fileHash places a file on the ring. Sequential small file IDs leave
// fnv's low-entropy lattice intact — un-mixed, a trace's files 0..N
// sample the ring's arcs badly enough to skew ownership 6:1 — so the
// finalizer scatters them over the full 64-bit circle.
func fileHash(f blockdev.FileID) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	buf[0] = byte(f)
	buf[1] = byte(f >> 8)
	buf[2] = byte(f >> 16)
	buf[3] = byte(f >> 24)
	h.Write(buf[:]) //nolint:errcheck // fnv never fails
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so every
// input bit flips about half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member owning f: the first virtual node at or
// clockwise after the file's hash, wrapping at the top.
func (r *Ring) Owner(f blockdev.FileID) string {
	h := fileHash(f)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Owners returns the first n distinct members at or clockwise after
// f's hash: Owners(f, 2)[0] is the owner, [1] the R=2 replica
// successor. Fewer than n members yields all of them, owner first.
func (r *Ring) Owners(f blockdev.FileID, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	h := fileHash(f)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		pt := r.points[(i+k)%len(r.points)]
		if !seen[pt.member] {
			seen[pt.member] = true
			out = append(out, r.members[pt.member])
		}
	}
	return out
}

// Members returns the sorted member addresses.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Shares returns each member's exact fraction of the hash circle —
// the sum of the arcs its virtual nodes claim, out of 2^64. This is
// the stationary distribution of Owner over uniformly hashed files,
// computed in closed form so balance tests need no sampling.
func (r *Ring) Shares() map[string]float64 {
	arcs := make(map[string]uint64, len(r.members))
	for i, pt := range r.points {
		// The point at points[i] owns the arc ending at its own hash and
		// starting just past the previous point's hash (wrapping).
		var arc uint64
		if i == 0 {
			arc = pt.hash + (^uint64(0) - r.points[len(r.points)-1].hash) + 1
		} else {
			arc = pt.hash - r.points[i-1].hash
		}
		arcs[r.members[pt.member]] += arc
	}
	out := make(map[string]float64, len(arcs))
	for m, a := range arcs {
		out[m] = float64(a) / float64(1<<63) / 2
	}
	return out
}
