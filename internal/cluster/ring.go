// Package cluster is the cooperative peer tier: it lets N lapcached
// instances form a peer group in which a consistent-hash ring assigns
// every file exactly one owner node — the runtime image of PAFS's
// per-file prefetch servers. Non-owner nodes forward misses to the
// owner over the binary wire protocol, turning what would be a disk
// read into a remote memory hit (the paper's premise: a remote
// node's memory is an order of magnitude closer than disk), and only
// the owner runs a file's linear-aggressive chain, so "at most one
// outstanding prefetch per file" holds across the whole cluster —
// the property §4 credits for PAFS beating serverless xFS, whose
// per-node predictors between them over-prefetch the same file.
//
// Membership is static for a run (the paper's cluster is, too):
// liveness never changes ownership. A dead owner degrades its files
// to each node's local store — latency, not availability — rather
// than re-assigning them, because a second node adopting the file's
// chain is precisely the xFS failure mode the design exists to avoid.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/blockdev"
)

// Ring is a consistent-hash ring over member addresses with virtual
// nodes. It is pure arithmetic on the sorted member list, so every
// node that was given the same membership computes identical
// ownership — no coordination protocol, no gossip, no disagreement.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a hash position claimed by a member.
type ringPoint struct {
	hash   uint64
	member int // index into members
}

// DefaultVNodes is the virtual-node count per member when the caller
// passes 0 — enough to spread files within a few percent of even
// across 3–16 members.
const DefaultVNodes = 64

// NewRing builds a ring over members (deduplicated, order-insensitive)
// with vnodes virtual nodes each (0 = DefaultVNodes).
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member address")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, v), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break by member index so the
		// ring stays identical regardless of input order.
		return a.member < b.member
	})
	return r, nil
}

// pointHash places virtual node v of member m on the ring.
func pointHash(m string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(m))   //nolint:errcheck // fnv never fails
	h.Write([]byte{'#'}) //nolint:errcheck
	var buf [4]byte
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
	buf[2] = byte(v >> 16)
	buf[3] = byte(v >> 24)
	h.Write(buf[:]) //nolint:errcheck
	return mix64(h.Sum64())
}

// fileHash places a file on the ring. Sequential small file IDs leave
// fnv's low-entropy lattice intact — un-mixed, a trace's files 0..N
// sample the ring's arcs badly enough to skew ownership 6:1 — so the
// finalizer scatters them over the full 64-bit circle.
func fileHash(f blockdev.FileID) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	buf[0] = byte(f)
	buf[1] = byte(f >> 8)
	buf[2] = byte(f >> 16)
	buf[3] = byte(f >> 24)
	h.Write(buf[:]) //nolint:errcheck // fnv never fails
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so every
// input bit flips about half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member owning f: the first virtual node at or
// clockwise after the file's hash, wrapping at the top.
func (r *Ring) Owner(f blockdev.FileID) string {
	h := fileHash(f)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Members returns the sorted member addresses.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}
