package cluster

import (
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/lapcache"
	"repro/internal/lapclient"
	"repro/internal/workload"
)

const testBlockSize = 512

// startCluster boots an n-node loopback cluster with a shared config
// shape and registers teardown.
func startCluster(t *testing.T, n int, tweak func(cfg *lapcache.Config)) []*LocalNode {
	t.Helper()
	nodes, stop, err := StartLocal(n, func(i int, addrs []string) lapcache.Config {
		cfg := lapcache.Config{
			Alg:          core.SpecNP,
			BlockSize:    testBlockSize,
			CacheBlocks:  2048,
			StrictLinear: true,
			PoisonBufs:   true,
			Store:        lapcache.NewMemStore(testBlockSize, 0),
		}
		if tweak != nil {
			tweak(&cfg)
		}
		return cfg
	})
	if err != nil {
		t.Fatalf("StartLocal(%d): %v", n, err)
	}
	t.Cleanup(stop)
	return nodes
}

// fileOwnedBy finds a file the given member owns; the ring spreads
// files, so a short scan always finds one.
func fileOwnedBy(t *testing.T, nodes []*LocalNode, owner int) blockdev.FileID {
	t.Helper()
	for f := blockdev.FileID(1); f < 10000; f++ {
		if addr, _ := nodes[0].Node.OwnerOf(f); addr == nodes[owner].Addr {
			return f
		}
	}
	t.Fatal("no file owned by target member in 10000 tries")
	return 0
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterRemoteHit is the paper's core claim in miniature: a block
// resident in a peer's memory is served to a non-owner as a remote
// memory hit — no local disk read — and the owner's ledger records it
// as peer service.
func TestClusterRemoteHit(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	f := fileOwnedBy(t, nodes, 1)

	// Warm the owner's cache directly, then read through a non-owner.
	nodes[1].Engine.Preload(f, 0, 8, false)
	data, hit, err := nodes[0].Engine.Read(f, 0, 8)
	if err != nil {
		t.Fatalf("read via non-owner: %v", err)
	}
	if !hit {
		t.Error("owner had every block cached; non-owner read should report hit")
	}
	want := make([]byte, testBlockSize)
	for i := 0; i < 8; i++ {
		lapcache.FillPattern(blockdev.BlockID{File: f, Block: blockdev.BlockNo(i)}, want)
		got := data[i*testBlockSize : (i+1)*testBlockSize]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("block %d byte %d = %#x, want %#x", i, j, got[j], want[j])
			}
		}
	}

	s0 := nodes[0].Engine.Snapshot()
	if s0.RemoteReads != 8 || s0.RemoteHits != 8 {
		t.Errorf("non-owner: RemoteReads=%d RemoteHits=%d, want 8/8", s0.RemoteReads, s0.RemoteHits)
	}
	if s0.StoreReads != 0 {
		t.Errorf("non-owner read its local store %d times; the point was not to", s0.StoreReads)
	}
	s1 := nodes[1].Engine.Snapshot()
	if s1.PeerReadsServed == 0 {
		t.Error("owner served no peer reads")
	}

	// The fetched blocks are now cached locally: a re-read must not
	// cross the network again.
	if _, hit, err := nodes[0].Engine.Read(f, 0, 8); err != nil || !hit {
		t.Fatalf("re-read: hit=%v err=%v, want local hit", hit, err)
	}
	if s := nodes[0].Engine.Snapshot(); s.RemoteReads != 8 {
		t.Errorf("re-read went remote: RemoteReads=%d, want still 8", s.RemoteReads)
	}
}

// TestClusterForwardedWrite: a non-owner's write lands on the owner
// (so the owner's cache stays the file's one authority) and is also
// installed write-through locally.
func TestClusterForwardedWrite(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	f := fileOwnedBy(t, nodes, 2)

	if err := nodes[0].Engine.Write(f, 4, 3, nil); err != nil {
		t.Fatalf("forwarded write: %v", err)
	}
	s0 := nodes[0].Engine.Snapshot()
	if s0.ForwardedWrites != 1 {
		t.Errorf("ForwardedWrites=%d, want 1", s0.ForwardedWrites)
	}
	s2 := nodes[2].Engine.Snapshot()
	if s2.PeerWritesServed != 1 {
		t.Errorf("owner PeerWritesServed=%d, want 1", s2.PeerWritesServed)
	}
	// Owner now has the blocks in memory: a third node's read is a
	// remote hit.
	if _, hit, err := nodes[1].Engine.Read(f, 4, 3); err != nil || !hit {
		t.Fatalf("read-after-forwarded-write: hit=%v err=%v", hit, err)
	}
}

// TestClusterFailover: killing an owner degrades its files to each
// node's local store — reads keep succeeding (latency, not
// availability) — and ownership does NOT move, because a second node
// adopting the file's chain is the xFS over-prefetch failure mode.
func TestClusterFailover(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	f := fileOwnedBy(t, nodes, 1)

	// Prove the forward path works, then kill the owner.
	if _, _, err := nodes[0].Engine.Read(f, 0, 2); err != nil {
		t.Fatalf("read before failover: %v", err)
	}
	nodes[1].Server.Close()
	nodes[1].Node.Close()
	nodes[1].Engine.Shutdown()

	// Reads of the dead owner's file must degrade, not fail. The first
	// attempt may surface the transport fault, which marks the peer
	// down; from then on every read goes straight to the local store.
	waitFor(t, "degraded read", func() bool {
		_, _, err := nodes[0].Engine.Read(f, 8, 4)
		return err == nil
	})
	s0 := nodes[0].Engine.Snapshot()
	if s0.RemoteFallbacks == 0 {
		t.Error("no remote fallbacks recorded after owner death")
	}
	if s0.StoreReads == 0 {
		t.Error("degraded read did not touch the local store")
	}
	waitFor(t, "peer marked down", func() bool {
		return nodes[0].Node.PeerDown(nodes[1].Addr)
	})
	// Ownership must not have moved.
	if addr, self := nodes[0].Node.OwnerOf(f); self || addr != nodes[1].Addr {
		t.Errorf("ownership moved to %q after owner death", addr)
	}
	// Writes degrade the same way.
	if err := nodes[2].Engine.Write(f, 0, 1, nil); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
}

// TestClusterCharismaE2E is the cluster acceptance run: a synthetic
// CHARISMA trace replayed against a live 3-node cooperative cache with
// linear aggressive prefetching on, processes sharded across nodes the
// way real clients would mount their nearest cache. It must finish,
// move real traffic across the peer tier, and keep every file's
// outstanding-prefetch high-water at exactly 1 CLUSTER-WIDE: only the
// ring owner ever runs a file's chain, so joining the three ledgers
// per file must never sum past 1 — the PAFS property xFS lacks.
func TestClusterCharismaE2E(t *testing.T) {
	p := experiment.TinyScale().Charisma
	tr, err := workload.GenerateCharisma(p)
	if err != nil {
		t.Fatalf("generate trace: %v", err)
	}

	nodes := startCluster(t, 3, func(cfg *lapcache.Config) {
		cfg.Alg = core.SpecLnAgrISPPM1
		cfg.CacheBlocks = 4096
		cfg.Workers = 8
		cfg.QueueLen = 128
		cfg.FileBlocks = tr.FileBlocks
		cfg.PoisonBufs = false // the replay is bulk traffic; keep it honest but fast
	})
	addrs := make([]string, len(nodes))
	for i, m := range nodes {
		addrs[i] = m.Addr
	}

	res, err := lapclient.ReplayTraceMulti(addrs, tr, lapclient.ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Proto != "binary" {
		t.Errorf("replay negotiated %q, want binary", res.Proto)
	}
	if res.Requests != tr.TotalSteps() {
		t.Errorf("replayed %d requests, trace has %d", res.Requests, tr.TotalSteps())
	}

	// The peer tier must actually have carried traffic: with files
	// spread over three owners and processes over three mounts, both
	// sides of the forward path see work.
	var remoteReads, peerServed, fallbacks, violations uint64
	for _, m := range nodes {
		s := m.Engine.Snapshot()
		remoteReads += s.RemoteReads
		peerServed += s.PeerReadsServed
		fallbacks += s.RemoteFallbacks
		violations += uint64(s.LinearViolations)
	}
	if remoteReads == 0 {
		t.Error("replay moved no remote reads through the peer tier")
	}
	if peerServed == 0 {
		t.Error("no node served a peer read")
	}
	if fallbacks != 0 {
		t.Errorf("%d remote fallbacks with every peer alive", fallbacks)
	}
	if violations != 0 {
		t.Errorf("%d linear violations across the cluster", violations)
	}

	// Cluster-wide linearity: join the per-node ledgers. For every
	// file, only the ring owner may have driven prefetches at all, and
	// its high-water must be exactly 1.
	prefetchedFiles := 0
	for i, m := range nodes {
		for f, hw := range m.Engine.Ledger().HighWaters() {
			if hw == 0 {
				continue
			}
			prefetchedFiles++
			owner, _ := nodes[0].Node.OwnerOf(f)
			if owner != m.Addr {
				t.Errorf("node %d (%s) prefetched file %d owned by %s", i, m.Addr, f, owner)
			}
			if hw != 1 {
				t.Errorf("file %d high-water %d on node %d, want exactly 1 cluster-wide", f, hw, i)
			}
			for j, other := range nodes {
				if j != i && other.Engine.Ledger().FileHighWater(f) != 0 {
					t.Errorf("file %d has outstanding-prefetch history on BOTH node %d and node %d", f, i, j)
				}
			}
		}
	}
	if prefetchedFiles == 0 {
		t.Error("prefetching never engaged anywhere in the cluster")
	}
	t.Logf("replay: %d reqs in %v across 3 nodes; %d remote reads, %d peer reads served, %d files prefetched (HW=1 each)",
		res.Requests, res.Elapsed, remoteReads, peerServed, prefetchedFiles)
}
