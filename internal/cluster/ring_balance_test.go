package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blockdev"
)

// maxShareRatio is the documented balance bound: with DefaultVNodes
// (64) virtual nodes per member, the largest member arc-share divided
// by the smallest stays under this across any 2–16-member ring. Each
// share is a sum of 64 roughly-exponential arcs, so its coefficient
// of variation is ~1/√64 ≈ 12.5%; the observed worst max/min over
// thousands of random member sets is ~2.2, and 2.5 leaves margin
// without hiding a real skew regression (an unmixed hash, say, skews
// 6:1 — see fileHash's comment).
const maxShareRatio = 2.5

// randomMembers draws n distinct synthetic advertise addresses.
func randomMembers(rng *rand.Rand, n int) []string {
	members := make([]string, 0, n)
	seen := map[string]bool{}
	for len(members) < n {
		m := fmt.Sprintf("10.%d.%d.%d:%d",
			rng.Intn(256), rng.Intn(256), rng.Intn(256), 1024+rng.Intn(60000))
		if !seen[m] {
			seen[m] = true
			members = append(members, m)
		}
	}
	return members
}

// TestRingBalanceProperty sweeps 1k random member sets (2–16 nodes)
// and checks, in closed form via exact arc shares:
//   - every member's share of the keyspace is within maxShareRatio of
//     every other's (no member gets starved or swamped), and
//   - shares sum to the whole circle (the arc accounting is exact).
func TestRingBalanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		n := 2 + rng.Intn(15)
		members := randomMembers(rng, n)
		r, err := NewRing(members, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		shares := r.Shares()
		if len(shares) != n {
			t.Fatalf("trial %d: %d shares for %d members", trial, len(shares), n)
		}
		sum, mx, mn := 0.0, 0.0, 2.0
		for _, s := range shares {
			sum += s
			mx = math.Max(mx, s)
			mn = math.Min(mn, s)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: shares sum to %v, want 1", trial, sum)
		}
		if ratio := mx / mn; ratio > maxShareRatio {
			t.Fatalf("trial %d (%d members): max/min share ratio %.3f exceeds the documented bound %.1f",
				trial, n, ratio, maxShareRatio)
		}
	}
}

// TestRingJoinLeaveMovesOneNth pins the rebalancing cost model of
// consistent hashing: adding a member re-homes only the keyspace the
// newcomer claims (~1/N of it, within the balance bound), every moved
// file moves TO the newcomer, and removing it moves exactly those
// files back — nothing else ever changes hands. This is the property
// that makes a join's handoff traffic proportional to 1/N of the
// data, not a full reshuffle.
func TestRingJoinLeaveMovesOneNth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const files = 4000
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		members := randomMembers(rng, n+1)
		joiner := members[n]
		before, err := NewRing(members[:n], 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(members, 0)
		if err != nil {
			t.Fatal(err)
		}

		moved := 0
		for f := blockdev.FileID(0); f < files; f++ {
			ob, oa := before.Owner(f), after.Owner(f)
			if ob == oa {
				continue
			}
			moved++
			if oa != joiner {
				t.Fatalf("trial %d: file %d moved %s -> %s on a join of %s — only the joiner may gain files",
					trial, f, ob, oa, joiner)
			}
		}
		// The moved fraction is the joiner's exact arc share, which the
		// balance bound confines around 1/(n+1); the sampled count adds
		// binomial noise on top (±4σ at 4000 files is ~3 points).
		frac := float64(moved) / files
		share := after.Shares()[joiner]
		want := 1.0 / float64(n+1)
		if share > want*maxShareRatio || share < want/maxShareRatio {
			t.Fatalf("trial %d: joiner claims %.4f of the keyspace, want ~%.4f (1/N within %.1fx)",
				trial, share, want, maxShareRatio)
		}
		sigma := math.Sqrt(share * (1 - share) / files)
		if math.Abs(frac-share) > 4*sigma+1.0/files {
			t.Fatalf("trial %d: sampled move fraction %.4f vs exact share %.4f (> 4σ=%.4f apart)",
				trial, frac, share, 4*sigma)
		}
		// Leave is the mirror image: the same files move back.
		for f := blockdev.FileID(0); f < files; f++ {
			ob, oa := before.Owner(f), after.Owner(f)
			if oa == joiner {
				continue
			}
			if ob != oa {
				t.Fatalf("trial %d: file %d owned by %s before and %s after — a leave must restore exactly the joiner's files",
					trial, f, ob, oa)
			}
		}
	}
}
