package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lapcache"
	"repro/internal/lapclient"
)

// fakeClock hands every After call to the test as a fakeTimer; the
// test reads the requested duration and fires the timer at will, so a
// whole backoff schedule runs in microseconds of real time.
type fakeClock struct {
	waits chan *fakeTimer
}

type fakeTimer struct {
	d  time.Duration
	ch chan time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{waits: make(chan *fakeTimer, 16)} }

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	t := &fakeTimer{d: d, ch: make(chan time.Time, 1)}
	c.waits <- t
	return t.ch
}

func (t *fakeTimer) fire() { t.ch <- time.Time{} }

// next returns the health loop's next timer or fails the test.
func (c *fakeClock) next(t *testing.T) *fakeTimer {
	t.Helper()
	select {
	case ft := <-c.waits:
		return ft
	case <-time.After(5 * time.Second):
		t.Fatal("health loop never armed its timer")
		return nil
	}
}

// backoffNode builds an unstarted node for pure NextBackoff queries.
func backoffNode(t *testing.T, ping, max time.Duration) *Node {
	t.Helper()
	n, err := NewNode(Config{
		Self:         "self:1",
		Peers:        []string{"peer:1"},
		PingInterval: ping,
		BackoffMax:   max,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestNextBackoffSchedule: exponential growth from PingInterval, cap
// at BackoffMax, ±25% jitter, determinism, and the attempt-0 reset.
func TestNextBackoffSchedule(t *testing.T) {
	const ping, max = 100 * time.Millisecond, 1600 * time.Millisecond
	n := backoffNode(t, ping, max)

	if got := n.NextBackoff("a:1", 0); got != ping {
		t.Errorf("attempt 0 = %v, want exactly PingInterval %v (the post-success reset)", got, ping)
	}
	for attempt := 1; attempt <= 8; attempt++ {
		base := ping << attempt
		if base > max {
			base = max
		}
		got := n.NextBackoff("a:1", attempt)
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if got < lo || got >= hi {
			t.Errorf("attempt %d: backoff %v outside jitter bounds [%v, %v)", attempt, got, lo, hi)
		}
		if again := n.NextBackoff("a:1", attempt); again != got {
			t.Errorf("attempt %d: backoff not deterministic (%v vs %v)", attempt, got, again)
		}
	}
	// Past the cap the base stops growing; jitter still applies.
	if got := n.NextBackoff("a:1", 20); got >= time.Duration(float64(max)*1.25) {
		t.Errorf("attempt 20 backoff %v exceeds the jittered cap", got)
	}
}

// TestNextBackoffDecorrelated: peers that died together must not
// redial in lockstep — different addresses get different jitter.
func TestNextBackoffDecorrelated(t *testing.T) {
	n := backoffNode(t, 100*time.Millisecond, 4*time.Second)
	same := 0
	const peers = 32
	for i := 0; i < peers; i++ {
		a := n.NextBackoff(fmt.Sprintf("peer%d:1", i), 3)
		b := n.NextBackoff(fmt.Sprintf("peer%d:2", i), 3)
		if a == b {
			same++
		}
	}
	if same > peers/4 {
		t.Errorf("%d/%d peer pairs share an identical backoff; jitter is not decorrelating", same, peers)
	}
}

// TestHealthLoopBackoffAndReset drives one peer's health loop with a
// fake clock and a gated dialer: consecutive failures walk the
// exponential schedule, one success snaps it back to PingInterval.
func TestHealthLoopBackoffAndReset(t *testing.T) {
	// A real single-node server for the success dial to land on.
	target, stopTarget, err := StartLocal(1, func(i int, addrs []string) lapcache.Config {
		return lapcache.Config{
			Alg:         core.SpecNP,
			BlockSize:   512,
			CacheBlocks: 64,
			Store:       lapcache.NewMemStore(512, 0),
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stopTarget()
	addr := target[0].Addr

	const ping, max = 50 * time.Millisecond, 400 * time.Millisecond
	fc := newFakeClock()
	var allow atomic.Bool
	var dials atomic.Int64
	n, err := NewNode(Config{
		Self:         "self:1",
		Peers:        []string{addr},
		PingInterval: ping,
		BackoffMax:   max,
		Clock:        fc,
		DialFunc: func(a string, conns, window int) (*lapclient.Pool, error) {
			dials.Add(1)
			if !allow.Load() {
				return nil, fmt.Errorf("dial gated shut")
			}
			return lapclient.DialPool(a, conns, window)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Close()

	// Failures 1..4: each wait must match the pure schedule exactly.
	for attempt := 1; attempt <= 4; attempt++ {
		ft := fc.next(t)
		if want := n.NextBackoff(addr, attempt); ft.d != want {
			t.Errorf("after %d failures the loop armed %v, want NextBackoff=%v", attempt, ft.d, want)
		}
		if ft.d < ping {
			t.Errorf("after %d failures the loop armed %v, faster than the base interval", attempt, ft.d)
		}
		ft.fire()
	}

	// Open the gate: the next round dials clean and the schedule must
	// reset to the unjittered ping interval.
	allow.Store(true)
	ft := fc.next(t)
	if ft.d != ping {
		t.Errorf("post-success wait %v, want PingInterval %v (backoff did not reset)", ft.d, ping)
	}
	if n.PeerDown(addr) {
		t.Error("peer still marked down after a successful dial")
	}
	ft.fire()

	// Live steady state: pings every PingInterval, no redials.
	before := dials.Load()
	for i := 0; i < 3; i++ {
		ft := fc.next(t)
		if ft.d != ping {
			t.Errorf("steady-state wait %d = %v, want %v", i, ft.d, ping)
		}
		ft.fire()
	}
	// Give the last fired round a moment to run its ping path.
	time.Sleep(10 * time.Millisecond)
	if got := dials.Load(); got != before {
		t.Errorf("live peer was redialed %d times; pings should keep the pool", got-before)
	}
}
