package cluster

import (
	"fmt"
	"net"
	"time"

	"repro/internal/lapcache"
)

// LocalNode is one member of an in-process cluster started by
// StartLocal: a real lapcached stack (engine, TCP server, cluster
// node) on a loopback port. It remembers enough of its birth
// configuration to be killed and restarted on the same advertise
// address — the harness behind owner-failure/owner-return tests.
type LocalNode struct {
	Addr   string
	Index  int
	Engine *lapcache.Engine
	Server *lapcache.Server
	Node   *Node

	addrs []string
	mkcfg func(i int, addrs []string) lapcache.Config
	opts  StartLocalOpts
}

// StartLocalOpts customises StartLocalWith's per-node assembly; the
// zero value reproduces StartLocal exactly.
type StartLocalOpts struct {
	// TweakNode edits node i's cluster config before NewNode — the
	// fault harness installs DialFunc here to interpose on peer links.
	TweakNode func(i int, cfg *Config)
	// TweakServer edits node i's server before it starts serving —
	// ConnWrap, IdleTimeout, drain tuning.
	TweakServer func(i int, srv *lapcache.Server)
	// NoWaitReady returns as soon as every node is serving, without
	// waiting for the peer mesh: forwards that outrun a dial degrade to
	// the local store, which is exactly what a fault harness wants to
	// exercise (under injected dial faults a full mesh may take many
	// backoff rounds to form).
	NoWaitReady bool
}

// StartLocal boots an n-node cooperative cluster inside this process,
// every node listening on its own loopback port and peered with the
// others — the harness behind check-cluster, BenchmarkClusterRead and
// the lapbench cluster demo. mkcfg builds node i's engine config given
// the full member address list (Remote is filled in by the harness; a
// Store must be provided). The returned stop function tears everything
// down in reverse order and is safe to call after a partial failure
// path has already cleaned up.
//
// Listeners are bound first so that every address is known before any
// ring is built; then nodes, engines and servers come up, and finally
// the peer meshes are dialed to readiness.
func StartLocal(n int, mkcfg func(i int, addrs []string) lapcache.Config) ([]*LocalNode, func(), error) {
	return StartLocalWith(n, mkcfg, StartLocalOpts{})
}

// StartLocalWith is StartLocal with per-node assembly hooks.
func StartLocalWith(n int, mkcfg func(i int, addrs []string) lapcache.Config, opts StartLocalOpts) ([]*LocalNode, func(), error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("cluster: StartLocal needs n > 0")
	}
	lns := make([]net.Listener, 0, n)
	nodes := make([]*LocalNode, 0, n)
	stop := func() {
		for _, m := range nodes {
			if m.Server != nil {
				m.Server.Close()
			}
		}
		for _, m := range nodes {
			if m.Node != nil {
				m.Node.Close()
			}
		}
		for _, m := range nodes {
			if m.Engine != nil {
				m.Engine.Shutdown()
			}
		}
		for _, ln := range lns {
			ln.Close() // no-op for listeners a Server already owns
		}
	}

	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}

	for i := 0; i < n; i++ {
		m := &LocalNode{Addr: addrs[i], Index: i, addrs: addrs, mkcfg: mkcfg, opts: opts}
		if err := m.boot(lns[i]); err != nil {
			stop()
			return nil, nil, err
		}
		nodes = append(nodes, m)
	}

	for _, m := range nodes {
		if err := m.Node.Start(); err != nil {
			stop()
			return nil, nil, err
		}
	}
	if !opts.NoWaitReady {
		for _, m := range nodes {
			if err := m.Node.WaitReady(5 * time.Second); err != nil {
				stop()
				return nil, nil, err
			}
		}
	}
	return nodes, stop, nil
}

// boot assembles this member's stack on ln and starts serving (but
// does not Start the health loops — StartLocalWith and Restart
// sequence that themselves).
func (m *LocalNode) boot(ln net.Listener) error {
	ncfg := Config{
		Self:         m.Addr,
		Peers:        m.addrs,
		PingInterval: 50 * time.Millisecond,
	}
	if m.opts.TweakNode != nil {
		m.opts.TweakNode(m.Index, &ncfg)
	}
	node, err := NewNode(ncfg)
	if err != nil {
		return err
	}
	cfg := m.mkcfg(m.Index, m.addrs)
	cfg.Remote = node
	eng, err := lapcache.New(cfg)
	if err != nil {
		node.Close()
		return err
	}
	// Hand the node its engine callbacks before the health and gossip
	// loops start: the first ring move must already re-probe drivers.
	node.SetLocal(eng)
	srv := lapcache.NewServer(eng)
	srv.Cluster = node
	if m.opts.TweakServer != nil {
		m.opts.TweakServer(m.Index, srv)
	}
	m.Engine, m.Server, m.Node = eng, srv, node
	go srv.Serve(ln) //nolint:errcheck // exits on Close
	return nil
}

// Kill tears this member down — server, health loops, engine — while
// the rest of the cluster keeps running; peers mark it down and
// degrade its files to their local stores. The fields stay set (their
// Close/Shutdown are idempotent, so the cluster-wide stop function
// remains safe); Restart replaces them.
func (m *LocalNode) Kill() {
	m.Server.Close()
	m.Node.Close()
	m.Engine.Shutdown()
}

// Restart boots a fresh stack — new engine, server and health loops —
// on the same advertise address a Kill vacated, then waits for the
// returned member to see its peers. The surviving nodes' health loops
// redial it on their own (jittered backoff), so full mesh recovery
// lags this call by up to one backoff interval.
func (m *LocalNode) Restart(timeout time.Duration) error {
	ln, err := net.Listen("tcp", m.Addr)
	if err != nil {
		return fmt.Errorf("cluster: restart rebind %s: %w", m.Addr, err)
	}
	if err := m.boot(ln); err != nil {
		ln.Close()
		return err
	}
	if err := m.Node.Start(); err != nil {
		return err
	}
	return m.Node.WaitReady(timeout)
}
