package cluster

import (
	"fmt"
	"net"
	"time"

	"repro/internal/lapcache"
)

// LocalNode is one member of an in-process cluster started by
// StartLocal: a real lapcached stack (engine, TCP server, cluster
// node) on a loopback port.
type LocalNode struct {
	Addr   string
	Engine *lapcache.Engine
	Server *lapcache.Server
	Node   *Node
}

// StartLocal boots an n-node cooperative cluster inside this process,
// every node listening on its own loopback port and peered with the
// others — the harness behind check-cluster, BenchmarkClusterRead and
// the lapbench cluster demo. mkcfg builds node i's engine config given
// the full member address list (Remote is filled in by the harness; a
// Store must be provided). The returned stop function tears everything
// down in reverse order and is safe to call after a partial failure
// path has already cleaned up.
//
// Listeners are bound first so that every address is known before any
// ring is built; then nodes, engines and servers come up, and finally
// the peer meshes are dialed to readiness.
func StartLocal(n int, mkcfg func(i int, addrs []string) lapcache.Config) ([]*LocalNode, func(), error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("cluster: StartLocal needs n > 0")
	}
	lns := make([]net.Listener, 0, n)
	nodes := make([]*LocalNode, 0, n)
	stop := func() {
		for _, m := range nodes {
			if m.Server != nil {
				m.Server.Close()
			}
		}
		for _, m := range nodes {
			if m.Node != nil {
				m.Node.Close()
			}
		}
		for _, m := range nodes {
			if m.Engine != nil {
				m.Engine.Shutdown()
			}
		}
		for _, ln := range lns {
			ln.Close() // no-op for listeners a Server already owns
		}
	}

	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}

	for i := 0; i < n; i++ {
		node, err := NewNode(Config{
			Self:         addrs[i],
			Peers:        addrs,
			PingInterval: 50 * time.Millisecond,
		})
		if err != nil {
			stop()
			return nil, nil, err
		}
		cfg := mkcfg(i, addrs)
		cfg.Remote = node
		eng, err := lapcache.New(cfg)
		if err != nil {
			node.Close()
			stop()
			return nil, nil, err
		}
		srv := lapcache.NewServer(eng)
		srv.Cluster = node
		nodes = append(nodes, &LocalNode{Addr: addrs[i], Engine: eng, Server: srv, Node: node})
		go srv.Serve(lns[i]) //nolint:errcheck // exits on Close
	}

	for _, m := range nodes {
		m.Node.Start()
	}
	for _, m := range nodes {
		if err := m.Node.WaitReady(5 * time.Second); err != nil {
			stop()
			return nil, nil, err
		}
	}
	return nodes, stop, nil
}
