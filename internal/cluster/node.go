package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/lapclient"
)

// Config assembles a cluster node.
type Config struct {
	// Self is this node's advertise address — the address peers dial
	// and the identity the ring hashes. It must appear in Peers (it is
	// added if missing).
	Self string
	// Peers is the full static membership, self included or not.
	Peers []string
	// VNodes is the virtual-node count per member (0 = DefaultVNodes).
	VNodes int
	// Conns is the connection-pool size per peer (0 = 2); Window the
	// per-connection in-flight cap (0 = lapclient.DefaultWindow).
	Conns  int
	Window int
	// PingInterval paces the per-peer health loop: how often a live
	// peer is pinged and how soon a dead one is first re-dialed
	// (0 = 250ms). Consecutive dial failures back off exponentially
	// from this interval up to BackoffMax (0 = 4s), with ±25% jitter so
	// peers that died together do not redial in lockstep; one success
	// resets the backoff to PingInterval.
	PingInterval time.Duration
	BackoffMax   time.Duration
	// DialFunc overrides how peer pools are dialed (nil =
	// lapclient.DialPool). The fault-injection harness uses it to
	// interpose transport faults and injected dial failures on peer
	// links.
	DialFunc func(addr string, conns, window int) (*lapclient.Pool, error)
	// Clock overrides the health loop's timers (nil = real time);
	// backoff tests drive the loop with a fake clock.
	Clock Clock
	// Logf, when non-nil, receives peer up/down transitions.
	Logf func(format string, args ...any)
}

// Clock is the slice of time the health loop consumes; tests inject a
// fake to step backoff schedules without sleeping.
type Clock interface {
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Node wires one lapcached process into the peer group. It implements
// lapcache.RemoteFetcher (the engine's forward path) and
// lapcache.ClusterInfo (the server's membership view); the two
// interfaces are how the engine stays free of any cluster import.
//
// Each peer gets a pipelined binary connection pool and a health
// goroutine: dial with exponential backoff while down, periodic pings
// while up, and any transport error — from the health loop or from a
// forward in flight — marks the peer down on the spot so subsequent
// forwards degrade to the local store immediately instead of each
// paying a TCP timeout.
type Node struct {
	cfg  Config
	self string
	ring *Ring

	peers map[string]*peer // keyed by advertise address, self excluded

	quit    chan struct{}
	wg      sync.WaitGroup
	stop    sync.Once
	started bool
}

// peer is one remote member and its connection state.
type peer struct {
	addr string

	mu      sync.Mutex
	pool    *lapclient.Pool // nil while down
	down    bool            // true until the first successful dial
	lastErr error
}

// NewNode validates the membership and builds the node. Call Start to
// begin dialing peers; a node that is never started degrades every
// remote file to the local store (all peers read as down).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: config needs a self address")
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	ring, err := NewRing(members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 2
	}
	if cfg.PingInterval <= 0 {
		cfg.PingInterval = 250 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 4 * time.Second
	}
	if cfg.DialFunc == nil {
		cfg.DialFunc = lapclient.DialPool
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	n := &Node{
		cfg:   cfg,
		self:  cfg.Self,
		ring:  ring,
		peers: make(map[string]*peer),
		quit:  make(chan struct{}),
	}
	for _, m := range ring.Members() {
		if m != n.self {
			n.peers[m] = &peer{addr: m, down: true}
		}
	}
	return n, nil
}

// Start launches the per-peer health loops. Idempotent-hostile on
// purpose: call it exactly once, after the local server is listening.
func (n *Node) Start() {
	if n.started {
		panic("cluster: Node.Start called twice")
	}
	n.started = true
	for _, p := range n.peers {
		n.wg.Add(1)
		go n.healthLoop(p)
	}
}

// Close stops the health loops and tears down every peer pool.
func (n *Node) Close() {
	n.stop.Do(func() { close(n.quit) })
	n.wg.Wait()
	for _, p := range n.peers {
		p.mu.Lock()
		if p.pool != nil {
			p.pool.Close()
			p.pool = nil
		}
		p.down = true
		p.mu.Unlock()
	}
}

// WaitReady blocks until every peer is dialed and live, or the
// timeout passes (error names the stragglers). Tests and the demo use
// it to sequence startup; production callers can skip it — forwards
// before readiness just degrade locally.
func (n *Node) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var waiting []string
		for addr, p := range n.peers {
			p.mu.Lock()
			ok := p.pool != nil && !p.down
			p.mu.Unlock()
			if !ok {
				waiting = append(waiting, addr)
			}
		}
		if len(waiting) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: peers not ready after %v: %v", timeout, waiting)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// logf reports a peer transition when logging is configured.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// NextBackoff returns the redial delay after `attempt` consecutive
// dial failures to addr: PingInterval doubled per attempt, capped at
// BackoffMax, then jittered ±25% by a hash of (addr, attempt). The
// jitter is deterministic — the same peer retries on the same
// schedule every run — but decorrelated across peers and attempts, so
// a cluster-wide outage does not turn recovery into a redial storm.
// attempt 0 (no failures yet) is PingInterval unjittered: the reset
// value after a success.
func (n *Node) NextBackoff(addr string, attempt int) time.Duration {
	if attempt <= 0 {
		return n.cfg.PingInterval
	}
	b := n.cfg.PingInterval
	for i := 0; i < attempt && b < n.cfg.BackoffMax; i++ {
		b *= 2
	}
	if b > n.cfg.BackoffMax {
		b = n.cfg.BackoffMax
	}
	h := uint64(1469598103934665603)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	h = mix64(h ^ uint64(attempt))
	// 53 uniform bits → factor in [0.75, 1.25).
	f := 0.75 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(float64(b) * f)
}

// healthLoop keeps one peer dialed: jittered exponential backoff while
// down, periodic liveness pings while up. One successful dial resets
// the backoff schedule to PingInterval.
func (n *Node) healthLoop(p *peer) {
	defer n.wg.Done()
	attempt := 0
	for {
		p.mu.Lock()
		live := p.pool != nil && !p.down
		p.mu.Unlock()

		if live {
			attempt = 0
		} else {
			pool, err := n.cfg.DialFunc(p.addr, n.cfg.Conns, n.cfg.Window)
			if err == nil {
				p.mu.Lock()
				if p.pool != nil {
					p.pool.Close()
				}
				p.pool = pool
				p.down = false
				p.lastErr = nil
				p.mu.Unlock()
				n.logf("cluster: peer %s up", p.addr)
				attempt = 0
			} else {
				p.mu.Lock()
				p.lastErr = err
				p.mu.Unlock()
				attempt++
			}
		}

		select {
		case <-n.quit:
			return
		case <-n.cfg.Clock.After(n.NextBackoff(p.addr, attempt)):
		}

		p.mu.Lock()
		pool, live := p.pool, !p.down
		p.mu.Unlock()
		if pool != nil && live {
			if _, err := pool.Ping(); err != nil {
				n.fault(p, err)
			}
		}
	}
}

// livePool returns the peer's pool if it is up.
func (p *peer) livePool() (*lapclient.Pool, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pool == nil || p.down {
		return nil, false
	}
	return p.pool, true
}

// fault marks a peer down after a transport error; the health loop
// owns the redial. The pool is closed so every caller blocked inside
// it fails fast instead of waiting out the kernel.
func (n *Node) fault(p *peer, err error) {
	p.mu.Lock()
	wasUp := !p.down
	p.down = true
	p.lastErr = err
	if p.pool != nil {
		p.pool.Close()
		p.pool = nil
	}
	p.mu.Unlock()
	if wasUp {
		n.logf("cluster: peer %s down: %v", p.addr, err)
	}
}

// forwardErr classifies a peer-RPC failure: a ServerError means the
// owner was reached and refused (propagate it — the request itself is
// bad); anything else is transport, which faults the peer and tells
// the engine to degrade to its local store.
func (n *Node) forwardErr(p *peer, err error) (ok bool, out error) {
	var se *lapclient.ServerError
	if errors.As(err, &se) {
		return true, err
	}
	n.fault(p, err)
	return false, nil
}

// ownerPeer resolves f's owner to its peer entry; ok=false means the
// owner is this node (callers should not have forwarded) or unknown.
func (n *Node) ownerPeer(f blockdev.FileID) (*peer, bool) {
	p := n.peers[n.ring.Owner(f)]
	return p, p != nil
}

// --- lapcache.RemoteFetcher ---

// Owned implements lapcache.RemoteFetcher.
func (n *Node) Owned(f blockdev.FileID) bool { return n.ring.Owner(f) == n.self }

// FetchSpan implements lapcache.RemoteFetcher: one pipelined
// peer-flagged read RPC whose payload lands directly in dsts.
func (n *Node) FetchSpan(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, dsts [][]byte) (hit, ok bool, err error) {
	p, found := n.ownerPeer(f)
	if !found {
		return false, false, nil
	}
	pool, up := p.livePool()
	if !up {
		return false, false, nil
	}
	hit, err = pool.ReadPeer(f, off, nblocks, dsts)
	if err != nil {
		ok, err := n.forwardErr(p, err)
		return false, ok, err
	}
	return hit, true, nil
}

// ForwardWrite implements lapcache.RemoteFetcher.
func (n *Node) ForwardWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (bool, error) {
	p, found := n.ownerPeer(f)
	if !found {
		return false, nil
	}
	pool, up := p.livePool()
	if !up {
		return false, nil
	}
	if err := pool.WritePeer(f, off, nblocks, data); err != nil {
		return n.forwardErr(p, err)
	}
	return true, nil
}

// ForwardClose implements lapcache.RemoteFetcher.
func (n *Node) ForwardClose(f blockdev.FileID) (bool, error) {
	p, found := n.ownerPeer(f)
	if !found {
		return false, nil
	}
	pool, up := p.livePool()
	if !up {
		return false, nil
	}
	if err := pool.ClosePeer(f); err != nil {
		return n.forwardErr(p, err)
	}
	return true, nil
}

// --- lapcache.ClusterInfo ---

// Self implements lapcache.ClusterInfo.
func (n *Node) Self() string { return n.self }

// OwnerOf implements lapcache.ClusterInfo.
func (n *Node) OwnerOf(f blockdev.FileID) (string, bool) {
	owner := n.ring.Owner(f)
	return owner, owner == n.self
}

// MemberAddrs implements lapcache.ClusterInfo.
func (n *Node) MemberAddrs() []string { return n.ring.Members() }

// PeerDown reports whether addr is currently marked down (false for
// self and unknown addresses); tests and the demo read it.
func (n *Node) PeerDown(addr string) bool {
	p := n.peers[addr]
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}
