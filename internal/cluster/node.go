package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/lapclient"
	"repro/internal/membership"
)

// Config assembles a cluster node.
type Config struct {
	// Self is this node's advertise address — the address peers dial
	// and the identity the ring hashes. It must appear in Peers (it is
	// added if missing).
	Self string
	// Peers is the full static membership, self included or not. In
	// dynamic mode it seeds the initial ring (usually empty: members
	// arrive by gossip).
	Peers []string
	// Join lists gossip seed addresses to contact at start. A non-empty
	// Join (or Dynamic=true, for the first node of a fleet, which has
	// nobody to join) switches the node to dynamic membership: a
	// SWIM-style failure detector (internal/membership) drives the
	// ring, so joins and deaths move ownership instead of degrading it.
	Join []string
	// Dynamic enables dynamic membership even with no seeds.
	Dynamic bool
	// Replicas is how many ring members hold each block: 1 = owner
	// only, 2 = owner plus its ring successor (writes are pushed to
	// the successor before the ack, and the successor's memory serves
	// reads while the owner is dead). 0 defaults to 1 in static mode
	// and 2 in dynamic mode.
	Replicas int
	// HandoffBps budgets the background rebalancing pushes after a
	// ring move, in bytes per second (0 = DefaultHandoffBps, < 0 =
	// unlimited). The budget is what keeps a join or a death from
	// starving foreground traffic on the same links.
	HandoffBps int64
	// VNodes is the virtual-node count per member (0 = DefaultVNodes).
	VNodes int
	// Conns is the connection-pool size per peer (0 = 2); Window the
	// per-connection in-flight cap (0 = lapclient.DefaultWindow).
	Conns  int
	Window int
	// PingInterval paces the per-peer health loop: how often a live
	// peer is pinged and how soon a dead one is first re-dialed
	// (0 = 250ms). Consecutive dial failures back off exponentially
	// from this interval up to BackoffMax (0 = 4s), with ±25% jitter so
	// peers that died together do not redial in lockstep; one success
	// resets the backoff to PingInterval.
	PingInterval time.Duration
	BackoffMax   time.Duration
	// GossipInterval is the failure detector's probe period (0 = the
	// membership default); SuspicionTimeout how long a silent member
	// stays Suspect — still owning its arcs — before it is declared
	// Dead and the ring moves (0 = 8 probe intervals).
	GossipInterval   time.Duration
	SuspicionTimeout time.Duration
	// GossipTransport overrides the gossip datagram transport (nil =
	// UDP bound to Self's port — UDP and TCP port spaces are disjoint,
	// so the wire listener and the detector share one advertised
	// address). Tests inject in-memory fabrics here.
	GossipTransport membership.Transport
	// GossipIntercept, when set, is consulted before every gossip send
	// with the destination address; a non-nil return drops the
	// datagram. The fault harness scripts partitions through it.
	GossipIntercept func(to string) error
	// PeerCallTimeout bounds every synchronous RPC to a peer
	// (0 = DefaultPeerCallTimeout, < 0 = unbounded). Server handlers
	// issue nested peer RPCs — forwarding a client write to the owner,
	// pushing the owner's R=2 copy to its successor — and
	// per-connection request handling is sequential, so an unbounded
	// wait lets a cycle of handlers deadlock across nodes while rings
	// transiently disagree. On expiry the connection is severed and the
	// call fails like any transport error: the peer degrades to local
	// service and the health loop redials.
	PeerCallTimeout time.Duration
	// DialFunc overrides how peer pools are dialed (nil =
	// lapclient.DialPool). The fault-injection harness uses it to
	// interpose transport faults and injected dial failures on peer
	// links.
	DialFunc func(addr string, conns, window int) (*lapclient.Pool, error)
	// Clock overrides the health loop's timers (nil = real time);
	// backoff tests drive the loop with a fake clock.
	Clock Clock
	// Logf, when non-nil, receives peer up/down transitions.
	Logf func(format string, args ...any)
}

// DefaultHandoffBps is the rebalancing budget when the caller passes
// 0: fast enough to drain a test-sized cache in well under a second,
// slow enough that rebalancing is visibly not a firehose.
const DefaultHandoffBps = 4 << 20

// DefaultPeerCallTimeout bounds peer RPCs when the caller passes 0:
// two orders of magnitude above any healthy round trip, far below
// "operator notices the cluster is wedged".
const DefaultPeerCallTimeout = 5 * time.Second

// ringHistory bounds how many past rings a node remembers for
// OwnedEver — enough to cover every move in a chaos run, small enough
// that a long-lived node does not grow without bound.
const ringHistory = 64

// Clock is the slice of time the health loop consumes; tests inject a
// fake to step backoff schedules without sleeping.
type Clock interface {
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// LocalEngine is the slice of the local cache engine the node calls
// back into: ownership re-probes when the ring (or a peer's
// reachability) changes, read-repair installs after a replica serves
// a read, and the block iterator the handoff loop drains. It is
// implemented by *lapcache.Engine; the interface keeps the import
// arrow pointing from cluster to lapcache only through lapclient.
type LocalEngine interface {
	// OwnershipChanged re-probes every cached ownership decision —
	// prefetch chains move to the new owner, suspended chains resume.
	OwnershipChanged()
	// RepairInstall writes blocks fetched from a replica through to
	// the local store, restoring two reachable copies.
	RepairInstall(f blockdev.FileID, off blockdev.BlockNo, srcs [][]byte)
	// CachedBlockIDs snapshots the identities of every locally cached
	// block; ReadBlockLocal reads one of them (cache first, then
	// store) into dst. The handoff loop pairs them to re-home blocks.
	CachedBlockIDs() []blockdev.BlockID
	ReadBlockLocal(b blockdev.BlockID, dst []byte) error
	// BlockSize sizes handoff buffers.
	BlockSize() int
}

// Node wires one lapcached process into the peer group. It implements
// lapcache.RemoteFetcher (the engine's forward path) and
// lapcache.ClusterInfo (the server's membership view); the two
// interfaces are how the engine stays free of any cluster import.
//
// Each peer gets a pipelined binary connection pool and a health
// goroutine: dial with exponential backoff while down, periodic pings
// while up, and any transport error — from the health loop or from a
// forward in flight — marks the peer down on the spot so subsequent
// forwards degrade to the local store immediately instead of each
// paying a TCP timeout.
//
// The ring is versioned: ringPtr holds the current assignment and
// epoch counts every change. The epoch moves on a membership-driven
// ring swap and on a peer recovering from a fault — both are moments
// the engine's cached ownership decisions may be stale, and the
// engine re-probes per file when it sees the number move.
type Node struct {
	cfg      Config
	self     string
	dynamic  bool
	replicas int

	ringPtr atomic.Pointer[Ring]
	epoch   atomic.Uint64

	histMu  sync.Mutex
	history []*Ring

	peersMu sync.RWMutex
	peers   map[string]*peer // keyed by advertise address, self excluded

	localMu sync.RWMutex
	local   LocalEngine

	mship   *membership.Membership
	handoff *handoff // nil in static mode

	quit    chan struct{}
	wg      sync.WaitGroup
	stop    sync.Once
	started bool
}

// peer is one remote member and its connection state.
type peer struct {
	addr string
	quit chan struct{} // closed when the member leaves the ring

	mu      sync.Mutex
	pool    *lapclient.Pool // nil while down
	down    bool            // true until the first successful dial
	lastErr error
}

// NewNode validates the membership and builds the node. Call Start to
// begin dialing peers; a node that is never started degrades every
// remote file to the local store (all peers read as down).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: config needs a self address")
	}
	dynamic := cfg.Dynamic || len(cfg.Join) > 0
	members := append([]string{cfg.Self}, cfg.Peers...)
	ring, err := NewRing(members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 2
	}
	if cfg.PingInterval <= 0 {
		cfg.PingInterval = 250 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 4 * time.Second
	}
	if cfg.DialFunc == nil {
		cfg.DialFunc = lapclient.DialPool
	}
	if cfg.PeerCallTimeout == 0 {
		cfg.PeerCallTimeout = DefaultPeerCallTimeout
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		if dynamic {
			replicas = 2
		} else {
			replicas = 1
		}
	}
	bps := cfg.HandoffBps
	if bps == 0 {
		bps = DefaultHandoffBps
	}
	n := &Node{
		cfg:      cfg,
		self:     cfg.Self,
		dynamic:  dynamic,
		replicas: replicas,
		peers:    make(map[string]*peer),
		quit:     make(chan struct{}),
	}
	n.ringPtr.Store(ring)
	n.epoch.Store(1)
	n.history = []*Ring{ring}
	for _, m := range ring.Members() {
		if m != n.self {
			n.peers[m] = &peer{addr: m, down: true, quit: make(chan struct{})}
		}
	}
	if dynamic {
		n.handoff = newHandoff(n, bps)
		n.mship, err = membership.New(membership.Config{
			Self:             cfg.Self,
			Seeds:            cfg.Join,
			ProbeInterval:    cfg.GossipInterval,
			SuspicionTimeout: cfg.SuspicionTimeout,
			Transport:        cfg.GossipTransport,
			Intercept:        cfg.GossipIntercept,
			OnUpdate:         n.onMembership,
			Logf:             cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// SetLocal hands the node its engine callbacks. Wire it before Start
// so the first ring move already re-probes drivers; a node without an
// engine (tests exercising only routing) skips the callbacks.
func (n *Node) SetLocal(l LocalEngine) {
	n.localMu.Lock()
	n.local = l
	n.localMu.Unlock()
}

func (n *Node) localEngine() LocalEngine {
	n.localMu.RLock()
	defer n.localMu.RUnlock()
	return n.local
}

// Start launches the per-peer health loops, and in dynamic mode the
// gossip detector and the handoff loop. Idempotent-hostile on
// purpose: call it exactly once, after the local server is listening.
func (n *Node) Start() error {
	if n.started {
		panic("cluster: Node.Start called twice")
	}
	n.started = true
	n.peersMu.RLock()
	for _, p := range n.peers {
		n.wg.Add(1)
		go n.healthLoop(p)
	}
	n.peersMu.RUnlock()
	if n.mship != nil {
		if err := n.mship.Start(); err != nil {
			return err
		}
		n.handoff.start()
	}
	return nil
}

// Close stops the gossip layer, the health loops, and every peer
// pool. No departure is announced: peers notice the silence, exactly
// as they would a crash.
func (n *Node) Close() {
	n.stop.Do(func() { close(n.quit) })
	if n.mship != nil {
		n.mship.Close() //nolint:errcheck // close errors carry nothing actionable
	}
	if n.handoff != nil {
		n.handoff.stop()
	}
	n.wg.Wait()
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	for _, p := range n.peers {
		p.mu.Lock()
		if p.pool != nil {
			p.pool.Close()
			p.pool = nil
		}
		p.down = true
		p.mu.Unlock()
	}
}

// ring returns the current assignment.
func (n *Node) ring() *Ring { return n.ringPtr.Load() }

// Epoch implements lapcache.RemoteFetcher: the version of the current
// ownership assignment, bumped by ring moves and peer recoveries.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// onMembership is the gossip layer's view callback: rebuild the ring
// from every non-dead member (self always included — a node that
// hears a stale rumor of its own death keeps serving while the
// refutation propagates) and swap it in if the set changed. Suspect
// members keep their arcs: ownership moves on conviction, not on one
// missed probe.
func (n *Node) onMembership(v membership.View) {
	addrs := []string{n.self}
	for _, m := range v.Members {
		if m.Addr != n.self {
			addrs = append(addrs, m.Addr)
		}
	}
	sort.Strings(addrs)
	cur := n.ring().Members()
	if equalStrings(addrs, cur) {
		return
	}
	ring, err := NewRing(addrs, n.cfg.VNodes)
	if err != nil {
		n.logf("cluster: rejecting membership view: %v", err)
		return
	}
	n.swapRing(ring)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// swapRing installs a new assignment: publish the ring, remember it
// for OwnedEver, bump the epoch, reconcile the peer set, tell the
// engine to re-probe, and wake the handoff loop to re-home blocks.
func (n *Node) swapRing(r *Ring) {
	n.ringPtr.Store(r)
	n.histMu.Lock()
	n.history = append(n.history, r)
	if len(n.history) > ringHistory {
		n.history = n.history[len(n.history)-ringHistory:]
	}
	n.histMu.Unlock()
	n.epoch.Add(1)
	n.syncPeers(r.Members())
	if l := n.localEngine(); l != nil {
		l.OwnershipChanged()
	}
	if n.handoff != nil {
		n.handoff.wake()
	}
	n.logf("cluster: ring moved to %v (epoch %d)", r.Members(), n.Epoch())
}

// syncPeers reconciles the peer map with the new member list: new
// members get a health loop, departed members get their loop stopped
// and pool closed.
func (n *Node) syncPeers(members []string) {
	want := make(map[string]bool, len(members))
	for _, m := range members {
		if m != n.self {
			want[m] = true
		}
	}
	n.peersMu.Lock()
	var added []*peer
	for addr := range want {
		if _, ok := n.peers[addr]; !ok {
			p := &peer{addr: addr, down: true, quit: make(chan struct{})}
			n.peers[addr] = p
			added = append(added, p)
		}
	}
	var removed []*peer
	for addr, p := range n.peers {
		if !want[addr] {
			removed = append(removed, p)
			delete(n.peers, addr)
		}
	}
	n.peersMu.Unlock()
	for _, p := range added {
		if n.started {
			n.wg.Add(1)
			go n.healthLoop(p)
		}
	}
	for _, p := range removed {
		close(p.quit)
		p.mu.Lock()
		if p.pool != nil {
			p.pool.Close()
			p.pool = nil
		}
		p.down = true
		p.mu.Unlock()
	}
}

// peerFor returns the peer entry for addr, if it is a current member.
func (n *Node) peerFor(addr string) (*peer, bool) {
	n.peersMu.RLock()
	p, ok := n.peers[addr]
	n.peersMu.RUnlock()
	return p, ok
}

// WaitReady blocks until every peer is dialed and live, or the
// timeout passes (error names the stragglers). Tests and the demo use
// it to sequence startup; production callers can skip it — forwards
// before readiness just degrade locally.
func (n *Node) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var waiting []string
		n.peersMu.RLock()
		for addr, p := range n.peers {
			p.mu.Lock()
			ok := p.pool != nil && !p.down
			p.mu.Unlock()
			if !ok {
				waiting = append(waiting, addr)
			}
		}
		n.peersMu.RUnlock()
		if len(waiting) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: peers not ready after %v: %v", timeout, waiting)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// logf reports a peer transition when logging is configured.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// NextBackoff returns the redial delay after `attempt` consecutive
// dial failures to addr: PingInterval doubled per attempt, capped at
// BackoffMax, then jittered ±25% by a hash of (addr, attempt). The
// jitter is deterministic — the same peer retries on the same
// schedule every run — but decorrelated across peers and attempts, so
// a cluster-wide outage does not turn recovery into a redial storm.
// attempt 0 (no failures yet) is PingInterval unjittered: the reset
// value after a success.
func (n *Node) NextBackoff(addr string, attempt int) time.Duration {
	if attempt <= 0 {
		return n.cfg.PingInterval
	}
	b := n.cfg.PingInterval
	for i := 0; i < attempt && b < n.cfg.BackoffMax; i++ {
		b *= 2
	}
	if b > n.cfg.BackoffMax {
		b = n.cfg.BackoffMax
	}
	h := uint64(1469598103934665603)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	h = mix64(h ^ uint64(attempt))
	// 53 uniform bits → factor in [0.75, 1.25).
	f := 0.75 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(float64(b) * f)
}

// healthLoop keeps one peer dialed: jittered exponential backoff while
// down, periodic liveness pings while up. One successful dial resets
// the backoff schedule to PingInterval.
func (n *Node) healthLoop(p *peer) {
	defer n.wg.Done()
	attempt := 0
	for {
		p.mu.Lock()
		live := p.pool != nil && !p.down
		p.mu.Unlock()

		if live {
			attempt = 0
		} else {
			pool, err := n.cfg.DialFunc(p.addr, n.cfg.Conns, n.cfg.Window)
			if err == nil {
				if n.cfg.PeerCallTimeout > 0 {
					pool.SetCallTimeout(n.cfg.PeerCallTimeout)
				}
				p.mu.Lock()
				wasDown := p.down
				if p.pool != nil {
					p.pool.Close()
				}
				p.pool = pool
				p.down = false
				p.lastErr = nil
				p.mu.Unlock()
				n.logf("cluster: peer %s up", p.addr)
				attempt = 0
				if wasDown {
					n.peerRecovered()
				}
			} else {
				p.mu.Lock()
				p.lastErr = err
				p.mu.Unlock()
				attempt++
			}
		}

		select {
		case <-n.quit:
			return
		case <-p.quit:
			return
		case <-n.cfg.Clock.After(n.NextBackoff(p.addr, attempt)):
		}

		p.mu.Lock()
		pool, live := p.pool, !p.down
		p.mu.Unlock()
		if pool != nil && live {
			if _, err := pool.Ping(); err != nil {
				n.fault(p, err)
			}
		}
	}
}

// peerRecovered marks a reachability change in the owner direction:
// files that were degrading to the local store because their owner
// was unreachable must re-probe. Bumping the epoch is what makes the
// engine's per-file cached verdicts (driver placement, the
// degrade-to-local decision) stale; the eager sweep resumes any
// suspended chains without waiting for the next access.
func (n *Node) peerRecovered() {
	n.epoch.Add(1)
	if l := n.localEngine(); l != nil {
		l.OwnershipChanged()
	}
}

// livePool returns the peer's pool if it is up.
func (p *peer) livePool() (*lapclient.Pool, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pool == nil || p.down {
		return nil, false
	}
	return p.pool, true
}

// fault marks a peer down after a transport error; the health loop
// owns the redial. The pool is closed so every caller blocked inside
// it fails fast instead of waiting out the kernel.
func (n *Node) fault(p *peer, err error) {
	p.mu.Lock()
	wasUp := !p.down
	p.down = true
	p.lastErr = err
	if p.pool != nil {
		p.pool.Close()
		p.pool = nil
	}
	p.mu.Unlock()
	if wasUp {
		n.logf("cluster: peer %s down: %v", p.addr, err)
	}
}

// forwardErr classifies a peer-RPC failure: a ServerError means the
// owner was reached and refused (propagate it — the request itself is
// bad); anything else is transport, which faults the peer and tells
// the engine to degrade to its local store.
func (n *Node) forwardErr(p *peer, err error) (ok bool, out error) {
	var se *lapclient.ServerError
	if errors.As(err, &se) {
		return true, err
	}
	n.fault(p, err)
	return false, nil
}

// ownerPeer resolves f's owner to its peer entry; ok=false means the
// owner is this node (callers should not have forwarded) or unknown.
func (n *Node) ownerPeer(f blockdev.FileID) (*peer, bool) {
	return n.peerFor(n.ring().Owner(f))
}

// replicaPeer resolves f's R=2 successor to its peer entry; ok=false
// when replication is off, the ring is too small, or the successor is
// this node.
func (n *Node) replicaPeer(f blockdev.FileID) (*peer, bool) {
	if n.replicas < 2 {
		return nil, false
	}
	owners := n.ring().Owners(f, n.replicas)
	if len(owners) < 2 {
		return nil, false
	}
	return n.peerFor(owners[1])
}

// --- lapcache.RemoteFetcher ---

// Owned implements lapcache.RemoteFetcher.
func (n *Node) Owned(f blockdev.FileID) bool { return n.ring().Owner(f) == n.self }

// OwnedEver reports whether any ring this node has ever installed
// assigned f to it. The chaos harness's owner-only audit uses it: a
// node legitimately accumulates prefetch history for a file it owned
// under an earlier epoch.
func (n *Node) OwnedEver(f blockdev.FileID) bool {
	n.histMu.Lock()
	defer n.histMu.Unlock()
	for _, r := range n.history {
		if r.Owner(f) == n.self {
			return true
		}
	}
	return false
}

// FetchSpan implements lapcache.RemoteFetcher: one pipelined
// peer-flagged read RPC whose payload lands directly in dsts. When
// the owner is unreachable and the tier replicates, the file's ring
// successor — holding every acked write of f in its memory — serves
// instead, and the fetched blocks are written through to the local
// store (read-repair) so the data is two-copy again even with the
// owner gone.
func (n *Node) FetchSpan(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, dsts [][]byte) (hit, ok bool, err error) {
	if p, found := n.ownerPeer(f); found {
		if pool, up := p.livePool(); up {
			hit, err = pool.ReadPeer(f, off, nblocks, dsts)
			if err == nil {
				return hit, true, nil
			}
			if ok, err := n.forwardErr(p, err); ok {
				return false, ok, err
			}
		}
	}
	// Owner gone (or was never a peer): try the replica.
	p, found := n.replicaPeer(f)
	if !found {
		return false, false, nil
	}
	pool, up := p.livePool()
	if !up {
		return false, false, nil
	}
	hit, err = pool.ReadPeer(f, off, nblocks, dsts)
	if err != nil {
		ok, err := n.forwardErr(p, err)
		return false, ok, err
	}
	if l := n.localEngine(); l != nil {
		l.RepairInstall(f, off, dsts)
	}
	return hit, true, nil
}

// ForwardWrite implements lapcache.RemoteFetcher.
func (n *Node) ForwardWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) (ok, replicated bool, err error) {
	p, found := n.ownerPeer(f)
	if !found {
		return false, false, nil
	}
	pool, up := p.livePool()
	if !up {
		return false, false, nil
	}
	replicated, werr := pool.WritePeerChecked(f, off, nblocks, data)
	if werr != nil {
		ok, err := n.forwardErr(p, werr)
		return ok, false, err
	}
	return true, replicated, nil
}

// ReplicateWrite implements lapcache.RemoteFetcher: push the span to
// f's ring successor as a replica install. Best-effort — a down
// successor just means the ack goes out without FlagReplicated.
func (n *Node) ReplicateWrite(f blockdev.FileID, off blockdev.BlockNo, nblocks int32, data []byte) bool {
	p, found := n.replicaPeer(f)
	if !found {
		return false
	}
	pool, up := p.livePool()
	if !up {
		return false
	}
	if err := pool.WriteReplica(f, off, nblocks, data); err != nil {
		n.forwardErr(p, err) //nolint:errcheck // best-effort push
		return false
	}
	return true
}

// ForwardClose implements lapcache.RemoteFetcher.
func (n *Node) ForwardClose(f blockdev.FileID) (bool, error) {
	p, found := n.ownerPeer(f)
	if !found {
		return false, nil
	}
	pool, up := p.livePool()
	if !up {
		return false, nil
	}
	if err := pool.ClosePeer(f); err != nil {
		return n.forwardErr(p, err)
	}
	return true, nil
}

// --- lapcache.ClusterInfo ---

// Self implements lapcache.ClusterInfo.
func (n *Node) Self() string { return n.self }

// OwnerOf implements lapcache.ClusterInfo.
func (n *Node) OwnerOf(f blockdev.FileID) (string, bool) {
	owner := n.ring().Owner(f)
	return owner, owner == n.self
}

// MemberAddrs implements lapcache.ClusterInfo.
func (n *Node) MemberAddrs() []string { return n.ring().Members() }

// OwnersOf returns the first k distinct ring members for f — owner
// first, then replica successors — on the current ring. Tests and the
// chaos digest use it to reason about placement.
func (n *Node) OwnersOf(f blockdev.FileID, k int) []string { return n.ring().Owners(f, k) }

// PeerDown reports whether addr is currently marked down (false for
// self and unknown addresses); tests and the demo read it.
func (n *Node) PeerDown(addr string) bool {
	p, ok := n.peerFor(addr)
	if !ok {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// HandoffStats reports the rebalancing loop's lifetime counters
// (zeros in static mode).
func (n *Node) HandoffStats() HandoffStats {
	if n.handoff == nil {
		return HandoffStats{}
	}
	return n.handoff.stats()
}

// RunHandoff drains one full rebalancing pass synchronously,
// respecting the byte/s budget, and reports how many blocks moved.
// The background loop runs the same pass after every ring move;
// benchmarks and tests call it directly.
func (n *Node) RunHandoff() int {
	if n.handoff == nil {
		return 0
	}
	return n.handoff.runOnce()
}
