package cluster

import (
	"fmt"
	"testing"

	"repro/internal/blockdev"
)

// TestRingDeterministic: every node must compute identical ownership
// from the same membership, whatever order the addresses arrived in —
// the property that lets the cluster skip a coordination protocol.
func TestRingDeterministic(t *testing.T) {
	members := []string{"10.0.0.3:970", "10.0.0.1:970", "10.0.0.2:970"}
	perms := [][]string{
		{members[0], members[1], members[2]},
		{members[2], members[0], members[1]},
		{members[1], members[2], members[0]},
		// Duplicates must not shift ownership either.
		{members[0], members[1], members[2], members[1]},
	}
	rings := make([]*Ring, len(perms))
	for i, p := range perms {
		r, err := NewRing(p, 0)
		if err != nil {
			t.Fatalf("ring %d: %v", i, err)
		}
		rings[i] = r
	}
	for f := blockdev.FileID(0); f < 2000; f++ {
		want := rings[0].Owner(f)
		for i := 1; i < len(rings); i++ {
			if got := rings[i].Owner(f); got != want {
				t.Fatalf("file %d: ring %d says owner %s, ring 0 says %s", f, i, got, want)
			}
		}
	}
}

// TestRingBalance: with virtual nodes, a 3-member ring should spread
// files within a reasonable factor of even — no member starved, none
// hoarding.
func TestRingBalance(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const files = 30000
	for f := blockdev.FileID(0); f < files; f++ {
		counts[r.Owner(f)]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / files
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %s owns %.1f%% of files, want roughly a third (counts %v)",
				m, 100*frac, counts)
		}
	}
}

// TestRingSingleMember: a ring of one owns everything (the degenerate
// single-node cluster must behave like no cluster at all).
func TestRingSingleMember(t *testing.T) {
	r, err := NewRing([]string{"solo:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for f := blockdev.FileID(0); f < 100; f++ {
		if got := r.Owner(f); got != "solo:1" {
			t.Fatalf("file %d owned by %q", f, got)
		}
	}
}

// TestRingErrors: empty membership and empty addresses are rejected.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Error("empty member address accepted")
	}
}

// TestRingMembersSorted: Members is the canonical (sorted, deduped)
// view regardless of input order, and mutating the returned slice must
// not corrupt the ring.
func TestRingMembersSorted(t *testing.T) {
	r, err := NewRing([]string{"c:1", "a:1", "b:1", "a:1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Members()
	want := []string{"a:1", "b:1", "c:1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	got[0] = "clobbered"
	if r.Members()[0] != "a:1" {
		t.Fatal("Members() returned interior slice")
	}
}
