package cluster

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/lapcache"
	"repro/internal/lapclient"
	"repro/internal/workload"
)

// dynamicTweak puts a node into dynamic membership with test-speed
// gossip: every node keeps the full initial ring (Peers) so traffic
// flows immediately, while the failure detector — seeded off node 0 —
// owns every subsequent move.
func dynamicTweak(addrs func() []string) func(i int, cfg *Config) {
	return func(i int, cfg *Config) {
		cfg.Dynamic = true
		if i != 0 {
			cfg.Join = []string{addrs()[0]}
		}
		cfg.GossipInterval = 20 * time.Millisecond
		cfg.SuspicionTimeout = 200 * time.Millisecond
	}
}

// startDynamicCluster boots an n-node dynamic cluster (gossip over
// loopback UDP on the same ports the TCP servers use).
func startDynamicCluster(t *testing.T, n int, tweakEng func(cfg *lapcache.Config)) []*LocalNode {
	t.Helper()
	var addrs []string
	nodes, stop, err := StartLocalWith(n, func(i int, as []string) lapcache.Config {
		addrs = as
		cfg := lapcache.Config{
			Alg:          core.SpecNP,
			BlockSize:    testBlockSize,
			CacheBlocks:  2048,
			StrictLinear: true,
			PoisonBufs:   true,
			Store:        lapcache.NewMemStore(testBlockSize, 0),
		}
		if tweakEng != nil {
			tweakEng(&cfg)
		}
		return cfg
	}, StartLocalOpts{TweakNode: dynamicTweak(func() []string { return addrs })})
	if err != nil {
		t.Fatalf("StartLocalWith(%d): %v", n, err)
	}
	t.Cleanup(stop)
	waitConverged(t, nodes, n)
	return nodes
}

// waitConverged blocks until every node's ring has exactly n members
// and its peer pools are dialed. Gossip views grow incrementally —
// a node's first view may hold only itself and its seed, transiently
// shrinking the ring — so placement-sensitive tests must not trust
// ownership until the fleet agrees.
func waitConverged(t *testing.T, nodes []*LocalNode, n int) {
	t.Helper()
	waitFor(t, "membership convergence", func() bool {
		for _, m := range nodes {
			if len(m.Node.MemberAddrs()) != n {
				return false
			}
		}
		return true
	})
	for _, m := range nodes {
		if err := m.Node.WaitReady(5 * time.Second); err != nil {
			t.Fatalf("peers not ready after convergence: %v", err)
		}
	}
}

// TestDynamicFailoverReplicaServes is the tentpole's headline path:
// with R=2, a write acked FlagReplicated survives its owner's death —
// the failure detector convicts the silent owner, consistent hashing
// promotes exactly the ring successor (which holds every replicated
// block in memory), and a third node's read comes back as a remote
// memory hit with the written bytes, not a degrade to the local
// store's synthesized pattern.
func TestDynamicFailoverReplicaServes(t *testing.T) {
	nodes := startDynamicCluster(t, 3, nil)
	f := fileOwnedBy(t, nodes, 1)

	// Identify the replica successor and the bystander.
	owners := nodes[0].Node.OwnersOf(f, 2)
	if len(owners) != 2 {
		t.Fatalf("OwnersOf returned %v, want owner+successor", owners)
	}
	if owners[0] != nodes[1].Addr {
		t.Fatalf("owner mismatch: %v vs %s", owners, nodes[1].Addr)
	}
	var succ, bystander *LocalNode
	for _, m := range nodes {
		switch m.Addr {
		case owners[0]:
		case owners[1]:
			succ = m
		default:
			bystander = m
		}
	}

	// Write real (non-pattern) data through the bystander; the ack must
	// be the durable one: owner + successor both installed it.
	const nblocks = 4
	data := bytes.Repeat([]byte{0xA5}, nblocks*testBlockSize)
	replicated, err := bystander.Engine.WriteDurable(f, 0, nblocks, data)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if !replicated {
		t.Fatal("write not acked replicated with the whole ring alive")
	}
	if s := succ.Engine.Snapshot(); s.ReplicaInstalls == 0 {
		t.Error("successor recorded no replica installs")
	}

	// Kill the owner; gossip convicts it and the ring moves.
	nodes[1].Kill()
	waitFor(t, "ring to shrink to 2 members", func() bool {
		return len(bystander.Node.MemberAddrs()) == 2 && len(succ.Node.MemberAddrs()) == 2
	})
	if got := bystander.Node.OwnersOf(f, 1)[0]; got != succ.Addr {
		t.Fatalf("new owner is %s, want the old successor %s (consistent hashing must promote the replica)", got, succ.Addr)
	}

	// The bystander's read now lands on the successor's memory.
	got, hit, err := bystander.Engine.Read(f, 0, nblocks)
	if err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if !hit {
		t.Error("replica had every block in memory; read should be a remote hit")
	}
	if !bytes.Equal(got, data) {
		t.Error("read after failover returned wrong bytes (replica did not serve the acked write)")
	}
	if s := bystander.Engine.Snapshot(); s.StoreReads != 0 {
		t.Errorf("bystander degraded to its local store (%d reads); the replica path was the point", s.StoreReads)
	}
}

// TestDynamicReplicaFallbackBeforeConviction covers the suspicion
// window: the owner is unreachable but not yet convicted, so the ring
// has not moved — FetchSpan falls back to the R=2 successor directly
// and read-repairs the span into the reader's local store.
func TestDynamicReplicaFallbackBeforeConviction(t *testing.T) {
	nodes := startDynamicCluster(t, 3, func(cfg *lapcache.Config) {})
	f := fileOwnedBy(t, nodes, 1)
	owners := nodes[0].Node.OwnersOf(f, 2)
	var bystander *LocalNode
	for _, m := range nodes {
		if m.Addr != owners[0] && m.Addr != owners[1] {
			bystander = m
		}
	}

	// Write through the owner itself: the bystander must not have the
	// blocks locally (a forwarded write installs write-through on the
	// writer), or its read never exercises the remote path.
	const nblocks = 2
	data := bytes.Repeat([]byte{0x5A}, nblocks*testBlockSize)
	if replicated, err := nodes[1].Engine.WriteDurable(f, 0, nblocks, data); err != nil || !replicated {
		t.Fatalf("replicated write: %v (replicated=%v)", err, replicated)
	}

	// Cut only the owner's TCP server: gossip keeps running, so the
	// ring holds still while the forward path is dead.
	nodes[1].Server.Close()
	waitFor(t, "replica-served read", func() bool {
		got, _, err := bystander.Engine.Read(f, 0, nblocks)
		return err == nil && bytes.Equal(got, data)
	})
	waitFor(t, "read-repair write-through", func() bool {
		return bystander.Engine.Snapshot().ReadRepairs > 0
	})
	// Ownership must NOT have moved yet — the detector still counts the
	// owner (gossip is alive), only its data port is down.
	if got := bystander.Node.OwnersOf(f, 1)[0]; got != nodes[1].Addr {
		t.Errorf("ring moved on an unconvicted owner: owner now %s", got)
	}
}

// TestDynamicRecoveryReprobesOwnership is the degrade-to-local fix: a
// peer's recovery bumps the ownership epoch, so files that degraded
// to the local store while the owner was down go back to forwarding —
// without waiting for process restart.
func TestDynamicRecoveryReprobesOwnership(t *testing.T) {
	nodes := startCluster(t, 3, nil) // static: the fix predates dynamic mode
	f := fileOwnedBy(t, nodes, 1)

	if _, _, err := nodes[0].Engine.Read(f, 0, 2); err != nil {
		t.Fatalf("read before kill: %v", err)
	}
	epoch0 := nodes[0].Node.Epoch()
	nodes[1].Kill()
	waitFor(t, "degraded read", func() bool {
		_, _, err := nodes[0].Engine.Read(f, 4, 2)
		return err == nil && nodes[0].Node.PeerDown(nodes[1].Addr)
	})

	if err := nodes[1].Restart(5 * time.Second); err != nil {
		t.Fatalf("restart: %v", err)
	}
	waitFor(t, "peer redialed", func() bool {
		return !nodes[0].Node.PeerDown(nodes[1].Addr)
	})
	if e := nodes[0].Node.Epoch(); e <= epoch0 {
		t.Errorf("epoch did not move on recovery (%d -> %d): cached ownership verdicts stay stale", epoch0, e)
	}
	// Forwarding must resume: remote reads grow again, fallbacks stop.
	before := nodes[0].Engine.Snapshot()
	waitFor(t, "forwarding to resume", func() bool {
		if _, _, err := nodes[0].Engine.Read(f, 8, 2); err != nil {
			return false
		}
		s := nodes[0].Engine.Snapshot()
		return s.RemoteReads > before.RemoteReads && s.RemoteFallbacks == before.RemoteFallbacks
	})
}

// TestDynamicHandoffMovesBlocksUnderBudget: blocks stranded on a node
// that owns neither the file nor its replica slot get pushed to the
// owner by RunHandoff — and the push is metered to the byte/s budget.
func TestDynamicHandoffMovesBlocksUnderBudget(t *testing.T) {
	const bps = 64 << 10
	var addrs []string
	nodes, stop, err := StartLocalWith(3, func(i int, as []string) lapcache.Config {
		addrs = as
		return lapcache.Config{
			Alg:         core.SpecNP,
			BlockSize:   testBlockSize,
			CacheBlocks: 2048,
			PoisonBufs:  true,
			Store:       lapcache.NewMemStore(testBlockSize, 0),
		}
	}, StartLocalOpts{TweakNode: func(i int, cfg *Config) {
		dynamicTweak(func() []string { return addrs })(i, cfg)
		cfg.HandoffBps = bps
	}})
	if err != nil {
		t.Fatalf("StartLocalWith: %v", err)
	}
	t.Cleanup(stop)
	waitConverged(t, nodes, 3)

	// Find a file whose owner and successor are both NOT node 0, then
	// strand its blocks on node 0 via the peer-write path (FlagPeer
	// serves locally whatever the ring says).
	var f blockdev.FileID
	for cand := blockdev.FileID(1); cand < 10000; cand++ {
		ow := nodes[0].Node.OwnersOf(cand, 2)
		if ow[0] != nodes[0].Addr && ow[1] != nodes[0].Addr {
			f = cand
			break
		}
	}
	if f == 0 {
		t.Fatal("no file placed off node 0")
	}
	const nblocks = 32
	if _, err := nodes[0].Engine.PeerWriteDurable(f, 0, nblocks, nil); err != nil {
		t.Fatalf("strand blocks: %v", err)
	}

	ownerAddr := nodes[0].Node.OwnersOf(f, 1)[0]
	var owner *LocalNode
	for _, m := range nodes {
		if m.Addr == ownerAddr {
			owner = m
		}
	}
	ownerBefore := owner.Engine.Snapshot().ReplicaInstalls

	start := time.Now()
	moved := nodes[0].Node.RunHandoff()
	elapsed := time.Since(start)
	if moved < nblocks {
		t.Fatalf("handoff moved %d blocks, want >= %d", moved, nblocks)
	}
	st := nodes[0].Node.HandoffStats()
	if st.BlocksMoved < nblocks || st.BytesMoved < nblocks*testBlockSize {
		t.Errorf("stats %+v, want >= %d blocks / %d bytes", st, nblocks, nblocks*testBlockSize)
	}
	waitFor(t, "owner to install handed-off blocks", func() bool {
		return owner.Engine.Snapshot().ReplicaInstalls >= ownerBefore+nblocks
	})

	// Budget: 32 blocks × 512B = 16KiB against a 64KiB/s budget with a
	// one-eighth-second burst (8KiB) ⇒ at least ~125ms metered. Allow
	// slack for coarse timers, but a free-running firehose (a few ms)
	// must fail.
	if elapsed < 80*time.Millisecond {
		t.Errorf("handoff of %d bytes took %v: budget of %d B/s not enforced", st.BytesMoved, elapsed, bps)
	}
	if rate := float64(st.BytesMoved) / elapsed.Seconds(); rate > bps*2 {
		t.Errorf("handoff rate %.0f B/s more than doubles the %d B/s budget", rate, bps)
	}
}

// TestDynamicOwnershipMovesLinear is the acceptance replay: a CHARISMA
// trace against a 3-node dynamic cluster with linear-aggressive
// prefetching while a FOURTH node joins mid-replay, moving ~1/4 of the
// keyspace. Under -race and StrictLinear, every engine must keep each
// file's outstanding-prefetch high-water at exactly 1, and prefetch
// history may exist only on nodes that owned the file under some
// epoch — ownership in motion must never mint a second simultaneous
// chain, the xFS failure mode.
func TestDynamicOwnershipMovesLinear(t *testing.T) {
	p := experiment.TinyScale().Charisma
	tr, err := workload.GenerateCharisma(p)
	if err != nil {
		t.Fatalf("generate trace: %v", err)
	}

	mkcfg := func(i int, addrs []string) lapcache.Config {
		return lapcache.Config{
			Alg:          core.SpecLnAgrISPPM1,
			BlockSize:    testBlockSize,
			CacheBlocks:  4096,
			Workers:      8,
			QueueLen:     128,
			FileBlocks:   tr.FileBlocks,
			StrictLinear: true,
			Store:        lapcache.NewMemStore(testBlockSize, 0),
		}
	}
	var addrs []string
	nodes, stop, err := StartLocalWith(3, func(i int, as []string) lapcache.Config {
		addrs = as
		return mkcfg(i, as)
	}, StartLocalOpts{TweakNode: dynamicTweak(func() []string { return addrs })})
	if err != nil {
		t.Fatalf("StartLocalWith: %v", err)
	}
	t.Cleanup(stop)
	waitConverged(t, nodes, 3)

	// The joiner: assembled by hand so it can enter mid-replay. It
	// seeds off node 0 and starts with a ring of one — gossip brings it
	// the fleet, and the fleet it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen joiner: %v", err)
	}
	joiner := &LocalNode{Addr: ln.Addr().String(), Index: 3, addrs: []string{ln.Addr().String()}, mkcfg: mkcfg,
		opts: StartLocalOpts{TweakNode: func(_ int, cfg *Config) {
			cfg.Peers = nil
			cfg.Join = []string{nodes[0].Addr}
			cfg.Dynamic = true
			cfg.GossipInterval = 20 * time.Millisecond
			cfg.SuspicionTimeout = 200 * time.Millisecond
		}}}
	if err := joiner.boot(ln); err != nil {
		t.Fatalf("boot joiner: %v", err)
	}
	t.Cleanup(joiner.Kill)

	joined := make(chan struct{})
	go func() {
		defer close(joined)
		time.Sleep(20 * time.Millisecond) // let the replay get going
		if err := joiner.Node.Start(); err != nil {
			t.Errorf("joiner start: %v", err)
		}
	}()

	res, err := lapclient.ReplayTraceMulti(addrs, tr, lapclient.ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Requests != tr.TotalSteps() {
		t.Errorf("replayed %d requests, trace has %d", res.Requests, tr.TotalSteps())
	}
	<-joined
	waitFor(t, "every node to see 4 members", func() bool {
		for _, m := range append(append([]*LocalNode{}, nodes...), joiner) {
			if len(m.Node.MemberAddrs()) != 4 {
				return false
			}
		}
		return true
	})

	all := append(append([]*LocalNode{}, nodes...), joiner)
	var violations uint64
	moved := 0
	prefetchedFiles := 0
	for i, m := range all {
		s := m.Engine.Snapshot()
		violations += s.LinearViolations
		for f, hw := range m.Engine.Ledger().HighWaters() {
			if hw == 0 {
				continue
			}
			prefetchedFiles++
			if hw != 1 {
				t.Errorf("file %d high-water %d on node %d, want exactly 1", f, hw, i)
			}
			// History is legitimate only on a node that owned the file
			// under some installed ring.
			if !m.Node.OwnedEver(f) {
				t.Errorf("node %d has prefetch history for file %d it never owned", i, f)
			}
			if owner, _ := nodes[0].Node.OwnerOf(f); owner != m.Addr {
				moved++ // owned under an earlier epoch: ownership moved mid-run
			}
		}
	}
	if violations != 0 {
		t.Errorf("%d linear violations across the cluster", violations)
	}
	if prefetchedFiles == 0 {
		t.Error("prefetching never engaged anywhere in the cluster")
	}
	t.Logf("replay: %d reqs; %d files prefetched (HW=1 each), %d with history under a superseded epoch",
		res.Requests, prefetchedFiles, moved)
}
