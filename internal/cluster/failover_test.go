package cluster

import (
	"testing"
	"time"

	"repro/internal/blockdev"
)

// TestOwnerDegradeRecover is the table-driven owner-failure matrix:
// kill some members, prove reads and writes of an affected file
// degrade to the survivor's local store (availability holds, ownership
// does not move), then restart the dead members and prove the remote
// path comes back — fallbacks stop, peer service resumes.
func TestOwnerDegradeRecover(t *testing.T) {
	cases := []struct {
		name string
		// kill indexes members RELATIVE to the file: 0 = the file's
		// owner, 1 = the reader, 2 = the bystander.
		kill []int
		// wantFallback: the reader must record remote fallbacks while
		// the dead set holds.
		wantFallback bool
	}{
		{name: "owner dies", kill: []int{0}, wantFallback: true},
		{name: "bystander dies", kill: []int{2}, wantFallback: false},
		{name: "owner and bystander die", kill: []int{0, 2}, wantFallback: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nodes := startCluster(t, 3, nil)
			f := fileOwnedBy(t, nodes, 0)
			owner, reader, bystander := nodes[0], nodes[1], nodes[2]
			_ = bystander
			roles := []*LocalNode{owner, reader, nodes[2]}

			// Healthy phase: the forward path works.
			if _, _, err := reader.Engine.Read(f, 0, 2); err != nil {
				t.Fatalf("read before failure: %v", err)
			}
			healthyFB := reader.Engine.Snapshot().RemoteFallbacks

			for _, ki := range tc.kill {
				roles[ki].Kill()
			}

			// Degraded phase: fresh offsets so nothing is served from the
			// reader's own cache. Reads must succeed (possibly after the
			// first attempt surfaces the transport fault and marks the
			// peer down).
			waitFor(t, "degraded read", func() bool {
				_, _, err := reader.Engine.Read(f, 8, 4)
				return err == nil
			})
			if err := reader.Engine.Write(f, 20, 2, nil); err != nil {
				t.Fatalf("degraded write: %v", err)
			}
			fb := reader.Engine.Snapshot().RemoteFallbacks
			if tc.wantFallback && fb == healthyFB {
				t.Error("no remote fallbacks recorded with the owner dead")
			}
			if !tc.wantFallback && fb != healthyFB {
				t.Errorf("reader recorded %d fallbacks though the file's owner is alive", fb-healthyFB)
			}
			// Ownership never moves: liveness is not membership.
			if addr, self := reader.Node.OwnerOf(f); self || addr != owner.Addr {
				t.Errorf("ownership moved to %q while the owner was down", addr)
			}

			// Recovery phase: restart the dead members and wait for the
			// reader's health loop to redial them. Restarts run
			// concurrently — each one's WaitReady needs the others up, so
			// sequential restarts of two dead members would deadlock on
			// each other.
			errs := make(chan error, len(tc.kill))
			for _, ki := range tc.kill {
				go func(m *LocalNode) { errs <- m.Restart(5 * time.Second) }(roles[ki])
			}
			for range tc.kill {
				if err := <-errs; err != nil {
					t.Fatalf("restart: %v", err)
				}
			}
			for _, ki := range tc.kill {
				addr := roles[ki].Addr
				waitFor(t, "peer redialed", func() bool { return !reader.Node.PeerDown(addr) })
			}

			// The remote path must carry traffic again: a read of blocks
			// the reader has never cached goes to the (restarted) owner,
			// with no new fallbacks.
			fbBefore := reader.Engine.Snapshot().RemoteFallbacks
			rrBefore := reader.Engine.Snapshot().RemoteReads
			waitFor(t, "remote path recovered", func() bool {
				if _, _, err := reader.Engine.Read(f, 40, 2); err != nil {
					return false
				}
				s := reader.Engine.Snapshot()
				return s.RemoteReads > rrBefore && s.RemoteFallbacks == fbBefore
			})
		})
	}
}

// TestRestartKeepsAddress: a restarted member rebinds its advertise
// address, so the static ring stays valid without any re-hashing.
func TestRestartKeepsAddress(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	m := nodes[1]
	addr := m.Addr
	m.Kill()
	if err := m.Restart(5 * time.Second); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if m.Addr != addr {
		t.Errorf("restart moved the advertise address %s -> %s", addr, m.Addr)
	}
	// The restarted member serves again: its peers were re-dialed by
	// Restart's WaitReady, and a file it owns is readable through it.
	f := fileOwnedBy(t, nodes, 1)
	waitFor(t, "restarted member serves", func() bool {
		_, _, err := nodes[0].Engine.Read(f, 0, 1)
		return err == nil
	})
}

// FuzzRing: ownership is total, stable across input order, and every
// owner is a member — for arbitrary membership lists and file IDs.
func FuzzRing(f *testing.F) {
	f.Add("a:1,b:2,c:3", uint32(7), uint16(64))
	f.Add("solo:1", uint32(0), uint16(1))
	f.Add("x:1,x:1,y:2", uint32(1<<31), uint16(3))
	f.Fuzz(func(t *testing.T, memberCSV string, fileID uint32, vn uint16) {
		members := splitCSV(memberCSV)
		vnodes := int(vn % 256)
		r, err := NewRing(members, vnodes)
		if err != nil {
			// Invalid membership (empty list or empty address) must be
			// rejected, never panic — reaching here is a pass.
			return
		}
		file := blockdev.FileID(fileID)
		owner := r.Owner(file)
		found := false
		for _, m := range r.Members() {
			if m == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %q of file %d is not a member", owner, file)
		}
		// Reversed input order builds the identical ring.
		rev := make([]string, len(members))
		for i, m := range members {
			rev[len(members)-1-i] = m
		}
		r2, err := NewRing(rev, vnodes)
		if err != nil {
			t.Fatalf("reversed membership rejected: %v", err)
		}
		if got := r2.Owner(file); got != owner {
			t.Fatalf("owner depends on membership order: %q vs %q", got, owner)
		}
		// Ownership is stable call to call.
		if again := r.Owner(file); again != owner {
			t.Fatalf("ownership not stable: %q then %q", owner, again)
		}
	})
}

// splitCSV splits on commas without the strings import dance; empty
// segments stay in (NewRing must reject them, not crash).
func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
