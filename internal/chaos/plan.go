package chaos

import (
	"time"

	"repro/internal/faultinject"
)

// DefaultPlan is the harness's standard fault schedule: every fault
// kind at every site the injector supports, tuned so a tiny-scale
// three-node CHARISMA replay absorbs hundreds of injections and still
// terminates well inside the default timeout. Store rules are keyed
// per (node, block) — bad sectors that heal after a bounded number of
// hits; wire and dial rules are keyed per link with budgets, so every
// partition and storm is transient and the cluster must recover, not
// merely survive.
//
// Delays and hangs are kept short (hundreds of microseconds to tens
// of milliseconds): the point is to reorder and stall the machinery,
// not to burn wall-clock.
func DefaultPlan(seed uint64) faultinject.Plan {
	return faultinject.Plan{
		Seed: seed,
		Rules: []faultinject.Rule{
			// Backing stores: latency spikes, hard errors, short reads.
			{Site: faultinject.SiteStoreRead, Kind: faultinject.KindDelay, P: 0.5, Count: 2, Delay: 200 * time.Microsecond},
			{Site: faultinject.SiteStoreRead, Kind: faultinject.KindError, P: 0.06, Count: 2},
			{Site: faultinject.SiteStoreRead, Kind: faultinject.KindPartial, P: 0.03, Count: 1},
			{Site: faultinject.SiteStoreWrite, Kind: faultinject.KindError, P: 0.05, Count: 2},
			{Site: faultinject.SiteStoreWrite, Kind: faultinject.KindDelay, P: 0.3, Count: 2, Delay: 200 * time.Microsecond},

			// Wire: corrupted frame headers and truncated frames on the
			// peer links, mid-stream disconnects and stalls everywhere.
			// Budgets on the peer links are generous on purpose: the
			// health loop's own pings spend the first few, so the rest
			// must land on live forwards and drive real degrade events.
			{Site: faultinject.SiteConnSend, Kind: faultinject.KindCorrupt, P: 0.6, Count: 5, Links: []string{"peer:"}},
			{Site: faultinject.SiteConnSend, Kind: faultinject.KindPartial, P: 0.4, Count: 4},
			{Site: faultinject.SiteConnSend, Kind: faultinject.KindHang, P: 0.3, Count: 1, Delay: 20 * time.Millisecond},
			{Site: faultinject.SiteConnRecv, Kind: faultinject.KindError, P: 0.4, Count: 5},

			// Peers: dial failures — selected one direction at a time,
			// so some failures are asymmetric partitions — and slow dials.
			{Site: faultinject.SitePeerDial, Kind: faultinject.KindError, P: 0.5, Count: 5, Links: []string{"peer:"}},
			{Site: faultinject.SitePeerDial, Kind: faultinject.KindDelay, P: 0.3, Count: 2, Delay: 5 * time.Millisecond, Links: []string{"peer:"}},

			// Gossip: dropped and delayed membership datagrams, selected
			// per directed link — asymmetric gossip partitions that the
			// detector's indirect probes must route around. Budgets are
			// deliberately too small to sustain a false conviction through
			// a whole suspicion window: faults delay the ring, they do not
			// get to invent a death. Inert in static mode (no gossip runs).
			{Site: faultinject.SiteGossip, Kind: faultinject.KindError, P: 0.4, Count: 8, Links: []string{"gossip:"}},
			{Site: faultinject.SiteGossip, Kind: faultinject.KindDelay, P: 0.2, Count: 4, Delay: 3 * time.Millisecond, Links: []string{"gossip:"}},
		},
	}
}
