package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/lapclient"
	"repro/internal/workload"
)

// maxUnexpected bounds the recorded unexpected-error details; the
// counter keeps counting past it.
const maxUnexpected = 16

// stepAttempts bounds retries of one trace step across redials; a
// step that keeps failing is abandoned (the invariants care about
// error classification and data integrity, not per-op success).
const stepAttempts = 3

// nodeClient owns the client pool for one node, redialing it — within
// a budget — whenever faults kill its connections. All the replay
// processes sharded to that node go through it.
type nodeClient struct {
	addr   string
	budget int

	mu      sync.Mutex
	pool    *lapclient.Pool
	redials int
	closed  bool
}

// get returns a live pool, dialing a fresh one when every connection
// of the current pool is dead.
func (nc *nodeClient) get() (*lapclient.Pool, error) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.closed {
		return nil, errors.New("chaos: client closed")
	}
	if nc.pool != nil && nc.pool.Live() > 0 {
		return nc.pool, nil
	}
	if nc.pool != nil {
		nc.pool.Close()
		nc.pool = nil
	}
	if nc.redials >= nc.budget {
		return nil, fmt.Errorf("chaos: redial budget (%d) spent for %s", nc.budget, nc.addr)
	}
	nc.redials++
	p, err := lapclient.DialPool(nc.addr, 2, 0)
	if err != nil {
		return nil, err
	}
	nc.pool = p
	return p, nil
}

// drop retires a pool a caller saw fail, if it is still the current
// one (a racing goroutine may already have redialed).
func (nc *nodeClient) drop(p *lapclient.Pool) {
	nc.mu.Lock()
	if nc.pool == p {
		nc.pool = nil
		nc.mu.Unlock()
		p.Close()
		return
	}
	nc.mu.Unlock()
}

// close tears the client down; in-flight callers fail fast.
func (nc *nodeClient) close() int {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.closed = true
	if nc.pool != nil {
		nc.pool.Close()
		nc.pool = nil
	}
	return nc.redials
}

// replayer drives the trace through the faulted cluster, classifying
// every error and checking every successful read against the oracle.
type replayer struct {
	tr        *workload.Trace
	clients   []*nodeClient
	blockSize int
	// tolerate marks transport errors as expected: the plan injects
	// faults on the wire or the dial path, so torn connections are part
	// of the schedule. Without such rules any transport error is a bug.
	tolerate bool

	mu            sync.Mutex
	requests      int
	reads         int
	hits          int
	writes        int
	redials       int
	mismatches    int
	injectedErrs  int
	transportErrs int
	unexpectedN   int
	unexpected    []string
	// acked holds every block the cluster acknowledged as replicated
	// (FlagReplicated: installed on the owner AND its ring successor).
	// The no-lost-acked-write invariant checks each against the union
	// of the surviving raw stores after churn.
	acked map[blockdev.BlockID]struct{}
}

func newReplayer(nodes []*cluster.LocalNode, inj *faultinject.Injector, plan faultinject.Plan, cfg Config, tr *workload.Trace) *replayer {
	r := &replayer{tr: tr, blockSize: cfg.BlockSize, acked: make(map[blockdev.BlockID]struct{})}
	for _, rule := range plan.Rules {
		switch rule.Site {
		case faultinject.SiteConnSend, faultinject.SiteConnRecv, faultinject.SitePeerDial:
			if rule.P > 0 {
				r.tolerate = true
			}
		}
	}
	// Churn kills a node under the replay's feet: torn connections and
	// refused dials to the victim are part of the schedule, not bugs.
	if cfg.Churn {
		r.tolerate = true
	}
	for _, m := range nodes {
		r.clients = append(r.clients, &nodeClient{addr: m.Addr, budget: cfg.RedialBudget})
	}
	return r
}

// run replays every traced process, one goroutine each, processes
// sharded round-robin over the nodes like a real client population.
func (r *replayer) run() {
	var wg sync.WaitGroup
	for pi := range r.tr.Procs {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			nc := r.clients[pi%len(r.clients)]
			for _, s := range r.tr.Procs[pi].Steps {
				r.step(nc, s)
			}
		}(pi)
	}
	wg.Wait()
}

// closeClients tears down every node client (unblocking a wedged
// replay goroutine, if the watchdog fired) and tallies redials.
func (r *replayer) closeClients() {
	total := 0
	for _, nc := range r.clients {
		total += nc.close()
	}
	r.mu.Lock()
	r.redials = total
	r.mu.Unlock()
}

// stats returns a locked snapshot of the replay counters (safe even
// while a wedged replay goroutine is still failing in the background).
func (r *replayer) stats() (requests, reads, hits, writes, redials, mismatches, injected, transport, unexpectedN int, unexpected []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.requests, r.reads, r.hits, r.writes, r.redials, r.mismatches,
		r.injectedErrs, r.transportErrs, r.unexpectedN, append([]string(nil), r.unexpected...)
}

// ackedBlocks returns every replicated-acked block, sorted, for the
// post-run durability audit.
func (r *replayer) ackedBlocks() []blockdev.BlockID {
	r.mu.Lock()
	out := make([]blockdev.BlockID, 0, len(r.acked))
	for id := range r.acked {
		out = append(out, id)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// isInjected reports whether err is one the plan manufactured. The
// marker string is the contract: injected errors cross the wire as
// ServerError messages, where error identity cannot survive.
func isInjected(err error) bool {
	return err != nil && strings.Contains(err.Error(), "faultinject:")
}

func (r *replayer) noteUnexpected(detail string) {
	r.mu.Lock()
	r.unexpectedN++
	if len(r.unexpected) < maxUnexpected {
		r.unexpected = append(r.unexpected, detail)
	}
	r.mu.Unlock()
}

// step issues one trace step, retrying through redials, and
// classifies whatever comes back:
//
//   - success: reads are verified byte for byte against the oracle.
//   - injected error (the marker): expected, counted, done — the
//     system surfaced the fault as a typed failure instead of wedging
//     or lying.
//   - other ServerError: the server refused a well-formed request —
//     unexpected, recorded.
//   - transport error: tolerated (and retried on a fresh connection)
//     iff the plan targets the wire; otherwise recorded.
func (r *replayer) step(nc *nodeClient, s workload.Step) {
	r.mu.Lock()
	r.requests++
	r.mu.Unlock()

	for attempt := 0; attempt < stepAttempts; attempt++ {
		pool, err := nc.get()
		if err != nil {
			r.classify(err, "dial "+nc.addr)
			time.Sleep(2 * time.Millisecond)
			continue
		}
		err = r.issue(pool, s)
		if err == nil {
			return
		}
		done := r.classify(err, fmt.Sprintf("%s f%d @%d+%d on %s", s.Kind, s.File, s.Offset, s.Size, nc.addr))
		if done {
			return
		}
		nc.drop(pool)
	}
}

// classify buckets one error; done reports that the step should not
// be retried (the server answered — with a refusal — so the request
// itself was delivered and the connection is fine).
func (r *replayer) classify(err error, context string) (done bool) {
	var se *lapclient.ServerError
	if errors.As(err, &se) {
		if isInjected(err) {
			r.mu.Lock()
			r.injectedErrs++
			r.mu.Unlock()
			return true
		}
		r.noteUnexpected(fmt.Sprintf("server refused %s: %v", context, err))
		return true
	}
	if isInjected(err) {
		// Injected at the transport (client-side wrap or dial gate):
		// expected, but the connection is gone — retry on a fresh one.
		r.mu.Lock()
		r.injectedErrs++
		r.mu.Unlock()
		return false
	}
	if r.tolerate {
		r.mu.Lock()
		r.transportErrs++
		r.mu.Unlock()
		return false
	}
	r.noteUnexpected(fmt.Sprintf("transport error on %s (no wire faults planned): %v", context, err))
	return false
}

// issue performs one step against pool, verifying read data against
// the deterministic oracle.
func (r *replayer) issue(pool *lapclient.Pool, s workload.Step) error {
	span := blockdev.ByteRangeToSpan(s.File, s.Offset, s.Size, int64(r.blockSize))
	switch s.Kind {
	case workload.OpRead:
		data, hit, err := pool.Read(span.File, span.Start, span.Count, true)
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.reads++
		if hit {
			r.hits++
		}
		r.mu.Unlock()
		if want := int(span.Count) * r.blockSize; len(data) != want {
			r.mu.Lock()
			r.mismatches++
			r.mu.Unlock()
			r.noteUnexpected(fmt.Sprintf("read f%d @%d+%d returned %d bytes, want %d",
				s.File, span.Start, span.Count, len(data), want))
		} else if at := oracleCheck(span.File, span.Start, r.blockSize, data); at >= 0 {
			r.mu.Lock()
			r.mismatches++
			r.mu.Unlock()
			r.noteUnexpected(fmt.Sprintf("read f%d @%d+%d: byte %d differs from oracle",
				s.File, span.Start, span.Count, at))
		}
		return nil
	case workload.OpWrite:
		replicated, err := pool.WriteChecked(span.File, span.Start, span.Count, nil)
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.writes++
		if replicated {
			for i := int32(0); i < span.Count; i++ {
				r.acked[blockdev.BlockID{File: span.File, Block: span.Start + blockdev.BlockNo(i)}] = struct{}{}
			}
		}
		r.mu.Unlock()
		return nil
	default: // workload.OpClose
		return pool.CloseFile(s.File)
	}
}
