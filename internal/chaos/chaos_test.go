package chaos

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
)

// runTiny executes one tiny-scale chaos run and fails the test on
// harness errors (invariant verdicts are the caller's business).
func runTiny(t *testing.T, seed uint64) Result {
	t.Helper()
	res, err := Run(Config{Seed: seed, Charisma: experiment.TinyScale().Charisma})
	if err != nil {
		t.Fatalf("chaos run (seed %d): %v", seed, err)
	}
	return res
}

// TestChaosAcceptance is the headline run: a 3-node cluster replaying
// a CHARISMA trace under the default fault plan must hold every
// invariant with a substantial injected-fault count — the ISSUE's
// >=500 floor, with margin.
func TestChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-node cluster")
	}
	res := runTiny(t, 1)
	if err := res.Inv.Check(); err != nil {
		t.Fatalf("invariants violated:\n%v\nfull result:\n%s", err, res.String())
	}
	if res.Injected < 500 {
		t.Errorf("only %d faults injected, want >= 500 for a meaningful run", res.Injected)
	}
	if res.Inv.DegradedReads == 0 {
		t.Error("no degraded reads: peer faults never drove the fallback path")
	}
	if res.Inv.InjectedErrors == 0 {
		t.Error("no injected error ever surfaced to a client")
	}
	if res.Requests == 0 || res.Reads == 0 || res.Writes == 0 {
		t.Errorf("replay moved no traffic: %+v", res)
	}
}

// TestChaosChurn is the dynamic-membership headline run: gossip
// membership with R=2 replication, gossip-datagram faults, and one
// node killed mid-replay and rejoining after conviction. Every base
// invariant must still hold, plus the three churn invariants: no
// replicated-acked write lost to the kill, every ring reconverged
// after the heal, and handoff traffic inside its byte budget.
func TestChaosChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-node cluster and churns it")
	}
	res, err := Run(Config{Seed: 3, Charisma: experiment.TinyScale().Charisma, Churn: true})
	if err != nil {
		t.Fatalf("chaos churn run: %v", err)
	}
	if err := res.Inv.Check(); err != nil {
		t.Fatalf("invariants violated:\n%v\nfull result:\n%s", err, res.String())
	}
	if res.Inv.AckedReplicated == 0 {
		t.Error("no write was ever acked as replicated: the R=2 path never engaged")
	}
	if res.Injected < 500 {
		t.Errorf("only %d faults injected, want >= 500 for a meaningful run", res.Injected)
	}
	if res.Requests == 0 || res.Reads == 0 || res.Writes == 0 {
		t.Errorf("replay moved no traffic: %+v", res)
	}
}

// TestChaosSeedReproducibility: the selection digest is a pure
// function of (seed, trace, topology) — identical across runs of the
// same seed, different across seeds — and every observed fault falls
// inside the enumerated selected set both times.
func TestChaosSeedReproducibility(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 3-node clusters")
	}
	a := runTiny(t, 5)
	b := runTiny(t, 5)
	if a.PlanDigest != b.PlanDigest {
		t.Errorf("same seed, different plan digests: %016x vs %016x", a.PlanDigest, b.PlanDigest)
	}
	if len(a.Inv.UnselectedObserved) != 0 || len(b.Inv.UnselectedObserved) != 0 {
		t.Errorf("observed faults outside the selected set: %v / %v",
			a.Inv.UnselectedObserved, b.Inv.UnselectedObserved)
	}
	c := runTiny(t, 6)
	if c.PlanDigest == a.PlanDigest {
		t.Error("different seeds produced the same plan digest")
	}
	for _, r := range []Result{a, b, c} {
		if err := r.Inv.Check(); err != nil {
			t.Errorf("seed %d: %v", r.Seed, err)
		}
	}
}

// TestInvariantsCheck: the verdict function flags each violation class
// and stays quiet on a clean result.
func TestInvariantsCheck(t *testing.T) {
	clean := Invariants{MaxOwnerHW: 1, InjectedErrors: 10}
	if err := clean.Check(); err != nil {
		t.Errorf("clean invariants flagged: %v", err)
	}
	bad := Invariants{
		MaxOwnerHW:         3,
		NonOwnerDriven:     []string{"n2 file 9"},
		LinearViolations:   2,
		BufLive:            4,
		DataMismatches:     1,
		UnexpectedErrors:   []string{"read f3: boom"},
		UnselectedObserved: []string{"0|store.read|store@n0 f1:2"},
		Wedged:             true,
		LostAckedWrites:    []string{"f1:2"},
		Unconverged:        []string{"n0 sees 2/3 members"},
		HandoffOverBudget:  []string{"n1 moved 9999999 bytes"},
	}
	err := bad.Check()
	if err == nil {
		t.Fatal("violated invariants passed Check")
	}
	for _, want := range []string{"high-water", "non-owner", "linear", "leaked", "mismatch", "unexpected",
		"selected set", "wedged", "lost acked", "converge", "handoff"} {
		if !contains(err.Error(), want) {
			t.Errorf("Check verdict misses %q: %v", want, err)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestChaosChurnAdaptiveVictim is the generalized-bound run: the
// seed-chosen victim node runs the AdaptiveFDP degree policy while
// every other node stays pinned to strict linear, and the cluster is
// churned (kill + rejoin) under gossip faults. The audit must bound
// every node's ledger by its *own* policy cap — the victim within the
// adaptive hard K, the strict nodes within exactly 1 — with zero
// ledger violations anywhere: LinearViolations stays exact under
// StrictLinear because the strict engines' ledger limit is still 1.
func TestChaosChurnAdaptiveVictim(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-node cluster and churns it")
	}
	res, err := Run(Config{
		Seed:           3,
		Charisma:       experiment.TinyScale().Charisma,
		Churn:          true,
		AdaptiveVictim: true,
	})
	if err != nil {
		t.Fatalf("chaos adaptive churn run: %v", err)
	}
	if err := res.Inv.Check(); err != nil {
		t.Fatalf("invariants violated:\n%v\nfull result:\n%s", err, res.String())
	}
	if res.Inv.DegreeCap != core.DefaultAdaptiveCap {
		t.Errorf("fleet degree cap = %d, want the adaptive victim's %d",
			res.Inv.DegreeCap, core.DefaultAdaptiveCap)
	}
	if res.Inv.MaxOwnerHW > core.DefaultAdaptiveCap {
		t.Errorf("owner high-water %d exceeds the adaptive cap %d",
			res.Inv.MaxOwnerHW, core.DefaultAdaptiveCap)
	}
	if len(res.Inv.OverCap) != 0 {
		t.Errorf("nodes exceeded their own policy cap: %v", res.Inv.OverCap)
	}
	if res.Inv.LinearViolations != 0 {
		t.Errorf("%d ledger violations; the strict nodes' limit-1 ledgers must stay exact",
			res.Inv.LinearViolations)
	}
	if res.Requests == 0 || res.Reads == 0 {
		t.Errorf("replay moved no traffic: %+v", res)
	}
}
