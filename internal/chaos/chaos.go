// Package chaos is the fault-injection harness for the lapcache
// runtime: it boots a live in-process cluster, replays a CHARISMA
// trace through it while a seeded faultinject.Plan misbehaves at the
// store, wire and peer layers, and checks the invariants the system
// claims to keep under failure:
//
//   - Linearity: per file, only the ring owner ever drives prefetches,
//     with an outstanding high-water of at most the degree policy's cap
//     — exactly 1 under the default StrictLinear policy, ≤ the
//     controller's hard K under AdaptiveFDP — faults included.
//   - Buffer lifecycle: with poison mode on, no buffer is written
//     after release, and after teardown the pool's live count is zero
//     (no leak survived any error path).
//   - Error integrity: every error a client sees is either an
//     expected injection (it carries the faultinject marker) or a
//     tolerated transport failure on a link the plan targets; reads
//     that succeed return bit-exact oracle data (the deterministic
//     fill pattern), and the run terminates — no wedge, ever.
//
// Churn mode (Config.Churn) additionally boots the cluster with
// dynamic gossip membership and R=2 replication, drops and delays
// gossip datagrams per the plan, and kills one seed-chosen node
// mid-replay, restarting it after the suspicion window has convicted
// it. Three more invariants then apply:
//
//   - No lost acked write: every write the cluster acknowledged as
//     replicated is still present in at least one surviving backing
//     store after the churn — killing either copy holder may not lose
//     acked data.
//   - Convergent ownership after heal: once the killed node is back,
//     every member's ring reconverges to the full fleet within a
//     bounded window (the restarted node refutes its own tombstone).
//   - Bounded handoff: the bytes each node's rebalancing loop moved
//     stay under its configured byte/s budget for the run's duration.
//
// Determinism: the faulted-site set is a pure function of the plan
// seed (see faultinject), so a failing run is replayed bit for bit by
// rerunning its seed — `lapbench -exp chaos -seed N`.
package chaos

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/lapcache"
	"repro/internal/lapclient"
	"repro/internal/workload"
)

// Config describes one chaos run.
type Config struct {
	// Seed drives everything: the workload generator, the fault plan
	// (when Plan is nil) and therefore the whole faulted-site set.
	Seed uint64
	// Nodes is the cluster size (0 = 3).
	Nodes int
	// Charisma generates the replayed trace; its Seed field is
	// overridden with Seed.
	Charisma workload.CharismaParams
	// Plan is the fault schedule (nil = DefaultPlan(Seed)).
	Plan *faultinject.Plan
	// Timeout bounds the whole replay (0 = 60s); exceeding it is the
	// wedge invariant failing.
	Timeout time.Duration
	// BlockSize (0 = 512) and CacheBlocks (0 = 4096) size each node.
	BlockSize   int
	CacheBlocks int
	// RedialBudget bounds client redials per node (0 = 64; 0 = 512
	// with Churn, which refuses dials to the victim for its whole
	// down window).
	RedialBudget int
	// Churn switches the cluster to dynamic gossip membership with
	// R=2 replication and a bounded-rate handoff loop, then kills one
	// seed-chosen node mid-replay and restarts it after conviction.
	// The plan's gossip rules only fire in this mode, and the
	// replication/convergence/handoff invariants only bind here.
	Churn bool
	// Alg overrides the algorithm every node runs (zero value =
	// SpecLnAgrISPPM1, the historical default). The linearity audit
	// bounds high-water marks by the spec's DegreeCap.
	Alg core.AlgSpec
	// AdaptiveVictim runs the AdaptiveFDP variant of Alg on the
	// seed-chosen victim node (the one Churn kills), leaving the rest
	// pinned strict — the mixed-fleet shape of a staged rollout. The
	// victim's ledger is audited against the adaptive cap, everyone
	// else's against Alg's.
	AdaptiveVictim bool
}

// Churn-mode tuning. The kill lands early in the replay; the down
// window outlasts the suspicion timeout so the victim is convicted
// and ownership actually moves before the heal. The handoff budget is
// small enough that a budget-accounting bug would trip the audit on a
// tiny-scale run.
const (
	churnHandoffBps  = 1 << 20 // 1 MiB/s rebalancing budget per node
	churnSuspicion   = 250 * time.Millisecond
	churnKillAt      = 150 * time.Millisecond
	churnDownFor     = 600 * time.Millisecond
	convergenceGrace = 10 * time.Second
)

// Invariants is the harness's verdict, one field per claim.
type Invariants struct {
	// Linearity. DegreeCap is the largest per-file bound any node's
	// policy allows (0 is read as the historical 1): MaxOwnerHW must
	// stay within it, and OverCap lists nodes whose ledger exceeded
	// their *own* engine's cap — a mixed fleet is audited per node.
	DegreeCap        int      `json:"degree_cap,omitempty"`
	MaxOwnerHW       int      `json:"max_owner_hw"`      // must be <= DegreeCap (1 when unset)
	OverCap          []string `json:"over_cap"`          // must be empty
	NonOwnerDriven   []string `json:"non_owner_driven"`  // must be empty
	LinearViolations uint64   `json:"linear_violations"` // must be 0
	// Buffer lifecycle.
	BufLive     int64 `json:"buf_live"`     // must be 0 after teardown
	DrainedBufs int   `json:"drained_bufs"` // informational
	// Determinism: observed fault sites that the plan's pure selection
	// function would not pick — any entry is a selection-determinism
	// bug in the injector.
	UnselectedObserved []string `json:"unselected_observed"` // must be empty
	// Error/data integrity.
	DataMismatches   int      `json:"data_mismatches"`   // must be 0
	UnexpectedErrors []string `json:"unexpected_errors"` // must be empty
	InjectedErrors   int      `json:"injected_errors"`   // informational
	TransportErrors  int      `json:"transport_errors"`  // tolerated iff plan targets the wire
	DegradedReads    uint64   `json:"degraded_reads"`    // informational
	Wedged           bool     `json:"wedged"`            // must be false
	// Replication durability (churn mode): blocks acked with the
	// replicated flag, and any of them missing from every surviving
	// backing store after the churn.
	AckedReplicated int      `json:"acked_replicated"`  // informational
	LostAckedWrites []string `json:"lost_acked_writes"` // must be empty
	// Membership convergence after heal: members whose ring never
	// reconverged to the full fleet inside the grace window.
	Unconverged []string `json:"unconverged"` // must be empty
	// Bounded rebalancing: total handoff bytes, and any node whose
	// moved bytes exceeded its byte/s budget for the run's duration.
	HandoffBytes      uint64   `json:"handoff_bytes"`       // informational
	HandoffBlocks     uint64   `json:"handoff_blocks"`      // informational
	HandoffOverBudget []string `json:"handoff_over_budget"` // must be empty
}

// Check returns an error naming every violated invariant, or nil.
func (v Invariants) Check() error {
	var bad []string
	if v.Wedged {
		bad = append(bad, "replay wedged (timeout exceeded)")
	}
	cap := v.DegreeCap
	if cap == 0 {
		cap = 1
	}
	if v.MaxOwnerHW > cap {
		bad = append(bad, fmt.Sprintf("owner prefetch high-water %d > degree cap %d", v.MaxOwnerHW, cap))
	}
	if len(v.OverCap) > 0 {
		bad = append(bad, fmt.Sprintf("nodes exceeded their own degree cap: %v", v.OverCap))
	}
	if len(v.NonOwnerDriven) > 0 {
		bad = append(bad, fmt.Sprintf("non-owner drove prefetches: %v", v.NonOwnerDriven))
	}
	if v.LinearViolations > 0 {
		bad = append(bad, fmt.Sprintf("%d linearity violations", v.LinearViolations))
	}
	if v.BufLive != 0 {
		bad = append(bad, fmt.Sprintf("%d block buffers leaked", v.BufLive))
	}
	if len(v.UnselectedObserved) > 0 {
		bad = append(bad, fmt.Sprintf("%d observed faults outside the plan's selected set (first: %s)",
			len(v.UnselectedObserved), v.UnselectedObserved[0]))
	}
	if v.DataMismatches > 0 {
		bad = append(bad, fmt.Sprintf("%d data mismatches vs oracle", v.DataMismatches))
	}
	if len(v.UnexpectedErrors) > 0 {
		bad = append(bad, fmt.Sprintf("%d unexpected errors (first: %s)",
			len(v.UnexpectedErrors), v.UnexpectedErrors[0]))
	}
	if len(v.LostAckedWrites) > 0 {
		bad = append(bad, fmt.Sprintf("%d lost acked writes: replicated-acked blocks missing from every surviving store (first: %s)",
			len(v.LostAckedWrites), v.LostAckedWrites[0]))
	}
	if len(v.Unconverged) > 0 {
		bad = append(bad, fmt.Sprintf("membership failed to converge after heal: %v", v.Unconverged))
	}
	if len(v.HandoffOverBudget) > 0 {
		bad = append(bad, fmt.Sprintf("handoff exceeded its byte budget: %v", v.HandoffOverBudget))
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("chaos: invariants violated: %s", strings.Join(bad, "; "))
}

// Result is everything one chaos run produced.
type Result struct {
	Seed     uint64
	Nodes    int
	Requests int
	Reads    int
	ReadHits int
	Writes   int
	Redials  int
	Elapsed  time.Duration

	Injected int64
	Report   faultinject.Report
	// PlanDigest hashes the plan's full selected-site set over the
	// run's universe — a pure function of (seed, plan, trace,
	// topology). Two runs with the same seed report the same value, and
	// every observed fault site belongs to the set it hashes; this is
	// the token a failing seed is replayed against.
	PlanDigest uint64
	Close      map[lapcache.CloseReason]uint64
	Inv        Invariants
}

// String renders the result for logs and EXPERIMENTS.md.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: seed=%d nodes=%d requests=%d (reads=%d hits=%d writes=%d) redials=%d in %v\n",
		r.Seed, r.Nodes, r.Requests, r.Reads, r.ReadHits, r.Writes, r.Redials, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "faults: injected=%d sites=%d plan_digest=%016x observed_digest=%016x\n",
		r.Injected, len(r.Report.Sites), r.PlanDigest, r.Report.Digest())
	reasons := make([]string, 0, len(r.Close))
	for reason, n := range r.Close {
		reasons = append(reasons, fmt.Sprintf("%s=%d", reason, n))
	}
	sort.Strings(reasons)
	fmt.Fprintf(&b, "closes: %s\n", strings.Join(reasons, " "))
	fmt.Fprintf(&b, "invariants: ownerHW=%d/cap=%d overCap=%d nonOwnerDriven=%d linearViol=%d bufLive=%d mismatches=%d unexpected=%d injectedErrs=%d transportErrs=%d degraded=%d wedged=%v\n",
		r.Inv.MaxOwnerHW, r.Inv.DegreeCap, len(r.Inv.OverCap), len(r.Inv.NonOwnerDriven), r.Inv.LinearViolations, r.Inv.BufLive,
		r.Inv.DataMismatches, len(r.Inv.UnexpectedErrors), r.Inv.InjectedErrors,
		r.Inv.TransportErrors, r.Inv.DegradedReads, r.Inv.Wedged)
	fmt.Fprintf(&b, "churn: ackedReplicated=%d lostAcked=%d unconverged=%d handoff=%dB/%dblk overBudget=%d\n",
		r.Inv.AckedReplicated, len(r.Inv.LostAckedWrites), len(r.Inv.Unconverged),
		r.Inv.HandoffBytes, r.Inv.HandoffBlocks, len(r.Inv.HandoffOverBudget))
	if err := r.Inv.Check(); err != nil {
		fmt.Fprintf(&b, "VERDICT: FAIL — %v\n", err)
	} else {
		fmt.Fprintf(&b, "VERDICT: all invariants held\n")
	}
	return b.String()
}

// Run executes one chaos run end to end: generate, boot, replay under
// faults, tear down, audit. The returned error covers harness
// failures (could not boot, could not dial); invariant verdicts live
// in Result.Inv — callers decide how hard to fail via Inv.Check.
func Run(cfg Config) (Result, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 512
	}
	if cfg.CacheBlocks <= 0 {
		cfg.CacheBlocks = 4096
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.RedialBudget <= 0 {
		cfg.RedialBudget = 64
		if cfg.Churn {
			// Refused dials to the down victim burn budget fast; leave
			// enough for its client to recover after the restart.
			cfg.RedialBudget = 512
		}
	}
	plan := cfg.Plan
	if plan == nil {
		p := DefaultPlan(cfg.Seed)
		plan = &p
	}
	inj, err := faultinject.New(*plan)
	if err != nil {
		return Result{}, err
	}

	params := cfg.Charisma
	params.Seed = cfg.Seed
	tr, err := workload.GenerateCharisma(params)
	if err != nil {
		return Result{}, err
	}

	// The trace speaks bytes in its own block units (CHARISMA's 8 KiB);
	// the engines run on cfg.BlockSize. Convert each file's extent to
	// engine blocks once — this map IS the runtime keyspace, so the
	// engines and the selected-site enumeration must share it exactly.
	fileBlocks := make(map[blockdev.FileID]blockdev.BlockNo, len(tr.FileBlocks))
	for f, nb := range tr.FileBlocks {
		bytes := int64(nb) * params.BlockSize
		fileBlocks[f] = blockdev.BlockNo((bytes + int64(cfg.BlockSize) - 1) / int64(cfg.BlockSize))
	}

	res := Result{Seed: cfg.Seed, Nodes: cfg.Nodes}
	selected, planDigest := selectedSites(inj, cfg.Nodes, fileBlocks)
	res.PlanDigest = planDigest

	// Node i's stable name is nI; every fault label derives from these,
	// never from ephemeral ports, so site sets compare across runs.
	nodeName := func(i int) string { return fmt.Sprintf("n%d", i) }

	// Raw (unwrapped) stores, by node index, for the durability audit:
	// a Restart rebuilds node i's stack through this same closure, so
	// the slice always holds each node's *current* store — the killed
	// node's old store is gone, which is exactly the loss the
	// replication invariant must survive.
	var rawMu sync.Mutex
	rawStores := make([]*lapcache.MemStore, cfg.Nodes)

	// The victim is the node Churn kills; AdaptiveVictim also gives it
	// the feedback-controlled degree policy, strict everywhere else.
	victim := int(cfg.Seed % uint64(cfg.Nodes))
	baseAlg := cfg.Alg
	if baseAlg.Kind == core.AlgNone {
		baseAlg = core.SpecLnAgrISPPM1
	}
	algFor := func(i int) core.AlgSpec {
		if cfg.AdaptiveVictim && i == victim {
			return core.AdaptiveVariant(baseAlg, core.DefaultAdaptiveCap)
		}
		return baseAlg
	}

	mkcfg := func(i int, addrs []string) lapcache.Config {
		store := lapcache.NewMemStore(cfg.BlockSize, 0)
		rawMu.Lock()
		rawStores[i] = store
		rawMu.Unlock()
		return lapcache.Config{
			Alg:         algFor(i),
			BlockSize:   cfg.BlockSize,
			CacheBlocks: cfg.CacheBlocks,
			Workers:     8,
			QueueLen:    128,
			FileBlocks:  fileBlocks,
			// Not strict: a linearity breach must be reported as a
			// failed invariant, not a panic that kills the harness.
			StrictLinear: false,
			PoisonBufs:   true,
			Store:        inj.WrapStore(store, "store@"+nodeName(i)),
		}
	}
	opts := cluster.StartLocalOpts{
		TweakNode: func(i int, ncfg *cluster.Config) {
			peers := append([]string(nil), ncfg.Peers...)
			ncfg.PingInterval = 20 * time.Millisecond
			ncfg.BackoffMax = 200 * time.Millisecond
			if cfg.Churn {
				// Dynamic membership with R=2 replication. Every node
				// seeds off every other, so a restarted member — the
				// would-be seed included — re-announces itself and
				// refutes its own tombstone without operator action.
				ncfg.Dynamic = true
				for _, a := range peers {
					if a != ncfg.Self {
						ncfg.Join = append(ncfg.Join, a)
					}
				}
				ncfg.GossipInterval = 20 * time.Millisecond
				ncfg.SuspicionTimeout = churnSuspicion
				ncfg.HandoffBps = churnHandoffBps
				// Healthy calls here are sub-millisecond and injected
				// delays single-digit ms; one second of silence means a
				// handler wait cycle, which the timeout severs.
				ncfg.PeerCallTimeout = time.Second
				ncfg.GossipIntercept = func(to string) error {
					for j, a := range peers {
						if a == to {
							return inj.GossipFault(fmt.Sprintf("gossip:%s->%s", nodeName(i), nodeName(j)))
						}
					}
					return nil
				}
			}
			ncfg.DialFunc = func(addr string, conns, window int) (*lapclient.Pool, error) {
				to := -1
				for j, a := range peers {
					if a == addr {
						to = j
						break
					}
				}
				link := fmt.Sprintf("peer:%s->%s", nodeName(i), nodeName(to))
				if err := inj.DialFault(link); err != nil {
					return nil, err
				}
				return lapclient.DialPoolWith(addr, conns, window, func(c net.Conn) net.Conn {
					return inj.WrapConn(c, link)
				})
			}
		},
		TweakServer: func(i int, srv *lapcache.Server) {
			srv.IdleTimeout = 2 * time.Second
			// Sharded accept path on every node: the invariant audit
			// (linearity, close-reason taxonomy, buffer leaks) must hold
			// identically with conn→shard pinning in play.
			srv.Shards = 2
			srv.ConnWrap = func(c net.Conn) net.Conn {
				return inj.WrapConn(c, "accept@"+nodeName(i))
			}
		},
		// Replay while the mesh is still forming: forwards that outrun
		// an (injected-fault-ridden) dial degrade to the local store,
		// which is one of the paths this harness exists to exercise.
		NoWaitReady: true,
	}

	nodes, stop, err := cluster.StartLocalWith(cfg.Nodes, mkcfg, opts)
	if err != nil {
		return Result{}, err
	}
	stopped := false
	defer func() {
		if !stopped {
			stop()
		}
	}()

	// Replay under a wedge watchdog: the run must terminate on its own
	// inside the timeout, deadlines and degrade paths doing their job.
	rep := newReplayer(nodes, inj, *plan, cfg, tr)
	done := make(chan struct{})
	start := time.Now()
	go func() { rep.run(); close(done) }()

	// Churn: kill one seed-chosen node under the replay's feet, leave
	// it down past conviction, then restart it on the same address.
	// At most one node is ever down — the bound R=2 replication is
	// sound against.
	churnDone := make(chan struct{})
	var churnErr error
	if cfg.Churn {
		go func() {
			defer close(churnDone)
			time.Sleep(churnKillAt)
			nodes[victim].Kill()
			time.Sleep(churnDownFor)
			for attempt := 0; ; attempt++ {
				churnErr = nodes[victim].Restart(10 * time.Second)
				if churnErr == nil || attempt == 4 {
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
		}()
	} else {
		close(churnDone)
	}

	select {
	case <-done:
	case <-time.After(cfg.Timeout):
		res.Inv.Wedged = true
	}
	res.Elapsed = time.Since(start)
	<-churnDone
	if churnErr != nil {
		return res, fmt.Errorf("chaos: churn restart: %w", churnErr)
	}
	rep.closeClients()

	var unexpectedN int
	res.Requests, res.Reads, res.ReadHits, res.Writes, res.Redials,
		res.Inv.DataMismatches, res.Inv.InjectedErrors, res.Inv.TransportErrors,
		unexpectedN, res.Inv.UnexpectedErrors = rep.stats()
	if unexpectedN > len(res.Inv.UnexpectedErrors) {
		res.Inv.UnexpectedErrors = append(res.Inv.UnexpectedErrors,
			fmt.Sprintf("... and %d more", unexpectedN-len(res.Inv.UnexpectedErrors)))
	}

	// Heal audit: every member's ring must reconverge to the full
	// fleet — instant in static mode, bounded by gossip (the restarted
	// node refuting its own tombstone) after churn.
	want := make([]string, 0, len(nodes))
	for _, m := range nodes {
		want = append(want, m.Addr)
	}
	sort.Strings(want)
	healDeadline := time.Now().Add(convergenceGrace)
	for {
		res.Inv.Unconverged = res.Inv.Unconverged[:0]
		for _, m := range nodes {
			got := append([]string(nil), m.Node.MemberAddrs()...)
			sort.Strings(got)
			if !equalAddrs(got, want) {
				res.Inv.Unconverged = append(res.Inv.Unconverged,
					fmt.Sprintf("n%d sees %d/%d members: %v", m.Index, len(got), len(want), got))
			}
		}
		if len(res.Inv.Unconverged) == 0 || time.Now().After(healDeadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Audit the live cluster before teardown: counters, ledgers,
	// ownership, handoff budgets.
	res.Close = make(map[lapcache.CloseReason]uint64)
	for _, m := range nodes {
		snap := m.Engine.Snapshot()
		res.Inv.DegradedReads += snap.RemoteFallbacks
		res.Inv.LinearViolations += snap.LinearViolations
		for reason, n := range m.Server.CloseCounts() {
			res.Close[reason] += n
		}
		// Each node's ledger is bounded by its own engine's policy cap:
		// in a mixed fleet (AdaptiveVictim) the strict nodes still may
		// not exceed 1 even though the fleet-wide DegreeCap is wider.
		nodeCap := m.Engine.DegreeCap()
		if nodeCap > res.Inv.DegreeCap {
			res.Inv.DegreeCap = nodeCap
		}
		for f, hw := range m.Engine.Ledger().HighWaters() {
			if hw == 0 {
				continue
			}
			// Ownership is audited against every ring epoch the node has
			// installed: a node legitimately holds prefetch history for a
			// file it owned before the ring moved.
			if !m.Node.OwnedEver(f) {
				res.Inv.NonOwnerDriven = append(res.Inv.NonOwnerDriven,
					fmt.Sprintf("file %d on non-owner %s (hw=%d)", f, m.Addr, hw))
			}
			if nodeCap > 0 && hw > nodeCap {
				res.Inv.OverCap = append(res.Inv.OverCap,
					fmt.Sprintf("file %d on n%d: hw=%d > cap %d", f, m.Index, hw, nodeCap))
			}
			if hw > res.Inv.MaxOwnerHW {
				res.Inv.MaxOwnerHW = hw
			}
		}
		hs := m.Node.HandoffStats()
		res.Inv.HandoffBytes += hs.BytesMoved
		res.Inv.HandoffBlocks += hs.BlocksMoved
		if bps := m.Node.HandoffBudget(); bps > 0 {
			// Allowed = rate x wall-clock since boot, plus the burst the
			// token bucket seeds and one extra second of slack for clock
			// skew between this audit and the node's own accounting.
			allowed := uint64(float64(bps)*time.Since(start).Seconds()) + uint64(bps/8) + uint64(bps)
			if hs.BytesMoved > allowed {
				res.Inv.HandoffOverBudget = append(res.Inv.HandoffOverBudget,
					fmt.Sprintf("n%d moved %d bytes, budget %d B/s allows %d", m.Index, hs.BytesMoved, bps, allowed))
			}
		}
	}
	sort.Strings(res.Inv.NonOwnerDriven)
	sort.Strings(res.Inv.OverCap)

	// Durability audit: every block the cluster acked as replicated
	// must still be present in at least one current raw store.
	// MemStore.Has distinguishes a persisted block from a synthesized
	// fill pattern — the read oracle alone cannot see this loss, since
	// a store that dropped the write would synthesize the exact bytes
	// the oracle expects.
	acked := rep.ackedBlocks()
	res.Inv.AckedReplicated = len(acked)
	rawMu.Lock()
	stores := append([]*lapcache.MemStore(nil), rawStores...)
	rawMu.Unlock()
	lost := 0
	for _, id := range acked {
		present := false
		for _, st := range stores {
			if st != nil && st.Has(id) {
				present = true
				break
			}
		}
		if !present {
			lost++
			if len(res.Inv.LostAckedWrites) < maxUnexpected {
				res.Inv.LostAckedWrites = append(res.Inv.LostAckedWrites, fmt.Sprintf("f%d:%d", id.File, id.Block))
			}
		}
	}
	if lost > len(res.Inv.LostAckedWrites) {
		res.Inv.LostAckedWrites = append(res.Inv.LostAckedWrites,
			fmt.Sprintf("... and %d more", lost-len(res.Inv.LostAckedWrites)))
	}

	// Teardown, then the leak audit: with servers drained, engines
	// stopped and caches cleared, every Get has seen its final Release.
	stop()
	stopped = true
	for _, m := range nodes {
		res.Inv.DrainedBufs += m.Engine.DrainCache()
		res.Inv.BufLive += m.Engine.BufLive()
	}

	res.Injected = inj.Total()
	res.Report = inj.Report()
	res.Inv.UnselectedObserved = unselectedObserved(res.Report, selected)
	return res, nil
}

// equalAddrs reports whether two sorted address lists are identical.
func equalAddrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// oracleCheck verifies data against the deterministic fill pattern,
// returning the index of the first corrupt byte or -1. Every block of
// every file always reads back as FillPattern(b): never-written blocks
// synthesize it and replayed writes carry nil payloads, which the
// server materializes as the same pattern.
func oracleCheck(f blockdev.FileID, start blockdev.BlockNo, blockSize int, data []byte) int {
	want := make([]byte, blockSize)
	for i := 0; i*blockSize < len(data); i++ {
		b := blockdev.BlockID{File: f, Block: start + blockdev.BlockNo(i)}
		lapcache.FillPattern(b, want)
		chunk := data[i*blockSize:]
		if len(chunk) > blockSize {
			chunk = chunk[:blockSize]
		}
		for j := range chunk {
			if chunk[j] != want[j] {
				return i*blockSize + j
			}
		}
	}
	return -1
}
