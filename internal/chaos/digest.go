package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/blockdev"
	"repro/internal/faultinject"
)

// selectedSites enumerates the plan's full faulted-site set over a
// run's concrete universe — every (node, block) store site in the
// run's footprint, every directed peer link, every accept label — by
// asking the pure selection function, in a fixed order. fileBlocks
// must be in ENGINE block units (the trace's byte extent divided by
// the engine block size), because that is the keyspace the runtime
// store wrappers evaluate. Every rule that matches a site contributes
// an entry: eval fires the first matching rule with budget left, so
// once an early rule's budget is spent the same site faults under a
// later index — the observed set ranges over all matches. The
// returned set is what every observed fault must belong to; the
// digest over it is the run's reproducibility token: a pure function
// of (plan, trace, topology), independent of any execution.
func selectedSites(inj *faultinject.Injector, nnodes int, fileBlocks map[blockdev.FileID]blockdev.BlockNo) (map[string]int, uint64) {
	sites := make(map[string]int)
	add := func(site string, key uint64, label string, file int32) {
		for _, ri := range inj.MatchingRules(site, key, label, file) {
			sites[fmt.Sprintf("%d|%s|%s", ri, site, label)] = ri
		}
	}

	files := make([]blockdev.FileID, 0, len(fileBlocks))
	for f := range fileBlocks {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })

	for i := 0; i < nnodes; i++ {
		node := fmt.Sprintf("store@n%d", i)
		for _, f := range files {
			for b := blockdev.BlockNo(0); b < fileBlocks[f]; b++ {
				id := blockdev.BlockID{File: f, Block: b}
				label := fmt.Sprintf("%s f%d:%d", node, f, b)
				key := faultinject.StoreKey(node, id)
				add(faultinject.SiteStoreRead, key, label, int32(f))
				add(faultinject.SiteStoreWrite, key, label, int32(f))
			}
		}
	}
	links := make([]string, 0, nnodes*nnodes)
	for i := 0; i < nnodes; i++ {
		links = append(links, fmt.Sprintf("accept@n%d", i))
		for j := 0; j < nnodes; j++ {
			if i != j {
				links = append(links, fmt.Sprintf("peer:n%d->n%d", i, j))
			}
		}
	}
	for _, link := range links {
		key := faultinject.LabelKey(link)
		add(faultinject.SiteConnSend, key, link, -1)
		add(faultinject.SiteConnRecv, key, link, -1)
		add(faultinject.SitePeerDial, key, link, -1)
	}
	// Gossip links are their own namespace: every directed pair, the
	// keyspace GossipFault hashes. Enumerated unconditionally — in
	// static mode no gossip runs, so the entries are selectable but
	// never observed, which keeps the digest identical across modes.
	for i := 0; i < nnodes; i++ {
		for j := 0; j < nnodes; j++ {
			if i == j {
				continue
			}
			link := fmt.Sprintf("gossip:n%d->n%d", i, j)
			add(faultinject.SiteGossip, faultinject.LabelKey(link), link, -1)
		}
	}

	keys := make([]string, 0, len(sites))
	for k := range sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintln(h, k)
	}
	return sites, h.Sum64()
}

// unselectedObserved returns every observed report site that the
// selected set does not contain — always empty unless selection has a
// determinism bug (an observed fault at a site the plan, evaluated
// purely, would not pick).
func unselectedObserved(rep faultinject.Report, selected map[string]int) []string {
	var out []string
	for _, s := range rep.Sites {
		k := fmt.Sprintf("%d|%s|%s", s.Rule, s.Site, s.Label)
		if _, ok := selected[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
