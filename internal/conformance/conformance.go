// Package conformance defines the cross-predictor invariant suite: a
// golden micro-workload and a live-engine replay script that every
// algorithm registered in core.NamedAlgorithms must survive. The suite
// itself lives in conformance_test.go; this file holds the shared
// fixtures so other packages (and future harnesses) can replay the
// exact same streams.
//
// The fixtures deliberately mix the regimes the repo's predictors
// specialise in — long sequential runs (OBA territory), a recurring
// scattered association (Mithril/Markov territory), and uniform noise
// (nobody's territory) — so a predictor cannot pass by only ever
// seeing its own best case.
package conformance

import (
	"repro/internal/blockdev"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MicroTrace builds the golden simulation workload: small enough that
// the whole NamedAlgorithms sweep stays fast under -race, rich enough
// that every predictor both fires and misfires.
//
// Layout: file 0 is scanned sequentially by two clients; file 1 gets a
// recurring root→assets association pattern from two clients; file 2
// absorbs uniform random reads and writes from two more. The result is
// deterministic in nodes and blockSize.
func MicroTrace(nodes int, blockSize int64) *workload.Trace {
	const (
		scanBlocks  = 160
		assocBlocks = 96
		noiseBlocks = 128
		thinkMs     = 5
	)
	tr := &workload.Trace{
		Name: "conformance-micro",
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{
			0: scanBlocks,
			1: assocBlocks,
			2: noiseBlocks,
		},
	}
	rng := sim.NewRNG(42)
	addProc := func(node int, steps func(crng *sim.RNG, emit func(kind workload.OpKind, file blockdev.FileID, block, size blockdev.BlockNo))) {
		crng := rng.Split()
		proc := workload.Process{Node: blockdev.NodeID(node % nodes)}
		emit := func(kind workload.OpKind, file blockdev.FileID, block, size blockdev.BlockNo) {
			proc.Steps = append(proc.Steps, workload.Step{
				Think:  sim.Duration(crng.Exp(float64(sim.Milliseconds(thinkMs)))),
				Kind:   kind,
				File:   file,
				Offset: int64(block) * blockSize,
				Size:   int64(size) * blockSize,
			})
		}
		steps(crng, emit)
		tr.Procs = append(tr.Procs, proc)
	}

	// Two sequential scanners, offset from each other, over file 0.
	for c := 0; c < 2; c++ {
		start := blockdev.BlockNo(c * scanBlocks / 2)
		addProc(c, func(crng *sim.RNG, emit func(workload.OpKind, blockdev.FileID, blockdev.BlockNo, blockdev.BlockNo)) {
			for i := blockdev.BlockNo(0); i < scanBlocks/2; i += 2 {
				emit(workload.OpRead, 0, (start+i)%scanBlocks, 2)
			}
		})
	}

	// Two association clients on file 1: each loops a fixed root→asset
	// chain whose members are scattered across the file, with a fresh
	// noise block between iterations to break exact-history matching.
	assoc := [][]blockdev.BlockNo{
		{5, 40, 17, 88},
		{60, 9, 73},
	}
	for c := 0; c < 2; c++ {
		chain := assoc[c]
		addProc(2+c, func(crng *sim.RNG, emit func(workload.OpKind, blockdev.FileID, blockdev.BlockNo, blockdev.BlockNo)) {
			for rep := 0; rep < 12; rep++ {
				for _, b := range chain {
					emit(workload.OpRead, 1, b, 1)
				}
				emit(workload.OpRead, 1, blockdev.BlockNo(crng.Intn(assocBlocks)), 1)
			}
		})
	}

	// Two noise clients on file 2: uniform point reads, some rewrites.
	for c := 0; c < 2; c++ {
		addProc(4+c, func(crng *sim.RNG, emit func(workload.OpKind, blockdev.FileID, blockdev.BlockNo, blockdev.BlockNo)) {
			for i := 0; i < 40; i++ {
				b := blockdev.BlockNo(crng.Intn(noiseBlocks))
				emit(workload.OpRead, 2, b, 1)
				if crng.Float64() < 0.25 {
					emit(workload.OpWrite, 2, b, 1)
				}
			}
		})
	}
	return tr
}

// ReadStep is one demand read of the live-engine replay script.
type ReadStep struct {
	File  blockdev.FileID
	Block blockdev.BlockNo
	Count blockdev.BlockNo
}

// EngineFiles is the file table the replay script assumes; pass it as
// the engine's FileBlocks so drivers know where chains must stop.
func EngineFiles() map[blockdev.FileID]blockdev.BlockNo {
	return map[blockdev.FileID]blockdev.BlockNo{1: 128, 2: 64, 3: 64}
}

// EngineScript returns the demand-read script replayed against a live
// engine: a sequential scan (file 1), a looped scattered association
// (file 2), and uniform noise (file 3), interleaved. Deterministic.
func EngineScript() []ReadStep {
	var steps []ReadStep
	rng := sim.NewRNG(7)
	chain := []blockdev.BlockNo{3, 41, 12, 57}
	seq := blockdev.BlockNo(0)
	for i := 0; i < 60; i++ {
		steps = append(steps, ReadStep{File: 1, Block: seq % 128, Count: 2})
		seq += 2
		steps = append(steps, ReadStep{File: 2, Block: chain[i%len(chain)], Count: 1})
		steps = append(steps, ReadStep{File: 3, Block: blockdev.BlockNo(rng.Intn(64)), Count: 1})
	}
	return steps
}
