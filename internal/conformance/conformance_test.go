package conformance

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/lapcache"
)

// TestSimConformance sweeps every registered algorithm over the golden
// micro-trace and holds each to the suite's simulation invariants:
//
//   - determinism: two runs from the same seed produce identical
//     Results, float for float and counter for counter;
//   - throttle: the machine-wide per-file outstanding-prefetch
//     high-water never exceeds the spec's DegreeCap.
func TestSimConformance(t *testing.T) {
	s := experiment.TinyScale()
	tr := MicroTrace(s.NOW.Nodes, s.NOW.BlockSize)
	for _, alg := range core.NamedAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			t.Parallel()
			cell := experiment.Cell{FS: experiment.PAFS, Workload: experiment.Charisma, Alg: alg, CacheMB: 1}
			r1, err := experiment.RunTrace(tr, s.NOW, cell, s.WarmFraction)
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			r2, err := experiment.RunTrace(tr, s.NOW, cell, s.WarmFraction)
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("same seed, different results:\n  run 1: %+v\n  run 2: %+v", r1, r2)
			}
			if cap := alg.DegreeCap(); cap > 0 && r1.MaxFilePrefetchHW > cap {
				t.Errorf("per-file prefetch high-water %d exceeds policy cap %d", r1.MaxFilePrefetchHW, cap)
			}
			if !alg.Prefetches() && r1.PrefetchIssued != 0 {
				t.Errorf("NP issued %d prefetches", r1.PrefetchIssued)
			}
		})
	}
}

// TestEngineConformance replays the demand script against a live
// engine under every registered algorithm, with buffer poisoning on
// throughout (a double-release or use-after-release panics the run),
// and checks the teardown invariants: the ledger saw no violations and
// never exceeded the cap, and after Shutdown + DrainCache not one
// block buffer is still live.
func TestEngineConformance(t *testing.T) {
	for _, alg := range core.NamedAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			t.Parallel()
			const blockSize = 512
			e, err := lapcache.New(lapcache.Config{
				Alg:         alg,
				Store:       lapcache.NewMemStore(blockSize, 0),
				BlockSize:   blockSize,
				CacheBlocks: 48, // smaller than the script's footprint: evictions happen
				FileBlocks:  EngineFiles(),
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			e.SetPoisonBufs(true)
			for _, st := range EngineScript() {
				if _, _, err := e.Read(st.File, st.Block, int32(st.Count)); err != nil {
					t.Fatalf("read %d:%d: %v", st.File, st.Block, err)
				}
			}
			// Let in-flight prefetch chains run dry before auditing.
			deadline := time.Now().Add(10 * time.Second)
			for {
				s := e.Snapshot()
				if s.PrefetchCompleted+s.PrefetchCancelled+s.PrefetchDupSkipped >= s.PrefetchIssued {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("prefetch chains never quiesced: %s", s)
				}
				time.Sleep(time.Millisecond)
			}

			snap := e.Snapshot()
			if snap.LinearViolations != 0 {
				t.Errorf("%d linearity violations", snap.LinearViolations)
			}
			if cap := alg.DegreeCap(); cap > 0 {
				if hw := e.Ledger().MaxHighWater(); hw > cap {
					t.Errorf("ledger high-water %d exceeds policy cap %d", hw, cap)
				}
			}
			e.Shutdown()
			e.DrainCache()
			if live := e.BufLive(); live != 0 {
				t.Errorf("BufLive = %d after drain, want 0 (leaked or double-held buffers)", live)
			}
		})
	}
}

// TestMicroTraceValid pins the golden trace itself: it must validate
// against the tiny machine and be deterministic, or every result above
// is meaningless.
func TestMicroTraceValid(t *testing.T) {
	s := experiment.TinyScale()
	tr := MicroTrace(s.NOW.Nodes, s.NOW.BlockSize)
	if err := tr.Validate(s.NOW.Nodes, s.NOW.BlockSize); err != nil {
		t.Fatalf("micro trace invalid: %v", err)
	}
	if !reflect.DeepEqual(tr, MicroTrace(s.NOW.Nodes, s.NOW.BlockSize)) {
		t.Fatal("micro trace not deterministic")
	}
	if got := len(EngineScript()); got != 180 {
		t.Fatalf("engine script has %d steps, want 180", got)
	}
	if !reflect.DeepEqual(EngineScript(), EngineScript()) {
		t.Fatal("engine script not deterministic")
	}
}
