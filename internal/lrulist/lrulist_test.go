package lrulist

import (
	"container/list"
	"math/rand"
	"testing"
)

// elem is a test element that lives on two lists at once, like a cache
// copy on its node list and the global list.
type elem struct {
	id   int
	a, b Links[elem]
}

func newLists() (la, lb List[elem]) {
	la = New[elem](func(e *elem) *Links[elem] { return &e.a })
	lb = New[elem](func(e *elem) *Links[elem] { return &e.b })
	return la, lb
}

func order(l *List[elem]) []int {
	var out []int
	for e := l.Front(); e != nil; e = l.Next(e) {
		out = append(out, e.id)
	}
	return out
}

func equal(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestPushTouchRemoveOrder(t *testing.T) {
	la, _ := newLists()
	es := make([]*elem, 5)
	for i := range es {
		es[i] = &elem{id: i}
		la.PushBack(es[i])
	}
	if got := order(&la); !equal(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("after pushes: %v", got)
	}
	la.Touch(es[1]) // 0 2 3 4 1
	la.Touch(es[0]) // 2 3 4 1 0
	la.Remove(es[3])
	if got := order(&la); !equal(got, []int{2, 4, 1, 0}) {
		t.Fatalf("after touches+remove: %v", got)
	}
	if la.Len() != 4 {
		t.Errorf("Len = %d, want 4", la.Len())
	}
	if la.Front().id != 2 || la.Back().id != 0 {
		t.Errorf("Front/Back = %d/%d, want 2/0", la.Front().id, la.Back().id)
	}
	// Touching the MRU element is a no-op.
	la.Touch(es[0])
	if got := order(&la); !equal(got, []int{2, 4, 1, 0}) {
		t.Fatalf("touch of MRU reordered: %v", got)
	}
}

// TestEvictionOrderUnderInterleavedTouchRemove drives a random mix of
// push/touch/remove operations against container/list as a model and
// checks the LRU→MRU order matches after every step — the eviction
// order is exactly the front-to-back walk.
func TestEvictionOrderUnderInterleavedTouchRemove(t *testing.T) {
	la, _ := newLists()
	model := list.New()
	handles := make(map[int]*list.Element)
	var live []*elem
	rng := rand.New(rand.NewSource(42))
	nextID := 0

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(live) == 0: // push
			e := &elem{id: nextID}
			nextID++
			la.PushBack(e)
			handles[e.id] = model.PushBack(e.id)
			live = append(live, e)
		case op == 1: // touch
			e := live[rng.Intn(len(live))]
			la.Touch(e)
			model.MoveToBack(handles[e.id])
		default: // remove
			i := rng.Intn(len(live))
			e := live[i]
			la.Remove(e)
			model.Remove(handles[e.id])
			delete(handles, e.id)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if la.Len() != model.Len() {
			t.Fatalf("step %d: Len = %d, model %d", step, la.Len(), model.Len())
		}
		want := make([]int, 0, model.Len())
		for m := model.Front(); m != nil; m = m.Next() {
			want = append(want, m.Value.(int))
		}
		if got := order(&la); !equal(got, want) {
			t.Fatalf("step %d: order %v, model %v", step, got, want)
		}
	}
}

// TestTwoListsIndependent verifies one element can sit on two lists
// with independent ordering — the cachesim node/global split.
func TestTwoListsIndependent(t *testing.T) {
	la, lb := newLists()
	es := []*elem{{id: 0}, {id: 1}, {id: 2}}
	for _, e := range es {
		la.PushBack(e)
		lb.PushBack(e)
	}
	la.Touch(es[0]) // a: 1 2 0; b unchanged
	if got := order(&la); !equal(got, []int{1, 2, 0}) {
		t.Fatalf("list a: %v", got)
	}
	if got := order(&lb); !equal(got, []int{0, 1, 2}) {
		t.Fatalf("list b: %v", got)
	}
	lb.Remove(es[1]) // b: 0 2; a keeps 1
	if got := order(&la); !equal(got, []int{1, 2, 0}) {
		t.Fatalf("list a after b-remove: %v", got)
	}
	if got := order(&lb); !equal(got, []int{0, 2}) {
		t.Fatalf("list b after remove: %v", got)
	}
}

func TestZeroLinksIsUnlinked(t *testing.T) {
	la, _ := newLists()
	e := &elem{id: 7}
	la.PushBack(e)
	la.Remove(e)
	if la.Len() != 0 || la.Front() != nil || la.Back() != nil {
		t.Fatal("list not empty after removing sole element")
	}
	// Re-insert after removal must work (links were cleared).
	la.PushBack(e)
	if la.Len() != 1 || la.Front() != e {
		t.Fatal("re-insert after remove failed")
	}
}
