// Package lrulist provides an intrusive doubly linked list ordered by
// recency: least recently used at the front, most recently used at the
// back. "Intrusive" means the links live inside the element itself, so
// membership costs no allocation per operation and one element can sit
// on several lists at once through distinct Links fields — exactly what
// the cooperative cache needs (every copy is on its node's list and,
// under global management, on a machine-wide list too) and what the
// lapcache runtime shards reuse without copy-pasting the machinery.
//
// The list itself is not synchronized; callers that share a list across
// goroutines (the lapcache shards) guard it with their own mutex.
package lrulist

// Links is the pair of neighbour pointers embedded in an element, one
// Links field per list the element can belong to. The zero value is an
// unlinked element.
type Links[T any] struct {
	prev, next *T
}

// List is one recency list over elements of type T. The zero value is
// not usable; construct with New.
type List[T any] struct {
	head, tail *T
	len        int
	// links maps an element to the Links field backing THIS list,
	// selecting which of the element's link pairs the list threads.
	links func(*T) *Links[T]
}

// New returns an empty list threading the Links field selected by
// links. The selector must be pure: the same element must always yield
// the same field.
func New[T any](links func(*T) *Links[T]) List[T] {
	if links == nil {
		panic("lrulist: nil links selector")
	}
	return List[T]{links: links}
}

// Len returns the number of linked elements.
func (l *List[T]) Len() int { return l.len }

// Front returns the least recently used element, or nil when empty.
func (l *List[T]) Front() *T { return l.head }

// Back returns the most recently used element, or nil when empty.
func (l *List[T]) Back() *T { return l.tail }

// Next returns the element after e in LRU→MRU order, or nil at the
// back. It lets eviction scans walk from the coldest element without
// reaching into the links.
func (l *List[T]) Next(e *T) *T { return l.links(e).next }

// PushBack appends e as the most recently used element. e must not
// already be on this list.
func (l *List[T]) PushBack(e *T) {
	ln := l.links(e)
	ln.prev = l.tail
	ln.next = nil
	if l.tail != nil {
		l.links(l.tail).next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.len++
}

// Remove unlinks e, which must be on this list.
func (l *List[T]) Remove(e *T) {
	ln := l.links(e)
	if ln.prev != nil {
		l.links(ln.prev).next = ln.next
	} else {
		l.head = ln.next
	}
	if ln.next != nil {
		l.links(ln.next).prev = ln.prev
	} else {
		l.tail = ln.prev
	}
	ln.prev, ln.next = nil, nil
	l.len--
}

// Touch moves e, which must be on this list, to the most recently used
// position.
func (l *List[T]) Touch(e *T) {
	if l.tail == e {
		return
	}
	l.Remove(e)
	l.PushBack(e)
}
