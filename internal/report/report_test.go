package report

import (
	"strings"
	"testing"

	"repro/internal/experiment"
)

func buildTiny(t *testing.T) *Report {
	t.Helper()
	suite := experiment.NewSuite(experiment.TinyScale(), 0)
	r, err := Build(suite)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBuildProducesAllChecks(t *testing.T) {
	r := buildTiny(t)
	want := []string{
		"fig4-prefetching-helps", "fig4-groups", "fig4-speedup",
		"fig4-small-cache-crossover", "fig4-order-insensitive",
		"fig5-flooding", "fig6-aggressive-wins", "fig7-xfs-tracks-pafs",
		"fig8-pafs-traffic", "fig9-xfs-traffic", "fig10-11-sprite-traffic",
		"table2-writes-per-block", "claim-misprediction",
		"claim-fallback", "claim-xfs-volume", "claim-linearity",
	}
	got := make(map[string]Check)
	for _, c := range r.Checks {
		got[c.ID] = c
	}
	for _, id := range want {
		c, ok := got[id]
		if !ok {
			t.Errorf("missing check %s", id)
			continue
		}
		if c.Paper == "" || c.Measured == "" {
			t.Errorf("check %s incomplete: %+v", id, c)
		}
		switch c.Verdict {
		case Match, Partial, Differ:
		default:
			t.Errorf("check %s has verdict %q", id, c.Verdict)
		}
	}
	if len(r.Checks) != len(want) {
		t.Errorf("%d checks, want %d", len(r.Checks), len(want))
	}
}

func TestBuildPopulatesAllFigures(t *testing.T) {
	r := buildTiny(t)
	for _, id := range experiment.FigureIDs() {
		if _, ok := r.Figures[id]; !ok {
			t.Errorf("missing figure %s", id)
		}
	}
}

func TestRenderStructure(t *testing.T) {
	out := buildTiny(t).Render()
	for _, want := range []string{
		"# EXPERIMENTS", "## Verdict summary", "## Paper Table 2",
		"## Measured figures", "| check | paper says | measured | verdict |",
		"fig4-speedup", "11.7", // a paper Table 2 value
		"paper Fig. 4",
		"## Observability", "claim-linearity", "max out/file",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestObservabilitySection(t *testing.T) {
	r := buildTiny(t)
	if len(r.Observability) == 0 {
		t.Fatal("no observability example cells collected")
	}
	var sawPafs, sawXfs bool
	for _, res := range r.Observability {
		switch res.Cell.FS {
		case experiment.PAFS:
			sawPafs = true
			if res.MaxFilePrefetchHW > 1 {
				t.Errorf("%s: PAFS high-water %d > 1", res.Cell, res.MaxFilePrefetchHW)
			}
		case experiment.XFS:
			sawXfs = true
		}
	}
	if !sawPafs || !sawXfs {
		t.Errorf("example cells cover pafs=%v xfs=%v, want both", sawPafs, sawXfs)
	}
	for _, c := range r.Checks {
		if c.ID == "claim-linearity" {
			if c.Verdict != Match {
				t.Errorf("claim-linearity = %s (%s), want MATCH", c.Verdict, c.Note)
			}
			return
		}
	}
	t.Fatal("claim-linearity check missing")
}

func TestPaperTable2Embeds(t *testing.T) {
	if len(PaperTable2) != 4 {
		t.Fatalf("%d Table 2 rows, want 4", len(PaperTable2))
	}
	// Spot-check the published values.
	if PaperTable2["NP"][4] != 11.7 || PaperTable2["Ln_Agr_IS_PPM:3"][0] != 4.0 {
		t.Error("Table 2 values wrong")
	}
	if PaperTable2Sizes != [5]int{1, 2, 4, 8, 16} {
		t.Error("Table 2 sizes wrong")
	}
}
