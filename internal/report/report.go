// Package report generates the paper-versus-measured reproduction
// record (EXPERIMENTS.md): it embeds the quantitative values the paper
// states (Table 2 and the in-text claims) and the qualitative shapes
// its figures argue from, evaluates each against a finished experiment
// suite, and renders a markdown report with a verdict per item.
package report

import (
	"fmt"
	"strings"

	"repro/internal/experiment"
)

// PaperTable2 is the paper's Table 2 verbatim: average number of times
// a block is written to disk, CHARISMA under PAFS, by per-node cache
// size.
var PaperTable2 = map[string][5]float64{
	"NP":              {5.9, 8.8, 11.7, 11.7, 11.7},
	"Ln_Agr_OBA":      {5.2, 7.9, 10.4, 10.9, 11.0},
	"Ln_Agr_IS_PPM:1": {4.2, 7.2, 10.4, 10.5, 10.6},
	"Ln_Agr_IS_PPM:3": {4.0, 7.6, 10.1, 10.5, 10.5},
}

// PaperTable2Sizes are Table 2's cache sizes in MB.
var PaperTable2Sizes = [5]int{1, 2, 4, 8, 16}

// Verdict grades one reproduced item.
type Verdict string

// Verdicts.
const (
	Match   Verdict = "MATCH"   // the paper's shape/claim holds
	Partial Verdict = "PARTIAL" // holds in direction, off in degree
	Differ  Verdict = "DIFFERS" // does not hold in this reproduction
)

// Check is one evaluated item of the record.
type Check struct {
	ID       string // e.g. "fig4-groups"
	Paper    string // what the paper reports
	Measured string // what this reproduction measured
	Verdict  Verdict
	Note     string // explanation, especially for PARTIAL/DIFFERS
}

// Report is the full reproduction record.
type Report struct {
	ScaleName string
	Figures   map[string]experiment.Figure
	Checks    []Check
	// Observability holds example cell results whose timeliness and
	// utilization counters the record's Observability section tabulates.
	Observability []experiment.Result
}

// Build runs (or reuses) every sweep the record needs and evaluates
// all checks.
func Build(suite *experiment.Suite) (*Report, error) {
	r := &Report{
		ScaleName: suite.Scale.Name,
		Figures:   make(map[string]experiment.Figure),
	}
	for _, id := range experiment.FigureIDs() {
		fig, err := suite.Figure(id)
		if err != nil {
			return nil, err
		}
		r.Figures[id] = fig
	}
	r.checkFig4(suite)
	r.checkFig5()
	r.checkSprite()
	r.checkDiskTraffic()
	r.checkTable2()
	if err := r.checkClaims(suite); err != nil {
		return nil, err
	}
	if err := r.checkLinearity(suite); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Report) add(c Check) { r.Checks = append(r.Checks, c) }

// value reads one figure point, panicking on absence (Build populated
// every figure from the same sweeps).
func (r *Report) value(fig, alg string, mb int) float64 {
	v, ok := r.Figures[fig].Value(alg, mb)
	if !ok {
		panic(fmt.Sprintf("report: missing %s/%s@%dMB", fig, alg, mb))
	}
	return v
}

func (r *Report) sizes(fig string) []int { return r.Figures[fig].Sizes }

// largest returns the sweep's largest cache size.
func (r *Report) largest(fig string) int {
	s := r.sizes(fig)
	return s[len(s)-1]
}

// checkFig4 evaluates the paper's reading of Figure 4 (§5.2).
func (r *Report) checkFig4(suite *experiment.Suite) {
	// 1. Every prefetching algorithm beats NP.
	worstRatio := 1.0
	for _, alg := range []string{"OBA", "Ln_Agr_OBA", "IS_PPM:1", "Ln_Agr_IS_PPM:1", "IS_PPM:3", "Ln_Agr_IS_PPM:3"} {
		for _, mb := range r.sizes("fig4") {
			ratio := r.value("fig4", alg, mb) / r.value("fig4", "NP", mb)
			if ratio > worstRatio {
				worstRatio = ratio
			}
		}
	}
	v := Match
	note := ""
	if worstRatio > 1.05 {
		v = Partial
		note = "some (algorithm, size) points fall slightly behind NP"
	}
	r.add(Check{
		ID:       "fig4-prefetching-helps",
		Paper:    "all prefetching algorithms achieve better performance than NP",
		Measured: fmt.Sprintf("worst prefetching/NP read-time ratio %.2f", worstRatio),
		Verdict:  v, Note: note,
	})

	// 2. The aggressive group is the best at the largest cache.
	large := r.largest("fig4")
	bestOneShot := minOver(r, "fig4", []string{"OBA", "IS_PPM:1", "IS_PPM:3"}, large)
	bestAgr := minOver(r, "fig4", []string{"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"}, large)
	v = Match
	if bestAgr >= bestOneShot {
		v = Differ
	} else if bestOneShot/bestAgr < 1.5 {
		v = Partial
	}
	r.add(Check{
		ID:       "fig4-groups",
		Paper:    "three groups: OBA barely helps, IS_PPM much better, linear aggressive nearly doubles the IS_PPM group",
		Measured: fmt.Sprintf("@%dMB best one-shot %.2f ms vs best aggressive %.2f ms (%.1fx)", large, bestOneShot, bestAgr, bestOneShot/bestAgr),
		Verdict:  v,
	})

	// 3. Speed-up over NP at the largest cache (paper: up to 4.6x).
	np := r.value("fig4", "NP", large)
	speedup := np / bestAgr
	v = Match
	if speedup < 2 {
		v = Differ
	} else if speedup < 3 || speedup > 10 {
		v = Partial
	}
	r.add(Check{
		ID:       "fig4-speedup",
		Paper:    "linear aggressive prefetching up to 4.6x faster than NP with large caches",
		Measured: fmt.Sprintf("%.1fx @%dMB", speedup, large),
		Verdict:  v,
		Note:     "absolute factor depends on the scaled trace; same order of magnitude",
	})

	// 4. Small-cache ordering: Ln_Agr_OBA at least ties Ln_Agr_IS_PPM.
	small := r.sizes("fig4")[0]
	oba := r.value("fig4", "Ln_Agr_OBA", small)
	isp := r.value("fig4", "Ln_Agr_IS_PPM:1", small)
	v = Match
	if oba > isp*1.05 {
		v = Differ
	} else if oba > isp {
		v = Partial
	}
	r.add(Check{
		ID:       "fig4-small-cache-crossover",
		Paper:    "with small caches Ln_Agr_OBA beats Ln_Agr_IS_PPM (IS_PPM jumps into the never-accessed tail)",
		Measured: fmt.Sprintf("@%dMB Ln_Agr_OBA %.2f ms vs Ln_Agr_IS_PPM:1 %.2f ms", small, oba, isp),
		Verdict:  v,
	})

	// 5. Order barely matters (IS_PPM:1 vs IS_PPM:3).
	var maxGap float64
	for _, mb := range r.sizes("fig4") {
		a, b := r.value("fig4", "Ln_Agr_IS_PPM:1", mb), r.value("fig4", "Ln_Agr_IS_PPM:3", mb)
		gap := a / b
		if gap < 1 {
			gap = 1 / gap
		}
		if gap > maxGap {
			maxGap = gap
		}
	}
	v = Match
	if maxGap > 1.5 {
		v = Partial
	}
	r.add(Check{
		ID:       "fig4-order-insensitive",
		Paper:    "the order of the Markov predictor does not make a significant difference",
		Measured: fmt.Sprintf("largest 1st-vs-3rd-order read-time gap %.2fx", maxGap),
		Verdict:  v,
	})
}

// checkFig5 evaluates the xFS flooding story (§5.2).
func (r *Report) checkFig5() {
	// Somewhere below the largest cache, a non-aggressive algorithm
	// must beat its not-really-linear aggressive version.
	flipped := ""
	for _, mb := range r.sizes("fig5")[:len(r.sizes("fig5"))-1] {
		if r.value("fig5", "OBA", mb) < r.value("fig5", "Ln_Agr_OBA", mb) ||
			r.value("fig5", "IS_PPM:1", mb) < r.value("fig5", "Ln_Agr_IS_PPM:1", mb) {
			flipped = fmt.Sprintf("at %dMB", mb)
			break
		}
	}
	v := Match
	if flipped == "" {
		v = Differ
		flipped = "never"
	}
	r.add(Check{
		ID:       "fig5-flooding",
		Paper:    "on xFS too many blocks are prefetched and the cache is flooded; with small caches less-aggressive algorithms achieve better read times",
		Measured: "non-aggressive beats aggressive " + flipped,
		Verdict:  v,
	})
}

// checkSprite evaluates Figures 6 and 7 (§5.2).
func (r *Report) checkSprite() {
	// Aggressive IS_PPM obtains the best performance on Sprite/PAFS.
	large := r.largest("fig6")
	bestAgrIS := minOver(r, "fig6", []string{"Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"}, large)
	np := r.value("fig6", "NP", large)
	v := Match
	if bestAgrIS >= np {
		v = Differ
	}
	r.add(Check{
		ID:       "fig6-aggressive-wins",
		Paper:    "both Ln_Agr_IS_PPM algorithms obtain the best performance on Sprite",
		Measured: fmt.Sprintf("@%dMB Ln_Agr_IS_PPM %.2f ms vs NP %.2f ms (%.1fx)", large, bestAgrIS, np, np/bestAgrIS),
		Verdict:  v,
	})

	// xFS ~ PAFS under Sprite (little sharing).
	var maxGap float64
	for _, alg := range []string{"NP", "Ln_Agr_OBA", "Ln_Agr_IS_PPM:1"} {
		for _, mb := range r.sizes("fig6") {
			p, x := r.value("fig6", alg, mb), r.value("fig7", alg, mb)
			gap := p / x
			if gap < 1 {
				gap = 1 / gap
			}
			if gap > maxGap {
				maxGap = gap
			}
		}
	}
	v = Match
	if maxGap > 1.5 {
		v = Partial
	}
	r.add(Check{
		ID:       "fig7-xfs-tracks-pafs",
		Paper:    "with Sprite's little file sharing there is not much difference between PAFS (linear) and xFS (not really linear)",
		Measured: fmt.Sprintf("largest PAFS-vs-xFS read-time gap %.2fx", maxGap),
		Verdict:  v,
	})
}

// checkDiskTraffic evaluates Figures 8-11 (§5.3).
func (r *Report) checkDiskTraffic() {
	// Fig 8: extra accesses modest except for very small caches; at
	// large caches aggressive converges to (paper: sometimes below)
	// NP.
	large := r.largest("fig8")
	worst := 0.0
	for _, alg := range []string{"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"} {
		ratio := r.value("fig8", alg, large) / r.value("fig8", "NP", large)
		if ratio > worst {
			worst = ratio
		}
	}
	v := Match
	note := ""
	if worst > 1.25 {
		v = Differ
	} else if worst > 1.02 {
		v = Partial
		note = "the paper sometimes measures aggressive *below* NP thanks to write-back savings; this reproduction converges to parity from above"
	}
	r.add(Check{
		ID:       "fig8-pafs-traffic",
		Paper:    "on PAFS the extra disk accesses are not very high except for very small caches; sometimes even lower than NP",
		Measured: fmt.Sprintf("worst aggressive/NP access ratio @%dMB: %.2f", large, worst),
		Verdict:  v, Note: note,
	})

	// Fig 9: on xFS the aggressive algorithms always access more.
	alwaysAbove := true
	for _, alg := range []string{"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"} {
		for _, mb := range r.sizes("fig9") {
			if r.value("fig9", alg, mb) <= r.value("fig9", "NP", mb) {
				alwaysAbove = false
			}
		}
	}
	v = Match
	if !alwaysAbove {
		v = Differ
	}
	r.add(Check{
		ID:       "fig9-xfs-traffic",
		Paper:    "under xFS the aggressive algorithms always perform more disk accesses than NP (not really linear)",
		Measured: fmt.Sprintf("aggressive above NP at every size: %v", alwaysAbove),
		Verdict:  v,
	})

	// Figs 10-11: Sprite traffic increase stays moderate. The paper's
	// claim is about the overall level, so the verdict keys on the
	// mean ratio; the worst single point is reported alongside.
	worst = 0
	var sum float64
	var n int
	for _, fig := range []string{"fig10", "fig11"} {
		for _, alg := range []string{"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"} {
			for _, mb := range r.sizes(fig) {
				ratio := r.value(fig, alg, mb) / r.value(fig, "NP", mb)
				sum += ratio
				n++
				if ratio > worst {
					worst = ratio
				}
			}
		}
	}
	mean := sum / float64(n)
	v = Match
	note = ""
	if mean > 2 {
		v = Differ
	} else if mean > 1.7 {
		v = Partial
	}
	if v == Match && worst > 2 {
		note = "the single worst point is Ln_Agr_OBA at the smallest cache, where its blind readahead wastes the most — the same asymmetry as the paper's misprediction comparison"
	}
	r.add(Check{
		ID:       "fig10-11-sprite-traffic",
		Paper:    "on Sprite the aggressive algorithms do not increase the disk traffic too much",
		Measured: fmt.Sprintf("mean aggressive/NP access ratio %.2f (worst point %.2f)", mean, worst),
		Verdict:  v, Note: note,
	})
}

// checkTable2 compares against the paper's exact Table 2 values.
func (r *Report) checkTable2() {
	// Direction: aggressive algorithms write blocks no more often
	// than NP (the paper's §5.3 point).
	better, total := 0, 0
	for _, alg := range []string{"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"} {
		for _, mb := range r.sizes("table2") {
			total++
			if r.value("table2", alg, mb) <= r.value("table2", "NP", mb)*1.01 {
				better++
			}
		}
	}
	v := Match
	note := ""
	switch {
	case better == total:
	case better >= total/2:
		v = Partial
		note = "the gradient is small at this scale: the speed-up mostly hides in compute pauses, so write coalescing changes little"
	default:
		v = Differ
	}
	r.add(Check{
		ID:       "table2-writes-per-block",
		Paper:    "blocks are written to disk fewer times under aggressive prefetching (NP 11.7 vs Ln_Agr ~10.5 at 16MB)",
		Measured: fmt.Sprintf("aggressive <= NP at %d/%d points", better, total),
		Verdict:  v, Note: note,
	})
}

// checkClaims evaluates the in-text numbers.
func (r *Report) checkClaims(suite *experiment.Suite) error {
	chPafs, err := suite.Matrix(experiment.PAFS, experiment.Charisma)
	if err != nil {
		return err
	}
	chXfs, err := suite.Matrix(experiment.XFS, experiment.Charisma)
	if err != nil {
		return err
	}
	spPafs, err := suite.Matrix(experiment.PAFS, experiment.Sprite)
	if err != nil {
		return err
	}

	// Misprediction @4MB Sprite/PAFS: OBA worse than IS_PPM.
	oba := spPafs.MustGet("Ln_Agr_OBA", 4).MispredictionRatio
	isp := spPafs.MustGet("Ln_Agr_IS_PPM:1", 4).MispredictionRatio
	v := Match
	note := ""
	switch {
	case oba <= isp:
		v = Differ
	case oba < isp*1.5:
		v = Partial
		note = "direction holds; the synthetic Sprite is more sequential than the original trace, so OBA wastes less here"
	}
	r.add(Check{
		ID:       "claim-misprediction",
		Paper:    "at 4MB on Sprite, Ln_Agr_OBA mispredicts 32% of prefetched blocks vs 15% for Ln_Agr_IS_PPM",
		Measured: fmt.Sprintf("%.1f%% vs %.1f%%", 100*oba, 100*isp),
		Verdict:  v, Note: note,
	})

	// Fallback fractions.
	chFB := avgMetric(chPafs, []string{"Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"}, func(res experiment.Result) float64 { return res.FallbackFraction })
	spFB := avgMetric(spPafs, []string{"Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"}, func(res experiment.Result) float64 { return res.FallbackFraction })
	v = Match
	note = ""
	if chFB >= spFB {
		v = Differ
	} else if chFB > 0.05 {
		v = Partial
		note = "ordering holds (large files need far less fallback than small ones); absolute fractions are higher because the scaled traces revisit each file only a few times, so graphs stay colder than over the paper's 33 hours"
	}
	r.add(Check{
		ID:       "claim-fallback",
		Paper:    "blocks prefetched via the OBA fallback: <1% on CHARISMA (large files), ~25% on Sprite (small files)",
		Measured: fmt.Sprintf("%.1f%% vs %.1f%%", 100*chFB, 100*spFB),
		Verdict:  v, Note: note,
	})

	// xFS prefetch volume vs PAFS.
	var ratio float64
	var n int
	for _, alg := range []string{"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"} {
		for _, mb := range suite.Scale.CacheSizesMB {
			p := chPafs.MustGet(alg, mb).PrefetchIssued
			x := chXfs.MustGet(alg, mb).PrefetchIssued
			if p > 0 {
				ratio += float64(x) / float64(p)
				n++
			}
		}
	}
	ratio /= float64(n)
	v = Match
	note = ""
	switch {
	case ratio <= 1.05:
		v = Differ
	case ratio > 4:
		v = Partial
		note = "direction holds strongly; the factor exceeds the paper's because every process of a job here runs on a distinct node, all prefetching independently"
	}
	r.add(Check{
		ID:       "claim-xfs-volume",
		Paper:    "in the xFS executions the number of prefetched blocks doubles the number observed under PAFS",
		Measured: fmt.Sprintf("%.1fx", ratio),
		Verdict:  v, Note: note,
	})
	return nil
}

// checkLinearity verifies §4's structural claim directly from the
// prefetch ledger instead of inferring it from traffic: PAFS never has
// more than one prefetch outstanding for any file machine-wide, while
// xFS's independent per-node chains overlap on CHARISMA's shared
// files. It also collects the example results the Observability
// section tabulates.
func (r *Report) checkLinearity(suite *experiment.Suite) error {
	aggressive := []string{"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"}
	maxHW := func(m *experiment.Matrix) int {
		max := 0
		for _, alg := range aggressive {
			for _, mb := range m.CacheSizesMB {
				if res, ok := m.Get(alg, mb); ok && res.MaxFilePrefetchHW > max {
					max = res.MaxFilePrefetchHW
				}
			}
		}
		return max
	}

	chPafs, err := suite.Matrix(experiment.PAFS, experiment.Charisma)
	if err != nil {
		return err
	}
	chXfs, err := suite.Matrix(experiment.XFS, experiment.Charisma)
	if err != nil {
		return err
	}
	spPafs, err := suite.Matrix(experiment.PAFS, experiment.Sprite)
	if err != nil {
		return err
	}
	spXfs, err := suite.Matrix(experiment.XFS, experiment.Sprite)
	if err != nil {
		return err
	}

	pafsHW := maxHW(chPafs)
	if hw := maxHW(spPafs); hw > pafsHW {
		pafsHW = hw
	}
	xfsHW := maxHW(chXfs)
	v := Match
	note := ""
	switch {
	case pafsHW > 1:
		v = Differ
		note = "PAFS exceeded one outstanding prefetch per file — its servers are no longer linear"
	case xfsHW <= 1:
		v = Differ
		note = "xFS chains never overlapped; the shared-file contention the paper blames for flooding is absent"
	}
	r.add(Check{
		ID:       "claim-linearity",
		Paper:    "PAFS enforces one outstanding prefetch per file machine-wide (linear); xFS's per-node chains make it not really linear (§4)",
		Measured: fmt.Sprintf("max outstanding per file: PAFS %d, xFS on CHARISMA %d", pafsHW, xfsHW),
		Verdict:  v, Note: note,
	})

	// Example cells for the Observability table: the aggressive
	// algorithms at the sweep's middle cache size, on every matrix.
	sizes := suite.Scale.CacheSizesMB
	mid := sizes[len(sizes)/2]
	for _, m := range []*experiment.Matrix{chPafs, chXfs, spPafs, spXfs} {
		for _, alg := range []string{"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1"} {
			if res, ok := m.Get(alg, mid); ok {
				r.Observability = append(r.Observability, res)
			}
		}
	}
	return nil
}

func minOver(r *Report, fig string, algs []string, mb int) float64 {
	best := r.value(fig, algs[0], mb)
	for _, a := range algs[1:] {
		if v := r.value(fig, a, mb); v < best {
			best = v
		}
	}
	return best
}

func avgMetric(m *experiment.Matrix, algs []string, f func(experiment.Result) float64) float64 {
	var sum float64
	var n int
	for _, a := range algs {
		for _, mb := range m.CacheSizesMB {
			if res, ok := m.Get(a, mb); ok {
				sum += f(res)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render emits the record as markdown.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# EXPERIMENTS — paper vs. measured\n\n")
	fmt.Fprintf(&b, "Generated by `lapbench -scale %s -exp report`. ", r.ScaleName)
	b.WriteString("Absolute numbers are not expected to match the paper — the machine and the traces are scaled-down synthetic substitutes (see DESIGN.md) — the *shapes* are what this record verifies.\n\n")

	b.WriteString("## Verdict summary\n\n")
	b.WriteString("| check | paper says | measured | verdict |\n|---|---|---|---|\n")
	for _, c := range r.Checks {
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", c.ID, c.Paper, c.Measured, c.Verdict)
	}
	b.WriteString("\n### Notes\n\n")
	for _, c := range r.Checks {
		if c.Note != "" {
			fmt.Fprintf(&b, "- **%s** (%s): %s\n", c.ID, c.Verdict, c.Note)
		}
	}

	b.WriteString("\n## Paper Table 2 (exact values, for reference)\n\n")
	b.WriteString("| algorithm | 1MB | 2MB | 4MB | 8MB | 16MB |\n|---|---|---|---|---|---|\n")
	for _, alg := range []string{"NP", "Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"} {
		vals := PaperTable2[alg]
		fmt.Fprintf(&b, "| %s | %.1f | %.1f | %.1f | %.1f | %.1f |\n",
			alg, vals[0], vals[1], vals[2], vals[3], vals[4])
	}

	b.WriteString("\n## Observability\n\n")
	b.WriteString("Every run also records prefetch timeliness and resource utilization (see `lapsim -metrics` / `-trace-out`):\n\n")
	b.WriteString("- **timely** — prefetched blocks later served to a user request from the cache;\n")
	b.WriteString("- **late** — demand fetches that went to disk while a prefetch of the same block was still in flight (the prefetch lost the race);\n")
	b.WriteString("- **wasted** — prefetched blocks evicted untouched during the measurement window, plus those still untouched when the run drained (**unused@end**);\n")
	b.WriteString("- **max out/file** — the largest number of prefetches ever simultaneously outstanding for any single file, machine-wide. This is the paper's §4 linearity claim made measurable: PAFS's per-file servers hold it at 1, while xFS's per-node chains overlap on CHARISMA's shared files and push it above 1 (the claim-linearity check above). Sprite shares too little for xFS chains to overlap, which is exactly why Figures 6–7 track each other;\n")
	b.WriteString("- **disk util / pf share** — fraction of simulated time the disks were busy, and the share of that busy time spent at prefetch priority.\n\n")
	if len(r.Observability) > 0 {
		b.WriteString("| cell | timely | late | wasted | unused@end | max out/file | disk util | pf share |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|\n")
		for _, res := range r.Observability {
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %.3f | %.3f |\n",
				res.Cell, res.PrefetchTimely, res.PrefetchLate, res.PrefetchWasted,
				res.PrefetchUnusedAtEnd, res.MaxFilePrefetchHW,
				res.DiskUtilization, res.DiskPrefetchShare)
		}
	}

	b.WriteString("\n## Measured figures\n\n")
	for _, id := range experiment.FigureIDs() {
		fig := r.Figures[id]
		fmt.Fprintf(&b, "```\n%s```\n\n", fig.Render())
	}
	return b.String()
}
