package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fscommon"
	"repro/internal/machine"
	"repro/internal/pafs"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xfs"
)

// FSKind selects the simulated file system.
type FSKind int

// File systems under test.
const (
	PAFS FSKind = iota
	XFS
)

// String names the file system as in the paper.
func (k FSKind) String() string {
	if k == PAFS {
		return "PAFS"
	}
	return "xFS"
}

// WorkloadKind selects the trace workload (and with it the machine).
type WorkloadKind int

// Workloads under test. CHARISMA and Sprite are the paper's two;
// CDN and OLTP open the scenario space for the post-paper predictors
// (both run on the NOW machine — web edges and database clusters are
// networks of workstations, not parallel machines).
const (
	Charisma WorkloadKind = iota // parallel machine (PM)
	Sprite                       // network of workstations (NOW)
	CDN                          // Zipf web/CDN pages (NOW)
	OLTP                         // transaction point reads (NOW)
)

// String names the workload as in the paper.
func (k WorkloadKind) String() string {
	switch k {
	case Charisma:
		return "CHARISMA"
	case Sprite:
		return "Sprite"
	case CDN:
		return "CDN"
	case OLTP:
		return "OLTP"
	default:
		return "unknown"
	}
}

// Cell is one simulation run: a point on one curve of one figure.
type Cell struct {
	FS       FSKind
	Workload WorkloadKind
	Alg      core.AlgSpec
	CacheMB  int
	// Recirculations overrides xFS's N-chance forwarding count
	// (0 keeps the default of 2, negative disables forwarding — the
	// no-cooperation baseline); ignored for PAFS. Used by the
	// cooperative-caching ablation bench.
	Recirculations int
}

// String renders the cell compactly.
func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/%s/%dMB", c.Workload, c.FS, c.Alg.Name(), c.CacheMB)
}

// Result holds every metric one run produces.
type Result struct {
	Cell Cell

	// AvgReadMs is the y-axis of Figures 4–7.
	AvgReadMs float64
	// DiskAccesses is the y-axis of Figures 8–11.
	DiskAccesses uint64
	DiskReads    uint64
	DiskWrites   uint64
	// WritesPerBlock is the Table 2 metric.
	WritesPerBlock float64

	// Prefetch quality.
	PrefetchIssued     uint64
	FallbackFraction   float64
	MispredictionRatio float64

	// Prefetch timeliness (see stats.Collector): Timely prefetches were
	// used from the cache, Late ones lost the race to demand traffic,
	// Wasted ones were evicted unused inside the measurement window;
	// UnusedAtEnd counts speculative copies still untouched when the
	// run drained.
	PrefetchTimely      uint64
	PrefetchLate        uint64
	PrefetchWasted      uint64
	PrefetchUnusedAtEnd uint64

	// MaxFilePrefetchHW is the largest number of prefetches ever
	// simultaneously in flight for any single file, machine-wide. 1 on
	// a truly linear run (PAFS); >1 exposes xFS's per-node chains
	// overlapping on shared files.
	MaxFilePrefetchHW int

	// Resource utilization over the whole run (warm-up and drain
	// included), plus queue-depth high-water marks.
	DiskUtilization   float64
	DiskPrefetchShare float64 // share of disk busy time at prefetch priority
	DiskMaxQueue      int
	NetUtilization    float64
	NetMaxQueue       int

	// EventsFired counts simulator events executed — a determinism
	// fingerprint of the whole run.
	EventsFired uint64

	HitRatio float64
	Reads    uint64
	Writes   uint64
	SimTime  sim.Time
}

// RunCell simulates one cell under the given scale. The workload trace
// depends only on the scale and workload kind, so every algorithm and
// cache size is measured against the identical request stream.
func RunCell(s Scale, c Cell) (Result, error) {
	return RunCellObserved(s, c, nil)
}

// RunCellObserved is RunCell with an optional sim.Tracer attached.
func RunCellObserved(s Scale, c Cell, tracer sim.Tracer) (Result, error) {
	var (
		tr   *workload.Trace
		mach machine.Config
		err  error
	)
	switch c.Workload {
	case Charisma:
		mach = s.PM
		tr, err = workload.GenerateCharisma(s.Charisma)
	case Sprite:
		mach = s.NOW
		tr, err = workload.GenerateSprite(s.Sprite)
	case CDN:
		mach = s.NOW
		tr, err = workload.GenerateCDN(s.CDN)
	case OLTP:
		mach = s.NOW
		tr, err = workload.GenerateOLTP(s.OLTP)
	default:
		return Result{}, fmt.Errorf("experiment: unknown workload %d", c.Workload)
	}
	if err != nil {
		return Result{}, err
	}
	return RunTraceObserved(tr, mach, c, s.WarmFraction, tracer)
}

// RunTrace simulates an explicit trace (for example one loaded from a
// tracegen file) on the given machine under cell c's file system,
// algorithm and cache size; c.Workload is informational only.
func RunTrace(tr *workload.Trace, mach machine.Config, c Cell, warmFraction float64) (Result, error) {
	return RunTraceObserved(tr, mach, c, warmFraction, nil)
}

// RunTraceObserved is RunTrace with an optional sim.Tracer attached to
// the engine for the whole run. Tracing is observation only, so every
// number in the Result is identical with and without it.
func RunTraceObserved(tr *workload.Trace, mach machine.Config, c Cell, warmFraction float64, tracer sim.Tracer) (Result, error) {
	if err := tr.Validate(mach.Nodes, mach.BlockSize); err != nil {
		return Result{}, err
	}
	if c.CacheMB <= 0 {
		return Result{}, fmt.Errorf("experiment: cache size %d MB", c.CacheMB)
	}
	if err := c.Alg.Validate(); err != nil {
		return Result{}, fmt.Errorf("experiment: bad algorithm: %w", err)
	}

	e := sim.NewEngine(uint64(c.CacheMB)*1000003 + uint64(c.Workload)*7 + uint64(c.FS)*13 + 1)
	if tracer != nil {
		e.SetTracer(tracer)
	}
	cacheBlocks := mach.CacheBlocksPerNode(c.CacheMB)

	var fs fscommon.FileSystem
	switch c.FS {
	case PAFS:
		fs = pafs.New(e, pafs.Config{
			Machine:            mach,
			CacheBlocksPerNode: cacheBlocks,
			Algorithm:          c.Alg,
		}, tr)
	case XFS:
		fs = xfs.New(e, xfs.Config{
			Machine:            mach,
			CacheBlocksPerNode: cacheBlocks,
			Algorithm:          c.Alg,
			Recirculations:     c.Recirculations,
		}, tr)
	default:
		return Result{}, fmt.Errorf("experiment: unknown file system %d", c.FS)
	}

	runner := fscommon.NewRunner(fs, tr, fscommon.RunnerConfig{WarmFraction: warmFraction})
	end := runner.Run(e)
	if !runner.Done() {
		return Result{}, fmt.Errorf("experiment: %s did not complete", c)
	}

	coll := fs.Collector()
	cst := fs.Cache().Stats()
	wasted := cst.WastedPrefetches + fs.Cache().UnusedPrefetchedCopies()
	used := cst.UsedPrefetches
	misprediction := 0.0
	if wasted+used > 0 {
		misprediction = float64(wasted) / float64(wasted+used)
	}
	base := fs.(interface{ BaseRef() *fscommon.Base }).BaseRef()
	return Result{
		Cell:               c,
		AvgReadMs:          coll.AvgReadTime().Milliseconds(),
		DiskAccesses:       coll.DiskAccesses(),
		DiskReads:          coll.DiskReads(),
		DiskWrites:         coll.DiskWrites(),
		WritesPerBlock:     coll.WritesPerBlock(),
		PrefetchIssued:     coll.PrefetchIssuedCount(),
		FallbackFraction:   coll.FallbackFraction(),
		MispredictionRatio: misprediction,

		PrefetchTimely:      coll.PrefetchTimelyCount(),
		PrefetchLate:        coll.PrefetchLateCount(),
		PrefetchWasted:      coll.PrefetchWastedCount(),
		PrefetchUnusedAtEnd: fs.Cache().UnusedPrefetchedCopies(),
		MaxFilePrefetchHW:   base.Ledger.MaxHighWater(),

		DiskUtilization:   base.Disks.Utilization(),
		DiskPrefetchShare: base.Disks.PrefetchBusyFraction(),
		DiskMaxQueue:      base.Disks.MaxQueueLenAll(),
		NetUtilization:    base.Net.Utilization(),
		NetMaxQueue:       base.Net.MaxPortQueueLen(),
		EventsFired:       e.Fired(),

		HitRatio: coll.BlockHitRatio(),
		Reads:    coll.Reads(),
		Writes:   coll.Writes(),
		SimTime:  end,
	}, nil
}
