package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
)

// Figure is one rendered paper artifact: a set of per-algorithm series
// over the cache-size axis.
type Figure struct {
	ID     string // "fig4" … "fig11", "table2"
	Title  string
	Unit   string
	Sizes  []int
	Series []Series
}

// Series is one curve (or bar group) of a figure.
type Series struct {
	Alg    string
	Values []float64 // aligned with Figure.Sizes
}

// figureDefs maps each paper artifact to its matrix and metric.
var figureDefs = map[string]struct {
	fs     FSKind
	wl     WorkloadKind
	title  string
	unit   string
	metric func(Result) float64
	algs   func() []core.AlgSpec
}{
	"fig4":  {PAFS, Charisma, "Average read time, CHARISMA on PAFS (paper Fig. 4)", "ms", func(r Result) float64 { return r.AvgReadMs }, core.StandardAlgorithms},
	"fig5":  {XFS, Charisma, "Average read time, CHARISMA on xFS (paper Fig. 5)", "ms", func(r Result) float64 { return r.AvgReadMs }, core.StandardAlgorithms},
	"fig6":  {PAFS, Sprite, "Average read time, Sprite on PAFS (paper Fig. 6)", "ms", func(r Result) float64 { return r.AvgReadMs }, core.StandardAlgorithms},
	"fig7":  {XFS, Sprite, "Average read time, Sprite on xFS (paper Fig. 7)", "ms", func(r Result) float64 { return r.AvgReadMs }, core.StandardAlgorithms},
	"fig8":  {PAFS, Charisma, "Disk accesses, CHARISMA on PAFS (paper Fig. 8)", "accesses", func(r Result) float64 { return float64(r.DiskAccesses) }, diskFigureAlgs},
	"fig9":  {XFS, Charisma, "Disk accesses, CHARISMA on xFS (paper Fig. 9)", "accesses", func(r Result) float64 { return float64(r.DiskAccesses) }, diskFigureAlgs},
	"fig10": {PAFS, Sprite, "Disk accesses, Sprite on PAFS (paper Fig. 10)", "accesses", func(r Result) float64 { return float64(r.DiskAccesses) }, diskFigureAlgs},
	"fig11": {XFS, Sprite, "Disk accesses, Sprite on xFS (paper Fig. 11)", "accesses", func(r Result) float64 { return float64(r.DiskAccesses) }, diskFigureAlgs},
	"table2": {PAFS, Charisma, "Times a block is written to disk, CHARISMA on PAFS (paper Table 2)", "writes/block",
		func(r Result) float64 { return r.WritesPerBlock }, table2Algs},
}

// diskFigureAlgs: Figures 8–11 plot NP (the reference line) and the
// three linear aggressive algorithms.
func diskFigureAlgs() []core.AlgSpec {
	return append([]core.AlgSpec{core.SpecNP}, core.AggressiveAlgorithms()...)
}

// table2Algs: Table 2 lists NP and the three linear aggressive
// algorithms.
func table2Algs() []core.AlgSpec { return diskFigureAlgs() }

// FigureIDs returns every artifact ID in paper order.
func FigureIDs() []string {
	return []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table2"}
}

// AlgsForFigure returns the algorithm sweep a figure needs.
func AlgsForFigure(id string) ([]core.AlgSpec, error) {
	def, ok := figureDefs[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown figure %q", id)
	}
	return def.algs(), nil
}

// MatrixKeyForFigure returns which (fs, workload) matrix a figure
// reads from, so callers can share matrices across figures.
func MatrixKeyForFigure(id string) (FSKind, WorkloadKind, error) {
	def, ok := figureDefs[id]
	if !ok {
		return 0, 0, fmt.Errorf("experiment: unknown figure %q", id)
	}
	return def.fs, def.wl, nil
}

// BuildFigure extracts a paper artifact from a matrix previously
// produced by Run over at least the figure's algorithms.
func BuildFigure(id string, m *Matrix) (Figure, error) {
	def, ok := figureDefs[id]
	if !ok {
		return Figure{}, fmt.Errorf("experiment: unknown figure %q", id)
	}
	if m.FS != def.fs || m.Workload != def.wl {
		return Figure{}, fmt.Errorf("experiment: figure %s needs %s/%s, matrix is %s/%s",
			id, def.wl, def.fs, m.Workload, m.FS)
	}
	fig := Figure{ID: id, Title: def.title, Unit: def.unit, Sizes: m.CacheSizesMB}
	for _, spec := range def.algs() {
		name := spec.Name()
		s := Series{Alg: name}
		for _, mb := range m.CacheSizesMB {
			r, ok := m.Get(name, mb)
			if !ok {
				return Figure{}, fmt.Errorf("experiment: matrix missing %s @ %dMB for %s", name, mb, id)
			}
			s.Values = append(s.Values, def.metric(r))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Render formats the figure as an aligned text table, one row per
// algorithm, one column per cache size.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%s]\n", f.Title, f.Unit)
	fmt.Fprintf(&b, "%-18s", "algorithm")
	for _, mb := range f.Sizes {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("%dMB", mb))
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-18s", s.Alg)
		for _, v := range s.Values {
			if f.Unit == "accesses" {
				fmt.Fprintf(&b, "%10.0f", v)
			} else {
				fmt.Fprintf(&b, "%10.3f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Value returns one point of the figure.
func (f Figure) Value(alg string, cacheMB int) (float64, bool) {
	col := -1
	for i, mb := range f.Sizes {
		if mb == cacheMB {
			col = i
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, s := range f.Series {
		if s.Alg == alg {
			return s.Values[col], true
		}
	}
	return 0, false
}

// Table1 renders the simulation-parameter table (paper Table 1).
func Table1() string { return machine.Table1() }
