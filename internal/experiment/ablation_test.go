package experiment

import (
	"strings"
	"testing"
)

func TestAblationsEnumeration(t *testing.T) {
	abs := Ablations()
	studies := make(map[string]int)
	names := make(map[string]bool)
	for _, ab := range abs {
		studies[ab.Study]++
		key := ab.Study + "/" + ab.Variant
		if names[key] {
			t.Errorf("duplicate ablation %s", key)
		}
		names[key] = true
	}
	want := map[string]int{
		"linearity": 4, "linkPolicy": 2, "order": 4,
		"priority": 2, "fallback": 2, "modelling": 2,
	}
	for study, n := range want {
		if studies[study] != n {
			t.Errorf("study %s has %d variants, want %d", study, studies[study], n)
		}
	}
}

func TestAblationBaselineIsPaperConfig(t *testing.T) {
	for _, ab := range Ablations() {
		switch ab.Variant {
		case "linear1", "mostRecent", "order1", "lowPriority", "withFallback", "intervalSize":
			if ab.Alg.Name() != "Ln_Agr_IS_PPM:1" {
				t.Errorf("%s/%s baseline is %s, want Ln_Agr_IS_PPM:1",
					ab.Study, ab.Variant, ab.Alg.Name())
			}
		}
	}
}

func TestRunAblationsRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every ablation cell")
	}
	out, err := RunAblations(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"linearity", "unlimited", "mostProbable", "order4",
		"userPriority", "noFallback", "blockPPM", "read(ms)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation table missing %q", want)
		}
	}
}
