package experiment

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestXfsProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	s := SmallScale()
	for _, alg := range []core.AlgSpec{core.SpecNP, core.SpecLnAgrOBA, core.SpecLnAgrISPPM1, core.SpecISPPM1} {
		for _, mb := range []int{1, 4, 16} {
			r, err := RunCell(s, Cell{FS: XFS, Workload: Charisma, Alg: alg, CacheMB: mb})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("xFS %-16s %2dMB read=%7.3fms disk=%6d hit=%.3f pf=%6d mis=%.2f T=%6.1fs\n",
				alg.Name(), mb, r.AvgReadMs, r.DiskAccesses, r.HitRatio, r.PrefetchIssued, r.MispredictionRatio, r.SimTime.Seconds())
		}
	}
}

func TestFullScaleCellCost(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	s := FullScale()
	start := time.Now()
	r, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrISPPM1, CacheMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full-scale cell: wall=%v read=%.2fms disk=%d reads=%d\n", time.Since(start), r.AvgReadMs, r.DiskAccesses, r.Reads)
}
