package experiment

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestLinearityHighWater verifies the paper's central structural claim
// (§4) on live runs: PAFS's one-server-per-file design keeps at most
// one prefetch outstanding per file machine-wide, while xFS's per-node
// chains overlap on shared files and push the aggregate above one.
func TestLinearityHighWater(t *testing.T) {
	s := TinyScale()
	for _, c := range []Cell{
		{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrOBA, CacheMB: 1},
		{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrOBA, CacheMB: 4},
		{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrISPPM1, CacheMB: 4},
		{FS: PAFS, Workload: Sprite, Alg: core.SpecLnAgrOBA, CacheMB: 4},
		{FS: PAFS, Workload: Sprite, Alg: core.SpecLnAgrISPPM3, CacheMB: 16},
	} {
		r, err := RunCell(s, c)
		if err != nil {
			t.Fatal(err)
		}
		if r.PrefetchIssued == 0 {
			t.Errorf("%s: no prefetches issued, linearity check vacuous", c)
		}
		if r.MaxFilePrefetchHW > 1 {
			t.Errorf("%s: per-file outstanding high-water = %d, want <= 1", c, r.MaxFilePrefetchHW)
		}
	}

	// CHARISMA's shared files are read by several nodes at once, so
	// xFS's independent per-node drivers must overlap.
	c := Cell{FS: XFS, Workload: Charisma, Alg: core.SpecLnAgrOBA, CacheMB: 4}
	r, err := RunCell(s, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxFilePrefetchHW <= 1 {
		t.Errorf("%s: aggregate outstanding high-water = %d, want > 1 (per-node chains should overlap)",
			c, r.MaxFilePrefetchHW)
	}
}

// TestGoldenObservability pins the timeliness and utilization counters
// of three tiny cells. Any change to these numbers means the
// simulation or its instrumentation changed behaviour and the paper
// figures need regenerating.
func TestGoldenObservability(t *testing.T) {
	s := TinyScale()
	for _, g := range []struct {
		cell                         Cell
		timely, late, wasted, unused uint64
		hw                           int
		events                       uint64
	}{
		{
			cell:   Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrOBA, CacheMB: 1},
			timely: 247, late: 2, wasted: 126, unused: 114, hw: 1, events: 7011,
		},
		{
			cell:   Cell{FS: XFS, Workload: Charisma, Alg: core.SpecLnAgrOBA, CacheMB: 4},
			timely: 215, late: 7, wasted: 1, unused: 591, hw: 2, events: 6529,
		},
		{
			cell:   Cell{FS: XFS, Workload: Sprite, Alg: core.SpecLnAgrOBA, CacheMB: 4},
			timely: 244, late: 16, wasted: 0, unused: 142, hw: 1, events: 3923,
		},
	} {
		r, err := RunCell(s, g.cell)
		if err != nil {
			t.Fatal(err)
		}
		if r.PrefetchTimely != g.timely || r.PrefetchLate != g.late ||
			r.PrefetchWasted != g.wasted || r.PrefetchUnusedAtEnd != g.unused ||
			r.MaxFilePrefetchHW != g.hw || r.EventsFired != g.events {
			t.Errorf("%s: got timely=%d late=%d wasted=%d unused=%d hw=%d events=%d,\n"+
				"want timely=%d late=%d wasted=%d unused=%d hw=%d events=%d",
				g.cell, r.PrefetchTimely, r.PrefetchLate, r.PrefetchWasted,
				r.PrefetchUnusedAtEnd, r.MaxFilePrefetchHW, r.EventsFired,
				g.timely, g.late, g.wasted, g.unused, g.hw, g.events)
		}
		if r.DiskUtilization <= 0 || r.DiskUtilization >= 1 {
			t.Errorf("%s: disk utilization %v outside (0,1)", g.cell, r.DiskUtilization)
		}
		if r.DiskPrefetchShare <= 0 || r.DiskPrefetchShare >= 1 {
			t.Errorf("%s: disk prefetch share %v outside (0,1)", g.cell, r.DiskPrefetchShare)
		}
		if r.DiskMaxQueue <= 0 || r.NetMaxQueue <= 0 {
			t.Errorf("%s: queue high-waters disk=%d net=%d, want both > 0",
				g.cell, r.DiskMaxQueue, r.NetMaxQueue)
		}
	}
}

// TestRunDeterministicAcrossWorkers is the parallel-sweep regression
// test: every Result — the paper metrics and the new observability
// counters alike — must be bit-identical whether cells run on one
// worker or eight.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	s := TinyScale()
	s.CacheSizesMB = []int{1, 4}
	algs := []core.AlgSpec{core.SpecNP, core.SpecLnAgrOBA, core.SpecLnAgrISPPM1}

	m1, err := Run(s, PAFS, Charisma, algs, 1)
	if err != nil {
		t.Fatal(err)
	}
	m8, err := Run(s, PAFS, Charisma, algs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Results, m8.Results) {
		t.Fatalf("results differ between workers=1 and workers=8:\n1: %+v\n8: %+v",
			m1.Results, m8.Results)
	}
	if !reflect.DeepEqual(m1.AlgNames, m8.AlgNames) {
		t.Fatalf("algorithm order differs: %v vs %v", m1.AlgNames, m8.AlgNames)
	}
}

// TestRunStopsDispatchOnFailure checks that a sweep stops burning
// cells after the first failure: with one worker and a first cell
// whose AlgSpec cannot validate, exactly one cell is ever attempted.
func TestRunStopsDispatchOnFailure(t *testing.T) {
	var calls atomic.Int64
	orig := runCell
	runCell = func(s Scale, c Cell) (Result, error) {
		calls.Add(1)
		return orig(s, c)
	}
	defer func() { runCell = orig }()

	s := TinyScale()
	bad := core.AlgSpec{Kind: core.AlgISPPM, Order: 0, Mode: core.ModeAggressive, MaxOutstanding: 1}
	if bad.Validate() == nil {
		t.Fatal("test spec unexpectedly valid")
	}
	m, err := Run(s, PAFS, Charisma, []core.AlgSpec{bad, core.SpecNP}, 1)
	if err == nil {
		t.Fatal("sweep with invalid algorithm did not fail")
	}
	if m != nil {
		t.Fatal("failed sweep returned a matrix")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("sweep attempted %d cells after first failure, want 1", n)
	}
}

// TestRunRejectsInvalidSpec pins the error path of RunCell itself.
func TestRunRejectsInvalidSpec(t *testing.T) {
	s := TinyScale()
	_, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma,
		Alg: core.AlgSpec{Kind: core.AlgKind(99)}, CacheMB: 4})
	if err == nil {
		t.Fatal("unknown algorithm kind accepted")
	}
}

// TestTracerPassiveAndJSONL runs the same cell bare and with a JSONL
// tracer attached: the Results must be identical (tracing is pure
// observation), the tracer must actually capture records, and both
// JSONL encoders must produce decodable lines with the documented
// keys.
func TestTracerPassiveAndJSONL(t *testing.T) {
	s := TinyScale()
	c := Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrOBA, CacheMB: 4}
	tr, err := workload.GenerateCharisma(s.Charisma)
	if err != nil {
		t.Fatal(err)
	}

	bare, err := RunTrace(tr, s.PM, c, s.WarmFraction)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := NewJSONLTracer(&buf)
	traced, err := RunTraceObserved(tr, s.PM, c, s.WarmFraction, tracer)
	if err != nil {
		t.Fatal(err)
	}
	if bare != traced {
		t.Fatalf("tracing changed the result:\nbare:   %+v\ntraced: %+v", bare, traced)
	}
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}
	if tracer.Records() == 0 {
		t.Fatal("tracer captured nothing")
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if uint64(len(lines)) != tracer.Records() {
		t.Fatalf("%d JSONL lines for %d records", len(lines), tracer.Records())
	}
	var rec struct {
		AtNs int64  `json:"at_ns"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind == "" || rec.AtNs <= 0 {
		t.Fatalf("last trace record malformed: %s", lines[len(lines)-1])
	}

	var rbuf bytes.Buffer
	if err := WriteResultJSONL(&rbuf, bare, traced); err != nil {
		t.Fatal(err)
	}
	rlines := bytes.Split(bytes.TrimSpace(rbuf.Bytes()), []byte("\n"))
	if len(rlines) != 2 {
		t.Fatalf("got %d result lines, want 2", len(rlines))
	}
	var decoded map[string]any
	if err := json.Unmarshal(rlines[0], &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fs", "workload", "algorithm", "cache_mb",
		"prefetch_timely", "prefetch_late", "prefetch_wasted",
		"max_file_prefetch_outstanding", "disk_utilization", "events_fired"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("result JSONL missing key %q", key)
		}
	}
	if decoded["fs"] != "PAFS" {
		t.Errorf("fs = %v, want PAFS", decoded["fs"])
	}
	if hw, ok := decoded["max_file_prefetch_outstanding"].(float64); !ok || hw != float64(bare.MaxFilePrefetchHW) {
		t.Errorf("exported high-water %v, want %d", decoded["max_file_prefetch_outstanding"], bare.MaxFilePrefetchHW)
	}
}

// errorWriter fails after n bytes, for the sticky-error path.
type errorWriter struct{ n int }

func (w *errorWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestJSONLTracerStickyError(t *testing.T) {
	s := TinyScale()
	c := Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrOBA, CacheMB: 4}
	tr, err := workload.GenerateCharisma(s.Charisma)
	if err != nil {
		t.Fatal(err)
	}
	tracer := NewJSONLTracer(&errorWriter{n: 256})
	if _, err := RunTraceObserved(tr, s.PM, c, s.WarmFraction, tracer); err != nil {
		t.Fatal(err) // the run itself must not fail
	}
	if tracer.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}
