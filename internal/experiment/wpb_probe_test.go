package experiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestWpbProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, period := range []float64{8, 12, 16, 24} {
		s := SmallScale()
		s.Charisma.Phases = 8
		s.Charisma.WritePhaseEvery = 4
		s.Charisma.WriteRunLength = 2
		s.PM.WritebackPeriod = sim.Seconds(period)
		for _, alg := range []core.AlgSpec{core.SpecNP, core.SpecLnAgrOBA, core.SpecLnAgrISPPM1} {
			r, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma, Alg: alg, CacheMB: 16})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("period=%2.0fs %-16s wpb=%.3f writes=%6d T=%5.1fs read=%6.2fms\n",
				period, alg.Name(), r.WritesPerBlock, r.DiskWrites, r.SimTime.Seconds(), r.AvgReadMs)
		}
	}
}
