package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Matrix holds the results of one (workload, file system) sweep over
// algorithms and cache sizes — the raw material of two figures (a
// read-time figure and a disk-access figure) and, for CHARISMA/PAFS,
// of Table 2 as well.
type Matrix struct {
	FS           FSKind
	Workload     WorkloadKind
	CacheSizesMB []int
	AlgNames     []string // sweep order, the paper's legend order
	// Results[algName][cacheMB]
	Results map[string]map[int]Result
}

// Run sweeps algorithms × the scale's cache sizes for one (workload,
// fs) pair, running cells in parallel across workers (0 = GOMAXPROCS).
// Cells are independent simulations with fixed seeds, so parallelism
// cannot change any number.
func Run(s Scale, fs FSKind, wl WorkloadKind, algs []core.AlgSpec, workers int) (*Matrix, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := &Matrix{
		FS:           fs,
		Workload:     wl,
		CacheSizesMB: append([]int(nil), s.CacheSizesMB...),
		Results:      make(map[string]map[int]Result),
	}
	var cells []Cell
	for _, a := range algs {
		m.AlgNames = append(m.AlgNames, a.Name())
		m.Results[a.Name()] = make(map[int]Result)
		for _, mb := range s.CacheSizesMB {
			cells = append(cells, Cell{FS: fs, Workload: wl, Alg: a, CacheMB: mb})
		}
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	ch := make(chan Cell)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range ch {
				if failed() {
					continue // drain without simulating
				}
				res, err := runCell(s, c)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", c, err)
				}
				if err == nil {
					m.Results[c.Alg.Name()][c.CacheMB] = res
				}
				mu.Unlock()
			}
		}()
	}
	// Stop feeding as soon as any cell fails: a sweep that cannot
	// complete should not burn minutes simulating the rest. Cells
	// already dispatched still finish.
	for _, c := range cells {
		if failed() {
			break
		}
		ch <- c
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// runCell is RunCell behind an indirection so tests can count how many
// cells a sweep actually dispatched.
var runCell = RunCell

// Get returns the result for one algorithm at one cache size.
func (m *Matrix) Get(algName string, cacheMB int) (Result, bool) {
	row, ok := m.Results[algName]
	if !ok {
		return Result{}, false
	}
	r, ok := row[cacheMB]
	return r, ok
}

// MustGet is Get that panics on absence (experiment-internal use).
func (m *Matrix) MustGet(algName string, cacheMB int) Result {
	r, ok := m.Get(algName, cacheMB)
	if !ok {
		panic(fmt.Sprintf("experiment: no result for %s @ %dMB", algName, cacheMB))
	}
	return r
}
