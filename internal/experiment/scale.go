// Package experiment defines and runs the paper's evaluation: every
// figure (4–11) and table (1–2), as sweeps of (file system, workload,
// algorithm, per-node cache size) cells over the simulated machines.
package experiment

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scale sizes a reproduction run. The paper simulated 128-node /
// 50-node machines over trace days; this reproduction shrinks the
// machine and the trace together (documented in DESIGN.md) so a full
// sweep runs in minutes while preserving the ratios that drive the
// results: data footprint vs. global cache size, disk time vs.
// network time, burst rate vs. prefetch bandwidth, and application
// lifetime vs. write-back period.
type Scale struct {
	Name string

	// PM and NOW are the machine configurations used for the CHARISMA
	// and Sprite workloads respectively.
	PM  machine.Config
	NOW machine.Config

	// Charisma and Sprite are the paper workloads' generator
	// parameters; CDN and OLTP parameterize the post-paper scenario
	// workloads (both simulated on the NOW machine).
	Charisma workload.CharismaParams
	Sprite   workload.SpriteParams
	CDN      workload.CDNParams
	OLTP     workload.OLTPParams

	// WarmFraction of requests complete before measurement starts.
	WarmFraction float64

	// CacheSizesMB is the x-axis of every figure.
	CacheSizesMB []int
}

// FullScale returns the configuration used to regenerate the paper's
// figures for EXPERIMENTS.md. The machines keep the paper's Table 1
// latency/bandwidth parameters and disk counts, with the node count
// and trace length shrunk together.
func FullScale() Scale {
	pm := machine.PM()
	pm.Nodes = 16
	pm.Disks = 16 // the paper's PM disk count
	pm.WritebackPeriod = sim.Seconds(12)

	now := machine.NOW()
	now.Nodes = 16
	now.Disks = 8 // the paper's NOW disk count
	now.WritebackPeriod = sim.Seconds(12)

	// The workload doubles the small scale in lockstep with the
	// machine, so every load ratio that shapes the results —
	// processes per node, processes per disk, data footprint per
	// megabyte of global cache — is preserved while the sweep covers
	// twice the machine.
	ch := workload.DefaultCharismaParams()
	ch.Nodes = pm.Nodes
	ch.Apps = 16
	ch.ProcsPerApp = 4
	ch.FilesPerApp = 2
	ch.MeanFileBlocks = 450
	ch.AccessedFraction = 0.7
	ch.Phases = 8
	ch.WritePhaseEvery = 4
	ch.WriteRunLength = 2
	ch.ScratchBlocks = 128
	ch.HotWritesPerPhase = 16

	sp := workload.DefaultSpriteParams()
	sp.Nodes = now.Nodes
	sp.FilesPerClient = 250
	sp.SharedFiles = 60
	sp.SessionsPerClient = 150

	cdn := workload.DefaultCDNParams()
	cdn.Nodes = now.Nodes

	ol := workload.DefaultOLTPParams()
	ol.Nodes = now.Nodes

	return Scale{
		Name:         "full",
		PM:           pm,
		NOW:          now,
		Charisma:     ch,
		Sprite:       sp,
		CDN:          cdn,
		OLTP:         ol,
		WarmFraction: 0.15,
		CacheSizesMB: []int{1, 2, 4, 8, 16},
	}
}

// SmallScale returns a reduced configuration for tests and the
// testing.B benchmarks: same structure, a few times less work.
func SmallScale() Scale {
	s := FullScale()
	s.Name = "small"
	s.PM.Nodes = 8
	s.PM.Disks = 8
	s.NOW.Nodes = 8
	s.NOW.Disks = 4
	s.PM.WritebackPeriod = sim.Seconds(12)
	s.NOW.WritebackPeriod = sim.Seconds(12)

	s.Charisma.Nodes = s.PM.Nodes
	s.Charisma.Apps = 8

	s.Sprite.Nodes = s.NOW.Nodes
	s.Sprite.SharedFiles = 30

	s.CDN.Nodes = s.NOW.Nodes
	s.CDN.Clients = 24
	s.CDN.PagesPerClient = 150

	s.OLTP.Nodes = s.NOW.Nodes
	s.OLTP.Clients = 24
	s.OLTP.TxPerClient = 180
	return s
}

// TinyScale returns the smallest meaningful configuration, for quick
// unit tests of the experiment plumbing.
func TinyScale() Scale {
	s := SmallScale()
	s.Name = "tiny"
	s.PM.Nodes, s.PM.Disks = 4, 4
	s.NOW.Nodes, s.NOW.Disks = 4, 2
	s.PM.WritebackPeriod = sim.Seconds(1)
	s.NOW.WritebackPeriod = sim.Seconds(1)
	s.Charisma.Nodes = 4
	s.Charisma.Apps = 3
	s.Charisma.ProcsPerApp = 2
	s.Charisma.MeanFileBlocks = 120
	s.Charisma.Phases = 4
	s.Charisma.WritePhaseEvery = 2
	s.Charisma.WriteRunLength = 1
	s.Charisma.ScratchBlocks = 32
	s.Charisma.HotWritesPerPhase = 8
	s.Charisma.BurstLen = 6
	s.Charisma.BurstPause = sim.Milliseconds(400)
	s.Sprite.Nodes = 4
	s.Sprite.FilesPerClient = 40
	s.Sprite.SharedFiles = 8
	s.Sprite.SessionsPerClient = 40
	s.CDN.Nodes = 4
	s.CDN.Volumes = 2
	s.CDN.ObjectsPerVolume = 128
	s.CDN.Clients = 8
	s.CDN.PagesPerClient = 40
	s.OLTP.Nodes = 4
	s.OLTP.Tables = 2
	s.OLTP.DataBlocks = 512
	s.OLTP.HotKeys = 128
	s.OLTP.Clients = 8
	s.OLTP.TxPerClient = 50
	s.CacheSizesMB = []int{1, 4, 16}
	return s
}
