package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID: "fig4", Title: "t", Unit: "ms", Sizes: []int{1, 4},
		Series: []Series{
			{Alg: "NP", Values: []float64{2.5, 2.0}},
			{Alg: "Ln_Agr_OBA", Values: []float64{1.25, 0.5}},
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFigure().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "algorithm,1MB,4MB" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "NP,2.5,2" {
		t.Errorf("row = %q", lines[1])
	}
	if lines[2] != "Ln_Agr_OBA,1.25,0.5" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := sampleFigure()
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFigureJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != orig.ID || got.Title != orig.Title || got.Unit != orig.Unit {
		t.Error("metadata lost in round trip")
	}
	if len(got.Series) != 2 || got.Series[0].Alg != "NP" || got.Series[1].Values[1] != 0.5 {
		t.Errorf("series lost: %+v", got.Series)
	}
	if len(got.Sizes) != 2 || got.Sizes[0] != 1 {
		t.Error("sizes lost")
	}
}

func TestDecodeFigureJSONRejectsMismatchedSeries(t *testing.T) {
	in := `{"id":"x","cache_sizes_mb":[1,2],"series":[{"algorithm":"NP","values":[1.0]}]}`
	if _, err := DecodeFigureJSON(strings.NewReader(in)); err == nil {
		t.Error("mismatched series length accepted")
	}
	if _, err := DecodeFigureJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}
