package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the figure as comma-separated values: a header row of
// cache sizes, then one row per algorithm. Ready for any plotting
// tool.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"algorithm"}
	for _, mb := range f.Sizes {
		header = append(header, fmt.Sprintf("%dMB", mb))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range f.Series {
		row := []string{s.Alg}
		for _, v := range s.Values {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// figureJSON is the stable JSON shape of a figure.
type figureJSON struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Unit    string       `json:"unit"`
	SizesMB []int        `json:"cache_sizes_mb"`
	Series  []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Algorithm string    `json:"algorithm"`
	Values    []float64 `json:"values"`
}

// WriteJSON emits the figure as a JSON document.
func (f Figure) WriteJSON(w io.Writer) error {
	doc := figureJSON{ID: f.ID, Title: f.Title, Unit: f.Unit, SizesMB: f.Sizes}
	for _, s := range f.Series {
		doc.Series = append(doc.Series, seriesJSON{Algorithm: s.Alg, Values: s.Values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeFigureJSON parses a figure previously written by WriteJSON,
// for tools that post-process saved results.
func DecodeFigureJSON(r io.Reader) (Figure, error) {
	var doc figureJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return Figure{}, err
	}
	f := Figure{ID: doc.ID, Title: doc.Title, Unit: doc.Unit, Sizes: doc.SizesMB}
	for _, s := range doc.Series {
		if len(s.Values) != len(doc.SizesMB) {
			return Figure{}, fmt.Errorf("experiment: series %q has %d values for %d sizes",
				s.Algorithm, len(s.Values), len(doc.SizesMB))
		}
		f.Series = append(f.Series, Series{Alg: s.Algorithm, Values: s.Values})
	}
	return f, nil
}
