package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// WriteCSV emits the figure as comma-separated values: a header row of
// cache sizes, then one row per algorithm. Ready for any plotting
// tool.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"algorithm"}
	for _, mb := range f.Sizes {
		header = append(header, fmt.Sprintf("%dMB", mb))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range f.Series {
		row := []string{s.Alg}
		for _, v := range s.Values {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// figureJSON is the stable JSON shape of a figure.
type figureJSON struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Unit    string       `json:"unit"`
	SizesMB []int        `json:"cache_sizes_mb"`
	Series  []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Algorithm string    `json:"algorithm"`
	Values    []float64 `json:"values"`
}

// WriteJSON emits the figure as a JSON document.
func (f Figure) WriteJSON(w io.Writer) error {
	doc := figureJSON{ID: f.ID, Title: f.Title, Unit: f.Unit, SizesMB: f.Sizes}
	for _, s := range f.Series {
		doc.Series = append(doc.Series, seriesJSON{Algorithm: s.Alg, Values: s.Values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// resultJSON is the stable JSON shape of one cell's Result, emitted as
// one JSONL record by lapsim -metrics and WriteResultJSONL.
type resultJSON struct {
	FS       string `json:"fs"`
	Workload string `json:"workload"`
	Alg      string `json:"algorithm"`
	CacheMB  int    `json:"cache_mb"`

	AvgReadMs      float64 `json:"avg_read_ms"`
	DiskAccesses   uint64  `json:"disk_accesses"`
	DiskReads      uint64  `json:"disk_reads"`
	DiskWrites     uint64  `json:"disk_writes"`
	WritesPerBlock float64 `json:"writes_per_block"`

	PrefetchIssued     uint64  `json:"prefetch_issued"`
	FallbackFraction   float64 `json:"fallback_fraction"`
	MispredictionRatio float64 `json:"misprediction_ratio"`

	PrefetchTimely      uint64 `json:"prefetch_timely"`
	PrefetchLate        uint64 `json:"prefetch_late"`
	PrefetchWasted      uint64 `json:"prefetch_wasted"`
	PrefetchUnusedAtEnd uint64 `json:"prefetch_unused_at_end"`
	MaxFilePrefetchHW   int    `json:"max_file_prefetch_outstanding"`

	DiskUtilization   float64 `json:"disk_utilization"`
	DiskPrefetchShare float64 `json:"disk_prefetch_share"`
	DiskMaxQueue      int     `json:"disk_max_queue"`
	NetUtilization    float64 `json:"net_utilization"`
	NetMaxQueue       int     `json:"net_max_queue"`
	EventsFired       uint64  `json:"events_fired"`

	HitRatio  float64 `json:"hit_ratio"`
	Reads     uint64  `json:"reads"`
	Writes    uint64  `json:"writes"`
	SimTimeNs int64   `json:"sim_time_ns"`
}

func toResultJSON(r Result) resultJSON {
	return resultJSON{
		FS:       r.Cell.FS.String(),
		Workload: r.Cell.Workload.String(),
		Alg:      r.Cell.Alg.Name(),
		CacheMB:  r.Cell.CacheMB,

		AvgReadMs:      r.AvgReadMs,
		DiskAccesses:   r.DiskAccesses,
		DiskReads:      r.DiskReads,
		DiskWrites:     r.DiskWrites,
		WritesPerBlock: r.WritesPerBlock,

		PrefetchIssued:     r.PrefetchIssued,
		FallbackFraction:   r.FallbackFraction,
		MispredictionRatio: r.MispredictionRatio,

		PrefetchTimely:      r.PrefetchTimely,
		PrefetchLate:        r.PrefetchLate,
		PrefetchWasted:      r.PrefetchWasted,
		PrefetchUnusedAtEnd: r.PrefetchUnusedAtEnd,
		MaxFilePrefetchHW:   r.MaxFilePrefetchHW,

		DiskUtilization:   r.DiskUtilization,
		DiskPrefetchShare: r.DiskPrefetchShare,
		DiskMaxQueue:      r.DiskMaxQueue,
		NetUtilization:    r.NetUtilization,
		NetMaxQueue:       r.NetMaxQueue,
		EventsFired:       r.EventsFired,

		HitRatio:  r.HitRatio,
		Reads:     r.Reads,
		Writes:    r.Writes,
		SimTimeNs: int64(r.SimTime),
	}
}

// WriteResultJSONL emits one compact JSON object per result, one per
// line, for downstream analysis tools.
func WriteResultJSONL(w io.Writer, results ...Result) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		if err := enc.Encode(toResultJSON(r)); err != nil {
			return err
		}
	}
	return nil
}

// traceRecordJSON is the stable JSON shape of one sim.TraceRecord.
type traceRecordJSON struct {
	AtNs      int64  `json:"at_ns"`
	Kind      string `json:"kind"`
	Resource  string `json:"resource,omitempty"`
	Priority  int    `json:"prio,omitempty"`
	WaitNs    int64  `json:"wait_ns,omitempty"`
	ServiceNs int64  `json:"service_ns,omitempty"`
	QueueLen  int    `json:"qlen,omitempty"`
	Seq       uint64 `json:"seq,omitempty"`
}

// JSONLTracer is a sim.Tracer that streams every record as one JSON
// line (the lapsim -trace-out format). Encoding errors are sticky and
// surfaced by Err, because Record sits on the simulator's hot path and
// cannot return one.
type JSONLTracer struct {
	enc *json.Encoder
	err error
	n   uint64
}

// NewJSONLTracer wraps w; the caller owns buffering and closing.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{enc: json.NewEncoder(w)}
}

// Record implements sim.Tracer.
func (t *JSONLTracer) Record(rec sim.TraceRecord) {
	if t.err != nil {
		return
	}
	t.n++
	t.err = t.enc.Encode(traceRecordJSON{
		AtNs:      int64(rec.At),
		Kind:      rec.Kind.String(),
		Resource:  rec.Resource,
		Priority:  int(rec.Priority),
		WaitNs:    int64(rec.Wait),
		ServiceNs: int64(rec.Service),
		QueueLen:  rec.QueueLen,
		Seq:       rec.Seq,
	})
}

// Records returns how many records were written.
func (t *JSONLTracer) Records() uint64 { return t.n }

// Err returns the first write error, if any.
func (t *JSONLTracer) Err() error { return t.err }

// DecodeFigureJSON parses a figure previously written by WriteJSON,
// for tools that post-process saved results.
func DecodeFigureJSON(r io.Reader) (Figure, error) {
	var doc figureJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return Figure{}, err
	}
	f := Figure{ID: doc.ID, Title: doc.Title, Unit: doc.Unit, Sizes: doc.SizesMB}
	for _, s := range doc.Series {
		if len(s.Values) != len(doc.SizesMB) {
			return Figure{}, fmt.Errorf("experiment: series %q has %d values for %d sizes",
				s.Algorithm, len(s.Values), len(doc.SizesMB))
		}
		f.Series = append(f.Series, Series{Alg: s.Algorithm, Values: s.Values})
	}
	return f, nil
}
