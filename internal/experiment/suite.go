package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// Suite runs matrices on demand and caches them, so the four
// (workload, fs) sweeps regenerate all nine paper artifacts.
type Suite struct {
	Scale    Scale
	Workers  int
	Progress io.Writer // optional: per-matrix progress lines

	matrices map[string]*Matrix
}

// NewSuite prepares a suite at the given scale.
func NewSuite(s Scale, workers int) *Suite {
	return &Suite{Scale: s, Workers: workers, matrices: make(map[string]*Matrix)}
}

func matrixKey(fs FSKind, wl WorkloadKind) string {
	return fmt.Sprintf("%s/%s", wl, fs)
}

// Matrix returns (running if needed) the full standard-algorithm sweep
// for one (fs, workload) pair. The standard sweep covers every figure
// that reads from the pair.
func (s *Suite) Matrix(fs FSKind, wl WorkloadKind) (*Matrix, error) {
	key := matrixKey(fs, wl)
	if m, ok := s.matrices[key]; ok {
		return m, nil
	}
	if s.Progress != nil {
		fmt.Fprintf(s.Progress, "running %s sweep (%d algorithms x %d cache sizes)...\n",
			key, len(core.StandardAlgorithms()), len(s.Scale.CacheSizesMB))
	}
	m, err := Run(s.Scale, fs, wl, core.StandardAlgorithms(), s.Workers)
	if err != nil {
		return nil, err
	}
	s.matrices[key] = m
	return m, nil
}

// Figure runs whatever the artifact needs and renders it.
func (s *Suite) Figure(id string) (Figure, error) {
	fs, wl, err := MatrixKeyForFigure(id)
	if err != nil {
		return Figure{}, err
	}
	m, err := s.Matrix(fs, wl)
	if err != nil {
		return Figure{}, err
	}
	return BuildFigure(id, m)
}

// Claims checks the in-text quantitative claims of the paper against
// the simulated results and renders a report (see DESIGN.md §4).
func (s *Suite) Claims() (string, error) {
	var b strings.Builder
	b.WriteString("In-text claims (paper section -> measured)\n\n")

	// §2.2: OBA-fallback share of prefetched blocks: <~1% CHARISMA
	// (large files), ~25% Sprite (small files). Averaged over the
	// prefetching algorithms that use IS_PPM.
	chPafs, err := s.Matrix(PAFS, Charisma)
	if err != nil {
		return "", err
	}
	spPafs, err := s.Matrix(PAFS, Sprite)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  §2.2 fallback fraction, CHARISMA (paper: ~1%%): %.1f%%\n",
		100*avgOver(chPafs, isppmAlgs(), func(r Result) float64 { return r.FallbackFraction }))
	fmt.Fprintf(&b, "  §2.2 fallback fraction, Sprite   (paper: ~25%%): %.1f%%\n",
		100*avgOver(spPafs, isppmAlgs(), func(r Result) float64 { return r.FallbackFraction }))

	// §5.2: misprediction ratio at 4MB on Sprite/PAFS: Ln_Agr_OBA 32%
	// vs Ln_Agr_IS_PPM 15%.
	oba := spPafs.MustGet("Ln_Agr_OBA", 4)
	isp := spPafs.MustGet("Ln_Agr_IS_PPM:1", 4)
	fmt.Fprintf(&b, "  §5.2 misprediction @4MB Sprite/PAFS, Ln_Agr_OBA    (paper: 32%%): %.1f%%\n",
		100*oba.MispredictionRatio)
	fmt.Fprintf(&b, "  §5.2 misprediction @4MB Sprite/PAFS, Ln_Agr_IS_PPM (paper: 15%%): %.1f%%\n",
		100*isp.MispredictionRatio)

	// §5.2: xFS prefetches ~2x the blocks PAFS prefetches (CHARISMA).
	chXfs, err := s.Matrix(XFS, Charisma)
	if err != nil {
		return "", err
	}
	var ratioSum float64
	var n int
	for _, alg := range []string{"Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3"} {
		for _, mb := range s.Scale.CacheSizesMB {
			p := chPafs.MustGet(alg, mb).PrefetchIssued
			x := chXfs.MustGet(alg, mb).PrefetchIssued
			if p > 0 {
				ratioSum += float64(x) / float64(p)
				n++
			}
		}
	}
	if n > 0 {
		fmt.Fprintf(&b, "  §5.2 xFS/PAFS prefetched-block ratio, CHARISMA (paper: ~2x): %.2fx\n",
			ratioSum/float64(n))
	}

	// §5.2: speed-up of the best aggressive algorithm over NP at the
	// largest cache (paper: up to 4.6x on CHARISMA/PAFS).
	large := s.Scale.CacheSizesMB[len(s.Scale.CacheSizesMB)-1]
	np := chPafs.MustGet("NP", large).AvgReadMs
	best := np
	bestName := "NP"
	for _, alg := range chPafs.AlgNames {
		if v := chPafs.MustGet(alg, large).AvgReadMs; v < best {
			best, bestName = v, alg
		}
	}
	if best > 0 {
		fmt.Fprintf(&b, "  §5.2 best speed-up over NP @%dMB CHARISMA/PAFS (paper: up to 4.6x): %.2fx (%s)\n",
			large, np/best, bestName)
	}
	return b.String(), nil
}

func isppmAlgs() []string {
	return []string{"IS_PPM:1", "Ln_Agr_IS_PPM:1", "IS_PPM:3", "Ln_Agr_IS_PPM:3"}
}

func avgOver(m *Matrix, algs []string, f func(Result) float64) float64 {
	var sum float64
	var n int
	for _, a := range algs {
		for mb, r := range m.Results[a] {
			_ = mb
			sum += f(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RenderAll runs everything and renders every artifact plus the claims
// report, in paper order.
func (s *Suite) RenderAll() (string, error) {
	var b strings.Builder
	b.WriteString("Table 1: Simulation parameters (paper values)\n")
	b.WriteString(Table1())
	b.WriteByte('\n')
	for _, id := range FigureIDs() {
		fig, err := s.Figure(id)
		if err != nil {
			return "", err
		}
		b.WriteString(fig.Render())
		b.WriteByte('\n')
	}
	claims, err := s.Claims()
	if err != nil {
		return "", err
	}
	b.WriteString(claims)
	return b.String(), nil
}

// SummaryByAlg renders, for diagnostics, all scalar metrics of one
// matrix sorted by algorithm then cache size.
func SummaryByAlg(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s\n", m.Workload, m.FS)
	algs := append([]string(nil), m.AlgNames...)
	if len(algs) == 0 {
		for a := range m.Results {
			algs = append(algs, a)
		}
		sort.Strings(algs)
	}
	for _, a := range algs {
		for _, mb := range m.CacheSizesMB {
			r, ok := m.Get(a, mb)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %-18s %2dMB  read=%7.3fms  disk=%8d (r=%d w=%d)  hit=%.2f  pf=%7d  fb=%.2f  mis=%.2f  T=%8.3fs\n",
				a, mb, r.AvgReadMs, r.DiskAccesses, r.DiskReads, r.DiskWrites,
				r.HitRatio, r.PrefetchIssued, r.FallbackFraction, r.MispredictionRatio,
				r.SimTime.Seconds())
		}
	}
	return b.String()
}
