package experiment

import (
	"testing"

	"repro/internal/core"
)

func TestShapeProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	s := SmallScale()
	for _, alg := range core.StandardAlgorithms() {
		for _, mb := range []int{1, 4, 16} {
			r, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma, Alg: alg, CacheMB: mb})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-16s %2dMB read=%7.3fms disk=%6d (r=%5d w=%5d) hit=%.3f pf=%5d mis=%.2f wpb=%.2f T=%6.2fs\n",
				alg.Name(), mb, r.AvgReadMs, r.DiskAccesses, r.DiskReads, r.DiskWrites, r.HitRatio,
				r.PrefetchIssued, r.MispredictionRatio, r.WritesPerBlock, r.SimTime.Seconds())
		}
	}
}

func TestShapeProbeSprite(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	s := SmallScale()
	for _, alg := range core.StandardAlgorithms() {
		for _, mb := range []int{1, 4, 16} {
			r, err := RunCell(s, Cell{FS: PAFS, Workload: Sprite, Alg: alg, CacheMB: mb})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-16s %2dMB read=%7.3fms disk=%6d (r=%5d w=%5d) hit=%.3f pf=%5d mis=%.2f fb=%.2f T=%6.2fs\n",
				alg.Name(), mb, r.AvgReadMs, r.DiskAccesses, r.DiskReads, r.DiskWrites, r.HitRatio,
				r.PrefetchIssued, r.MispredictionRatio, r.FallbackFraction, r.SimTime.Seconds())
		}
	}
}
