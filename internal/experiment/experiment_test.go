package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRunCellDeterministic(t *testing.T) {
	s := TinyScale()
	c := Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrOBA, CacheMB: 4}
	a, err := RunCell(s, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(s, c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same cell produced different results:\n%+v\n%+v", a, b)
	}
}

func TestRunCellRejectsBadConfig(t *testing.T) {
	s := TinyScale()
	if _, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecNP, CacheMB: 0}); err == nil {
		t.Error("zero cache accepted")
	}
	if _, err := RunCell(s, Cell{FS: FSKind(9), Workload: Charisma, Alg: core.SpecNP, CacheMB: 1}); err == nil {
		t.Error("bad fs accepted")
	}
	if _, err := RunCell(s, Cell{FS: PAFS, Workload: WorkloadKind(9), Alg: core.SpecNP, CacheMB: 1}); err == nil {
		t.Error("bad workload accepted")
	}
	bad := TinyScale()
	bad.Charisma.Apps = 0
	if _, err := RunCell(bad, Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecNP, CacheMB: 1}); err == nil {
		t.Error("bad workload params accepted")
	}
}

func TestRunCellProducesSaneMetrics(t *testing.T) {
	s := TinyScale()
	r, err := RunCell(s, Cell{FS: XFS, Workload: Sprite, Alg: core.SpecLnAgrISPPM1, CacheMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Reads == 0 || r.AvgReadMs <= 0 {
		t.Error("no read activity measured")
	}
	if r.DiskAccesses == 0 || r.DiskAccesses != r.DiskReads+r.DiskWrites {
		t.Error("disk accounting inconsistent")
	}
	if r.PrefetchIssued == 0 {
		t.Error("aggressive algorithm issued no prefetches")
	}
	if r.MispredictionRatio < 0 || r.MispredictionRatio > 1 {
		t.Errorf("misprediction ratio %v out of range", r.MispredictionRatio)
	}
	if r.HitRatio < 0 || r.HitRatio > 1 {
		t.Errorf("hit ratio %v out of range", r.HitRatio)
	}
	if r.SimTime <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestRunMatrixCoversSweep(t *testing.T) {
	s := TinyScale()
	algs := []core.AlgSpec{core.SpecNP, core.SpecLnAgrOBA}
	m, err := Run(s, PAFS, Charisma, algs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algs {
		for _, mb := range s.CacheSizesMB {
			if _, ok := m.Get(a.Name(), mb); !ok {
				t.Errorf("missing result %s @ %dMB", a.Name(), mb)
			}
		}
	}
	if _, ok := m.Get("nonsense", 1); ok {
		t.Error("Get returned a result for an unknown algorithm")
	}
	if _, ok := m.Get("NP", 3); ok {
		t.Error("Get returned a result for an unswept size")
	}
}

func TestRunMatrixParallelEqualsSerial(t *testing.T) {
	s := TinyScale()
	algs := []core.AlgSpec{core.SpecNP, core.SpecOBA}
	serial, err := Run(s, XFS, Sprite, algs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(s, XFS, Sprite, algs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algs {
		for _, mb := range s.CacheSizesMB {
			if serial.MustGet(a.Name(), mb) != parallel.MustGet(a.Name(), mb) {
				t.Errorf("parallelism changed %s @ %dMB", a.Name(), mb)
			}
		}
	}
}

func TestFigureDefinitionsComplete(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 9 {
		t.Fatalf("%d artifacts, want 9 (fig4..fig11 + table2)", len(ids))
	}
	for _, id := range ids {
		fs, wl, err := MatrixKeyForFigure(id)
		if err != nil {
			t.Fatal(err)
		}
		algs, err := AlgsForFigure(id)
		if err != nil || len(algs) == 0 {
			t.Errorf("figure %s has no algorithms", id)
		}
		_ = fs
		_ = wl
	}
	if _, _, err := MatrixKeyForFigure("fig99"); err == nil {
		t.Error("unknown figure accepted")
	}
	if _, err := AlgsForFigure("fig99"); err == nil {
		t.Error("unknown figure accepted by AlgsForFigure")
	}
}

func TestFigureMapping(t *testing.T) {
	cases := map[string]struct {
		fs FSKind
		wl WorkloadKind
	}{
		"fig4": {PAFS, Charisma}, "fig5": {XFS, Charisma},
		"fig6": {PAFS, Sprite}, "fig7": {XFS, Sprite},
		"fig8": {PAFS, Charisma}, "fig9": {XFS, Charisma},
		"fig10": {PAFS, Sprite}, "fig11": {XFS, Sprite},
		"table2": {PAFS, Charisma},
	}
	for id, want := range cases {
		fs, wl, err := MatrixKeyForFigure(id)
		if err != nil {
			t.Fatal(err)
		}
		if fs != want.fs || wl != want.wl {
			t.Errorf("%s maps to %s/%s, want %s/%s", id, wl, fs, want.wl, want.fs)
		}
	}
}

func TestSuiteBuildsFigureAndReusesMatrix(t *testing.T) {
	suite := NewSuite(TinyScale(), 2)
	fig4, err := suite.Figure("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Series) != 7 {
		t.Errorf("fig4 has %d series, want 7", len(fig4.Series))
	}
	if len(fig4.Sizes) != len(TinyScale().CacheSizesMB) {
		t.Error("fig4 sizes wrong")
	}
	// fig8 must reuse the same matrix (no recomputation) and subset
	// the algorithms.
	before := len(suite.matrices)
	fig8, err := suite.Figure("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.matrices) != before {
		t.Error("fig8 recomputed the CHARISMA/PAFS matrix")
	}
	if len(fig8.Series) != 4 {
		t.Errorf("fig8 has %d series, want 4 (NP + 3 aggressive)", len(fig8.Series))
	}
	// Cross-check: the same cell appears in both figures consistently.
	readMs, _ := fig4.Value("NP", 4)
	if readMs <= 0 {
		t.Error("fig4 NP value missing")
	}
	if _, ok := fig4.Value("NP", 3); ok {
		t.Error("Value returned a point for an unswept size")
	}
	if _, ok := fig4.Value("bogus", 4); ok {
		t.Error("Value returned a point for an unknown algorithm")
	}
}

func TestFigureRenderFormat(t *testing.T) {
	suite := NewSuite(TinyScale(), 2)
	fig, err := suite.Figure("table2")
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Render()
	for _, want := range []string{"Table 2", "NP", "Ln_Agr_OBA", "Ln_Agr_IS_PPM:1", "Ln_Agr_IS_PPM:3", "1MB", "16MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBuildFigureRejectsWrongMatrix(t *testing.T) {
	s := TinyScale()
	m, err := Run(s, XFS, Sprite, []core.AlgSpec{core.SpecNP}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFigure("fig4", m); err == nil {
		t.Error("fig4 built from a Sprite/xFS matrix")
	}
	if _, err := BuildFigure("fig7", m); err == nil {
		t.Error("figure built despite missing algorithms")
	}
	if _, err := BuildFigure("nope", m); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if PAFS.String() != "PAFS" || XFS.String() != "xFS" {
		t.Error("FSKind strings wrong")
	}
	if Charisma.String() != "CHARISMA" || Sprite.String() != "Sprite" {
		t.Error("WorkloadKind strings wrong")
	}
	c := Cell{FS: XFS, Workload: Sprite, Alg: core.SpecNP, CacheMB: 8}
	if c.String() != "Sprite/xFS/NP/8MB" {
		t.Errorf("Cell.String = %q", c.String())
	}
}

func TestTable1Passthrough(t *testing.T) {
	if !strings.Contains(Table1(), "Disk Read Seek") {
		t.Error("Table1 output incomplete")
	}
}

func TestScalesValidate(t *testing.T) {
	for _, s := range []Scale{FullScale(), SmallScale(), TinyScale()} {
		if err := s.PM.Validate(); err != nil {
			t.Errorf("%s PM: %v", s.Name, err)
		}
		if err := s.NOW.Validate(); err != nil {
			t.Errorf("%s NOW: %v", s.Name, err)
		}
		if err := s.Charisma.Validate(); err != nil {
			t.Errorf("%s charisma: %v", s.Name, err)
		}
		if err := s.Sprite.Validate(); err != nil {
			t.Errorf("%s sprite: %v", s.Name, err)
		}
		if len(s.CacheSizesMB) == 0 {
			t.Errorf("%s has no cache sizes", s.Name)
		}
	}
}
