package experiment

import (
	"testing"

	"repro/internal/core"
)

// TestHeadlineResultHolds locks in the paper's central claim as a
// regression test: linear aggressive prefetching substantially beats
// no prefetching on the parallel workload. If a change to the
// simulator, the cache, the driver or the workload breaks this, the
// suite fails loudly rather than silently producing a flat figure.
func TestHeadlineResultHolds(t *testing.T) {
	s := TinyScale()
	np, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecNP, CacheMB: 16})
	if err != nil {
		t.Fatal(err)
	}
	agr, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrISPPM1, CacheMB: 16})
	if err != nil {
		t.Fatal(err)
	}
	if agr.AvgReadMs >= np.AvgReadMs/1.5 {
		t.Errorf("headline result lost: NP %.3f ms vs Ln_Agr_IS_PPM:1 %.3f ms (want >=1.5x)",
			np.AvgReadMs, agr.AvgReadMs)
	}
	if agr.HitRatio <= np.HitRatio {
		t.Errorf("prefetching did not raise the hit ratio: %.3f vs %.3f",
			agr.HitRatio, np.HitRatio)
	}
}

// TestSpriteHeadlineHolds does the same for the NOW workload.
func TestSpriteHeadlineHolds(t *testing.T) {
	s := TinyScale()
	np, err := RunCell(s, Cell{FS: PAFS, Workload: Sprite, Alg: core.SpecNP, CacheMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	agr, err := RunCell(s, Cell{FS: PAFS, Workload: Sprite, Alg: core.SpecLnAgrISPPM1, CacheMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if agr.AvgReadMs >= np.AvgReadMs/1.3 {
		t.Errorf("Sprite headline lost: NP %.3f ms vs Ln_Agr_IS_PPM:1 %.3f ms",
			np.AvgReadMs, agr.AvgReadMs)
	}
}

// TestLinearBeatsUnlimitedOnDiskTraffic locks in the paper's §3.2
// motivation: the linear throttle keeps disk traffic far below the
// unthrottled aggressive variant.
func TestLinearBeatsUnlimitedOnDiskTraffic(t *testing.T) {
	s := TinyScale()
	lin, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrISPPM1, CacheMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	unl := core.SpecLnAgrISPPM1
	unl.MaxOutstanding = 0
	unlimited, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma, Alg: unl, CacheMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.PrefetchIssued <= lin.PrefetchIssued {
		t.Errorf("unlimited aggression issued %d prefetches vs linear %d; the throttle does nothing",
			unlimited.PrefetchIssued, lin.PrefetchIssued)
	}
}
