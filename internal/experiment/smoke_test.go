package experiment

import (
	"testing"

	"repro/internal/core"
)

func TestSmokeCells(t *testing.T) {
	s := TinyScale()
	for _, c := range []Cell{
		{FS: PAFS, Workload: Charisma, Alg: core.SpecNP, CacheMB: 4},
		{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrOBA, CacheMB: 4},
		{FS: PAFS, Workload: Charisma, Alg: core.SpecLnAgrISPPM1, CacheMB: 4},
		{FS: XFS, Workload: Sprite, Alg: core.SpecNP, CacheMB: 4},
		{FS: XFS, Workload: Sprite, Alg: core.SpecLnAgrISPPM1, CacheMB: 4},
	} {
		r, err := RunCell(s, c)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-40s read=%7.3fms disk=%7d hit=%.2f pf=%6d fb=%.2f mis=%.2f T=%7.3fs reads=%d\n",
			c, r.AvgReadMs, r.DiskAccesses, r.HitRatio, r.PrefetchIssued, r.FallbackFraction, r.MispredictionRatio, r.SimTime.Seconds(), r.Reads)
	}
}
