package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestSuiteRenderAllContainsEverything(t *testing.T) {
	suite := NewSuite(TinyScale(), 0)
	var progress bytes.Buffer
	suite.Progress = &progress
	out, err := suite.RenderAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1", "paper Fig. 4", "paper Fig. 5", "paper Fig. 6",
		"paper Fig. 7", "paper Fig. 8", "paper Fig. 9", "paper Fig. 10",
		"paper Fig. 11", "paper Table 2", "In-text claims",
		"fallback fraction", "misprediction", "prefetched-block ratio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
	// Progress lines: one per (workload, fs) sweep.
	if got := strings.Count(progress.String(), "running"); got != 4 {
		t.Errorf("%d progress lines, want 4", got)
	}
}

func TestSuiteClaimsValuesInRange(t *testing.T) {
	suite := NewSuite(TinyScale(), 0)
	out, err := suite.Claims()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"§2.2", "§5.2", "%", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("claims missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryByAlg(t *testing.T) {
	suite := NewSuite(TinyScale(), 0)
	m, err := suite.Matrix(PAFS, Sprite)
	if err != nil {
		t.Fatal(err)
	}
	out := SummaryByAlg(m)
	if !strings.Contains(out, "Sprite on PAFS") {
		t.Error("summary header missing")
	}
	for _, alg := range []string{"NP", "Ln_Agr_IS_PPM:3"} {
		if !strings.Contains(out, alg) {
			t.Errorf("summary missing %s", alg)
		}
	}
	if !strings.Contains(out, "read=") || !strings.Contains(out, "disk=") {
		t.Error("summary metrics missing")
	}
}

func TestSummaryByAlgWithoutNameOrder(t *testing.T) {
	// A matrix assembled by hand (no AlgNames) must still render, in
	// sorted algorithm order.
	m := &Matrix{
		FS: PAFS, Workload: Sprite,
		CacheSizesMB: []int{1},
		Results: map[string]map[int]Result{
			"B": {1: {}},
			"A": {1: {}},
		},
	}
	out := SummaryByAlg(m)
	if strings.Index(out, "A") > strings.Index(out, "B") {
		t.Error("fallback ordering not sorted")
	}
}

func TestMustGetPanicsOnMissing(t *testing.T) {
	m := &Matrix{Results: map[string]map[int]Result{}}
	defer func() {
		if recover() == nil {
			t.Error("MustGet did not panic")
		}
	}()
	m.MustGet("NP", 1)
}

func TestRunTraceRejectsMismatchedMachine(t *testing.T) {
	s := TinyScale()
	tr, err := runTraceFor(s)
	if err != nil {
		t.Fatal(err)
	}
	mach := s.NOW
	mach.Nodes = 1 // trace uses more nodes
	cell := Cell{FS: PAFS, Workload: Sprite, Alg: core.SpecNP, CacheMB: 1}
	if _, err := RunTrace(tr, mach, cell, 0); err == nil {
		t.Error("trace on too-small machine accepted")
	}
}

func TestRunTraceMatchesRunCell(t *testing.T) {
	s := TinyScale()
	tr, err := runTraceFor(s)
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{FS: PAFS, Workload: Sprite, Alg: core.SpecLnAgrOBA, CacheMB: 4}
	direct, err := RunCell(s, cell)
	if err != nil {
		t.Fatal(err)
	}
	viaTrace, err := RunTrace(tr, s.NOW, cell, s.WarmFraction)
	if err != nil {
		t.Fatal(err)
	}
	if direct != viaTrace {
		t.Error("RunTrace with the generated trace differs from RunCell")
	}
}

func runTraceFor(s Scale) (*workload.Trace, error) {
	return workload.GenerateSprite(s.Sprite)
}
