package experiment

import (
	"testing"

	"repro/internal/core"
)

func TestSpriteMisProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	s := SmallScale()
	for _, alg := range []core.AlgSpec{core.SpecLnAgrOBA, core.SpecLnAgrISPPM1} {
		r, err := RunCell(s, Cell{FS: PAFS, Workload: Sprite, Alg: alg, CacheMB: 4})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-16s mis=%.3f pf=%d read=%.3f\n", alg.Name(), r.MispredictionRatio, r.PrefetchIssued, r.AvgReadMs)
	}
}
