package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// AblationSpec is one variant of one design-choice study.
type AblationSpec struct {
	Study   string // e.g. "linearity"
	Variant string // e.g. "linear1"
	Alg     core.AlgSpec
}

// Ablations enumerates the design-choice studies DESIGN.md calls out.
// All run as Ln_Agr_IS_PPM:1 variants on CHARISMA/PAFS at 4 MB per
// node unless the study itself varies those parameters. The unlimited
// variant belongs at the tiny scale only (its cache churn — the very
// behaviour the paper's throttle exists to prevent — makes it
// explosively expensive at larger scales).
func Ablations() []AblationSpec {
	base := core.SpecLnAgrISPPM1
	var out []AblationSpec
	add := func(study, variant string, alg core.AlgSpec) {
		out = append(out, AblationSpec{Study: study, Variant: variant, Alg: alg})
	}
	add("linearity", "linear1", base)
	k4 := base
	k4.MaxOutstanding = 4
	add("linearity", "window4", k4)
	unl := base
	unl.MaxOutstanding = 0
	add("linearity", "unlimited", unl)
	// The feedback-controlled window sits between linear1 and the
	// static window4: it starts linear and must earn depth from
	// accuracy and timeliness.
	add("linearity", "adaptive", core.AdaptiveVariant(base, core.DefaultAdaptiveCap))

	add("linkPolicy", "mostRecent", base)
	prob := base
	prob.MostProbableLinks = true
	add("linkPolicy", "mostProbable", prob)

	for order := 1; order <= 4; order++ {
		o := base
		o.Order = order
		add("order", fmt.Sprintf("order%d", order), o)
	}

	add("priority", "lowPriority", base)
	up := base
	up.UserPriorityPrefetch = true
	add("priority", "userPriority", up)

	add("fallback", "withFallback", base)
	nofb := base
	nofb.NoFallback = true
	add("fallback", "noFallback", nofb)

	add("modelling", "intervalSize", base)
	bp := base
	bp.Kind = core.AlgBlockPPM
	add("modelling", "blockPPM", bp)
	return out
}

// RunAblations executes every ablation cell at the given scale
// (CHARISMA on PAFS, 4 MB per node) and renders a comparison table.
func RunAblations(s Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Design-choice ablations, CHARISMA on PAFS @ 4MB/node\n")
	fmt.Fprintf(&b, "(scale %s)\n\n", s.Name)
	fmt.Fprintf(&b, "%-12s %-14s %-28s %10s %10s %12s\n",
		"study", "variant", "algorithm", "read(ms)", "mispred%", "disk ops")
	lastStudy := ""
	for _, ab := range Ablations() {
		res, err := RunCell(s, Cell{FS: PAFS, Workload: Charisma, Alg: ab.Alg, CacheMB: 4})
		if err != nil {
			return "", fmt.Errorf("%s/%s: %w", ab.Study, ab.Variant, err)
		}
		if ab.Study != lastStudy && lastStudy != "" {
			b.WriteByte('\n')
		}
		lastStudy = ab.Study
		fmt.Fprintf(&b, "%-12s %-14s %-28s %10.3f %10.1f %12d\n",
			ab.Study, ab.Variant, ab.Alg.Name(),
			res.AvgReadMs, 100*res.MispredictionRatio, res.DiskAccesses)
	}
	return b.String(), nil
}
