package blockbuf

import (
	"sync"
	"testing"
)

// TestLiveAccounting: Live is the number of buffers out of the pool —
// Get raises it, only the FINAL Release lowers it, Retain never moves
// it. This counter is the chaos harness's leak invariant, so its
// semantics are pinned here.
func TestLiveAccounting(t *testing.T) {
	p := NewPool(32)
	if p.Live() != 0 {
		t.Fatalf("fresh pool Live = %d, want 0", p.Live())
	}
	bufs := make([]*Buf, 5)
	for i := range bufs {
		bufs[i] = p.Get()
		if got := p.Live(); got != int64(i+1) {
			t.Fatalf("after %d Gets Live = %d", i+1, got)
		}
	}
	// Extra references do not change liveness — the buffer is out of
	// the pool whether one holder or three share it.
	bufs[0].Retain()
	bufs[0].Retain()
	if got := p.Live(); got != 5 {
		t.Errorf("Retain moved Live to %d", got)
	}
	bufs[0].Release()
	bufs[0].Release()
	if got := p.Live(); got != 5 {
		t.Errorf("non-final Release moved Live to %d", got)
	}
	for _, b := range bufs {
		b.Release()
	}
	if got := p.Live(); got != 0 {
		t.Errorf("all buffers released, Live = %d", got)
	}
}

// TestLiveUnderConcurrentChurn: many goroutines get/retain/release;
// the counter must come back to exactly zero (no lost updates, no
// double counts) — run with -race this also proves the accounting
// path is race-free.
func TestLiveUnderConcurrentChurn(t *testing.T) {
	p := NewPool(16)
	p.SetPoison(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := make([]*Buf, 0, 4)
			for i := 0; i < 2000; i++ {
				b := p.Get()
				if i%3 == 0 {
					b.Retain()
					b.Release()
				}
				held = append(held, b)
				if len(held) == cap(held) {
					for _, h := range held {
						h.Release()
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				h.Release()
			}
		}()
	}
	wg.Wait()
	if got := p.Live(); got != 0 {
		t.Errorf("after churn Live = %d, want 0 (leak or double count)", got)
	}
}
