//go:build !race

package blockbuf

const raceEnabled = false
