// Package blockbuf provides pooled, reference-counted block buffers:
// the allocation-free currency of the lapcache data path. A Buf is
// born from a Pool with one reference; every holder that wants to keep
// it past the call that handed it over takes its own reference with
// Retain and drops it with Release. When the last reference falls the
// buffer returns to the pool and is recycled by a later Get.
//
// Ownership rules (see DESIGN.md §7 for the cache lifecycle):
//
//   - Pool.Get returns a Buf owned by the caller (refcount 1).
//   - Passing a Buf to a consumer that documents *taking ownership*
//     (e.g. the block cache's Put) transfers that one reference; the
//     caller must Retain first if it still needs the buffer.
//   - Producers that hand out a Buf they still own (e.g. the block
//     cache's Get) Retain on the caller's behalf; the caller must
//     Release when done.
//
// Misuse is detected, not silently tolerated: releasing more times
// than retained panics, retaining a dead buffer panics, and in poison
// mode a write to a buffer after its last Release is caught at the
// next recycle.
package blockbuf

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// poisonByte fills released buffers in poison mode. 0xDB is unlikely
// to appear as a full-block fill in tests using FillPattern data.
const poisonByte = 0xDB

// Pool hands out fixed-size reference-counted buffers backed by a
// sync.Pool. Safe for concurrent use.
type Pool struct {
	size   int
	poison atomic.Bool
	pool   sync.Pool

	allocs   atomic.Uint64 // buffers newly allocated
	recycles atomic.Uint64 // buffers reused from the pool
	live     atomic.Int64  // buffers out of the pool (Get minus last Release)
}

// NewPool returns a pool of buffers of exactly size bytes.
func NewPool(size int) *Pool {
	if size <= 0 {
		panic(fmt.Sprintf("blockbuf: invalid buffer size %d", size))
	}
	return &Pool{size: size}
}

// BlockSize returns the size of every buffer in the pool.
func (p *Pool) BlockSize() int { return p.size }

// SetPoison switches the pool's test mode: every Release of a last
// reference overwrites the buffer with a poison pattern, and every
// recycle verifies the pattern is intact — catching holders that keep
// writing through a stale reference. Meant for tests; poisoning costs
// a full-buffer write per recycle.
func (p *Pool) SetPoison(on bool) { p.poison.Store(on) }

// Stats reports how many buffers were newly allocated and how many
// Gets were served by recycling.
func (p *Pool) Stats() (allocs, recycles uint64) {
	return p.allocs.Load(), p.recycles.Load()
}

// Live returns how many buffers are currently out of the pool: Gets
// minus final Releases. Every live buffer is held by someone — a
// cache entry, an in-flight response, a caller — so once a system
// built on the pool has quiesced and released its caches, a nonzero
// Live is a leak. The chaos harness asserts Live()==0 after teardown.
func (p *Pool) Live() int64 { return p.live.Load() }

// Get returns a buffer with refcount 1. Contents are undefined (a
// recycled buffer carries stale or poison bytes); the caller fills it.
func (p *Pool) Get() *Buf {
	if v := p.pool.Get(); v != nil {
		b := v.(*Buf)
		if p.poison.Load() {
			b.checkPoison()
		}
		b.refs.Store(1)
		p.recycles.Add(1)
		p.live.Add(1)
		return b
	}
	p.allocs.Add(1)
	p.live.Add(1)
	b := &Buf{pool: p, data: make([]byte, p.size)}
	b.refs.Store(1)
	return b
}

// Buf is one pooled block buffer. The zero value is not usable; get
// one from a Pool.
type Buf struct {
	pool *Pool
	refs atomic.Int32
	data []byte
}

// Bytes returns the buffer's backing slice. Valid only while the
// caller holds a reference; the slice must not be retained past
// Release.
func (b *Buf) Bytes() []byte { return b.data }

// Refs returns the current reference count (for tests and
// assertions).
func (b *Buf) Refs() int32 { return b.refs.Load() }

// Retain takes an additional reference and returns b for chaining.
// The caller must already hold a reference (retaining a buffer whose
// count reached zero is a use-after-free and panics).
func (b *Buf) Retain() *Buf {
	for {
		n := b.refs.Load()
		if n <= 0 {
			panic(fmt.Sprintf("blockbuf: Retain of a released buffer (refs=%d)", n))
		}
		if b.refs.CompareAndSwap(n, n+1) {
			return b
		}
	}
}

// Release drops one reference. The last Release returns the buffer to
// its pool (poisoning it first in poison mode); releasing more times
// than retained panics.
func (b *Buf) Release() {
	n := b.refs.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("blockbuf: Release of an already-released buffer (refs=%d)", n))
	}
	if n > 0 {
		return
	}
	b.pool.live.Add(-1)
	if b.pool.poison.Load() {
		for i := range b.data {
			b.data[i] = poisonByte
		}
	}
	b.pool.pool.Put(b)
}

// checkPoison verifies a recycled buffer still carries the poison
// pattern written by its last Release; a mismatch means some holder
// wrote through a reference it no longer owned.
func (b *Buf) checkPoison() {
	for i, c := range b.data {
		if c != poisonByte {
			panic(fmt.Sprintf(
				"blockbuf: released buffer was written while pooled (byte %d = %#x): use after Release",
				i, c))
		}
	}
}
