package blockbuf

import (
	"sync"
	"testing"
)

func TestLifecycle(t *testing.T) {
	p := NewPool(64)
	b := p.Get()
	if b.Refs() != 1 {
		t.Fatalf("fresh buf refs = %d, want 1", b.Refs())
	}
	if len(b.Bytes()) != 64 {
		t.Fatalf("len = %d, want 64", len(b.Bytes()))
	}
	b.Retain()
	if b.Refs() != 2 {
		t.Fatalf("after Retain refs = %d, want 2", b.Refs())
	}
	b.Release()
	if b.Refs() != 1 {
		t.Fatalf("after Release refs = %d, want 1", b.Refs())
	}
	b.Release() // back to the pool

	allocs, recycles := p.Stats()
	if allocs != 1 || recycles != 0 {
		t.Errorf("stats = %d allocs / %d recycles, want 1/0", allocs, recycles)
	}
	// sync.Pool is advisory (and drops Puts at random under -race), so
	// churn until a recycle shows up rather than demanding the first
	// Get return the same buffer.
	for i := 0; i < 100; i++ {
		p.Get().Release()
		if _, recycles := p.Stats(); recycles > 0 {
			return
		}
	}
	t.Error("pool never recycled over 100 get/release cycles")
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool(8)
	b := p.Get()
	b.Retain()
	b.Release()
	b.Release() // refcount hits zero; buffer is pooled
	defer func() {
		if recover() == nil {
			t.Error("third Release did not panic")
		}
	}()
	b.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	p := NewPool(8)
	b := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Error("Retain of a dead buffer did not panic")
		}
	}()
	b.Retain()
}

// TestPoisonCatchesUseAfterRelease writes through a stale reference
// after the last Release; the next recycle must detect the corruption.
func TestPoisonCatchesUseAfterRelease(t *testing.T) {
	p := NewPool(16)
	p.SetPoison(true)
	b := p.Get()
	stale := b.Bytes()
	b.Release()
	stale[3] = 0x42 // use after free
	caught := false
	func() {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		// Keep getting until the pool hands the poisoned buffer back
		// (the first Get normally does, but sync.Pool makes no promise
		// and drops Puts at random under -race).
		for i := 0; i < 100; i++ {
			nb := p.Get()
			if &nb.Bytes()[0] == &stale[0] {
				t.Fatal("poison check passed on a corrupted buffer")
			}
		}
	}()
	if !caught {
		if raceEnabled {
			t.Skip("pool never returned the corrupted buffer; nothing to check")
		}
		t.Error("recycling a corrupted buffer did not panic")
	}
}

// TestConcurrentRetainRelease hammers one buffer's refcount from many
// goroutines under -race: every Retain is matched by a Release and the
// count must come back to the owner's single reference.
func TestConcurrentRetainRelease(t *testing.T) {
	p := NewPool(32)
	b := p.Get()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Retain()
				_ = b.Bytes()[0]
				b.Release()
			}
		}()
	}
	wg.Wait()
	if b.Refs() != 1 {
		t.Errorf("refs = %d after balanced retain/release storm, want 1", b.Refs())
	}
	b.Release()
}

// TestPoolRecyclesUnderChurn checks steady-state churn stops
// allocating: after a warm-up Get/Release cycle, allocations stay flat.
func TestPoolRecyclesUnderChurn(t *testing.T) {
	p := NewPool(128)
	for i := 0; i < 64; i++ {
		b := p.Get()
		b.Bytes()[0] = byte(i)
		b.Release()
	}
	allocs, recycles := p.Stats()
	// The race detector makes sync.Pool drop Puts at random; only hold
	// the tight allocation bound in a plain run.
	limit := uint64(8)
	if raceEnabled {
		limit = 56
	}
	if allocs > limit {
		t.Errorf("%d allocations over 64 sequential get/release cycles; pool is not recycling (%d recycles)",
			allocs, recycles)
	}
	if recycles == 0 {
		t.Error("no recycles over 64 sequential get/release cycles")
	}
}
