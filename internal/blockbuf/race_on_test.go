//go:build race

package blockbuf

// raceEnabled relaxes the pool-recycling assertions: under the race
// detector sync.Pool randomly drops Puts on purpose, so recycling is
// best-effort rather than deterministic.
const raceEnabled = true
