package machine

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestPMMatchesTable1(t *testing.T) {
	c := PM()
	if c.Nodes != 128 {
		t.Errorf("PM nodes = %d, want 128", c.Nodes)
	}
	if c.BlockSize != 8192 {
		t.Errorf("PM block size = %d, want 8192", c.BlockSize)
	}
	if c.MemoryBandwidth != 500 || c.NetworkBandwidth != 200 {
		t.Error("PM bandwidths wrong")
	}
	if c.LocalPortStartup != sim.Microseconds(2) || c.RemotePortStartup != sim.Microseconds(10) {
		t.Error("PM port startups wrong")
	}
	if c.LocalCopyStartup != sim.Microseconds(1) || c.RemoteCopyStartup != sim.Microseconds(5) {
		t.Error("PM copy startups wrong")
	}
	if c.Disks != 16 || c.DiskBandwidth != 10 {
		t.Error("PM disk params wrong")
	}
	if c.DiskReadSeek != sim.Milliseconds(10.5) || c.DiskWriteSeek != sim.Milliseconds(12.5) {
		t.Error("PM seeks wrong")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("PM invalid: %v", err)
	}
}

func TestNOWMatchesTable1(t *testing.T) {
	c := NOW()
	if c.Nodes != 50 || c.Disks != 8 {
		t.Errorf("NOW nodes/disks = %d/%d, want 50/8", c.Nodes, c.Disks)
	}
	if c.MemoryBandwidth != 40 || c.NetworkBandwidth != 19.4 {
		t.Error("NOW bandwidths wrong")
	}
	if c.LocalPortStartup != sim.Microseconds(50) || c.RemotePortStartup != sim.Microseconds(100) {
		t.Error("NOW port startups wrong")
	}
	if c.LocalCopyStartup != sim.Microseconds(25) || c.RemoteCopyStartup != sim.Microseconds(50) {
		t.Error("NOW copy startups wrong")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("NOW invalid: %v", err)
	}
}

func TestCacheBlocksPerNode(t *testing.T) {
	c := PM()
	// 1 MB / 8 KB = 128 blocks; 16 MB = 2048 blocks.
	if got := c.CacheBlocksPerNode(1); got != 128 {
		t.Errorf("1 MB = %d blocks, want 128", got)
	}
	if got := c.CacheBlocksPerNode(16); got != 2048 {
		t.Errorf("16 MB = %d blocks, want 2048", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Disks = 0 },
		func(c *Config) { c.BlockSize = 0 },
		func(c *Config) { c.MemoryBandwidth = 0 },
		func(c *Config) { c.NetworkBandwidth = -1 },
		func(c *Config) { c.DiskBandwidth = 0 },
		func(c *Config) { c.LocalPortStartup = -1 },
		func(c *Config) { c.RemotePortStartup = -1 },
		func(c *Config) { c.LocalCopyStartup = -1 },
		func(c *Config) { c.RemoteCopyStartup = -1 },
		func(c *Config) { c.DiskReadSeek = -1 },
		func(c *Config) { c.DiskWriteSeek = -1 },
		func(c *Config) { c.WritebackPeriod = 0 },
	}
	for i, mut := range mutations {
		c := PM()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	s := Table1()
	for _, want := range []string{"PM", "NOW", "128", "50", "10.5 ms", "12.5 ms", "19.4 MB/s", "200 MB/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, s)
		}
	}
}
