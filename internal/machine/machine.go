// Package machine holds the simulated-architecture parameter sets of
// the paper's Table 1: the parallel machine (PM) used for the CHARISMA
// workload and the network of workstations (NOW) used for the Sprite
// workload.
package machine

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Config is one column of the paper's Table 1 plus the derived
// write-back period used by the cooperative caches' fault-tolerance
// daemon (§5.3 explains blocks are "periodically sent to the disk").
type Config struct {
	Name string // "PM" or "NOW"

	Nodes     int   // machine size
	BlockSize int64 // cache buffer & disk block size, bytes

	MemoryBandwidth  float64 // MB/s, for local memory copies
	NetworkBandwidth float64 // MB/s, across the interconnect

	LocalPortStartup  sim.Duration // message startup, same node
	RemotePortStartup sim.Duration // message startup, across network
	LocalCopyStartup  sim.Duration // memory-copy startup, same node
	RemoteCopyStartup sim.Duration // memory-copy startup, remote

	Disks         int          // number of disks in the machine
	DiskBandwidth float64      // MB/s
	DiskReadSeek  sim.Duration // per read operation
	DiskWriteSeek sim.Duration // per write operation

	// WritebackPeriod is how often the cache daemon flushes dirty
	// blocks to disk for fault tolerance. Not in Table 1; the classic
	// Unix/Sprite 30-second sync policy is used.
	WritebackPeriod sim.Duration
}

// PM returns the parallel-machine column of Table 1 (the architecture
// the CHARISMA workload runs on).
func PM() Config {
	return Config{
		Name:              "PM",
		Nodes:             128,
		BlockSize:         8 * 1024,
		MemoryBandwidth:   500,
		NetworkBandwidth:  200,
		LocalPortStartup:  sim.Microseconds(2),
		RemotePortStartup: sim.Microseconds(10),
		LocalCopyStartup:  sim.Microseconds(1),
		RemoteCopyStartup: sim.Microseconds(5),
		Disks:             16,
		DiskBandwidth:     10,
		DiskReadSeek:      sim.Milliseconds(10.5),
		DiskWriteSeek:     sim.Milliseconds(12.5),
		WritebackPeriod:   sim.Seconds(30),
	}
}

// NOW returns the network-of-workstations column of Table 1 (the
// architecture the Sprite workload runs on), modelled after the NOW
// used by Dahlin et al.
func NOW() Config {
	return Config{
		Name:              "NOW",
		Nodes:             50,
		BlockSize:         8 * 1024,
		MemoryBandwidth:   40,
		NetworkBandwidth:  19.4,
		LocalPortStartup:  sim.Microseconds(50),
		RemotePortStartup: sim.Microseconds(100),
		LocalCopyStartup:  sim.Microseconds(25),
		RemoteCopyStartup: sim.Microseconds(50),
		Disks:             8,
		DiskBandwidth:     10,
		DiskReadSeek:      sim.Milliseconds(10.5),
		DiskWriteSeek:     sim.Milliseconds(12.5),
		WritebackPeriod:   sim.Seconds(30),
	}
}

// CacheBlocksPerNode converts a per-node cache size in megabytes (the
// x-axis of every figure) to a block count under this configuration.
func (c Config) CacheBlocksPerNode(megabytes int) int {
	return int(int64(megabytes) * 1024 * 1024 / c.BlockSize)
}

// Validate reports a configuration error, if any. All experiments call
// it before constructing a simulation.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("machine %s: nodes = %d", c.Name, c.Nodes)
	case c.Disks <= 0:
		return fmt.Errorf("machine %s: disks = %d", c.Name, c.Disks)
	case c.BlockSize <= 0:
		return fmt.Errorf("machine %s: block size = %d", c.Name, c.BlockSize)
	case c.MemoryBandwidth <= 0 || c.NetworkBandwidth <= 0 || c.DiskBandwidth <= 0:
		return fmt.Errorf("machine %s: non-positive bandwidth", c.Name)
	case c.LocalPortStartup < 0 || c.RemotePortStartup < 0 ||
		c.LocalCopyStartup < 0 || c.RemoteCopyStartup < 0:
		return fmt.Errorf("machine %s: negative startup", c.Name)
	case c.DiskReadSeek < 0 || c.DiskWriteSeek < 0:
		return fmt.Errorf("machine %s: negative seek", c.Name)
	case c.WritebackPeriod <= 0:
		return fmt.Errorf("machine %s: write-back period = %v", c.Name, c.WritebackPeriod)
	}
	return nil
}

// Table1 renders both configurations side by side in the layout of the
// paper's Table 1; `lapbench -exp table1` prints it.
func Table1() string {
	pm, now := PM(), NOW()
	var b strings.Builder
	row := func(label, pmVal, nowVal string) {
		fmt.Fprintf(&b, "%-28s %14s %14s\n", label, pmVal, nowVal)
	}
	row("", "PM", "NOW")
	row("Nodes", fmt.Sprint(pm.Nodes), fmt.Sprint(now.Nodes))
	row("Buffer Size", "8 KB", "8 KB")
	row("Memory Bandwidth", fmt.Sprintf("%g MB/s", pm.MemoryBandwidth), fmt.Sprintf("%g MB/s", now.MemoryBandwidth))
	row("Network Bandwidth", fmt.Sprintf("%g MB/s", pm.NetworkBandwidth), fmt.Sprintf("%g MB/s", now.NetworkBandwidth))
	row("Local-Port Startup", fmt.Sprintf("%g us", pm.LocalPortStartup.Microseconds()), fmt.Sprintf("%g us", now.LocalPortStartup.Microseconds()))
	row("Remote-Port Startup", fmt.Sprintf("%g us", pm.RemotePortStartup.Microseconds()), fmt.Sprintf("%g us", now.RemotePortStartup.Microseconds()))
	row("Local Memory copy Startup", fmt.Sprintf("%g us", pm.LocalCopyStartup.Microseconds()), fmt.Sprintf("%g us", now.LocalCopyStartup.Microseconds()))
	row("Remote Memory copy Startup", fmt.Sprintf("%g us", pm.RemoteCopyStartup.Microseconds()), fmt.Sprintf("%g us", now.RemoteCopyStartup.Microseconds()))
	row("Number of Disks", fmt.Sprint(pm.Disks), fmt.Sprint(now.Disks))
	row("Disk-Block Size", "8 KB", "8 KB")
	row("Disk Bandwidth", fmt.Sprintf("%g MB/s", pm.DiskBandwidth), fmt.Sprintf("%g MB/s", now.DiskBandwidth))
	row("Disk Read Seek", fmt.Sprintf("%g ms", pm.DiskReadSeek.Milliseconds()), fmt.Sprintf("%g ms", now.DiskReadSeek.Milliseconds()))
	row("Disk Write Seek", fmt.Sprintf("%g ms", pm.DiskWriteSeek.Milliseconds()), fmt.Sprintf("%g ms", now.DiskWriteSeek.Milliseconds()))
	return b.String()
}
