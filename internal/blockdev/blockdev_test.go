package blockdev

import (
	"testing"
	"testing/quick"
)

func TestByteRangeToSpanBasics(t *testing.T) {
	const bs = 8192
	cases := []struct {
		name         string
		offset, size int64
		wantStart    BlockNo
		wantCount    int32
	}{
		{"one block exact", 0, bs, 0, 1},
		{"one byte", 0, 1, 0, 1},
		{"two bytes across boundary", bs - 1, 2, 0, 2}, // the paper's §2.2 example
		{"second block", bs, bs, 1, 1},
		{"three blocks", bs / 2, 2 * bs, 0, 3},
		{"zero size", 3 * bs, 0, 3, 1},
		{"aligned multi", 2 * bs, 4 * bs, 2, 4},
	}
	for _, c := range cases {
		got := ByteRangeToSpan(7, c.offset, c.size, bs)
		if got.File != 7 || got.Start != c.wantStart || got.Count != c.wantCount {
			t.Errorf("%s: got %v, want 7:[%d,%d)", c.name, got, c.wantStart, int32(c.wantStart)+c.wantCount)
		}
	}
}

func TestByteRangeToSpanPanics(t *testing.T) {
	for _, c := range []struct{ off, size, bs int64 }{
		{-1, 1, 8192}, {0, -1, 8192}, {0, 1, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ByteRangeToSpan(%d,%d,%d) did not panic", c.off, c.size, c.bs)
				}
			}()
			ByteRangeToSpan(0, c.off, c.size, c.bs)
		}()
	}
}

func TestSpanBlocks(t *testing.T) {
	s := Span{File: 3, Start: 10, Count: 3}
	blocks := s.Blocks()
	want := []BlockID{{3, 10}, {3, 11}, {3, 12}}
	if len(blocks) != len(want) {
		t.Fatalf("got %d blocks", len(blocks))
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Errorf("block %d = %v, want %v", i, blocks[i], want[i])
		}
	}
	if s.End() != 13 {
		t.Errorf("End = %d", s.End())
	}
}

func TestSpanContains(t *testing.T) {
	s := Span{File: 1, Start: 5, Count: 2}
	if !s.Contains(BlockID{1, 5}) || !s.Contains(BlockID{1, 6}) {
		t.Error("span should contain its blocks")
	}
	if s.Contains(BlockID{1, 4}) || s.Contains(BlockID{1, 7}) {
		t.Error("span contains blocks outside range")
	}
	if s.Contains(BlockID{2, 5}) {
		t.Error("span contains block of another file")
	}
}

func TestBlockIDNextAndString(t *testing.T) {
	b := BlockID{4, 9}
	if b.Next() != (BlockID{4, 10}) {
		t.Error("Next wrong")
	}
	if b.String() != "4:9" {
		t.Errorf("String = %q", b.String())
	}
	s := Span{File: 1, Start: 2, Count: 3}
	if s.String() != "1:[2,5)" {
		t.Errorf("Span.String = %q", s.String())
	}
}

func TestStriperCoversAllDisks(t *testing.T) {
	st := NewStriper(16)
	if st.Disks() != 16 {
		t.Fatalf("Disks = %d", st.Disks())
	}
	seen := make(map[DiskID]bool)
	for blk := BlockNo(0); blk < 16; blk++ {
		seen[st.DiskFor(BlockID{File: 1, Block: blk})] = true
	}
	if len(seen) != 16 {
		t.Errorf("sequential blocks of one file hit %d/16 disks", len(seen))
	}
}

func TestStriperSequentialBlocksAlternate(t *testing.T) {
	st := NewStriper(4)
	d0 := st.DiskFor(BlockID{File: 2, Block: 0})
	d1 := st.DiskFor(BlockID{File: 2, Block: 1})
	if d0 == d1 {
		t.Error("adjacent blocks landed on the same disk")
	}
}

func TestStriperFilesRotate(t *testing.T) {
	st := NewStriper(8)
	starts := make(map[DiskID]bool)
	for f := FileID(0); f < 64; f++ {
		starts[st.DiskFor(BlockID{File: f, Block: 0})] = true
	}
	if len(starts) < 4 {
		t.Errorf("file starts concentrated on %d/8 disks", len(starts))
	}
}

func TestStriperPanicsOnZeroDisks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStriper(0) did not panic")
		}
	}()
	NewStriper(0)
}

// Property: every block maps to a valid disk, deterministically.
func TestStriperRangeProperty(t *testing.T) {
	st := NewStriper(16)
	f := func(file int32, blk int32) bool {
		if blk < 0 {
			blk = -blk
		}
		b := BlockID{FileID(file), BlockNo(blk % 1_000_000)}
		d := st.DiskFor(b)
		return d >= 0 && int(d) < 16 && d == st.DiskFor(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ByteRangeToSpan covers exactly the bytes requested — the
// first byte lands in the first block and the last byte in the last.
func TestByteRangeCoverageProperty(t *testing.T) {
	f := func(off uint32, size uint32) bool {
		const bs = 8192
		o, sz := int64(off%(1<<24)), int64(size%(1<<20))+1
		s := ByteRangeToSpan(1, o, sz, bs)
		firstByteBlock := o / bs
		lastByteBlock := (o + sz - 1) / bs
		return int64(s.Start) == firstByteBlock && int64(s.End()-1) == lastByteBlock
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
