// Package blockdev defines the identity types shared by every layer of
// the simulated storage stack: files, blocks, nodes and disks, plus the
// arithmetic that maps byte-granularity user requests onto block spans
// and blocks onto disks (striping).
package blockdev

import "fmt"

// FileID names a file in the simulated file system. IDs are dense
// small integers assigned by the workload generators.
type FileID int32

// NodeID names a machine node (client and/or server).
type NodeID int32

// DiskID names one physical disk.
type DiskID int32

// BlockNo is a block index within one file, starting at 0.
type BlockNo int32

// BlockID names one file block globally: the unit of caching,
// prefetching and disk transfer.
type BlockID struct {
	File  FileID
	Block BlockNo
}

// String renders the block as "file:block".
func (b BlockID) String() string { return fmt.Sprintf("%d:%d", b.File, b.Block) }

// Next returns the sequentially following block of the same file.
func (b BlockID) Next() BlockID { return BlockID{b.File, b.Block + 1} }

// Span is a contiguous range of blocks [Start, Start+Count) of one
// file: the block-level image of a user read or write request.
type Span struct {
	File  FileID
	Start BlockNo
	Count int32
}

// Blocks returns the individual block IDs covered by the span.
func (s Span) Blocks() []BlockID {
	out := make([]BlockID, 0, s.Count)
	for i := int32(0); i < s.Count; i++ {
		out = append(out, BlockID{s.File, s.Start + BlockNo(i)})
	}
	return out
}

// End returns the first block index after the span.
func (s Span) End() BlockNo { return s.Start + BlockNo(s.Count) }

// Contains reports whether the span covers block b of the same file.
func (s Span) Contains(b BlockID) bool {
	return b.File == s.File && b.Block >= s.Start && b.Block < s.End()
}

// String renders the span as "file:[start,end)".
func (s Span) String() string {
	return fmt.Sprintf("%d:[%d,%d)", s.File, s.Start, s.End())
}

// ByteRangeToSpan converts a byte-granularity request (offset, size in
// bytes) on file f into the covering block span, given the file-system
// block size. The paper counts a request touching two blocks as a
// two-block request even if it reads only 2 bytes (§2.2), which is
// exactly the ceiling arithmetic here. Zero-size requests map to a
// one-block span (metadata touch); negative arguments panic.
func ByteRangeToSpan(f FileID, offset, size int64, blockSize int64) Span {
	if offset < 0 || size < 0 || blockSize <= 0 {
		panic(fmt.Sprintf("blockdev: invalid byte range off=%d size=%d bs=%d", offset, size, blockSize))
	}
	first := offset / blockSize
	if size == 0 {
		return Span{File: f, Start: BlockNo(first), Count: 1}
	}
	last := (offset + size - 1) / blockSize
	return Span{File: f, Start: BlockNo(first), Count: int32(last - first + 1)}
}

// Striper maps blocks to disks. Both simulated file systems stripe
// file data round-robin across all disks, offset by a per-file
// rotation so that different files start on different disks (standard
// practice in parallel file systems, and what makes "prefetch from
// many files in parallel" use many disks, §3.2).
type Striper struct {
	disks int32
}

// NewStriper returns a striper over nDisks disks. It panics if
// nDisks <= 0.
func NewStriper(nDisks int) *Striper {
	if nDisks <= 0 {
		panic("blockdev: striper needs at least one disk")
	}
	return &Striper{disks: int32(nDisks)}
}

// Disks returns the number of disks being striped over.
func (s *Striper) Disks() int { return int(s.disks) }

// DiskFor returns the disk holding block b.
func (s *Striper) DiskFor(b BlockID) DiskID {
	// Rotate by a hash of the file ID so file starts spread out.
	rot := int32(uint32(b.File) * 2654435761 % uint32(s.disks))
	return DiskID((int32(b.Block) + rot) % s.disks)
}
