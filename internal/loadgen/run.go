package loadgen

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lapclient"
	"repro/internal/stats"
)

// RunConfig tunes how a schedule is fired at live servers.
type RunConfig struct {
	// Addrs are the target nodes; requests shard across them
	// round-robin by schedule index (the way clients mount their
	// nearest cache node).
	Addrs []string
	// Conns is the per-node pool size (0 = 4).
	Conns int
	// Window is the per-connection in-flight cap (0 =
	// lapclient.DefaultWindow).
	Window int
	// Deadline, when positive, is the per-request latency deadline: a
	// response slower than this counts under Result.Deadlines instead
	// of blocking the run. The request itself is not cancelled.
	Deadline time.Duration
	// ChurnEvery, when positive, force-rotates one pool connection per
	// interval (dial-first, so the pool never dips below strength) —
	// the connection-churn scenario.
	ChurnEvery time.Duration
	// MaxOutstanding caps unresolved requests across the whole run
	// (0 = 16x the total wire window). A saturated server otherwise
	// accumulates one parked goroutine per scheduled arrival, and the
	// generator's own queue management starts to dominate what it
	// measures. The cap does NOT compromise the coordinated-omission
	// correction: a request held back by the cap is still timed from
	// its scheduled arrival, so the wait shows up in the tail exactly
	// as it should.
	MaxOutstanding int
}

// Result is one open-loop run's client-side accounting. Every issued
// request resolves into exactly one of OK, Deadlines or Errors;
// Dropped is the difference and must be zero — the harness's
// zero-lost-response invariant.
type Result struct {
	Offered  float64 // configured arrival rate, req/s
	Achieved float64 // completed requests / elapsed
	Issued   uint64
	OK       uint64
	Hits     uint64 // OK reads fully served from cache
	Deadlines uint64
	Errors   uint64
	Dropped  int64
	Elapsed  time.Duration
	// MaxLag is the worst dispatch lag behind the virtual arrival
	// clock: how late the generator itself ran. A lag comparable to
	// the measured latencies would mean the generator, not the server,
	// was the bottleneck.
	MaxLag time.Duration
	// Hist holds response latencies in nanoseconds, measured from each
	// request's scheduled arrival (coordinated-omission corrected).
	// A deadline expiry is recorded at the deadline value itself — a
	// floor on the request's true latency — so giving up on slow
	// responses can never make the tail look better.
	Hist *stats.Histogram
}

func (r *Result) String() string {
	return fmt.Sprintf(
		"offered %.0f/s achieved %.0f/s issued %d ok %d (hit %.3f) deadline %d err %d dropped %d  p50 %v p99 %v p999 %v max %v lag %v",
		r.Offered, r.Achieved, r.Issued, r.OK, r.HitRatio(), r.Deadlines, r.Errors, r.Dropped,
		time.Duration(r.Hist.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(r.Hist.Quantile(0.99)).Round(time.Microsecond),
		time.Duration(r.Hist.Quantile(0.999)).Round(time.Microsecond),
		time.Duration(r.Hist.Max()).Round(time.Microsecond),
		r.MaxLag.Round(time.Microsecond),
	)
}

// HitRatio returns the fraction of successful reads fully served from
// cache.
func (r *Result) HitRatio() float64 {
	if r.OK == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.OK)
}

// Run fires the schedule at the servers open-loop: requests are
// issued on the virtual arrival clock regardless of how fast
// responses come back, and every latency is measured from the
// *scheduled* arrival, so a stalled server shows up as tail latency
// rather than as a quietly slowed-down run. Run returns once every
// request has resolved (response, deadline verdict, or error).
func Run(sched *Schedule, rc RunConfig) (*Result, error) {
	if len(rc.Addrs) == 0 {
		return nil, fmt.Errorf("loadgen: no target addresses")
	}
	pools := make([]*lapclient.Pool, len(rc.Addrs))
	for i, addr := range rc.Addrs {
		p, err := lapclient.DialPool(addr, rc.Conns, rc.Window)
		if err != nil {
			for _, q := range pools[:i] {
				q.Close()
			}
			return nil, fmt.Errorf("loadgen: node %s: %w", addr, err)
		}
		pools[i] = p
	}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()

	res := &Result{Offered: sched.Cfg.Rate, Hist: stats.NewHistogram()}
	var ok, hits, deadlines, errs atomic.Uint64
	var wg sync.WaitGroup

	maxOut := rc.MaxOutstanding
	if maxOut <= 0 {
		window := rc.Window
		if window <= 0 {
			window = lapclient.DefaultWindow
		}
		conns := rc.Conns
		if conns <= 0 {
			conns = 4
		}
		maxOut = 16 * window * conns * len(rc.Addrs)
	}
	outstanding := make(chan struct{}, maxOut)

	churnStop := make(chan struct{})
	var churnWg sync.WaitGroup
	if rc.ChurnEvery > 0 {
		churnWg.Add(1)
		go func() {
			defer churnWg.Done()
			t := time.NewTicker(rc.ChurnEvery)
			defer t.Stop()
			for i := 0; ; i++ {
				select {
				case <-churnStop:
					return
				case <-t.C:
					// Rotation errors are tolerable (a dial can lose a race
					// with shutdown); the pool keeps its old connection.
					_ = pools[i%len(pools)].ChurnOne()
				}
			}
		}()
	}

	start := time.Now()
	var maxLag int64
	for i := range sched.Reqs {
		req := &sched.Reqs[i]
		target := start.Add(req.At)
		now := time.Now()
		if d := target.Sub(now); d > 0 {
			time.Sleep(d)
		} else if lag := int64(-d); lag > maxLag {
			maxLag = lag
		}

		outstanding <- struct{}{} // issue-ahead cap; latency still runs from target
		pool := pools[i%len(pools)]
		wg.Add(1)
		res.Issued++
		done := func(err error) {
			// Latency from the scheduled arrival: queueing the generator
			// or the window inflicted is part of the number.
			lat := int64(time.Since(target))
			switch {
			case err == nil:
				ok.Add(1)
				res.Hist.Record(lat)
			case errors.Is(err, lapclient.ErrDeadline):
				deadlines.Add(1)
				// Record the deadline itself — a floor on the true
				// latency, so the tail cannot be under-reported by giving
				// up on slow responses.
				res.Hist.Record(int64(rc.Deadline))
			default:
				errs.Add(1)
				res.Hist.Record(lat)
			}
			<-outstanding
			wg.Done()
		}
		if req.Write {
			pool.WriteAsync(req.File, req.Off, req.Blocks, nil, rc.Deadline, done)
		} else {
			pool.ReadAsync(req.File, req.Off, req.Blocks, false, rc.Deadline,
				func(hit bool, err error) {
					if err == nil && hit {
						hits.Add(1)
					}
					done(err)
				})
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	close(churnStop)
	churnWg.Wait()

	res.OK = ok.Load()
	res.Hits = hits.Load()
	res.Deadlines = deadlines.Load()
	res.Errors = errs.Load()
	res.Dropped = int64(res.Issued) - int64(res.OK+res.Deadlines+res.Errors)
	res.MaxLag = time.Duration(maxLag)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Achieved = float64(res.OK+res.Deadlines+res.Errors) / s
	}
	return res, nil
}
