package loadgen

import (
	"fmt"
	"strings"
	"time"
)

// Point is one rate step of a sweep.
type Point struct {
	Rate float64
	Res  *Result
}

// Sweep is a throughput-vs-latency curve: the same workload shape
// offered at increasing rates against the same live servers, plus the
// detected knee — the first rate the system can no longer absorb.
type Sweep struct {
	Points []Point
	// Knee indexes the first point past the knee (-1: no knee found
	// inside the swept range). See FindKnee for the criterion.
	Knee int
}

// kneeLatencyFactor and kneeThroughputFactor define the knee: the
// first swept point whose p99 exceeds kneeLatencyFactor times the
// lowest-rate baseline p99, or whose achieved throughput falls below
// kneeThroughputFactor of the offered rate. The first criterion
// catches queueing onset while the server still keeps up; the second
// catches outright saturation.
const (
	kneeLatencyFactor    = 8.0
	kneeThroughputFactor = 0.9
)

// FindKnee locates the knee in a rate-ascending point list; -1 when
// every point is still on the flat part of the curve.
func FindKnee(points []Point) int {
	if len(points) == 0 {
		return -1
	}
	base := float64(points[0].Res.Hist.Quantile(0.99))
	for i, p := range points {
		if p.Res.Achieved < kneeThroughputFactor*p.Rate {
			return i
		}
		if base > 0 && float64(p.Res.Hist.Quantile(0.99)) > kneeLatencyFactor*base {
			return i
		}
	}
	return -1
}

// RunSweep offers cfg's workload at each rate in turn (ascending
// order is the caller's convention) for roughly dur of virtual time
// per point, against the same live servers — so later points run with
// whatever cache state earlier points built, the way a long-lived
// service is actually measured. The schedule at each point is
// deterministic in (cfg.Seed, rate).
func RunSweep(cfg Config, rates []float64, dur time.Duration, rc RunConfig) (*Sweep, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: empty rate list")
	}
	sw := &Sweep{}
	for _, rate := range rates {
		c := cfg
		c.Rate = rate
		c.Requests = int(rate * dur.Seconds())
		if c.Requests < 1 {
			c.Requests = 1
		}
		sched, err := Build(c)
		if err != nil {
			return nil, err
		}
		res, err := Run(sched, rc)
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, Point{Rate: rate, Res: res})
	}
	sw.Knee = FindKnee(sw.Points)
	return sw, nil
}

// Table renders the sweep as the aligned knee-curve table the
// lapbench CLI prints; the knee row is marked with a '*'.
func (sw *Sweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-1s %10s %10s %8s %6s %9s %5s %12s %12s %12s %12s\n",
		"", "offered/s", "achieved/s", "ok", "hit", "deadline", "err", "p50", "p99", "p999", "max")
	for i, p := range sw.Points {
		mark := ""
		if i == sw.Knee {
			mark = "*"
		}
		r := p.Res
		fmt.Fprintf(&b, "%-1s %10.0f %10.0f %8d %6.3f %9d %5d %12v %12v %12v %12v\n",
			mark, p.Rate, r.Achieved, r.OK, r.HitRatio(), r.Deadlines, r.Errors,
			time.Duration(r.Hist.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(r.Hist.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(r.Hist.Quantile(0.999)).Round(time.Microsecond),
			time.Duration(r.Hist.Max()).Round(time.Microsecond))
	}
	if sw.Knee >= 0 {
		fmt.Fprintf(&b, "knee: offered %.0f req/s (first rate past the knee criterion: p99 > %gx baseline or achieved < %g of offered)\n",
			sw.Points[sw.Knee].Rate, kneeLatencyFactor, kneeThroughputFactor)
	} else {
		fmt.Fprintf(&b, "knee: not reached inside the swept range\n")
	}
	return b.String()
}
