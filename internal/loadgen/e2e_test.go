package loadgen

import (
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lapcache"
)

// startNode brings up a poisoned, strict-linear engine + server on a
// loopback port, so the test can tear the node down and interrogate
// its invariants after the firehose stops.
func startNode(t *testing.T, sched *Schedule) (*lapcache.Engine, *lapcache.Server, string) {
	t.Helper()
	eng, err := lapcache.New(lapcache.Config{
		Alg:          core.SpecLnAgrISPPM1,
		BlockSize:    512,
		CacheBlocks:  8192,
		FileBlocks:   sched.FileTable,
		StrictLinear: true,
		PoisonBufs:   true,
		Store:        lapcache.NewMemStore(512, 0),
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	srv := lapcache.NewServer(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck // exits on Close
	t.Cleanup(func() { // idempotent with the in-test teardown
		srv.Close()
		eng.Shutdown()
	})
	return eng, srv, ln.Addr().String()
}

// checkInvariants asserts the post-firehose server-side state. The
// engine must already be torn down (server closed, Shutdown done):
// only then does DrainCache leave BufLive at exactly zero for a
// leak-free run. PoisonBufs was on throughout, so a use-after-release
// during the run would also have crashed it.
func checkInvariants(t *testing.T, eng *lapcache.Engine) {
	t.Helper()
	if v := eng.Ledger().Violations(); v != 0 {
		t.Errorf("linearity ledger: %d violations, want 0", v)
	}
	if hw := eng.Ledger().MaxHighWater(); hw > 1 {
		t.Errorf("ledger high-water %d, want <= 1 (MaxOutstanding)", hw)
	}
	eng.DrainCache()
	if live := eng.BufLive(); live != 0 {
		t.Errorf("BufLive = %d after drain, want 0 (leaked or double-held buffers)", live)
	}
}

// checkResult asserts the client-side zero-loss contract: every issued
// request resolved exactly once, nothing dropped, nothing errored.
func checkResult(t *testing.T, res *Result, wantIssued int) {
	t.Helper()
	if res.Issued != uint64(wantIssued) {
		t.Errorf("issued %d, want %d", res.Issued, wantIssued)
	}
	if res.Dropped != 0 {
		t.Errorf("dropped %d responses, want 0", res.Dropped)
	}
	if res.Errors != 0 {
		t.Errorf("%d request errors, want 0", res.Errors)
	}
	if res.Deadlines != 0 {
		t.Errorf("%d deadline expiries under a generous deadline, want 0", res.Deadlines)
	}
	if got := res.OK; got != uint64(wantIssued) {
		t.Errorf("ok %d, want %d", got, wantIssued)
	}
	if res.Hist.Count() != uint64(wantIssued) {
		t.Errorf("histogram count %d, want %d", res.Hist.Count(), wantIssued)
	}
}

// TestOpenLoopE2E fires a 30k-request open-loop run — Zipf reads,
// writes, a flash crowd and a thundering herd, with connection churn
// underneath — at a single in-process node, and asserts zero dropped
// responses plus the server-side chaos invariants. This is the
// check-load gate; -race is what makes the firehose interesting.
func TestOpenLoopE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("firehose e2e skipped in -short")
	}
	// The population is sized so the cache covers a good share of the
	// working set: the point here is invariant pressure under firehose
	// concurrency, not a saturation study (the knee sweep does that).
	sched, err := Build(Config{
		Seed:          1,
		Rate:          25000,
		Requests:      30000,
		Arrival:       ArrivalPoisson,
		Files:         64,
		FileBlocks:    256,
		WriteFraction: 0.1,
		Flash:         &FlashCrowd{StartFrac: 0.3, EndFrac: 0.5, Share: 0.6},
		Herd:          &Herd{AtFrac: 0.7, Burst: 256},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	eng, srv, addr := startNode(t, sched)

	res, err := Run(sched, RunConfig{
		Addrs:      []string{addr},
		Conns:      4,
		Deadline:   30 * time.Second,
		ChurnEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("%v", res)

	checkResult(t, res, len(sched.Reqs))
	srv.Close()
	eng.Shutdown()
	checkInvariants(t, eng)
}

// TestOpenLoopClusterE2E drives the same harness at a 3-node
// cooperative mesh through all three front doors, so requests for
// peer-owned files exercise the forwarding path under open-loop load.
func TestOpenLoopClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e skipped in -short")
	}
	sched, err := Build(Config{
		Seed:       2,
		Rate:       8000,
		Requests:   6000,
		Files:      64,
		FileBlocks: 256,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	nodes, stop, err := cluster.StartLocal(3, func(i int, addrs []string) lapcache.Config {
		return lapcache.Config{
			Alg:          core.SpecLnAgrISPPM1,
			BlockSize:    512,
			CacheBlocks:  2048,
			FileBlocks:   sched.FileTable,
			StrictLinear: true,
			PoisonBufs:   true,
			Store:        lapcache.NewMemStore(512, 0),
		}
	})
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer stop()

	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.Addr
	}
	res, err := Run(sched, RunConfig{
		Addrs:    addrs,
		Conns:    2,
		Deadline: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("%v", res)

	checkResult(t, res, len(sched.Reqs))
	stop() // idempotent; the leak audit needs the mesh fully down
	for _, n := range nodes {
		checkInvariants(t, n.Engine)
	}
}
