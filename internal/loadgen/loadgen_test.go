package loadgen

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/blockdev"
)

// TestZipfDistribution chi-squared-tests the generator's file picks
// against the configured Zipf mass. The seed is fixed, so this is a
// deterministic regression, with the threshold set at the p≈0.001
// critical value for the degrees of freedom — a sampler bug (wrong
// exponent, off-by-one rank, biased search) blows far past it.
func TestZipfDistribution(t *testing.T) {
	const files = 50
	const n = 100000
	const s = 1.1
	sched, err := Build(Config{Seed: 42, Rate: 1000, Requests: n, Files: files, ZipfS: s})
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	counts := make([]int, files+1)
	for _, r := range sched.Reqs {
		counts[r.File]++
	}

	var hsum float64
	for i := 1; i <= files; i++ {
		hsum += 1 / math.Pow(float64(i), s)
	}
	var chi2 float64
	for i := 1; i <= files; i++ {
		exp := float64(n) / math.Pow(float64(i), s) / hsum
		d := float64(counts[i]) - exp
		chi2 += d * d / exp
	}
	// Chi-squared critical value for df=49 at alpha=0.001 is ~85.4.
	if chi2 > 85.4 {
		t.Fatalf("chi-squared = %.1f against Zipf(s=%v) expectation, want < 85.4", chi2, s)
	}
	// Sanity on the shape itself: rank 1 over rank 2 should be ~2^1.1.
	ratio := float64(counts[1]) / float64(counts[2])
	if want := math.Pow(2, s); math.Abs(ratio-want) > 0.25*want {
		t.Fatalf("p(rank1)/p(rank2) = %.2f, want ~%.2f", ratio, want)
	}
}

// TestPoissonInterArrivals bounds the mean and the coefficient of
// variation of the exponential gaps: mean 1/rate within 3%, CV² ≈ 1
// within 10% (the memorylessness signature a fixed-rate stream fails
// completely).
func TestPoissonInterArrivals(t *testing.T) {
	const rate = 1000.0
	const n = 50000
	sched, err := Build(Config{Seed: 7, Rate: rate, Requests: n, Arrival: ArrivalPoisson})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	gaps := make([]float64, 0, n-1)
	for i := 1; i < len(sched.Reqs); i++ {
		gaps = append(gaps, (sched.Reqs[i].At - sched.Reqs[i-1].At).Seconds())
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	if want := 1 / rate; math.Abs(mean-want) > 0.03*want {
		t.Fatalf("mean gap %.6fs, want %.6fs ±3%%", mean, want)
	}
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv2 := (varsum / float64(len(gaps))) / (mean * mean)
	if cv2 < 0.9 || cv2 > 1.1 {
		t.Fatalf("CV² = %.3f, want ~1 (exponential gaps)", cv2)
	}
}

// TestFixedInterArrivals: the metronome spaces every request exactly
// 1/rate apart.
func TestFixedInterArrivals(t *testing.T) {
	sched, err := Build(Config{Seed: 7, Rate: 2000, Requests: 1000, Arrival: ArrivalFixed})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want := time.Duration(float64(time.Second) / 2000)
	for i := 1; i < len(sched.Reqs); i++ {
		got := sched.Reqs[i].At - sched.Reqs[i-1].At
		if d := got - want; d < -time.Nanosecond || d > time.Nanosecond {
			t.Fatalf("gap %d = %v, want %v", i, got, want)
		}
	}
}

// TestSameSeedReproducible: the full request schedule — arrivals,
// files, offsets, ops — is a pure function of the Config.
func TestSameSeedReproducible(t *testing.T) {
	cfg := Config{
		Seed: 99, Rate: 5000, Requests: 20000, Arrival: ArrivalPoisson,
		Files: 128, WriteFraction: 0.1,
		Flash: &FlashCrowd{StartFrac: 0.4, EndFrac: 0.6, Share: 0.5},
		Herd:  &Herd{AtFrac: 0.8, Burst: 64},
	}
	a, err := Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	b, err := Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed schedules differ")
	}

	cfg.Seed = 100
	c, err := Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if reflect.DeepEqual(a.Reqs, c.Reqs) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScenarioKnobs pins the flash crowd and thundering herd shapes.
func TestScenarioKnobs(t *testing.T) {
	const n = 20000
	cfg := Config{
		Seed: 3, Rate: 1000, Requests: n, Files: 256,
		Flash: &FlashCrowd{StartFrac: 0.5, EndFrac: 0.75, Share: 0.8},
		Herd:  &Herd{AtFrac: 0.9, Burst: 500},
	}
	sched, err := Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(sched.Reqs) != n+500 {
		t.Fatalf("schedule length %d, want %d", len(sched.Reqs), n+500)
	}

	herdFile := cfg.withDefaults().herdFile()
	var herd int
	var herdAt time.Duration
	hotIn, totalIn, hotOut, totalOut := 0, 0, 0, 0
	baseIdx := 0
	for _, r := range sched.Reqs {
		if r.File == herdFile {
			herd++
			if herd == 1 {
				herdAt = r.At
			} else if r.At != herdAt {
				t.Fatalf("herd request at %v, want all at %v", r.At, herdAt)
			}
			if r.Off != 0 {
				t.Fatalf("herd request at offset %d, want 0 (cold key)", r.Off)
			}
			continue
		}
		frac := float64(baseIdx) / float64(n)
		baseIdx++
		if frac >= 0.5 && frac < 0.75 {
			totalIn++
			if r.File == 1 {
				hotIn++
			}
		} else {
			totalOut++
			if r.File == 1 {
				hotOut++
			}
		}
	}
	if herd != 500 {
		t.Fatalf("herd burst = %d, want 500", herd)
	}
	inShare := float64(hotIn) / float64(totalIn)
	outShare := float64(hotOut) / float64(totalOut)
	if inShare < 0.75 {
		t.Fatalf("hot-key share inside flash window = %.3f, want >= 0.75", inShare)
	}
	if outShare > 0.25 {
		t.Fatalf("hot-key share outside flash window = %.3f, want natural Zipf (< 0.25)", outShare)
	}

	// The file table covers everything the schedule touches.
	for _, r := range sched.Reqs {
		length, found := sched.FileTable[r.File]
		if !found {
			t.Fatalf("file %d missing from table", r.File)
		}
		if r.Off+blockdev.BlockNo(r.Blocks) > length {
			t.Fatalf("request [%d, %d) runs past file length %d", r.Off, r.Off+blockdev.BlockNo(r.Blocks), length)
		}
	}
}

// TestScenarioIndependence: turning the flash crowd on must not
// perturb the arrival clock or the requests outside its window — the
// A/B property the split RNG streams exist for.
func TestScenarioIndependence(t *testing.T) {
	base := Config{Seed: 5, Rate: 1000, Requests: 10000, Files: 64}
	with := base
	with.Flash = &FlashCrowd{StartFrac: 0.4, EndFrac: 0.6, Share: 1.0}

	a, err := Build(base)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	b, err := Build(with)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(a.Reqs) != len(b.Reqs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Reqs), len(b.Reqs))
	}
	for i := range a.Reqs {
		if a.Reqs[i].At != b.Reqs[i].At {
			t.Fatalf("arrival %d shifted: %v vs %v", i, a.Reqs[i].At, b.Reqs[i].At)
		}
		frac := float64(i) / float64(base.Requests)
		if frac < 0.4 || frac >= 0.6 {
			if a.Reqs[i].File != b.Reqs[i].File {
				t.Fatalf("request %d outside the window retargeted: %d vs %d", i, a.Reqs[i].File, b.Reqs[i].File)
			}
		} else if b.Reqs[i].File != 1 {
			t.Fatalf("request %d inside a share-1.0 window hit file %d, want 1", i, b.Reqs[i].File)
		}
	}
}

// TestBuildRejectsBadConfigs: the validation surface.
func TestBuildRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Rate: 0, Requests: 10},
		{Rate: 100, Requests: 0},
		{Rate: 100, Requests: 10, WriteFraction: 1.5},
		{Rate: 100, Requests: 10, SpanBlocks: 64, FileBlocks: 32},
		{Rate: 100, Requests: 10, Flash: &FlashCrowd{StartFrac: 0.9, EndFrac: 0.1}},
		{Rate: 100, Requests: 10, Herd: &Herd{AtFrac: 2}},
	}
	for i, c := range cases {
		if _, err := Build(c); err == nil {
			t.Errorf("case %d: Build(%+v) accepted", i, c)
		}
	}
}
