// Package loadgen is the open-loop load harness: it generates a
// request schedule the way production traffic arrives — on its own
// clock, indifferent to how fast the server answers — and fires it at
// a live lapcached node or cluster over the binary wire protocol.
//
// The distinction from the trace replayer (lapclient.ReplayTrace)
// matters for every latency claim this repo makes. The replayer is
// closed-loop: each traced process waits for its response before
// issuing the next request, so when the server slows down the offered
// load politely slows down with it and queueing collapse is invisible.
// An open-loop generator keeps sending at the configured rate; the
// latency distribution then includes the queueing delay a saturated
// server inflicts, which is what a production SLO sees. Latencies are
// measured from each request's *scheduled* arrival on the virtual
// clock, not from the moment the generator got around to sending it —
// the standard correction for coordinated omission.
//
// The schedule itself is a pure function of Config (seeded PCG
// streams, no wall clock), so a run is reproducible request for
// request: same seed, same files, same offsets, same virtual arrival
// times.
package loadgen

import (
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/sim"
)

// Arrival selects the inter-arrival process.
type Arrival int

const (
	// ArrivalPoisson draws exponential gaps around the configured rate
	// — memoryless arrivals, the usual open-traffic model and the one
	// that exposes burst-queueing behaviour.
	ArrivalPoisson Arrival = iota
	// ArrivalFixed spaces requests exactly 1/rate apart — a metronome,
	// useful for isolating the server's intrinsic latency curve from
	// arrival burstiness.
	ArrivalFixed
)

func (a Arrival) String() string {
	switch a {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalFixed:
		return "fixed"
	}
	return fmt.Sprintf("arrival(%d)", int(a))
}

// ParseArrival maps a flag string to an Arrival.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "poisson":
		return ArrivalPoisson, nil
	case "fixed":
		return ArrivalFixed, nil
	}
	return 0, fmt.Errorf("loadgen: unknown arrival process %q (want poisson or fixed)", s)
}

// FlashCrowd redirects a share of requests inside a window of the
// schedule onto the single hottest key — the "everyone loads the same
// page" event. Fractions are of the schedule's request index, not
// wall time, so the event scales with the run length.
type FlashCrowd struct {
	StartFrac float64 // window start as a fraction of requests, [0, 1)
	EndFrac   float64 // window end, (StartFrac, 1]
	Share     float64 // probability a window request hits the hot key
}

// Herd injects a thundering herd: Burst requests all scheduled at the
// same virtual instant, every one a read of block 0 of a cold file no
// other request touches — the worst case for demand-fetch dedup
// (singleflight) and the prefetcher's cold-start path.
type Herd struct {
	AtFrac float64 // position in the schedule, [0, 1]
	Burst  int
}

// Config parameterizes a schedule. The zero value is not runnable;
// see Defaults for the knobs Build fills in.
type Config struct {
	Seed uint64
	// Rate is the offered load in requests per second.
	Rate float64
	// Requests is the schedule length (scenario bursts add to it).
	Requests int
	// Arrival is the inter-arrival process.
	Arrival Arrival
	// Files is the key population size; popularity is Zipf over it,
	// file ID 1 hottest.
	Files int
	// FileBlocks is every file's length in blocks.
	FileBlocks blockdev.BlockNo
	// ZipfS is the Zipf exponent (default 1.1 — the web/CDN-ish skew
	// of the PPE workload family).
	ZipfS float64
	// SpanBlocks is the number of blocks per request (default 4).
	// Requests to one file walk it sequentially in SpanBlocks strides,
	// wrapping at FileBlocks: Zipf popularity across files, linear
	// runs within a file — skewed traffic the linear-aggressive
	// prefetcher can still chew on.
	SpanBlocks int32
	// WriteFraction makes this share of requests writes (default 0).
	WriteFraction float64
	// Flash, when non-nil, adds a hot-key flash crowd.
	Flash *FlashCrowd
	// Herd, when non-nil, adds a cold-key thundering herd.
	Herd *Herd
}

// withDefaults returns cfg with unset knobs filled in.
func (cfg Config) withDefaults() Config {
	if cfg.Files <= 0 {
		cfg.Files = 512
	}
	if cfg.FileBlocks <= 0 {
		cfg.FileBlocks = 2048
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.SpanBlocks <= 0 {
		cfg.SpanBlocks = 4
	}
	return cfg
}

// Request is one scheduled arrival.
type Request struct {
	// At is the virtual arrival offset from the run's start.
	At time.Duration
	// Write marks a write (nil payload: the server's fill pattern).
	Write bool
	File  blockdev.FileID
	Off   blockdev.BlockNo
	// Blocks is the span length.
	Blocks int32
}

// Schedule is a fully materialized open-loop run: every request with
// its virtual arrival time, plus the file table a server needs to
// clip prefetch chains at end of file.
type Schedule struct {
	Cfg  Config // post-defaults
	Reqs []Request
	// FileTable maps every file the schedule can touch (including the
	// herd's cold file) to its length — hand it to
	// lapcache.Config.FileBlocks.
	FileTable map[blockdev.FileID]blockdev.BlockNo
}

// Duration returns the virtual length of the schedule: the last
// arrival offset.
func (s *Schedule) Duration() time.Duration {
	if len(s.Reqs) == 0 {
		return 0
	}
	return s.Reqs[len(s.Reqs)-1].At
}

// herdFile returns the cold file ID the herd targets: one past the
// population, untouched by the Zipf stream.
func (cfg Config) herdFile() blockdev.FileID { return blockdev.FileID(cfg.Files + 1) }

// Build materializes the schedule for cfg. It is deterministic: two
// calls with equal Configs return identical schedules.
func Build(cfg Config) (*Schedule, error) {
	cfg = cfg.withDefaults()
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive, got %v", cfg.Rate)
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: requests must be positive, got %d", cfg.Requests)
	}
	if cfg.WriteFraction < 0 || cfg.WriteFraction > 1 {
		return nil, fmt.Errorf("loadgen: write fraction %v outside [0, 1]", cfg.WriteFraction)
	}
	if blockdev.BlockNo(cfg.SpanBlocks) > cfg.FileBlocks {
		return nil, fmt.Errorf("loadgen: span of %d blocks exceeds file length %d", cfg.SpanBlocks, cfg.FileBlocks)
	}
	if f := cfg.Flash; f != nil {
		if f.StartFrac < 0 || f.EndFrac > 1 || f.StartFrac >= f.EndFrac || f.Share < 0 || f.Share > 1 {
			return nil, fmt.Errorf("loadgen: bad flash crowd %+v", *f)
		}
	}
	if h := cfg.Herd; h != nil {
		if h.AtFrac < 0 || h.AtFrac > 1 || h.Burst <= 0 {
			return nil, fmt.Errorf("loadgen: bad herd %+v", *h)
		}
	}

	// Independent streams per concern: adding or removing a scenario
	// knob must not shift the draws of the others, so a flash-crowd A/B
	// pair shares its baseline request stream.
	root := sim.NewRNG(cfg.Seed)
	arrivalRNG := root.Split()
	fileRNG := root.Split()
	opRNG := root.Split()
	flashRNG := root.Split()

	zipf := sim.NewZipfTable(cfg.Files, cfg.ZipfS)
	gap := 1 / cfg.Rate // seconds

	sched := &Schedule{
		Cfg:       cfg,
		Reqs:      make([]Request, 0, cfg.Requests),
		FileTable: make(map[blockdev.FileID]blockdev.BlockNo, cfg.Files+1),
	}
	for f := 1; f <= cfg.Files; f++ {
		sched.FileTable[blockdev.FileID(f)] = cfg.FileBlocks
	}
	sched.FileTable[cfg.herdFile()] = cfg.FileBlocks

	cursors := make([]blockdev.BlockNo, cfg.Files+2) // per-file sequential cursor
	herdAt := -1
	if cfg.Herd != nil {
		herdAt = int(cfg.Herd.AtFrac * float64(cfg.Requests-1))
	}

	var clock float64 // seconds on the virtual arrival clock
	for i := 0; i < cfg.Requests; i++ {
		switch cfg.Arrival {
		case ArrivalFixed:
			clock = float64(i) * gap
		default:
			if i > 0 {
				clock += arrivalRNG.Exp(gap)
			}
		}
		at := time.Duration(clock * float64(time.Second))

		if i == herdAt {
			// The herd lands as one simultaneous wavefront ahead of the
			// regular request at this slot.
			for b := 0; b < cfg.Herd.Burst; b++ {
				sched.Reqs = append(sched.Reqs, Request{
					At: at, File: cfg.herdFile(), Off: 0, Blocks: cfg.SpanBlocks,
				})
			}
		}

		// The Zipf draw happens unconditionally so the baseline stream
		// stays aligned when a flash crowd overrides some picks — the
		// A/B independence TestScenarioIndependence pins.
		file := blockdev.FileID(1 + zipf.Sample(fileRNG))
		frac := float64(i) / float64(cfg.Requests)
		if f := cfg.Flash; f != nil && frac >= f.StartFrac && frac < f.EndFrac && flashRNG.Bool(f.Share) {
			file = 1 // the hottest key
		}

		off := cursors[file]
		next := off + blockdev.BlockNo(cfg.SpanBlocks)
		if next+blockdev.BlockNo(cfg.SpanBlocks) > cfg.FileBlocks {
			next = 0 // wrap before a span would run off the end
		}
		cursors[file] = next

		sched.Reqs = append(sched.Reqs, Request{
			At:     at,
			Write:  cfg.WriteFraction > 0 && opRNG.Bool(cfg.WriteFraction),
			File:   file,
			Off:    off,
			Blocks: cfg.SpanBlocks,
		})
	}
	return sched, nil
}
